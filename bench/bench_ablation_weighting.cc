/**
 * @file
 * Ablation: FIT (structure-size) weighting of per-benchmark AVF.
 *
 * The paper aggregates per-structure AVFs with the structure's SRAM
 * bit count as weight (equivalent to a FIT-rate calculation): the L2
 * holds most of the bits and therefore dominates.  This bench prints
 * the weighted vs the naive arithmetic-mean aggregate side by side,
 * showing that ignoring the weighting materially distorts both the
 * magnitudes and cross-benchmark comparisons.  Reuses cached
 * campaigns.
 */
#include "common.h"

#include "uarch/core.h"

using namespace vstack;
using namespace vstack::bench;

int
main()
{
    VulnerabilityStack stack(EnvConfig::fromEnvironment());
    banner("Ablation: AVF aggregation weighting",
           "Size-weighted (FIT) vs arithmetic-mean benchmark AVF, ax72",
           stack);

    CampaignPlan plan;
    for (const std::string &wl : workloadNames())
        plan.addUarchAll("ax72", {wl, false});
    prefetch(stack, plan);

    CycleSim sizer(coreByName("ax72"));
    Table t("weighted vs unweighted");
    t.header({"benchmark", "weighted AVF", "plain mean AVF", "ratio"});
    int rankFlips = 0;
    std::vector<double> weighted, plain;
    for (const std::string &wl : workloadNames()) {
        const Variant v{wl, false};
        VulnSplit w = stack.weightedAvf("ax72", v);
        double sum = 0;
        for (Structure s : allStructures)
            sum += stack.uarch("ax72", v, s).avf();
        const double mean = sum / 5.0;
        weighted.push_back(w.total());
        plain.push_back(mean);
        t.row({wl, pct(w.total()), pct(mean),
               w.total() > 0 ? Table::num(mean / w.total(), 1) + "x"
                             : "n/a"});
    }
    for (size_t i = 0; i < weighted.size(); ++i) {
        for (size_t j = i + 1; j < weighted.size(); ++j) {
            if ((weighted[i] - weighted[j]) * (plain[i] - plain[j]) < 0)
                ++rankFlips;
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Benchmark-pair rankings that flip without the weighting: "
                "%d of 45\n", rankFlips);
    return 0;
}
