/**
 * @file
 * Fig. 7 reproduction: PVF per fault propagation model (WD / WOI /
 * WI) split by fault-effect class.  The paper's observation: WD
 * varies widely across workloads and skews SDC, while WOI and
 * especially WI are more uniform and Crash-heavy.
 */
#include "common.h"

using namespace vstack;
using namespace vstack::bench;

int
main()
{
    VulnerabilityStack stack(EnvConfig::fromEnvironment());
    banner("Fig. 7", "PVF per FPM (av64), SDC/Crash split", stack);

    CampaignPlan plan;
    for (const std::string &wl : workloadNames()) {
        const Variant v{wl, false};
        plan.addPvf(IsaId::Av64, v, Fpm::WD);
        plan.addPvf(IsaId::Av64, v, Fpm::WOI);
        plan.addPvf(IsaId::Av64, v, Fpm::WI);
    }
    prefetch(stack, plan);

    Table t("PVF per FPM");
    t.header({"benchmark", "WD SDC", "WD Crash", "WOI SDC", "WOI Crash",
              "WI SDC", "WI Crash"});
    double spanWd = 0, spanWi = 0;
    double minWd = 1, maxWd = 0, minWi = 1, maxWi = 0;
    for (const std::string &wl : workloadNames()) {
        Variant v{wl, false};
        VulnSplit wd = toSplit(stack.pvf(IsaId::Av64, v, Fpm::WD));
        VulnSplit woi = toSplit(stack.pvf(IsaId::Av64, v, Fpm::WOI));
        VulnSplit wi = toSplit(stack.pvf(IsaId::Av64, v, Fpm::WI));
        t.row({wl, pct(wd.sdc), pct(wd.crash), pct(woi.sdc),
               pct(woi.crash), pct(wi.sdc), pct(wi.crash)});
        minWd = std::min(minWd, wd.total());
        maxWd = std::max(maxWd, wd.total());
        minWi = std::min(minWi, wi.total());
        maxWi = std::max(maxWi, wi.total());
    }
    spanWd = maxWd - minWd;
    spanWi = maxWi - minWi;
    std::printf("%s\n", t.render().c_str());
    std::printf("Cross-workload span: WD %s vs WI %s (paper: WD has the "
                "largest variability; WI/WOI are uniform and "
                "Crash-heavy)\n",
                pct(spanWd).c_str(), pct(spanWi).c_str());
    return 0;
}
