/**
 * @file
 * Shared implementation of the Section VI case study (Figs. 10/11):
 * one workload evaluated unprotected vs hardened (AN-encoding +
 * duplicated instructions) at all three layers.
 */
#ifndef VSTACK_BENCH_CASESTUDY_H
#define VSTACK_BENCH_CASESTUDY_H

#include "common.h"

namespace vstack::bench
{

/** Run and print the full case study for one workload. */
void runCaseStudy(const char *figure, const std::string &workload);

} // namespace vstack::bench

#endif // VSTACK_BENCH_CASESTUDY_H
