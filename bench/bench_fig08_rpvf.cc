/**
 * @file
 * Fig. 8 reproduction: the refined PVF (rPVF) — PVF per FPM weighted
 * by each core's measured FPM distribution — against the cross-layer
 * AVF, across all four microarchitectures.  The paper's point: rPVF
 * stays nearly microarchitecture-invariant while the real AVF moves.
 */
#include "common.h"

using namespace vstack;
using namespace vstack::bench;

int
main()
{
    VulnerabilityStack stack(EnvConfig::fromEnvironment());
    banner("Fig. 8", "rPVF vs cross-layer AVF across cores", stack);

    CampaignPlan plan;
    for (const std::string &wl : workloadNames()) {
        const Variant v{wl, false};
        for (const CoreConfig &core : allCores()) {
            plan.addUarchAll(core.name, v);
            plan.addPvf(core.isa, v, Fpm::WD);
            plan.addPvf(core.isa, v, Fpm::WI);
            plan.addPvf(core.isa, v, Fpm::WOI);
        }
    }
    prefetch(stack, plan);

    Table t("rPVF (left) vs AVF (right)");
    t.header({"benchmark", "core", "rPVF SDC", "rPVF Crash", "rPVF tot",
              "AVF SDC", "AVF Crash", "AVF tot"});
    double rpvfSpread = 0, avfSpread = 0;
    int counted = 0;
    for (const std::string &wl : workloadNames()) {
        Variant v{wl, false};
        double rMin = 1, rMax = 0, aMin = 1, aMax = 0;
        for (const CoreConfig &core : allCores()) {
            VulnSplit r = stack.rPvf(core.name, v);
            VulnSplit a = stack.weightedAvf(core.name, v);
            t.row({wl, core.name, pct(r.sdc), pct(r.crash),
                   pct(r.total()), pct(a.sdc), pct(a.crash),
                   pct(a.total())});
            rMin = std::min(rMin, r.total());
            rMax = std::max(rMax, r.total());
            aMin = std::min(aMin, a.total());
            aMax = std::max(aMax, a.total());
        }
        t.separator();
        // Relative cross-core spread of each metric.
        if (rMax > 0)
            rpvfSpread += (rMax - rMin) / rMax;
        if (aMax > 0)
            avfSpread += (aMax - aMin) / aMax;
        ++counted;
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Mean relative cross-core spread: rPVF %s vs AVF %s\n"
                "(paper: even refined PVF stays nearly "
                "microarchitecture-invariant while AVF varies)\n",
                pct(rpvfSpread / counted).c_str(),
                pct(avfSpread / counted).c_str());
    return 0;
}
