/**
 * @file
 * Fig. 6 reproduction: structure-size-weighted FPM distribution per
 * microarchitecture, ESC included (the class PVF/SVF cannot model by
 * definition; the paper measures it at up to 62%, mean 29%).
 */
#include "common.h"

using namespace vstack;
using namespace vstack::bench;

int
main()
{
    VulnerabilityStack stack(EnvConfig::fromEnvironment());
    banner("Fig. 6",
           "Size-weighted FPM distribution across the four cores",
           stack);

    CampaignPlan plan;
    for (const CoreConfig &core : allCores())
        for (const std::string &wl : workloadNames())
            plan.addUarchAll(core.name, {wl, false});
    prefetch(stack, plan);

    double escSum = 0, escMax = 0;
    int cells = 0;
    for (const CoreConfig &core : allCores()) {
        Table t(strprintf("%s: weighted FPM distribution",
                          core.name.c_str()));
        t.header({"benchmark", "WD", "WI", "WOI", "ESC"});
        for (const std::string &wl : workloadNames()) {
            FpmShares f = stack.weightedFpmDist(core.name, {wl, false});
            t.row({wl, pct(f.wd), pct(f.wi), pct(f.woi), pct(f.esc)});
            escSum += f.esc;
            escMax = std::max(escMax, f.esc);
            ++cells;
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf("ESC share: max %s, mean %s (paper: up to 62%%, mean "
                "29%% across benchmarks)\n",
                pct(escMax).c_str(), pct(escSum / cells).c_str());
    return 0;
}
