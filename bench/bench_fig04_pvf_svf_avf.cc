/**
 * @file
 * Fig. 4 reproduction: PVF, SVF, and size-weighted AVF (ax72) for all
 * ten workloads, split into SDC and Crash, with the paper's two
 * comparisons: ranking inversions between layers and dominant-effect
 * disagreements.
 */
#include "common.h"

using namespace vstack;
using namespace vstack::bench;

int
main()
{
    VulnerabilityStack stack(EnvConfig::fromEnvironment());
    banner("Fig. 4",
           "PVF / SVF / cross-layer AVF per workload (av64, ax72). "
           "Note the paper plots PVF/SVF and AVF on different scales.",
           stack);

    CampaignPlan plan;
    for (const std::string &wl : workloadNames()) {
        const Variant v{wl, false};
        plan.addPvf(IsaId::Av64, v, Fpm::WD);
        plan.addSvf(v);
        plan.addUarchAll("ax72", v);
    }
    prefetch(stack, plan);

    struct Row
    {
        std::string wl;
        VulnSplit pvf, svf, avf;
    };
    std::vector<Row> rows;

    Table t("Fig. 4 series");
    t.header({"benchmark", "PVF SDC", "PVF Crash", "PVF tot", "SVF SDC",
              "SVF Crash", "SVF tot", "AVF SDC", "AVF Crash", "AVF tot"});
    for (const std::string &wl : workloadNames()) {
        Variant v{wl, false};
        Row r{wl, stack.pvfSplit(IsaId::Av64, v), stack.svfSplit(v),
              stack.weightedAvf("ax72", v)};
        rows.push_back(r);
        t.row({wl, pct(r.pvf.sdc), pct(r.pvf.crash), pct(r.pvf.total()),
               pct(r.svf.sdc), pct(r.svf.crash), pct(r.svf.total()),
               pct(r.avf.sdc), pct(r.avf.crash), pct(r.avf.total())});
    }
    std::printf("%s\n", t.render().c_str());

    // Ranking inversions (the green-dotted-rectangle comparisons).
    int invPvf = 0, invSvf = 0, pairs = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
        for (size_t j = i + 1; j < rows.size(); ++j) {
            const double dAvf = rows[i].avf.total() - rows[j].avf.total();
            const double dPvf = rows[i].pvf.total() - rows[j].pvf.total();
            const double dSvf = rows[i].svf.total() - rows[j].svf.total();
            ++pairs;
            if (dAvf * dPvf < 0)
                ++invPvf;
            if (dAvf * dSvf < 0)
                ++invSvf;
        }
    }
    int domPvf = 0, domSvf = 0;
    for (const Row &r : rows) {
        const bool avfSdcDom = r.avf.sdc > r.avf.crash;
        if ((r.pvf.sdc > r.pvf.crash) != avfSdcDom)
            ++domPvf;
        if ((r.svf.sdc > r.svf.crash) != avfSdcDom)
            ++domSvf;
    }
    std::printf("Ranking inversions vs AVF (of %d pairs): PVF %d, SVF %d\n",
                pairs, invPvf, invSvf);
    std::printf("Dominant-effect disagreements vs AVF (of %zu benchmarks): "
                "PVF %d, SVF %d\n",
                rows.size(), domPvf, domSvf);
    std::printf("Paper: 13 of 45 pairs inverted; several benchmarks "
                "SDC-dominant at PVF/SVF but Crash-dominant at AVF.\n");
    return 0;
}
