/**
 * @file
 * Fig. 11 reproduction: the smooth software-fault-tolerance case
 * study.
 */
#include "casestudy.h"

int
main()
{
    vstack::bench::runCaseStudy("Fig. 11", "smooth");
    return 0;
}
