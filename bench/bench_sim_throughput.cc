/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrates:
 * cycle-level core throughput, functional-emulator throughput, IR
 * interpreter throughput, and compile time.  These bound campaign
 * cost and document what a paper-scale (VSTACK_FAULTS=2000) run
 * costs on the host.
 */
#include <benchmark/benchmark.h>

#include "arch/archsim.h"
#include "compiler/compile.h"
#include "gefin/campaign.h"
#include "kernel/kernel.h"
#include "support/crc32c.h"
#include "swfi/interp.h"
#include "uarch/core.h"
#include "workloads/workloads.h"

namespace
{

using namespace vstack;

const Program &
shaImage(IsaId isa)
{
    static std::map<IsaId, Program> cache;
    auto it = cache.find(isa);
    if (it == cache.end()) {
        mcl::BuildResult b =
            mcl::buildUserProgram(findWorkload("sha").source, isa);
        Program sys = buildSystemImage(buildKernel(isa), b.program);
        it = cache.emplace(isa, std::move(sys)).first;
    }
    return it->second;
}

void
BM_CycleSimSha(benchmark::State &state,
               const std::string &coreName)
{
    const CoreConfig &core = coreByName(coreName);
    CycleSim sim(core);
    uint64_t cycles = 0;
    for (auto _ : state) {
        sim.load(shaImage(core.isa));
        UarchRunResult r = sim.run(10'000'000);
        cycles += r.cycles;
        benchmark::DoNotOptimize(r.insts);
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void
BM_ArchSimSha(benchmark::State &state)
{
    ArchConfig cfg;
    ArchSim sim(cfg);
    uint64_t insts = 0;
    for (auto _ : state) {
        sim.load(shaImage(IsaId::Av64));
        ArchRunResult r = sim.run();
        insts += r.instCount;
    }
    state.counters["insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
BM_IrInterpSha(benchmark::State &state)
{
    mcl::FrontendResult fr =
        mcl::compileToIr(findWorkload("sha").source, 64);
    uint64_t steps = 0;
    for (auto _ : state) {
        IrInterp interp(fr.module);
        InterpResult r = interp.run();
        steps += r.steps;
    }
    state.counters["IRinsts/s"] = benchmark::Counter(
        static_cast<double>(steps), benchmark::Counter::kIsRate);
}

/** Predecoded dispatch vs BM_ArchSimSha's per-step decode: the same
 *  golden run through the threaded-code fast path.  Predecode cost is
 *  hoisted out of the loop, as campaigns amortize it over samples. */
void
BM_ArchSimShaFast(benchmark::State &state)
{
    ArchConfig cfg;
    ArchSim sim(cfg);
    auto pd = predecodeImage(shaImage(IsaId::Av64), cfg.isa);
    sim.setFastPath(pd);
    uint64_t insts = 0;
    for (auto _ : state) {
        sim.load(shaImage(IsaId::Av64));
        ArchRunResult r = sim.run();
        insts += r.instCount;
    }
    state.counters["insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

/** IR threaded-code dispatch vs BM_IrInterpSha's block-walking loop. */
void
BM_IrInterpShaFast(benchmark::State &state)
{
    mcl::FrontendResult fr =
        mcl::compileToIr(findWorkload("sha").source, 64);
    auto pd = predecodeIr(fr.module);
    uint64_t steps = 0;
    for (auto _ : state) {
        IrInterp interp(fr.module);
        interp.setFastPath(pd);
        InterpResult r = interp.run();
        steps += r.steps;
    }
    state.counters["IRinsts/s"] = benchmark::Counter(
        static_cast<double>(steps), benchmark::Counter::kIsRate);
}

/** One-time predecode cost (the fast path's fixed investment). */
void
BM_ArchPredecodeSha(benchmark::State &state)
{
    const Program &image = shaImage(IsaId::Av64);
    for (auto _ : state) {
        auto pd = predecodeImage(image, IsaId::Av64);
        benchmark::DoNotOptimize(pd->slots());
    }
}

/** CRC-32C engines over a digest-sized buffer: bytes/s of the bitwise
 *  reference, the slicing-by-8 table walk, and (when the CPU has
 *  SSE4.2) the hardware instruction.  The spread documents what the
 *  batched digest grid gains per probe. */
void
BM_Crc32c(benchmark::State &state, uint32_t (*fn)(const void *, size_t))
{
    if (fn == &crc32cHardware && !crc32cHardwareAvailable()) {
        state.SkipWithError("SSE4.2 crc32 not available on this CPU");
        return;
    }
    std::vector<uint8_t> buf(64 * 1024);
    for (size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<uint8_t>(i * 131 + 17);
    uint64_t bytes = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fn(buf.data(), buf.size()));
        bytes += buf.size();
    }
    state.counters["bytes/s"] = benchmark::Counter(
        static_cast<double>(bytes), benchmark::Counter::kIsRate);
}

/** Steady-state digest probe cost on the functional emulator: a short
 *  burst of execution (dirtying a few pages) followed by the
 *  incremental stateDigest the reconvergence grid pays. */
void
BM_ArchDigest(benchmark::State &state)
{
    ArchConfig cfg;
    ArchSim sim(cfg);
    sim.load(shaImage(IsaId::Av64));
    for (auto _ : state) {
        for (int i = 0; i < 100 && sim.step(); ++i)
            ;
        benchmark::DoNotOptimize(sim.stateDigest());
    }
}

/**
 * Thread scaling of the campaign executor: one full microarchitectural
 * campaign per iteration at `jobs = state.range(0)`.  Results are
 * bit-identical across the jobs axis; only wall-clock should move.
 * Documents what parallelism buys a paper-scale (VSTACK_FAULTS=2000)
 * campaign on this host.
 */
void
BM_UarchCampaignJobs(benchmark::State &state)
{
    const CoreConfig &core = coreByName("ax72");
    UarchCampaign campaign(core, shaImage(core.isa));
    const size_t faults = 64;
    exec::ExecConfig ec;
    ec.jobs = static_cast<unsigned>(state.range(0));
    uint64_t injections = 0;
    for (auto _ : state) {
        UarchCampaignResult r =
            campaign.run(Structure::RF, faults, 42, ec);
        injections += r.samples;
        benchmark::DoNotOptimize(r.outcomes.sdc);
    }
    state.counters["injections/s"] = benchmark::Counter(
        static_cast<double>(injections), benchmark::Counter::kIsRate);
}

/**
 * Checkpoint primitive cost per core config: ns/snapshot (taken
 * mid-run, chained to a previous checkpoint the way recording runs
 * chain them), marginal bytes per checkpoint, and restore latency.
 * These are the constants behind DESIGN.md §8's cost model.
 */
void
BM_UarchSnapshot(benchmark::State &state, const std::string &coreName)
{
    const CoreConfig &core = coreByName(coreName);
    CycleSim sim(core);
    sim.load(shaImage(core.isa));
    auto prev = sim.snapshot(nullptr);
    uint64_t bytes = 0, snaps = 0;
    for (auto _ : state) {
        // Chained, mostly-clean snapshot: the steady state of a
        // recording run, where few pages changed since the previous
        // checkpoint and everything else is shared COW.
        auto cur = sim.snapshot(prev.get());
        bytes += uarchSnapshotBytes(*cur);
        ++snaps;
        benchmark::DoNotOptimize(cur);
    }
    state.counters["bytes/ckpt"] = benchmark::Counter(
        snaps ? static_cast<double>(bytes) / static_cast<double>(snaps)
              : 0.0);
}

void
BM_UarchRestore(benchmark::State &state, const std::string &coreName)
{
    const CoreConfig &core = coreByName(coreName);
    CycleSim sim(core);
    sim.load(shaImage(core.isa));
    // Mid-run checkpoints from a real recording pass; restoring the
    // same one repeatedly is exactly the campaign hot path (samples
    // are dispatched in injection-order restore locality).
    UarchTrace trace;
    sim.runRecording(10'000'000, trace, 1000, 4);
    const auto &cp = trace.checkpoints[trace.checkpoints.size() / 2];
    for (auto _ : state)
        sim.restore(cp.state);
}

void
BM_ArchSnapshotRestore(benchmark::State &state)
{
    ArchConfig cfg;
    ArchSim sim(cfg);
    sim.load(shaImage(IsaId::Av64));
    for (int i = 0; i < 4000; ++i)
        sim.step();
    auto snap = sim.snapshot(nullptr);
    for (auto _ : state) {
        sim.restore(snap);
        sim.step();
    }
}

/** Full accelerated campaign vs the same campaign cold: the headline
 *  speedup the checkpoint accelerator buys (perf_smoke.sh asserts the
 *  ratio end-to-end; this documents it per-iteration). */
void
BM_UarchCampaignCheckpointed(benchmark::State &state, bool accelerated)
{
    const CoreConfig &core = coreByName("ax72");
    UarchCampaign campaign(core, shaImage(core.isa));
    if (!accelerated) {
        exec::CheckpointPolicy p;
        p.enabled = false;
        p.earlyStop = false;
        campaign.setCheckpointPolicy(p);
    }
    uint64_t injections = 0;
    for (auto _ : state) {
        UarchCampaignResult r = campaign.run(Structure::RF, 64, 42);
        injections += r.samples;
        benchmark::DoNotOptimize(r.outcomes.sdc);
    }
    state.counters["injections/s"] = benchmark::Counter(
        static_cast<double>(injections), benchmark::Counter::kIsRate);
}

void
BM_CompileSha(benchmark::State &state)
{
    const std::string &src = findWorkload("sha").source;
    for (auto _ : state) {
        mcl::BuildResult b = mcl::buildUserProgram(src, IsaId::Av64);
        benchmark::DoNotOptimize(b.program.totalBytes());
    }
}

} // namespace

BENCHMARK_CAPTURE(BM_CycleSimSha, ax9, std::string("ax9"));
BENCHMARK_CAPTURE(BM_CycleSimSha, ax72, std::string("ax72"));
BENCHMARK(BM_ArchSimSha);
BENCHMARK(BM_ArchSimShaFast);
BENCHMARK(BM_IrInterpSha);
BENCHMARK(BM_IrInterpShaFast);
BENCHMARK(BM_ArchPredecodeSha);
BENCHMARK(BM_ArchDigest);
BENCHMARK_CAPTURE(BM_Crc32c, reference, &vstack::crc32cReference);
BENCHMARK_CAPTURE(BM_Crc32c, sliced, &vstack::crc32cSliced);
BENCHMARK_CAPTURE(BM_Crc32c, hardware, &vstack::crc32cHardware);
BENCHMARK(BM_CompileSha);
BENCHMARK_CAPTURE(BM_UarchSnapshot, ax9, std::string("ax9"));
BENCHMARK_CAPTURE(BM_UarchSnapshot, ax72, std::string("ax72"));
BENCHMARK_CAPTURE(BM_UarchRestore, ax9, std::string("ax9"));
BENCHMARK_CAPTURE(BM_UarchRestore, ax72, std::string("ax72"));
BENCHMARK(BM_ArchSnapshotRestore);
BENCHMARK_CAPTURE(BM_UarchCampaignCheckpointed, cold, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_UarchCampaignCheckpointed, accelerated, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UarchCampaignJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
