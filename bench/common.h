/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench prints the rows/series of one paper artifact.  Sample
 * counts come from the environment (VSTACK_FAULTS etc., see
 * support/env.h); campaign results are shared between benches through
 * the on-disk result store, so the first bench to need a campaign
 * pays for it and the rest reuse it.
 */
#ifndef VSTACK_BENCH_COMMON_H
#define VSTACK_BENCH_COMMON_H

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/suite.h"
#include "core/vstack.h"
#include "support/logging.h"
#include "support/table.h"
#include "workloads/workloads.h"

namespace vstack::bench
{

/**
 * Warm the result store for every campaign a bench is about to
 * consume by running the set through the suite scheduler: one worker
 * pool spans all the campaigns (golden runs included), so the bench's
 * metric loops become pure cache reads instead of paying for each
 * campaign serially as the loops first touch it.  No-op when there is
 * nothing to overlap; already-cached campaigns cost nothing.
 */
inline void
prefetch(VulnerabilityStack &stack, const CampaignPlan &plan)
{
    if (plan.size() <= 1)
        return;
    SuiteOptions opts;
    const bool tty = isatty(2) != 0;
    if (tty) {
        opts.progress = [](const SuiteProgress &p) {
            std::fprintf(stderr,
                         "\r%zu/%zu campaigns  %zu/%zu samples\033[K",
                         p.campaignsDone, p.campaignsTotal,
                         p.samplesDone, p.samplesTotal);
            std::fflush(stderr);
        };
    }
    runSuite(stack, plan, opts);
    if (tty) {
        std::fprintf(stderr, "\r\033[K");
        std::fflush(stderr);
    }
}

/** Workload names in paper-figure order. */
inline std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const Workload &w : paperWorkloads())
        names.push_back(w.name);
    return names;
}

/** Print the standard bench banner with sampling details. */
inline void
banner(const char *artifact, const char *description,
       const VulnerabilityStack &stack)
{
    const EnvConfig &cfg = stack.config();
    std::printf("=== %s ===\n%s\n", artifact, description);
    std::printf("samples: uarch=%zu/cell arch=%zu sw=%zu seed=%llu "
                "(99%% margin at uarch scale: +/-%.2f%%)\n",
                cfg.uarchFaults, cfg.archFaults, cfg.swFaults,
                static_cast<unsigned long long>(cfg.seed),
                stack.uarchMargin() * 100.0);
    std::printf("set VSTACK_FAULTS=2000 for paper-scale campaigns; "
                "results cached in '%s'\n\n",
                cfg.resultsDir.c_str());
}

/** "12.34%" with two decimals. */
inline std::string
pct(double fraction)
{
    return Table::pct(fraction, 2);
}

} // namespace vstack::bench

#endif // VSTACK_BENCH_COMMON_H
