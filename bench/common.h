/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench prints the rows/series of one paper artifact.  Sample
 * counts come from the environment (VSTACK_FAULTS etc., see
 * support/env.h); campaign results are shared between benches through
 * the on-disk result store, so the first bench to need a campaign
 * pays for it and the rest reuse it.
 */
#ifndef VSTACK_BENCH_COMMON_H
#define VSTACK_BENCH_COMMON_H

#include <cstdio>
#include <string>
#include <vector>

#include "core/vstack.h"
#include "support/logging.h"
#include "support/table.h"
#include "workloads/workloads.h"

namespace vstack::bench
{

/** Workload names in paper-figure order. */
inline std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const Workload &w : paperWorkloads())
        names.push_back(w.name);
    return names;
}

/** Print the standard bench banner with sampling details. */
inline void
banner(const char *artifact, const char *description,
       const VulnerabilityStack &stack)
{
    const EnvConfig &cfg = stack.config();
    std::printf("=== %s ===\n%s\n", artifact, description);
    std::printf("samples: uarch=%zu/cell arch=%zu sw=%zu seed=%llu "
                "(99%% margin at uarch scale: +/-%.2f%%)\n",
                cfg.uarchFaults, cfg.archFaults, cfg.swFaults,
                static_cast<unsigned long long>(cfg.seed),
                stack.uarchMargin() * 100.0);
    std::printf("set VSTACK_FAULTS=2000 for paper-scale campaigns; "
                "results cached in '%s'\n\n",
                cfg.resultsDir.c_str());
}

/** "12.34%" with two decimals. */
inline std::string
pct(double fraction)
{
    return Table::pct(fraction, 2);
}

} // namespace vstack::bench

#endif // VSTACK_BENCH_COMMON_H
