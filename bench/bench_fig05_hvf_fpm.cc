/**
 * @file
 * Fig. 5 reproduction: per-structure HVF with FPM breakdown for the
 * two av32 cores (ax9, ax15).  The paper's point: WD dominates the
 * register file and L1d, while L1i manifests as WI/WOI and the
 * caches expose the ESC class — the manifestations that PVF/SVF
 * methods never model.
 */
#include "common.h"

using namespace vstack;
using namespace vstack::bench;

int
main()
{
    VulnerabilityStack stack(EnvConfig::fromEnvironment());
    banner("Fig. 5",
           "HVF per structure with FPM breakdown (ax9 and ax15)",
           stack);

    CampaignPlan plan;
    for (const char *coreName : {"ax9", "ax15"})
        for (Structure s : allStructures)
            for (const std::string &wl : workloadNames())
                plan.addUarch(coreName, {wl, false}, s);
    prefetch(stack, plan);

    for (const char *coreName : {"ax9", "ax15"}) {
        for (Structure s : allStructures) {
            Table t(strprintf("%s %s: HVF and FPM mix", coreName,
                              structureName(s)));
            t.header({"benchmark", "HVF", "WD", "WI", "WOI", "ESC"});
            for (const std::string &wl : workloadNames()) {
                UarchCampaignResult r =
                    stack.uarch(coreName, {wl, false}, s);
                const double n = static_cast<double>(r.samples);
                t.row({wl, pct(r.hvf()),
                       pct(static_cast<double>(r.fpms.wd) / n),
                       pct(static_cast<double>(r.fpms.wi) / n),
                       pct(static_cast<double>(r.fpms.woi) / n),
                       pct(static_cast<double>(r.fpms.esc) / n)});
            }
            std::printf("%s\n", t.render().c_str());
        }
    }
    std::printf("Paper: RF and L1d are WD-dominated; L1i shows high "
                "WI/WOI; data caches expose ESC.\n");
    return 0;
}
