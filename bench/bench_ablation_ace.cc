/**
 * @file
 * Ablation / extension: analytical ACE-lite AVF vs injection AVF for
 * the physical register file.
 *
 * The paper (Section II.A) notes that ACE analysis "is known to be
 * pessimistic (it overestimates the vulnerability)" and therefore
 * uses injection throughout.  This bench reproduces that comparison
 * on our infrastructure: AVF_ACE counts every write->last-read bit
 * residency as vulnerable, while injection observes the additional
 * logical masking (consumers whose results are dead, bitwise masking,
 * squashed paths, value-identical flips).  Expectation: ACE >=
 * injection for every workload.
 */
#include "common.h"

#include "gefin/campaign.h"

using namespace vstack;
using namespace vstack::bench;

int
main()
{
    EnvConfig env = EnvConfig::fromEnvironment();
    VulnerabilityStack stack(env);
    std::printf("=== Ablation: ACE-lite vs injection (RF, ax72) ===\n\n");

    Table t("RF vulnerability: analytical vs measured");
    t.header({"benchmark", "AVF (ACE-lite)", "AVF (injection)",
              "pessimism"});
    int pessimistic = 0;
    for (const std::string &wl : workloadNames()) {
        const Variant v{wl, false};
        const Program &image = stack.imageFor(v, IsaId::Av64);
        CycleSim sim(coreByName("ax72"));
        sim.load(image);
        UarchRunResult g = sim.run(100'000'000);
        if (g.stop != StopReason::Exited)
            fatal("golden run failed for %s", wl.c_str());
        const double ace =
            static_cast<double>(sim.stats().rfAceBitCycles) /
            (static_cast<double>(sim.structureBits(Structure::RF)) *
             static_cast<double>(g.cycles));
        const double inj = stack.uarch("ax72", v, Structure::RF).avf();
        pessimistic += ace >= inj;
        t.row({wl, pct(ace), pct(inj),
               inj > 0 ? Table::num(ace / inj, 1) + "x" : "inf"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("ACE-lite >= injection for %d of 10 workloads "
                "(literature: ACE-style analysis is pessimistic).\n",
                pessimistic);
    return 0;
}
