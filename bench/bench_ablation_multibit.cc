/**
 * @file
 * Extension: multi-bit upsets and the pluggable fault models.
 *
 * The paper's model is the single-bit transient (as is standard for
 * SRAM soft-error studies); modern nodes also see spatial multi-bit
 * upsets, voltage-droop-conditioned flips, and temporally clustered
 * bursts.  Part 1 sweeps the raw burst length on two structures
 * (monotone vulnerability growth, masked-fraction collapse); part 2
 * sweeps the four manifest-selectable fault models (src/fault) on the
 * same campaign and emits the per-model AVF deltas against the
 * single-bit baseline to `<results>/ablation_faultmodels.json`.
 */
#include "common.h"

#include <filesystem>

#include "fault/model.h"
#include "gefin/campaign.h"
#include "support/json.h"
#include "support/rng.h"

using namespace vstack;
using namespace vstack::bench;

int
main()
{
    EnvConfig env = EnvConfig::fromEnvironment();
    VulnerabilityStack stack(env);
    const size_t n = std::max<size_t>(env.uarchFaults * 3, 360);
    std::printf("=== Extension: multi-bit burst faults (sha, ax72, %zu "
                "faults/point) ===\n\n", n);

    const Program &image = stack.imageFor({"sha", false}, IsaId::Av64);
    UarchCampaign campaign(coreByName("ax72"), image);

    for (Structure s : {Structure::RF, Structure::L1D}) {
        Table t(strprintf("%s: AVF vs burst length", structureName(s)));
        t.header({"burst bits", "masked", "SDC", "Crash", "AVF"});
        double prev = -1;
        for (uint32_t burst : {1u, 2u, 4u, 8u}) {
            OutcomeCounts counts;
            // Same fault sites for every burst length: a paired
            // comparison isolates the burst-size effect.
            Rng master(env.seed ^ (static_cast<uint64_t>(s) << 40));
            for (size_t i = 0; i < n; ++i) {
                Rng rng = master.fork();
                FaultSite site;
                site.structure = s;
                site.cycle = 1 + rng.uniform(campaign.golden().cycles);
                CycleSim sizer(coreByName("ax72"));
                site.bit = rng.uniform(sizer.structureBits(s));
                site.burst = burst;
                Visibility vis;
                counts.add(campaign.runOne(site, vis));
            }
            t.row({std::to_string(burst),
                   std::to_string(counts.masked),
                   std::to_string(counts.sdc),
                   std::to_string(counts.crash),
                   pct(counts.vulnerability())});
            prev = counts.vulnerability();
        }
        (void)prev;
        std::printf("%s\n", t.render().c_str());
    }
    std::printf("Expectation: vulnerability grows with burst size as "
                "spatially adjacent state is corrupted together.\n\n");

    // ---- part 2: the manifest-selectable fault models ------------------
    std::printf("=== Fault-model sweep (sha, ax72, %zu faults/model) "
                "===\n\n", n);
    const char *const specs[] = {
        "single-bit",
        "spatial-multibit:cluster=4,stride=1",
        "sram-undervolt:vdd=0.8,banks=8,droop=0.02,asym=0.25",
        "em-burst:window=64,flips=3",
    };
    exec::ExecConfig ec;
    ec.jobs = env.jobs;
    Json structures = Json::object();
    for (Structure s : {Structure::RF, Structure::L1D}) {
        Table t(strprintf("%s: AVF per fault model", structureName(s)));
        t.header({"model", "masked", "SDC", "Crash", "AVF", "dAVF"});
        double baseline = 0.0;
        Json rows = Json::array();
        for (const char *spec : specs) {
            std::string err;
            auto model = fault::parseFaultModel(spec, err);
            if (!model)
                fatal("fault model '%s': %s", spec, err.c_str());
            UarchCampaignResult r = campaign.run(
                s, n, env.seed, ec,
                model->isDefault() ? nullptr : model.get());
            const double avf = r.outcomes.vulnerability();
            if (model->isDefault())
                baseline = avf;
            const double delta = avf - baseline;
            t.row({model->name(),
                   std::to_string(r.outcomes.masked),
                   std::to_string(r.outcomes.sdc),
                   std::to_string(r.outcomes.crash), pct(avf),
                   strprintf("%+.2f pp", delta * 100.0)});
            Json row = Json::object();
            row.set("model", model->name());
            row.set("tag", model->tag());
            row.set("avf", avf);
            row.set("delta_vs_single_bit", delta);
            row.set("masked", r.outcomes.masked);
            row.set("sdc", r.outcomes.sdc);
            row.set("crash", r.outcomes.crash);
            rows.push(row);
        }
        structures.set(structureName(s), rows);
        std::printf("%s\n", t.render().c_str());
    }

    Json out = Json::object();
    out.set("bench", "ablation_faultmodels");
    out.set("workload", "sha");
    out.set("core", "ax72");
    out.set("faults", static_cast<uint64_t>(n));
    out.set("seed", env.seed);
    out.set("structures", structures);
    std::filesystem::create_directories(env.resultsDir);
    const std::string path =
        env.resultsDir + "/ablation_faultmodels.json";
    if (!writeFile(path, out.dump(2) + "\n"))
        fatal("cannot write %s", path.c_str());
    std::printf("Per-model AVF deltas written to %s\n", path.c_str());
    std::printf("Expectation: conditioned models (sram-undervolt) mask "
                "a fraction of flips and lower AVF; clustered models "
                "(spatial-multibit, em-burst) raise it.\n");
    return 0;
}
