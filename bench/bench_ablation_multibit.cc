/**
 * @file
 * Extension: multi-bit upsets.
 *
 * The paper's model is the single-bit transient (as is standard for
 * SRAM soft-error studies); modern nodes also see spatial multi-bit
 * upsets.  The injection engine supports adjacent-bit bursts — this
 * bench sweeps the burst length on two structures and shows the
 * monotone vulnerability growth and the masked-fraction collapse.
 */
#include "common.h"

#include "gefin/campaign.h"
#include "support/rng.h"

using namespace vstack;
using namespace vstack::bench;

int
main()
{
    EnvConfig env = EnvConfig::fromEnvironment();
    VulnerabilityStack stack(env);
    const size_t n = std::max<size_t>(env.uarchFaults * 3, 360);
    std::printf("=== Extension: multi-bit burst faults (sha, ax72, %zu "
                "faults/point) ===\n\n", n);

    const Program &image = stack.imageFor({"sha", false}, IsaId::Av64);
    UarchCampaign campaign(coreByName("ax72"), image);

    for (Structure s : {Structure::RF, Structure::L1D}) {
        Table t(strprintf("%s: AVF vs burst length", structureName(s)));
        t.header({"burst bits", "masked", "SDC", "Crash", "AVF"});
        double prev = -1;
        for (uint32_t burst : {1u, 2u, 4u, 8u}) {
            OutcomeCounts counts;
            // Same fault sites for every burst length: a paired
            // comparison isolates the burst-size effect.
            Rng master(env.seed ^ (static_cast<uint64_t>(s) << 40));
            for (size_t i = 0; i < n; ++i) {
                Rng rng = master.fork();
                FaultSite site;
                site.structure = s;
                site.cycle = 1 + rng.uniform(campaign.golden().cycles);
                CycleSim sizer(coreByName("ax72"));
                site.bit = rng.uniform(sizer.structureBits(s));
                site.burst = burst;
                Visibility vis;
                counts.add(campaign.runOne(site, vis));
            }
            t.row({std::to_string(burst),
                   std::to_string(counts.masked),
                   std::to_string(counts.sdc),
                   std::to_string(counts.crash),
                   pct(counts.vulnerability())});
            prev = counts.vulnerability();
        }
        (void)prev;
        std::printf("%s\n", t.render().c_str());
    }
    std::printf("Expectation: vulnerability grows with burst size as "
                "spatially adjacent state is corrupted together.\n");
    return 0;
}
