#include "casestudy.h"

namespace vstack::bench
{

void
runCaseStudy(const char *figure, const std::string &workload)
{
    VulnerabilityStack stack(EnvConfig::fromEnvironment());
    banner(figure,
           strprintf("Software fault-tolerance case study on '%s': "
                     "AN-encoding + duplicated instructions, evaluated "
                     "at all layers (w/o = baseline, w/ = hardened)",
                     workload.c_str())
               .c_str(),
           stack);

    const Variant base{workload, false};
    const Variant ft{workload, true};

    // Panel (a): per-structure AVF on ax72.
    Table a(strprintf("(a) per-structure AVF on ax72 for %s",
                      workload.c_str()));
    a.header({"structure", "w/o SDC", "w/o Crash", "w/ SDC", "w/ Crash",
              "w/ Detected"});
    for (Structure s : allStructures) {
        UarchCampaignResult r0 = stack.uarch("ax72", base, s);
        UarchCampaignResult r1 = stack.uarch("ax72", ft, s);
        a.row({structureName(s), pct(r0.outcomes.sdcRate()),
               pct(r0.outcomes.crashRate()), pct(r1.outcomes.sdcRate()),
               pct(r1.outcomes.crashRate()),
               pct(r1.outcomes.detectedRate())});
    }
    std::printf("%s\n", a.render().c_str());

    // Panel (b): weighted AVF.
    VulnSplit avf0 = stack.weightedAvf("ax72", base);
    VulnSplit avf1 = stack.weightedAvf("ax72", ft);
    Table b("(b) size-weighted cross-layer AVF");
    b.header({"variant", "SDC", "Crash", "Detected", "vulnerability"});
    b.row({"w/o", pct(avf0.sdc), pct(avf0.crash), pct(avf0.detected),
           pct(avf0.total())});
    b.row({"w/", pct(avf1.sdc), pct(avf1.crash), pct(avf1.detected),
           pct(avf1.total())});
    std::printf("%s\n", b.render().c_str());

    // Panel (c): PVF.
    VulnSplit pvf0 = stack.pvfSplit(IsaId::Av64, base);
    VulnSplit pvf1 = stack.pvfSplit(IsaId::Av64, ft);
    Table c("(c) PVF (architecture level)");
    c.header({"variant", "SDC", "Crash", "Detected", "vulnerability"});
    c.row({"w/o", pct(pvf0.sdc), pct(pvf0.crash), pct(pvf0.detected),
           pct(pvf0.total())});
    c.row({"w/", pct(pvf1.sdc), pct(pvf1.crash), pct(pvf1.detected),
           pct(pvf1.total())});
    std::printf("%s\n", c.render().c_str());

    // Panel (d): SVF.
    VulnSplit svf0 = stack.svfSplit(base);
    VulnSplit svf1 = stack.svfSplit(ft);
    Table d("(d) SVF (software level, LLFI analog)");
    d.header({"variant", "SDC", "Crash", "Detected", "vulnerability"});
    d.row({"w/o", pct(svf0.sdc), pct(svf0.crash), pct(svf0.detected),
           pct(svf0.total())});
    d.row({"w/", pct(svf1.sdc), pct(svf1.crash), pct(svf1.detected),
           pct(svf1.total())});
    std::printf("%s\n", d.render().c_str());

    // Cost and the headline comparisons.
    UarchGolden g0 = stack.uarchGolden("ax72", base);
    UarchGolden g1 = stack.uarchGolden("ax72", ft);
    const double slowdown =
        static_cast<double>(g1.cycles) / static_cast<double>(g0.cycles);
    std::printf("execution time: %llu -> %llu cycles (%.2fx; paper: "
                "2.1x for sha, 2.5x for smooth)\n",
                static_cast<unsigned long long>(g0.cycles),
                static_cast<unsigned long long>(g1.cycles), slowdown);
    std::printf("kernel share of execution time: %s (w/o), %s (w/) "
                "(paper: 19.5%% for sha); of instructions: %s / %s\n",
                pct(static_cast<double>(g0.kernelCycles) / g0.cycles)
                    .c_str(),
                pct(static_cast<double>(g1.kernelCycles) / g1.cycles)
                    .c_str(),
                pct(static_cast<double>(g0.kernelInsts) / g0.insts)
                    .c_str(),
                pct(static_cast<double>(g1.kernelInsts) / g1.insts)
                    .c_str());

    auto ratio = [](double before, double after) {
        return after > 0 ? before / after : 0.0;
    };
    std::printf("\nheadline: PVF reduced %.2fx, SVF reduced %.2fx "
                "(paper: up to 3.8x / 3.3x)\n",
                ratio(pvf0.total(), pvf1.total()),
                ratio(svf0.total(), svf1.total()));
    const double avfDelta =
        avf0.total() > 0
            ? (avf1.total() - avf0.total()) / avf0.total() * 100.0
            : 0.0;
    std::printf("          cross-layer AVF changed by %+.1f%% (paper: "
                "+30%% sha, +10%% smooth — the hardened system is NOT "
                "less vulnerable end-to-end)\n",
                avfDelta);
}

} // namespace vstack::bench
