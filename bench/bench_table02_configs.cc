/**
 * @file
 * Table II reproduction: the simulated microarchitecture parameters,
 * augmented with measured golden-run behaviour (cycles, IPC, kernel
 * share) of a reference workload per core.
 */
#include "common.h"

#include "uarch/core.h"

using namespace vstack;
using namespace vstack::bench;

int
main()
{
    VulnerabilityStack stack(EnvConfig::fromEnvironment());
    banner("Table II", "Simulated core parameters (paper Table II analog)",
           stack);

    Table t("Core configurations");
    t.header({"parameter", "ax9", "ax15", "ax57", "ax72"});
    auto row = [&](const char *name, auto get) {
        std::vector<std::string> cells{name};
        for (const CoreConfig &c : allCores())
            cells.push_back(get(c));
        t.row(cells);
    };
    row("ISA", [](const CoreConfig &c) {
        return std::string(isaName(c.isa));
    });
    row("width (f/r/i/c)", [](const CoreConfig &c) {
        return strprintf("%d/%d/%d/%d", c.fetchWidth, c.renameWidth,
                         c.issueWidth, c.commitWidth);
    });
    row("ROB", [](const CoreConfig &c) {
        return std::to_string(c.robSize);
    });
    row("IQ", [](const CoreConfig &c) { return std::to_string(c.iqSize); });
    row("LQ/SQ", [](const CoreConfig &c) {
        return strprintf("%d/%d", c.lqSize, c.sqSize);
    });
    row("phys regs", [](const CoreConfig &c) {
        return std::to_string(c.numPhysRegs);
    });
    row("L1i", [](const CoreConfig &c) {
        return strprintf("%uKB/%dw", c.l1i.sizeKB, c.l1i.assoc);
    });
    row("L1d", [](const CoreConfig &c) {
        return strprintf("%uKB/%dw", c.l1d.sizeKB, c.l1d.assoc);
    });
    row("L2", [](const CoreConfig &c) {
        return strprintf("%uKB/%dw", c.l2.sizeKB, c.l2.assoc);
    });
    row("mem latency", [](const CoreConfig &c) {
        return std::to_string(c.memLatency);
    });
    std::printf("%s\n", t.render().c_str());

    Table bits("Injectable structure sizes (bits)");
    bits.header({"structure", "ax9", "ax15", "ax57", "ax72"});
    for (Structure s : allStructures) {
        std::vector<std::string> cells{structureName(s)};
        for (const CoreConfig &c : allCores()) {
            CycleSim sim(c);
            cells.push_back(std::to_string(sim.structureBits(s)));
        }
        bits.row(cells);
    }
    std::printf("%s\n", bits.render().c_str());

    Table g("Golden-run behaviour (fft reference workload)");
    g.header({"core", "cycles", "insts", "IPC", "kernel insts"});
    for (const CoreConfig &c : allCores()) {
        UarchGolden gg = stack.uarchGolden(c.name, {"fft", false});
        g.row({c.name, std::to_string(gg.cycles),
               std::to_string(gg.insts),
               Table::num(static_cast<double>(gg.insts) / gg.cycles, 2),
               pct(static_cast<double>(gg.kernelInsts) / gg.insts)});
    }
    std::printf("%s\n", g.render().c_str());
    return 0;
}
