/**
 * @file
 * Table III reproduction: the frequency of opposite relative
 * vulnerability comparisons — benchmark pairs whose ordering flips
 * between PVF/SVF and the cross-layer AVF — per core, for total
 * vulnerability and for the dominant fault-effect class.
 */
#include "common.h"

using namespace vstack;
using namespace vstack::bench;

namespace
{

int
inversions(const std::vector<double> &a, const std::vector<double> &b)
{
    int count = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        for (size_t j = i + 1; j < a.size(); ++j) {
            if ((a[i] - a[j]) * (b[i] - b[j]) < 0)
                ++count;
        }
    }
    return count;
}

} // namespace

int
main()
{
    VulnerabilityStack stack(EnvConfig::fromEnvironment());
    banner("Table III",
           "Opposite relative vulnerability comparisons between layers "
           "(pairs out of 45; dominant-effect disagreements out of 10)",
           stack);

    Table t("Table III");
    t.header({"core", "PVF~AVF total", "PVF~AVF effect", "SVF~AVF total",
              "SVF~AVF effect", "SVF~PVF total"});

    const auto names = workloadNames();
    CampaignPlan plan;
    for (const CoreConfig &core : allCores()) {
        for (const std::string &wl : names) {
            const Variant v{wl, false};
            plan.addUarchAll(core.name, v);
            plan.addPvf(core.isa, v, Fpm::WD);
            if (core.isa == IsaId::Av64)
                plan.addSvf(v);
        }
    }
    prefetch(stack, plan);

    for (const CoreConfig &core : allCores()) {
        std::vector<double> avfTot, pvfTot, svfTot;
        int pvfEff = 0, svfEff = 0;
        const bool hasSvf = core.isa == IsaId::Av64; // LLFI: 64-bit only
        for (const std::string &wl : names) {
            Variant v{wl, false};
            VulnSplit a = stack.weightedAvf(core.name, v);
            VulnSplit p = stack.pvfSplit(core.isa, v);
            avfTot.push_back(a.total());
            pvfTot.push_back(p.total());
            if ((p.sdc > p.crash) != (a.sdc > a.crash))
                ++pvfEff;
            if (hasSvf) {
                VulnSplit s = stack.svfSplit(v);
                svfTot.push_back(s.total());
                if ((s.sdc > s.crash) != (a.sdc > a.crash))
                    ++svfEff;
            }
        }
        std::vector<std::string> row{core.name};
        row.push_back(std::to_string(inversions(pvfTot, avfTot)));
        row.push_back(std::to_string(pvfEff));
        if (hasSvf) {
            row.push_back(std::to_string(inversions(svfTot, avfTot)));
            row.push_back(std::to_string(svfEff));
            row.push_back(std::to_string(inversions(svfTot, pvfTot)));
        } else {
            row.insert(row.end(), {"n/a", "n/a", "n/a"});
        }
        t.row(row);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: double-digit pair inversions between the "
                "higher-level estimates and the cross-layer AVF; SVF "
                "is only measurable on the 64-bit ISA (LLFI "
                "limitation).\n");
    return 0;
}
