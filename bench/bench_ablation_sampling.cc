/**
 * @file
 * Ablation: statistical fault-sampling convergence.
 *
 * The paper adopts Leveugle et al.'s model (2,000 samples -> 2.88%
 * margin at 99% confidence).  This bench doubles the sample count of
 * one campaign repeatedly and reports the estimate alongside the
 * model's predicted margin, demonstrating that campaign noise behaves
 * as the model says (and what the default host-friendly sample counts
 * buy).
 */
#include "common.h"

#include "gefin/campaign.h"
#include "support/stats.h"

using namespace vstack;
using namespace vstack::bench;

int
main()
{
    EnvConfig env = EnvConfig::fromEnvironment();
    std::printf("=== Ablation: sampling convergence (RF on sha/ax72) "
                "===\n\n");

    VulnerabilityStack stack(env);
    const Program &image = stack.imageFor({"sha", false}, IsaId::Av64);
    UarchCampaign campaign(coreByName("ax72"), image);

    Table t("AVF estimate vs sample count");
    t.header({"samples", "AVF", "HVF", "99% margin (model)"});
    double last = 0;
    for (size_t n : {50u, 100u, 200u, 400u, 800u}) {
        UarchCampaignResult r = campaign.run(Structure::RF, n, env.seed);
        t.row({std::to_string(n), pct(r.avf()), pct(r.hvf()),
               "+/-" + pct(samplingMargin(n, 0.5, 0.99))});
        last = r.avf();
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Final estimate %.2f%%; successive estimates must stay "
                "within the model's shrinking margins.\n", last * 100);
    return 0;
}
