/**
 * @file
 * Fig. 1 reproduction: the motivating example.  Software-layer
 * analysis (SVF) vs cross-layer analysis (AVF, ax72) for sha and
 * qsort — the paper's teaser showing that the two layers can invert
 * both the SDC/Crash balance and the cross-benchmark ranking.
 */
#include "common.h"

using namespace vstack;
using namespace vstack::bench;

int
main()
{
    VulnerabilityStack stack(EnvConfig::fromEnvironment());
    banner("Fig. 1",
           "Software-layer vs cross-layer vulnerability for sha and "
           "qsort (paper: the layers report opposite pictures)",
           stack);

    CampaignPlan plan;
    for (const char *wl : {"sha", "qsort"}) {
        plan.addSvf({wl, false});
        plan.addUarchAll("ax72", {wl, false});
    }
    prefetch(stack, plan);

    Table sw("Software-layer analysis (SVF, LLFI analog)");
    sw.header({"benchmark", "SDC", "Crash", "total"});
    Table avf("Cross-layer analysis (AVF, ax72, size-weighted)");
    avf.header({"benchmark", "SDC", "Crash", "total"});

    for (const std::string &wl : {std::string("sha"), std::string("qsort")}) {
        Variant v{wl, false};
        VulnSplit s = stack.svfSplit(v);
        sw.row({wl, pct(s.sdc), pct(s.crash), pct(s.total())});
        VulnSplit a = stack.weightedAvf("ax72", v);
        avf.row({wl, pct(a.sdc), pct(a.crash), pct(a.total())});
    }
    std::printf("%s\n%s\n", sw.render().c_str(), avf.render().c_str());

    std::printf("Paper's claims to check: (1) software-layer analysis "
                "reports SDC-dominated vulnerability;\n(2) the "
                "cross-layer analysis is Crash-leaning and far smaller "
                "in absolute value;\n(3) the sha/qsort ranking can "
                "invert between the layers.\n");
    return 0;
}
