/**
 * @file
 * Fig. 9 reproduction: fine-grained Crash-only and SDC-only
 * vulnerability across the three layers (SVF, PVF, AVF on ax72) —
 * the comparison that misleads protection decisions (Section VI.A).
 */
#include "common.h"

using namespace vstack;
using namespace vstack::bench;

int
main()
{
    VulnerabilityStack stack(EnvConfig::fromEnvironment());
    banner("Fig. 9",
           "Crash-only and SDC-only vulnerability per layer (av64/ax72)",
           stack);

    CampaignPlan plan;
    for (const std::string &wl : workloadNames()) {
        const Variant v{wl, false};
        plan.addSvf(v);
        plan.addPvf(IsaId::Av64, v, Fpm::WD);
        plan.addUarchAll("ax72", v);
    }
    prefetch(stack, plan);

    Table crash("Crash vulnerability per layer");
    crash.header({"benchmark", "SVF", "PVF", "AVF"});
    Table sdc("SDC vulnerability per layer");
    sdc.header({"benchmark", "SVF", "PVF", "AVF"});

    for (const std::string &wl : workloadNames()) {
        Variant v{wl, false};
        VulnSplit s = stack.svfSplit(v);
        VulnSplit p = stack.pvfSplit(IsaId::Av64, v);
        VulnSplit a = stack.weightedAvf("ax72", v);
        crash.row({wl, pct(s.crash), pct(p.crash), pct(a.crash)});
        sdc.row({wl, pct(s.sdc), pct(p.sdc), pct(a.sdc)});
    }
    std::printf("%s\n%s\n", crash.render().c_str(), sdc.render().c_str());
    std::printf("Paper: for workloads like sha/smooth the higher layers "
                "report SDC-dominance while AVF reports "
                "Crash-dominance — the pitfall motivating the "
                "Section VI case study.\n");
    return 0;
}
