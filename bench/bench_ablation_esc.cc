/**
 * @file
 * Ablation: the Escaped (ESC) class vs the DMA drain window.
 *
 * ESC faults corrupt output-bound bytes between the kernel's dcache
 * clean and the DMA engine's pull.  This bench sweeps the engine's
 * drain latency to show the class is a property of the I/O window,
 * not an artifact: with a near-immediate drain the window (and ESC)
 * collapses; with a deferred drain (the default, modelling buffered
 * file I/O) the class is clearly measurable — and by construction it
 * is invisible to PVF/SVF no matter the window.
 */
#include "common.h"

#include "gefin/campaign.h"
#include "kernel/kernel.h"

using namespace vstack;
using namespace vstack::bench;

int
main()
{
    EnvConfig env = EnvConfig::fromEnvironment();
    // The ESC surface is a small fraction of the L2 bit space, so
    // this ablation needs a larger sample than a figure cell.
    const size_t n = std::max<size_t>(env.uarchFaults * 10, 1500);
    std::printf("=== Ablation: ESC vs DMA drain window ===\n");
    std::printf("L2 campaigns on qsort/ax72, %zu faults per point\n\n", n);

    VulnerabilityStack stack(env); // only for the prebuilt image
    const Program &image =
        stack.imageFor({"qsort", false}, IsaId::Av64);

    Table t("ESC sensitivity to the drain window");
    t.header({"dma delay (cycles)", "L2 visible", "of which ESC",
              "ESC share"});
    for (uint64_t delay : {500ull, 4000ull, 30000ull, 120000ull}) {
        CoreConfig core = coreByName("ax72");
        core.dmaDelay = delay;
        UarchCampaign campaign(core, image);
        UarchCampaignResult r =
            campaign.run(Structure::L2, n, env.seed);
        const uint64_t visible = r.fpms.total();
        t.row({std::to_string(delay), std::to_string(visible),
               std::to_string(r.fpms.esc),
               visible ? pct(static_cast<double>(r.fpms.esc) / visible)
                       : "n/a"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Expectation: ESC grows monotonically with the window "
                "while WD consumption stays roughly flat.\n");
    return 0;
}
