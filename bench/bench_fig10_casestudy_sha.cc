/**
 * @file
 * Fig. 10 reproduction: the sha software-fault-tolerance case study.
 */
#include "casestudy.h"

int
main()
{
    vstack::bench::runCaseStudy("Fig. 10", "sha");
    return 0;
}
