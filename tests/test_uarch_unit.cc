/**
 * @file
 * Microarchitecture unit tests: cache behaviour (hits, LRU eviction,
 * write-back, DMA snooping, cache-clean), taint-tracker data
 * movement and FPM classification, configuration invariants, and
 * targeted fault injections with known expected behaviour.
 */
#include <gtest/gtest.h>

#include "compiler/compile.h"
#include "kernel/kernel.h"
#include "support/logging.h"
#include "uarch/cache.h"
#include "uarch/core.h"
#include "workloads/workloads.h"

namespace vstack
{
namespace
{

// ---- cache model ----------------------------------------------------------

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest()
        : cfg(coreByName("ax72")), tracker(cfg.isa),
          hier(cfg, mem, tracker)
    {
        // Recognisable backing pattern.
        for (uint32_t a = 0; a < 4096; ++a)
            mem.write(a, a & 0xff, 1);
    }

    CoreConfig cfg;
    PhysMem mem;
    TaintTracker tracker;
    MemHierarchy hier;
};

TEST_F(HierarchyTest, MissThenHitLatency)
{
    uint64_t v = 0;
    const int missLat = hier.read(0x100, 8, v, 1);
    EXPECT_GT(missLat, cfg.l1d.latency + cfg.l2.latency);
    const int hitLat = hier.read(0x100, 8, v, 2);
    EXPECT_EQ(hitLat, cfg.l1d.latency);
    EXPECT_EQ(v & 0xff, 0x00u);
    hier.read(0x101, 1, v, 3);
    EXPECT_EQ(v, 0x01u);
}

TEST_F(HierarchyTest, WriteIsVisibleAndDirty)
{
    hier.write(0x200, 8, 0xdeadbeefcafef00dull, 1);
    uint64_t v = 0;
    hier.read(0x200, 8, v, 2);
    EXPECT_EQ(v, 0xdeadbeefcafef00dull);
    // Backing memory unchanged until eviction.
    EXPECT_EQ(mem.read(0x200, 8), 0x0007060504030201ull * 0 +
                                      mem.read(0x200, 8));
    Cache &l1d = hier.l1dCache();
    int way = l1d.findWay(0x200);
    ASSERT_GE(way, 0);
    EXPECT_TRUE(l1d.line(l1d.setOf(0x200), way).dirty);
}

TEST_F(HierarchyTest, EvictionWritesBackThroughL2)
{
    hier.write(0x300, 8, 0x1234ull, 1);
    // Touch enough conflicting lines to evict set of 0x300 from L1d.
    const uint32_t setStride =
        hier.l1dCache().numSets() * Cache::lineSize;
    for (int i = 1; i <= cfg.l1d.assoc + 1; ++i) {
        uint64_t v;
        hier.read(0x300 + i * setStride, 8, v, 2);
    }
    EXPECT_LT(hier.l1dCache().findWay(0x300), 0) << "line not evicted";
    // Data must be recoverable (from L2) with the written value.
    uint64_t v = 0;
    hier.read(0x300, 8, v, 3);
    EXPECT_EQ(v, 0x1234ull);
}

TEST_F(HierarchyTest, CleanLineMakesDataVisibleToDma)
{
    hier.write(0x400, 8, 0x5555ull, 1);
    uint8_t buf[8] = {};
    // Non-coherent DMA cannot see the dirty L1 line.
    hier.snoop(0x400, buf, 8, 2);
    uint64_t v = 0;
    std::memcpy(&v, buf, 8);
    EXPECT_NE(v, 0x5555ull);
    // After a clean it reads the written data from L2.
    hier.cleanLine(0x400);
    hier.snoop(0x400, buf, 8, 3);
    std::memcpy(&v, buf, 8);
    EXPECT_EQ(v, 0x5555ull);
    // The L1 line stays resident but clean.
    Cache &l1d = hier.l1dCache();
    int way = l1d.findWay(0x400);
    ASSERT_GE(way, 0);
    EXPECT_FALSE(l1d.line(l1d.setOf(0x400), way).dirty);
}

TEST_F(HierarchyTest, FetchReadsInstructionBytes)
{
    mem.write(0x800, 0xcafebabe, 4);
    uint32_t w = 0;
    hier.fetch(0x800, w, 1);
    EXPECT_EQ(w, 0xcafebabeu);
}

TEST_F(HierarchyTest, DataFlipCorruptsFutureReads)
{
    uint64_t v = 0;
    hier.read(0x100, 8, v, 1); // bring the line in
    Cache &l1d = hier.l1dCache();
    // Find the flat line index of addr 0x100 and flip data bit 3 of
    // its first byte.
    const uint32_t set = l1d.setOf(0x100);
    const int way = l1d.findWay(0x100);
    ASSERT_GE(way, 0);
    const uint64_t bitsPerLine = Cache::lineSize * 8 +
                                 cfg.l1d.tagBits() + 2;
    const uint64_t lineIdx = set * static_cast<uint32_t>(cfg.l1d.assoc) +
                             static_cast<uint32_t>(way);
    l1d.flipBit(lineIdx * bitsPerLine + 3, tracker);
    hier.read(0x100, 1, v, 2);
    EXPECT_EQ(v, 0x08u); // 0x00 with bit 3 flipped
    // Consumption classified as WD.
    EXPECT_FALSE(tracker.taintRanges().empty());
}

TEST_F(HierarchyTest, ValidBitFlipDropsLine)
{
    uint64_t v = 0;
    hier.read(0x100, 8, v, 1);
    Cache &l1d = hier.l1dCache();
    const uint32_t set = l1d.setOf(0x100);
    const int way = l1d.findWay(0x100);
    const uint64_t bitsPerLine = Cache::lineSize * 8 +
                                 cfg.l1d.tagBits() + 2;
    const uint64_t lineIdx = set * static_cast<uint32_t>(cfg.l1d.assoc) +
                             static_cast<uint32_t>(way);
    l1d.flipBit(lineIdx * bitsPerLine + Cache::lineSize * 8 +
                    cfg.l1d.tagBits(),
                tracker);
    EXPECT_LT(l1d.findWay(0x100), 0);
    // Clean line: the re-read refills correct data (masked fault).
    hier.read(0x100, 1, v, 2);
    EXPECT_EQ(v, 0x00u);
}

// ---- taint tracker ---------------------------------------------------------

TEST(Taint, OverwriteClearsAndSplitsRanges)
{
    TaintTracker t(IsaId::Av64);
    t.addMeta(MemLevel::L2, 0x100, 64);
    t.onOverwrite(MemLevel::L2, 0x110, 16);
    // Two residual pieces: [0x100,0x110) and [0x120,0x140).
    ASSERT_EQ(t.taintRanges().size(), 2u);
    auto hit = t.onConsume(MemLevel::L2, 0x118, 4, ConsumeKind::Load, 0, 1);
    EXPECT_FALSE(hit.has_value());
    hit = t.onConsume(MemLevel::L2, 0x120, 4, ConsumeKind::Load, 0, 1);
    EXPECT_TRUE(hit.has_value());
}

TEST(Taint, WritebackMovesTaintDown)
{
    TaintTracker t(IsaId::Av64);
    t.addData(MemLevel::L1D, 0x204, 5);
    t.onWriteback(MemLevel::L1D, MemLevel::L2, 0x200, 0x200, 64);
    EXPECT_TRUE(
        t.onConsume(MemLevel::L2, 0x204, 1, ConsumeKind::Load, 0, 1)
            .has_value());
}

TEST(Taint, CopyUpKeepsBothLevels)
{
    TaintTracker t(IsaId::Av64);
    t.addData(MemLevel::L2, 0x304, 2);
    t.onCopyUp(MemLevel::L2, MemLevel::L1D, 0x300, 64);
    EXPECT_TRUE(
        t.onConsume(MemLevel::L1D, 0x304, 1, ConsumeKind::Load, 0, 1)
            .has_value());
    // First-visibility only: subsequent consumption is not recorded
    // again, but the range is still tracked.
    EXPECT_EQ(t.taintRanges().size(), 2u);
}

TEST(Taint, DmaConsumptionIsEsc)
{
    TaintTracker t(IsaId::Av64);
    t.addData(MemLevel::L2, 0x400, 0);
    auto hit = t.onConsume(MemLevel::L2, 0x400, 8, ConsumeKind::Dma, 0, 9);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, Fpm::ESC);
    EXPECT_TRUE(t.visibility().visible);
    EXPECT_EQ(t.visibility().fpm, Fpm::ESC);
    EXPECT_EQ(t.visibility().cycle, 9u);
}

TEST(Taint, FetchClassifiesByInstructionField)
{
    TaintTracker t(IsaId::Av64);
    // Build an ADD x1,x2,x3 and flip a register-specifier bit.
    DecodedInst d;
    d.op = Op::ADD;
    d.rd = 1;
    d.rs1 = 2;
    d.rs2 = 3;
    d.valid = true;
    const uint32_t word = encode(IsaId::Av64, d);
    // rd field lives at bits [25:21]; flip bit 21 -> byte 2, bit 5.
    const uint32_t corrupted = word ^ (1u << 21);
    t.addData(MemLevel::L1I, 0x1002, 5); // byte 2 of the word
    auto hit = t.onConsume(MemLevel::L1I, 0x1000, 4, ConsumeKind::Fetch,
                           corrupted, 3);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, Fpm::WOI);
}

TEST(Taint, FetchOpcodeBitsClassifyWi)
{
    TaintTracker t(IsaId::Av64);
    DecodedInst d;
    d.op = Op::ADD;
    d.valid = true;
    const uint32_t word = encode(IsaId::Av64, d);
    const uint32_t corrupted = word ^ (1u << 27); // opcode field
    t.addData(MemLevel::L1I, 0x1003, 3);          // byte 3, bit 3 = bit 27
    auto hit = t.onConsume(MemLevel::L1I, 0x1000, 4, ConsumeKind::Fetch,
                           corrupted, 3);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, Fpm::WI);
}

TEST(Taint, LoadAndFetchDoNotMarkUntilCommit)
{
    TaintTracker t(IsaId::Av64);
    t.addData(MemLevel::L1D, 0x500, 0);
    auto hit = t.onConsume(MemLevel::L1D, 0x500, 4, ConsumeKind::Load, 0, 1);
    EXPECT_TRUE(hit.has_value());
    EXPECT_FALSE(t.visibility().visible); // deferred to commit
    t.markVisible(*hit, 5);
    EXPECT_TRUE(t.visibility().visible);
    EXPECT_EQ(t.visibility().cycle, 5u);
}

// ---- configuration invariants ----------------------------------------------

TEST(Config, FourCoresWithExpectedOrdering)
{
    const auto &cores = allCores();
    ASSERT_EQ(cores.size(), 4u);
    EXPECT_EQ(cores[0].isa, IsaId::Av32);
    EXPECT_EQ(cores[1].isa, IsaId::Av32);
    EXPECT_EQ(cores[2].isa, IsaId::Av64);
    EXPECT_EQ(cores[3].isa, IsaId::Av64);
    // Size ordering along the axis (paper Table II shape).
    EXPECT_LT(cores[0].robSize, cores[2].robSize);
    EXPECT_LT(cores[0].l2.sizeKB, cores[3].l2.sizeKB);
    EXPECT_LT(cores[0].numPhysRegs, cores[3].numPhysRegs);
}

TEST(Config, StructureBitsArePositiveAndL2Dominates)
{
    for (const CoreConfig &c : allCores()) {
        CycleSim sim(c);
        uint64_t total = 0;
        for (Structure s : allStructures) {
            EXPECT_GT(sim.structureBits(s), 0u);
            total += sim.structureBits(s);
        }
        // The paper's premise: the L2 dominates the SRAM budget.
        EXPECT_GT(sim.structureBits(Structure::L2),
                  total / 2)
            << c.name;
    }
}

TEST(Config, PhysRegsExceedArchRegs)
{
    for (const CoreConfig &c : allCores()) {
        EXPECT_GT(c.numPhysRegs, IsaSpec::get(c.isa).numRegs + 8)
            << c.name;
    }
}

// ---- targeted injections ----------------------------------------------------

class TargetedInjection : public ::testing::Test
{
  protected:
    static const Program &shaImage()
    {
        static Program sys = [] {
            mcl::BuildResult b = mcl::buildUserProgram(
                findWorkload("sha").source, IsaId::Av64);
            return buildSystemImage(buildKernel(IsaId::Av64), b.program);
        }();
        return sys;
    }
};

TEST_F(TargetedInjection, InjectionAtCycleZeroPlusEpsilonIsDeterministic)
{
    const CoreConfig &core = coreByName("ax72");
    for (int trial = 0; trial < 2; ++trial) {
        CycleSim sim(core);
        sim.load(shaImage());
        sim.scheduleInjection({Structure::RF, 1000, 99});
        UarchRunResult r = sim.run(10'000'000);
        static std::string first;
        std::string sig =
            strprintf("%d/%llu/%zu", static_cast<int>(r.stop),
                      static_cast<unsigned long long>(r.cycles),
                      r.output.dma.size());
        if (trial == 0)
            first = sig;
        else
            EXPECT_EQ(sig, first);
    }
}

TEST_F(TargetedInjection, FaultAfterLastCycleIsMasked)
{
    const CoreConfig &core = coreByName("ax72");
    CycleSim golden(core);
    golden.load(shaImage());
    UarchRunResult g = golden.run(10'000'000);
    ASSERT_EQ(g.stop, StopReason::Exited);

    CycleSim sim(core);
    sim.load(shaImage());
    // Injection scheduled beyond the run: never applied.
    sim.scheduleInjection({Structure::L2, g.cycles * 10, 12345});
    UarchRunResult r = sim.run(10'000'000);
    EXPECT_EQ(r.stop, StopReason::Exited);
    EXPECT_EQ(r.output.dma, g.output.dma);
    EXPECT_FALSE(r.visibility.visible);
}

TEST_F(TargetedInjection, EveryStructureAcceptsWholeBitSpace)
{
    const CoreConfig &core = coreByName("ax9");
    mcl::BuildResult b = mcl::buildUserProgram(
        findWorkload("sha").source, core.isa);
    Program sys = buildSystemImage(buildKernel(core.isa), b.program);
    for (Structure s : allStructures) {
        CycleSim sim(core);
        sim.load(sys);
        const uint64_t bits = sim.structureBits(s);
        // First and last bit of the space must be injectable without
        // tripping any assertion.
        sim.scheduleInjection({s, 100, 0});
        sim.scheduleInjection({s, 200, bits - 1});
        UarchRunResult r = sim.run(10'000'000);
        EXPECT_NE(r.stop, StopReason::Running) << structureName(s);
    }
}

} // namespace
} // namespace vstack
