/**
 * @file
 * Hardening-pass unit tests: structural properties of the transformed
 * IR, detection coverage per corruption site, AN parameter choices,
 * and the protection boundary (runtime functions stay unprotected).
 */
#include <gtest/gtest.h>

#include "compiler/compile.h"
#include "ft/harden.h"
#include "swfi/interp.h"
#include "swfi/svf.h"
#include "workloads/workloads.h"

namespace vstack
{
namespace
{

ir::Module
irOf(const std::string &src, int xlen = 64, bool withRuntime = true)
{
    mcl::FrontendResult fr = mcl::compileToIr(src, xlen, withRuntime);
    EXPECT_TRUE(fr.ok) << fr.error;
    return std::move(fr.module);
}

TEST(FtPass, HardenedIrVerifiesAndGrows)
{
    ir::Module m = irOf(R"(
        var g: int[8];
        fn main(): int {
            var i: int = 0;
            while (i < 8) { g[i] = i * i; i = i + 1; }
            return g[5];
        }
    )");
    ir::Module h = hardenModule(m, defaultHardenOptions());
    EXPECT_EQ(ir::verify(h), "");
    // Protected code (main) must grow substantially; the module total
    // also includes the untouched runtime library.
    const size_t before = ir::instCount(m.funcs[m.findFunc("main")]);
    const size_t after = ir::instCount(h.funcs[h.findFunc("main")]);
    EXPECT_GT(after, before * 2);
}

TEST(FtPass, RuntimeFunctionsAreLeftIntact)
{
    ir::Module m = irOf("fn main(): int { print_int(1); return 0; }");
    ir::Module h = hardenModule(m, defaultHardenOptions());
    const int plainIdx = m.findFunc("print_int");
    const int hardIdx = h.findFunc("print_int");
    ASSERT_GE(plainIdx, 0);
    ASSERT_GE(hardIdx, 0);
    EXPECT_EQ(ir::instCount(m.funcs[plainIdx]),
              ir::instCount(h.funcs[hardIdx]));
    // main, by contrast, grew.
    EXPECT_GT(ir::instCount(h.funcs[h.findFunc("main")]),
              ir::instCount(m.funcs[m.findFunc("main")]));
}

TEST(FtPass, EquivalentForManyAValues)
{
    ir::Module m = irOf(R"(
        fn mix(x: int): int {
            return ((x * 2654435761) ^ (x >> 7)) & 0xffffff;
        }
        fn main(): int {
            var acc: int = 0;
            var i: int = 1;
            while (i < 40) { acc = (acc + mix(i)) & 0xffffff; i = i + 1; }
            return acc & 0xff;
        }
    )");
    IrInterp plain(m);
    const uint32_t expect = plain.run().exitCode;
    for (int64_t A : {3, 257, 58659, 65521}) {
        HardenOptions opts = defaultHardenOptions();
        opts.A = A;
        ir::Module h = hardenModule(m, opts);
        IrInterp ft(h);
        InterpResult r = ft.run();
        ASSERT_EQ(r.stop, StopReason::Exited)
            << "A=" << A << " detect=" << r.detectCode;
        EXPECT_EQ(r.exitCode, expect) << "A=" << A;
    }
}

TEST(FtPass, AddressCheckingTogglesCostAndCoverage)
{
    ir::Module m = irOf(findWorkload("qsort").source);
    HardenOptions with = defaultHardenOptions();
    with.checkAddresses = true;
    HardenOptions without = defaultHardenOptions();
    without.checkAddresses = false;

    ir::Module hWith = hardenModule(m, with);
    ir::Module hWithout = hardenModule(m, without);
    IrInterp a(hWith), b(hWithout);
    InterpResult ra = a.run(), rb = b.run();
    ASSERT_EQ(ra.stop, StopReason::Exited);
    ASSERT_EQ(rb.stop, StopReason::Exited);
    EXPECT_EQ(ra.output, rb.output);
    EXPECT_GT(ra.steps, rb.steps); // address checks cost instructions
}

TEST(FtPass, DetectionCoverageIsHighUnderSvf)
{
    ir::Module m = irOf(findWorkload("rijndael").source);
    ir::Module h = hardenModule(m, defaultHardenOptions());
    SvfCampaign plain(m), ft(h);
    OutcomeCounts c0 = plain.run(300, 77);
    OutcomeCounts c1 = ft.run(300, 77);
    // Most previously-SDC faults must now be caught or masked.
    EXPECT_LT(c1.sdcRate(), c0.sdcRate() / 2.0);
    EXPECT_GT(c1.detectedRate(), 0.2);
}

TEST(FtPass, HardenedGoldenIsDeterministic)
{
    ir::Module m = irOf(findWorkload("smooth").source);
    ir::Module h = hardenModule(m, defaultHardenOptions());
    IrInterp i1(h), i2(h);
    InterpResult a = i1.run(), b = i2.run();
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.steps, b.steps);
}

} // namespace
} // namespace vstack
