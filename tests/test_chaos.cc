/**
 * @file
 * Chaos harness for the campaign storage stack: systematic failpoint
 * schedules (short writes, ENOSPC, EINTR storms, kill-at-site) driven
 * through real executor runs, asserting the recovery invariants that
 * make campaign numbers trustworthy:
 *
 *  - a resumed campaign's results are bit-identical to an
 *    uninterrupted run, at any jobs count;
 *  - no sample is ever double-counted or lost: every index is either
 *    replayed from an intact journal record or re-simulated exactly
 *    once;
 *  - corrupt records are quarantined into `.corrupt` sidecars and
 *    counted in storageFaults(), never silently trusted;
 *  - the result cache never exposes a partial entry, even when the
 *    process dies between the temp-file write and the rename.
 *
 * Tests fork real children (armed with failpoints) and are therefore
 * excluded from the TSan stage of tools/ci_sanitize.sh, like the
 * sandbox tests.  Payloads reuse the deterministic mix(i) scheme from
 * test_exec.cc so chaos runs can be compared against clean runs.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/resultstore.h"
#include "exec/executor.h"
#include "exec/journal.h"
#include "exec/sandbox.h"
#include "support/failpoint.h"
#include "support/json.h"

namespace vstack
{
namespace
{

struct CountingCtx
{
    size_t runs = 0;
};

Json
encodeU64(const uint64_t &v)
{
    return Json(v);
}

uint64_t
decodeU64(const Json &j)
{
    return static_cast<uint64_t>(j.asInt());
}

/** Deterministic per-sample payload (same scheme as test_exec.cc). */
uint64_t
mix(size_t i)
{
    uint64_t z = static_cast<uint64_t>(i) + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    return z ^ (z >> 27);
}

class ChaosTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        clearFailpoints();
        // Per-process dir: ctest runs each case as its own process,
        // possibly concurrently; a shared fixed path would race.
        dir = "/tmp/vstack_chaos_test." + std::to_string(getpid());
        std::filesystem::remove_all(dir);
        path = dir + "/j.jsonl";
    }
    void TearDown() override
    {
        clearFailpoints();
        std::filesystem::remove_all(dir);
    }

    /** Reference: an uninterrupted, unjournaled serial run. */
    std::vector<std::optional<uint64_t>> cleanRun(size_t n)
    {
        return exec::runSamples<uint64_t>(
            n, exec::ExecConfig{},
            [] { return std::make_unique<CountingCtx>(); },
            [](CountingCtx &, size_t i) { return mix(i); }, encodeU64,
            decodeU64);
    }

    std::string dir, path;
};

// ---- journal chaos ----------------------------------------------------------

TEST_F(ChaosTest, ShortWriteCorruptionHealsOnResume)
{
    const size_t n = 40;
    const auto reference = cleanRun(n);

    // Chaos phase: arm short writes *after* open() so the header lands
    // intact; every fifth record append is torn mid-line, and the next
    // append merges with the torn half into newline-terminated
    // garbage — mid-file corruption, not a benign torn tail.
    {
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "camp", n, 1, false));
        armFailpoints("journal.append.short_write=1/5");
        exec::ExecConfig ec;
        ec.journal = &j;
        exec::runSamples<uint64_t>(
            n, ec, [] { return std::make_unique<CountingCtx>(); },
            [](CountingCtx &, size_t i) { return mix(i); }, encodeU64,
            decodeU64);
        clearFailpoints();
    }

    // Recovery: corrupt records quarantined + counted, survivors
    // replayed, lost samples re-simulated exactly once.
    exec::Journal j;
    ASSERT_TRUE(j.open(path, "camp", n, 1, true));
    EXPECT_GT(j.storageFaults(), 0u);
    EXPECT_LT(j.replayed(), n);
    EXPECT_TRUE(
        std::filesystem::exists(exec::Journal::corruptPathFor(path)));

    std::set<size_t> resimulated;
    exec::ExecConfig ec;
    ec.journal = &j;
    auto recovered = exec::runSamples<uint64_t>(
        n, ec, [] { return std::make_unique<CountingCtx>(); },
        [&](CountingCtx &, size_t i) {
            EXPECT_TRUE(resimulated.insert(i).second)
                << "sample " << i << " simulated twice";
            return mix(i);
        },
        encodeU64, decodeU64);
    EXPECT_EQ(recovered, reference);
    EXPECT_EQ(resimulated.size() + j.replayed(), n)
        << "every sample exactly once: replayed or re-simulated";

    // The heal rewrote the file: a third open sees a clean journal.
    exec::Journal k;
    ASSERT_TRUE(k.open(path, "camp", n, 1, true));
    EXPECT_EQ(k.storageFaults(), 0u);
    EXPECT_EQ(k.replayed(), n);
}

TEST_F(ChaosTest, ResumeAfterKillAtAppendIsByteIdentical)
{
    const size_t n = 30;
    const auto reference = cleanRun(n);

    // A child campaign dies by "SIGKILL" exactly mid-append (hit 8 =
    // header + 7th record), leaving a torn tail on disk.
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        armFailpoints("journal.append.kill=@8");
        exec::Journal j;
        if (!j.open(path, "camp", n, 1, false))
            _exit(90);
        exec::ExecConfig ec;
        ec.journal = &j;
        exec::runSamples<uint64_t>(
            n, ec, [] { return std::make_unique<CountingCtx>(); },
            [](CountingCtx &, size_t i) { return mix(i); }, encodeU64,
            decodeU64);
        _exit(0); // failpoint did not fire: fail the parent's check
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 137) << "child must die mid-append";

    // Resume: the torn tail is a benign kill artifact (skipped, not a
    // storage fault); the recovered aggregate is bit-identical.
    exec::Journal j;
    ASSERT_TRUE(j.open(path, "camp", n, 1, true));
    EXPECT_EQ(j.storageFaults(), 0u)
        << "a torn tail is expected kill damage, not corruption";
    EXPECT_LT(j.replayed(), n);
    exec::ExecConfig ec;
    ec.journal = &j;
    auto recovered = exec::runSamples<uint64_t>(
        n, ec, [] { return std::make_unique<CountingCtx>(); },
        [](CountingCtx &, size_t i) { return mix(i); }, encodeU64,
        decodeU64);
    EXPECT_EQ(recovered, reference);
}

TEST_F(ChaosTest, ScheduleSweepIsByteIdenticalAtAnyJobsCount)
{
    const size_t n = 60;
    const auto reference = cleanRun(n);
    const char *schedules[] = {
        "journal.append.short_write=1/6",
        "journal.append.short_write=2/9",
        "journal.fsync.eintr=1/2",
        "journal.append.short_write=1/4,journal.fsync.eintr=1/3",
    };

    for (const char *schedule : schedules) {
        for (unsigned jobs : {1u, 4u}) {
            std::filesystem::remove_all(dir);
            {
                exec::Journal j;
                ASSERT_TRUE(j.open(path, "camp", n, 1, false));
                j.setFsync(true); // exercise the fsync retry loop
                armFailpoints(schedule);
                exec::ExecConfig ec;
                ec.jobs = jobs;
                ec.journal = &j;
                exec::runSamples<uint64_t>(
                    n, ec,
                    [] { return std::make_unique<CountingCtx>(); },
                    [](CountingCtx &, size_t i) { return mix(i); },
                    encodeU64, decodeU64);
                clearFailpoints();
            }

            exec::Journal j;
            ASSERT_TRUE(j.open(path, "camp", n, 1, true));
            std::mutex mu;
            std::set<size_t> resimulated;
            exec::ExecConfig ec;
            ec.jobs = jobs;
            ec.journal = &j;
            auto recovered = exec::runSamples<uint64_t>(
                n, ec, [] { return std::make_unique<CountingCtx>(); },
                [&](CountingCtx &, size_t i) {
                    std::lock_guard<std::mutex> lock(mu);
                    EXPECT_TRUE(resimulated.insert(i).second)
                        << "double-simulated under '" << schedule << "'";
                    return mix(i);
                },
                encodeU64, decodeU64);
            EXPECT_EQ(recovered, reference)
                << "schedule '" << schedule << "' jobs=" << jobs;
            EXPECT_EQ(resimulated.size() + j.replayed(), n)
                << "schedule '" << schedule << "' jobs=" << jobs;
        }
    }
}

// ---- result-store chaos -----------------------------------------------------

TEST_F(ChaosTest, StoreShortWriteNeverExposesPartialEntry)
{
    ResultStore store(dir + "/cache");
    Json v = Json::object();
    v.set("sdc", 123);

    armFailpoints("store.write.enospc=1");
    store.put("key", v); // fails cleanly: short temp-file write
    clearFailpoints();
    EXPECT_FALSE(store.get("key").has_value());
    EXPECT_FALSE(std::filesystem::exists(store.pathFor("key")))
        << "a failed put must not install an entry";

    store.put("key", v); // the retry fully replaces the failure
    ASSERT_TRUE(store.get("key").has_value());
    EXPECT_EQ(store.get("key")->at("sdc").asInt(), 123);
    EXPECT_EQ(store.storageFaults(), 0u)
        << "a clean write failure is not data corruption";
}

TEST_F(ChaosTest, StoreRenameEnospcFailsCleanly)
{
    ResultStore store(dir + "/cache");
    armFailpoints("store.rename.enospc=1");
    store.put("key", Json(7));
    clearFailpoints();
    EXPECT_FALSE(store.get("key").has_value());
    for (const auto &e :
         std::filesystem::directory_iterator(dir + "/cache"))
        ADD_FAILURE() << "leftover file: " << e.path();

    store.put("key", Json(7));
    ASSERT_TRUE(store.get("key").has_value());
}

TEST_F(ChaosTest, StoreKillBetweenWriteAndRenameLeavesNoEntry)
{
    ResultStore store(dir + "/cache");
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        armFailpoints("store.rename.kill=1");
        store.put("key", Json(7)); // dies after fsync, before rename
        _exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 137);

    // The visible entry path never holds a partial value: the orphaned
    // temp file is invisible to get(), and a fresh put() still works.
    EXPECT_FALSE(std::filesystem::exists(store.pathFor("key")));
    EXPECT_FALSE(store.get("key").has_value());
    store.put("key", Json(7));
    ASSERT_TRUE(store.get("key").has_value());
}

TEST_F(ChaosTest, CacheBitRotIsQuarantinedAndCounted)
{
    ResultStore store(dir + "/cache");
    Json v = Json::object();
    v.set("sdc", 123);
    store.put("key", v);

    // Flip one payload byte: the envelope checksum must catch it.
    std::string text;
    ASSERT_TRUE(readFile(store.pathFor("key"), text));
    const size_t at = text.find("123");
    ASSERT_NE(at, std::string::npos);
    text[at] = '9';
    std::ofstream(store.pathFor("key"),
                  std::ios::binary | std::ios::trunc)
        << text;

    EXPECT_FALSE(store.get("key").has_value())
        << "rotten data must read as a miss, never as a result";
    EXPECT_EQ(store.storageFaults(), 1u);
    EXPECT_TRUE(
        std::filesystem::exists(store.pathFor("key") + ".corrupt"));
}

// ---- sandbox pipe chaos -----------------------------------------------------

TEST_F(ChaosTest, TornPipeFrameIsTriagedAsHostFault)
{
    // Child write hits: begin(0), result(0), begin(1), result(1) —
    // @4 tears sample 1's result frame in half and kills the child.
    armFailpoints("sandbox.pipe.short_write=@4");
    exec::SandboxLimits limits;
    limits.wallSeconds = 10.0;
    auto outcomes = exec::runIsolatedBatch(
        {0, 1, 2}, limits,
        [](size_t i) { return encodeU64(mix(i)); });
    clearFailpoints();

    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_EQ(outcomes[0].kind, exec::IsolatedOutcome::Kind::Ok);
    EXPECT_EQ(outcomes[0].payload.asInt(),
              static_cast<int64_t>(mix(0)));
    ASSERT_EQ(outcomes[1].kind, exec::IsolatedOutcome::Kind::Host)
        << "a torn frame is a host fault, not a parse error";
    EXPECT_TRUE(outcomes[1].host.tornFrame);
    EXPECT_EQ(outcomes[1].host.exitCode, 125);
    EXPECT_EQ(outcomes[1].host.signal, 0);
    EXPECT_EQ(outcomes[2].kind, exec::IsolatedOutcome::Kind::NotRun)
        << "samples after the death are re-batched, not blamed";
}

TEST_F(ChaosTest, EintrStormIsHarmless)
{
    const size_t n = 12;
    const auto reference = cleanRun(n);

    // Interrupted syscalls on every storage/supervision path at once:
    // journal fsync, sandbox pipe reads, child reaping.  All must
    // retry; none may lose or duplicate data.
    armFailpoints(
        "journal.fsync.eintr=2,sandbox.read.eintr=1/3,"
        "sandbox.reap.eintr=2");
    exec::Journal j;
    ASSERT_TRUE(j.open(path, "camp", n, 1, false));
    j.setFsync(true);
    exec::ExecConfig ec;
    ec.isolate = true;
    ec.sandbox.batch = 4;
    ec.sandbox.wallSeconds = 10.0;
    ec.journal = &j;
    auto results = exec::runSamples<uint64_t>(
        n, ec, [] { return std::make_unique<CountingCtx>(); },
        [](CountingCtx &, size_t i) { return mix(i); }, encodeU64,
        decodeU64);
    clearFailpoints();
    EXPECT_EQ(results, reference);

    exec::Journal k;
    ASSERT_TRUE(k.open(path, "camp", n, 1, true));
    EXPECT_EQ(k.replayed(), n);
    EXPECT_EQ(k.storageFaults(), 0u);
}

} // namespace
} // namespace vstack
