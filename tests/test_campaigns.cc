/**
 * @file
 * Campaign-level tests: GeFIN-analog determinism and metric
 * consistency, PVF campaigns per FPM, the result store, and the
 * VulnerabilityStack derived metrics (weighted AVF, FPM shares,
 * rPVF).
 */
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "arch/pvf.h"
#include "compiler/compile.h"
#include "core/resultstore.h"
#include "core/vstack.h"
#include "support/logging.h"
#include "gefin/campaign.h"
#include "kernel/kernel.h"
#include "swfi/svf.h"
#include "workloads/workloads.h"

namespace vstack
{
namespace
{

Program
systemImage(const std::string &wl, IsaId isa)
{
    mcl::BuildResult b =
        mcl::buildUserProgram(findWorkload(wl).source, isa);
    EXPECT_TRUE(b.ok) << b.error;
    return buildSystemImage(buildKernel(isa), b.program);
}

// ---- gefin -----------------------------------------------------------------

TEST(UarchCampaignTest, DeterministicForSeed)
{
    UarchCampaign campaign(coreByName("ax72"),
                           systemImage("sha", IsaId::Av64));
    auto a = campaign.run(Structure::RF, 40, 7);
    auto b = campaign.run(Structure::RF, 40, 7);
    EXPECT_EQ(a.outcomes.masked, b.outcomes.masked);
    EXPECT_EQ(a.outcomes.sdc, b.outcomes.sdc);
    EXPECT_EQ(a.outcomes.crash, b.outcomes.crash);
    EXPECT_EQ(a.fpms.wd, b.fpms.wd);
    EXPECT_EQ(a.hwMasked, b.hwMasked);
}

TEST(UarchCampaignTest, DifferentSeedsSampleDifferently)
{
    UarchCampaign campaign(coreByName("ax72"),
                           systemImage("sha", IsaId::Av64));
    auto a = campaign.run(Structure::RF, 60, 1);
    auto b = campaign.run(Structure::RF, 60, 2);
    // Identical aggregate results for different seeds would be very
    // suspicious across 60 samples of a 10k-bit structure.
    EXPECT_TRUE(a.outcomes.masked != b.outcomes.masked ||
                a.fpms.wd != b.fpms.wd || a.hwMasked != b.hwMasked);
}

TEST(UarchCampaignTest, CountsAreConsistent)
{
    UarchCampaign campaign(coreByName("ax9"),
                           systemImage("qsort", IsaId::Av32));
    for (Structure s : allStructures) {
        auto r = campaign.run(s, 30, 5);
        EXPECT_EQ(r.samples, 30u);
        EXPECT_EQ(r.outcomes.total(), 30u) << structureName(s);
        EXPECT_EQ(r.fpms.total() + r.hwMasked, 30u) << structureName(s);
        EXPECT_GE(r.avf(), 0.0);
        EXPECT_LE(r.avf(), 1.0);
    }
}

TEST(UarchCampaignTest, RfFaultsManifestAsWdOnly)
{
    UarchCampaign campaign(coreByName("ax72"),
                           systemImage("rijndael", IsaId::Av64));
    auto r = campaign.run(Structure::RF, 150, 3);
    EXPECT_EQ(r.fpms.wi, 0u);
    EXPECT_EQ(r.fpms.woi, 0u);
    EXPECT_EQ(r.fpms.esc, 0u);
    EXPECT_GT(r.fpms.wd, 0u);
}

TEST(UarchCampaignTest, L1iFaultsManifestAsWiOrWoi)
{
    UarchCampaign campaign(coreByName("ax9"),
                           systemImage("corner", IsaId::Av32));
    auto r = campaign.run(Structure::L1I, 150, 3);
    EXPECT_EQ(r.fpms.wd, 0u);
    EXPECT_EQ(r.fpms.esc, 0u);
    EXPECT_GT(r.fpms.wi + r.fpms.woi, 0u);
}

bool
operator==(const OutcomeCounts &a, const OutcomeCounts &b)
{
    return a.masked == b.masked && a.sdc == b.sdc && a.crash == b.crash &&
           a.detected == b.detected &&
           a.injectorErrors == b.injectorErrors;
}

bool
operator==(const UarchCampaignResult &a, const UarchCampaignResult &b)
{
    return a.outcomes == b.outcomes && a.fpms.wd == b.fpms.wd &&
           a.fpms.wi == b.fpms.wi && a.fpms.woi == b.fpms.woi &&
           a.fpms.esc == b.fpms.esc && a.hwMasked == b.hwMasked &&
           a.samples == b.samples;
}

TEST(UarchCampaignTest, ParallelRunIsBitIdenticalToSerial)
{
    UarchCampaign campaign(coreByName("ax72"),
                           systemImage("sha", IsaId::Av64));
    auto serial = campaign.run(Structure::RF, 48, 7);
    exec::ExecConfig four;
    four.jobs = 4;
    EXPECT_TRUE(serial == campaign.run(Structure::RF, 48, 7, four));
    exec::ExecConfig all;
    all.jobs = 0; // hardware concurrency
    EXPECT_TRUE(serial == campaign.run(Structure::RF, 48, 7, all));
}

TEST(UarchCampaignTest, JournalResumeMatchesUninterrupted)
{
    const std::string dir = "/tmp/vstack_uarch_resume_test";
    std::filesystem::remove_all(dir);
    UarchCampaign campaign(coreByName("ax72"),
                           systemImage("qsort", IsaId::Av64));
    const auto uninterrupted = campaign.run(Structure::RF, 30, 3);

    // First invocation journals everything; chop the journal down to
    // a prefix to model a campaign killed mid-run.
    const std::string path = exec::Journal::pathFor(dir, "t");
    {
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "t", 30, 3, false));
        exec::ExecConfig ec;
        ec.journal = &j;
        campaign.run(Structure::RF, 30, 3, ec);
    }
    std::string text;
    ASSERT_TRUE(readFile(path, text));
    size_t cut = 0;
    for (int lines = 0; lines < 12; ++lines)
        cut = text.find('\n', cut) + 1;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << text.substr(0, cut);
    }

    exec::Journal j;
    ASSERT_TRUE(j.open(path, "t", 30, 3, true));
    EXPECT_EQ(j.replayed(), 11u); // 12 lines = header + 11 samples
    exec::ExecConfig ec;
    ec.journal = &j;
    ec.jobs = 2;
    size_t firstReport = 0;
    ec.progress = [&](size_t done, size_t) {
        if (!firstReport)
            firstReport = done;
    };
    const auto resumed = campaign.run(Structure::RF, 30, 3, ec);
    EXPECT_TRUE(resumed == uninterrupted);
    EXPECT_EQ(firstReport, 11u) << "journaled samples were re-simulated";
    std::filesystem::remove_all(dir);
}

TEST(UarchCampaignTest, MismatchedImageThrowsSimError)
{
    // An av32 image cannot load into an av64 core: the campaign
    // constructor must surface a typed SimError (clean CLI exit), not
    // abort the process.
    EXPECT_THROW(UarchCampaign(coreByName("ax72"),
                               systemImage("sha", IsaId::Av32)),
                 SimError);
}

TEST(UarchCampaignTest, TightWatchdogTurnsRunsIntoCrashes)
{
    UarchCampaign campaign(coreByName("ax72"),
                           systemImage("sha", IsaId::Av64));
    // A budget far below the golden runtime classifies every
    // injection as a watchdog crash — the generalized budget is
    // actually enforced.
    campaign.setWatchdog({0.0, 100});
    auto r = campaign.run(Structure::RF, 10, 3);
    EXPECT_EQ(r.outcomes.crash, 10u);
}

TEST(UarchCampaignTest, GoldenMatchesFunctionalOutput)
{
    Program sys = systemImage("fft", IsaId::Av64);
    UarchCampaign campaign(coreByName("ax57"), sys);
    ArchConfig cfg;
    cfg.isa = IsaId::Av64;
    ArchSim sim(cfg);
    sim.load(sys);
    ArchRunResult r = sim.run();
    EXPECT_EQ(campaign.golden().dma, r.output.dma);
    EXPECT_EQ(campaign.golden().insts, r.instCount);
}

TEST(UarchCampaignTest, JournaledErrorCountsAsInjectorError)
{
    const std::string dir = "/tmp/vstack_uarch_err_test";
    std::filesystem::remove_all(dir);
    UarchCampaign campaign(coreByName("ax72"),
                           systemImage("qsort", IsaId::Av64));

    // A quarantined sample (journaled as an error record) must fold
    // into injectorErrors and shrink the AVF denominator — the
    // campaign completes instead of aborting.
    const std::string path = exec::Journal::pathFor(dir, "e");
    exec::Journal j;
    ASSERT_TRUE(j.open(path, "e", 20, 3, false));
    j.appendError(0, "injected SimError");
    exec::Journal reopened;
    ASSERT_TRUE(reopened.open(path, "e", 20, 3, true));
    exec::ExecConfig ec;
    ec.journal = &reopened;
    auto r = campaign.run(Structure::RF, 20, 3, ec);
    EXPECT_EQ(r.outcomes.injectorErrors, 1u);
    EXPECT_EQ(r.samples, 19u);
    EXPECT_EQ(r.outcomes.total(), 19u);
    std::filesystem::remove_all(dir);
}

// Sandbox-backed campaign runs fork real children; these tests are
// named to stay out of the TSan stage's ctest filter (fork from a
// multithreaded TSan process is unsupported — tools/ci_sanitize.sh).
TEST(UarchCampaignTest, IsolatedRunMatchesInProcess)
{
    UarchCampaign campaign(coreByName("ax72"),
                           systemImage("sha", IsaId::Av64));
    auto inProcess = campaign.run(Structure::RF, 24, 7);
    exec::ExecConfig ec;
    ec.isolate = true;
    ec.jobs = 2;
    ec.sandbox.batch = 4;
    EXPECT_TRUE(inProcess == campaign.run(Structure::RF, 24, 7, ec));
}

TEST(UarchCampaignTest, HostFaultRecordFoldsIntoInjectorErrors)
{
    const std::string dir = "/tmp/vstack_uarch_hf_test";
    std::filesystem::remove_all(dir);
    UarchCampaign campaign(coreByName("ax72"),
                           systemImage("qsort", IsaId::Av64));

    // A sandboxed child death is journaled as a HostFault triage
    // record; on resume it must fold into injectorErrors exactly like
    // a SimError quarantine (excluded from the AVF denominator).
    exec::HostFault hf;
    hf.signal = SIGSEGV;
    hf.phase = "run";
    const std::string path = exec::Journal::pathFor(dir, "hf");
    exec::Journal j;
    ASSERT_TRUE(j.open(path, "hf", 20, 3, false));
    j.appendHostFault(0, hf.describe(), hf.toJson());
    exec::Journal reopened;
    ASSERT_TRUE(reopened.open(path, "hf", 20, 3, true));
    exec::ExecConfig ec;
    ec.journal = &reopened;
    auto r = campaign.run(Structure::RF, 20, 3, ec);
    EXPECT_EQ(r.outcomes.injectorErrors, 1u);
    EXPECT_EQ(r.samples, 19u);
    EXPECT_EQ(r.outcomes.total(), 19u);
    std::filesystem::remove_all(dir);
}

// ---- PVF -------------------------------------------------------------------

TEST(PvfTest, DeterministicAndComplete)
{
    ArchConfig cfg;
    cfg.isa = IsaId::Av64;
    PvfCampaign campaign(systemImage("sha", IsaId::Av64), cfg);
    for (Fpm f : {Fpm::WD, Fpm::WI, Fpm::WOI}) {
        auto a = campaign.run(f, 50, 9);
        auto b = campaign.run(f, 50, 9);
        EXPECT_EQ(a.total(), 50u);
        EXPECT_EQ(a.masked, b.masked) << fpmName(f);
        EXPECT_EQ(a.sdc, b.sdc) << fpmName(f);
        EXPECT_EQ(a.crash, b.crash) << fpmName(f);
    }
}

TEST(PvfTest, ParallelRunIsBitIdenticalToSerial)
{
    ArchConfig cfg;
    cfg.isa = IsaId::Av64;
    PvfCampaign campaign(systemImage("qsort", IsaId::Av64), cfg);
    for (Fpm f : {Fpm::WD, Fpm::WI, Fpm::WOI}) {
        auto serial = campaign.run(f, 60, 11);
        exec::ExecConfig four;
        four.jobs = 4;
        EXPECT_TRUE(serial == campaign.run(f, 60, 11, four))
            << fpmName(f);
    }
}

TEST(PvfTest, WiIsCrashHeavierThanWd)
{
    ArchConfig cfg;
    cfg.isa = IsaId::Av64;
    PvfCampaign campaign(systemImage("fft", IsaId::Av64), cfg);
    auto wd = campaign.run(Fpm::WD, 200, 4);
    auto wi = campaign.run(Fpm::WI, 200, 4);
    // Paper Fig. 7: WI is Crash-heavy relative to WD.
    EXPECT_GT(wi.crashRate(), wd.crashRate());
}

TEST(PvfTest, GoldenRecordsKernelShare)
{
    ArchConfig cfg;
    cfg.isa = IsaId::Av64;
    PvfCampaign campaign(systemImage("sha", IsaId::Av64), cfg);
    EXPECT_GT(campaign.golden().kernelInsts, 0u);
    EXPECT_LT(campaign.golden().kernelInsts, campaign.golden().insts);
}

// ---- SVF -------------------------------------------------------------------

TEST(SvfCampaignTest, ParallelRunIsBitIdenticalToSerial)
{
    mcl::FrontendResult fr =
        mcl::compileToIr(findWorkload("sha").source, 64);
    ASSERT_TRUE(fr.ok);
    SvfCampaign campaign(fr.module);
    auto serial = campaign.run(80, 13);
    exec::ExecConfig four;
    four.jobs = 4;
    EXPECT_TRUE(serial == campaign.run(80, 13, four));
}

TEST(SvfCampaignTest, IsolatedRunMatchesInProcess)
{
    mcl::FrontendResult fr =
        mcl::compileToIr(findWorkload("sha").source, 64);
    ASSERT_TRUE(fr.ok);
    SvfCampaign campaign(fr.module);
    auto inProcess = campaign.run(40, 13);
    exec::ExecConfig ec;
    ec.isolate = true;
    ec.jobs = 2;
    ec.sandbox.batch = 8;
    EXPECT_TRUE(inProcess == campaign.run(40, 13, ec));
}

TEST(SvfCampaignTest, GoldenRunFailureThrowsCleanly)
{
    mcl::FrontendResult fr = mcl::compileToIr(
        "fn main(): int { var p: int* = 64 as int*; return *p; }", 64);
    ASSERT_TRUE(fr.ok) << fr.error;
    // The golden run faults immediately: the constructor must raise a
    // typed GoldenRunError (one-line CLI error), not abort via
    // fatal().
    EXPECT_THROW(SvfCampaign campaign(fr.module), GoldenRunError);
}

// ---- result store -----------------------------------------------------------

TEST(ResultStoreTest, RoundTripAndMiss)
{
    const std::string dir = "/tmp/vstack_store_test";
    std::filesystem::remove_all(dir);
    ResultStore store(dir);
    ASSERT_TRUE(store.enabled());
    EXPECT_FALSE(store.get("missing").has_value());

    Json j = Json::object();
    j.set("value", 42);
    store.put("some/key with spaces", j);
    auto back = store.get("some/key with spaces");
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->at("value").asInt(), 42);
    std::filesystem::remove_all(dir);
}

TEST(ResultStoreTest, DisabledStoreIsNoop)
{
    ResultStore store("");
    EXPECT_FALSE(store.enabled());
    store.put("k", Json(1));
    EXPECT_FALSE(store.get("k").has_value());
}

TEST(ResultStoreTest, CorruptEntryIsIgnored)
{
    const std::string dir = "/tmp/vstack_store_test2";
    std::filesystem::remove_all(dir);
    ResultStore store(dir);
    store.put("key", Json(1));
    writeFile(store.pathFor("key"), "{not json");
    EXPECT_FALSE(store.get("key").has_value());
    std::filesystem::remove_all(dir);
}

TEST(ResultStoreTest, TruncatedEntryIsAMissNotACrash)
{
    const std::string dir = "/tmp/vstack_store_test3";
    std::filesystem::remove_all(dir);
    ResultStore store(dir);
    Json j = Json::object();
    j.set("samples", 2000);
    j.set("sdc", 123);
    store.put("key", j);

    // Model an interrupted writer of the pre-atomic era: chop the
    // JSON mid-value.  The store must treat it as a miss.
    std::string text;
    ASSERT_TRUE(readFile(store.pathFor("key"), text));
    std::ofstream(store.pathFor("key"),
                  std::ios::binary | std::ios::trunc)
        << text.substr(0, text.size() / 2);
    EXPECT_FALSE(store.get("key").has_value());

    // A rewrite (temp file + rename) fully replaces the damage.
    store.put("key", j);
    ASSERT_TRUE(store.get("key").has_value());
    EXPECT_EQ(store.get("key")->at("sdc").asInt(), 123);
    std::filesystem::remove_all(dir);
}

TEST(ResultStoreTest, LegacyBareJsonEntryIsAccepted)
{
    const std::string dir = "/tmp/vstack_store_test5";
    std::filesystem::remove_all(dir);
    ResultStore store(dir);
    // A pre-envelope cache entry: bare JSON with no fmt/crc wrapper.
    // Existing result directories must keep working (unverified);
    // the next put() re-stamps the entry with a checksum.
    writeFile(store.pathFor("key"), "{\"sdc\": 7}");
    auto v = store.get("key");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->at("sdc").asInt(), 7);
    EXPECT_EQ(store.storageFaults(), 0u);

    store.put("key", *v);
    std::string text;
    ASSERT_TRUE(readFile(store.pathFor("key"), text));
    EXPECT_NE(text.find("\"crc\""), std::string::npos)
        << "rewritten entries carry the envelope";
    ASSERT_TRUE(store.get("key").has_value());
    std::filesystem::remove_all(dir);
}

TEST(ResultStoreTest, PutLeavesNoTempFilesBehind)
{
    const std::string dir = "/tmp/vstack_store_test4";
    std::filesystem::remove_all(dir);
    ResultStore store(dir);
    store.put("a", Json(1));
    store.put("a", Json(2));
    size_t entries = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        ++entries;
        EXPECT_EQ(e.path().extension(), ".json") << e.path();
    }
    EXPECT_EQ(entries, 1u);
    std::filesystem::remove_all(dir);
}

// ---- VulnerabilityStack ------------------------------------------------------

EnvConfig
tinyConfig(const std::string &dir)
{
    EnvConfig cfg;
    cfg.uarchFaults = 25;
    cfg.archFaults = 40;
    cfg.swFaults = 40;
    cfg.seed = 5;
    cfg.resultsDir = dir;
    return cfg;
}

TEST(StackTest, CampaignsAreCachedOnDisk)
{
    const std::string dir = "/tmp/vstack_stack_test";
    std::filesystem::remove_all(dir);
    {
        VulnerabilityStack stack(tinyConfig(dir));
        OutcomeCounts first = stack.svf({"sha", false});
        // Poison the cache entry; a cache hit must return the poisoned
        // value, proving no recomputation happens.
        ResultStore store(dir);
        Json fake = Json::object();
        fake.set("masked", 1);
        fake.set("sdc", 2);
        fake.set("crash", 3);
        fake.set("detected", 4);
        store.put(strprintf("svf/v1/sha/n%zu/seed%llu",
                            static_cast<size_t>(40),
                            static_cast<unsigned long long>(5)),
                  fake);
        VulnerabilityStack stack2(tinyConfig(dir));
        OutcomeCounts second = stack2.svf({"sha", false});
        EXPECT_EQ(second.masked, 1u);
        EXPECT_EQ(second.sdc, 2u);
        EXPECT_EQ(second.crash, 3u);
        EXPECT_NE(second.masked, first.masked);
    }
    std::filesystem::remove_all(dir);
}

TEST(StackTest, WeightedAvfIsDominatedByL2)
{
    VulnerabilityStack stack(tinyConfig(""));
    // With identical per-structure campaigns, the L2 has >50% of the
    // weight; check the weighting arithmetic via FPM shares instead:
    FpmShares f = stack.weightedFpmDist("ax9", {"sha", false});
    const double sum = f.wd + f.wi + f.woi + f.esc;
    EXPECT_TRUE(sum == 0.0 || std::abs(sum - 1.0) < 1e-9);
}

TEST(StackTest, SplitsAreProbabilities)
{
    VulnerabilityStack stack(tinyConfig(""));
    const Variant v{"qsort", false};
    for (VulnSplit s :
         {stack.svfSplit(v), stack.pvfSplit(IsaId::Av64, v),
          stack.weightedAvf("ax72", v), stack.rPvf("ax72", v)}) {
        EXPECT_GE(s.sdc, 0.0);
        EXPECT_GE(s.crash, 0.0);
        EXPECT_LE(s.sdc + s.crash + s.detected, 1.0 + 1e-9);
    }
}

TEST(StackTest, MarginMatchesPaperAtScale)
{
    EnvConfig cfg = tinyConfig("");
    cfg.uarchFaults = 2000;
    VulnerabilityStack stack(cfg);
    EXPECT_NEAR(stack.uarchMargin(), 0.0288, 0.0002);
}

TEST(StackTest, JobsDoNotChangeResults)
{
    EnvConfig serial = tinyConfig("");
    EnvConfig parallel = tinyConfig("");
    parallel.jobs = 4;
    VulnerabilityStack a(serial), b(parallel);
    const Variant v{"sha", false};
    EXPECT_TRUE(a.svf(v) == b.svf(v));
    EXPECT_TRUE(a.pvf(IsaId::Av64, v, Fpm::WD) ==
                b.pvf(IsaId::Av64, v, Fpm::WD));
    EXPECT_TRUE(a.uarch("ax72", v, Structure::RF) ==
                b.uarch("ax72", v, Structure::RF));
}

TEST(StackTest, CompletedCampaignRemovesItsJournal)
{
    const std::string dir = "/tmp/vstack_stack_journal_test";
    std::filesystem::remove_all(dir);
    VulnerabilityStack stack(tinyConfig(dir));
    stack.svf({"sha", false});
    // The result landed in the store; the journal must be gone.
    EXPECT_TRUE(!std::filesystem::exists(dir + "/journal") ||
                std::filesystem::is_empty(dir + "/journal"));
    std::filesystem::remove_all(dir);
}

TEST(StackTest, VariantTagging)
{
    EXPECT_EQ((Variant{"sha", false}).tag(), "sha");
    EXPECT_EQ((Variant{"sha", true}).tag(), "sha-ft");
}

TEST(StackTest, FitReportMatchesFootnoteFormula)
{
    VulnerabilityStack stack(tinyConfig(""));
    auto report = stack.fitReport("ax72", {"sha", false}, 1e-4);
    ASSERT_EQ(report.perStructure.size(), 5u);
    double total = 0;
    for (const auto &e : report.perStructure) {
        EXPECT_NEAR(e.fit, e.avf * 1e-4 * static_cast<double>(e.bits),
                    1e-12);
        total += e.fit;
    }
    EXPECT_NEAR(report.totalFit, total, 1e-9);
    // The L2 dominates the bit budget, so unless its AVF is zero it
    // dominates the FIT rate too (the paper's weighting premise).
    EXPECT_EQ(report.perStructure[4].structure, Structure::L2);
}

TEST(StackTest, ImageForHardenedVariantDiffers)
{
    VulnerabilityStack stack(tinyConfig(""));
    const Program &plain = stack.imageFor({"sha", false}, IsaId::Av64);
    const Program &ft = stack.imageFor({"sha", true}, IsaId::Av64);
    EXPECT_GT(ft.totalBytes(), plain.totalBytes() * 3 / 2);
}

} // namespace
} // namespace vstack
