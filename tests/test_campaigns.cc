/**
 * @file
 * Campaign-level tests: GeFIN-analog determinism and metric
 * consistency, PVF campaigns per FPM, the result store, and the
 * VulnerabilityStack derived metrics (weighted AVF, FPM shares,
 * rPVF).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "arch/pvf.h"
#include "compiler/compile.h"
#include "core/resultstore.h"
#include "core/vstack.h"
#include "support/logging.h"
#include "gefin/campaign.h"
#include "kernel/kernel.h"
#include "workloads/workloads.h"

namespace vstack
{
namespace
{

Program
systemImage(const std::string &wl, IsaId isa)
{
    mcl::BuildResult b =
        mcl::buildUserProgram(findWorkload(wl).source, isa);
    EXPECT_TRUE(b.ok) << b.error;
    return buildSystemImage(buildKernel(isa), b.program);
}

// ---- gefin -----------------------------------------------------------------

TEST(UarchCampaignTest, DeterministicForSeed)
{
    UarchCampaign campaign(coreByName("ax72"),
                           systemImage("sha", IsaId::Av64));
    auto a = campaign.run(Structure::RF, 40, 7);
    auto b = campaign.run(Structure::RF, 40, 7);
    EXPECT_EQ(a.outcomes.masked, b.outcomes.masked);
    EXPECT_EQ(a.outcomes.sdc, b.outcomes.sdc);
    EXPECT_EQ(a.outcomes.crash, b.outcomes.crash);
    EXPECT_EQ(a.fpms.wd, b.fpms.wd);
    EXPECT_EQ(a.hwMasked, b.hwMasked);
}

TEST(UarchCampaignTest, DifferentSeedsSampleDifferently)
{
    UarchCampaign campaign(coreByName("ax72"),
                           systemImage("sha", IsaId::Av64));
    auto a = campaign.run(Structure::RF, 60, 1);
    auto b = campaign.run(Structure::RF, 60, 2);
    // Identical aggregate results for different seeds would be very
    // suspicious across 60 samples of a 10k-bit structure.
    EXPECT_TRUE(a.outcomes.masked != b.outcomes.masked ||
                a.fpms.wd != b.fpms.wd || a.hwMasked != b.hwMasked);
}

TEST(UarchCampaignTest, CountsAreConsistent)
{
    UarchCampaign campaign(coreByName("ax9"),
                           systemImage("qsort", IsaId::Av32));
    for (Structure s : allStructures) {
        auto r = campaign.run(s, 30, 5);
        EXPECT_EQ(r.samples, 30u);
        EXPECT_EQ(r.outcomes.total(), 30u) << structureName(s);
        EXPECT_EQ(r.fpms.total() + r.hwMasked, 30u) << structureName(s);
        EXPECT_GE(r.avf(), 0.0);
        EXPECT_LE(r.avf(), 1.0);
    }
}

TEST(UarchCampaignTest, RfFaultsManifestAsWdOnly)
{
    UarchCampaign campaign(coreByName("ax72"),
                           systemImage("rijndael", IsaId::Av64));
    auto r = campaign.run(Structure::RF, 150, 3);
    EXPECT_EQ(r.fpms.wi, 0u);
    EXPECT_EQ(r.fpms.woi, 0u);
    EXPECT_EQ(r.fpms.esc, 0u);
    EXPECT_GT(r.fpms.wd, 0u);
}

TEST(UarchCampaignTest, L1iFaultsManifestAsWiOrWoi)
{
    UarchCampaign campaign(coreByName("ax9"),
                           systemImage("corner", IsaId::Av32));
    auto r = campaign.run(Structure::L1I, 150, 3);
    EXPECT_EQ(r.fpms.wd, 0u);
    EXPECT_EQ(r.fpms.esc, 0u);
    EXPECT_GT(r.fpms.wi + r.fpms.woi, 0u);
}

TEST(UarchCampaignTest, GoldenMatchesFunctionalOutput)
{
    Program sys = systemImage("fft", IsaId::Av64);
    UarchCampaign campaign(coreByName("ax57"), sys);
    ArchConfig cfg;
    cfg.isa = IsaId::Av64;
    ArchSim sim(cfg);
    sim.load(sys);
    ArchRunResult r = sim.run();
    EXPECT_EQ(campaign.golden().dma, r.output.dma);
    EXPECT_EQ(campaign.golden().insts, r.instCount);
}

// ---- PVF -------------------------------------------------------------------

TEST(PvfTest, DeterministicAndComplete)
{
    ArchConfig cfg;
    cfg.isa = IsaId::Av64;
    PvfCampaign campaign(systemImage("sha", IsaId::Av64), cfg);
    for (Fpm f : {Fpm::WD, Fpm::WI, Fpm::WOI}) {
        auto a = campaign.run(f, 50, 9);
        auto b = campaign.run(f, 50, 9);
        EXPECT_EQ(a.total(), 50u);
        EXPECT_EQ(a.masked, b.masked) << fpmName(f);
        EXPECT_EQ(a.sdc, b.sdc) << fpmName(f);
        EXPECT_EQ(a.crash, b.crash) << fpmName(f);
    }
}

TEST(PvfTest, WiIsCrashHeavierThanWd)
{
    ArchConfig cfg;
    cfg.isa = IsaId::Av64;
    PvfCampaign campaign(systemImage("fft", IsaId::Av64), cfg);
    auto wd = campaign.run(Fpm::WD, 200, 4);
    auto wi = campaign.run(Fpm::WI, 200, 4);
    // Paper Fig. 7: WI is Crash-heavy relative to WD.
    EXPECT_GT(wi.crashRate(), wd.crashRate());
}

TEST(PvfTest, GoldenRecordsKernelShare)
{
    ArchConfig cfg;
    cfg.isa = IsaId::Av64;
    PvfCampaign campaign(systemImage("sha", IsaId::Av64), cfg);
    EXPECT_GT(campaign.golden().kernelInsts, 0u);
    EXPECT_LT(campaign.golden().kernelInsts, campaign.golden().insts);
}

// ---- result store -----------------------------------------------------------

TEST(ResultStoreTest, RoundTripAndMiss)
{
    const std::string dir = "/tmp/vstack_store_test";
    std::filesystem::remove_all(dir);
    ResultStore store(dir);
    ASSERT_TRUE(store.enabled());
    EXPECT_FALSE(store.get("missing").has_value());

    Json j = Json::object();
    j.set("value", 42);
    store.put("some/key with spaces", j);
    auto back = store.get("some/key with spaces");
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->at("value").asInt(), 42);
    std::filesystem::remove_all(dir);
}

TEST(ResultStoreTest, DisabledStoreIsNoop)
{
    ResultStore store("");
    EXPECT_FALSE(store.enabled());
    store.put("k", Json(1));
    EXPECT_FALSE(store.get("k").has_value());
}

TEST(ResultStoreTest, CorruptEntryIsIgnored)
{
    const std::string dir = "/tmp/vstack_store_test2";
    std::filesystem::remove_all(dir);
    ResultStore store(dir);
    store.put("key", Json(1));
    writeFile(store.pathFor("key"), "{not json");
    EXPECT_FALSE(store.get("key").has_value());
    std::filesystem::remove_all(dir);
}

// ---- VulnerabilityStack ------------------------------------------------------

EnvConfig
tinyConfig(const std::string &dir)
{
    EnvConfig cfg;
    cfg.uarchFaults = 25;
    cfg.archFaults = 40;
    cfg.swFaults = 40;
    cfg.seed = 5;
    cfg.resultsDir = dir;
    return cfg;
}

TEST(StackTest, CampaignsAreCachedOnDisk)
{
    const std::string dir = "/tmp/vstack_stack_test";
    std::filesystem::remove_all(dir);
    {
        VulnerabilityStack stack(tinyConfig(dir));
        OutcomeCounts first = stack.svf({"sha", false});
        // Poison the cache entry; a cache hit must return the poisoned
        // value, proving no recomputation happens.
        ResultStore store(dir);
        Json fake = Json::object();
        fake.set("masked", 1);
        fake.set("sdc", 2);
        fake.set("crash", 3);
        fake.set("detected", 4);
        store.put(strprintf("svf/v1/sha/n%zu/seed%llu",
                            static_cast<size_t>(40),
                            static_cast<unsigned long long>(5)),
                  fake);
        VulnerabilityStack stack2(tinyConfig(dir));
        OutcomeCounts second = stack2.svf({"sha", false});
        EXPECT_EQ(second.masked, 1u);
        EXPECT_EQ(second.sdc, 2u);
        EXPECT_EQ(second.crash, 3u);
        EXPECT_NE(second.masked, first.masked);
    }
    std::filesystem::remove_all(dir);
}

TEST(StackTest, WeightedAvfIsDominatedByL2)
{
    VulnerabilityStack stack(tinyConfig(""));
    // With identical per-structure campaigns, the L2 has >50% of the
    // weight; check the weighting arithmetic via FPM shares instead:
    FpmShares f = stack.weightedFpmDist("ax9", {"sha", false});
    const double sum = f.wd + f.wi + f.woi + f.esc;
    EXPECT_TRUE(sum == 0.0 || std::abs(sum - 1.0) < 1e-9);
}

TEST(StackTest, SplitsAreProbabilities)
{
    VulnerabilityStack stack(tinyConfig(""));
    const Variant v{"qsort", false};
    for (VulnSplit s :
         {stack.svfSplit(v), stack.pvfSplit(IsaId::Av64, v),
          stack.weightedAvf("ax72", v), stack.rPvf("ax72", v)}) {
        EXPECT_GE(s.sdc, 0.0);
        EXPECT_GE(s.crash, 0.0);
        EXPECT_LE(s.sdc + s.crash + s.detected, 1.0 + 1e-9);
    }
}

TEST(StackTest, MarginMatchesPaperAtScale)
{
    EnvConfig cfg = tinyConfig("");
    cfg.uarchFaults = 2000;
    VulnerabilityStack stack(cfg);
    EXPECT_NEAR(stack.uarchMargin(), 0.0288, 0.0002);
}

TEST(StackTest, VariantTagging)
{
    EXPECT_EQ((Variant{"sha", false}).tag(), "sha");
    EXPECT_EQ((Variant{"sha", true}).tag(), "sha-ft");
}

TEST(StackTest, FitReportMatchesFootnoteFormula)
{
    VulnerabilityStack stack(tinyConfig(""));
    auto report = stack.fitReport("ax72", {"sha", false}, 1e-4);
    ASSERT_EQ(report.perStructure.size(), 5u);
    double total = 0;
    for (const auto &e : report.perStructure) {
        EXPECT_NEAR(e.fit, e.avf * 1e-4 * static_cast<double>(e.bits),
                    1e-12);
        total += e.fit;
    }
    EXPECT_NEAR(report.totalFit, total, 1e-9);
    // The L2 dominates the bit budget, so unless its AVF is zero it
    // dominates the FIT rate too (the paper's weighting premise).
    EXPECT_EQ(report.perStructure[4].structure, Structure::L2);
}

TEST(StackTest, ImageForHardenedVariantDiffers)
{
    VulnerabilityStack stack(tinyConfig(""));
    const Program &plain = stack.imageFor({"sha", false}, IsaId::Av64);
    const Program &ft = stack.imageFor({"sha", true}, IsaId::Av64);
    EXPECT_GT(ft.totalBytes(), plain.totalBytes() * 3 / 2);
}

} // namespace
} // namespace vstack
