/**
 * @file
 * Co-simulation tests: the cycle-level core must produce byte-exact
 * architectural results (DMA output + exit code) against the
 * functional emulator for every workload on every core, with sane
 * timing behaviour.
 */
#include <gtest/gtest.h>

#include <map>

#include "arch/archsim.h"
#include "compiler/compile.h"
#include "kernel/kernel.h"
#include "uarch/core.h"
#include "workloads/workloads.h"

namespace vstack
{
namespace
{

struct SysImage
{
    Program image;
    ArchRunResult golden;
};

const SysImage &
systemFor(const std::string &wl, IsaId isa)
{
    static std::map<std::string, SysImage> cache;
    const std::string key = wl + "/" + isaName(isa);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    mcl::BuildResult build =
        mcl::buildUserProgram(findWorkload(wl).source, isa);
    EXPECT_TRUE(build.ok) << build.error;
    SysImage sys;
    sys.image = buildSystemImage(buildKernel(isa), build.program);
    ArchConfig cfg;
    cfg.isa = isa;
    ArchSim sim(cfg);
    sim.load(sys.image);
    sys.golden = sim.run();
    EXPECT_EQ(sys.golden.stop, StopReason::Exited);
    return cache.emplace(key, std::move(sys)).first->second;
}

using Param = std::tuple<std::string, std::string>; // core, workload

class CosimTest : public ::testing::TestWithParam<Param>
{
};

TEST_P(CosimTest, MatchesFunctionalEmulator)
{
    const auto &[coreName, wl] = GetParam();
    const CoreConfig &core = coreByName(coreName);
    const SysImage &sys = systemFor(wl, core.isa);

    CycleSim sim(core);
    sim.load(sys.image);
    UarchRunResult r = sim.run(100'000'000);

    ASSERT_EQ(r.stop, StopReason::Exited) << r.excMsg;
    EXPECT_EQ(r.output.dma, sys.golden.output.dma);
    EXPECT_EQ(r.output.exitCode, sys.golden.output.exitCode);
    EXPECT_EQ(r.insts, sys.golden.instCount)
        << "committed instruction count differs from functional run";
    // Timing sanity: IPC within (0.05, width].
    EXPECT_GT(r.ipc(), 0.05);
    EXPECT_LE(r.ipc(), core.commitWidth);
}

std::vector<Param>
allParams()
{
    std::vector<Param> ps;
    for (const CoreConfig &c : allCores()) {
        for (const Workload &w : paperWorkloads())
            ps.emplace_back(c.name, w.name);
    }
    return ps;
}

INSTANTIATE_TEST_SUITE_P(AllCores, CosimTest,
                         ::testing::ValuesIn(allParams()),
                         [](const auto &info) {
                             return std::get<0>(info.param) + "_" +
                                    std::get<1>(info.param);
                         });

TEST(UarchTiming, BiggerCoreIsFasterOnFft)
{
    const SysImage &sys64 = systemFor("fft", IsaId::Av64);
    const SysImage &sys32 = systemFor("fft", IsaId::Av32);

    std::map<std::string, uint64_t> cycles;
    for (const CoreConfig &c : allCores()) {
        CycleSim sim(c);
        sim.load(c.isa == IsaId::Av64 ? sys64.image : sys32.image);
        UarchRunResult r = sim.run(100'000'000);
        ASSERT_EQ(r.stop, StopReason::Exited) << c.name << ": " << r.excMsg;
        cycles[c.name] = r.cycles;
    }
    // The ax15 is a wider ax9; it should not be slower.
    EXPECT_LE(cycles["ax15"], cycles["ax9"]);
}

TEST(UarchStatsTest, BranchesAndMemOpsCounted)
{
    const SysImage &sys = systemFor("qsort", IsaId::Av64);
    CycleSim sim(coreByName("ax72"));
    sim.load(sys.image);
    UarchRunResult r = sim.run(100'000'000);
    ASSERT_EQ(r.stop, StopReason::Exited);
    EXPECT_GT(sim.stats().branches, 1000u);
    EXPECT_GT(sim.stats().loads, 1000u);
    EXPECT_GT(sim.stats().stores, 1000u);
    EXPECT_GT(sim.stats().mispredicts, 0u);
    EXPECT_LT(sim.stats().mispredicts, sim.stats().branches);
}

} // namespace
} // namespace vstack
