/**
 * @file
 * Functional-emulator unit tests: exception taxonomy, privilege
 * enforcement, watchdog, stepping/peek API, and PVF classification
 * helpers.
 */
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "arch/archsim.h"
#include "arch/pvf.h"
#include "isa/assembler.h"
#include "support/failpoint.h"
#include "support/logging.h"

namespace vstack
{
namespace
{

ArchRunResult
runBare(const std::string &body, uint64_t maxInsts = 1'000'000)
{
    const std::string src = strprintf(R"(
        .isa av64
        .org 0x%x
_start:
%s
)", memmap::BOOT_VECTOR, body.c_str());
    AsmResult as = assemble(src, IsaId::Av64, memmap::BOOT_VECTOR);
    EXPECT_TRUE(as.ok) << as.error;
    as.program.entry = memmap::BOOT_VECTOR;
    ArchConfig cfg;
    cfg.maxInsts = maxInsts;
    ArchSim sim(cfg);
    sim.load(as.program);
    return sim.run();
}

TEST(ArchUnit, MisalignedLoadFaults)
{
    ArchRunResult r = runBare(R"(
        li  x1, #0x2001
        ldx x2, [x1, #0]
    )");
    EXPECT_EQ(r.stop, StopReason::Exception);
    EXPECT_NE(r.exceptionMsg.find("misaligned"), std::string::npos);
}

TEST(ArchUnit, UnmappedAddressFaults)
{
    ArchRunResult r = runBare(R"(
        li  x1, #0x2000000
        ldx x2, [x1, #0]
    )");
    EXPECT_EQ(r.stop, StopReason::Exception);
    EXPECT_NE(r.exceptionMsg.find("bad address"), std::string::npos);
}

TEST(ArchUnit, BranchToUnmappedFaultsOnFetch)
{
    ArchRunResult r = runBare(R"(
        li  x1, #0x3000000
        br  x1
    )");
    EXPECT_EQ(r.stop, StopReason::Exception);
    EXPECT_NE(r.exceptionMsg.find("fetch"), std::string::npos);
}

TEST(ArchUnit, PrivilegedInUserModeFaults)
{
    // Drop to user code that tries HALT.
    ArchRunResult r = runBare(strprintf(R"(
        li    x3, #0x%x
        mtepc x3
        eret
        .org 0x%x
user:
        halt
)", memmap::USER_TEXT, memmap::USER_TEXT));
    EXPECT_EQ(r.stop, StopReason::Exception);
    EXPECT_NE(r.exceptionMsg.find("privileged"), std::string::npos);
}

TEST(ArchUnit, UserMmioAccessFaults)
{
    ArchRunResult r = runBare(strprintf(R"(
        li    x3, #0x%x
        mtepc x3
        eret
        .org 0x%x
user:
        li  x1, #0x%x
        stx x1, [x1, #0]
)", memmap::USER_TEXT, memmap::USER_TEXT, memmap::MMIO_EXIT_CODE));
    EXPECT_EQ(r.stop, StopReason::Exception);
}

TEST(ArchUnit, WatchdogCatchesInfiniteLoop)
{
    ArchRunResult r = runBare("hang: b hang", 10'000);
    EXPECT_EQ(r.stop, StopReason::Watchdog);
    EXPECT_EQ(r.instCount, 10'000u);
}

TEST(ArchUnit, StepAndPeek)
{
    const std::string src = strprintf(R"(
        .isa av64
        .org 0x%x
_start:
        li  x1, #5
        add x1, x1, x1
        halt
)", memmap::BOOT_VECTOR);
    AsmResult as = assemble(src, IsaId::Av64, memmap::BOOT_VECTOR);
    ASSERT_TRUE(as.ok) << as.error;
    as.program.entry = memmap::BOOT_VECTOR;
    ArchConfig cfg;
    ArchSim sim(cfg);
    sim.load(as.program);

    DecodedInst d;
    ASSERT_TRUE(sim.peek(d));
    EXPECT_EQ(d.op, Op::MOVZ); // li expands to movz+movk
    EXPECT_TRUE(sim.step());   // movz
    EXPECT_TRUE(sim.step());   // movk
    EXPECT_EQ(sim.readReg(1), 5u);
    ASSERT_TRUE(sim.peek(d));
    EXPECT_EQ(d.op, Op::ADD);
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(sim.readReg(1), 10u);
    EXPECT_FALSE(sim.step()); // halt
    EXPECT_EQ(sim.stopReason(), StopReason::Exited);
}

TEST(ArchUnit, WriteRegRespectsZeroRegister)
{
    ArchConfig cfg;
    ArchSim sim(cfg);
    Program p;
    p.isa = IsaId::Av64;
    p.entry = memmap::BOOT_VECTOR;
    p.segments.push_back({memmap::BOOT_VECTOR, {0, 0, 0, 0}});
    sim.load(p);
    sim.writeReg(31, 0xffff); // xzr
    EXPECT_EQ(sim.readReg(31), 0u);
    sim.writeReg(4, 0xffff);
    EXPECT_EQ(sim.readReg(4), 0xffffu);
}

TEST(ArchUnit, ClassifyRunTaxonomy)
{
    GoldenRef golden;
    golden.dma = {1, 2, 3};
    golden.exitCode = 0;
    golden.valid = true;

    DeviceOutput same;
    same.dma = {1, 2, 3};
    EXPECT_EQ(classifyRun(StopReason::Exited, same, golden),
              Outcome::Masked);

    DeviceOutput diff;
    diff.dma = {1, 2, 4};
    EXPECT_EQ(classifyRun(StopReason::Exited, diff, golden),
              Outcome::Sdc);

    DeviceOutput wrongExit = same;
    wrongExit.exitCode = 9;
    EXPECT_EQ(classifyRun(StopReason::Exited, wrongExit, golden),
              Outcome::Sdc);

    EXPECT_EQ(classifyRun(StopReason::Exception, same, golden),
              Outcome::Crash);
    EXPECT_EQ(classifyRun(StopReason::Watchdog, same, golden),
              Outcome::Crash);
    EXPECT_EQ(classifyRun(StopReason::DetectHit, same, golden),
              Outcome::Detected);
}

TEST(ArchUnit, DivByZeroDoesNotFault)
{
    ArchRunResult r = runBare(strprintf(R"(
        li   x1, #10
        li   x2, #0
        sdiv x3, x1, x2
        udiv x4, x1, x2
        urem x5, x1, x2
        li   x2, #0x%x
        stx  x5, [x2, #0]
        halt
)", memmap::MMIO_EXIT_CODE));
    ASSERT_EQ(r.stop, StopReason::Exited) << r.exceptionMsg;
    EXPECT_EQ(r.output.exitCode, 10u); // x % 0 == x
}

/**
 * Random but always-terminating assembler program: straight-line ALU
 * work over x1..x6, loads/stores into a scratch window at 0x2000, and
 * forward-only branches to interleaved labels, closed with halt.
 * Divides are included deliberately (x/0 == 0, x%0 == x are defined),
 * so any decoded instruction the generator emits is legal.
 */
std::string
randomProgram(std::mt19937 &rng, int lines)
{
    auto pick = [&](auto &arr) { return arr[rng() % std::size(arr)]; };
    static const char *rrr[] = {"add",  "sub",  "mul",  "and",
                                "orr",  "eor",  "sltu", "slt",
                                "udiv", "sdiv", "urem", "srem",
                                "lslv", "lsrv", "asrv"};
    static const char *rri[] = {"addi", "andi", "orri", "eori", "slti"};
    static const char *sft[] = {"lsli", "lsri", "asri"};
    std::ostringstream os;
    os << "        li x7, #0x2000\n";
    for (int r = 1; r <= 6; ++r)
        os << strprintf("        li x%d, #0x%x\n", r,
                        static_cast<unsigned>(rng() & 0x7fffffff));
    // Labels L0..: `emitted` are already placed, `needed` is one past
    // the highest referenced.  Branches always reference L<emitted>,
    // which by construction is still ahead of the cursor, so every
    // branch is strictly forward and the program must reach halt.
    int emitted = 0, needed = 0;
    for (int i = 0; i < lines; ++i) {
        if (i % 7 == 6 && emitted < needed)
            os << strprintf("L%d:\n", emitted++);
        int rd = 1 + static_cast<int>(rng() % 6);
        int ra = 1 + static_cast<int>(rng() % 6);
        int rb = 1 + static_cast<int>(rng() % 6);
        switch (rng() % 8) {
          case 0:
          case 1:
          case 2:
            os << strprintf("        %s x%d, x%d, x%d\n", pick(rrr),
                            rd, ra, rb);
            break;
          case 3:
            os << strprintf("        %s x%d, x%d, #%d\n", pick(rri),
                            rd, ra, static_cast<int>(rng() % 1001) - 500);
            break;
          case 4:
            os << strprintf("        %s x%d, x%d, #%u\n", pick(sft),
                            rd, ra, static_cast<unsigned>(rng() % 64));
            break;
          case 5:
            os << strprintf("        stx x%d, [x7, #%u]\n", rd,
                            static_cast<unsigned>(rng() % 32) * 8);
            break;
          case 6:
            os << strprintf("        ldx x%d, [x7, #%u]\n", rd,
                            static_cast<unsigned>(rng() % 32) * 8);
            break;
          case 7: {
            static const char *br[] = {"beq", "bne", "blt", "bgeu"};
            os << strprintf("        %s x%d, x%d, L%d\n", pick(br),
                            ra, rb, emitted);
            needed = std::max(needed, emitted + 1);
            break;
          }
        }
    }
    while (emitted < needed)
        os << strprintf("L%d:\n", emitted++);
    os << "        halt\n";
    return os.str();
}

Program
assembleBare(const std::string &body)
{
    const std::string src = strprintf(R"(
        .isa av64
        .org 0x%x
_start:
%s
)", memmap::BOOT_VECTOR, body.c_str());
    AsmResult as = assemble(src, IsaId::Av64, memmap::BOOT_VECTOR);
    EXPECT_TRUE(as.ok) << as.error << "\n" << src;
    as.program.entry = memmap::BOOT_VECTOR;
    return as.program;
}

/**
 * Lockstep fuzz of the predecoded fast path: the same random program
 * on two emulators, one stepping the plain interpreter and one driven
 * through stepFastTo() in random-size chunks.  At every sync point the
 * entire architectural state must agree — registers, pc, instruction
 * counts, and the full state digest — and the final stop reason and
 * exception text must match.
 */
TEST(ArchFastPath, LockstepFuzzAgainstInterpreter)
{
    std::mt19937 rng(0xf157f00du);
    for (int iter = 0; iter < 25; ++iter) {
        Program prog =
            assembleBare(randomProgram(rng, 40 + iter * 2));
        ArchConfig cfg;
        cfg.maxInsts = 100'000;
        ArchSim slow(cfg), fast(cfg);
        slow.load(prog);
        fast.load(prog);
        fast.setFastPath(predecodeImage(prog, IsaId::Av64));
        bool running = true;
        while (running) {
            running = fast.stepFastTo(fast.instCount() + 1 +
                                      rng() % 37);
            while (slow.instCount() < fast.instCount() && slow.step())
                ;
            ASSERT_EQ(slow.instCount(), fast.instCount()) << iter;
            ASSERT_EQ(slow.pc(), fast.pc()) << iter;
            for (int r = 0; r < 32; ++r)
                ASSERT_EQ(slow.readReg(r), fast.readReg(r))
                    << "x" << r << " iter " << iter;
            ASSERT_EQ(slow.stateDigest(), fast.stateDigest()) << iter;
        }
        EXPECT_EQ(slow.stopReason(), fast.stopReason()) << iter;
        EXPECT_EQ(slow.exceptionMsg(), fast.exceptionMsg()) << iter;
        EXPECT_NE(fast.stopReason(), StopReason::Watchdog)
            << "generator must terminate, iter " << iter;
    }
}

/**
 * Self-modifying text invalidates a predecoded hint: the program
 * overwrites an upcoming instruction (addi #1 -> addi #42), so the
 * fast path's live-word compare must reject the stale entry and
 * decode the new word.  Lockstep against the plain interpreter.
 */
TEST(ArchFastPath, SelfModifiedTextRejectsStaleHint)
{
    const std::string body = R"(
        la  x7, patch
        la  x8, slot
        ldw x1, [x7, #0]
        stw x1, [x8, #0]
slot:
        addi x5, x0, #1
        b done
patch:
        addi x5, x0, #42
done:
        halt
)";
    Program prog = assembleBare(body);
    ArchConfig cfg;
    ArchSim slow(cfg), fast(cfg);
    slow.load(prog);
    fast.load(prog);
    fast.setFastPath(predecodeImage(prog, IsaId::Av64));
    ArchRunResult rs = slow.run();
    while (fast.stepFastTo(fast.instCount() + 3))
        ;
    ASSERT_EQ(rs.stop, StopReason::Exited);
    EXPECT_EQ(slow.readReg(5), 42u) << "patched instruction executed";
    EXPECT_EQ(fast.readReg(5), slow.readReg(5));
    EXPECT_EQ(fast.instCount(), rs.instCount);
    EXPECT_EQ(fast.stateDigest(), slow.stateDigest());
}

/**
 * The fastpath.dispatch failpoint pins a run to the fallback decoder;
 * the result must be byte-identical to the predecoded run's (the
 * fast path is a pure speed hint).
 */
TEST(ArchFastPath, DispatchFailpointIsByteIdentical)
{
    std::mt19937 rng(0xdeadbeefu);
    Program prog = assembleBare(randomProgram(rng, 60));
    auto pd = predecodeImage(prog, IsaId::Av64);
    ArchConfig cfg;

    ArchSim fast(cfg);
    fast.load(prog);
    fast.setFastPath(pd);
    while (fast.stepFastTo(fast.instCount() + 64))
        ;

    armFailpoints("fastpath.dispatch=1000000");
    ArchSim pinned(cfg);
    pinned.load(prog);
    pinned.setFastPath(pd);
    while (pinned.stepFastTo(pinned.instCount() + 64))
        ;
    uint64_t fires = failpointFires("fastpath.dispatch");
    clearFailpoints();

    EXPECT_GT(fires, 0u) << "failpoint must have forced the fallback";
    EXPECT_EQ(pinned.instCount(), fast.instCount());
    EXPECT_EQ(pinned.pc(), fast.pc());
    EXPECT_EQ(pinned.stopReason(), fast.stopReason());
    EXPECT_EQ(pinned.stateDigest(), fast.stateDigest());
}

} // namespace
} // namespace vstack
