/**
 * @file
 * Functional-emulator unit tests: exception taxonomy, privilege
 * enforcement, watchdog, stepping/peek API, and PVF classification
 * helpers.
 */
#include <gtest/gtest.h>

#include "arch/archsim.h"
#include "arch/pvf.h"
#include "isa/assembler.h"
#include "support/logging.h"

namespace vstack
{
namespace
{

ArchRunResult
runBare(const std::string &body, uint64_t maxInsts = 1'000'000)
{
    const std::string src = strprintf(R"(
        .isa av64
        .org 0x%x
_start:
%s
)", memmap::BOOT_VECTOR, body.c_str());
    AsmResult as = assemble(src, IsaId::Av64, memmap::BOOT_VECTOR);
    EXPECT_TRUE(as.ok) << as.error;
    as.program.entry = memmap::BOOT_VECTOR;
    ArchConfig cfg;
    cfg.maxInsts = maxInsts;
    ArchSim sim(cfg);
    sim.load(as.program);
    return sim.run();
}

TEST(ArchUnit, MisalignedLoadFaults)
{
    ArchRunResult r = runBare(R"(
        li  x1, #0x2001
        ldx x2, [x1, #0]
    )");
    EXPECT_EQ(r.stop, StopReason::Exception);
    EXPECT_NE(r.exceptionMsg.find("misaligned"), std::string::npos);
}

TEST(ArchUnit, UnmappedAddressFaults)
{
    ArchRunResult r = runBare(R"(
        li  x1, #0x2000000
        ldx x2, [x1, #0]
    )");
    EXPECT_EQ(r.stop, StopReason::Exception);
    EXPECT_NE(r.exceptionMsg.find("bad address"), std::string::npos);
}

TEST(ArchUnit, BranchToUnmappedFaultsOnFetch)
{
    ArchRunResult r = runBare(R"(
        li  x1, #0x3000000
        br  x1
    )");
    EXPECT_EQ(r.stop, StopReason::Exception);
    EXPECT_NE(r.exceptionMsg.find("fetch"), std::string::npos);
}

TEST(ArchUnit, PrivilegedInUserModeFaults)
{
    // Drop to user code that tries HALT.
    ArchRunResult r = runBare(strprintf(R"(
        li    x3, #0x%x
        mtepc x3
        eret
        .org 0x%x
user:
        halt
)", memmap::USER_TEXT, memmap::USER_TEXT));
    EXPECT_EQ(r.stop, StopReason::Exception);
    EXPECT_NE(r.exceptionMsg.find("privileged"), std::string::npos);
}

TEST(ArchUnit, UserMmioAccessFaults)
{
    ArchRunResult r = runBare(strprintf(R"(
        li    x3, #0x%x
        mtepc x3
        eret
        .org 0x%x
user:
        li  x1, #0x%x
        stx x1, [x1, #0]
)", memmap::USER_TEXT, memmap::USER_TEXT, memmap::MMIO_EXIT_CODE));
    EXPECT_EQ(r.stop, StopReason::Exception);
}

TEST(ArchUnit, WatchdogCatchesInfiniteLoop)
{
    ArchRunResult r = runBare("hang: b hang", 10'000);
    EXPECT_EQ(r.stop, StopReason::Watchdog);
    EXPECT_EQ(r.instCount, 10'000u);
}

TEST(ArchUnit, StepAndPeek)
{
    const std::string src = strprintf(R"(
        .isa av64
        .org 0x%x
_start:
        li  x1, #5
        add x1, x1, x1
        halt
)", memmap::BOOT_VECTOR);
    AsmResult as = assemble(src, IsaId::Av64, memmap::BOOT_VECTOR);
    ASSERT_TRUE(as.ok) << as.error;
    as.program.entry = memmap::BOOT_VECTOR;
    ArchConfig cfg;
    ArchSim sim(cfg);
    sim.load(as.program);

    DecodedInst d;
    ASSERT_TRUE(sim.peek(d));
    EXPECT_EQ(d.op, Op::MOVZ); // li expands to movz+movk
    EXPECT_TRUE(sim.step());   // movz
    EXPECT_TRUE(sim.step());   // movk
    EXPECT_EQ(sim.readReg(1), 5u);
    ASSERT_TRUE(sim.peek(d));
    EXPECT_EQ(d.op, Op::ADD);
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(sim.readReg(1), 10u);
    EXPECT_FALSE(sim.step()); // halt
    EXPECT_EQ(sim.stopReason(), StopReason::Exited);
}

TEST(ArchUnit, WriteRegRespectsZeroRegister)
{
    ArchConfig cfg;
    ArchSim sim(cfg);
    Program p;
    p.isa = IsaId::Av64;
    p.entry = memmap::BOOT_VECTOR;
    p.segments.push_back({memmap::BOOT_VECTOR, {0, 0, 0, 0}});
    sim.load(p);
    sim.writeReg(31, 0xffff); // xzr
    EXPECT_EQ(sim.readReg(31), 0u);
    sim.writeReg(4, 0xffff);
    EXPECT_EQ(sim.readReg(4), 0xffffu);
}

TEST(ArchUnit, ClassifyRunTaxonomy)
{
    GoldenRef golden;
    golden.dma = {1, 2, 3};
    golden.exitCode = 0;
    golden.valid = true;

    DeviceOutput same;
    same.dma = {1, 2, 3};
    EXPECT_EQ(classifyRun(StopReason::Exited, same, golden),
              Outcome::Masked);

    DeviceOutput diff;
    diff.dma = {1, 2, 4};
    EXPECT_EQ(classifyRun(StopReason::Exited, diff, golden),
              Outcome::Sdc);

    DeviceOutput wrongExit = same;
    wrongExit.exitCode = 9;
    EXPECT_EQ(classifyRun(StopReason::Exited, wrongExit, golden),
              Outcome::Sdc);

    EXPECT_EQ(classifyRun(StopReason::Exception, same, golden),
              Outcome::Crash);
    EXPECT_EQ(classifyRun(StopReason::Watchdog, same, golden),
              Outcome::Crash);
    EXPECT_EQ(classifyRun(StopReason::DetectHit, same, golden),
              Outcome::Detected);
}

TEST(ArchUnit, DivByZeroDoesNotFault)
{
    ArchRunResult r = runBare(strprintf(R"(
        li   x1, #10
        li   x2, #0
        sdiv x3, x1, x2
        udiv x4, x1, x2
        urem x5, x1, x2
        li   x2, #0x%x
        stx  x5, [x2, #0]
        halt
)", memmap::MMIO_EXIT_CODE));
    ASSERT_EQ(r.stop, StopReason::Exited) << r.exceptionMsg;
    EXPECT_EQ(r.output.exitCode, 10u); // x % 0 == x
}

} // namespace
} // namespace vstack
