/**
 * @file
 * IR-interpreter unit tests: memory safety, watchdogs, recursion
 * limits, fault-injection mechanics (exact value-step targeting), and
 * reuse semantics.
 */
#include <gtest/gtest.h>

#include "compiler/compile.h"
#include "swfi/interp.h"

namespace vstack
{
namespace
{

ir::Module
irOf(const std::string &src)
{
    mcl::FrontendResult fr = mcl::compileToIr(src, 64);
    EXPECT_TRUE(fr.ok) << fr.error;
    return std::move(fr.module);
}

TEST(Interp, BadLoadIsException)
{
    ir::Module m = irOf(
        "fn main(): int { var p: int* = 64 as int*; return *p; }");
    IrInterp interp(m);
    InterpResult r = interp.run();
    EXPECT_EQ(r.stop, StopReason::Exception);
    EXPECT_NE(r.error.find("bad load"), std::string::npos);
}

TEST(Interp, MisalignedAccessIsException)
{
    ir::Module m = irOf(R"(
        var g: byte[16];
        fn main(): int {
            var p: int* = (&g[1]) as int*;
            return *p;
        }
    )");
    IrInterp interp(m);
    EXPECT_EQ(interp.run().stop, StopReason::Exception);
}

TEST(Interp, WatchdogStopsInfiniteLoop)
{
    ir::Module m = irOf(
        "fn main(): int { while (1 == 1) { } return 0; }");
    IrInterp interp(m);
    InterpResult r = interp.run(50'000);
    EXPECT_EQ(r.stop, StopReason::Watchdog);
    EXPECT_GE(r.steps, 50'000u);
}

TEST(Interp, RunawayRecursionIsCaught)
{
    ir::Module m = irOf(R"(
        fn rec(n: int): int { return rec(n + 1); }
        fn main(): int { return rec(0); }
    )");
    IrInterp interp(m);
    InterpResult r = interp.run();
    EXPECT_EQ(r.stop, StopReason::Exception);
}

TEST(Interp, InstanceIsReusableAndDeterministic)
{
    ir::Module m = irOf(R"(
        var g: int;
        fn main(): int { g = g + 41; return g + 1; }
    )");
    IrInterp interp(m);
    // Globals must be re-initialised on every run (no state leaks).
    EXPECT_EQ(interp.run().exitCode, 42u);
    EXPECT_EQ(interp.run().exitCode, 42u);
}

TEST(Interp, FaultTargetsExactValueStep)
{
    // main computes three values; flipping bit 0 of the second one
    // (the constant 20 materialisation) changes the result by +-1.
    ir::Module m = irOf(R"(
        fn main(): int {
            var a: int = 10;
            var b: int = 20;
            return a + b;
        }
    )");
    IrInterp interp(m);
    InterpResult golden = interp.run();
    ASSERT_EQ(golden.exitCode, 30u);

    // Sweep every value step with a bit-0 flip; at least one must
    // change the exit code, and all runs stay well-defined.
    int changed = 0;
    for (uint64_t step = 0; step < golden.valueSteps; ++step) {
        InterpResult r = interp.runWithFault({step, 0}, 100'000);
        if (r.stop == StopReason::Exited && r.exitCode != 30u)
            ++changed;
    }
    EXPECT_GT(changed, 0);
}

TEST(Interp, FaultBeyondRunIsMasked)
{
    ir::Module m = irOf("fn main(): int { return 7; }");
    IrInterp interp(m);
    InterpResult golden = interp.run();
    InterpResult r =
        interp.runWithFault({golden.valueSteps + 100, 3}, 100'000);
    EXPECT_EQ(r.stop, StopReason::Exited);
    EXPECT_EQ(r.exitCode, 7u);
}

TEST(Interp, HighBitFaultsInAddressesCrash)
{
    // Flipping a high bit of a pointer value reliably derails a
    // memory access.
    ir::Module m = irOf(R"(
        var g: int[4];
        fn main(): int {
            g[1] = 5;
            return g[1];
        }
    )");
    IrInterp interp(m);
    InterpResult golden = interp.run();
    ASSERT_EQ(golden.exitCode, 5u);
    int crashed = 0;
    for (uint64_t step = 0; step < golden.valueSteps; ++step) {
        InterpResult r = interp.runWithFault({step, 40}, 100'000);
        crashed += r.stop == StopReason::Exception;
    }
    EXPECT_GT(crashed, 0);
}

TEST(Interp, OutputMatchesWriteCalls)
{
    ir::Module m = irOf(R"(
        const a: byte[] = "foo";
        const b: byte[] = "bar";
        fn main(): int {
            write(a, 3);
            write(b, 3);
            return 0;
        }
    )");
    IrInterp interp(m);
    InterpResult r = interp.run();
    EXPECT_EQ(std::string(r.output.begin(), r.output.end()), "foobar");
}

} // namespace
} // namespace vstack
