/**
 * @file
 * IR-interpreter unit tests: memory safety, watchdogs, recursion
 * limits, fault-injection mechanics (exact value-step targeting), and
 * reuse semantics.
 */
#include <gtest/gtest.h>

#include <random>

#include "compiler/compile.h"
#include "support/failpoint.h"
#include "support/logging.h"
#include "swfi/interp.h"
#include "workloads/workloads.h"

namespace vstack
{
namespace
{

ir::Module
irOf(const std::string &src)
{
    mcl::FrontendResult fr = mcl::compileToIr(src, 64);
    EXPECT_TRUE(fr.ok) << fr.error;
    return std::move(fr.module);
}

TEST(Interp, BadLoadIsException)
{
    ir::Module m = irOf(
        "fn main(): int { var p: int* = 64 as int*; return *p; }");
    IrInterp interp(m);
    InterpResult r = interp.run();
    EXPECT_EQ(r.stop, StopReason::Exception);
    EXPECT_NE(r.error.find("bad load"), std::string::npos);
}

TEST(Interp, MisalignedAccessIsException)
{
    ir::Module m = irOf(R"(
        var g: byte[16];
        fn main(): int {
            var p: int* = (&g[1]) as int*;
            return *p;
        }
    )");
    IrInterp interp(m);
    EXPECT_EQ(interp.run().stop, StopReason::Exception);
}

TEST(Interp, WatchdogStopsInfiniteLoop)
{
    ir::Module m = irOf(
        "fn main(): int { while (1 == 1) { } return 0; }");
    IrInterp interp(m);
    InterpResult r = interp.run(50'000);
    EXPECT_EQ(r.stop, StopReason::Watchdog);
    EXPECT_GE(r.steps, 50'000u);
}

TEST(Interp, RunawayRecursionIsCaught)
{
    ir::Module m = irOf(R"(
        fn rec(n: int): int { return rec(n + 1); }
        fn main(): int { return rec(0); }
    )");
    IrInterp interp(m);
    InterpResult r = interp.run();
    EXPECT_EQ(r.stop, StopReason::Exception);
}

TEST(Interp, InstanceIsReusableAndDeterministic)
{
    ir::Module m = irOf(R"(
        var g: int;
        fn main(): int { g = g + 41; return g + 1; }
    )");
    IrInterp interp(m);
    // Globals must be re-initialised on every run (no state leaks).
    EXPECT_EQ(interp.run().exitCode, 42u);
    EXPECT_EQ(interp.run().exitCode, 42u);
}

TEST(Interp, FaultTargetsExactValueStep)
{
    // main computes three values; flipping bit 0 of the second one
    // (the constant 20 materialisation) changes the result by +-1.
    ir::Module m = irOf(R"(
        fn main(): int {
            var a: int = 10;
            var b: int = 20;
            return a + b;
        }
    )");
    IrInterp interp(m);
    InterpResult golden = interp.run();
    ASSERT_EQ(golden.exitCode, 30u);

    // Sweep every value step with a bit-0 flip; at least one must
    // change the exit code, and all runs stay well-defined.
    int changed = 0;
    for (uint64_t step = 0; step < golden.valueSteps; ++step) {
        InterpResult r = interp.runWithFault({step, 0}, 100'000);
        if (r.stop == StopReason::Exited && r.exitCode != 30u)
            ++changed;
    }
    EXPECT_GT(changed, 0);
}

TEST(Interp, FaultBeyondRunIsMasked)
{
    ir::Module m = irOf("fn main(): int { return 7; }");
    IrInterp interp(m);
    InterpResult golden = interp.run();
    InterpResult r =
        interp.runWithFault({golden.valueSteps + 100, 3}, 100'000);
    EXPECT_EQ(r.stop, StopReason::Exited);
    EXPECT_EQ(r.exitCode, 7u);
}

TEST(Interp, HighBitFaultsInAddressesCrash)
{
    // Flipping a high bit of a pointer value reliably derails a
    // memory access.
    ir::Module m = irOf(R"(
        var g: int[4];
        fn main(): int {
            g[1] = 5;
            return g[1];
        }
    )");
    IrInterp interp(m);
    InterpResult golden = interp.run();
    ASSERT_EQ(golden.exitCode, 5u);
    int crashed = 0;
    for (uint64_t step = 0; step < golden.valueSteps; ++step) {
        InterpResult r = interp.runWithFault({step, 40}, 100'000);
        crashed += r.stop == StopReason::Exception;
    }
    EXPECT_GT(crashed, 0);
}

TEST(Interp, OutputMatchesWriteCalls)
{
    ir::Module m = irOf(R"(
        const a: byte[] = "foo";
        const b: byte[] = "bar";
        fn main(): int {
            write(a, 3);
            write(b, 3);
            return 0;
        }
    )");
    IrInterp interp(m);
    InterpResult r = interp.run();
    EXPECT_EQ(std::string(r.output.begin(), r.output.end()), "foobar");
}

void
expectSameResult(const InterpResult &a, const InterpResult &b,
                 const std::string &what)
{
    EXPECT_EQ(a.stop, b.stop) << what;
    EXPECT_EQ(a.error, b.error) << what;
    EXPECT_EQ(a.steps, b.steps) << what;
    EXPECT_EQ(a.valueSteps, b.valueSteps) << what;
    EXPECT_EQ(a.output, b.output) << what;
    EXPECT_EQ(a.exitCode, b.exitCode) << what;
    EXPECT_EQ(a.detectCode, b.detectCode) << what;
}

/**
 * Threaded-code dispatch vs the plain interpreter loop on real
 * workloads: fault-free runs and the recorded golden traces (digest
 * grid, output marks, checkpoint placement) must be identical in
 * every observable field.
 */
TEST(InterpFastPath, GoldenRunsAndTracesMatchSlow)
{
    for (const char *name : {"fft", "qsort", "sha"}) {
        mcl::FrontendResult fr =
            mcl::compileToIr(findWorkload(name).source, 64);
        ASSERT_TRUE(fr.ok) << fr.error;
        IrInterp slow(fr.module), fast(fr.module);
        fast.setFastPath(predecodeIr(fr.module));
        expectSameResult(slow.run(), fast.run(), name);

        SwfiTrace ts, tf;
        InterpResult rs = slow.runRecording(80'000'000, ts, 500, 4);
        InterpResult rf = fast.runRecording(80'000'000, tf, 500, 4);
        expectSameResult(rs, rf, std::string(name) + " recording");
        EXPECT_EQ(ts.digests, tf.digests) << name;
        EXPECT_EQ(ts.outLens, tf.outLens) << name;
        ASSERT_EQ(ts.checkpoints.size(), tf.checkpoints.size()) << name;
        for (size_t i = 0; i < ts.checkpoints.size(); ++i)
            EXPECT_EQ(ts.checkpoints[i].steps, tf.checkpoints[i].steps)
                << name << " ckpt " << i;
    }
}

/**
 * Lockstep fuzz of injected runs: faults across the value-step range
 * and bit positions, executed cold (runWithFault) and fast-forwarded
 * with early stop (runWithTrace), fast path vs slow loop.  The fast
 * prefix ends at the injection point, so any drift in where the
 * threaded code hands back to the exact interpreter shows up here.
 */
TEST(InterpFastPath, FaultRunsMatchSlowAcrossValueSteps)
{
    mcl::FrontendResult fr =
        mcl::compileToIr(findWorkload("qsort").source, 64);
    ASSERT_TRUE(fr.ok) << fr.error;
    IrInterp slow(fr.module), fast(fr.module);
    fast.setFastPath(predecodeIr(fr.module));

    SwfiTrace trace;
    InterpResult golden = slow.runRecording(80'000'000, trace, 500, 4);
    ASSERT_EQ(golden.stop, StopReason::Exited);
    const uint64_t vs = golden.valueSteps;

    std::mt19937 rng(0x5eedu);
    for (int i = 0; i < 24; ++i) {
        SwFault f;
        f.targetValueStep = i == 0 ? 0 : rng() % (vs + vs / 8 + 1);
        f.bit = static_cast<int>(rng() % 64);
        const std::string what = strprintf(
            "fault @%llu bit %d",
            static_cast<unsigned long long>(f.targetValueStep), f.bit);
        expectSameResult(slow.runWithFault(f, 80'000'000),
                         fast.runWithFault(f, 80'000'000), what);
        expectSameResult(
            slow.runWithTrace(f, 80'000'000, trace, true),
            fast.runWithTrace(f, 80'000'000, trace, true),
            what + " traced");
    }
}

/** The fastpath.dispatch failpoint pins runs to the slow loop; with a
 *  predecode attached the results must not change. */
TEST(InterpFastPath, DispatchFailpointIsByteIdentical)
{
    mcl::FrontendResult fr =
        mcl::compileToIr(findWorkload("fft").source, 64);
    ASSERT_TRUE(fr.ok) << fr.error;
    IrInterp fast(fr.module);
    fast.setFastPath(predecodeIr(fr.module));
    InterpResult r = fast.run();

    armFailpoints("fastpath.dispatch=1000000");
    InterpResult pinned = fast.run();
    uint64_t fires = failpointFires("fastpath.dispatch");
    clearFailpoints();

    EXPECT_GT(fires, 0u) << "failpoint must have forced the slow loop";
    expectSameResult(r, pinned, "failpoint-pinned");
}

} // namespace
} // namespace vstack
