/**
 * @file
 * Fault-model plugin tests (src/fault): spec parsing and canonical
 * tags, byte-identity of the single-bit default with the legacy
 * per-sample draw sequence, per-model sampling determinism, store-key
 * separation between models, journal identity, the manifest / wire
 * codecs, and the burst wrap at the bit-space edge.
 *
 * Every fixture name contains "FaultModel": the suite-running cases
 * here are excluded from the TSan stage of tools/ci_sanitize.sh by
 * that name, like the suite and service tests.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "compiler/compile.h"
#include "core/suite.h"
#include "core/vstack.h"
#include "exec/journal.h"
#include "fault/condition.h"
#include "fault/model.h"
#include "gefin/campaign.h"
#include "kernel/kernel.h"
#include "swfi/svf.h"
#include "workloads/workloads.h"

namespace vstack
{
namespace
{

Program
systemImage(const std::string &wl, IsaId isa)
{
    mcl::BuildResult b =
        mcl::buildUserProgram(findWorkload(wl).source, isa);
    EXPECT_TRUE(b.ok) << b.error;
    return buildSystemImage(buildKernel(isa), b.program);
}

std::shared_ptr<const fault::FaultModel>
mustParse(const std::string &spec)
{
    std::string err;
    auto m = fault::parseFaultModel(spec, err);
    EXPECT_TRUE(m) << spec << ": " << err;
    return m;
}

bool
countsEq(const OutcomeCounts &a, const OutcomeCounts &b)
{
    return a.masked == b.masked && a.sdc == b.sdc &&
           a.crash == b.crash && a.detected == b.detected;
}

bool
faultEq(const fault::UarchFault &a, const fault::UarchFault &b)
{
    if (a.sites.size() != b.sites.size())
        return false;
    for (size_t i = 0; i < a.sites.size(); ++i) {
        const FaultSite &x = a.sites[i], &y = b.sites[i];
        if (x.structure != y.structure || x.cycle != y.cycle ||
            x.bit != y.bit || x.burst != y.burst ||
            x.conditioned != y.conditioned || x.condSalt != y.condSalt ||
            x.pFlip1 != y.pFlip1 || x.pFlip0 != y.pFlip0)
            return false;
    }
    return true;
}

bool
swFaultEq(const SwFault &a, const SwFault &b)
{
    if (a.targetValueStep != b.targetValueStep || a.bit != b.bit ||
        a.burst != b.burst || a.stride != b.stride ||
        a.conditioned != b.conditioned || a.condSalt != b.condSalt ||
        a.pFlip1 != b.pFlip1 || a.pFlip0 != b.pFlip0 ||
        a.extra.size() != b.extra.size())
        return false;
    for (size_t i = 0; i < a.extra.size(); ++i)
        if (a.extra[i].targetValueStep != b.extra[i].targetValueStep ||
            a.extra[i].bit != b.extra[i].bit)
            return false;
    return true;
}

/** The four parseable specs, one per model, with non-default knobs
 *  for the three non-default models. */
const char *const kModelSpecs[] = {
    "single-bit",
    "spatial-multibit:cluster=4,stride=3",
    "sram-undervolt:vdd=0.8,banks=8,droop=0.02,asym=0.25",
    "em-burst:window=64,flips=3",
};

// ---- parsing and canonical tags --------------------------------------------

TEST(FaultModelParseTest, EmptySpecIsTheSingleBitDefault)
{
    std::string err;
    auto m = fault::parseFaultModel("", err);
    ASSERT_TRUE(m) << err;
    EXPECT_TRUE(m->isDefault());
    EXPECT_EQ(m->tag(), "single-bit");
    auto named = fault::parseFaultModel("single-bit", err);
    ASSERT_TRUE(named) << err;
    EXPECT_TRUE(named->isDefault());
    EXPECT_EQ(named->tag(), fault::singleBitModel()->tag());
}

TEST(FaultModelParseTest, KnobOrderCanonicalizes)
{
    auto a = mustParse("spatial-multibit:cluster=4,stride=8");
    auto b = mustParse("spatial-multibit:stride=8,cluster=4");
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->tag(), b->tag());
    EXPECT_FALSE(a->isDefault());

    auto c = mustParse("em-burst:flips=2,window=128");
    auto d = mustParse("em-burst:window=128,flips=2");
    ASSERT_TRUE(c && d);
    EXPECT_EQ(c->tag(), d->tag());
}

TEST(FaultModelParseTest, UnspecifiedKnobsTakeDefaults)
{
    // A bare name parses; its tag still spells out every knob, so two
    // specs that resolve to the same knob values share one tag.
    auto bare = mustParse("spatial-multibit");
    ASSERT_TRUE(bare);
    EXPECT_NE(bare->tag().find("cluster="), std::string::npos);
    EXPECT_NE(bare->tag().find("stride="), std::string::npos);
}

TEST(FaultModelParseTest, BadSpecsAreRejectedWithoutExiting)
{
    const char *bad[] = {
        "rowhammer",                    // unknown model
        "em-burst:zap=3",               // unknown knob
        "spatial-multibit:cluster=0",   // below range
        "spatial-multibit:cluster=65",  // above range
        "sram-undervolt:vdd=2.0",       // above range
        "em-burst:flips=0",             // below range
        "em-burst:flips=abc",           // malformed value
        "spatial-multibit:cluster",     // missing value
    };
    for (const char *spec : bad) {
        std::string err;
        auto m = fault::parseFaultModel(spec, err);
        EXPECT_FALSE(m) << spec << " parsed to " << m->tag();
        EXPECT_FALSE(err.empty()) << spec;
    }
}

TEST(FaultModelParseTest, AllFourModelsAreListed)
{
    const auto &names = fault::faultModelNames();
    for (const char *want :
         {"single-bit", "spatial-multibit", "sram-undervolt", "em-burst"}) {
        bool found = false;
        for (const std::string &n : names)
            found = found || n == want;
        EXPECT_TRUE(found) << want;
    }
}

// ---- single-bit byte-identity with the legacy draw sequence ----------------

TEST(FaultModelSingleBitTest, UarchSamplingMatchesLegacyDraws)
{
    fault::UarchSpace space;
    space.structure = Structure::L1D;
    space.cycles = 5000;
    space.bits = 1u << 18;

    Rng master(42);
    Rng legacy(42);
    auto faults =
        fault::singleBitModel()->sampleUarch(master, space, 32);
    ASSERT_EQ(faults.size(), 32u);
    for (const fault::UarchFault &f : faults) {
        // The historical sampler: one fork per sample, the cycle draw
        // (1 + uniform(cycles), clamped into the live range) then the
        // bit draw.  The default model must reproduce it draw for
        // draw — that is what keeps its stores byte-identical.
        Rng rng = legacy.fork();
        const uint64_t cycle =
            std::min<uint64_t>(1 + rng.uniform(space.cycles),
                               space.cycles > 1 ? space.cycles - 1 : 1);
        const uint64_t bit = rng.uniform(space.bits);
        ASSERT_EQ(f.sites.size(), 1u);
        const FaultSite &s = f.sites.front();
        EXPECT_EQ(s.structure, Structure::L1D);
        EXPECT_EQ(s.cycle, cycle);
        EXPECT_EQ(s.bit, bit);
        EXPECT_EQ(s.burst, 1u);
        EXPECT_FALSE(s.conditioned);
    }
}

TEST(FaultModelSingleBitTest, SvfSamplingMatchesLegacyDraws)
{
    fault::SvfSpace space;
    space.valueSteps = 7777;
    space.xlen = 64;

    Rng master(13 ^ 0x5f0d1e2c3b4a5968ull);
    Rng legacy(13 ^ 0x5f0d1e2c3b4a5968ull);
    auto faults = fault::singleBitModel()->sampleSvf(master, space, 32);
    ASSERT_EQ(faults.size(), 32u);
    for (const SwFault &f : faults) {
        Rng rng = legacy.fork();
        const uint64_t step = rng.uniform(space.valueSteps);
        const int bit = static_cast<int>(
            rng.uniform(static_cast<uint64_t>(space.xlen)));
        EXPECT_EQ(f.targetValueStep, step);
        EXPECT_EQ(f.bit, bit);
        EXPECT_EQ(f.burst, 1u);
        EXPECT_FALSE(f.conditioned);
        EXPECT_TRUE(f.extra.empty());
        EXPECT_EQ(f.lastStep(), step);
    }
}

TEST(FaultModelSingleBitTest, PvfShapeIsTheLegacyDefault)
{
    fault::PvfSpace space;
    space.insts = 100000;
    space.xlen = 64;
    fault::PvfShape shape = fault::singleBitModel()->pvfShape(space);
    EXPECT_TRUE(shape.isDefault());
    EXPECT_EQ(shape.burst, 1u);
    EXPECT_EQ(shape.events, 1u);
    EXPECT_FALSE(shape.conditioned);
}

// ---- per-model sampling determinism ----------------------------------------

TEST(FaultModelDeterminismTest, SamplingIsAPureFunctionOfSeed)
{
    fault::UarchSpace us;
    us.structure = Structure::RF;
    us.cycles = 4096;
    us.bits = 2048;
    for (size_t i = 0; i < 5; ++i)
        us.allBits[i] = 1024u << i;
    fault::SvfSpace ss;
    ss.valueSteps = 9999;
    ss.xlen = 64;

    for (const char *spec : kModelSpecs) {
        auto m = mustParse(spec);
        ASSERT_TRUE(m);
        Rng ma(77), mb(77);
        auto ua = m->sampleUarch(ma, us, 24);
        auto ub = m->sampleUarch(mb, us, 24);
        ASSERT_EQ(ua.size(), ub.size()) << spec;
        for (size_t i = 0; i < ua.size(); ++i)
            EXPECT_TRUE(faultEq(ua[i], ub[i])) << spec << " #" << i;

        Rng sa(77), sb(77);
        auto va = m->sampleSvf(sa, ss, 24);
        auto vb = m->sampleSvf(sb, ss, 24);
        ASSERT_EQ(va.size(), vb.size()) << spec;
        for (size_t i = 0; i < va.size(); ++i)
            EXPECT_TRUE(swFaultEq(va[i], vb[i])) << spec << " #" << i;

        // A different seed must sample a different list (astronomically
        // unlikely to collide over 24 x (cycle, bit) draws).
        Rng mc(78);
        auto uc = m->sampleUarch(mc, us, 24);
        bool allEqual = uc.size() == ua.size();
        for (size_t i = 0; allEqual && i < uc.size(); ++i)
            allEqual = faultEq(ua[i], uc[i]);
        EXPECT_FALSE(allEqual) << spec;
    }
}

TEST(FaultModelDeterminismTest, SvfCampaignIsJobsInvariantPerModel)
{
    mcl::FrontendResult fr =
        mcl::compileToIr(findWorkload("sha").source, 64);
    ASSERT_TRUE(fr.ok);
    SvfCampaign campaign(fr.module);
    for (const char *spec :
         {"spatial-multibit:cluster=4,stride=3", "em-burst:window=32,flips=2"}) {
        auto m = mustParse(spec);
        ASSERT_TRUE(m);
        OutcomeCounts serial = campaign.run(40, 13, {}, m.get());
        exec::ExecConfig three;
        three.jobs = 3;
        OutcomeCounts parallel = campaign.run(40, 13, three, m.get());
        EXPECT_TRUE(countsEq(serial, parallel)) << spec;
    }
}

TEST(FaultModelDeterminismTest, UarchCampaignIsJobsInvariantPerModel)
{
    UarchCampaign campaign(coreByName("ax9"),
                           systemImage("qsort", IsaId::Av32));
    auto m = mustParse("sram-undervolt:vdd=0.8,banks=8");
    ASSERT_TRUE(m);
    auto serial = campaign.run(Structure::RF, 16, 7, {}, m.get());
    exec::ExecConfig three;
    three.jobs = 3;
    auto parallel = campaign.run(Structure::RF, 16, 7, three, m.get());
    EXPECT_EQ(serial.outcomes.masked, parallel.outcomes.masked);
    EXPECT_EQ(serial.outcomes.sdc, parallel.outcomes.sdc);
    EXPECT_EQ(serial.outcomes.crash, parallel.outcomes.crash);
    EXPECT_EQ(serial.fpms.wd, parallel.fpms.wd);
    EXPECT_EQ(serial.hwMasked, parallel.hwMasked);
}

// ---- store-key separation --------------------------------------------------

EnvConfig
keyCfg()
{
    EnvConfig cfg;
    cfg.uarchFaults = 8;
    cfg.archFaults = 8;
    cfg.swFaults = 8;
    cfg.seed = 7;
    cfg.jobs = 1;
    return cfg;
}

TEST(FaultModelStoreKeyTest, NonDefaultModelsGetTaggedKeys)
{
    CampaignSpec spec;
    spec.layer = CampaignLayer::Svf;
    spec.variant = Variant{"fft", false};

    EnvConfig cfg = keyCfg();
    const std::string plain = campaignKey(cfg, spec);
    EXPECT_EQ(plain.find("/fm:"), std::string::npos);

    // Environment-level model: every key of the campaign gains the
    // canonical-tag suffix, so it can never share a store entry (or a
    // cache hit) with a default-model campaign.
    auto m = mustParse("em-burst:window=64,flips=2");
    ASSERT_TRUE(m);
    EnvConfig tagged = keyCfg();
    tagged.faultModel = m->tag();
    EXPECT_EQ(campaignKey(tagged, spec), plain + "/fm:" + m->tag());

    // Per-spec model beats the environment default.
    CampaignSpec overridden = spec;
    overridden.faultModel = mustParse("spatial-multibit")->tag();
    EXPECT_EQ(campaignKey(tagged, overridden),
              plain + "/fm:" + overridden.faultModel);
}

TEST(FaultModelStoreKeyTest, ExplicitSingleBitOverrideRestoresDefaultKey)
{
    CampaignSpec spec;
    spec.layer = CampaignLayer::Uarch;
    spec.variant = Variant{"fft", false};
    spec.core = "ax9";
    spec.structure = Structure::RF;

    EnvConfig tagged = keyCfg();
    tagged.faultModel = "em-burst:window=64,flips=2,cross=0";
    CampaignSpec single = spec;
    single.faultModel = "single-bit";
    // The explicit per-entry "single-bit" resolves to the *default*
    // key bytes: stores written before the plugin refactor stay warm.
    EXPECT_EQ(campaignKey(tagged, single), campaignKey(keyCfg(), spec));
}

TEST(FaultModelStoreKeyTest, DifferentModelsNeverShareStoreEntries)
{
    const std::string base =
        "/tmp/vstack_faultmodel_test." + std::to_string(getpid());
    std::filesystem::remove_all(base);

    CampaignPlan plan;
    plan.addSvf(Variant{"fft", false});

    EnvConfig cfg = keyCfg();
    cfg.resultsDir = base;
    {
        VulnerabilityStack stack(cfg);
        SuiteReport r = runSuite(stack, plan);
        EXPECT_EQ(r.cacheHits, 0u);
    }
    {
        // Same dir, same campaign: warm.
        VulnerabilityStack stack(cfg);
        SuiteReport r = runSuite(stack, plan);
        EXPECT_EQ(r.cacheHits, 1u);
    }
    {
        // Same dir, different model: the tagged key must miss.
        EnvConfig other = cfg;
        other.faultModel = "spatial-multibit:cluster=2,stride=1";
        VulnerabilityStack stack(other);
        SuiteReport r = runSuite(stack, plan);
        EXPECT_EQ(r.cacheHits, 0u);
    }
    {
        // And the default entry is still warm afterwards.
        VulnerabilityStack stack(cfg);
        SuiteReport r = runSuite(stack, plan);
        EXPECT_EQ(r.cacheHits, 1u);
    }
    std::filesystem::remove_all(base);
}

// ---- burst wrap at the bit-space edge --------------------------------------

TEST(FaultModelBurstEdgeTest, BurstWrapsAtBitSpaceEdge)
{
    UarchCampaign campaign(coreByName("ax9"),
                           systemImage("qsort", IsaId::Av32));
    campaign.ensureTrace();
    CycleSim accel(coreByName("ax9"));
    CycleSim cold(coreByName("ax9"));
    for (Structure s : allStructures) {
        const uint64_t bits = accel.structureBits(s);
        FaultSite site = campaign.sampleSites(s, 1, 21).front();
        // A burst anchored on the last bit of the structure: flips
        // past the edge wrap to bits 0..2 (documented in
        // CycleSim::applyInjection) instead of indexing out of range.
        site.bit = bits - 1;
        site.burst = 4;
        fault::UarchFault f;
        f.sites.push_back(site);
        Visibility va, vc;
        const Outcome oa = campaign.runFaultOn(accel, f, va);
        const Outcome oc = campaign.runFaultColdOn(cold, f, vc);
        EXPECT_EQ(oa, oc) << structureName(s);
        EXPECT_EQ(va.visible, vc.visible) << structureName(s);
    }
}

TEST(FaultModelBurstEdgeTest, EmBurstMultiSiteWarmMatchesCold)
{
    UarchCampaign campaign(coreByName("ax9"),
                           systemImage("qsort", IsaId::Av32));
    campaign.ensureTrace();
    auto m = mustParse("em-burst:window=256,flips=3");
    ASSERT_TRUE(m);
    auto faults = campaign.sampleFaults(m.get(), Structure::RF, 8, 11);
    ASSERT_EQ(faults.size(), 8u);
    bool sawMultiSite = false;
    CycleSim accel(coreByName("ax9"));
    CycleSim cold(coreByName("ax9"));
    for (const fault::UarchFault &f : faults) {
        sawMultiSite = sawMultiSite || f.sites.size() > 1;
        for (size_t i = 1; i < f.sites.size(); ++i)
            EXPECT_LE(f.sites[i - 1].cycle, f.sites[i].cycle);
        Visibility va, vc;
        EXPECT_EQ(campaign.runFaultOn(accel, f, va),
                  campaign.runFaultColdOn(cold, f, vc));
    }
    EXPECT_TRUE(sawMultiSite);
}

// ---- journal identity ------------------------------------------------------

TEST(FaultModelJournalTest, ModelTagIsPartOfJournalIdentity)
{
    const std::string dir =
        "/tmp/vstack_faultmodel_journal." + std::to_string(getpid());
    std::filesystem::remove_all(dir);
    const std::string path = dir + "/j.jsonl";
    const std::string fm = "em-burst:window=64,flips=2,cross=0";
    {
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "camp", 10, 42, false, fm));
        j.append(0, Json::parse("{\"ok\":true}"));
    }
    {
        // Same model tag: the record replays.
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "camp", 10, 42, true, fm));
        EXPECT_EQ(j.replayed(), 1u);
    }
    {
        // Default model: a different campaign — the journal restarts.
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "camp", 10, 42, true));
        EXPECT_EQ(j.replayed(), 0u);
        j.append(0, Json::parse("{\"ok\":true}"));
    }
    {
        // Pre-fault-model journals (no "fm" header field) keep
        // replaying for default campaigns; a tagged open restarts.
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "camp", 10, 42, true));
        EXPECT_EQ(j.replayed(), 1u);
    }
    {
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "camp", 10, 42, true, fm));
        EXPECT_EQ(j.replayed(), 0u);
    }
    std::filesystem::remove_all(dir);
}

// ---- wire / manifest codecs ------------------------------------------------

TEST(FaultModelSpecCodecTest, SpecRoundTripsFaultModel)
{
    CampaignSpec spec;
    spec.layer = CampaignLayer::Pvf;
    spec.variant = Variant{"fft", false};
    spec.isa = IsaId::Av64;
    spec.fpm = Fpm::WI;
    spec.faultModel = mustParse("sram-undervolt:vdd=0.8")->tag();

    Json j = specToJson(spec);
    ASSERT_TRUE(j.has("faultModel"));
    CampaignSpec back;
    std::string err;
    ASSERT_TRUE(specFromJson(j, back, err)) << err;
    EXPECT_EQ(back.faultModel, spec.faultModel);

    spec.faultModel.clear();
    Json plain = specToJson(spec);
    EXPECT_FALSE(plain.has("faultModel"));
    ASSERT_TRUE(specFromJson(plain, back, err)) << err;
    EXPECT_TRUE(back.faultModel.empty());
}

TEST(FaultModelSpecCodecTest, MalformedFaultModelIsRejectedGracefully)
{
    CampaignSpec spec;
    spec.layer = CampaignLayer::Svf;
    spec.variant = Variant{"fft", false};
    Json j = specToJson(spec);
    j.set("faultModel", Json("bogus"));
    CampaignSpec back;
    std::string err;
    EXPECT_FALSE(specFromJson(j, back, err));
    EXPECT_NE(err.find("campaign spec"), std::string::npos) << err;
}

TEST(FaultModelManifestTest, UnknownModelIsRejectedBeforePlanning)
{
    std::string perr;
    Json manifest = Json::parse(
        "{\"campaigns\": [{\"layer\": \"svf\", \"workload\": \"fft\","
        " \"faultModel\": \"bogus\"}]}",
        &perr);
    ASSERT_TRUE(perr.empty()) << perr;
    CampaignPlan plan;
    std::string err;
    EXPECT_FALSE(planFromManifest(manifest, false, plan, err));
    EXPECT_NE(err.find("suite manifest"), std::string::npos) << err;
}

TEST(FaultModelManifestTest, ModelAppliesToEveryFannedOutSpec)
{
    std::string perr;
    Json manifest = Json::parse(
        "{\"campaigns\": ["
        "{\"layer\": \"uarch\", \"workload\": \"fft\", \"core\": \"ax9\","
        " \"structure\": \"*\", \"faultModel\": \"em-burst:flips=2\"},"
        "{\"layer\": \"svf\", \"workload\": \"fft\"}]}",
        &perr);
    ASSERT_TRUE(perr.empty()) << perr;
    CampaignPlan plan;
    std::string err;
    ASSERT_TRUE(planFromManifest(manifest, false, plan, err)) << err;
    ASSERT_EQ(plan.size(), 6u); // five structures + one svf entry
    const std::string tag = mustParse("em-burst:flips=2")->tag();
    for (size_t i = 0; i < 5; ++i)
        EXPECT_EQ(plan.specs()[i].faultModel, tag) << i;
    // The entry without a model inherits the environment default.
    EXPECT_TRUE(plan.specs()[5].faultModel.empty());
}

} // namespace
} // namespace vstack
