/**
 * @file
 * ISA-layer tests: encode/decode round trips (property sweep over all
 * ops and random fields on both ISAs), instruction-bit FPM
 * classification, register naming, the assembler, and program images.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "isa/assembler.h"
#include "isa/isa.h"
#include "isa/program.h"
#include "isa/semantics.h"
#include "support/rng.h"

namespace vstack
{
namespace
{

std::vector<IsaId> bothIsas{IsaId::Av32, IsaId::Av64};

class IsaRoundTrip : public ::testing::TestWithParam<IsaId>
{
};

/** Build a random-but-valid DecodedInst for an op on an ISA. */
DecodedInst
randomInst(Op op, IsaId isa, Rng &rng)
{
    const IsaSpec &spec = IsaSpec::get(isa);
    const OpInfo &info = opInfo(op);
    const int ib = spec.immBits();
    DecodedInst d;
    d.op = op;
    d.valid = true;
    auto reg = [&] {
        return static_cast<uint8_t>(rng.uniform(spec.numRegs));
    };
    switch (info.format) {
      case Format::Sys:
        break;
      case Format::R:
        d.rd = reg();
        d.rs1 = reg();
        d.rs2 = reg();
        break;
      case Format::R2:
      case Format::Jr:
        d.rd = reg();
        break;
      case Format::I:
      case Format::MemL:
      case Format::MemS:
        d.rd = reg();
        d.rs1 = reg();
        d.imm = static_cast<int64_t>(rng.uniform(1ull << ib)) -
                (1ll << (ib - 1));
        break;
      case Format::Br:
        d.rs1 = reg();
        d.rs2 = reg();
        d.imm = (static_cast<int64_t>(rng.uniform(1ull << ib)) -
                 (1ll << (ib - 1))) *
                4;
        break;
      case Format::J:
        d.imm = (static_cast<int64_t>(rng.uniform(1ull << 26)) -
                 (1ll << 25)) *
                4;
        break;
      case Format::Lui:
        d.rd = reg();
        d.imm = static_cast<int64_t>(rng.uniform(1ull << 22));
        break;
      case Format::Mov:
        d.rd = reg();
        d.imm = static_cast<int64_t>(rng.uniform(1ull << 16));
        d.hw = static_cast<uint8_t>(
            rng.uniform(IsaSpec::get(isa).xlen / 16));
        break;
    }
    return d;
}

TEST_P(IsaRoundTrip, EncodeDecodeIsIdentityForAllOps)
{
    const IsaId isa = GetParam();
    Rng rng(2024);
    for (size_t o = 0; o < static_cast<size_t>(Op::NumOps); ++o) {
        const Op op = static_cast<Op>(o);
        if (!opValidFor(op, isa))
            continue;
        for (int trial = 0; trial < 50; ++trial) {
            DecodedInst d = randomInst(op, isa, rng);
            const uint32_t word = encode(isa, d);
            DecodedInst back = decode(isa, word);
            ASSERT_TRUE(back.valid)
                << opInfo(op).name << " word=" << std::hex << word;
            EXPECT_TRUE(back.sameAs(d))
                << opInfo(op).name << ": " << disassemble(isa, word);
        }
    }
}

TEST_P(IsaRoundTrip, InvalidOpcodesDecodeInvalid)
{
    const IsaId isa = GetParam();
    for (uint32_t opc = static_cast<uint32_t>(Op::NumOps); opc < 64;
         ++opc) {
        DecodedInst d = decode(isa, opc << 26);
        EXPECT_FALSE(d.valid);
    }
}

TEST_P(IsaRoundTrip, DisassembleNamesEveryValidOp)
{
    const IsaId isa = GetParam();
    Rng rng(5);
    for (size_t o = 0; o < static_cast<size_t>(Op::NumOps); ++o) {
        const Op op = static_cast<Op>(o);
        if (!opValidFor(op, isa))
            continue;
        DecodedInst d = randomInst(op, isa, rng);
        std::string text = disassemble(isa, encode(isa, d));
        EXPECT_EQ(text.rfind(opInfo(op).name, 0), 0u) << text;
    }
}

TEST_P(IsaRoundTrip, ClassifyInstBitPartitionsWords)
{
    const IsaId isa = GetParam();
    Rng rng(99);
    for (size_t o = 0; o < static_cast<size_t>(Op::NumOps); ++o) {
        const Op op = static_cast<Op>(o);
        if (!opValidFor(op, isa))
            continue;
        DecodedInst d = randomInst(op, isa, rng);
        const uint32_t word = encode(isa, d);
        for (int bit = 26; bit < 32; ++bit)
            EXPECT_EQ(classifyInstBit(isa, word, bit),
                      InstFieldKind::Opcode);
        // Flipping a bit classified Unused must not change decode.
        for (int bit = 0; bit < 26; ++bit) {
            if (classifyInstBit(isa, word, bit) == InstFieldKind::Unused) {
                DecodedInst flipped = decode(isa, word ^ (1u << bit));
                EXPECT_TRUE(flipped.sameAs(d))
                    << opInfo(op).name << " bit " << bit;
            }
        }
    }
}

TEST_P(IsaRoundTrip, BranchOffsetsClassifyAsControl)
{
    const IsaId isa = GetParam();
    DecodedInst d;
    d.op = Op::B;
    d.imm = 64;
    d.valid = true;
    const uint32_t word = encode(isa, d);
    EXPECT_EQ(classifyInstBit(isa, word, 0),
              InstFieldKind::ControlOffset);
    EXPECT_EQ(classifyInstBit(isa, word, 20),
              InstFieldKind::ControlOffset);
}

INSTANTIATE_TEST_SUITE_P(BothIsas, IsaRoundTrip,
                         ::testing::ValuesIn(bothIsas),
                         [](const auto &info) {
                             return std::string(isaName(info.param));
                         });

TEST(IsaSpecTest, RegisterNamesRoundTrip)
{
    for (IsaId isa : bothIsas) {
        const IsaSpec &spec = IsaSpec::get(isa);
        for (int r = 0; r < spec.numRegs; ++r) {
            EXPECT_EQ(spec.parseReg(spec.regName(r)), r)
                << isaName(isa) << " reg " << r;
        }
        EXPECT_EQ(spec.parseReg("sp"), spec.sp);
        EXPECT_EQ(spec.parseReg("lr"), spec.lr);
        EXPECT_EQ(spec.parseReg("bogus"), -1);
    }
}

TEST(IsaSpecTest, AbiRegistersAreDisjoint)
{
    for (IsaId isa : bothIsas) {
        const IsaSpec &spec = IsaSpec::get(isa);
        std::set<int> special{spec.sp, spec.lr, spec.kreg,
                              spec.syscallNr};
        if (spec.zeroReg >= 0)
            special.insert(spec.zeroReg);
        for (int t : spec.tempRegs) {
            EXPECT_FALSE(special.count(t)) << isaName(isa);
            for (int c : spec.calleeSaved)
                EXPECT_NE(t, c);
        }
        for (int c : spec.calleeSaved)
            EXPECT_FALSE(special.count(c)) << isaName(isa);
    }
}

TEST(Semantics, DivisionByZeroFollowsArmRules)
{
    const IsaSpec &spec = IsaSpec::get(IsaId::Av64);
    DecodedInst d;
    d.op = Op::UDIV;
    EXPECT_EQ(aluResult(spec, d, 42, 0, 0), 0u);
    d.op = Op::SDIV;
    EXPECT_EQ(aluResult(spec, d, static_cast<uint64_t>(-42), 0, 0), 0u);
    d.op = Op::UREM;
    EXPECT_EQ(aluResult(spec, d, 42, 0, 0), 42u);
}

TEST(Semantics, MovkInsertsHalfword)
{
    const IsaSpec &spec = IsaSpec::get(IsaId::Av64);
    DecodedInst d;
    d.op = Op::MOVK;
    d.imm = 0xbeef;
    d.hw = 1;
    EXPECT_EQ(aluResult(spec, d, 0, 0, 0x1111222233334444ull),
              0x11112222beef4444ull);
}

TEST(Semantics, ShiftsMaskByWidth)
{
    const IsaSpec &spec32 = IsaSpec::get(IsaId::Av32);
    DecodedInst d;
    d.op = Op::LSLV;
    // Shift amounts are taken mod xlen.
    EXPECT_EQ(spec32.maskVal(aluResult(spec32, d, 1, 33, 0)), 2u);
}

// ---- assembler -----------------------------------------------------------

TEST(Assembler, AssemblesBasicProgram)
{
    const char *src = R"(
        .isa av64
        .org 0x1000
_start:
        li   x1, #10
        li   x2, #0
loop:
        add  x2, x2, x1
        addi x1, x1, #-1
        bne  x1, xzr, loop
        halt
)";
    AsmResult r = assemble(src, IsaId::Av64, 0x1000);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.program.entry, 0x1000u);
    EXPECT_TRUE(r.program.hasSymbol("loop"));
    // li expands to two instructions.
    EXPECT_EQ(r.program.symbol("loop"), 0x1000u + 4 * 4);
}

TEST(Assembler, DataDirectives)
{
    const char *src = R"(
        .org 0x2000
tab:    .word 1, 2, 0xdeadbeef
bytes:  .byte 1, 2, 3
text:   .asciz "hi"
        .align 4
after:  .space 8
)";
    AsmResult r = assemble(src, IsaId::Av32, 0x2000);
    ASSERT_TRUE(r.ok) << r.error;
    const Segment &seg = r.program.segments.at(0);
    EXPECT_EQ(seg.addr, 0x2000u);
    EXPECT_EQ(seg.bytes[0], 1u);
    EXPECT_EQ(seg.bytes[8], 0xefu); // little-endian 0xdeadbeef
    EXPECT_EQ(r.program.symbol("bytes"), 0x200cu);
    EXPECT_EQ(seg.bytes[r.program.symbol("text") - 0x2000], 'h');
    EXPECT_EQ(r.program.symbol("after") % 4, 0u);
}

TEST(Assembler, ReportsErrors)
{
    struct Case
    {
        const char *src;
        const char *needle;
    };
    const Case cases[] = {
        {"bogus x1, x2", "unknown mnemonic"},
        {"add x1, x2", "3 operands"},
        {"addi x1, x2, #999999", "out of range"},
        {"ldx x1, x2", "memory operand"},
        {"b missing_label", "undefined symbol"},
        {"lui x1, #5", "not valid for av64"},
        {"add x1, x2, r3", "bad register"},
        {"dup: nop\ndup: nop", "duplicate label"},
    };
    for (const Case &c : cases) {
        AsmResult r = assemble(c.src, IsaId::Av64, 0);
        EXPECT_FALSE(r.ok) << c.src;
        EXPECT_NE(r.error.find(c.needle), std::string::npos)
            << c.src << " -> " << r.error;
    }
}

TEST(Assembler, PseudoInstructions)
{
    const char *src = R"(
        mov x1, x2
        ret
        la  x3, target
target: nop
)";
    AsmResult r = assemble(src, IsaId::Av64, 0x100);
    ASSERT_TRUE(r.ok) << r.error;
    // mov = addi; ret = br lr; la = movz+movk.
    const Segment &seg = r.program.segments.at(0);
    DecodedInst mov = decode(IsaId::Av64,
                             static_cast<uint32_t>(seg.bytes[0]) |
                                 (seg.bytes[1] << 8) |
                                 (seg.bytes[2] << 16) |
                                 (static_cast<uint32_t>(seg.bytes[3])
                                  << 24));
    EXPECT_EQ(mov.op, Op::ADDI);
    EXPECT_EQ(r.program.symbol("target"), 0x100u + 4 * 4);
}

TEST(Assembler, BranchTargetsResolveBothDirections)
{
    const char *src = R"(
back:   nop
        b fwd
        b back
fwd:    nop
)";
    AsmResult r = assemble(src, IsaId::Av32, 0);
    ASSERT_TRUE(r.ok) << r.error;
    const Segment &seg = r.program.segments.at(0);
    auto word = [&](size_t i) {
        uint32_t w = 0;
        std::memcpy(&w, seg.bytes.data() + 4 * i, 4);
        return w;
    };
    DecodedInst fwd = decode(IsaId::Av32, word(1));
    EXPECT_EQ(fwd.imm, 8); // from 0x4 to 0xc
    DecodedInst back = decode(IsaId::Av32, word(2));
    EXPECT_EQ(back.imm, -8); // from 0x8 to 0x0
}

// ---- program images -------------------------------------------------------

TEST(ProgramImage, MergeDetectsOverlap)
{
    Program a, b;
    a.isa = b.isa = IsaId::Av64;
    a.segments.push_back({0x100, std::vector<uint8_t>(16, 1)});
    b.segments.push_back({0x108, std::vector<uint8_t>(16, 2)});
    EXPECT_DEATH(a.merge(b), "overlapping");
}

TEST(ProgramImage, MergeCombinesSymbols)
{
    Program a, b;
    a.isa = b.isa = IsaId::Av64;
    a.segments.push_back({0x100, {1, 2}});
    a.symbols["one"] = 0x100;
    b.segments.push_back({0x200, {3}});
    b.symbols["two"] = 0x200;
    a.merge(b);
    EXPECT_EQ(a.symbol("one"), 0x100u);
    EXPECT_EQ(a.symbol("two"), 0x200u);
    EXPECT_EQ(a.totalBytes(), 3u);
    EXPECT_EQ(a.highWatermark(), 0x201u);
}

} // namespace
} // namespace vstack
