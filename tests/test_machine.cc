/**
 * @file
 * Machine-layer tests: memory map predicates, physical memory,
 * the MMIO device hub (DMA queueing/latency/flush, exit/detect
 * ports), and the outcome taxonomy helpers.
 */
#include <gtest/gtest.h>

#include "machine/devices.h"
#include "machine/fpm.h"
#include "machine/memmap.h"
#include "machine/outcome.h"
#include "machine/physmem.h"

namespace vstack
{
namespace
{

using namespace memmap;

TEST(MemMap, RegionPredicates)
{
    EXPECT_TRUE(inRam(0, 4));
    EXPECT_TRUE(inRam(RAM_SIZE - 4, 4));
    EXPECT_FALSE(inRam(RAM_SIZE - 3, 4));
    EXPECT_FALSE(inRam(MMIO_BASE, 4));
    EXPECT_TRUE(inMmio(MMIO_DMA_SRC));
    EXPECT_FALSE(inMmio(USER_TEXT));
    EXPECT_TRUE(userAccessible(USER_TEXT, 4));
    EXPECT_FALSE(userAccessible(KERNEL_TEXT, 4));
    EXPECT_FALSE(userAccessible(USER_BASE - 4, 4));
    EXPECT_FALSE(userAccessible(RAM_SIZE - 2, 4));
}

TEST(MemMap, LayoutIsOrdered)
{
    EXPECT_LT(BOOT_VECTOR, TRAP_VECTOR);
    EXPECT_LT(TRAP_VECTOR, KERNEL_FUNCS);
    EXPECT_LT(KERNEL_FUNCS, KSAVE);
    EXPECT_LT(KERNEL_IOBUF + KERNEL_IOBUF_SIZE, KERNEL_STACK_TOP);
    EXPECT_LT(KERNEL_STACK_TOP, USER_BASE);
    EXPECT_LT(USER_TEXT, USER_DATA);
    EXPECT_LT(USER_DATA, USER_STACK_TOP);
    EXPECT_LE(USER_STACK_TOP, RAM_SIZE);
}

TEST(PhysMemTest, ReadWriteRoundTrip)
{
    PhysMem mem;
    mem.write(0x1000, 0x1122334455667788ull, 8);
    EXPECT_EQ(mem.read(0x1000, 8), 0x1122334455667788ull);
    EXPECT_EQ(mem.read(0x1000, 4), 0x55667788ull);
    EXPECT_EQ(mem.read(0x1000, 1), 0x88ull);
    EXPECT_EQ(mem.read(0x1004, 4), 0x11223344ull);
}

TEST(PhysMemTest, LoadProgramSegments)
{
    Program p;
    p.isa = IsaId::Av64;
    p.segments.push_back({0x100, {1, 2, 3}});
    p.segments.push_back({0x200, {9}});
    PhysMem mem;
    mem.load(p);
    EXPECT_EQ(mem.read(0x100, 1), 1u);
    EXPECT_EQ(mem.read(0x102, 1), 3u);
    EXPECT_EQ(mem.read(0x200, 1), 9u);
    mem.clear();
    EXPECT_EQ(mem.read(0x100, 1), 0u);
}

class DeviceHubTest : public ::testing::Test
{
  protected:
    DeviceHubTest()
        : backing(256, 0xab),
          hub([this](uint32_t addr, uint8_t *dst, size_t n) {
              for (size_t i = 0; i < n; ++i)
                  dst[i] = backing[(addr + i) % backing.size()];
          },
          100)
    {
    }

    std::vector<uint8_t> backing;
    DeviceHub hub;
};

TEST_F(DeviceHubTest, DmaRespectsLatency)
{
    hub.store(MMIO_DMA_SRC, 0, 10);
    hub.store(MMIO_DMA_LEN, 8, 10);
    hub.store(MMIO_DMA_DOORBELL, 1, 10);
    hub.tick(50);
    EXPECT_TRUE(hub.output().dma.empty());
    EXPECT_EQ(hub.nextReady(), 110u);
    hub.tick(110);
    EXPECT_EQ(hub.output().dma.size(), 8u);
    EXPECT_EQ(hub.output().dma[0], 0xab);
}

TEST_F(DeviceHubTest, FlushDrainsEverythingInOrder)
{
    backing.assign(256, 1);
    hub.store(MMIO_DMA_SRC, 0, 0);
    hub.store(MMIO_DMA_LEN, 2, 0);
    hub.store(MMIO_DMA_DOORBELL, 1, 0);
    backing.assign(256, 2); // second descriptor reads different bytes
    hub.store(MMIO_DMA_SRC, 16, 1);
    hub.store(MMIO_DMA_LEN, 2, 1);
    hub.store(MMIO_DMA_DOORBELL, 1, 1);
    hub.flush();
    const auto &dma = hub.output().dma;
    ASSERT_EQ(dma.size(), 4u);
    EXPECT_EQ(dma[0], 2); // flush happens after backing changed...
    EXPECT_EQ(dma[2], 2);
}

TEST_F(DeviceHubTest, ExitAndDetectPorts)
{
    EXPECT_FALSE(hub.exited());
    hub.store(MMIO_EXIT_CODE, 42, 0);
    EXPECT_TRUE(hub.exited());
    EXPECT_EQ(hub.output().exitCode, 42u);
    hub.store(MMIO_DETECT_CODE, 7, 0);
    EXPECT_TRUE(hub.detected());
    EXPECT_EQ(hub.output().detectCode, 7u);
}

TEST_F(DeviceHubTest, ConsoleAccumulates)
{
    for (char c : std::string("hi"))
        hub.store(MMIO_CONSOLE, static_cast<uint64_t>(c), 0);
    EXPECT_EQ(hub.output().console, "hi");
}

TEST_F(DeviceHubTest, UnmappedOffsetsRejected)
{
    EXPECT_FALSE(hub.store(MMIO_BASE + 0x999, 1, 0));
    uint64_t v;
    EXPECT_FALSE(hub.load(MMIO_BASE + 0x999, 0, v));
    EXPECT_TRUE(hub.load(MMIO_TICK, 1234, v));
    EXPECT_EQ(v, 1234u);
}

TEST_F(DeviceHubTest, ResetClearsState)
{
    hub.store(MMIO_EXIT_CODE, 1, 0);
    hub.store(MMIO_DMA_SRC, 0, 0);
    hub.store(MMIO_DMA_LEN, 4, 0);
    hub.store(MMIO_DMA_DOORBELL, 1, 0);
    hub.reset();
    EXPECT_FALSE(hub.exited());
    EXPECT_TRUE(hub.output().dma.empty());
    EXPECT_EQ(hub.nextReady(), UINT64_MAX);
}

TEST(OutcomeTest, CountsAndRates)
{
    OutcomeCounts c;
    c.add(Outcome::Masked);
    c.add(Outcome::Masked);
    c.add(Outcome::Sdc);
    c.add(Outcome::Crash);
    c.add(Outcome::Detected);
    EXPECT_EQ(c.total(), 5u);
    EXPECT_DOUBLE_EQ(c.sdcRate(), 0.2);
    EXPECT_DOUBLE_EQ(c.crashRate(), 0.2);
    EXPECT_DOUBLE_EQ(c.detectedRate(), 0.2);
    EXPECT_DOUBLE_EQ(c.vulnerability(), 0.4);
}

TEST(OutcomeTest, Names)
{
    EXPECT_STREQ(outcomeName(Outcome::Sdc), "SDC");
    EXPECT_STREQ(outcomeName(Outcome::Masked), "Masked");
    EXPECT_STREQ(fpmName(Fpm::ESC), "ESC");
    EXPECT_STREQ(fpmName(Fpm::WOI), "WOI");
}

TEST(FpmCountsTest, AddAndGet)
{
    FpmCounts f;
    f.add(Fpm::WD);
    f.add(Fpm::WD);
    f.add(Fpm::ESC);
    EXPECT_EQ(f.total(), 3u);
    EXPECT_EQ(f.get(Fpm::WD), 2u);
    EXPECT_EQ(f.get(Fpm::ESC), 1u);
    EXPECT_EQ(f.get(Fpm::WI), 0u);
}

} // namespace
} // namespace vstack
