/**
 * @file
 * Golden-output regression tests: every bundled workload's exact
 * output (DMA bytes + exit code) is pinned by an FNV-1a digest on
 * both ISAs, and basic workload-suite properties are enforced.
 *
 * If a workload is intentionally changed, regenerate the digests with
 * the snippet in this file's history (run each workload on the
 * functional emulator and hash dma||exit).
 */
#include <gtest/gtest.h>

#include "arch/archsim.h"
#include "compiler/compile.h"
#include "kernel/kernel.h"
#include "workloads/workloads.h"

namespace vstack
{
namespace
{

uint64_t
fnv(const std::vector<uint8_t> &bytes, uint32_t exitCode)
{
    uint64_t h = 1469598103934665603ull;
    for (uint8_t x : bytes) {
        h ^= x;
        h *= 1099511628211ull;
    }
    h ^= exitCode;
    h *= 1099511628211ull;
    return h;
}

struct Golden
{
    const char *name;
    uint64_t digest;
    size_t outputBytes;
};

// Digests captured from the functional emulator (identical on both
// ISAs by the cross-ISA portability property).
const Golden goldens[] = {
    {"fft", 0x9add5f5cbc222fcaull, 340},
    {"qsort", 0xfecfdebac82402f9ull, 432},
    {"sha", 0xfeaea6ce5e9502efull, 41},
    {"rijndael", 0x5d8f782df4b548ffull, 33},
    {"dijkstra", 0x3855cc67bff3b381ull, 74},
    {"search", 0x554cbd4a5550ab6eull, 54},
    {"corner", 0xd6a3eaf09bbdbd8cull, 292},
    {"smooth", 0x1008cd032193b26cull, 198},
    {"cjpeg", 0x27ebcb32fe48e66eull, 271},
    {"djpeg", 0xc1444b82467f6a87ull, 347},
    {"crc32", 0x4e36d6652ef31588ull, 49},
};

class GoldenTest
    : public ::testing::TestWithParam<std::tuple<Golden, IsaId>>
{
};

TEST_P(GoldenTest, OutputDigestIsStable)
{
    const auto &[g, isa] = GetParam();
    mcl::BuildResult b =
        mcl::buildUserProgram(findWorkload(g.name).source, isa);
    ASSERT_TRUE(b.ok) << b.error;
    Program sys = buildSystemImage(buildKernel(isa), b.program);
    ArchConfig cfg;
    cfg.isa = isa;
    ArchSim sim(cfg);
    sim.load(sys);
    ArchRunResult r = sim.run();
    ASSERT_EQ(r.stop, StopReason::Exited) << r.exceptionMsg;
    EXPECT_EQ(r.output.dma.size(), g.outputBytes);
    EXPECT_EQ(fnv(r.output.dma, r.output.exitCode), g.digest)
        << "output of '" << g.name << "' changed on " << isaName(isa);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, GoldenTest,
    ::testing::Combine(::testing::ValuesIn(goldens),
                       ::testing::Values(IsaId::Av32, IsaId::Av64)),
    [](const auto &info) {
        return std::string(std::get<0>(info.param).name) + "_" +
               isaName(std::get<1>(info.param));
    });

TEST(WorkloadSuite, PaperSuiteHasTenDistinctWorkloads)
{
    const auto &suite = paperWorkloads();
    EXPECT_EQ(suite.size(), 10u);
    std::set<std::string> names, domains;
    for (const Workload &w : suite) {
        names.insert(w.name);
        domains.insert(w.domain);
        EXPECT_GT(w.source.size(), 400u) << w.name;
    }
    EXPECT_EQ(names.size(), 10u);
    EXPECT_GE(domains.size(), 6u) << "suite should span diverse domains";
}

TEST(WorkloadSuite, AllWorkloadsIncludesExtras)
{
    EXPECT_GT(allWorkloads().size(), paperWorkloads().size());
    EXPECT_NO_FATAL_FAILURE(findWorkload("crc32"));
}

TEST(WorkloadSuite, UnknownWorkloadIsFatal)
{
    EXPECT_DEATH(findWorkload("not-a-workload"), "unknown workload");
}

} // namespace
} // namespace vstack
