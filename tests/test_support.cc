/**
 * @file
 * Unit tests for the support library: RNG determinism and uniformity,
 * the statistical sampling model, JSON round-trips, table rendering,
 * environment parsing, CRC-32C, and the failpoint framework.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <random>
#include <vector>

#include "support/crc32c.h"
#include "support/env.h"
#include "support/failpoint.h"
#include "support/fastpath.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

namespace vstack
{
namespace
{

// ---- RNG ---------------------------------------------------------------

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next64() == b.next64();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformRespectsBound)
{
    Rng r(7);
    for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.uniform(bound), bound);
    }
}

TEST(Rng, UniformCoversRange)
{
    Rng r(11);
    std::map<uint64_t, int> hist;
    for (int i = 0; i < 6000; ++i)
        ++hist[r.uniform(6)];
    ASSERT_EQ(hist.size(), 6u);
    for (const auto &[v, count] : hist) {
        EXPECT_GT(count, 800) << "value " << v;
        EXPECT_LT(count, 1200) << "value " << v;
    }
}

TEST(Rng, UniformRangeInclusive)
{
    Rng r(13);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 500; ++i) {
        uint64_t v = r.uniformRange(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        sawLo |= v == 5;
        sawHi |= v == 8;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformDoubleInUnitInterval)
{
    Rng r(17);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double d = r.uniformDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ForkIsIndependent)
{
    Rng parent(21);
    Rng childA = parent.fork();
    Rng childB = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += childA.next64() == childB.next64();
    EXPECT_LT(same, 2);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(31);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

// ---- statistics ----------------------------------------------------------

TEST(Stats, ZValueKnownPoints)
{
    EXPECT_NEAR(zValue(0.95), 1.960, 0.002);
    EXPECT_NEAR(zValue(0.99), 2.576, 0.002);
    EXPECT_NEAR(zValue(0.90), 1.645, 0.002);
}

TEST(Stats, PaperSamplingPoint)
{
    // The paper: 2,000 samples give a 2.88% margin at 99% confidence.
    EXPECT_NEAR(samplingMargin(2000, 0.5, 0.99), 0.0288, 0.0002);
}

TEST(Stats, MarginShrinksWithSamples)
{
    EXPECT_GT(samplingMargin(100, 0.5, 0.99),
              samplingMargin(1000, 0.5, 0.99));
    EXPECT_GT(samplingMargin(1000, 0.5, 0.99),
              samplingMargin(10000, 0.5, 0.99));
}

TEST(Stats, FinitePopulationCorrectionReducesMargin)
{
    EXPECT_LT(samplingMargin(2000, 0.5, 0.99, 4000),
              samplingMargin(2000, 0.5, 0.99));
}

TEST(Stats, SamplesForMarginInvertsMargin)
{
    const size_t n = samplesForMargin(0.0288, 0.99);
    EXPECT_NEAR(static_cast<double>(n), 2000.0, 20.0);
    EXPECT_LE(samplingMargin(n, 0.5, 0.99), 0.0289);
}

TEST(Stats, WeightedMean)
{
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {1.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {3.0, 1.0}), 1.5);
    EXPECT_DOUBLE_EQ(weightedMean({5.0}, {42.0}), 5.0);
}

TEST(Stats, Mean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
}

TEST(Stats, WilsonIntervalContainsEstimate)
{
    auto [lo, hi] = wilsonInterval(30, 100, 0.95);
    EXPECT_LT(lo, 0.30);
    EXPECT_GT(hi, 0.30);
    EXPECT_GT(lo, 0.18);
    EXPECT_LT(hi, 0.42);
}

TEST(Stats, WilsonIntervalEdges)
{
    auto zero = wilsonInterval(0, 50, 0.99);
    EXPECT_DOUBLE_EQ(zero.lo, 0.0);
    EXPECT_GT(zero.hi, 0.0);
    auto all = wilsonInterval(50, 50, 0.99);
    EXPECT_LT(all.lo, 1.0);
    EXPECT_NEAR(all.hi, 1.0, 1e-9);
}

// ---- JSON ---------------------------------------------------------------

TEST(Json, ScalarRoundTrip)
{
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(-7).dump(), "-7");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, ObjectInsertionOrderPreserved)
{
    Json j = Json::object();
    j.set("z", 1);
    j.set("a", 2);
    EXPECT_EQ(j.dump(), "{\"z\":1,\"a\":2}");
}

TEST(Json, NestedRoundTrip)
{
    Json j = Json::object();
    j.set("name", "campaign");
    Json arr = Json::array();
    arr.push(1);
    arr.push(2.5);
    arr.push("three");
    j.set("items", std::move(arr));
    Json inner = Json::object();
    inner.set("deep", true);
    j.set("nested", std::move(inner));

    std::string text = j.dump(2);
    std::string err;
    Json back = Json::parse(text, &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_EQ(back.at("name").asString(), "campaign");
    EXPECT_EQ(back.at("items").size(), 3u);
    EXPECT_EQ(back.at("items").at(0).asInt(), 1);
    EXPECT_DOUBLE_EQ(back.at("items").at(1).asDouble(), 2.5);
    EXPECT_TRUE(back.at("nested").at("deep").asBool());
}

TEST(Json, StringEscapes)
{
    Json j("a\"b\\c\nd\te");
    std::string err;
    Json back = Json::parse(j.dump(), &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_EQ(back.asString(), "a\"b\\c\nd\te");
}

TEST(Json, ParseUnicodeEscape)
{
    std::string err;
    Json j = Json::parse("\"\\u0041\\u00e9\"", &err);
    EXPECT_TRUE(err.empty());
    EXPECT_EQ(j.asString(), "A\xc3\xa9");
}

TEST(Json, ParseErrors)
{
    for (const char *bad :
         {"{", "[1,", "{\"a\"}", "tru", "\"unterminated", "1 2",
          "{\"a\":}", "[,]"}) {
        std::string err;
        Json::parse(bad, &err);
        EXPECT_FALSE(err.empty()) << "input: " << bad;
    }
}

TEST(Json, ParseWhitespaceTolerant)
{
    std::string err;
    Json j = Json::parse("  {\n \"a\" :\t[ 1 , 2 ]\n}  ", &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_EQ(j.at("a").size(), 2u);
}

TEST(Json, HasAndSize)
{
    Json j = Json::object();
    j.set("k", 1);
    EXPECT_TRUE(j.has("k"));
    EXPECT_FALSE(j.has("missing"));
    EXPECT_EQ(j.size(), 1u);
}

TEST(Json, NegativeAndLargeNumbers)
{
    std::string err;
    Json j = Json::parse("[-123456789012345, 1e3, 0.25]", &err);
    EXPECT_TRUE(err.empty());
    EXPECT_EQ(j.at(0).asInt(), -123456789012345);
    EXPECT_DOUBLE_EQ(j.at(1).asDouble(), 1000.0);
    EXPECT_DOUBLE_EQ(j.at(2).asDouble(), 0.25);
}

// ---- table ----------------------------------------------------------------

TEST(Table, RendersAlignedCells)
{
    Table t("demo");
    t.header({"name", "value"});
    t.row({"x", "1"});
    t.row({"longer", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, PctAndNumFormatting)
{
    EXPECT_EQ(Table::pct(0.1234, 1), "12.3%");
    EXPECT_EQ(Table::pct(0.0, 2), "0.00%");
    EXPECT_EQ(Table::num(3.14159, 3), "3.142");
}

TEST(Table, HandlesRaggedRows)
{
    Table t;
    t.header({"a", "b", "c"});
    t.row({"only-one"});
    std::string out = t.render();
    EXPECT_NE(out.find("only-one"), std::string::npos);
}

// ---- env ---------------------------------------------------------------

TEST(Env, ParsesIntegers)
{
    ::setenv("VSTACK_TEST_INT", "250", 1);
    EXPECT_EQ(envInt("VSTACK_TEST_INT", 1), 250);
    ::setenv("VSTACK_TEST_INT", "0x20", 1);
    EXPECT_EQ(envInt("VSTACK_TEST_INT", 1), 32);
    ::setenv("VSTACK_TEST_INT", "junk", 1);
    EXPECT_EQ(envInt("VSTACK_TEST_INT", 7), 7);
    ::unsetenv("VSTACK_TEST_INT");
    EXPECT_EQ(envInt("VSTACK_TEST_INT", 9), 9);
}

TEST(Env, ConfigDefaultsScaleFromFaults)
{
    ::setenv("VSTACK_FAULTS", "200", 1);
    ::unsetenv("VSTACK_ARCH_FAULTS");
    ::unsetenv("VSTACK_SW_FAULTS");
    EnvConfig cfg = EnvConfig::fromEnvironment();
    EXPECT_EQ(cfg.uarchFaults, 200u);
    EXPECT_EQ(cfg.archFaults, 600u);
    EXPECT_EQ(cfg.swFaults, 600u);
    ::unsetenv("VSTACK_FAULTS");
}

TEST(Env, StrictVariantsPassThroughValidAndUnset)
{
    ::unsetenv("VSTACK_TEST_STRICT");
    EXPECT_EQ(envIntStrict("VSTACK_TEST_STRICT", 5, 0), 5);
    EXPECT_EQ(envDoubleStrict("VSTACK_TEST_STRICT", 2.5, 1.0), 2.5);
    EXPECT_FALSE(envFlagStrict("VSTACK_TEST_STRICT"));
    ::setenv("VSTACK_TEST_STRICT", "3", 1);
    EXPECT_EQ(envIntStrict("VSTACK_TEST_STRICT", 5, 0), 3);
    EXPECT_EQ(envDoubleStrict("VSTACK_TEST_STRICT", 2.5, 1.0), 3.0);
    EXPECT_TRUE(envFlagStrict("VSTACK_TEST_STRICT"));
    ::setenv("VSTACK_TEST_STRICT", "0", 1);
    EXPECT_FALSE(envFlagStrict("VSTACK_TEST_STRICT"));
    ::unsetenv("VSTACK_TEST_STRICT");
}

TEST(EnvDeathTest, StrictIntRejectsGarbageAndNegative)
{
    ::setenv("VSTACK_TEST_STRICT", "junk", 1);
    EXPECT_DEATH(envIntStrict("VSTACK_TEST_STRICT", 1, 0),
                 "must be an integer");
    ::setenv("VSTACK_TEST_STRICT", "-2", 1);
    EXPECT_DEATH(envIntStrict("VSTACK_TEST_STRICT", 1, 0),
                 "must be an integer >= 0");
    ::unsetenv("VSTACK_TEST_STRICT");
}

TEST(EnvDeathTest, StrictDoubleRejectsGarbageAndBelowMin)
{
    ::setenv("VSTACK_TEST_STRICT", "fast", 1);
    EXPECT_DEATH(envDoubleStrict("VSTACK_TEST_STRICT", 4.0, 1.0),
                 "must be a number");
    ::setenv("VSTACK_TEST_STRICT", "0.5", 1);
    EXPECT_DEATH(envDoubleStrict("VSTACK_TEST_STRICT", 4.0, 1.0),
                 "must be a number >= 1");
    ::setenv("VSTACK_TEST_STRICT", "nan", 1);
    EXPECT_DEATH(envDoubleStrict("VSTACK_TEST_STRICT", 4.0, 1.0),
                 "must be a number");
    ::unsetenv("VSTACK_TEST_STRICT");
}

TEST(EnvDeathTest, ConfigRejectsMisconfiguredExecutionKnobs)
{
    // A garbage VSTACK_JOBS / VSTACK_ISOLATE or a sub-1.0 watchdog
    // must fail at startup, not silently fall back mid-campaign.
    ::setenv("VSTACK_JOBS", "many", 1);
    EXPECT_DEATH(EnvConfig::fromEnvironment(), "VSTACK_JOBS");
    ::unsetenv("VSTACK_JOBS");
    ::setenv("VSTACK_ISOLATE", "yes please", 1);
    EXPECT_DEATH(EnvConfig::fromEnvironment(), "VSTACK_ISOLATE");
    ::unsetenv("VSTACK_ISOLATE");
    ::setenv("VSTACK_WATCHDOG", "0.5", 1);
    EXPECT_DEATH(EnvConfig::fromEnvironment(), "VSTACK_WATCHDOG");
    ::unsetenv("VSTACK_WATCHDOG");
    ::setenv("VSTACK_VERIFY_REPLAY", "150", 1);
    EXPECT_DEATH(EnvConfig::fromEnvironment(), "VSTACK_VERIFY_REPLAY");
    ::unsetenv("VSTACK_VERIFY_REPLAY");
}

// ---- CRC-32C -----------------------------------------------------------

TEST(Crc32c, KnownAnswer)
{
    // The CRC-32C check value from RFC 3720 appendix B.4.
    EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
    EXPECT_EQ(crc32c(""), 0u);
}

TEST(Crc32c, SensitiveToEveryByte)
{
    const std::string base = "the journal line payload";
    const uint32_t ref = crc32c(base);
    for (size_t i = 0; i < base.size(); ++i) {
        std::string flipped = base;
        flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
        EXPECT_NE(crc32c(flipped), ref) << "byte " << i;
    }
}

TEST(Crc32c, HexIsFixedWidthLowercase)
{
    EXPECT_EQ(crc32cHex(0xE3069283u), "e3069283");
    EXPECT_EQ(crc32cHex(0x1u), "00000001");
    EXPECT_EQ(crc32cHex(0u), "00000000");
}

TEST(Crc32c, EnginesAgreeOnRandomBuffers)
{
    std::mt19937 rng(0xc5c5c5c5u);
    std::vector<uint8_t> buf(16 * 1024);
    for (auto &b : buf)
        b = static_cast<uint8_t>(rng());
    // Random (offset, length) slices: misaligned heads, sub-word
    // tails, and empty ranges all hit the engines' edge paths.
    for (int i = 0; i < 200; ++i) {
        size_t off = rng() % buf.size();
        size_t len = rng() % (buf.size() - off + 1);
        if (i < 8) // pin the shortest lengths explicitly
            len = static_cast<size_t>(i);
        const uint8_t *p = buf.data() + off;
        const uint32_t ref = crc32cReference(p, len);
        EXPECT_EQ(crc32cSliced(p, len), ref)
            << "sliced off=" << off << " len=" << len;
        if (crc32cHardwareAvailable())
            EXPECT_EQ(crc32cHardware(p, len), ref)
                << "hardware off=" << off << " len=" << len;
        EXPECT_EQ(crc32c(p, len), ref)
            << "dispatch off=" << off << " len=" << len;
    }
}

TEST(Crc32c, SelfCheckPasses)
{
    EXPECT_EQ(crc32cSelfCheck(), nullptr);
}

// ---- fast-path gate ----------------------------------------------------

TEST(FastPathGate, TogglePinsReferenceEngineAndRestores)
{
    const bool was = fastPathEnabled();
    // With the hatch closed, crc32c() must still compute the same
    // function (the reference engine is pinned — observable only as
    // cost — so value equality is the whole contract).
    setFastPathEnabled(false);
    EXPECT_FALSE(fastPathEnabled());
    EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
    EXPECT_EQ(crc32cSelfCheck(), nullptr);
    setFastPathEnabled(true);
    EXPECT_TRUE(fastPathEnabled());
    EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
    setFastPathEnabled(was);
}

// ---- failpoints --------------------------------------------------------

class FailpointTest : public ::testing::Test
{
  protected:
    void TearDown() override { clearFailpoints(); }
};

TEST_F(FailpointTest, UnarmedSitesNeverFire)
{
    clearFailpoints();
    EXPECT_FALSE(failpointsArmed());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(failpoint("some.site"));
    EXPECT_EQ(failpointHits("some.site"), 0u);
}

TEST_F(FailpointTest, FirstNRuleFiresExactlyNTimes)
{
    armFailpoints("a.b=2");
    EXPECT_TRUE(failpointsArmed());
    EXPECT_TRUE(failpoint("a.b"));
    EXPECT_TRUE(failpoint("a.b"));
    EXPECT_FALSE(failpoint("a.b"));
    EXPECT_FALSE(failpoint("a.b"));
    EXPECT_EQ(failpointHits("a.b"), 4u);
    EXPECT_EQ(failpointFires("a.b"), 2u);
    EXPECT_FALSE(failpoint("other.site")) << "unarmed site stays cold";
}

TEST_F(FailpointTest, RatioRuleFiresMOfEveryK)
{
    armFailpoints("a.b=1/3");
    int fires = 0;
    for (int i = 0; i < 9; ++i)
        fires += failpoint("a.b");
    EXPECT_EQ(fires, 3);
    EXPECT_TRUE(failpoint("a.b")) << "hit 9 starts a new window";
}

TEST_F(FailpointTest, AtRuleFiresOnlyOnTheNthHit)
{
    armFailpoints("a.b=@3");
    EXPECT_FALSE(failpoint("a.b"));
    EXPECT_FALSE(failpoint("a.b"));
    EXPECT_TRUE(failpoint("a.b"));
    EXPECT_FALSE(failpoint("a.b"));
    EXPECT_EQ(failpointFires("a.b"), 1u);
}

TEST_F(FailpointTest, ArmReplacesRulesAndResetsCounters)
{
    armFailpoints("a.b=1");
    EXPECT_TRUE(failpoint("a.b"));
    armFailpoints("c.d=1");
    EXPECT_EQ(failpointHits("a.b"), 0u) << "re-arming resets counters";
    EXPECT_FALSE(failpoint("a.b"));
    EXPECT_TRUE(failpoint("c.d"));
    EXPECT_NE(failpointSummary().find("c.d"), std::string::npos);
    clearFailpoints();
    EXPECT_FALSE(failpointsArmed());
    EXPECT_EQ(failpointSummary(), "");
}

TEST(FailpointDeathTest, MalformedSpecsAreFatal)
{
    EXPECT_DEATH(armFailpoints("no_equals"), "VSTACK_FAILPOINTS");
    EXPECT_DEATH(armFailpoints("a.b=0"), "VSTACK_FAILPOINTS");
    EXPECT_DEATH(armFailpoints("a.b=junk"), "VSTACK_FAILPOINTS");
    EXPECT_DEATH(armFailpoints("a.b=5/3"), "VSTACK_FAILPOINTS");
    EXPECT_DEATH(armFailpoints("Bad.Site=1"), "VSTACK_FAILPOINTS");
    EXPECT_DEATH(armFailpoints("a.b=1,a.b=2"), "VSTACK_FAILPOINTS");
}

} // namespace
} // namespace vstack
