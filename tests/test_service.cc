/**
 * @file
 * Campaign-service tests: vstackd (src/service/daemon.h) must add
 * robustness — admission control, deadlines, crash recovery, corrupt
 * frame rejection — without ever compromising the byte-identity
 * guarantees of the suite scheduler underneath it.  Every scenario
 * ends by comparing ResultStore bytes against the serial reference
 * path or by proving the daemon is still serving.
 *
 * The kill/restart test forks a real child daemon and SIGKILLs it
 * mid-campaign (via the journal kill failpoint); like the sandbox,
 * chaos, and suite tests it is excluded from the TSan stage of
 * tools/ci_sanitize.sh.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/suite.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/frame.h"
#include "support/failpoint.h"

namespace vstack
{
namespace
{

EnvConfig
serviceCfg(const std::string &dir)
{
    EnvConfig cfg;
    cfg.uarchFaults = 8;
    cfg.archFaults = 12;
    cfg.swFaults = 12;
    cfg.seed = 7;
    cfg.resultsDir = dir;
    cfg.jobs = 2;
    cfg.resume = true; // the daemon's contract: journals always replay
    return cfg;
}

Json
parseManifest(const std::string &text)
{
    std::string err;
    Json m = Json::parse(text, &err);
    EXPECT_TRUE(err.empty()) << err;
    return m;
}

/** Every regular file under `dir` except the service's own state
 *  (vstackd/ job files, the socket), keyed by relative path. */
std::map<std::string, std::string>
storeBytes(const std::string &dir)
{
    std::map<std::string, std::string> out;
    if (!std::filesystem::exists(dir))
        return out;
    for (const auto &e :
         std::filesystem::recursive_directory_iterator(dir)) {
        if (!e.is_regular_file())
            continue;
        const std::string rel =
            std::filesystem::relative(e.path(), dir).string();
        if (rel.rfind("vstackd", 0) == 0)
            continue;
        std::ifstream in(e.path(), std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        out[rel] = ss.str();
    }
    return out;
}

int
rawConnect(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

class ServiceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        clearFailpoints();
        base = "/tmp/vstack_service_test." + std::to_string(getpid());
        std::filesystem::remove_all(base);
        std::filesystem::create_directories(base);
        sock = base + "/vstackd.sock";
    }
    void TearDown() override
    {
        clearFailpoints();
        std::filesystem::remove_all(base);
    }

    /** The reference store: the same campaigns through the serial
     *  VulnerabilityStack entry points. */
    std::map<std::string, std::string> serialReference(
        const Json &manifest)
    {
        const std::string dir = base + "/serial";
        CampaignPlan plan;
        std::string err;
        EXPECT_TRUE(planFromManifest(manifest, false, plan, err)) << err;
        VulnerabilityStack stack(serviceCfg(dir));
        SuiteOptions opts;
        opts.serial = true;
        SuiteReport r = runSuite(stack, plan, opts);
        EXPECT_FALSE(r.interrupted);
        return storeBytes(dir);
    }

    service::ClientOptions clientOpts(const std::string &name)
    {
        service::ClientOptions o;
        o.socketPath = sock;
        o.name = name;
        o.backoffBaseSec = 0.01;
        o.seed = 11;
        return o;
    }

    std::string base;
    std::string sock;
};

TEST(ClientJitterTest, BackoffScheduleIsDeterministicPerSeed)
{
    service::ClientOptions o;
    o.backoffBaseSec = 0.05;
    o.seed = 42;
    service::Client a(o), b(o);
    o.seed = 43;
    service::Client c(o);
    bool seedsDiverge = false;
    for (unsigned attempt = 0; attempt < 8; ++attempt) {
        const double da = a.backoffDelay(attempt);
        EXPECT_DOUBLE_EQ(da, b.backoffDelay(attempt))
            << "same seed must pin the whole schedule";
        if (da != c.backoffDelay(attempt))
            seedsDiverge = true;
        // +/- 50% jitter around base * 2^attempt.
        const double base = 0.05 * static_cast<double>(1u << attempt);
        EXPECT_GE(da, 0.5 * base);
        EXPECT_LE(da, 1.5 * base);
    }
    EXPECT_TRUE(seedsDiverge)
        << "different seeds should not march in lockstep";
}

TEST(ClientJitterTest, JitterSeedFollowsEnvSeedAndSalt)
{
    // Pinned VSTACK_SEED: the fallback (pid in production) is ignored,
    // so reconnect storms replay identically across runs...
    ::setenv("VSTACK_SEED", "7", 1);
    EXPECT_EQ(service::clientJitterSeed(0, 123),
              service::clientJitterSeed(0, 456));
    // ...but distinct salts (client indices) still decorrelate.
    EXPECT_NE(service::clientJitterSeed(0, 123),
              service::clientJitterSeed(1, 123));
    // Garbage in the env falls back cleanly.
    ::setenv("VSTACK_SEED", "not-a-number", 1);
    EXPECT_EQ(service::clientJitterSeed(0, 123),
              service::clientJitterSeed(0, 123));
    EXPECT_NE(service::clientJitterSeed(0, 123),
              service::clientJitterSeed(0, 456));
    // No env: the fallback seeds the stream.
    ::unsetenv("VSTACK_SEED");
    EXPECT_NE(service::clientJitterSeed(0, 123),
              service::clientJitterSeed(0, 456));
}

TEST_F(ServiceTest, FrameRoundTripAndEintrStorm)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    // Spurious EINTRs on every read must be absorbed, not surfaced.
    armFailpoints("service.read.eintr=3/4");
    Json msg = Json::object();
    msg.set("op", "status");
    msg.set("blob", std::string(10000, 'x'));
    std::string err;
    ASSERT_TRUE(service::writeFrame(sv[0], msg, err)) << err;
    Json got;
    ASSERT_EQ(service::readFrame(sv[1], got, err),
              service::FrameResult::Ok)
        << err;
    EXPECT_EQ(got.dump(), msg.dump());
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST_F(ServiceTest, TornAndCorruptFramesAreDetected)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    std::string err;
    Json got;

    // A CRC-corrupt frame: flip one payload byte after framing.
    {
        Json msg = Json::object();
        msg.set("op", "status");
        armFailpoints(""); // none
        ASSERT_TRUE(service::writeFrame(sv[0], msg, err)) << err;
        // Write a second frame with a torn tail via the failpoint.
        armFailpoints("service.write.short_write=1");
        EXPECT_FALSE(service::writeFrame(sv[0], msg, err));
        ::close(sv[0]);
        // First frame reads fine...
        ASSERT_EQ(service::readFrame(sv[1], got, err),
                  service::FrameResult::Ok)
            << err;
        // ...the torn one is Corrupt, not garbage-accepted.
        EXPECT_EQ(service::readFrame(sv[1], got, err),
                  service::FrameResult::Corrupt);
        ::close(sv[1]);
    }
}

TEST_F(ServiceTest, ConcurrentClientsAreByteIdenticalToSerial)
{
    const Json mA = parseManifest(
        R"({"campaigns": [
             {"layer": "uarch", "workload": "fft", "core": "ax9",
              "structure": "RF"},
             {"layer": "svf", "workload": "fft"}]})");
    const Json mB = parseManifest(
        R"({"campaigns": [
             {"layer": "pvf", "workload": "fft", "isa": "av64",
              "fpm": "WD"},
             {"layer": "svf", "workload": "qsort"}]})");
    const Json mAll = parseManifest(
        R"({"campaigns": [
             {"layer": "uarch", "workload": "fft", "core": "ax9",
              "structure": "RF"},
             {"layer": "svf", "workload": "fft"},
             {"layer": "pvf", "workload": "fft", "isa": "av64",
              "fpm": "WD"},
             {"layer": "svf", "workload": "qsort"}]})");
    const auto reference = serialReference(mAll);
    ASSERT_FALSE(reference.empty());

    const std::string dir = base + "/daemon";
    VulnerabilityStack stack(serviceCfg(dir));
    service::DaemonOptions dopts;
    dopts.socketPath = sock;
    service::Daemon daemon(stack, dopts);
    std::string err;
    ASSERT_TRUE(daemon.start(err)) << err;
    std::thread server([&daemon] { daemon.serve(); });

    std::atomic<int> results{0};
    auto submitOne = [&](const Json &m, const std::string &name) {
        service::Client c(clientOpts(name));
        std::string cerr;
        const Json res = c.submit(m, false, 0.0, nullptr, cerr);
        EXPECT_TRUE(cerr.empty()) << cerr;
        if (res.isObject() && res.has("ev") &&
            res.at("ev").asString() == "result" &&
            !res.at("interrupted").asBool())
            ++results;
    };
    std::thread a([&] { submitOne(mA, "alice"); });
    std::thread b([&] { submitOne(mB, "bob"); });
    a.join();
    b.join();
    EXPECT_EQ(results.load(), 2);

    daemon.stop();
    server.join();
    EXPECT_EQ(storeBytes(dir), reference);
}

TEST_F(ServiceTest, OverloadShedsExplicitlyAndBackoffRetrySucceeds)
{
    const Json m = parseManifest(
        R"({"campaigns": [{"layer": "svf", "workload": "fft"}]})");
    const Json m2 = parseManifest(
        R"({"campaigns": [{"layer": "svf", "workload": "qsort"}]})");
    const Json m3 = parseManifest(
        R"({"campaigns": [{"layer": "svf", "workload": "sha"}]})");

    const std::string dir = base + "/daemon";
    VulnerabilityStack stack(serviceCfg(dir));

    // Gate the first job so the executor stays busy while the queue
    // fills: capacity 1 -> the third submission must shed.
    std::mutex gmu;
    std::condition_variable gcv;
    bool gateOpen = false;
    std::atomic<bool> gateUsed{false};
    service::DaemonOptions dopts;
    dopts.socketPath = sock;
    dopts.maxQueued = 1;
    dopts.testBeforeJob = [&](const std::string &) {
        if (gateUsed.exchange(true))
            return; // only the first job blocks
        std::unique_lock<std::mutex> lock(gmu);
        gcv.wait(lock, [&] { return gateOpen; });
    };
    service::Daemon daemon(stack, dopts);
    std::string err;
    ASSERT_TRUE(daemon.start(err)) << err;
    std::thread server([&daemon] { daemon.serve(); });

    // Job 1 runs (blocked in the gate), job 2 fills the queue.
    std::thread c1([&] {
        service::Client c(clientOpts("alice"));
        std::string cerr;
        const Json r = c.submit(m, false, 0.0, nullptr, cerr);
        EXPECT_TRUE(cerr.empty()) << cerr;
    });
    std::thread c2([&] {
        service::Client c(clientOpts("bob"));
        std::string cerr;
        const Json r = c.submit(m2, false, 0.0, nullptr, cerr);
        EXPECT_TRUE(cerr.empty()) << cerr;
    });
    // Wait until one job is running and one is queued.
    for (int i = 0; i < 500 && daemon.pendingJobs() < 2; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_EQ(daemon.pendingJobs(), 2u);

    // A third submission sheds with an explicit frame — never a hang.
    {
        const int fd = rawConnect(sock);
        ASSERT_GE(fd, 0);
        Json req = Json::object();
        req.set("op", "submit");
        req.set("client", "carol");
        req.set("manifest", m3);
        std::string ferr;
        ASSERT_TRUE(service::writeFrame(fd, req, ferr)) << ferr;
        Json reply;
        ASSERT_EQ(service::readFrame(fd, reply, ferr),
                  service::FrameResult::Ok)
            << ferr;
        EXPECT_EQ(reply.at("ev").asString(), "rejected");
        EXPECT_EQ(reply.at("reason").asString(), "overloaded");
        ::close(fd);
    }

    // A backoff-retrying client eventually gets through once the gate
    // opens and the queue drains.
    std::thread c3([&] {
        service::Client c(clientOpts("carol"));
        std::string cerr;
        const Json r = c.submit(m3, false, 0.0, nullptr, cerr);
        EXPECT_TRUE(cerr.empty()) << cerr;
        ASSERT_TRUE(r.isObject() && r.has("ev"));
        EXPECT_EQ(r.at("ev").asString(), "result");
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    {
        std::lock_guard<std::mutex> lock(gmu);
        gateOpen = true;
    }
    gcv.notify_all();
    c1.join();
    c2.join();
    c3.join();
    daemon.stop();
    server.join();
}

TEST_F(ServiceTest, KillDaemonMidCampaignThenRestartResumesByteIdentical)
{
    const Json m = parseManifest(
        R"({"campaigns": [
             {"layer": "svf", "workload": "fft"},
             {"layer": "svf", "workload": "qsort"}]})");
    const auto reference = serialReference(m);
    const std::string dir = base + "/daemon";

    // The child daemon dies by "SIGKILL" exactly mid-journal-append,
    // partway into the admitted campaign.
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        armFailpoints("journal.append.kill=@6");
        VulnerabilityStack stack(serviceCfg(dir));
        service::DaemonOptions dopts;
        dopts.socketPath = sock;
        service::Daemon daemon(stack, dopts);
        std::string derr;
        if (!daemon.start(derr))
            _exit(1);
        daemon.serve();
        _exit(0); // failpoint did not fire: fail the parent's check
    }

    // Submit from the parent; the daemon dies under the stream, so the
    // final attempt exhausts with a connect failure — that's expected.
    for (int i = 0; i < 500; ++i) {
        const int fd = rawConnect(sock);
        if (fd >= 0) {
            ::close(fd);
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    {
        service::ClientOptions co = clientOpts("alice");
        co.maxAttempts = 2;
        service::Client c(co);
        std::string cerr;
        c.submit(m, false, 0.0, nullptr, cerr);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 137) << "child must die mid-append";

    // Restart on the same state: the admitted manifest recovers from
    // its CRC-stamped job file, its campaigns resume from their
    // journals, and the final store is byte-identical to the serial
    // reference.
    {
        VulnerabilityStack stack(serviceCfg(dir));
        service::DaemonOptions dopts;
        dopts.socketPath = sock;
        service::Daemon daemon(stack, dopts);
        std::string derr;
        ASSERT_TRUE(daemon.start(derr)) << derr;
        EXPECT_EQ(daemon.recoveredJobs(), 1u);
        std::thread server([&daemon] { daemon.serve(); });
        for (int i = 0; i < 3000 && daemon.pendingJobs() > 0; ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        EXPECT_EQ(daemon.pendingJobs(), 0u);
        daemon.stop();
        server.join();
    }
    EXPECT_EQ(storeBytes(dir), reference);
}

TEST_F(ServiceTest, DeadlineExpiryYieldsPartialReport)
{
    // Enough work that a short deadline must expire mid-suite.
    const Json m = parseManifest(
        R"({"campaigns": [{"layer": "svf", "workload": "*"}]})");
    const std::string dir = base + "/daemon";
    EnvConfig cfg = serviceCfg(dir);
    cfg.swFaults = 400;
    VulnerabilityStack stack(cfg);
    service::DaemonOptions dopts;
    dopts.socketPath = sock;
    service::Daemon daemon(stack, dopts);
    std::string err;
    ASSERT_TRUE(daemon.start(err)) << err;
    std::thread server([&daemon] { daemon.serve(); });

    service::Client c(clientOpts("alice"));
    std::string cerr;
    const Json res = c.submit(m, false, 0.3, nullptr, cerr);
    EXPECT_TRUE(cerr.empty()) << cerr;
    ASSERT_TRUE(res.isObject() && res.has("ev"));
    ASSERT_EQ(res.at("ev").asString(), "result");
    EXPECT_TRUE(res.at("interrupted").asBool());
    ASSERT_TRUE(res.has("cancelReason"));
    EXPECT_EQ(res.at("cancelReason").asString(), "deadline");
    size_t incomplete = 0;
    for (const Json &e : res.at("outcomes").items())
        incomplete += e.at("complete").asBool() ? 0 : 1;
    EXPECT_GT(incomplete, 0u) << "a 0.3s deadline must cut the suite";

    // A delivered (partial) result is not pending work: nothing to
    // recover, and the daemon is still serving.
    EXPECT_EQ(daemon.pendingJobs(), 0u);
    daemon.stop();
    server.join();
}

TEST_F(ServiceTest, CorruptSocketFrameIsRejectedWithoutKillingDaemon)
{
    const std::string dir = base + "/daemon";
    VulnerabilityStack stack(serviceCfg(dir));
    service::DaemonOptions dopts;
    dopts.socketPath = sock;
    service::Daemon daemon(stack, dopts);
    std::string err;
    ASSERT_TRUE(daemon.start(err)) << err;
    std::thread server([&daemon] { daemon.serve(); });

    // 1: a frame whose CRC stamp does not match its payload.
    {
        const int fd = rawConnect(sock);
        ASSERT_GE(fd, 0);
        const std::string body = "{\"op\":\"status\"}";
        std::string wire(8 + body.size(), '\0');
        const uint32_t len = static_cast<uint32_t>(body.size());
        for (int i = 0; i < 4; ++i)
            wire[i] = static_cast<char>((len >> (8 * i)) & 0xff);
        // CRC bytes left zero: guaranteed mismatch.
        std::memcpy(wire.data() + 8, body.data(), body.size());
        ASSERT_EQ(::write(fd, wire.data(), wire.size()),
                  static_cast<ssize_t>(wire.size()));
        Json reply;
        std::string ferr;
        ASSERT_EQ(service::readFrame(fd, reply, ferr),
                  service::FrameResult::Ok)
            << ferr;
        EXPECT_EQ(reply.at("ev").asString(), "error");
        ::close(fd);
    }
    // 2: a torn frame — a length prefix with no payload behind it.
    {
        const int fd = rawConnect(sock);
        ASSERT_GE(fd, 0);
        const char torn[8] = {100, 0, 0, 0, 1, 2, 3, 4};
        ASSERT_EQ(::write(fd, torn, sizeof(torn)), 8);
        ::close(fd); // EOF mid-payload at the daemon
    }
    // The daemon survived both: a normal status round-trip works.
    {
        service::Client c(clientOpts("probe"));
        std::string cerr;
        const Json st = c.status(cerr);
        EXPECT_TRUE(cerr.empty()) << cerr;
        ASSERT_TRUE(st.isObject() && st.has("ev"));
        EXPECT_EQ(st.at("ev").asString(), "status");
    }
    daemon.stop();
    server.join();
}

TEST_F(ServiceTest, UnknownFaultModelManifestIsRejectedStructurally)
{
    const std::string dir = base + "/daemon";
    VulnerabilityStack stack(serviceCfg(dir));
    service::DaemonOptions dopts;
    dopts.socketPath = sock;
    service::Daemon daemon(stack, dopts);
    std::string err;
    ASSERT_TRUE(daemon.start(err)) << err;
    std::thread server([&daemon] { daemon.serve(); });

    // A manifest naming a fault model nobody implements: admission
    // control answers with a structured `rejected bad-manifest` frame
    // — the daemon neither dies nor enqueues the job.
    {
        const Json bad = parseManifest(
            R"({"campaigns": [
                 {"layer": "svf", "workload": "fft",
                  "faultModel": "rowhammer"}]})");
        service::Client c(clientOpts("mallory"));
        std::string cerr;
        const Json r = c.submit(bad, false, 0.0, nullptr, cerr);
        ASSERT_TRUE(r.isObject() && r.has("ev")) << cerr;
        EXPECT_EQ(r.at("ev").asString(), "rejected");
        EXPECT_EQ(r.at("reason").asString(), "bad-manifest");
        ASSERT_TRUE(r.has("detail"));
        EXPECT_NE(r.at("detail").asString().find("suite manifest"),
                  std::string::npos)
            << r.at("detail").asString();
        EXPECT_EQ(daemon.pendingJobs(), 0u);
    }
    // A bad knob value on a known model is rejected the same way.
    {
        const Json bad = parseManifest(
            R"({"campaigns": [
                 {"layer": "svf", "workload": "fft",
                  "faultModel": "em-burst:flips=0"}]})");
        service::Client c(clientOpts("mallory"));
        std::string cerr;
        const Json r = c.submit(bad, false, 0.0, nullptr, cerr);
        ASSERT_TRUE(r.isObject() && r.has("ev")) << cerr;
        EXPECT_EQ(r.at("ev").asString(), "rejected");
        EXPECT_EQ(r.at("reason").asString(), "bad-manifest");
        EXPECT_EQ(daemon.pendingJobs(), 0u);
    }
    // The daemon survived: a well-formed submission still completes.
    {
        const Json good = parseManifest(
            R"({"campaigns": [
                 {"layer": "svf", "workload": "fft",
                  "faultModel": "em-burst:flips=2"}]})");
        service::Client c(clientOpts("alice"));
        std::string cerr;
        const Json r = c.submit(good, false, 0.0, nullptr, cerr);
        EXPECT_TRUE(cerr.empty()) << cerr;
        ASSERT_TRUE(r.isObject() && r.has("ev"));
        EXPECT_EQ(r.at("ev").asString(), "result");
    }
    daemon.stop();
    server.join();
}

TEST_F(ServiceTest, RoundRobinFairnessAcrossClients)
{
    // Alice floods three jobs, Bob submits one: round-robin must run
    // Bob's job before Alice's backlog drains.
    const char *wl[] = {"fft", "qsort", "sha"};
    const std::string dir = base + "/daemon";
    VulnerabilityStack stack(serviceCfg(dir));

    std::mutex omu;
    std::vector<std::string> order;
    std::mutex gmu;
    std::condition_variable gcv;
    bool gateOpen = false;
    std::atomic<bool> gateUsed{false};
    service::DaemonOptions dopts;
    dopts.socketPath = sock;
    dopts.testBeforeJob = [&](const std::string &id) {
        {
            std::lock_guard<std::mutex> g(omu);
            order.push_back(id);
        }
        if (gateUsed.exchange(true))
            return;
        std::unique_lock<std::mutex> lock(gmu);
        gcv.wait(lock, [&] { return gateOpen; });
    };
    service::Daemon daemon(stack, dopts);
    std::string err;
    ASSERT_TRUE(daemon.start(err)) << err;
    std::thread server([&daemon] { daemon.serve(); });

    std::vector<std::thread> clients;
    // Alice's first job admits and blocks on the gate; her remaining
    // jobs and Bob's queue up behind it.
    clients.emplace_back([&] {
        service::Client c(clientOpts("alice"));
        std::string cerr;
        Json m = Json::object();
        Json list = Json::array();
        Json e = Json::object();
        e.set("layer", "svf");
        e.set("workload", wl[0]);
        list.push(std::move(e));
        m.set("campaigns", std::move(list));
        c.submit(m, false, 0.0, nullptr, cerr);
        EXPECT_TRUE(cerr.empty()) << cerr;
    });
    // Wait until the executor has *claimed* Alice's first job (it is
    // blocked in the gate) so the round-robin state is deterministic
    // before anything else is admitted.
    auto claimedJobs = [&] {
        std::lock_guard<std::mutex> g(omu);
        return order.size();
    };
    for (int i = 0; i < 500 && claimedJobs() < 1; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_EQ(claimedJobs(), 1u);
    for (int j = 1; j < 3; ++j) {
        clients.emplace_back([&, j] {
            service::Client c(clientOpts("alice"));
            std::string cerr;
            Json m = Json::object();
            Json list = Json::array();
            Json e = Json::object();
            e.set("layer", "svf");
            e.set("workload", wl[j]);
            list.push(std::move(e));
            m.set("campaigns", std::move(list));
            c.submit(m, false, 0.0, nullptr, cerr);
            EXPECT_TRUE(cerr.empty()) << cerr;
        });
    }
    for (int i = 0; i < 500 && daemon.pendingJobs() < 3; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    clients.emplace_back([&] {
        service::Client c(clientOpts("bob"));
        std::string cerr;
        Json m = Json::object();
        Json list = Json::array();
        Json e = Json::object();
        e.set("layer", "pvf");
        e.set("workload", "fft");
        list.push(std::move(e));
        m.set("campaigns", std::move(list));
        c.submit(m, false, 0.0, nullptr, cerr);
        EXPECT_TRUE(cerr.empty()) << cerr;
    });
    for (int i = 0; i < 500 && daemon.pendingJobs() < 4; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
        std::lock_guard<std::mutex> lock(gmu);
        gateOpen = true;
    }
    gcv.notify_all();
    for (auto &t : clients)
        t.join();
    daemon.stop();
    server.join();

    // Bob's job was admitted last (job-000004); FIFO would run it
    // last.  Round-robin interleaves him ahead of Alice's backlog, so
    // one of Alice's jobs — not Bob's — finishes the batch.
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], "job-000001");
    EXPECT_EQ(order[2], "job-000004")
        << "round-robin must interleave the second client's job ahead "
           "of the first client's backlog";
    EXPECT_EQ(order.back(), "job-000003");
}

} // namespace
} // namespace vstack
