/**
 * @file
 * Worker-fleet tests (service/fleet.h): the supervised multi-process
 * executor must produce a ResultStore byte-identical to the serial
 * path at any fleet width — including across worker SIGKILLs, hung
 * workers, torn lease frames, lost sample acks, a supervisor SIGKILL
 * followed by --resume, and full degradation to the in-process
 * fallback — while quarantining persistently-failing samples exactly
 * like the sandbox path.
 *
 * Worker-death placement uses the VSTACK_FLEET_TEST_CRASH/HANG hooks
 * compiled into vstack-worker ("<i>" fires every time a worker reaches
 * sample i; "<i>:<path>" fires once, consuming <path>).  Supervisor
 * failpoints arm in-process; worker failpoints travel via the
 * environment (workers are exec'd and re-read VSTACK_FAILPOINTS).
 *
 * These tests fork and SIGKILL real processes; they are excluded from
 * the TSan stage of tools/ci_sanitize.sh like the sandbox and chaos
 * tests.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include "service/fleet.h"
#include "support/failpoint.h"

namespace vstack
{
namespace
{

EnvConfig
fleetCfg(const std::string &dir)
{
    EnvConfig cfg;
    cfg.uarchFaults = 8;
    cfg.archFaults = 12;
    cfg.swFaults = 12;
    cfg.seed = 7;
    cfg.resultsDir = dir;
    cfg.jobs = 1;
    return cfg;
}

/** A small plan crossing all three layers. */
CampaignPlan
mixedPlan()
{
    CampaignPlan plan;
    const Variant fft{"fft", false};
    plan.addUarch("ax9", fft, Structure::RF);
    plan.addPvf(IsaId::Av64, fft, Fpm::WD);
    plan.addSvf(fft);
    return plan;
}

/** A single cheap campaign for the death/quarantine placements. */
CampaignPlan
svfPlan()
{
    CampaignPlan plan;
    plan.addSvf({"fft", false});
    return plan;
}

std::map<std::string, std::string>
storeBytes(const std::string &dir)
{
    std::map<std::string, std::string> out;
    if (!std::filesystem::exists(dir))
        return out;
    for (const auto &e :
         std::filesystem::recursive_directory_iterator(dir)) {
        if (!e.is_regular_file())
            continue;
        std::ifstream in(e.path(), std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        out[std::filesystem::relative(e.path(), dir).string()] =
            ss.str();
    }
    return out;
}

class FleetTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        clearFailpoints();
        ::unsetenv("VSTACK_FLEET_TEST_CRASH");
        ::unsetenv("VSTACK_FLEET_TEST_HANG");
        ::unsetenv("VSTACK_FAILPOINTS");
        base = "/tmp/vstack_fleet_test." + std::to_string(getpid());
        std::filesystem::remove_all(base);
    }
    void TearDown() override
    {
        clearFailpoints();
        ::unsetenv("VSTACK_FLEET_TEST_CRASH");
        ::unsetenv("VSTACK_FLEET_TEST_HANG");
        ::unsetenv("VSTACK_FAILPOINTS");
        std::filesystem::remove_all(base);
    }

    static service::FleetOptions fleetOpts(unsigned workers)
    {
        service::FleetOptions fo;
        fo.workers = workers;
        fo.workerPath = VSTACK_WORKER_BIN;
        return fo;
    }

    /** The reference store: the plan through the serial path. */
    std::map<std::string, std::string> serialReference(
        const CampaignPlan &plan)
    {
        const std::string dir = base + "/serial";
        VulnerabilityStack stack(fleetCfg(dir));
        SuiteOptions opts;
        opts.serial = true;
        SuiteReport r = runSuite(stack, plan, opts);
        EXPECT_FALSE(r.interrupted);
        return storeBytes(dir);
    }

    SuiteReport runFleet(const CampaignPlan &plan,
                         const std::string &dir,
                         const service::FleetOptions &fo,
                         service::FleetStats *stats = nullptr)
    {
        VulnerabilityStack stack(fleetCfg(dir));
        return service::runFleetSuite(stack, plan, {}, fo, stats);
    }

    std::string base;
};

TEST_F(FleetTest, StoreIsByteIdenticalToSerialAtAnyFleetWidth)
{
    const CampaignPlan plan = mixedPlan();
    const auto reference = serialReference(plan);
    ASSERT_EQ(reference.size(), plan.size());

    for (unsigned workers : {1u, 3u}) {
        const std::string dir =
            base + "/fleet" + std::to_string(workers);
        service::FleetStats stats;
        SuiteReport r =
            runFleet(plan, dir, fleetOpts(workers), &stats);
        EXPECT_FALSE(r.interrupted);
        for (const CampaignOutcome &o : r.outcomes)
            EXPECT_TRUE(o.complete) << o.spec.label();
        EXPECT_FALSE(stats.degraded);
        EXPECT_GE(stats.spawns, 1u);
        EXPECT_EQ(storeBytes(dir), reference)
            << "workers=" << workers;
    }
}

TEST_F(FleetTest, WorkerSigkillMidRunIsRecoveredByteIdentically)
{
    const CampaignPlan plan = mixedPlan();
    const auto reference = serialReference(plan);

    // One worker raises SIGKILL the first time any worker reaches
    // sample 5 of its lease order; the flag file makes it fire once,
    // so the re-leased shard then completes.
    const std::string flag = base + "/crash.once";
    std::filesystem::create_directories(base);
    std::ofstream(flag).put('\n');
    ::setenv("VSTACK_FLEET_TEST_CRASH", ("5:" + flag).c_str(), 1);

    const std::string dir = base + "/killed";
    service::FleetStats stats;
    SuiteReport r = runFleet(plan, dir, fleetOpts(3), &stats);
    EXPECT_FALSE(r.interrupted);
    EXPECT_GE(stats.deaths, 1u);
    EXPECT_EQ(stats.hostFaultQuarantines, 0u)
        << "a one-off death must re-lease, not quarantine";
    for (const CampaignOutcome &o : r.outcomes)
        EXPECT_TRUE(o.complete) << o.spec.label();
    EXPECT_EQ(storeBytes(dir), reference);
}

TEST_F(FleetTest, PersistentCrashQuarantinesExactlyTheCulpritSample)
{
    // Every worker that reaches sample 5 dies, every time.  The
    // supervisor's per-sample host-failure budget (retries = 1) must
    // quarantine exactly that sample into injectorErrors and finish
    // the rest — the sandbox path's contract.
    ::setenv("VSTACK_FLEET_TEST_CRASH", "5", 1);

    const std::string dir = base + "/quarantine";
    service::FleetStats stats;
    SuiteReport r = runFleet(svfPlan(), dir, fleetOpts(2), &stats);
    EXPECT_FALSE(r.interrupted);
    ASSERT_EQ(r.outcomes.size(), 1u);
    EXPECT_TRUE(r.outcomes[0].complete);
    EXPECT_EQ(r.outcomes[0].counts.injectorErrors, 1u);
    EXPECT_EQ(r.outcomes[0].counts.total(),
              fleetCfg("").swFaults - 1);
    EXPECT_EQ(stats.hostFaultQuarantines, 1u);
    EXPECT_GE(stats.deaths, 2u) << "one death per retry attempt";
}

TEST_F(FleetTest, SupervisorSigkillThenResumeIsByteIdentical)
{
    const CampaignPlan plan = mixedPlan();
    const auto reference = serialReference(plan);
    const std::string dir = base + "/souperkilled";

    // A child supervisor dies mid-journal-append partway into the
    // fleet run (the failpoint arms in this process only — journal
    // appends are supervisor-side, workers never see it).
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        armFailpoints("journal.append.kill=@6");
        try {
            VulnerabilityStack stack(fleetCfg(dir));
            service::runFleetSuite(stack, plan, {}, fleetOpts(3));
        } catch (...) {
        }
        _exit(0); // failpoint did not fire: fail the parent's check
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 137) << "child must die mid-append";

    // Resume on a fresh fleet: journals replay the settled prefix,
    // workers simulate only the remainder, and the store is
    // byte-identical to the never-killed serial run.
    service::FleetStats stats;
    SuiteReport r = runFleet(plan, dir, fleetOpts(3), &stats);
    EXPECT_FALSE(r.interrupted);
    for (const CampaignOutcome &o : r.outcomes)
        EXPECT_TRUE(o.complete) << o.spec.label();
    EXPECT_EQ(storeBytes(dir), reference);
}

TEST_F(FleetTest, HungWorkerIsKilledOnMissedHeartbeatsAndRecovered)
{
    const CampaignPlan plan = svfPlan();
    const auto reference = serialReference(plan);

    // The single worker wedges completely (heartbeats included) at
    // sample 3, once.  fleet=1 means no other worker can mask the
    // hang: the supervisor must detect the silence, SIGKILL, respawn,
    // and re-lease.
    const std::string flag = base + "/hang.once";
    std::filesystem::create_directories(base);
    std::ofstream(flag).put('\n');
    ::setenv("VSTACK_FLEET_TEST_HANG", ("3:" + flag).c_str(), 1);

    service::FleetOptions fo = fleetOpts(1);
    fo.heartbeatSec = 0.5;
    const std::string dir = base + "/hung";
    service::FleetStats stats;
    SuiteReport r = runFleet(plan, dir, fo, &stats);
    EXPECT_FALSE(r.interrupted);
    EXPECT_GE(stats.hangKills, 1u);
    for (const CampaignOutcome &o : r.outcomes)
        EXPECT_TRUE(o.complete) << o.spec.label();
    EXPECT_EQ(storeBytes(dir), reference);
}

TEST_F(FleetTest, StragglerLeaseIsSpeculatedToAnIdleWorker)
{
    const CampaignPlan plan = svfPlan();
    const auto reference = serialReference(plan);

    // One of two workers wedges on sample 3 with a heartbeat budget
    // far beyond the test: the hang-kill path cannot save this run.
    // The idle worker must get a speculative duplicate of the wedged
    // lease and settle its samples first.
    const std::string flag = base + "/straggler.once";
    std::filesystem::create_directories(base);
    std::ofstream(flag).put('\n');
    ::setenv("VSTACK_FLEET_TEST_HANG", ("3:" + flag).c_str(), 1);

    service::FleetOptions fo = fleetOpts(2);
    fo.heartbeatSec = 60.0;
    const std::string dir = base + "/speculated";
    service::FleetStats stats;
    SuiteReport r = runFleet(plan, dir, fo, &stats);
    EXPECT_FALSE(r.interrupted);
    EXPECT_GE(stats.speculativeLeases, 1u);
    EXPECT_EQ(stats.hangKills, 0u)
        << "speculation, not the hang-kill, must resolve this";
    for (const CampaignOutcome &o : r.outcomes)
        EXPECT_TRUE(o.complete) << o.spec.label();
    EXPECT_EQ(storeBytes(dir), reference);
}

TEST_F(FleetTest, SpawnFailureDegradesToInProcessExecution)
{
    const CampaignPlan plan = mixedPlan();
    const auto reference = serialReference(plan);

    // Every spawn attempt fails (supervisor-side failpoint): all
    // slots retire and the fleet must finish the whole plan through
    // the in-process floor, still byte-identically.
    armFailpoints("fleet.worker.spawn=1000000");
    const std::string dir = base + "/degraded";
    service::FleetStats stats;
    SuiteReport r = runFleet(plan, dir, fleetOpts(2), &stats);
    clearFailpoints();
    EXPECT_FALSE(r.interrupted);
    EXPECT_TRUE(stats.degraded);
    EXPECT_EQ(stats.spawns, 0u);
    EXPECT_EQ(stats.retired, 2u);
    for (const CampaignOutcome &o : r.outcomes)
        EXPECT_TRUE(o.complete) << o.spec.label();
    EXPECT_EQ(storeBytes(dir), reference);
}

TEST_F(FleetTest, TornLeaseFrameKillsOnlyThatWorker)
{
    const CampaignPlan plan = svfPlan();
    const auto reference = serialReference(plan);

    // The first two lease grants go out torn (an impossible length
    // prefix).  The workers must refuse the frame and exit; the
    // supervisor must triage the deaths and re-lease the shards.
    armFailpoints("fleet.lease.grant=2");
    const std::string dir = base + "/torn";
    service::FleetStats stats;
    SuiteReport r = runFleet(plan, dir, fleetOpts(2), &stats);
    clearFailpoints();
    EXPECT_FALSE(r.interrupted);
    EXPECT_GE(stats.deaths, 2u);
    EXPECT_EQ(stats.hostFaultQuarantines, 0u)
        << "a torn grant is the supervisor's fault, never the sample's";
    for (const CampaignOutcome &o : r.outcomes)
        EXPECT_TRUE(o.complete) << o.spec.label();
    EXPECT_EQ(storeBytes(dir), reference);
}

TEST_F(FleetTest, LostSampleAckIsRecoveredAtLeaseCompletion)
{
    const CampaignPlan plan = svfPlan();
    const auto reference = serialReference(plan);

    // Each worker swallows its first sample ack (failpoint travels to
    // the exec'd workers via the environment).  The supervisor sees a
    // completed lease with unsettled samples and must re-lease them.
    ::setenv("VSTACK_FAILPOINTS", "fleet.frame.write=1", 1);
    const std::string dir = base + "/lostack";
    service::FleetStats stats;
    SuiteReport r = runFleet(plan, dir, fleetOpts(2), &stats);
    EXPECT_FALSE(r.interrupted);
    EXPECT_EQ(stats.deaths, 0u) << "a lost ack is not a death";
    for (const CampaignOutcome &o : r.outcomes)
        EXPECT_TRUE(o.complete) << o.spec.label();
    EXPECT_EQ(storeBytes(dir), reference);
}

TEST_F(FleetTest, SecondFleetRunIsServedFromTheStore)
{
    const CampaignPlan plan = mixedPlan();
    const std::string dir = base + "/cached";
    {
        SuiteReport first = runFleet(plan, dir, fleetOpts(2));
        EXPECT_EQ(first.cacheHits, 0u);
    }
    const auto before = storeBytes(dir);
    service::FleetStats stats;
    SuiteReport again = runFleet(plan, dir, fleetOpts(2), &stats);
    EXPECT_EQ(again.cacheHits, plan.size());
    EXPECT_EQ(stats.spawns, 0u)
        << "an all-cache-hit plan must not spawn a single worker";
    for (const CampaignOutcome &o : again.outcomes) {
        EXPECT_TRUE(o.complete);
        EXPECT_TRUE(o.cacheHit) << o.spec.label();
    }
    EXPECT_EQ(storeBytes(dir), before);
}

} // namespace
} // namespace vstack
