/**
 * @file
 * Tests for the shared campaign execution engine (src/exec): thread
 * scaling determinism, SimError containment (retry + quarantine),
 * journal persistence/resume/torn-line handling, and the watchdog
 * budget.  Run under TSan by tools/ci_sanitize.sh.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <chrono>
#include <thread>
#include <vector>

#include <unistd.h>

#include "exec/cancel.h"
#include "exec/error.h"
#include "exec/executor.h"
#include "exec/journal.h"
#include "support/failpoint.h"
#include "support/logging.h"

namespace vstack
{
namespace
{

/** A trivially-copyable per-worker "simulator" context. */
struct CountingCtx
{
    size_t runs = 0;
};

Json
encodeU64(const uint64_t &v)
{
    return Json(v);
}

uint64_t
decodeU64(const Json &j)
{
    return static_cast<uint64_t>(j.asInt());
}

/** Deterministic per-sample payload (mixes the index). */
uint64_t
mix(size_t i)
{
    uint64_t z = static_cast<uint64_t>(i) + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    return z ^ (z >> 27);
}

TEST(ExecutorTest, ResolveJobs)
{
    EXPECT_GE(exec::resolveJobs(0), 1u);
    EXPECT_EQ(exec::resolveJobs(1), 1u);
    EXPECT_EQ(exec::resolveJobs(7), 7u);
}

TEST(ExecutorTest, SerialRunsInCallingThread)
{
    const auto caller = std::this_thread::get_id();
    exec::runOnWorkers(1, [&](unsigned) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(ExecutorTest, AllWorkersRun)
{
    std::atomic<unsigned> ran{0};
    exec::runOnWorkers(4, [&](unsigned) { ++ran; });
    EXPECT_EQ(ran.load(), 4u);
}

TEST(ExecutorTest, WorkerExceptionIsRethrownAfterJoin)
{
    EXPECT_THROW(
        exec::runOnWorkers(
            3, [](unsigned w) {
                if (w == 1)
                    throw std::runtime_error("boom");
            }),
        std::runtime_error);
}

TEST(ExecutorTest, ResultsAreIdenticalAtAnyThreadCount)
{
    const size_t n = 500;
    auto runAt = [&](unsigned jobs) {
        exec::ExecConfig ec;
        ec.jobs = jobs;
        return exec::runSamples<uint64_t>(
            n, ec, [] { return std::make_unique<CountingCtx>(); },
            [](CountingCtx &, size_t i) { return mix(i); }, encodeU64,
            decodeU64);
    };
    const auto serial = runAt(1);
    ASSERT_EQ(serial.size(), n);
    EXPECT_EQ(serial, runAt(4));
    EXPECT_EQ(serial, runAt(16));
}

TEST(ExecutorTest, EverySampleRunsExactlyOnce)
{
    const size_t n = 300;
    std::mutex mu;
    std::multiset<size_t> seen;
    exec::ExecConfig ec;
    ec.jobs = 8;
    exec::runSamples<uint64_t>(
        n, ec, [] { return std::make_unique<CountingCtx>(); },
        [&](CountingCtx &, size_t i) {
            std::lock_guard<std::mutex> lock(mu);
            seen.insert(i);
            return mix(i);
        },
        encodeU64, decodeU64);
    EXPECT_EQ(seen.size(), n);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(seen.count(i), 1u) << i;
}

TEST(ExecutorTest, SimErrorIsRetriedOnce)
{
    std::atomic<size_t> attempts{0};
    exec::ExecConfig ec;
    ec.jobs = 2;
    auto results = exec::runSamples<uint64_t>(
        10, ec, [] { return std::make_unique<CountingCtx>(); },
        [&](CountingCtx &, size_t i) -> uint64_t {
            // Sample 4 fails transiently: the first attempt throws.
            if (i == 4 && attempts.fetch_add(1) == 0)
                throw InjectionError("transient hiccup");
            return mix(i);
        },
        encodeU64, decodeU64);
    EXPECT_EQ(attempts.load(), 2u);
    ASSERT_TRUE(results[4].has_value());
    EXPECT_EQ(*results[4], mix(4));
}

TEST(ExecutorTest, PersistentSimErrorQuarantinesOnlyThatSample)
{
    exec::ExecConfig ec;
    ec.jobs = 4;
    auto results = exec::runSamples<uint64_t>(
        50, ec, [] { return std::make_unique<CountingCtx>(); },
        [](CountingCtx &, size_t i) -> uint64_t {
            if (i == 13)
                throw InjectionError("deterministic failure");
            return mix(i);
        },
        encodeU64, decodeU64);
    for (size_t i = 0; i < results.size(); ++i) {
        if (i == 13)
            EXPECT_FALSE(results[i].has_value());
        else
            ASSERT_TRUE(results[i].has_value()) << i;
    }
}

TEST(ExecutorTest, NonSimErrorPropagates)
{
    exec::ExecConfig ec;
    ec.jobs = 2;
    EXPECT_THROW(
        exec::runSamples<uint64_t>(
            8, ec, [] { return std::make_unique<CountingCtx>(); },
            [](CountingCtx &, size_t) -> uint64_t {
                throw std::logic_error("invariant violation");
            },
            encodeU64, decodeU64),
        std::logic_error);
}

TEST(ExecutorTest, ProgressReachesTotalAndNeverOverlaps)
{
    exec::ExecConfig ec;
    ec.jobs = 4;
    std::vector<size_t> ticks; // progress is called under a lock
    ec.progress = [&](size_t done, size_t total) {
        EXPECT_EQ(total, 64u);
        ticks.push_back(done);
    };
    exec::runSamples<uint64_t>(
        64, ec, [] { return std::make_unique<CountingCtx>(); },
        [](CountingCtx &, size_t i) { return mix(i); }, encodeU64,
        decodeU64);
    ASSERT_EQ(ticks.size(), 64u);
    EXPECT_EQ(*std::max_element(ticks.begin(), ticks.end()), 64u);
}

TEST(ExecutorTest, WatchdogBudget)
{
    exec::WatchdogBudget wd; // defaults: 4x + 50k
    EXPECT_EQ(wd.limitFor(1000), 54'000u);
    exec::WatchdogBudget tight{2.0, 10};
    EXPECT_EQ(tight.limitFor(100), 210u);
    exec::WatchdogBudget zero{0.0, 0};
    EXPECT_EQ(zero.limitFor(0), 1u) << "budget is never zero";
}

TEST(ExecutorTest, WatchdogBudgetSaturatesInsteadOfOverflowing)
{
    // factor * golden + slack beyond 2^64 used to be a UB double ->
    // uint64_t cast; it must saturate for paper-scale golden runs.
    exec::WatchdogBudget def;
    EXPECT_EQ(def.limitFor(UINT64_MAX), UINT64_MAX);
    exec::WatchdogBudget huge{1e30, 0};
    EXPECT_EQ(huge.limitFor(12345), UINT64_MAX);
    exec::WatchdogBudget slackOnly{0.0, UINT64_MAX};
    EXPECT_EQ(slackOnly.limitFor(0), UINT64_MAX);
    // Just below the edge still computes normally.
    exec::WatchdogBudget unit{1.0, 0};
    EXPECT_EQ(unit.limitFor(1 << 20), static_cast<uint64_t>(1) << 20);
}

TEST(ExecutorTest, ShutdownRequestStopsClaimingNewSamples)
{
    exec::clearShutdown();
    exec::requestShutdown();
    std::atomic<size_t> simulated{0};
    exec::ExecConfig ec;
    ec.jobs = 2;
    auto results = exec::runSamples<uint64_t>(
        20, ec, [] { return std::make_unique<CountingCtx>(); },
        [&](CountingCtx &, size_t i) {
            ++simulated;
            return mix(i);
        },
        encodeU64, decodeU64);
    exec::clearShutdown();
    EXPECT_EQ(simulated.load(), 0u) << "drain must not claim samples";
    for (const auto &r : results)
        EXPECT_FALSE(r.has_value());
}

// ---- cancel token -----------------------------------------------------------

TEST(CancelTest, DeadlineAtNowLatchesWithReasonDeadline)
{
    exec::CancelToken t;
    t.setDeadlineAfter(1e-12);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_TRUE(t.cancelled());
    EXPECT_EQ(t.reason(), "deadline");
    EXPECT_TRUE(t.deadlineExpired());
    // Latched: still "deadline" after a later explicit cancel.
    t.cancel("too late");
    EXPECT_EQ(t.reason(), "deadline");
}

TEST(CancelTest, NonPositiveDeadlineDisarms)
{
    exec::CancelToken zero;
    zero.setDeadlineAfter(0.0);
    EXPECT_FALSE(zero.cancelled());

    exec::CancelToken rearmed;
    rearmed.setDeadlineAfter(1e-12);
    rearmed.setDeadlineAfter(-1.0); // disarm before anyone polls
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_FALSE(rearmed.cancelled());
    EXPECT_EQ(rearmed.reason(), "");
    EXPECT_FALSE(rearmed.deadlineExpired());
}

TEST(CancelTest, ExplicitCancelBeforeDeadlineKeepsFirstReason)
{
    exec::CancelToken t;
    t.cancel("client cancel");
    t.setDeadlineAfter(1e-12);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_TRUE(t.cancelled());
    EXPECT_EQ(t.reason(), "client cancel");
    EXPECT_FALSE(t.deadlineExpired());
}

TEST(CancelTest, PreCancelledTokenDrainsBeforeFirstClaim)
{
    // The in-process worker loop must observe the token at the same
    // drain point as the global shutdown flag: before claiming.  The
    // armed journal failpoint proves no append ever ran either — a
    // drained run performs zero sample work, even with faults armed.
    const std::string dir =
        "/tmp/vstack_cancel_test." + std::to_string(getpid());
    std::filesystem::remove_all(dir);
    exec::Journal j;
    ASSERT_TRUE(j.open(dir + "/j.jsonl", "camp", 20, 42, false));
    // Arm after open: the journal header itself goes through append.
    armFailpoints("journal.append.short_write=1000000");

    exec::CancelToken t;
    t.cancel("pre-cancelled");
    std::atomic<size_t> simulated{0};
    exec::ExecConfig ec;
    ec.jobs = 2;
    ec.cancel = &t;
    ec.journal = &j;
    auto results = exec::runSamples<uint64_t>(
        20, ec, [] { return std::make_unique<CountingCtx>(); },
        [&](CountingCtx &, size_t i) {
            ++simulated;
            return mix(i);
        },
        encodeU64, decodeU64);
    EXPECT_EQ(simulated.load(), 0u);
    for (const auto &r : results)
        EXPECT_FALSE(r.has_value());
    EXPECT_EQ(failpointHits("journal.append.short_write"), 0u)
        << "a drained run must never reach the journal append";
    clearFailpoints();
    std::filesystem::remove_all(dir);
}

TEST(CancelTest, PreCancelledTokenDrainsIsolatedBatchLoop)
{
    // Same drain point, isolated path: no batch may be claimed, so no
    // sandbox child is ever forked (the armed pipe failpoint would
    // have fired on the first result frame).
    armFailpoints("sandbox.pipe.short_write=1000000");
    exec::CancelToken t;
    t.cancel("pre-cancelled");
    exec::ExecConfig ec;
    ec.jobs = 2;
    ec.isolate = true;
    ec.cancel = &t;
    auto results = exec::runSamples<uint64_t>(
        20, ec, [] { return std::make_unique<CountingCtx>(); },
        [](CountingCtx &, size_t i) { return mix(i); }, encodeU64,
        decodeU64);
    for (const auto &r : results)
        EXPECT_FALSE(r.has_value());
    EXPECT_EQ(failpointHits("sandbox.pipe.short_write"), 0u)
        << "a drained isolated run must never fork a sandbox child";
    clearFailpoints();
}

TEST(CancelTest, MidRunCancelStopsFurtherClaimsButKeepsFinishedWork)
{
    // Cancellation is cooperative at sample granularity: in-flight
    // samples finish (and stay valid), nothing new is claimed.
    exec::CancelToken t;
    std::atomic<size_t> simulated{0};
    exec::ExecConfig ec;
    ec.jobs = 2;
    ec.cancel = &t;
    const size_t n = 200, cancelAt = 8;
    auto results = exec::runSamples<uint64_t>(
        n, ec, [] { return std::make_unique<CountingCtx>(); },
        [&](CountingCtx &, size_t i) {
            if (++simulated == cancelAt)
                t.cancel("mid-run");
            return mix(i);
        },
        encodeU64, decodeU64);
    EXPECT_EQ(t.reason(), "mid-run");
    size_t finished = 0;
    for (size_t i = 0; i < n; ++i)
        if (results[i]) {
            ++finished;
            EXPECT_EQ(*results[i], mix(i)) << "sample " << i;
        }
    EXPECT_GE(finished, cancelAt - 1);
    EXPECT_LT(finished, n) << "cancel must stop further claims";
    EXPECT_EQ(finished, simulated.load());
}

TEST(CancelTest, ReplayedSamplesSurviveAPreCancelledResume)
{
    // Journal replay happens before the drain check, so a cancelled
    // resume still restores completed work without re-simulating it.
    const std::string dir =
        "/tmp/vstack_cancel_test." + std::to_string(getpid());
    std::filesystem::remove_all(dir);
    {
        exec::Journal j;
        ASSERT_TRUE(j.open(dir + "/j.jsonl", "camp", 10, 42, false));
        j.append(0, encodeU64(mix(0)));
        j.append(3, encodeU64(mix(3)));
    }
    exec::Journal j;
    ASSERT_TRUE(j.open(dir + "/j.jsonl", "camp", 10, 42, true));
    ASSERT_EQ(j.replayed(), 2u);

    exec::CancelToken t;
    t.cancel("pre-cancelled");
    std::atomic<size_t> simulated{0};
    exec::ExecConfig ec;
    ec.jobs = 1;
    ec.cancel = &t;
    ec.journal = &j;
    auto results = exec::runSamples<uint64_t>(
        10, ec, [] { return std::make_unique<CountingCtx>(); },
        [&](CountingCtx &, size_t i) {
            ++simulated;
            return mix(i);
        },
        encodeU64, decodeU64);
    EXPECT_EQ(simulated.load(), 0u);
    ASSERT_TRUE(results[0].has_value());
    EXPECT_EQ(*results[0], mix(0));
    ASSERT_TRUE(results[3].has_value());
    EXPECT_EQ(*results[3], mix(3));
    for (size_t i : {1u, 2u, 4u, 5u, 6u, 7u, 8u, 9u})
        EXPECT_FALSE(results[i].has_value()) << "sample " << i;
    std::filesystem::remove_all(dir);
}

// ---- journal ----------------------------------------------------------------

class JournalTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        // Per-process dir: ctest runs each case as its own process,
        // possibly concurrently; a shared fixed path would race.
        dir = "/tmp/vstack_journal_test." + std::to_string(getpid());
        std::filesystem::remove_all(dir);
        path = dir + "/j.jsonl";
    }
    void TearDown() override { std::filesystem::remove_all(dir); }

    std::string dir, path;
};

TEST_F(JournalTest, AppendAndResume)
{
    {
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "camp", 10, 42, false));
        j.append(0, Json(7));
        j.appendError(3, "injector died");
    }
    exec::Journal j;
    ASSERT_TRUE(j.open(path, "camp", 10, 42, true));
    EXPECT_EQ(j.replayed(), 2u);
    ASSERT_NE(j.find(0), nullptr);
    EXPECT_EQ(j.find(0)->at("r").asInt(), 7);
    ASSERT_NE(j.find(3), nullptr);
    EXPECT_TRUE(j.find(3)->has("err"));
    EXPECT_EQ(j.find(1), nullptr);
}

TEST_F(JournalTest, TornTailLineIsIgnored)
{
    {
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "camp", 10, 42, false));
        j.append(0, Json(1));
        j.append(1, Json(2));
    }
    // Simulate a kill mid-append: chop the file mid-way through the
    // last line.
    std::string text;
    ASSERT_TRUE(readFile(path, text));
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        << text.substr(0, text.size() - 5);

    exec::Journal j;
    ASSERT_TRUE(j.open(path, "camp", 10, 42, true));
    EXPECT_EQ(j.replayed(), 1u);
    EXPECT_NE(j.find(0), nullptr);
    EXPECT_EQ(j.find(1), nullptr) << "torn record must not replay";
}

TEST_F(JournalTest, MismatchedCampaignRestartsJournal)
{
    {
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "campA", 10, 42, false));
        j.append(0, Json(1));
    }
    exec::Journal j;
    ASSERT_TRUE(j.open(path, "campB", 10, 42, true));
    EXPECT_EQ(j.replayed(), 0u) << "other campaign's samples must not leak";

    exec::Journal k;
    ASSERT_TRUE(k.open(path, "campA", 10, 42, true));
    EXPECT_EQ(k.replayed(), 0u) << "restart truncated the old records";
}

TEST_F(JournalTest, MismatchedSeedRestartsJournal)
{
    {
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "camp", 10, 42, false));
        j.append(0, Json(1));
    }
    exec::Journal j;
    ASSERT_TRUE(j.open(path, "camp", 10, 43, true));
    EXPECT_EQ(j.replayed(), 0u);
}

TEST_F(JournalTest, NoResumeStartsFresh)
{
    {
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "camp", 10, 42, false));
        j.append(0, Json(1));
    }
    exec::Journal j;
    ASSERT_TRUE(j.open(path, "camp", 10, 42, false));
    EXPECT_EQ(j.replayed(), 0u);
}

TEST_F(JournalTest, RemoveFileDeletes)
{
    exec::Journal j;
    ASSERT_TRUE(j.open(path, "camp", 10, 42, false));
    j.append(0, Json(1));
    j.removeFile();
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(JournalTest, DisabledJournalIsInert)
{
    exec::Journal j;
    EXPECT_FALSE(j.enabled());
    EXPECT_EQ(j.find(0), nullptr);
    j.append(0, Json(1));   // no-op
    j.appendError(1, "x");  // no-op
    j.removeFile();         // no-op
}

TEST_F(JournalTest, ExecutorReplaysJournaledSamples)
{
    const size_t n = 40;
    std::atomic<size_t> simulated{0};
    auto runFn = [&](CountingCtx &, size_t i) -> uint64_t {
        ++simulated;
        if (i == 7)
            throw InjectionError("always fails");
        return mix(i);
    };

    exec::Journal first;
    ASSERT_TRUE(first.open(path, "camp", n, 1, false));
    exec::ExecConfig ec;
    ec.jobs = 3;
    ec.journal = &first;
    auto full = exec::runSamples<uint64_t>(
        n, ec, [] { return std::make_unique<CountingCtx>(); }, runFn,
        encodeU64, decodeU64);
    // 39 good samples + 1 quarantined (retried once => 2 attempts).
    EXPECT_EQ(simulated.load(), n + 1);

    // Resume replays everything — zero re-simulation — and the folded
    // results (including the quarantine) are identical.
    simulated = 0;
    exec::Journal second;
    ASSERT_TRUE(second.open(path, "camp", n, 1, true));
    EXPECT_EQ(second.replayed(), n);
    ec.journal = &second;
    auto resumed = exec::runSamples<uint64_t>(
        n, ec, [] { return std::make_unique<CountingCtx>(); }, runFn,
        encodeU64, decodeU64);
    EXPECT_EQ(simulated.load(), 0u);
    EXPECT_EQ(resumed, full);
    EXPECT_FALSE(resumed[7].has_value());
}

TEST_F(JournalTest, PathForSanitizes)
{
    const std::string p =
        exec::Journal::pathFor("/tmp/x", "uarch/v1/a b/seed42");
    EXPECT_EQ(p.find("/tmp/x/journal/"), 0u);
    EXPECT_EQ(p.find(' '), std::string::npos);
    EXPECT_NE(p.find(".jsonl"), std::string::npos);
}

TEST_F(JournalTest, FsyncOnAppendStillRoundTrips)
{
    {
        exec::Journal j;
        j.setFsync(true); // durability knob must not change the format
        ASSERT_TRUE(j.open(path, "camp", 10, 42, false));
        j.append(0, Json(7));
    }
    exec::Journal j;
    ASSERT_TRUE(j.open(path, "camp", 10, 42, true));
    EXPECT_EQ(j.replayed(), 1u);
    EXPECT_EQ(j.find(0)->at("r").asInt(), 7);
}

TEST_F(JournalTest, HostFaultRecordReplaysAsQuarantine)
{
    exec::HostFault hf;
    hf.signal = 11;
    hf.maxRssKb = 4096;
    hf.phase = "run";
    {
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "camp", 10, 42, false));
        j.appendHostFault(3, hf.describe(), hf.toJson());
    }
    exec::Journal j;
    ASSERT_TRUE(j.open(path, "camp", 10, 42, true));
    ASSERT_NE(j.find(3), nullptr);
    EXPECT_TRUE(j.find(3)->has("err"));
    ASSERT_TRUE(j.find(3)->has("hf"));
    EXPECT_EQ(j.find(3)->at("hf").at("sig").asInt(), 11);
    EXPECT_EQ(j.find(3)->at("hf").at("rssKb").asInt(), 4096);
    EXPECT_EQ(j.find(3)->at("hf").at("phase").asString(), "run");

    // The executor replays it like any error record: a quarantine.
    exec::ExecConfig ec;
    ec.journal = &j;
    auto results = exec::runSamples<uint64_t>(
        10, ec, [] { return std::make_unique<CountingCtx>(); },
        [](CountingCtx &, size_t i) { return mix(i); }, encodeU64,
        decodeU64);
    EXPECT_FALSE(results[3].has_value());
    EXPECT_TRUE(results[4].has_value());
}

// ---- process-isolated sandbox ----------------------------------------------
//
// These tests fork real children (kept out of the TSan ctest filter in
// tools/ci_sanitize.sh: fork from a multithreaded TSan process is
// unsupported).  Sample payloads are the same mix(i) values as above,
// so isolated results can be compared against in-process runs.

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define VSTACK_SANITIZER_VA 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define VSTACK_SANITIZER_VA 1
#endif
#endif

/** Isolated config with test-friendly limits (short wall deadline). */
exec::ExecConfig
isolatedConfig(unsigned jobs = 1, unsigned batch = 4)
{
    exec::ExecConfig ec;
    ec.isolate = true;
    ec.jobs = jobs;
    ec.retries = 0; // host-fault samples fail once, not twice
    ec.sandbox.batch = batch;
    ec.sandbox.wallSeconds = 5.0;
    ec.sandbox.cpuSeconds = 30;
    return ec;
}

TEST(SandboxTest, BitIdenticalToInProcessExecution)
{
    const size_t n = 50;
    auto inProcess = exec::runSamples<uint64_t>(
        n, exec::ExecConfig{},
        [] { return std::make_unique<CountingCtx>(); },
        [](CountingCtx &, size_t i) { return mix(i); }, encodeU64,
        decodeU64);
    for (unsigned jobs : {1u, 2u}) {
        auto isolated = exec::runSamples<uint64_t>(
            n, isolatedConfig(jobs),
            [] { return std::make_unique<CountingCtx>(); },
            [](CountingCtx &, size_t i) { return mix(i); }, encodeU64,
            decodeU64);
        EXPECT_EQ(isolated, inProcess) << "jobs=" << jobs;
    }
}

TEST(SandboxTest, SegfaultingSampleIsQuarantinedNotFatal)
{
    const size_t n = 12;
    auto results = exec::runSamples<uint64_t>(
        n, isolatedConfig(),
        [] { return std::make_unique<CountingCtx>(); },
        [](CountingCtx &, size_t i) -> uint64_t {
            if (i == 5)
                std::raise(SIGSEGV); // corrupted-state crash analog
            return mix(i);
        },
        encodeU64, decodeU64);
    for (size_t i = 0; i < n; ++i) {
        if (i == 5) {
            EXPECT_FALSE(results[i].has_value());
        } else {
            ASSERT_TRUE(results[i].has_value()) << i;
            EXPECT_EQ(*results[i], mix(i)) << i;
        }
    }
}

TEST(SandboxTest, HangingSampleMissesWallDeadline)
{
    const size_t n = 6;
    exec::ExecConfig ec = isolatedConfig();
    ec.sandbox.wallSeconds = 0.5; // keep the test fast
    auto results = exec::runSamples<uint64_t>(
        n, ec, [] { return std::make_unique<CountingCtx>(); },
        [](CountingCtx &, size_t i) -> uint64_t {
            if (i == 2) {
                // A host-level hang the simulated-unit watchdog cannot
                // see: sleep forever without advancing the simulator.
                for (;;)
                    std::this_thread::sleep_for(std::chrono::milliseconds(50));
            }
            return mix(i);
        },
        encodeU64, decodeU64);
    EXPECT_FALSE(results[2].has_value());
    for (size_t i = 0; i < n; ++i) {
        if (i != 2) {
            ASSERT_TRUE(results[i].has_value()) << i;
        }
    }
}

TEST(SandboxTest, OverAllocatingSampleTripsMemoryCeiling)
{
#ifdef VSTACK_SANITIZER_VA
    GTEST_SKIP() << "RLIMIT_AS is meaningless under sanitizer shadow "
                    "mappings (the sandbox skips it there too)";
#else
    const size_t n = 8;
    exec::ExecConfig ec = isolatedConfig();
    ec.sandbox.memBytes = 256ull << 20; // 256 MiB ceiling
    auto results = exec::runSamples<uint64_t>(
        n, ec, [] { return std::make_unique<CountingCtx>(); },
        [](CountingCtx &, size_t i) -> uint64_t {
            if (i == 3) {
                // Runaway allocation: touch 64 MiB chunks until the
                // ceiling kills the child (bounded in case it fails).
                std::vector<std::unique_ptr<char[]>> hog;
                for (int c = 0; c < 32; ++c) {
                    hog.push_back(std::make_unique<char[]>(64u << 20));
                    std::memset(hog.back().get(), 0xab, 64u << 20);
                }
            }
            return mix(i);
        },
        encodeU64, decodeU64);
    EXPECT_FALSE(results[3].has_value());
    for (size_t i = 0; i < n; ++i) {
        if (i != 3) {
            ASSERT_TRUE(results[i].has_value()) << i;
        }
    }
#endif
}

TEST(SandboxTest, MixedHostFaultsTriageRecordedAndReplayable)
{
    const std::string dir = "/tmp/vstack_sandbox_triage_test";
    std::filesystem::remove_all(dir);
    const std::string path = exec::Journal::pathFor(dir, "sbx");
    const size_t n = 16;
    auto runFn = [](CountingCtx &, size_t i) -> uint64_t {
        if (i == 2)
            std::raise(SIGSEGV);
        if (i == 7) {
            for (;;)
                std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        return mix(i);
    };

    exec::ExecConfig ec = isolatedConfig(2);
    ec.sandbox.wallSeconds = 0.5;
    exec::Journal journal;
    ASSERT_TRUE(journal.open(path, "sbx", n, 1, false));
    ec.journal = &journal;
    auto isolated = exec::runSamples<uint64_t>(
        n, ec, [] { return std::make_unique<CountingCtx>(); }, runFn,
        encodeU64, decodeU64);

    // Exactly the two host-faulting indices are quarantined; the
    // survivors match an in-process no-fault run bit for bit.
    for (size_t i = 0; i < n; ++i) {
        if (i == 2 || i == 7)
            EXPECT_FALSE(isolated[i].has_value()) << i;
        else
            EXPECT_EQ(*isolated[i], mix(i)) << i;
    }

    // The journal holds HostFault triage records: a signal for the
    // SIGSEGV sample, a deadline flag for the hang.
    exec::Journal replay;
    ASSERT_TRUE(replay.open(path, "sbx", n, 1, true));
    EXPECT_EQ(replay.replayed(), n);
    ASSERT_NE(replay.find(2), nullptr);
    ASSERT_TRUE(replay.find(2)->has("hf"));
#ifndef VSTACK_SANITIZER_VA
    // ASan intercepts SIGSEGV and turns it into a nonzero exit, so
    // only assert the exact signal in plain builds; either way the
    // child death is triaged in phase "run".
    EXPECT_EQ(replay.find(2)->at("hf").at("sig").asInt(), SIGSEGV);
#endif
    EXPECT_EQ(replay.find(2)->at("hf").at("phase").asString(), "run");
    ASSERT_NE(replay.find(7), nullptr);
    ASSERT_TRUE(replay.find(7)->has("hf"));
    EXPECT_TRUE(replay.find(7)->at("hf").at("timeout").asBool());
    EXPECT_EQ(replay.find(7)->at("hf").at("sig").asInt(), SIGKILL);

    // A resumed run replays everything — including the quarantines —
    // and reproduces the isolated results exactly.
    exec::ExecConfig rec;
    rec.journal = &replay;
    auto resumed = exec::runSamples<uint64_t>(
        n, rec, [] { return std::make_unique<CountingCtx>(); },
        [](CountingCtx &, size_t i) { return mix(i); }, encodeU64,
        decodeU64);
    EXPECT_EQ(resumed, isolated);
    std::filesystem::remove_all(dir);
}

TEST(SandboxTest, HostFaultRetryGetsFreshChild)
{
    // With retries = 1, a deterministically crashing sample is
    // attempted twice (two child deaths) and then quarantined; the
    // rest of its batch still completes in replacement children.
    const size_t n = 8;
    exec::ExecConfig ec = isolatedConfig();
    ec.retries = 1;
    auto results = exec::runSamples<uint64_t>(
        n, ec, [] { return std::make_unique<CountingCtx>(); },
        [](CountingCtx &, size_t i) -> uint64_t {
            if (i == 1)
                std::raise(SIGSEGV);
            return mix(i);
        },
        encodeU64, decodeU64);
    EXPECT_FALSE(results[1].has_value());
    for (size_t i = 0; i < n; ++i) {
        if (i != 1) {
            ASSERT_TRUE(results[i].has_value()) << i;
        }
    }
}

TEST(SandboxTest, SimErrorInsideChildStillQuarantines)
{
    // SimError containment (retry in-child, quarantine) must survive
    // the move into a forked child unchanged.
    const size_t n = 10;
    exec::ExecConfig ec = isolatedConfig();
    ec.retries = 1;
    auto results = exec::runSamples<uint64_t>(
        n, ec, [] { return std::make_unique<CountingCtx>(); },
        [](CountingCtx &, size_t i) -> uint64_t {
            if (i == 4)
                throw InjectionError("deterministic failure");
            return mix(i);
        },
        encodeU64, decodeU64);
    EXPECT_FALSE(results[4].has_value());
    for (size_t i = 0; i < n; ++i) {
        if (i != 4) {
            ASSERT_TRUE(results[i].has_value()) << i;
        }
    }
}

// ---- journal corruption recovery --------------------------------------------

/** Flip one payload byte inside 0-based line `lineNo` of a file. */
void
corruptLineInFile(const std::string &path, size_t lineNo)
{
    std::string text;
    ASSERT_TRUE(readFile(path, text));
    size_t start = 0;
    for (size_t skipped = 0; skipped < lineNo; ++skipped)
        start = text.find('\n', start) + 1;
    const size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    text[end - 2] ^= 0x01; // inside the JSON payload, not the newline
    std::ofstream(path, std::ios::binary | std::ios::trunc) << text;
}

TEST_F(JournalTest, MidFileCorruptionIsQuarantinedAndHealed)
{
    {
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "camp", 10, 42, false));
        j.append(0, Json(10));
        j.append(1, Json(11));
        j.append(2, Json(12));
    }
    corruptLineInFile(path, 2); // record for sample 1

    exec::Journal j;
    ASSERT_TRUE(j.open(path, "camp", 10, 42, true));
    EXPECT_EQ(j.replayed(), 2u);
    EXPECT_EQ(j.storageFaults(), 1u);
    EXPECT_NE(j.find(0), nullptr);
    EXPECT_EQ(j.find(1), nullptr) << "corrupt record must not replay";
    EXPECT_NE(j.find(2), nullptr);
    EXPECT_TRUE(
        std::filesystem::exists(exec::Journal::corruptPathFor(path)));

    // The file was healed in place: a further resume sees a clean
    // journal with the surviving records and no new faults.
    exec::Journal k;
    ASSERT_TRUE(k.open(path, "camp", 10, 42, true));
    EXPECT_EQ(k.replayed(), 2u);
    EXPECT_EQ(k.storageFaults(), 0u);
}

TEST_F(JournalTest, DuplicateIndexFirstWinsAndIsQuarantined)
{
    {
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "camp", 10, 42, false));
        j.append(0, Json(1));
        j.append(0, Json(2)); // double-append (a storage-layer bug)
    }
    exec::Journal j;
    ASSERT_TRUE(j.open(path, "camp", 10, 42, true));
    EXPECT_EQ(j.replayed(), 1u) << "a sample must never count twice";
    EXPECT_EQ(j.storageFaults(), 1u);
    EXPECT_EQ(j.find(0)->at("r").asInt(), 1)
        << "the record an earlier resume replayed must win";
}

TEST_F(JournalTest, TrailingGarbageBlockIsQuarantined)
{
    {
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "camp", 10, 42, false));
        j.append(0, Json(1));
    }
    // Newline-terminated garbage is NOT a torn tail (a torn append
    // never writes the final newline): it must count as corruption.
    {
        std::ofstream f(path, std::ios::binary | std::ios::app);
        f << "c=deadbeef {\"i\":9,\"r\":0}\n";
    }
    exec::Journal j;
    ASSERT_TRUE(j.open(path, "camp", 10, 42, true));
    EXPECT_EQ(j.replayed(), 1u);
    EXPECT_EQ(j.storageFaults(), 1u);
}

TEST_F(JournalTest, EmptyFileStartsFreshWithoutFaults)
{
    std::filesystem::create_directories(dir);
    std::ofstream(path, std::ios::binary | std::ios::trunc) << "";
    exec::Journal j;
    ASSERT_TRUE(j.open(path, "camp", 10, 42, true));
    EXPECT_EQ(j.replayed(), 0u);
    EXPECT_EQ(j.storageFaults(), 0u);
    j.append(0, Json(1));
}

TEST_F(JournalTest, RecordBeyondSampleSpaceIsQuarantined)
{
    {
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "camp", 10, 42, false));
        j.append(15, Json(1)); // larger than the campaign's n
        j.append(3, Json(2));
    }
    exec::Journal j;
    ASSERT_TRUE(j.open(path, "camp", 10, 42, true));
    EXPECT_EQ(j.replayed(), 1u);
    EXPECT_EQ(j.storageFaults(), 1u);
    EXPECT_EQ(j.find(15), nullptr);
    EXPECT_NE(j.find(3), nullptr);
}

TEST_F(JournalTest, CorruptHeaderQuarantinesWholeFile)
{
    {
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "camp", 10, 42, false));
        j.append(0, Json(1));
    }
    corruptLineInFile(path, 0); // the identity header

    exec::Journal j;
    ASSERT_TRUE(j.open(path, "camp", 10, 42, true));
    EXPECT_EQ(j.replayed(), 0u)
        << "records under a corrupt header cannot be trusted";
    EXPECT_EQ(j.storageFaults(), 1u);
    std::string sidecar;
    ASSERT_TRUE(
        readFile(exec::Journal::corruptPathFor(path), sidecar));
    EXPECT_NE(sidecar.find("\"i\""), std::string::npos)
        << "the whole file is preserved as evidence";
}

// ---- verify-replay ----------------------------------------------------------

TEST_F(JournalTest, VerifyReplayAcceptsFaithfulJournal)
{
    const size_t n = 30;
    auto run = [&](exec::Journal &j, bool resume, double verify) {
        ASSERT_TRUE(j.open(path, "camp", n, 1, resume));
        exec::ExecConfig ec;
        ec.journal = &j;
        ec.verifyReplay = verify;
        auto results = exec::runSamples<uint64_t>(
            n, ec, [] { return std::make_unique<CountingCtx>(); },
            [](CountingCtx &, size_t i) { return mix(i); }, encodeU64,
            decodeU64);
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(results[i], mix(i)) << i;
    };
    exec::Journal first;
    run(first, false, 0.0);
    exec::Journal second;
    run(second, true, 100.0); // every replayed sample re-checked
}

TEST_F(JournalTest, VerifyReplayDetectsDivergence)
{
    const size_t n = 30;
    {
        exec::Journal first;
        ASSERT_TRUE(first.open(path, "camp", n, 1, false));
        exec::ExecConfig ec;
        ec.journal = &first;
        exec::runSamples<uint64_t>(
            n, ec, [] { return std::make_unique<CountingCtx>(); },
            [](CountingCtx &, size_t i) { return mix(i); }, encodeU64,
            decodeU64);
    }
    // Resume with a runFn that no longer reproduces the journal —
    // checksum-valid records, wrong campaign behavior.  verify-replay
    // must refuse to build numbers on them.
    exec::Journal second;
    ASSERT_TRUE(second.open(path, "camp", n, 1, true));
    ASSERT_EQ(second.replayed(), n);
    exec::ExecConfig ec;
    ec.journal = &second;
    ec.verifyReplay = 100.0;
    EXPECT_THROW(
        exec::runSamples<uint64_t>(
            n, ec, [] { return std::make_unique<CountingCtx>(); },
            [](CountingCtx &, size_t i) { return mix(i) + 1; },
            encodeU64, decodeU64),
        ReplayDivergence);
}

TEST_F(JournalTest, VerifyReplaySubsetIsDeterministic)
{
    std::vector<size_t> a, b;
    for (size_t i = 0; i < 1000; ++i) {
        if (exec::verifyReplaySelected(i, 10.0))
            a.push_back(i);
        if (exec::verifyReplaySelected(i, 10.0))
            b.push_back(i);
    }
    EXPECT_EQ(a, b);
    // ~10% of 1000, loosely bounded (the subset is hash-selected).
    EXPECT_GT(a.size(), 50u);
    EXPECT_LT(a.size(), 200u);
    for (size_t i = 0; i < 100; ++i) {
        EXPECT_FALSE(exec::verifyReplaySelected(i, 0.0));
        EXPECT_TRUE(exec::verifyReplaySelected(i, 100.0));
    }
}

} // namespace
} // namespace vstack
