/**
 * @file
 * Compiler tests: lexer/parser behaviour and errors, IR generation
 * invariants, and a table-driven semantics sweep that executes MCL
 * expression programs through the IR interpreter AND the compiled
 * guest binary on both ISAs, asserting identical exit codes.
 */
#include <gtest/gtest.h>

#include "arch/archsim.h"
#include "compiler/compile.h"
#include "compiler/irgen.h"
#include "compiler/lexer.h"
#include "compiler/parser.h"
#include "kernel/kernel.h"
#include "support/logging.h"
#include "swfi/interp.h"

namespace vstack
{
namespace
{

// ---- lexer -----------------------------------------------------------------

TEST(Lexer, TokenKinds)
{
    auto r = mcl::lex("fn x1 123 0x1f 'a' \"s\" + - << >> <= == && ||");
    ASSERT_TRUE(r.ok) << r.error;
    using mcl::Tok;
    std::vector<Tok> kinds;
    for (const auto &t : r.tokens)
        kinds.push_back(t.kind);
    std::vector<Tok> expect{Tok::KwFn,  Tok::Ident, Tok::Number,
                            Tok::Number, Tok::CharLit, Tok::String,
                            Tok::Plus,  Tok::Minus, Tok::Shl,
                            Tok::Shr,   Tok::Le,    Tok::EqEq,
                            Tok::AndAnd, Tok::OrOr, Tok::End};
    EXPECT_EQ(kinds, expect);
    EXPECT_EQ(r.tokens[2].value, 123);
    EXPECT_EQ(r.tokens[3].value, 0x1f);
    EXPECT_EQ(r.tokens[4].value, 'a');
}

TEST(Lexer, CommentsAndErrors)
{
    EXPECT_TRUE(mcl::lex("// line\n/* block\nstill */ fn").ok);
    EXPECT_FALSE(mcl::lex("/* unterminated").ok);
    EXPECT_FALSE(mcl::lex("\"unterminated").ok);
    EXPECT_FALSE(mcl::lex("@").ok);
}

// ---- parser ----------------------------------------------------------------

TEST(Parser, FunctionAndGlobals)
{
    auto r = mcl::parse(R"(
        var g: int = 5;
        const t: byte[4] = { 1, 2, 3, 4 };
        const s: byte[] = "abc";
        fn f(a: int, p: byte*): int { return a; }
        fn v() { }
    )");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.module.globals.size(), 3u);
    EXPECT_EQ(r.module.globals[2].type.arraySize, 4); // "abc" + NUL
    ASSERT_EQ(r.module.funcs.size(), 2u);
    EXPECT_EQ(r.module.funcs[0].params.size(), 2u);
    EXPECT_TRUE(r.module.funcs[1].retType.isVoid());
}

TEST(Parser, SyntaxErrors)
{
    const char *bad[] = {
        "fn f() { return }",
        "fn f() { var x int; }",
        "fn f() { if x { } }",
        "var g: int[] ;",
        "fn f() { break; }",          // caught in irgen? no: parser ok
        "fn f( { }",
        "fn f() { x = ; }",
        "fn 123() { }",
    };
    int failures = 0;
    for (const char *src : bad)
        failures += !mcl::parse(src).ok;
    EXPECT_GE(failures, 6);
}

// ---- irgen type checking ----------------------------------------------------

TEST(IrGen, RejectsSemanticErrors)
{
    struct Case
    {
        const char *src;
        const char *needle;
    };
    const Case cases[] = {
        {"fn f() { x = 1; }", "undefined variable"},
        {"fn f() { undefined_fn(); }", "undefined function"},
        {"fn f(a: int) { a(); }", "undefined function"},
        {"fn f() { var p: int*; var q: int = p; }", "pointer"},
        {"fn f() { break; }", "outside a loop"},
        {"fn f(): int { return; }", "must return a value"},
        {"fn f() { return 3; }", "void function"},
        {"fn f(a: int, b: int) { f(a); }", "expects 2 arguments"},
        {"fn f() { var a: int = 1; var a: int = 2; }", "redefinition"},
        {"fn f() { } fn f() { }", "duplicate"},
        {"fn f() { var a: int[4]; a = 3; }", "cannot assign"},
    };
    for (const Case &c : cases) {
        auto pr = mcl::parse(c.src);
        ASSERT_TRUE(pr.ok) << c.src << ": " << pr.error;
        auto ir = mcl::generateIr(pr.module, 64);
        EXPECT_FALSE(ir.ok) << c.src;
        EXPECT_NE(ir.error.find(c.needle), std::string::npos)
            << c.src << " -> " << ir.error;
    }
}

TEST(IrGen, ProducedIrVerifies)
{
    auto fr = mcl::compileToIr(R"(
        var g: int[8];
        fn fib(n: int): int {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main(): int {
            var i: int = 0;
            while (i < 8) { g[i] = fib(i); i = i + 1; }
            return g[7];
        }
    )", 64);
    ASSERT_TRUE(fr.ok) << fr.error;
    EXPECT_EQ(ir::verify(fr.module), "");
    EXPECT_FALSE(ir::print(fr.module).empty());
}

// ---- cross-layer semantics sweep ---------------------------------------------

/** One expression-semantics case: program returns `expect`. */
struct SemCase
{
    const char *name;
    const char *body; ///< statements of main; must `return` expect
    int expect;
};

const SemCase semCases[] = {
    {"add", "return 40 + 2;", 42},
    {"sub_neg", "return 10 - 52 + 84;", 42},
    {"mul", "return 6 * 7;", 42},
    {"sdiv", "return (0 - 84) / (0 - 2);", 42},
    {"srem", "return 85 % 43;", 42},
    {"udiv_intr", "return __udiv(84, 2);", 42},
    {"urem_intr", "return __urem(127, 85);", 42},
    {"and_or_xor", "return (47 & 62) | (12 ^ 8);", 46},
    {"shifts", "return (21 << 1) | ((1 >> 3) & 0);", 42},
    {"lshr_intr", "return __lshr(84, 1);", 42},
    {"ashr_negative", "return ((0 - 168) >> 2) + 84;", 42},
    {"cmp_chain", "return (3 < 4) + (4 <= 4) + (5 > 4) + (5 >= 6);", 3},
    {"eq_ne", "return (7 == 7) * 40 + (7 != 7) + 2 * (3 != 2);", 42},
    {"ultu_intr", "return __ultu(1, 0 - 1);", 1},
    {"unary", "return -(-42) + ~0 + 1;", 42},
    {"lognot", "return !0 * 41 + !!7;", 42},
    {"shortcircuit_and", "var x: int = 0;\n"
                         "if ((x != 0) && (1 / x) > 0) { return 1; }\n"
                         "return 42;", 42},
    {"shortcircuit_or", "var x: int = 1;\n"
                        "if ((x == 1) || (1 / 0) > 0) { return 42; }\n"
                        "return 0;", 42},
    {"while_sum", "var s: int = 0; var i: int = 1;\n"
                  "while (i <= 6) { s = s + i; i = i + 1; }\n"
                  "return s * 2;", 42},
    {"break_continue", "var s: int = 0; var i: int = 0;\n"
                       "while (1 == 1) {\n"
                       "  i = i + 1;\n"
                       "  if (i > 10) { break; }\n"
                       "  if ((i % 2) == 0) { continue; }\n"
                       "  s = s + i;\n"
                       "}\n"
                       "return s + 17;", 42}, // 1+3+5+7+9 = 25
    {"nested_if", "var a: int = 5;\n"
                  "if (a > 3) { if (a < 10) { return 42; } }\n"
                  "return 0;", 42},
    {"local_array", "var a: int[4];\n"
                    "a[0] = 40; a[1] = 2;\n"
                    "return a[0] + a[1];", 42},
    {"byte_truncation", "var b: byte = 300;\n"
                        "return b;", 44}, // 300 & 0xff
    {"byte_cast", "return (0x1ff as byte) + 0xff - 0x1fc;", 2},
    {"pointer_walk", "var a: int[3];\n"
                     "a[0] = 1; a[1] = 2; a[2] = 39;\n"
                     "var p: int* = &a[0];\n"
                     "p = p + 2;\n"
                     "return *p + a[1] + a[0];", 42},
    {"pointer_deref_store", "var a: int[2];\n"
                            "var p: int* = &a[1];\n"
                            "*p = 42;\n"
                            "return a[1];", 42},
    {"char_literals", "return 'z' - 'a' + 17;", 42},
    {"hex_mask32", "return ((0xdeadbeef * 3) & 0xff);", (0xdeadbeef * 3) & 0xff},
    {"precedence", "return 2 + 3 * 4 - 20 / 4 + (1 << 5) - 3 % 2;", 40},
    {"recursion", "return 0;", 0},
};

class SemanticsSweep
    : public ::testing::TestWithParam<std::tuple<SemCase, IsaId>>
{
};

TEST_P(SemanticsSweep, InterpreterAndGuestAgree)
{
    const auto &[c, isa] = GetParam();
    const std::string src =
        std::string("fn main(): int {\n") + c.body + "\n}\n";

    // IR interpreter (software layer).
    auto fr = mcl::compileToIr(src, IsaSpec::get(isa).xlen);
    ASSERT_TRUE(fr.ok) << fr.error;
    IrInterp interp(fr.module);
    InterpResult ir = interp.run();
    ASSERT_EQ(ir.stop, StopReason::Exited) << ir.error;
    EXPECT_EQ(ir.exitCode, static_cast<uint32_t>(c.expect)) << c.name;

    // Guest binary on the functional emulator.
    auto build = mcl::buildUserProgram(src, isa);
    ASSERT_TRUE(build.ok) << build.error;
    Program sys = buildSystemImage(buildKernel(isa), build.program);
    ArchConfig cfg;
    cfg.isa = isa;
    ArchSim sim(cfg);
    sim.load(sys);
    ArchRunResult r = sim.run();
    ASSERT_EQ(r.stop, StopReason::Exited) << r.exceptionMsg;
    EXPECT_EQ(r.output.exitCode, static_cast<uint32_t>(c.expect))
        << c.name << " on " << isaName(isa);
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, SemanticsSweep,
    ::testing::Combine(::testing::ValuesIn(semCases),
                       ::testing::Values(IsaId::Av32, IsaId::Av64)),
    [](const auto &info) {
        return std::string(std::get<0>(info.param).name) + "_" +
               isaName(std::get<1>(info.param));
    });

// ---- backend specifics -------------------------------------------------------

TEST(Backend, EmitsAssemblableTextForBothIsas)
{
    const char *src = R"(
        var g: int = 3;
        fn helper(a: int, b: int, c: int, d: int): int {
            return a + b + c + d;
        }
        fn main(): int {
            return helper(g, 2, 3, 4);
        }
    )";
    for (IsaId isa : {IsaId::Av32, IsaId::Av64}) {
        auto b = mcl::buildUserProgram(src, isa);
        ASSERT_TRUE(b.ok) << b.error;
        EXPECT_NE(b.asmText.find("helper:"), std::string::npos);
        EXPECT_NE(b.asmText.find("_start:"), std::string::npos);
        EXPECT_GT(b.program.totalBytes(), 100u);
    }
}

TEST(Backend, LargeConstantsMaterialise)
{
    const char *src =
        "fn main(): int { return (0x12345678 & 0xff) + 1; }";
    for (IsaId isa : {IsaId::Av32, IsaId::Av64}) {
        auto b = mcl::buildUserProgram(src, isa);
        ASSERT_TRUE(b.ok) << b.error;
        Program sys = buildSystemImage(buildKernel(isa), b.program);
        ArchConfig cfg;
        cfg.isa = isa;
        ArchSim sim(cfg);
        sim.load(sys);
        EXPECT_EQ(sim.run().output.exitCode, 0x79u);
    }
}

TEST(Backend, DeepExpressionSpillsWork)
{
    // Deep enough to exhaust callee-saved homes on av32.
    std::string body = "var a: int = 1;";
    for (int i = 0; i < 20; ++i)
        body += strprintf("var v%d: int = a + %d;", i, i);
    body += "return v0 + v19;"; // 1 + 1+19 = 21
    const std::string src = "fn main(): int {" + body + "}";
    auto b = mcl::buildUserProgram(src, IsaId::Av32);
    ASSERT_TRUE(b.ok) << b.error;
    Program sys = buildSystemImage(buildKernel(IsaId::Av32), b.program);
    ArchConfig cfg;
    cfg.isa = IsaId::Av32;
    ArchSim sim(cfg);
    sim.load(sys);
    EXPECT_EQ(sim.run().output.exitCode, 21u);
}

TEST(Runtime, PrintIntFormatsCorrectly)
{
    const char *src = R"(
        fn main(): int {
            print_int(0); print_nl();
            print_int(42); print_nl();
            print_int(0 - 12345); print_nl();
            print_hex(0xbeef, 4); print_nl();
            return 0;
        }
    )";
    auto fr = mcl::compileToIr(src, 64);
    ASSERT_TRUE(fr.ok) << fr.error;
    IrInterp interp(fr.module);
    InterpResult r = interp.run();
    ASSERT_EQ(r.stop, StopReason::Exited);
    std::string out(r.output.begin(), r.output.end());
    EXPECT_EQ(out, "0\n42\n-12345\nbeef\n");
}

TEST(Runtime, WriteWords32IsPortable)
{
    const char *src = R"(
        var v: int[3];
        fn main(): int {
            v[0] = 1; v[1] = 0x01020304; v[2] = 0 - 1;
            write_words32(&v[0], 3);
            return 0;
        }
    )";
    std::string out32, out64;
    for (IsaId isa : {IsaId::Av32, IsaId::Av64}) {
        auto b = mcl::buildUserProgram(src, isa);
        ASSERT_TRUE(b.ok) << b.error;
        Program sys = buildSystemImage(buildKernel(isa), b.program);
        ArchConfig cfg;
        cfg.isa = isa;
        ArchSim sim(cfg);
        sim.load(sys);
        ArchRunResult r = sim.run();
        ASSERT_EQ(r.stop, StopReason::Exited);
        ASSERT_EQ(r.output.dma.size(), 12u);
        (isa == IsaId::Av32 ? out32 : out64)
            .assign(r.output.dma.begin(), r.output.dma.end());
    }
    EXPECT_EQ(out32, out64);
}

} // namespace
} // namespace vstack
