/**
 * @file
 * Guest-kernel tests: syscall semantics, write() bounds checking and
 * staging, dcache-clean behaviour, and trap save/restore integrity.
 */
#include <gtest/gtest.h>

#include "arch/archsim.h"
#include "compiler/compile.h"
#include "kernel/kernel.h"
#include "support/logging.h"

namespace vstack
{
namespace
{

ArchRunResult
runGuest(const std::string &src, IsaId isa = IsaId::Av64)
{
    mcl::BuildResult b = mcl::buildUserProgram(src, isa);
    EXPECT_TRUE(b.ok) << b.error;
    Program sys = buildSystemImage(buildKernel(isa), b.program);
    ArchConfig cfg;
    cfg.isa = isa;
    ArchSim sim(cfg);
    sim.load(sys);
    return sim.run();
}

TEST(Kernel, WriteReturnsLength)
{
    ArchRunResult r = runGuest(R"(
        const msg: byte[] = "hello";
        fn main(): int { return write(msg, 5); }
    )");
    ASSERT_EQ(r.stop, StopReason::Exited);
    EXPECT_EQ(r.output.exitCode, 5u);
    EXPECT_EQ(std::string(r.output.dma.begin(), r.output.dma.end()),
              "hello");
}

TEST(Kernel, WriteRejectsKernelAddresses)
{
    // Pointing write() at kernel memory must fail politely (-1), not
    // leak kernel bytes or crash.
    ArchRunResult r = runGuest(R"(
        fn main(): int {
            var rc: int = __syscall(1, 0x100, 16);
            if (rc == 0 - 1) { return 77; }
            return 1;
        }
    )");
    ASSERT_EQ(r.stop, StopReason::Exited);
    EXPECT_EQ(r.output.exitCode, 77u);
    EXPECT_TRUE(r.output.dma.empty());
}

TEST(Kernel, WriteRejectsNegativeAndHugeLengths)
{
    ArchRunResult r = runGuest(R"(
        var buf: byte[4];
        fn main(): int {
            var bad: int = 0;
            if (__syscall(1, &buf[0] as int, 0 - 5) != 0 - 1) { bad = 1; }
            if (__syscall(1, &buf[0] as int, 100000) != 0 - 1) { bad = 1; }
            if (__syscall(1, &buf[0] as int, 0) != 0) { bad = 1; }
            return bad;
        }
    )");
    ASSERT_EQ(r.stop, StopReason::Exited);
    EXPECT_EQ(r.output.exitCode, 0u);
}

TEST(Kernel, UnknownSyscallReturnsEnosys)
{
    ArchRunResult r = runGuest(R"(
        fn main(): int {
            if (__syscall(99, 0, 0) == 0 - 38) { return 0; }
            return 1;
        }
    )");
    ASSERT_EQ(r.stop, StopReason::Exited);
    EXPECT_EQ(r.output.exitCode, 0u);
}

TEST(Kernel, ManyWritesConcatenateInOrder)
{
    ArchRunResult r = runGuest(R"(
        fn main(): int {
            var b: byte[1];
            var i: int = 0;
            while (i < 26) {
                b[0] = 97 + i;
                write(&b[0], 1);
                i = i + 1;
            }
            return 0;
        }
    )");
    ASSERT_EQ(r.stop, StopReason::Exited);
    EXPECT_EQ(std::string(r.output.dma.begin(), r.output.dma.end()),
              "abcdefghijklmnopqrstuvwxyz");
}

TEST(Kernel, StagingCursorWrapsOnOverflow)
{
    // Write more than the 64 KiB staging buffer in total; the cursor
    // wraps and every payload still arrives intact.
    ArchRunResult r = runGuest(R"(
        var buf: byte[512];
        fn main(): int {
            var i: int = 0;
            while (i < 512) { buf[i] = i & 0xff; i = i + 1; }
            var k: int = 0;
            var total: int = 0;
            while (k < 140) {          // 140 * 512 = 70 KiB > 64 KiB
                total = total + write(&buf[0], 512);
                k = k + 1;
            }
            if (total == 140 * 512) { return 0; }
            return 1;
        }
    )");
    ASSERT_EQ(r.stop, StopReason::Exited);
    EXPECT_EQ(r.output.exitCode, 0u);
    ASSERT_EQ(r.output.dma.size(), 140u * 512u);
    // Spot-check payload integrity at both ends.
    EXPECT_EQ(r.output.dma[0], 0u);
    EXPECT_EQ(r.output.dma[511], 255u);
    EXPECT_EQ(r.output.dma[139 * 512 + 17], 17u);
}

TEST(Kernel, TrapPreservesUserRegisters)
{
    // Callee-saved user state must survive a syscall (the trap stub
    // banks sp/lr; the compiled handler preserves callee-saved regs).
    ArchRunResult r = runGuest(R"(
        var sink: byte[1];
        fn main(): int {
            var a: int = 111; var b: int = 222; var c: int = 333;
            var d: int = 444; var e: int = 555; var f: int = 666;
            sink[0] = 'x';
            write(&sink[0], 1);
            if (a + b + c + d + e + f == 2331) { return 0; }
            return 1;
        }
    )");
    ASSERT_EQ(r.stop, StopReason::Exited);
    EXPECT_EQ(r.output.exitCode, 0u);
}

TEST(Kernel, BuildsForBothIsasWithinStubBudget)
{
    // buildKernel() fatals if the trap stub overflows KERNEL_FUNCS;
    // both builds must also stay inside kernel space.
    for (IsaId isa : {IsaId::Av32, IsaId::Av64}) {
        Program k = buildKernel(isa);
        EXPECT_EQ(k.entry, memmap::BOOT_VECTOR);
        EXPECT_TRUE(k.hasSymbol("k_syscall"));
        EXPECT_LT(k.highWatermark(), memmap::USER_BASE);
    }
}

TEST(Kernel, ExitCodePathIsExact)
{
    for (int code : {0, 1, 42, 255, 65535}) {
        ArchRunResult r = runGuest(
            strprintf("fn main(): int { return %d; }", code));
        ASSERT_EQ(r.stop, StopReason::Exited);
        EXPECT_EQ(r.output.exitCode, static_cast<uint32_t>(code));
    }
}

} // namespace
} // namespace vstack
