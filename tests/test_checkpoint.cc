/**
 * @file
 * Campaign-accelerator tests: checkpoint/restore fast-forward and
 * golden-trace early termination must be invisible in the results —
 * every sample record bit-identical to the cold path — across all
 * three injection layers, all execution modes, and resume.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "arch/pvf.h"
#include "compiler/compile.h"
#include "gefin/campaign.h"
#include "kernel/kernel.h"
#include "support/fastpath.h"
#include "support/logging.h"
#include "swfi/svf.h"
#include "workloads/workloads.h"

namespace vstack
{
namespace
{

Program
systemImage(const std::string &wl, IsaId isa)
{
    mcl::BuildResult b =
        mcl::buildUserProgram(findWorkload(wl).source, isa);
    EXPECT_TRUE(b.ok) << b.error;
    return buildSystemImage(buildKernel(isa), b.program);
}

bool
operator==(const OutcomeCounts &a, const OutcomeCounts &b)
{
    return a.masked == b.masked && a.sdc == b.sdc && a.crash == b.crash &&
           a.detected == b.detected &&
           a.injectorErrors == b.injectorErrors;
}

bool
operator==(const UarchCampaignResult &a, const UarchCampaignResult &b)
{
    return a.outcomes == b.outcomes && a.fpms.wd == b.fpms.wd &&
           a.fpms.wi == b.fpms.wi && a.fpms.woi == b.fpms.woi &&
           a.fpms.esc == b.fpms.esc && a.hwMasked == b.hwMasked &&
           a.samples == b.samples;
}

exec::CheckpointPolicy
disabledPolicy()
{
    exec::CheckpointPolicy p;
    p.enabled = false;
    p.earlyStop = false;
    return p;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    return true;
}

// ---- microarchitectural layer ----------------------------------------------

TEST(CheckpointUarchTest, RestoredRunsMatchColdPerCoreAndStructure)
{
    struct Case
    {
        const char *core;
        const char *wl;
        IsaId isa;
    };
    for (const Case &c : {Case{"ax72", "sha", IsaId::Av64},
                          Case{"ax9", "qsort", IsaId::Av32}}) {
        UarchCampaign campaign(coreByName(c.core),
                               systemImage(c.wl, c.isa));
        campaign.ensureTrace();
        ASSERT_TRUE(campaign.trace().recorded());
        CycleSim accel(coreByName(c.core));
        CycleSim cold(coreByName(c.core));
        for (Structure s : allStructures) {
            for (const FaultSite &site :
                 campaign.sampleSites(s, 6, 21)) {
                Visibility va, vc;
                const Outcome oa = campaign.runOneOn(accel, site, va);
                const Outcome oc =
                    campaign.runOneColdOn(cold, site, vc);
                ASSERT_EQ(oa, oc)
                    << c.core << "/" << structureName(s) << " cycle "
                    << site.cycle << " bit " << site.bit;
                ASSERT_EQ(va.visible, vc.visible);
                if (va.visible) {
                    ASSERT_EQ(va.fpm, vc.fpm);
                    ASSERT_EQ(va.cycle, vc.cycle);
                }
            }
        }
    }
}

TEST(CheckpointUarchTest, AcceleratedCampaignMatchesColdAcrossExecModes)
{
    const Program image = systemImage("sha", IsaId::Av64);
    UarchCampaign accel(coreByName("ax72"), image);
    UarchCampaign cold(coreByName("ax72"), image);
    cold.setCheckpointPolicy(disabledPolicy());

    const auto ref = cold.run(Structure::RF, 40, 7);
    EXPECT_TRUE(ref == accel.run(Structure::RF, 40, 7));

    exec::ExecConfig four;
    four.jobs = 4;
    EXPECT_TRUE(ref == accel.run(Structure::RF, 40, 7, four));

    exec::ExecConfig iso;
    iso.isolate = true;
    iso.jobs = 2;
    iso.sandbox.batch = 8;
    EXPECT_TRUE(ref == accel.run(Structure::RF, 40, 7, iso));
}

TEST(CheckpointUarchTest, EarlyStopMatchesRunToExitAcrossSeeds)
{
    const Program image = systemImage("qsort", IsaId::Av64);
    UarchCampaign stopping(coreByName("ax72"), image);
    UarchCampaign running(coreByName("ax72"), image);
    exec::CheckpointPolicy noStop;
    noStop.earlyStop = false;
    running.setCheckpointPolicy(noStop);
    for (uint64_t seed : {1, 2, 3, 4}) {
        EXPECT_TRUE(running.run(Structure::RF, 25, seed) ==
                    stopping.run(Structure::RF, 25, seed))
            << "seed " << seed;
    }
}

TEST(CheckpointUarchTest, ResumeMatchesUninterrupted)
{
    const std::string dir =
        "/tmp/vstack_ckpt_resume_test." + std::to_string(getpid());
    std::filesystem::remove_all(dir);
    UarchCampaign campaign(coreByName("ax72"),
                           systemImage("qsort", IsaId::Av64));
    ASSERT_TRUE(campaign.checkpointPolicy().enabled)
        << "acceleration must be the default";
    const auto uninterrupted = campaign.run(Structure::RF, 30, 3);

    // Journal a full accelerated run, then chop the journal to a
    // prefix to model a kill mid-campaign.
    const std::string path = exec::Journal::pathFor(dir, "ck");
    {
        exec::Journal j;
        ASSERT_TRUE(j.open(path, "ck", 30, 3, false));
        exec::ExecConfig ec;
        ec.journal = &j;
        campaign.run(Structure::RF, 30, 3, ec);
    }
    std::string text;
    ASSERT_TRUE(readFile(path, text));
    size_t cut = 0;
    for (int lines = 0; lines < 12; ++lines)
        cut = text.find('\n', cut) + 1;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << text.substr(0, cut);
    }

    exec::Journal j;
    ASSERT_TRUE(j.open(path, "ck", 30, 3, true));
    EXPECT_EQ(j.replayed(), 11u);
    exec::ExecConfig ec;
    ec.journal = &j;
    ec.jobs = 2;
    EXPECT_TRUE(campaign.run(Structure::RF, 30, 3, ec) == uninterrupted);
    std::filesystem::remove_all(dir);
}

TEST(CheckpointUarchTest, SampleSitesStayInLiveCycleRange)
{
    UarchCampaign campaign(coreByName("ax72"),
                           systemImage("sha", IsaId::Av64));
    const uint64_t cycles = campaign.golden().cycles;
    ASSERT_GT(cycles, 1u);
    for (const FaultSite &site :
         campaign.sampleSites(Structure::RF, 400, 17)) {
        // The exit cycle itself is dead: a flip there can never
        // manifest, and the checkpoint trace has no grid past it.
        EXPECT_GE(site.cycle, 1u);
        EXPECT_LE(site.cycle, cycles - 1);
    }
}

TEST(CheckpointUarchTest, VerifyCheckpointAuditPasses)
{
    UarchCampaign campaign(coreByName("ax72"),
                           systemImage("sha", IsaId::Av64));
    exec::CheckpointPolicy p;
    p.verifyPercent = 100.0;
    campaign.setCheckpointPolicy(p);
    EXPECT_NO_THROW(campaign.run(Structure::RF, 20, 3));
}

TEST(CheckpointUarchTest, VerifyCheckpointDetectsForcedDivergence)
{
    UarchCampaign campaign(coreByName("ax72"),
                           systemImage("sha", IsaId::Av64));
    exec::CheckpointPolicy p;
    p.verifyPercent = 100.0;
    campaign.setCheckpointPolicy(p);
    campaign.ensureTrace();
    // Corrupt the recorded golden result: every early-stopped sample
    // now synthesizes a wrong exit code and classifies differently
    // from its cold reference, which the 100% audit must catch.
    const_cast<UarchRunResult &>(campaign.trace().final)
        .output.exitCode ^= 0x40;
    EXPECT_THROW(campaign.run(Structure::RF, 30, 3),
                 CheckpointDivergence);
}

// ---- architectural layer (PVF) ---------------------------------------------

TEST(CheckpointPvfTest, RestoredRunsMatchCold)
{
    ArchConfig cfg;
    cfg.isa = IsaId::Av64;
    PvfCampaign campaign(systemImage("sha", IsaId::Av64), cfg);
    campaign.ensureTrace();
    ASSERT_TRUE(campaign.trace().recorded());
    ArchSim accel(cfg);
    ArchSim cold(cfg);
    for (Fpm f : {Fpm::WD, Fpm::WI, Fpm::WOI}) {
        for (uint64_t seed = 1; seed <= 10; ++seed) {
            Rng ra(seed * 77 + static_cast<uint64_t>(f));
            Rng rc(seed * 77 + static_cast<uint64_t>(f));
            ASSERT_EQ(campaign.runOneOn(accel, f, ra),
                      campaign.runOneColdOn(cold, f, rc))
                << fpmName(f) << " seed " << seed;
        }
    }
}

TEST(CheckpointPvfTest, AcceleratedCampaignMatchesColdAcrossSeeds)
{
    ArchConfig cfg;
    cfg.isa = IsaId::Av64;
    const Program image = systemImage("qsort", IsaId::Av64);
    PvfCampaign accel(image, cfg);
    PvfCampaign cold(image, cfg);
    cold.setCheckpointPolicy(disabledPolicy());
    for (uint64_t seed : {5, 6}) {
        const auto ref = cold.run(Fpm::WD, 30, seed);
        EXPECT_TRUE(ref == accel.run(Fpm::WD, 30, seed));
        exec::ExecConfig four;
        four.jobs = 4;
        EXPECT_TRUE(ref == accel.run(Fpm::WD, 30, seed, four));
    }
}

TEST(CheckpointPvfTest, VerifyCheckpointDetectsForcedDivergence)
{
    ArchConfig cfg;
    cfg.isa = IsaId::Av64;
    PvfCampaign campaign(systemImage("sha", IsaId::Av64), cfg);
    exec::CheckpointPolicy p;
    p.verifyPercent = 100.0;
    campaign.setCheckpointPolicy(p);
    campaign.ensureTrace();
    // Shift every golden DMA-length mark: an early-stopped clean
    // sample now fails the emitted-prefix comparison and classifies
    // Sdc, diverging from its cold (Masked) reference.
    for (uint64_t &len :
         const_cast<ArchTrace &>(campaign.trace()).dmaLens)
        len += 1;
    EXPECT_THROW(campaign.run(Fpm::WD, 40, 3), CheckpointDivergence);
}

// ---- software layer (SVF) --------------------------------------------------

TEST(CheckpointSvfTest, RestoredRunsMatchCold)
{
    mcl::FrontendResult fr =
        mcl::compileToIr(findWorkload("sha").source, 64);
    ASSERT_TRUE(fr.ok);
    SvfCampaign campaign(fr.module);
    campaign.ensureTrace();
    ASSERT_TRUE(campaign.trace().recorded());
    IrInterp accel(fr.module);
    IrInterp cold(fr.module);
    Rng rng(99);
    for (int i = 0; i < 25; ++i) {
        const uint64_t step =
            rng.uniform(campaign.golden().valueSteps);
        const int bit = static_cast<int>(rng.uniform(64));
        ASSERT_EQ(campaign.runOneOn(accel, step, bit),
                  campaign.runOneColdOn(cold, step, bit))
            << "value step " << step << " bit " << bit;
    }
}

TEST(CheckpointSvfTest, AcceleratedCampaignMatchesColdAcrossExecModes)
{
    mcl::FrontendResult fr =
        mcl::compileToIr(findWorkload("qsort").source, 64);
    ASSERT_TRUE(fr.ok);
    SvfCampaign accel(fr.module);
    SvfCampaign cold(fr.module);
    cold.setCheckpointPolicy(disabledPolicy());

    const auto ref = cold.run(60, 13);
    EXPECT_TRUE(ref == accel.run(60, 13));

    exec::ExecConfig four;
    four.jobs = 4;
    EXPECT_TRUE(ref == accel.run(60, 13, four));

    exec::ExecConfig iso;
    iso.isolate = true;
    iso.jobs = 2;
    iso.sandbox.batch = 8;
    EXPECT_TRUE(ref == accel.run(60, 13, iso));
}

TEST(CheckpointSvfTest, VerifyCheckpointAuditPasses)
{
    mcl::FrontendResult fr =
        mcl::compileToIr(findWorkload("sha").source, 64);
    ASSERT_TRUE(fr.ok);
    SvfCampaign campaign(fr.module);
    exec::CheckpointPolicy p;
    p.verifyPercent = 100.0;
    campaign.setCheckpointPolicy(p);
    EXPECT_NO_THROW(campaign.run(40, 13));
}

TEST(CheckpointSvfTest, VerifyCheckpointDetectsForcedDivergence)
{
    mcl::FrontendResult fr =
        mcl::compileToIr(findWorkload("sha").source, 64);
    ASSERT_TRUE(fr.ok);
    SvfCampaign campaign(fr.module);
    exec::CheckpointPolicy p;
    p.verifyPercent = 100.0;
    campaign.setCheckpointPolicy(p);
    campaign.ensureTrace();
    const_cast<InterpResult &>(campaign.trace().final).exitCode ^= 0x40;
    EXPECT_THROW(campaign.run(40, 13), CheckpointDivergence);
}

// ---- fast-path escape hatch --------------------------------------------

/** Densifying the restore grid must not move the digest grid: early
 *  termination decisions depend only on checkpoints x
 *  digestsPerCheckpoint, which densify() keeps invariant. */
TEST(FastPathEscapeHatch, DensifyKeepsDigestGridInvariant)
{
    exec::CheckpointPolicy sparse, dense;
    dense.densify(true);
    EXPECT_EQ(dense.checkpoints,
              sparse.checkpoints * sparse.digestsPerCheckpoint);
    EXPECT_EQ(dense.digestsPerCheckpoint, 1u);
    for (uint64_t units : {1ull, 997ull, 50'000ull, 2'000'000ull})
        EXPECT_EQ(dense.digestInterval(units),
                  sparse.digestInterval(units))
            << units;

    exec::CheckpointPolicy hatch;
    hatch.densify(false);
    EXPECT_EQ(hatch.checkpoints, sparse.checkpoints);
    EXPECT_EQ(hatch.digestsPerCheckpoint, sparse.digestsPerCheckpoint);
}

/**
 * The whole escape hatch at campaign granularity: a campaign built
 * and run with the fast path on (hardware CRC, staged digests, dense
 * restore grid) must produce results identical to one built and run
 * under VSTACK_FASTPATH=0 semantics (reference CRC, pre-fastpath
 * digesting, sparse grid).  This is the test behind the doctrine that
 * the hatch changes cost, never results.
 */
TEST(FastPathEscapeHatch, UarchCampaignIdenticalHatchOpenOrClosed)
{
    const Program image = systemImage("sha", IsaId::Av64);
    const bool was = fastPathEnabled();

    setFastPathEnabled(true);
    UarchCampaign fast(coreByName("ax72"), image);
    exec::CheckpointPolicy dense;
    dense.densify(true);
    fast.setCheckpointPolicy(dense);
    const auto fr = fast.run(Structure::RF, 32, 11);

    setFastPathEnabled(false);
    UarchCampaign slow(coreByName("ax72"), image);
    const auto sr = slow.run(Structure::RF, 32, 11);

    setFastPathEnabled(was);
    EXPECT_TRUE(fr == sr);
}

} // namespace
} // namespace vstack
