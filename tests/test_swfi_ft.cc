/**
 * @file
 * Tests for the software layer: IR interpreter fidelity, SVF
 * campaigns, and the AN-encoding + duplication hardening pass.
 */
#include <gtest/gtest.h>

#include "arch/archsim.h"
#include "compiler/compile.h"
#include "ft/harden.h"
#include "kernel/kernel.h"
#include "swfi/interp.h"
#include "swfi/svf.h"
#include "workloads/workloads.h"

namespace vstack
{
namespace
{

ir::Module
irFor(const std::string &wl)
{
    mcl::FrontendResult fr =
        mcl::compileToIr(findWorkload(wl).source, 64);
    EXPECT_TRUE(fr.ok) << fr.error;
    return std::move(fr.module);
}

std::vector<uint8_t>
archOutput(const std::string &wl)
{
    mcl::BuildResult b =
        mcl::buildUserProgram(findWorkload(wl).source, IsaId::Av64);
    EXPECT_TRUE(b.ok) << b.error;
    Program sys = buildSystemImage(buildKernel(IsaId::Av64), b.program);
    ArchConfig cfg;
    ArchSim sim(cfg);
    sim.load(sys);
    ArchRunResult r = sim.run();
    EXPECT_EQ(r.stop, StopReason::Exited);
    return r.output.dma;
}

class InterpVsGuest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(InterpVsGuest, OutputMatchesGuestExecution)
{
    ir::Module m = irFor(GetParam());
    IrInterp interp(m);
    InterpResult r = interp.run();
    ASSERT_EQ(r.stop, StopReason::Exited) << r.error;
    EXPECT_EQ(r.output, archOutput(GetParam()));
}

std::vector<std::string>
names()
{
    std::vector<std::string> out;
    for (const Workload &w : paperWorkloads())
        out.push_back(w.name);
    return out;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, InterpVsGuest,
                         ::testing::ValuesIn(names()),
                         [](const auto &info) { return info.param; });

TEST(Svf, CampaignProducesAllOutcomeKinds)
{
    ir::Module m = irFor("sha");
    SvfCampaign campaign(m);
    OutcomeCounts c = campaign.run(150, 7);
    EXPECT_EQ(c.total(), 150u);
    EXPECT_GT(c.masked, 0u);
    EXPECT_GT(c.sdc + c.crash, 0u);
}

TEST(Svf, DeterministicForSameSeed)
{
    ir::Module m = irFor("qsort");
    SvfCampaign campaign(m);
    OutcomeCounts a = campaign.run(40, 99);
    OutcomeCounts b = campaign.run(40, 99);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.crash, b.crash);
}

class HardenTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(HardenTest, HardenedProgramIsFunctionallyEquivalent)
{
    ir::Module m = irFor(GetParam());
    ir::Module hardened = hardenModule(m, defaultHardenOptions());
    IrInterp plain(m), ft(hardened);
    InterpResult rp = plain.run();
    InterpResult rf = ft.run();
    ASSERT_EQ(rp.stop, StopReason::Exited) << rp.error;
    ASSERT_EQ(rf.stop, StopReason::Exited)
        << rf.error << " detect=" << rf.detectCode;
    EXPECT_EQ(rp.output, rf.output);
    EXPECT_EQ(rp.exitCode, rf.exitCode);
    // The instrumentation must cost something substantial (paper: the
    // technique costs 2-4x).
    EXPECT_GT(rf.steps, rp.steps * 3 / 2);
}

INSTANTIATE_TEST_SUITE_P(CaseStudy, HardenTest,
                         ::testing::Values("sha", "smooth", "qsort"),
                         [](const auto &info) { return info.param; });

TEST(HardenTest, DetectsMostSdcsUnderSvfInjection)
{
    ir::Module m = irFor("sha");
    ir::Module hardened = hardenModule(m, defaultHardenOptions());

    SvfCampaign plain(m), ft(hardened);
    OutcomeCounts cp = plain.run(200, 21);
    OutcomeCounts cf = ft.run(200, 21);

    // Hardening must detect a large share of faults and cut the SDC
    // vulnerability substantially (paper: up to 3.3-3.8x).
    EXPECT_GT(cf.detected, 20u);
    EXPECT_LT(cf.sdcRate(), cp.sdcRate());
}

TEST(HardenTest, HardenedBinaryRunsOnGuest)
{
    ir::Module m = irFor("sha");
    ir::Module hardened = hardenModule(m, defaultHardenOptions());
    mcl::BuildResult b = mcl::buildUserFromIr(hardened, IsaId::Av64);
    ASSERT_TRUE(b.ok) << b.error;
    Program sys = buildSystemImage(buildKernel(IsaId::Av64), b.program);
    ArchConfig cfg;
    ArchSim sim(cfg);
    sim.load(sys);
    ArchRunResult r = sim.run();
    ASSERT_EQ(r.stop, StopReason::Exited) << r.exceptionMsg;
    EXPECT_EQ(r.output.dma, archOutput("sha"));
}

TEST(HardenTest, WorksOnThirtyTwoBitTarget)
{
    mcl::FrontendResult fr =
        mcl::compileToIr(findWorkload("sha").source, 32);
    ASSERT_TRUE(fr.ok);
    ir::Module hardened = hardenModule(fr.module, defaultHardenOptions());
    IrInterp plain(fr.module), ft(hardened);
    InterpResult rp = plain.run();
    InterpResult rf = ft.run();
    ASSERT_EQ(rf.stop, StopReason::Exited) << rf.detectCode;
    EXPECT_EQ(rp.output, rf.output);
}

} // namespace
} // namespace vstack
