/**
 * @file
 * Microarchitectural timing/behaviour tests using bare-metal guest
 * assembly (kernel-mode programs with no OS): store-to-load
 * forwarding, branch-predictor learning, cache-miss costs,
 * serializing instructions, and misprediction squashing.
 */
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "machine/memmap.h"
#include "support/logging.h"
#include "uarch/core.h"

namespace vstack
{
namespace
{

/** Assemble a bare-metal kernel-mode program and run it on a core. */
UarchRunResult
runBare(const std::string &body, const std::string &coreName,
        UarchStats *stats = nullptr)
{
    // Exit protocol: value in x1 -> EXIT_CODE, then HALT.
    const std::string src = strprintf(R"(
        .isa av64
        .org 0x%x
_start:
        li sp, #0x%x
%s
        li x2, #0x%x
        stx x1, [x2, #0]
        halt
)",
                                      memmap::BOOT_VECTOR,
                                      memmap::KERNEL_STACK_TOP,
                                      body.c_str(),
                                      memmap::MMIO_EXIT_CODE);
    AsmResult as = assemble(src, IsaId::Av64, memmap::BOOT_VECTOR);
    EXPECT_TRUE(as.ok) << as.error;
    as.program.entry = memmap::BOOT_VECTOR;

    CycleSim sim(coreByName(coreName));
    sim.load(as.program);
    UarchRunResult r = sim.run(10'000'000);
    if (stats)
        *stats = sim.stats();
    return r;
}

TEST(BareMetal, StoreToLoadForwardingDeliversValue)
{
    UarchRunResult r = runBare(R"(
        li   x3, #0x2000
        li   x1, #1234
        stx  x1, [x3, #0]
        ldx  x1, [x3, #0]    ; must forward from the store queue
    )", "ax72");
    ASSERT_EQ(r.stop, StopReason::Exited) << r.excMsg;
    EXPECT_EQ(r.output.exitCode, 1234u);
}

TEST(BareMetal, PartialOverlapLoadWaitsAndReadsMergedBytes)
{
    UarchRunResult r = runBare(R"(
        li   x3, #0x2000
        li   x1, #0x11223344
        stx  x1, [x3, #0]
        li   x4, #0xff
        stb  x4, [x3, #1]    ; overlaps the word
        ldx  x1, [x3, #0]    ; partial overlap: waits for commit
        li   x5, #0x11ff44
        sub  x1, x1, x5      ; 0x1122ff44? no: byte1 replaced -> 0x1122ff44
        li   x5, #0x11000000
        sub  x1, x1, x5
    )", "ax72");
    ASSERT_EQ(r.stop, StopReason::Exited) << r.excMsg;
    // 0x1122ff44 - 0x11ff44 - 0x11000000 == 0x110000
    EXPECT_EQ(r.output.exitCode, 0x110000u);
}

TEST(BareMetal, BranchPredictorLearnsLoop)
{
    // A hot loop's later iterations must be cheaper than the first
    // pass: compare cycles of 40 vs 400 iterations; scaling should be
    // clearly sub-linear in the mispredict-free regime (amortised
    // cost per iteration lower than 10x total).
    auto cyclesFor = [&](int iters) {
        UarchStats stats;
        UarchRunResult r = runBare(strprintf(R"(
        li   x4, #%d
        li   x1, #0
loop:
        addi x1, x1, #1
        bne  x1, x4, loop
)", iters), "ax72", &stats);
        EXPECT_EQ(r.stop, StopReason::Exited);
        return r.cycles;
    };
    const uint64_t small = cyclesFor(40);
    const uint64_t big = cyclesFor(400);
    EXPECT_LT(big, small * 10);
}

TEST(BareMetal, MispredictsAreCounted)
{
    // A data-dependent unpredictable branch pattern.
    UarchStats stats;
    UarchRunResult r = runBare(R"(
        li   x4, #200
        li   x1, #0
        li   x5, #1103515245
        li   x6, #12345
        li   x7, #0
loop:
        mul  x7, x7, x5
        add  x7, x7, x6
        lsri x8, x7, #16
        andi x8, x8, #1
        beq  x8, xzr, skip   ; ~50% taken
        addi x1, x1, #1
skip:
        addi x4, x4, #-1
        bne  x4, xzr, loop
    )", "ax72", &stats);
    ASSERT_EQ(r.stop, StopReason::Exited) << r.excMsg;
    EXPECT_GT(stats.mispredicts, 20u);
    EXPECT_GT(stats.squashedUops, stats.mispredicts);
}

TEST(BareMetal, CacheMissCostsShowUp)
{
    // Striding over 64-byte lines misses; rereading the same line
    // hits.  Compare cycles per load.
    auto cyclesFor = [&](int strideLines) {
        UarchRunResult r = runBare(strprintf(R"(
        li   x4, #64
        li   x3, #0x4000
        li   x1, #0
loop:
        ldx  x5, [x3, #0]
        add  x1, x1, x5
        addi x3, x3, #%d
        addi x4, x4, #-1
        bne  x4, xzr, loop
)", strideLines * 64), "ax57");
        EXPECT_EQ(r.stop, StopReason::Exited);
        return r.cycles;
    };
    const uint64_t hits = cyclesFor(0);
    const uint64_t misses = cyclesFor(1);
    // The OoO core overlaps independent misses (memory-level
    // parallelism), so the amortised penalty is a few cycles per
    // line, not the full memory latency.
    EXPECT_GT(misses, hits + 64u * 2u);
}

TEST(BareMetal, SyscallSerializesAndTraps)
{
    // Minimal two-privilege system: boot drops to a user payload via
    // mtepc/eret; the payload raises a syscall; the handler finishes
    // the run through the MMIO exit port.
    const std::string src = strprintf(R"(
        .isa av64
        .org 0x%x
_start:
        li   x3, #0x%x
        mtepc x3
        eret
        .org 0x%x
trap:
        addi x1, x1, #35
        li   x2, #0x%x
        stx  x1, [x2, #0]
        halt
        .org 0x%x
user:
        li   x1, #7
        syscall
hang:   b hang
)",
                                      memmap::BOOT_VECTOR,
                                      memmap::USER_TEXT,
                                      memmap::TRAP_VECTOR,
                                      memmap::MMIO_EXIT_CODE,
                                      memmap::USER_TEXT);
    AsmResult as = assemble(src, IsaId::Av64, memmap::BOOT_VECTOR);
    ASSERT_TRUE(as.ok) << as.error;
    as.program.entry = memmap::BOOT_VECTOR;
    CycleSim sim(coreByName("ax57"));
    sim.load(as.program);
    UarchRunResult r = sim.run(1'000'000);
    ASSERT_EQ(r.stop, StopReason::Exited) << r.excMsg;
    EXPECT_EQ(r.output.exitCode, 42u);
    EXPECT_GT(r.kernelInsts, 0u);
}

TEST(BareMetal, UndefinedInstructionCrashes)
{
    const std::string src = strprintf(R"(
        .isa av64
        .org 0x%x
_start:
        nop
        .word 0xfc000000    ; undefined opcode
        nop
)", memmap::BOOT_VECTOR);
    AsmResult as = assemble(src, IsaId::Av64, memmap::BOOT_VECTOR);
    ASSERT_TRUE(as.ok) << as.error;
    as.program.entry = memmap::BOOT_VECTOR;
    CycleSim sim(coreByName("ax72"));
    sim.load(as.program);
    UarchRunResult r = sim.run(1'000'000);
    EXPECT_EQ(r.stop, StopReason::Exception);
    EXPECT_NE(r.excMsg.find("undefined"), std::string::npos);
}

TEST(BareMetal, WrongPathFaultIsSquashedHarmlessly)
{
    // A load behind a never-taken branch targets an invalid address;
    // the mispredicted-path fault must never surface.
    UarchRunResult r = runBare(R"(
        li   x1, #42
        li   x3, #0
        li   x6, #100
loop:
        beq  x3, xzr, good    ; always taken; predictor may miss once
        li   x9, #0xff000000
        ldx  x9, [x9, #0]     ; wrong-path poison load
good:
        addi x6, x6, #-1
        bne  x6, xzr, loop
    )", "ax72");
    ASSERT_EQ(r.stop, StopReason::Exited) << r.excMsg;
    EXPECT_EQ(r.output.exitCode, 42u);
}

TEST(BareMetal, WiderCoreRetiresFasterOnIlp)
{
    const std::string body = R"(
        li   x4, #200
        li   x1, #0
        li   x5, #1
        li   x6, #2
        li   x7, #3
loop:
        add  x9, x5, x6
        add  x10, x6, x7
        add  x11, x5, x7
        add  x12, x9, x10
        add  x1, x1, x11
        addi x4, x4, #-1
        bne  x4, xzr, loop
    )";
    // av64 cores only (body uses x-names): ax57 (3-wide) vs ax72.
    UarchRunResult narrow = runBare(body, "ax57");
    UarchRunResult wide = runBare(body, "ax72");
    ASSERT_EQ(narrow.stop, StopReason::Exited);
    ASSERT_EQ(wide.stop, StopReason::Exited);
    EXPECT_LE(wide.cycles, narrow.cycles + 50);
}

} // namespace
} // namespace vstack
