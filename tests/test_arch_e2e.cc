/**
 * @file
 * End-to-end tests: every workload compiles for both ISAs, boots the
 * guest kernel, runs to a clean exit on the functional emulator, and
 * produces identical output across register widths.
 */
#include <gtest/gtest.h>

#include "arch/archsim.h"
#include "compiler/compile.h"
#include "kernel/kernel.h"
#include "workloads/workloads.h"

namespace vstack
{
namespace
{

ArchRunResult
runWorkload(const std::string &name, IsaId isa, std::string *dmaOut = nullptr)
{
    const Workload &w = findWorkload(name);
    mcl::BuildResult build = mcl::buildUserProgram(w.source, isa);
    EXPECT_TRUE(build.ok) << name << ": " << build.error;
    if (!build.ok)
        return {};
    Program sys = buildSystemImage(buildKernel(isa), build.program);
    ArchConfig cfg;
    cfg.isa = isa;
    ArchSim sim(cfg);
    sim.load(sys);
    ArchRunResult r = sim.run();
    if (dmaOut)
        dmaOut->assign(r.output.dma.begin(), r.output.dma.end());
    return r;
}

class WorkloadE2E : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadE2E, RunsCleanlyOnAv64)
{
    ArchRunResult r = runWorkload(GetParam(), IsaId::Av64);
    EXPECT_EQ(r.stop, StopReason::Exited) << r.exceptionMsg;
    EXPECT_FALSE(r.output.dma.empty());
    EXPECT_GT(r.instCount, 1000u);
    EXPECT_GT(r.kernelInsts, 0u);
}

TEST_P(WorkloadE2E, RunsCleanlyOnAv32)
{
    ArchRunResult r = runWorkload(GetParam(), IsaId::Av32);
    EXPECT_EQ(r.stop, StopReason::Exited) << r.exceptionMsg;
    EXPECT_FALSE(r.output.dma.empty());
}

TEST_P(WorkloadE2E, OutputMatchesAcrossIsas)
{
    std::string out32, out64;
    ArchRunResult r64 = runWorkload(GetParam(), IsaId::Av64, &out64);
    ArchRunResult r32 = runWorkload(GetParam(), IsaId::Av32, &out32);
    ASSERT_EQ(r64.stop, StopReason::Exited) << r64.exceptionMsg;
    ASSERT_EQ(r32.stop, StopReason::Exited) << r32.exceptionMsg;
    EXPECT_EQ(out32, out64);
    EXPECT_EQ(r32.output.exitCode, r64.output.exitCode);
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        names.push_back(w.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadE2E,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

TEST(ArchE2E, ExitCodePropagates)
{
    const char *src = "fn main(): int { return 42; }";
    mcl::BuildResult build = mcl::buildUserProgram(src, IsaId::Av64);
    ASSERT_TRUE(build.ok) << build.error;
    Program sys = buildSystemImage(buildKernel(IsaId::Av64), build.program);
    ArchConfig cfg;
    ArchSim sim(cfg);
    sim.load(sys);
    ArchRunResult r = sim.run();
    EXPECT_EQ(r.stop, StopReason::Exited) << r.exceptionMsg;
    EXPECT_EQ(r.output.exitCode, 42u);
}

TEST(ArchE2E, DetectSyscallStopsRun)
{
    const char *src = "fn main(): int { detect(7); return 0; }";
    mcl::BuildResult build = mcl::buildUserProgram(src, IsaId::Av64);
    ASSERT_TRUE(build.ok) << build.error;
    Program sys = buildSystemImage(buildKernel(IsaId::Av64), build.program);
    ArchConfig cfg;
    ArchSim sim(cfg);
    sim.load(sys);
    ArchRunResult r = sim.run();
    EXPECT_EQ(r.stop, StopReason::DetectHit);
    EXPECT_EQ(r.output.detectCode, 7u);
}

TEST(ArchE2E, UserCannotTouchKernelMemory)
{
    const char *src =
        "fn main(): int { var p: int* = 1024 as int*; return *p; }";
    mcl::BuildResult build = mcl::buildUserProgram(src, IsaId::Av64);
    ASSERT_TRUE(build.ok) << build.error;
    Program sys = buildSystemImage(buildKernel(IsaId::Av64), build.program);
    ArchConfig cfg;
    ArchSim sim(cfg);
    sim.load(sys);
    ArchRunResult r = sim.run();
    EXPECT_EQ(r.stop, StopReason::Exception);
}

TEST(ArchE2E, KernelTimeShareIsMeaningful)
{
    // The paper reports 19.5% kernel share for sha; ours should at
    // least be visibly nonzero since write() copies through the
    // kernel.
    ArchRunResult r = runWorkload("sha", IsaId::Av64);
    ASSERT_EQ(r.stop, StopReason::Exited);
    double share = static_cast<double>(r.kernelInsts) / r.instCount;
    EXPECT_GT(share, 0.01);
    EXPECT_LT(share, 0.9);
}

} // namespace
} // namespace vstack
