/**
 * @file
 * Suite-scheduler tests: the pooled multi-campaign executor
 * (core/suite.h) must be observationally identical to running each
 * campaign through the serial VulnerabilityStack entry points —
 * byte-identical ResultStore contents at any jobs count, under
 * --isolate, and across a mid-suite SIGKILL + resume — while
 * containing per-sample injector failures to their own campaign.
 *
 * Kill/resume and isolation tests fork real children and are excluded
 * from the TSan stage of tools/ci_sanitize.sh, like the sandbox and
 * chaos tests.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include "core/suite.h"
#include "support/failpoint.h"
#include "swfi/svf.h"

namespace vstack
{
namespace
{

EnvConfig
suiteCfg(const std::string &dir)
{
    EnvConfig cfg;
    cfg.uarchFaults = 8;
    cfg.archFaults = 12;
    cfg.swFaults = 12;
    cfg.seed = 7;
    cfg.resultsDir = dir;
    cfg.jobs = 1;
    return cfg;
}

/** A small plan crossing all three layers (two uarch structures on
 *  one golden, so the shared-campaign path is exercised too). */
CampaignPlan
mixedPlan()
{
    CampaignPlan plan;
    const Variant fft{"fft", false};
    const Variant qs{"qsort", false};
    plan.addUarch("ax9", fft, Structure::RF);
    plan.addUarch("ax9", fft, Structure::LSQ);
    plan.addPvf(IsaId::Av64, fft, Fpm::WD);
    plan.addSvf(fft);
    plan.addSvf(qs);
    return plan;
}

/** Every regular file under `dir`, keyed by relative path — the
 *  byte-identity comparisons diff whole store directories. */
std::map<std::string, std::string>
storeBytes(const std::string &dir)
{
    std::map<std::string, std::string> out;
    if (!std::filesystem::exists(dir))
        return out;
    for (const auto &e :
         std::filesystem::recursive_directory_iterator(dir)) {
        if (!e.is_regular_file())
            continue;
        std::ifstream in(e.path(), std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        out[std::filesystem::relative(e.path(), dir).string()] =
            ss.str();
    }
    return out;
}

class SuiteTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        clearFailpoints();
        // Per-process dir: ctest runs cases concurrently.
        base = "/tmp/vstack_suite_test." + std::to_string(getpid());
        std::filesystem::remove_all(base);
    }
    void TearDown() override
    {
        clearFailpoints();
        std::filesystem::remove_all(base);
    }

    /** The reference store: the plan through the serial path. */
    std::map<std::string, std::string> serialReference(
        const CampaignPlan &plan)
    {
        const std::string dir = base + "/serial";
        VulnerabilityStack stack(suiteCfg(dir));
        SuiteOptions opts;
        opts.serial = true;
        SuiteReport r = runSuite(stack, plan, opts);
        EXPECT_FALSE(r.interrupted);
        return storeBytes(dir);
    }

    std::string base;
};

TEST_F(SuiteTest, ScheduledStoreIsByteIdenticalToSerialAtAnyJobs)
{
    const CampaignPlan plan = mixedPlan();
    const auto reference = serialReference(plan);
    ASSERT_EQ(reference.size(), plan.size())
        << "one store entry per unique campaign";

    for (unsigned jobs : {1u, 4u}) {
        const std::string dir =
            base + "/jobs" + std::to_string(jobs);
        EnvConfig cfg = suiteCfg(dir);
        cfg.jobs = jobs;
        VulnerabilityStack stack(cfg);
        SuiteReport r = runSuite(stack, plan, {});
        EXPECT_FALSE(r.interrupted);
        EXPECT_EQ(r.outcomes.size(), plan.size());
        for (const CampaignOutcome &o : r.outcomes)
            EXPECT_TRUE(o.complete) << o.spec.label();
        EXPECT_EQ(storeBytes(dir), reference) << "jobs=" << jobs;
    }
}

TEST_F(SuiteTest, IsolatedSuiteMatchesSerial)
{
    const CampaignPlan plan = mixedPlan();
    const auto reference = serialReference(plan);

    const std::string dir = base + "/isolated";
    EnvConfig cfg = suiteCfg(dir);
    cfg.jobs = 2;
    cfg.isolate = true;
    VulnerabilityStack stack(cfg);
    SuiteReport r = runSuite(stack, plan, {});
    EXPECT_FALSE(r.interrupted);
    EXPECT_EQ(storeBytes(dir), reference);
}

TEST_F(SuiteTest, KillMidSuiteThenResumeIsByteIdentical)
{
    const CampaignPlan plan = mixedPlan();
    const auto reference = serialReference(plan);
    const std::string dir = base + "/killed";

    // A child suite dies by "SIGKILL" exactly mid-journal-append,
    // partway into the pooled run.
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        armFailpoints("journal.append.kill=@6");
        EnvConfig cfg = suiteCfg(dir);
        cfg.jobs = 2;
        try {
            VulnerabilityStack stack(cfg);
            runSuite(stack, plan, {});
        } catch (...) {
        }
        _exit(0); // failpoint did not fire: fail the parent's check
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 137) << "child must die mid-append";

    // Resume: per-campaign journals replay what finished, the pool
    // re-simulates only the remainder, and the final store is
    // byte-identical to the never-killed serial run (journals gone).
    EnvConfig cfg = suiteCfg(dir);
    cfg.jobs = 2;
    VulnerabilityStack stack(cfg);
    SuiteReport r = runSuite(stack, plan, {});
    EXPECT_FALSE(r.interrupted);
    for (const CampaignOutcome &o : r.outcomes)
        EXPECT_TRUE(o.complete) << o.spec.label();
    EXPECT_EQ(storeBytes(dir), reference);
}

TEST_F(SuiteTest, SimErrorIsQuarantinedToItsOwnCampaign)
{
    // Two single-layer campaigns; the first executed sample of the
    // first campaign fails with a SimError on both the attempt and
    // the in-context retry, so exactly one sample is quarantined.
    CampaignPlan plan;
    plan.addSvf({"fft", false});
    plan.addSvf({"qsort", false});

    EnvConfig cfg = suiteCfg(base + "/simerr");
    VulnerabilityStack stack(cfg);
    armFailpoints("driver.sample.simerr=2");
    SuiteReport r = runSuite(stack, plan, {});
    clearFailpoints();

    ASSERT_EQ(r.outcomes.size(), 2u);
    EXPECT_FALSE(r.interrupted);
    EXPECT_EQ(r.outcomes[0].counts.injectorErrors, 1u)
        << "the failing sample is excluded, not fatal";
    EXPECT_EQ(r.outcomes[0].counts.total(), cfg.swFaults - 1);
    EXPECT_EQ(r.outcomes[1].counts.injectorErrors, 0u)
        << "the quarantine must not leak into the next campaign";
    EXPECT_EQ(r.outcomes[1].counts.total(), cfg.swFaults);
}

TEST_F(SuiteTest, SecondRunIsServedEntirelyFromTheStore)
{
    const CampaignPlan plan = mixedPlan();
    const std::string dir = base + "/cached";
    EnvConfig cfg = suiteCfg(dir);
    cfg.jobs = 4;
    {
        VulnerabilityStack stack(cfg);
        SuiteReport first = runSuite(stack, plan, {});
        EXPECT_EQ(first.cacheHits, 0u);
    }
    const auto before = storeBytes(dir);

    VulnerabilityStack stack(cfg);
    SuiteReport again = runSuite(stack, plan, {});
    EXPECT_EQ(again.cacheHits, plan.size());
    for (const CampaignOutcome &o : again.outcomes) {
        EXPECT_TRUE(o.complete);
        EXPECT_TRUE(o.cacheHit) << o.spec.label();
    }
    EXPECT_EQ(storeBytes(dir), before) << "a cache-hit run writes nothing";
}

TEST_F(SuiteTest, DuplicateSpecsShareOneRun)
{
    CampaignPlan plan;
    plan.addSvf({"fft", false});
    plan.addSvf({"fft", false});

    VulnerabilityStack stack(suiteCfg(base + "/dup"));
    SuiteReport r = runSuite(stack, plan, {});
    ASSERT_EQ(r.outcomes.size(), 2u);
    EXPECT_TRUE(r.outcomes[0].complete);
    EXPECT_TRUE(r.outcomes[1].complete);
    EXPECT_EQ(r.outcomes[0].counts.masked, r.outcomes[1].counts.masked);
    EXPECT_EQ(r.outcomes[0].counts.sdc, r.outcomes[1].counts.sdc);
    EXPECT_EQ(r.outcomes[0].counts.crash, r.outcomes[1].counts.crash);
    EXPECT_EQ(r.outcomes[0].counts.detected,
              r.outcomes[1].counts.detected);
    EXPECT_EQ(storeBytes(base + "/dup").size(), 1u)
        << "one store entry for the deduplicated campaign";
}

TEST_F(SuiteTest, GoldenCacheEvictsBeyondCapacityAndCounts)
{
    EnvConfig cfg = suiteCfg("");
    cfg.goldenCache = 1;
    VulnerabilityStack stack(cfg);
    auto fft = stack.campaignFor("ax9", {"fft", false});
    EXPECT_EQ(stack.goldenEvictions(), 0u);
    auto qs = stack.campaignFor("ax9", {"qsort", false});
    EXPECT_EQ(stack.goldenEvictions(), 1u)
        << "capacity 1: the older entry is evicted";
    // Evicted entries stay alive while callers hold the pointer.
    EXPECT_NE(fft, nullptr);
    EXPECT_NE(fft, qs);
    // Re-requesting the survivor evicts nothing further.
    auto qs2 = stack.campaignFor("ax9", {"qsort", false});
    EXPECT_EQ(qs2, qs) << "cached entry is shared, not rebuilt";
    EXPECT_EQ(stack.goldenEvictions(), 1u);

    EnvConfig roomy = suiteCfg("");
    roomy.goldenCache = 2;
    VulnerabilityStack stack2(roomy);
    stack2.campaignFor("ax9", {"fft", false});
    stack2.campaignFor("ax9", {"qsort", false});
    EXPECT_EQ(stack2.goldenEvictions(), 0u);
}

/**
 * Predecoded fast-path programs live in their own LRU pool with its
 * own (8x) capacity: a handful of golden traces — each orders of
 * magnitude heavier than a predecode — must never be able to flush
 * the predecodes, and vice versa.  Regression test for the shared-LRU
 * weighting bug where one big trace evicted every predecode.
 */
TEST_F(SuiteTest, PredecodePoolIsWeightedSeparatelyFromGoldenTraces)
{
    EnvConfig cfg = suiteCfg("");
    cfg.goldenCache = 1; // trace LRU capacity 1 -> predecode pool 8
    VulnerabilityStack stack(cfg);

    stack.makeSvfCampaign({"fft", false});
    stack.makeSvfCampaign({"qsort", false});
    stack.makeSvfCampaign({"sha", false});
    EXPECT_EQ(stack.predecodeEvictions(), 0u);

    // Churn the trace LRU: with capacity 1 every new campaign evicts
    // a trace, but the predecode pool must be untouched.
    stack.campaignFor("ax9", {"fft", false});
    stack.campaignFor("ax9", {"qsort", false});
    stack.campaignFor("ax9", {"fft", false});
    EXPECT_GE(stack.goldenEvictions(), 2u);
    EXPECT_EQ(stack.predecodeEvictions(), 0u);

    // Overflowing the predecode pool itself (9 distinct IR predecodes
    // into 8 slots) evicts and counts — without touching traces.
    const uint64_t traceEvictions = stack.goldenEvictions();
    for (const char *w : {"rijndael", "dijkstra", "search", "corner",
                          "smooth", "crc32"})
        stack.makeSvfCampaign({w, false});
    EXPECT_GE(stack.predecodeEvictions(), 1u);
    EXPECT_EQ(stack.goldenEvictions(), traceEvictions);
}

} // namespace
} // namespace vstack
