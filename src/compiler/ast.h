/**
 * @file
 * Abstract syntax tree for MCL.
 */
#ifndef VSTACK_COMPILER_AST_H
#define VSTACK_COMPILER_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vstack::mcl
{

/** Scalar element kind. */
enum class Base : uint8_t { Int, Byte, Void };

/** An MCL type: scalar, pointer, or (declaration-only) array. */
struct Type
{
    Base base = Base::Int;
    bool ptr = false;
    int64_t arraySize = -1; ///< -1 unless a declared array

    bool isArray() const { return arraySize >= 0; }
    bool isPtr() const { return ptr; }
    bool isVoid() const { return base == Base::Void && !ptr; }
    bool scalarInt() const { return !ptr && !isArray() && base == Base::Int; }
    bool scalarByte() const
    {
        return !ptr && !isArray() && base == Base::Byte;
    }
    /** Element size in bytes for pointer/array types given xlen bits. */
    int elemBytes(int xlen) const { return base == Base::Byte ? 1 : xlen / 8; }

    static Type intTy() { return {Base::Int, false, -1}; }
    static Type byteTy() { return {Base::Byte, false, -1}; }
    static Type voidTy() { return {Base::Void, false, -1}; }
    static Type ptrTo(Base b) { return {b, true, -1}; }

    bool operator==(const Type &o) const
    {
        return base == o.base && ptr == o.ptr && arraySize == o.arraySize;
    }

    std::string str() const;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : uint8_t {
    Num,    ///< integer literal
    Str,    ///< string literal (anonymous byte array)
    Var,    ///< identifier
    Unary,  ///< -, ~, !
    Binary, ///< arithmetic / comparison / logical
    Call,   ///< function or intrinsic call
    Index,  ///< base[index]
    Deref,  ///< *expr
    AddrOf, ///< &lvalue
    Cast,   ///< expr as type
};

enum class UnOp : uint8_t { Neg, BitNot, LogNot };

enum class BinOp : uint8_t {
    Add, Sub, Mul, SDiv, SRem, UDiv, URem,
    And, Or, Xor, Shl, AShr, LShr,
    Eq, Ne, SLt, SLe, SGt, SGe, ULt, UGe,
    LogAnd, LogOr,
};

struct Expr
{
    ExprKind kind;
    int line = 0;
    // Literal / identifier payload
    int64_t num = 0;
    std::string name;
    std::string str;
    // Operator payload
    UnOp unOp = UnOp::Neg;
    BinOp binOp = BinOp::Add;
    Type castType;
    // Children
    ExprPtr lhs;
    ExprPtr rhs;
    std::vector<ExprPtr> args;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : uint8_t {
    VarDecl,
    Assign,
    If,
    While,
    Break,
    Continue,
    Return,
    ExprStmt,
    Block,
};

struct Stmt
{
    StmtKind kind;
    int line = 0;
    // VarDecl
    std::string name;
    Type type;
    // VarDecl init / Assign rhs / Return value / ExprStmt / condition
    ExprPtr expr;
    // Assign target
    ExprPtr target;
    // If/While bodies, Block contents
    std::vector<StmtPtr> body;
    std::vector<StmtPtr> elseBody;
};

/** A global variable declaration. */
struct GlobalDecl
{
    std::string name;
    Type type;
    bool isConst = false;
    std::vector<int64_t> init; ///< constant initializer values
    std::string strInit;       ///< string initializer (byte arrays)
    int line = 0;
};

/** A function definition. */
struct FuncDecl
{
    std::string name;
    std::vector<std::pair<std::string, Type>> params;
    Type retType = Type::voidTy();
    std::vector<StmtPtr> body;
    int line = 0;
};

/** A parsed MCL translation unit. */
struct Module
{
    std::vector<GlobalDecl> globals;
    std::vector<FuncDecl> funcs;
};

} // namespace vstack::mcl

#endif // VSTACK_COMPILER_AST_H
