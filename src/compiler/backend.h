/**
 * @file
 * IR -> guest assembly back-end.
 *
 * One back-end serves both ISAs: it emits assembly text (consumed by
 * the assembler in src/isa) and differs per target in register count,
 * constant materialisation, word size, and calling-convention details
 * taken from IsaSpec.  Virtual registers are homed in callee-saved
 * registers (most-used first) and spill to frame slots — av32's small
 * register file therefore produces markedly more memory traffic than
 * av64, mirroring the paper's Armv7/Armv8 axis.
 */
#ifndef VSTACK_COMPILER_BACKEND_H
#define VSTACK_COMPILER_BACKEND_H

#include <string>

#include "compiler/ir.h"
#include "isa/program.h"

namespace vstack::mcl
{

/** Code generation options. */
struct BackendOptions
{
    IsaId isa = IsaId::Av64;
    uint32_t textBase = 0;  ///< .org for the text section
    uint32_t dataBase = 0;  ///< .org for the data section
    bool userEntry = true;  ///< emit the _start stub (user programs)
};

/** Result of code generation. */
struct GenResult
{
    bool ok = false;
    std::string error;
    std::string asmText; ///< generated assembly (for inspection)
    Program program;     ///< assembled image
};

/** Generate and assemble a program image from IR. */
GenResult generateProgram(const ir::Module &m, const BackendOptions &opts);

} // namespace vstack::mcl

#endif // VSTACK_COMPILER_BACKEND_H
