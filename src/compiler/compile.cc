#include "compile.h"

#include "compiler/irgen.h"
#include "compiler/parser.h"
#include "machine/memmap.h"
#include "support/logging.h"

namespace vstack::mcl
{

const std::string &
runtimeSource()
{
    static const std::string src = R"MCL(
// ---- vstack MCL runtime library ------------------------------------
// Syscall wrappers and small helpers.  These functions model the
// "library code" of the paper's case study: the software-based
// fault-tolerance pass does not protect them.

fn write(p: byte*, n: int): int {
    return __syscall(1, p as int, n);
}

fn exit_prog(c: int) {
    __syscall(2, c, 0);
}

fn detect(site: int) {
    __syscall(3, site, 0);
}

fn rt_strlen(s: byte*): int {
    var n: int = 0;
    while (s[n] != 0) { n = n + 1; }
    return n;
}

fn print_str(s: byte*) {
    write(s, rt_strlen(s));
}

fn print_int(x: int) {
    var buf: byte[24];
    var i: int = 23;
    var neg: int = 0;
    if (x < 0) { neg = 1; x = 0 - x; }
    if (x == 0) { buf[i] = '0'; i = i - 1; }
    while (x != 0) {
        buf[i] = 48 + __urem(x, 10);
        x = __udiv(x, 10);
        i = i - 1;
    }
    if (neg != 0) { buf[i] = '-'; i = i - 1; }
    write(&buf[i + 1], 23 - i);
}

fn print_hex(x: int, digits: int) {
    var buf: byte[20];
    var i: int = 0;
    while (i < digits) {
        var nib: int = __lshr(x, 4 * (digits - 1 - i)) & 15;
        if (nib < 10) { buf[i] = 48 + nib; }
        else { buf[i] = 87 + nib; }
        i = i + 1;
    }
    write(&buf[0], digits);
}

fn print_nl() {
    var buf: byte[1];
    buf[0] = 10;
    write(&buf[0], 1);
}

fn mem_copy(dst: byte*, src: byte*, n: int) {
    var i: int = 0;
    while (i < n) { dst[i] = src[i]; i = i + 1; }
}

fn mem_set(dst: byte*, v: int, n: int) {
    var i: int = 0;
    while (i < n) { dst[i] = v; i = i + 1; }
}

// Serialise n ints as packed little-endian 32-bit words (the portable
// "binary output file" format used by the workloads).
fn write_words32(p: int*, n: int) {
    var buf: byte[64];
    var i: int = 0;
    while (i < n) {
        var chunk: int = n - i;
        if (chunk > 16) { chunk = 16; }
        var j: int = 0;
        while (j < chunk) {
            var v: int = p[i + j];
            buf[j * 4] = v & 0xff;
            buf[j * 4 + 1] = __lshr(v, 8) & 0xff;
            buf[j * 4 + 2] = __lshr(v, 16) & 0xff;
            buf[j * 4 + 3] = __lshr(v & 0xffffffff, 24) & 0xff;
            j = j + 1;
        }
        write(&buf[0], chunk * 4);
        i = i + chunk;
    }
}
)MCL";
    return src;
}

const std::vector<std::string> &
runtimeFuncNames()
{
    static const std::vector<std::string> names = {
        "write",     "exit_prog", "detect",   "rt_strlen", "print_str",
        "print_int", "print_hex", "print_nl", "mem_copy",  "mem_set",
        "write_words32",
    };
    return names;
}

FrontendResult
compileToIr(const std::string &source, int xlen, bool withRuntime)
{
    FrontendResult res;
    std::string full =
        withRuntime ? runtimeSource() + "\n" + source : source;
    ParseResult pr = parse(full);
    if (!pr.ok) {
        res.error = pr.error;
        return res;
    }
    IrGenResult ir = generateIr(pr.module, xlen);
    if (!ir.ok) {
        res.error = ir.error;
        return res;
    }
    res.module = std::move(ir.module);
    res.ok = true;
    return res;
}

BuildResult
buildUserProgram(const std::string &source, IsaId isa, bool withRuntime)
{
    BuildResult res;
    FrontendResult fr =
        compileToIr(source, IsaSpec::get(isa).xlen, withRuntime);
    if (!fr.ok) {
        res.error = fr.error;
        return res;
    }
    res.ir = std::move(fr.module);
    BuildResult built = buildUserFromIr(res.ir, isa);
    if (!built.ok) {
        res.error = built.error;
        return res;
    }
    res.asmText = std::move(built.asmText);
    res.program = std::move(built.program);
    res.ok = true;
    return res;
}

BuildResult
buildUserFromIr(const ir::Module &m, IsaId isa)
{
    BuildResult res;
    BackendOptions opts;
    opts.isa = isa;
    opts.textBase = memmap::USER_TEXT;
    opts.dataBase = memmap::USER_DATA;
    opts.userEntry = true;
    GenResult gen = generateProgram(m, opts);
    if (!gen.ok) {
        res.error = gen.error;
        return res;
    }
    res.asmText = std::move(gen.asmText);
    res.program = std::move(gen.program);
    res.ok = true;
    return res;
}

BuildResult
buildKernelFromIr(const ir::Module &m, IsaId isa, uint32_t textBase,
                  uint32_t dataBase)
{
    BuildResult res;
    BackendOptions opts;
    opts.isa = isa;
    opts.textBase = textBase;
    opts.dataBase = dataBase;
    opts.userEntry = false;
    GenResult gen = generateProgram(m, opts);
    if (!gen.ok) {
        res.error = gen.error;
        return res;
    }
    res.asmText = std::move(gen.asmText);
    res.program = std::move(gen.program);
    res.ok = true;
    return res;
}

} // namespace vstack::mcl
