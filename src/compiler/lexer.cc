#include "lexer.h"

#include <cctype>
#include <map>

#include "support/logging.h"

namespace vstack::mcl
{

namespace
{

const std::map<std::string, Tok> keywords = {
    {"fn", Tok::KwFn},         {"var", Tok::KwVar},
    {"const", Tok::KwConst},   {"if", Tok::KwIf},
    {"else", Tok::KwElse},     {"while", Tok::KwWhile},
    {"break", Tok::KwBreak},   {"continue", Tok::KwContinue},
    {"return", Tok::KwReturn}, {"int", Tok::KwInt},
    {"byte", Tok::KwByte},     {"as", Tok::KwAs},
};

} // namespace

LexResult
lex(const std::string &src)
{
    LexResult res;
    size_t i = 0;
    int line = 1;

    auto fail = [&](const std::string &msg) {
        res.error = strprintf("line %d: %s", line, msg.c_str());
        return res;
    };
    auto push = [&](Tok kind, std::string text = "", int64_t value = 0) {
        res.tokens.push_back({kind, std::move(text), value, line});
    };

    while (i < src.size()) {
        char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
            while (i < src.size() && src[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
            i += 2;
            while (i + 1 < src.size() &&
                   !(src[i] == '*' && src[i + 1] == '/')) {
                if (src[i] == '\n')
                    ++line;
                ++i;
            }
            if (i + 1 >= src.size())
                return fail("unterminated block comment");
            i += 2;
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = i;
            while (i < src.size() &&
                   (std::isalnum(static_cast<unsigned char>(src[i])) ||
                    src[i] == '_'))
                ++i;
            std::string word = src.substr(start, i - start);
            auto kw = keywords.find(word);
            if (kw != keywords.end())
                push(kw->second);
            else
                push(Tok::Ident, word);
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t start = i;
            int base = 10;
            if (c == '0' && i + 1 < src.size() &&
                (src[i + 1] == 'x' || src[i + 1] == 'X')) {
                base = 16;
                i += 2;
            }
            while (i < src.size() &&
                   (std::isalnum(static_cast<unsigned char>(src[i]))))
                ++i;
            std::string num = src.substr(start, i - start);
            errno = 0;
            char *end = nullptr;
            unsigned long long v =
                std::strtoull(num.c_str() + (base == 16 ? 0 : 0), &end, 0);
            if (errno != 0 || (end && *end != '\0'))
                return fail("bad number '" + num + "'");
            push(Tok::Number, num, static_cast<int64_t>(v));
            continue;
        }
        if (c == '"') {
            std::string text;
            ++i;
            while (i < src.size() && src[i] != '"') {
                char ch = src[i];
                if (ch == '\n')
                    return fail("newline in string literal");
                if (ch == '\\' && i + 1 < src.size()) {
                    ++i;
                    switch (src[i]) {
                      case 'n': text += '\n'; break;
                      case 't': text += '\t'; break;
                      case '0': text += '\0'; break;
                      case '\\': text += '\\'; break;
                      case '"': text += '"'; break;
                      default: return fail("bad string escape");
                    }
                } else {
                    text += ch;
                }
                ++i;
            }
            if (i >= src.size())
                return fail("unterminated string literal");
            ++i;
            push(Tok::String, text);
            continue;
        }
        if (c == '\'') {
            if (i + 2 >= src.size())
                return fail("bad char literal");
            int64_t v;
            if (src[i + 1] == '\\') {
                switch (src[i + 2]) {
                  case 'n': v = '\n'; break;
                  case 't': v = '\t'; break;
                  case '0': v = 0; break;
                  case '\\': v = '\\'; break;
                  case '\'': v = '\''; break;
                  default: return fail("bad char escape");
                }
                if (i + 3 >= src.size() || src[i + 3] != '\'')
                    return fail("unterminated char literal");
                i += 4;
            } else {
                v = src[i + 1];
                if (src[i + 2] != '\'')
                    return fail("unterminated char literal");
                i += 3;
            }
            push(Tok::CharLit, "", v);
            continue;
        }

        auto two = [&](char second, Tok kind) {
            if (i + 1 < src.size() && src[i + 1] == second) {
                push(kind);
                i += 2;
                return true;
            }
            return false;
        };

        switch (c) {
          case '(': push(Tok::LParen); ++i; break;
          case ')': push(Tok::RParen); ++i; break;
          case '{': push(Tok::LBrace); ++i; break;
          case '}': push(Tok::RBrace); ++i; break;
          case '[': push(Tok::LBracket); ++i; break;
          case ']': push(Tok::RBracket); ++i; break;
          case ',': push(Tok::Comma); ++i; break;
          case ';': push(Tok::Semi); ++i; break;
          case ':': push(Tok::Colon); ++i; break;
          case '+': push(Tok::Plus); ++i; break;
          case '-': push(Tok::Minus); ++i; break;
          case '*': push(Tok::Star); ++i; break;
          case '/': push(Tok::Slash); ++i; break;
          case '%': push(Tok::Percent); ++i; break;
          case '^': push(Tok::Caret); ++i; break;
          case '~': push(Tok::Tilde); ++i; break;
          case '&':
            if (!two('&', Tok::AndAnd)) {
                push(Tok::Amp);
                ++i;
            }
            break;
          case '|':
            if (!two('|', Tok::OrOr)) {
                push(Tok::Pipe);
                ++i;
            }
            break;
          case '<':
            if (!two('<', Tok::Shl) && !two('=', Tok::Le)) {
                push(Tok::Lt);
                ++i;
            }
            break;
          case '>':
            if (!two('>', Tok::Shr) && !two('=', Tok::Ge)) {
                push(Tok::Gt);
                ++i;
            }
            break;
          case '=':
            if (!two('=', Tok::EqEq)) {
                push(Tok::Assign);
                ++i;
            }
            break;
          case '!':
            if (!two('=', Tok::NotEq)) {
                push(Tok::Not);
                ++i;
            }
            break;
          default:
            return fail(strprintf("unexpected character '%c'", c));
        }
    }
    push(Tok::End);
    res.ok = true;
    return res;
}

} // namespace vstack::mcl
