/**
 * @file
 * MCL lexer.
 */
#ifndef VSTACK_COMPILER_LEXER_H
#define VSTACK_COMPILER_LEXER_H

#include <string>
#include <vector>

#include "compiler/token.h"

namespace vstack::mcl
{

/** Result of lexing a source buffer. */
struct LexResult
{
    bool ok = false;
    std::string error;
    std::vector<Token> tokens; ///< terminated by a Tok::End token
};

/** Tokenize MCL source (line and block comments supported). */
LexResult lex(const std::string &source);

} // namespace vstack::mcl

#endif // VSTACK_COMPILER_LEXER_H
