#include "backend.h"

#include <algorithm>
#include <cassert>

#include "isa/assembler.h"
#include "machine/memmap.h"
#include "support/logging.h"

namespace vstack::mcl
{

namespace
{

using ir::Inst;
using ir::IrOp;
using ir::Value;

/** Where a virtual register lives at runtime. */
struct Home
{
    bool inReg = false;
    int reg = -1;      ///< physical register if inReg
    int64_t slot = -1; ///< frame offset otherwise
};

class FuncCodegen
{
  public:
    FuncCodegen(const ir::Module &m, const ir::Func &f, const IsaSpec &spec,
                std::string &out)
        : m(m), f(f), spec(spec), out(out), W(spec.xlen / 8)
    {}

    void run()
    {
        assignHomes();
        layoutFrame();
        emitLabel(f.name);
        emitPrologue();
        for (size_t bi = 0; bi < f.blocks.size(); ++bi) {
            emitLabel(blockLabel(static_cast<int>(bi)));
            for (const Inst &inst : f.blocks[bi].insts)
                emitInst(inst);
        }
        emitEpilogue();
    }

  private:
    // ---- setup ---------------------------------------------------------
    void assignHomes()
    {
        // Count uses so hot vregs get registers.
        std::vector<size_t> uses(f.numVregs, 0);
        auto use = [&](const Value &v) {
            if (!v.isConst)
                ++uses[v.vreg];
        };
        for (const auto &block : f.blocks) {
            for (const Inst &inst : block.insts) {
                if (inst.hasA)
                    use(inst.a);
                if (inst.hasB)
                    use(inst.b);
                for (const Value &arg : inst.args)
                    use(arg);
                if (inst.dst >= 0)
                    ++uses[inst.dst];
            }
        }
        std::vector<int> order(f.numVregs);
        for (int i = 0; i < f.numVregs; ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
            return uses[a] > uses[b];
        });

        homes.resize(f.numVregs);
        size_t nextReg = 0;
        for (int v : order) {
            if (uses[v] == 0 && v >= f.numParams)
                continue; // dead vreg, no home needed
            if (nextReg < spec.calleeSaved.size()) {
                homes[v].inReg = true;
                homes[v].reg = spec.calleeSaved[nextReg++];
                savedRegs.push_back(homes[v].reg);
            } else {
                homes[v].inReg = false;
                homes[v].slot = numSpills++;
            }
        }
        std::sort(savedRegs.begin(), savedRegs.end());
    }

    void layoutFrame()
    {
        // sp+0: local arrays, then spill slots, then saved callee
        // regs, then saved lr.
        int64_t off = 0;
        arrayOffs.clear();
        for (const auto &arr : f.localArrays) {
            off = (off + W - 1) / W * W;
            arrayOffs.push_back(off);
            off += arr.bytes;
        }
        off = (off + W - 1) / W * W;
        spillBase = off;
        off += static_cast<int64_t>(numSpills) * W;
        savedBase = off;
        off += static_cast<int64_t>(savedRegs.size()) * W;
        lrOff = off;
        off += W;
        frameSize = (off + 15) / 16 * 16;
        if (frameSize >= 4096) {
            fatal("function '%s': frame too large (%lld bytes)",
                  f.name.c_str(), static_cast<long long>(frameSize));
        }
    }

    // ---- emission helpers ----------------------------------------------
    void emitLabel(const std::string &label) { out += label + ":\n"; }

    void ins(const std::string &text) { out += "    " + text + "\n"; }

    std::string r(int reg) const { return spec.regName(reg); }

    std::string blockLabel(int b) const
    {
        return strprintf("__%s_b%d", f.name.c_str(), b);
    }

    std::string retLabel() const
    {
        return strprintf("__%s_ret", f.name.c_str());
    }

    /** Materialise an arbitrary constant into a register. */
    void loadConst(int reg, int64_t k)
    {
        const uint64_t uv = spec.xlen == 64
                                ? static_cast<uint64_t>(k)
                                : (static_cast<uint64_t>(k) & 0xffffffffull);
        if (spec.xlen == 32 || uv <= 0xffffffffull) {
            ins(strprintf("li %s, #%llu", r(reg).c_str(),
                          static_cast<unsigned long long>(
                              uv & 0xffffffffull)));
            if (spec.xlen == 64 && (uv >> 32)) {
                // unreachable due to the branch condition, kept for
                // clarity
            }
            if (spec.xlen == 64 && uv > 0xffffffffull)
                panic("loadConst fell through");
            return;
        }
        // Full 64-bit constant: movz + up to 3 movk.
        ins(strprintf("movz %s, #0x%llx, lsl 48", r(reg).c_str(),
                      static_cast<unsigned long long>((uv >> 48) & 0xffff)));
        for (int hw = 2; hw >= 0; --hw) {
            ins(strprintf("movk %s, #0x%llx, lsl %d", r(reg).c_str(),
                          static_cast<unsigned long long>(
                              (uv >> (16 * hw)) & 0xffff),
                          16 * hw));
        }
    }

    /** Ensure a Value is in a register; uses `scratch` if needed. */
    int valReg(const Value &v, int scratch)
    {
        if (v.isConst) {
            loadConst(scratch, v.konst);
            return scratch;
        }
        const Home &h = homes[v.vreg];
        if (h.inReg)
            return h.reg;
        ins(strprintf("ldx %s, [sp, #%lld]", r(scratch).c_str(),
                      static_cast<long long>(spillBase + h.slot * W)));
        return scratch;
    }

    /** Register a result should be computed into. */
    int dstReg(int vreg, int scratch)
    {
        const Home &h = homes[vreg];
        return h.inReg ? h.reg : scratch;
    }

    /** Write back a result if its home is a frame slot. */
    void commitDst(int vreg, int fromReg)
    {
        const Home &h = homes[vreg];
        if (h.inReg) {
            assert(h.reg == fromReg);
            return;
        }
        ins(strprintf("stx %s, [sp, #%lld]", r(fromReg).c_str(),
                      static_cast<long long>(spillBase + h.slot * W)));
    }

    void moveReg(int dst, int src)
    {
        if (dst != src)
            ins(strprintf("mov %s, %s", r(dst).c_str(), r(src).c_str()));
    }

    // ---- prologue / epilogue --------------------------------------------
    void emitPrologue()
    {
        ins(strprintf("addi sp, sp, #-%lld",
                      static_cast<long long>(frameSize)));
        ins(strprintf("stx lr, [sp, #%lld]",
                      static_cast<long long>(lrOff)));
        for (size_t i = 0; i < savedRegs.size(); ++i) {
            ins(strprintf("stx %s, [sp, #%lld]", r(savedRegs[i]).c_str(),
                          static_cast<long long>(savedBase +
                                                 static_cast<int64_t>(i) *
                                                     W)));
        }
        // Move incoming arguments into their homes.
        for (int p = 0; p < f.numParams; ++p) {
            const Home &h = homes[p];
            const int argReg = spec.argRegs[p];
            if (h.inReg) {
                moveReg(h.reg, argReg);
            } else if (h.slot >= 0) {
                ins(strprintf("stx %s, [sp, #%lld]", r(argReg).c_str(),
                              static_cast<long long>(spillBase +
                                                     h.slot * W)));
            }
        }
    }

    void emitEpilogue()
    {
        emitLabel(retLabel());
        for (size_t i = 0; i < savedRegs.size(); ++i) {
            ins(strprintf("ldx %s, [sp, #%lld]", r(savedRegs[i]).c_str(),
                          static_cast<long long>(savedBase +
                                                 static_cast<int64_t>(i) *
                                                     W)));
        }
        ins(strprintf("ldx lr, [sp, #%lld]",
                      static_cast<long long>(lrOff)));
        ins(strprintf("addi sp, sp, #%lld",
                      static_cast<long long>(frameSize)));
        ins("ret");
    }

    // ---- instruction selection ------------------------------------------
    void emitInst(const Inst &inst)
    {
        const int t0 = spec.tempRegs[0];
        const int t1 = spec.tempRegs[1];
        const int t2 = spec.tempRegs[2];

        switch (inst.op) {
          case IrOp::Mov: {
            if (inst.a.isConst) {
                int d = dstReg(inst.dst, t0);
                loadConst(d, inst.a.konst);
                commitDst(inst.dst, d);
            } else {
                int s = valReg(inst.a, t0);
                int d = dstReg(inst.dst, t0);
                if (homes[inst.dst].inReg) {
                    moveReg(d, s);
                    commitDst(inst.dst, d);
                } else {
                    commitDst(inst.dst, s);
                }
            }
            return;
          }
          case IrOp::Add:
          case IrOp::Sub:
          case IrOp::And:
          case IrOp::Or:
          case IrOp::Xor: {
            // Immediate forms where the constant fits.
            static const std::map<IrOp, const char *> iforms = {
                {IrOp::Add, "addi"}, {IrOp::And, "andi"},
                {IrOp::Or, "orri"},  {IrOp::Xor, "eori"}};
            const int ib = spec.immBits();
            const int64_t lo = -(1ll << (ib - 1)), hi = (1ll << (ib - 1));
            int64_t k = inst.b.konst;
            bool subImm = inst.op == IrOp::Sub && inst.b.isConst &&
                          -k >= lo && -k < hi;
            if (inst.b.isConst &&
                ((iforms.count(inst.op) && k >= lo && k < hi) || subImm)) {
                int a = valReg(inst.a, t0);
                int d = dstReg(inst.dst, t1);
                const char *mnem = subImm ? "addi" : iforms.at(inst.op);
                ins(strprintf("%s %s, %s, #%lld", mnem, r(d).c_str(),
                              r(a).c_str(),
                              static_cast<long long>(subImm ? -k : k)));
                commitDst(inst.dst, d);
                return;
            }
            emitRRR(inst, rrrMnemonic(inst.op), t0, t1);
            return;
          }
          case IrOp::Mul:
          case IrOp::SDiv:
          case IrOp::UDiv:
          case IrOp::SRem:
          case IrOp::URem:
            emitRRR(inst, rrrMnemonic(inst.op), t0, t1);
            return;
          case IrOp::Shl:
          case IrOp::LShr:
          case IrOp::AShr: {
            if (inst.b.isConst) {
                const char *mnem = inst.op == IrOp::Shl    ? "lsli"
                                   : inst.op == IrOp::LShr ? "lsri"
                                                           : "asri";
                int a = valReg(inst.a, t0);
                int d = dstReg(inst.dst, t1);
                ins(strprintf("%s %s, %s, #%lld", mnem, r(d).c_str(),
                              r(a).c_str(),
                              static_cast<long long>(inst.b.konst &
                                                     (spec.xlen - 1))));
                commitDst(inst.dst, d);
                return;
            }
            const char *mnem = inst.op == IrOp::Shl    ? "lslv"
                               : inst.op == IrOp::LShr ? "lsrv"
                                                       : "asrv";
            emitRRR(inst, mnem, t0, t1);
            return;
          }
          case IrOp::CmpSLt:
          case IrOp::CmpULt: {
            emitRRR(inst, inst.op == IrOp::CmpSLt ? "slt" : "sltu", t0, t1);
            return;
          }
          case IrOp::CmpSGt: {
            int a = valReg(inst.a, t0);
            int b = valReg(inst.b, t1);
            int d = dstReg(inst.dst, t0);
            ins(strprintf("slt %s, %s, %s", r(d).c_str(), r(b).c_str(),
                          r(a).c_str()));
            commitDst(inst.dst, d);
            return;
          }
          case IrOp::CmpSLe:
          case IrOp::CmpSGe:
          case IrOp::CmpUGe: {
            int a = valReg(inst.a, t0);
            int b = valReg(inst.b, t1);
            int d = dstReg(inst.dst, t0);
            if (inst.op == IrOp::CmpSLe) {
                ins(strprintf("slt %s, %s, %s", r(d).c_str(), r(b).c_str(),
                              r(a).c_str()));
            } else {
                const char *mnem =
                    inst.op == IrOp::CmpSGe ? "slt" : "sltu";
                ins(strprintf("%s %s, %s, %s", mnem, r(d).c_str(),
                              r(a).c_str(), r(b).c_str()));
            }
            ins(strprintf("eori %s, %s, #1", r(d).c_str(), r(d).c_str()));
            commitDst(inst.dst, d);
            return;
          }
          case IrOp::CmpEq:
          case IrOp::CmpNe: {
            int a = valReg(inst.a, t0);
            int b = valReg(inst.b, t1);
            int d = dstReg(inst.dst, t0);
            ins(strprintf("eor %s, %s, %s", r(d).c_str(), r(a).c_str(),
                          r(b).c_str()));
            if (inst.op == IrOp::CmpEq) {
                loadConst(t2, 1);
                ins(strprintf("sltu %s, %s, %s", r(d).c_str(),
                              r(d).c_str(), r(t2).c_str()));
            } else {
                loadConst(t2, 0);
                ins(strprintf("sltu %s, %s, %s", r(d).c_str(),
                              r(t2).c_str(), r(d).c_str()));
            }
            commitDst(inst.dst, d);
            return;
          }
          case IrOp::Load: {
            int a = valReg(inst.a, t0);
            int d = dstReg(inst.dst, t1);
            const char *mnem = inst.size == 1 ? "ldbu" : "ldx";
            emitMemOp(mnem, d, a, inst.imm, t1);
            commitDst(inst.dst, d);
            return;
          }
          case IrOp::Store: {
            int a = valReg(inst.a, t0);
            int v = valReg(inst.b, t1);
            const char *mnem = inst.size == 1 ? "stb" : "stx";
            emitMemOp(mnem, v, a, inst.imm, t2);
            return;
          }
          case IrOp::AddrGlobal: {
            int d = dstReg(inst.dst, t0);
            ins(strprintf("la %s, %s", r(d).c_str(),
                          globalLabel(inst.globalId).c_str()));
            if (inst.imm) {
                ins(strprintf("addi %s, %s, #%lld", r(d).c_str(),
                              r(d).c_str(),
                              static_cast<long long>(inst.imm)));
            }
            commitDst(inst.dst, d);
            return;
          }
          case IrOp::AddrLocal: {
            int d = dstReg(inst.dst, t0);
            ins(strprintf("addi %s, sp, #%lld", r(d).c_str(),
                          static_cast<long long>(arrayOffs[inst.localId] +
                                                 inst.imm)));
            commitDst(inst.dst, d);
            return;
          }
          case IrOp::Call: {
            for (size_t i = 0; i < inst.args.size(); ++i) {
                const int argReg = spec.argRegs[i];
                if (inst.args[i].isConst) {
                    loadConst(argReg, inst.args[i].konst);
                } else {
                    int s = valReg(inst.args[i], argReg);
                    moveReg(argReg, s);
                }
            }
            ins(strprintf("bl %s", m.funcs[inst.callee].name.c_str()));
            if (inst.dst >= 0) {
                int d = dstReg(inst.dst, spec.argRegs[0]);
                moveReg(d, spec.argRegs[0]);
                commitDst(inst.dst, d);
            }
            return;
          }
          case IrOp::Syscall: {
            for (size_t i = 0; i < inst.args.size(); ++i) {
                const int argReg = spec.argRegs[i];
                if (inst.args[i].isConst) {
                    loadConst(argReg, inst.args[i].konst);
                } else {
                    int s = valReg(inst.args[i], argReg);
                    moveReg(argReg, s);
                }
            }
            loadConst(spec.syscallNr, inst.sysNr);
            ins("syscall");
            if (inst.dst >= 0) {
                int d = dstReg(inst.dst, spec.argRegs[0]);
                moveReg(d, spec.argRegs[0]);
                commitDst(inst.dst, d);
            }
            return;
          }
          case IrOp::CacheClean: {
            int a = valReg(inst.a, t0);
            ins(strprintf("dccb %s", r(a).c_str()));
            return;
          }
          case IrOp::Br:
            ins(strprintf("b %s", blockLabel(inst.target0).c_str()));
            return;
          case IrOp::CondBr: {
            int c = valReg(inst.a, t0);
            int zero;
            if (spec.zeroReg >= 0) {
                zero = spec.zeroReg;
            } else {
                loadConst(t2, 0);
                zero = t2;
            }
            ins(strprintf("bne %s, %s, %s", r(c).c_str(), r(zero).c_str(),
                          blockLabel(inst.target0).c_str()));
            ins(strprintf("b %s", blockLabel(inst.target1).c_str()));
            return;
          }
          case IrOp::Ret: {
            if (inst.hasA) {
                const int a0 = spec.argRegs[0];
                if (inst.a.isConst) {
                    loadConst(a0, inst.a.konst);
                } else {
                    int s = valReg(inst.a, a0);
                    moveReg(a0, s);
                }
            }
            ins(strprintf("b %s", retLabel().c_str()));
            return;
          }
        }
        panic("unhandled IR op in backend");
    }

    static const char *rrrMnemonic(IrOp op)
    {
        switch (op) {
          case IrOp::Add: return "add";
          case IrOp::Sub: return "sub";
          case IrOp::And: return "and";
          case IrOp::Or: return "orr";
          case IrOp::Xor: return "eor";
          case IrOp::Mul: return "mul";
          case IrOp::SDiv: return "sdiv";
          case IrOp::UDiv: return "udiv";
          case IrOp::SRem: return "srem";
          case IrOp::URem: return "urem";
          default: panic("no RRR mnemonic");
        }
    }

    void emitRRR(const Inst &inst, const char *mnem, int t0, int t1)
    {
        int a = valReg(inst.a, t0);
        int b = valReg(inst.b, t1);
        int d = dstReg(inst.dst, t0);
        ins(strprintf("%s %s, %s, %s", mnem, r(d).c_str(), r(a).c_str(),
                      r(b).c_str()));
        commitDst(inst.dst, d);
    }

    /** Emit a load/store with an offset that may exceed the imm field. */
    void emitMemOp(const char *mnem, int dataReg, int baseReg, int64_t off,
                   int scratch)
    {
        const int ib = spec.immBits();
        if (off >= -(1ll << (ib - 1)) && off < (1ll << (ib - 1))) {
            ins(strprintf("%s %s, [%s, #%lld]", mnem, r(dataReg).c_str(),
                          r(baseReg).c_str(), static_cast<long long>(off)));
            return;
        }
        loadConst(scratch, off);
        ins(strprintf("add %s, %s, %s", r(scratch).c_str(),
                      r(scratch).c_str(), r(baseReg).c_str()));
        ins(strprintf("%s %s, [%s, #0]", mnem, r(dataReg).c_str(),
                      r(scratch).c_str()));
    }

    std::string globalLabel(int id) const
    {
        return "__g_" + m.globals[id].name;
    }

    const ir::Module &m;
    const ir::Func &f;
    const IsaSpec &spec;
    std::string &out;
    const int W;

    std::vector<Home> homes;
    std::vector<int> savedRegs;
    int numSpills = 0;
    std::vector<int64_t> arrayOffs;
    int64_t spillBase = 0;
    int64_t savedBase = 0;
    int64_t lrOff = 0;
    int64_t frameSize = 0;
};

} // namespace

GenResult
generateProgram(const ir::Module &m, const BackendOptions &opts)
{
    GenResult res;
    const IsaSpec &spec = IsaSpec::get(opts.isa);
    if (spec.xlen != m.xlen) {
        res.error = strprintf("IR xlen %d does not match target %s", m.xlen,
                              isaName(opts.isa));
        return res;
    }

    std::string text;
    text += strprintf(".isa %s\n", isaName(opts.isa));
    text += strprintf(".org 0x%x\n", opts.textBase);

    if (opts.userEntry) {
        if (m.findFunc("main") < 0) {
            res.error = "user program has no 'main'";
            return res;
        }
        text += "_start:\n";
        text += strprintf("    li sp, #0x%x\n", memmap::USER_STACK_TOP);
        text += "    bl main\n";
        // exit(main()) — result already in a0.
        text += strprintf("    li %s, #%u\n",
                          spec.regName(spec.syscallNr).c_str(),
                          static_cast<unsigned>(Syscall::Exit));
        text += "    syscall\n";
        // The exit syscall halts the machine; pad defensively.
        text += "    b _start_hang\n_start_hang:\n    b _start_hang\n";
    }

    for (const ir::Func &fn : m.funcs) {
        FuncCodegen gen(m, fn, spec, text);
        gen.run();
    }

    text += strprintf(".org 0x%x\n", opts.dataBase);
    for (const ir::Global &g : m.globals) {
        text += strprintf(".align %d\n", std::max(g.align, 4));
        text += strprintf("__g_%s:\n", g.name.c_str());
        size_t i = 0;
        // Emit words where aligned, bytes otherwise.
        while (i + 4 <= g.init.size()) {
            uint32_t w = static_cast<uint32_t>(g.init[i]) |
                         (static_cast<uint32_t>(g.init[i + 1]) << 8) |
                         (static_cast<uint32_t>(g.init[i + 2]) << 16) |
                         (static_cast<uint32_t>(g.init[i + 3]) << 24);
            text += strprintf("    .word 0x%08x\n", w);
            i += 4;
        }
        while (i < g.init.size()) {
            text += strprintf("    .byte %u\n", g.init[i]);
            ++i;
        }
        const int64_t remaining =
            g.bytes - static_cast<int64_t>(g.init.size());
        if (remaining > 0)
            text += strprintf("    .space %lld\n",
                              static_cast<long long>(remaining));
    }

    res.asmText = text;
    AsmResult ar = assemble(text, opts.isa, opts.textBase);
    if (!ar.ok) {
        res.error = "assembly failed: " + ar.error;
        return res;
    }
    res.program = std::move(ar.program);
    if (opts.userEntry)
        res.program.entry = res.program.symbol("_start");
    res.ok = true;
    return res;
}

} // namespace vstack::mcl
