/**
 * @file
 * Recursive-descent parser for MCL.
 */
#ifndef VSTACK_COMPILER_PARSER_H
#define VSTACK_COMPILER_PARSER_H

#include <string>

#include "compiler/ast.h"

namespace vstack::mcl
{

/** Result of parsing a translation unit. */
struct ParseResult
{
    bool ok = false;
    std::string error;
    Module module;
};

/** Parse MCL source into an AST. */
ParseResult parse(const std::string &source);

} // namespace vstack::mcl

#endif // VSTACK_COMPILER_PARSER_H
