#include "parser.h"

#include <stdexcept>

#include "compiler/lexer.h"
#include "support/logging.h"

namespace vstack::mcl
{

std::string
Type::str() const
{
    std::string s = base == Base::Int    ? "int"
                    : base == Base::Byte ? "byte"
                                         : "void";
    if (ptr)
        s += "*";
    if (isArray())
        s += strprintf("[%lld]", static_cast<long long>(arraySize));
    return s;
}

namespace
{

struct ParseError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens) : toks(std::move(tokens)) {}

    Module parseModule()
    {
        Module m;
        while (!at(Tok::End)) {
            if (at(Tok::KwFn)) {
                m.funcs.push_back(parseFunc());
            } else if (at(Tok::KwVar) || at(Tok::KwConst)) {
                m.globals.push_back(parseGlobal());
            } else {
                fail("expected 'fn', 'var' or 'const' at top level");
            }
        }
        return m;
    }

  private:
    [[noreturn]] void fail(const std::string &msg)
    {
        throw ParseError(
            strprintf("line %d: %s", cur().line, msg.c_str()));
    }

    const Token &cur() const { return toks[pos]; }
    bool at(Tok k) const { return cur().kind == k; }

    Token eat(Tok k, const char *what)
    {
        if (!at(k))
            fail(strprintf("expected %s", what));
        return toks[pos++];
    }

    bool accept(Tok k)
    {
        if (at(k)) {
            ++pos;
            return true;
        }
        return false;
    }

    Type parseType(bool allowArray)
    {
        Type t;
        if (accept(Tok::KwInt)) {
            t.base = Base::Int;
        } else if (accept(Tok::KwByte)) {
            t.base = Base::Byte;
        } else {
            fail("expected type");
        }
        if (accept(Tok::Star)) {
            t.ptr = true;
        } else if (at(Tok::LBracket)) {
            if (!allowArray)
                fail("array type not allowed here");
            ++pos;
            if (accept(Tok::RBracket)) {
                t.arraySize = 0; // size inferred from the initializer
            } else {
                Token n = eat(Tok::Number, "array size");
                t.arraySize = n.value;
                eat(Tok::RBracket, "']'");
            }
        }
        return t;
    }

    GlobalDecl parseGlobal()
    {
        GlobalDecl g;
        g.line = cur().line;
        g.isConst = at(Tok::KwConst);
        ++pos; // var/const
        g.name = eat(Tok::Ident, "global name").text;
        eat(Tok::Colon, "':'");
        g.type = parseType(true);
        if (accept(Tok::Assign)) {
            if (at(Tok::String)) {
                g.strInit = toks[pos++].text;
                if (g.type.arraySize == 0)
                    g.type.arraySize =
                        static_cast<int64_t>(g.strInit.size()) + 1;
            } else if (accept(Tok::LBrace)) {
                for (;;) {
                    g.init.push_back(parseConstExpr());
                    if (accept(Tok::RBrace))
                        break;
                    eat(Tok::Comma, "','");
                    if (accept(Tok::RBrace))
                        break;
                }
                if (g.type.arraySize == 0)
                    g.type.arraySize = static_cast<int64_t>(g.init.size());
            } else {
                g.init.push_back(parseConstExpr());
            }
        }
        if (g.type.arraySize == 0)
            fail("array global needs an initializer or explicit size");
        eat(Tok::Semi, "';'");
        return g;
    }

    /** Constant expressions in initializers: literals with +,-,*,<<,| */
    int64_t parseConstExpr() { return constOr(); }

    int64_t constOr()
    {
        int64_t v = constShift();
        while (at(Tok::Pipe)) {
            ++pos;
            v |= constShift();
        }
        return v;
    }

    int64_t constShift()
    {
        int64_t v = constAdd();
        while (at(Tok::Shl)) {
            ++pos;
            v <<= constAdd();
        }
        return v;
    }

    int64_t constAdd()
    {
        int64_t v = constMul();
        for (;;) {
            if (accept(Tok::Plus))
                v += constMul();
            else if (accept(Tok::Minus))
                v -= constMul();
            else
                return v;
        }
    }

    int64_t constMul()
    {
        int64_t v = constPrimary();
        while (accept(Tok::Star))
            v *= constPrimary();
        return v;
    }

    int64_t constPrimary()
    {
        if (accept(Tok::Minus))
            return -constPrimary();
        if (at(Tok::Number))
            return toks[pos++].value;
        if (at(Tok::CharLit))
            return toks[pos++].value;
        if (accept(Tok::LParen)) {
            int64_t v = parseConstExpr();
            eat(Tok::RParen, "')'");
            return v;
        }
        fail("expected constant expression");
    }

    FuncDecl parseFunc()
    {
        FuncDecl f;
        f.line = cur().line;
        eat(Tok::KwFn, "'fn'");
        f.name = eat(Tok::Ident, "function name").text;
        eat(Tok::LParen, "'('");
        if (!at(Tok::RParen)) {
            for (;;) {
                std::string pname = eat(Tok::Ident, "parameter name").text;
                eat(Tok::Colon, "':'");
                Type pt = parseType(false);
                f.params.emplace_back(pname, pt);
                if (!accept(Tok::Comma))
                    break;
            }
        }
        eat(Tok::RParen, "')'");
        if (accept(Tok::Colon))
            f.retType = parseType(false);
        f.body = parseBlock();
        return f;
    }

    std::vector<StmtPtr> parseBlock()
    {
        eat(Tok::LBrace, "'{'");
        std::vector<StmtPtr> stmts;
        while (!accept(Tok::RBrace))
            stmts.push_back(parseStmt());
        return stmts;
    }

    StmtPtr makeStmt(StmtKind k)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = k;
        s->line = cur().line;
        return s;
    }

    StmtPtr parseStmt()
    {
        if (at(Tok::KwVar)) {
            auto s = makeStmt(StmtKind::VarDecl);
            ++pos;
            s->name = eat(Tok::Ident, "variable name").text;
            eat(Tok::Colon, "':'");
            s->type = parseType(true);
            if (s->type.arraySize == 0)
                fail("local arrays need an explicit size");
            if (accept(Tok::Assign)) {
                if (s->type.isArray())
                    fail("local arrays cannot have initializers");
                s->expr = parseExpr();
            }
            eat(Tok::Semi, "';'");
            return s;
        }
        if (at(Tok::KwIf)) {
            auto s = makeStmt(StmtKind::If);
            ++pos;
            eat(Tok::LParen, "'('");
            s->expr = parseExpr();
            eat(Tok::RParen, "')'");
            s->body = parseBlock();
            if (accept(Tok::KwElse)) {
                if (at(Tok::KwIf)) {
                    s->elseBody.push_back(parseStmt());
                } else {
                    s->elseBody = parseBlock();
                }
            }
            return s;
        }
        if (at(Tok::KwWhile)) {
            auto s = makeStmt(StmtKind::While);
            ++pos;
            eat(Tok::LParen, "'('");
            s->expr = parseExpr();
            eat(Tok::RParen, "')'");
            s->body = parseBlock();
            return s;
        }
        if (at(Tok::KwBreak)) {
            auto s = makeStmt(StmtKind::Break);
            ++pos;
            eat(Tok::Semi, "';'");
            return s;
        }
        if (at(Tok::KwContinue)) {
            auto s = makeStmt(StmtKind::Continue);
            ++pos;
            eat(Tok::Semi, "';'");
            return s;
        }
        if (at(Tok::KwReturn)) {
            auto s = makeStmt(StmtKind::Return);
            ++pos;
            if (!at(Tok::Semi))
                s->expr = parseExpr();
            eat(Tok::Semi, "';'");
            return s;
        }
        if (at(Tok::LBrace)) {
            auto s = makeStmt(StmtKind::Block);
            s->body = parseBlock();
            return s;
        }

        // Assignment or expression statement.
        ExprPtr e = parseExpr();
        if (accept(Tok::Assign)) {
            auto s = makeStmt(StmtKind::Assign);
            s->target = std::move(e);
            s->expr = parseExpr();
            eat(Tok::Semi, "';'");
            return s;
        }
        auto s = makeStmt(StmtKind::ExprStmt);
        s->expr = std::move(e);
        eat(Tok::Semi, "';'");
        return s;
    }

    ExprPtr makeExpr(ExprKind k)
    {
        auto e = std::make_unique<Expr>();
        e->kind = k;
        e->line = cur().line;
        return e;
    }

    ExprPtr parseExpr() { return parseLogOr(); }

    ExprPtr binary(BinOp op, ExprPtr l, ExprPtr r)
    {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Binary;
        e->line = l->line;
        e->binOp = op;
        e->lhs = std::move(l);
        e->rhs = std::move(r);
        return e;
    }

    ExprPtr parseLogOr()
    {
        ExprPtr e = parseLogAnd();
        while (accept(Tok::OrOr))
            e = binary(BinOp::LogOr, std::move(e), parseLogAnd());
        return e;
    }

    ExprPtr parseLogAnd()
    {
        ExprPtr e = parseBitOr();
        while (accept(Tok::AndAnd))
            e = binary(BinOp::LogAnd, std::move(e), parseBitOr());
        return e;
    }

    ExprPtr parseBitOr()
    {
        ExprPtr e = parseBitXor();
        while (at(Tok::Pipe)) {
            ++pos;
            e = binary(BinOp::Or, std::move(e), parseBitXor());
        }
        return e;
    }

    ExprPtr parseBitXor()
    {
        ExprPtr e = parseBitAnd();
        while (accept(Tok::Caret))
            e = binary(BinOp::Xor, std::move(e), parseBitAnd());
        return e;
    }

    ExprPtr parseBitAnd()
    {
        ExprPtr e = parseEquality();
        while (at(Tok::Amp)) {
            ++pos;
            e = binary(BinOp::And, std::move(e), parseEquality());
        }
        return e;
    }

    ExprPtr parseEquality()
    {
        ExprPtr e = parseRelational();
        for (;;) {
            if (accept(Tok::EqEq))
                e = binary(BinOp::Eq, std::move(e), parseRelational());
            else if (accept(Tok::NotEq))
                e = binary(BinOp::Ne, std::move(e), parseRelational());
            else
                return e;
        }
    }

    ExprPtr parseRelational()
    {
        ExprPtr e = parseShift();
        for (;;) {
            if (accept(Tok::Lt))
                e = binary(BinOp::SLt, std::move(e), parseShift());
            else if (accept(Tok::Le))
                e = binary(BinOp::SLe, std::move(e), parseShift());
            else if (accept(Tok::Gt))
                e = binary(BinOp::SGt, std::move(e), parseShift());
            else if (accept(Tok::Ge))
                e = binary(BinOp::SGe, std::move(e), parseShift());
            else
                return e;
        }
    }

    ExprPtr parseShift()
    {
        ExprPtr e = parseAdditive();
        for (;;) {
            if (accept(Tok::Shl))
                e = binary(BinOp::Shl, std::move(e), parseAdditive());
            else if (accept(Tok::Shr))
                e = binary(BinOp::AShr, std::move(e), parseAdditive());
            else
                return e;
        }
    }

    ExprPtr parseAdditive()
    {
        ExprPtr e = parseMultiplicative();
        for (;;) {
            if (accept(Tok::Plus))
                e = binary(BinOp::Add, std::move(e), parseMultiplicative());
            else if (accept(Tok::Minus))
                e = binary(BinOp::Sub, std::move(e), parseMultiplicative());
            else
                return e;
        }
    }

    ExprPtr parseMultiplicative()
    {
        ExprPtr e = parseCast();
        for (;;) {
            if (accept(Tok::Star))
                e = binary(BinOp::Mul, std::move(e), parseCast());
            else if (accept(Tok::Slash))
                e = binary(BinOp::SDiv, std::move(e), parseCast());
            else if (accept(Tok::Percent))
                e = binary(BinOp::SRem, std::move(e), parseCast());
            else
                return e;
        }
    }

    ExprPtr parseCast()
    {
        ExprPtr e = parseUnary();
        while (accept(Tok::KwAs)) {
            auto c = std::make_unique<Expr>();
            c->kind = ExprKind::Cast;
            c->line = e->line;
            c->castType = parseType(false);
            c->lhs = std::move(e);
            e = std::move(c);
        }
        return e;
    }

    ExprPtr parseUnary()
    {
        if (accept(Tok::Minus)) {
            auto e = makeExpr(ExprKind::Unary);
            e->unOp = UnOp::Neg;
            e->lhs = parseUnary();
            return e;
        }
        if (accept(Tok::Tilde)) {
            auto e = makeExpr(ExprKind::Unary);
            e->unOp = UnOp::BitNot;
            e->lhs = parseUnary();
            return e;
        }
        if (accept(Tok::Not)) {
            auto e = makeExpr(ExprKind::Unary);
            e->unOp = UnOp::LogNot;
            e->lhs = parseUnary();
            return e;
        }
        if (accept(Tok::Star)) {
            auto e = makeExpr(ExprKind::Deref);
            e->lhs = parseUnary();
            return e;
        }
        if (at(Tok::Amp)) {
            ++pos;
            auto e = makeExpr(ExprKind::AddrOf);
            e->lhs = parseUnary();
            return e;
        }
        return parsePostfix();
    }

    ExprPtr parsePostfix()
    {
        ExprPtr e = parsePrimary();
        for (;;) {
            if (accept(Tok::LBracket)) {
                auto idx = std::make_unique<Expr>();
                idx->kind = ExprKind::Index;
                idx->line = e->line;
                idx->lhs = std::move(e);
                idx->rhs = parseExpr();
                eat(Tok::RBracket, "']'");
                e = std::move(idx);
            } else {
                return e;
            }
        }
    }

    ExprPtr parsePrimary()
    {
        if (at(Tok::Number)) {
            auto e = makeExpr(ExprKind::Num);
            e->num = toks[pos++].value;
            return e;
        }
        if (at(Tok::CharLit)) {
            auto e = makeExpr(ExprKind::Num);
            e->num = toks[pos++].value;
            return e;
        }
        if (at(Tok::String)) {
            auto e = makeExpr(ExprKind::Str);
            e->str = toks[pos++].text;
            return e;
        }
        if (at(Tok::Ident)) {
            std::string name = toks[pos++].text;
            if (accept(Tok::LParen)) {
                auto e = makeExpr(ExprKind::Call);
                e->name = name;
                if (!at(Tok::RParen)) {
                    for (;;) {
                        e->args.push_back(parseExpr());
                        if (!accept(Tok::Comma))
                            break;
                    }
                }
                eat(Tok::RParen, "')'");
                return e;
            }
            auto e = makeExpr(ExprKind::Var);
            e->name = name;
            return e;
        }
        if (accept(Tok::LParen)) {
            ExprPtr e = parseExpr();
            eat(Tok::RParen, "')'");
            return e;
        }
        fail("expected expression");
    }

    std::vector<Token> toks;
    size_t pos = 0;
};

} // namespace

ParseResult
parse(const std::string &source)
{
    ParseResult res;
    LexResult lr = lex(source);
    if (!lr.ok) {
        res.error = lr.error;
        return res;
    }
    try {
        Parser p(std::move(lr.tokens));
        res.module = p.parseModule();
        res.ok = true;
    } catch (const ParseError &e) {
        res.error = e.what();
    }
    return res;
}

} // namespace vstack::mcl
