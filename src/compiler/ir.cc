#include "ir.h"

#include "support/logging.h"

namespace vstack::ir
{

namespace
{

const char *
opName(IrOp op)
{
    switch (op) {
      case IrOp::Add: return "add";
      case IrOp::Sub: return "sub";
      case IrOp::Mul: return "mul";
      case IrOp::SDiv: return "sdiv";
      case IrOp::UDiv: return "udiv";
      case IrOp::SRem: return "srem";
      case IrOp::URem: return "urem";
      case IrOp::And: return "and";
      case IrOp::Or: return "or";
      case IrOp::Xor: return "xor";
      case IrOp::Shl: return "shl";
      case IrOp::LShr: return "lshr";
      case IrOp::AShr: return "ashr";
      case IrOp::CmpEq: return "cmpeq";
      case IrOp::CmpNe: return "cmpne";
      case IrOp::CmpSLt: return "cmpslt";
      case IrOp::CmpSLe: return "cmpsle";
      case IrOp::CmpSGt: return "cmpsgt";
      case IrOp::CmpSGe: return "cmpsge";
      case IrOp::CmpULt: return "cmpult";
      case IrOp::CmpUGe: return "cmpuge";
      case IrOp::Mov: return "mov";
      case IrOp::Load: return "load";
      case IrOp::Store: return "store";
      case IrOp::AddrGlobal: return "addrg";
      case IrOp::AddrLocal: return "addrl";
      case IrOp::Call: return "call";
      case IrOp::Syscall: return "syscall";
      case IrOp::Br: return "br";
      case IrOp::CondBr: return "condbr";
      case IrOp::Ret: return "ret";
      case IrOp::CacheClean: return "dcclean";
    }
    return "?";
}

std::string
valueStr(const Value &v)
{
    if (v.isConst)
        return strprintf("#%lld", static_cast<long long>(v.konst));
    return strprintf("v%d", v.vreg);
}

} // namespace

std::string
verify(const Module &m)
{
    if (m.xlen != 32 && m.xlen != 64)
        return "bad xlen";
    for (size_t fi = 0; fi < m.funcs.size(); ++fi) {
        const Func &f = m.funcs[fi];
        auto err = [&](const std::string &msg) {
            return strprintf("func %s: %s", f.name.c_str(), msg.c_str());
        };
        if (f.blocks.empty())
            return err("no blocks");
        if (f.numParams > f.numVregs)
            return err("params exceed vregs");
        for (size_t bi = 0; bi < f.blocks.size(); ++bi) {
            const Block &b = f.blocks[bi];
            if (b.insts.empty())
                return err(strprintf("block %zu empty", bi));
            for (size_t ii = 0; ii < b.insts.size(); ++ii) {
                const Inst &inst = b.insts[ii];
                const bool last = ii + 1 == b.insts.size();
                if (inst.isTerminator() != last) {
                    return err(strprintf(
                        "block %zu inst %zu: terminator placement", bi, ii));
                }
                auto checkVal = [&](const Value &v) {
                    return v.isConst ||
                           (v.vreg >= 0 && v.vreg < f.numVregs);
                };
                if (inst.hasA && !checkVal(inst.a))
                    return err("bad operand a");
                if (inst.hasB && !checkVal(inst.b))
                    return err("bad operand b");
                if (inst.dst >= f.numVregs)
                    return err("bad dst");
                for (const Value &arg : inst.args) {
                    if (!checkVal(arg))
                        return err("bad call arg");
                }
                if (inst.op == IrOp::Br || inst.op == IrOp::CondBr) {
                    if (inst.target0 < 0 ||
                        inst.target0 >= static_cast<int>(f.blocks.size()))
                        return err("bad branch target0");
                }
                if (inst.op == IrOp::CondBr) {
                    if (inst.target1 < 0 ||
                        inst.target1 >= static_cast<int>(f.blocks.size()))
                        return err("bad branch target1");
                }
                if (inst.op == IrOp::Call) {
                    if (inst.callee < 0 ||
                        inst.callee >= static_cast<int>(m.funcs.size()))
                        return err("bad callee");
                }
                if (inst.op == IrOp::AddrGlobal) {
                    if (inst.globalId < 0 ||
                        inst.globalId >= static_cast<int>(m.globals.size()))
                        return err("bad globalId");
                }
                if (inst.op == IrOp::AddrLocal) {
                    if (inst.localId < 0 ||
                        inst.localId >=
                            static_cast<int>(f.localArrays.size()))
                        return err("bad localId");
                }
                if (inst.op == IrOp::Load || inst.op == IrOp::Store) {
                    if (inst.size != 1 && inst.size != m.wordBytes())
                        return err("bad access size");
                }
            }
        }
    }
    return "";
}

std::string
print(const Module &m)
{
    std::string out = strprintf("module xlen=%d\n", m.xlen);
    for (const Global &g : m.globals) {
        out += strprintf("global %s: %lld bytes align %d (%zu init)\n",
                         g.name.c_str(), static_cast<long long>(g.bytes),
                         g.align, g.init.size());
    }
    for (const Func &f : m.funcs) {
        out += strprintf("fn %s(%d) vregs=%d%s\n", f.name.c_str(),
                         f.numParams, f.numVregs,
                         f.hasResult ? " -> int" : "");
        for (size_t la = 0; la < f.localArrays.size(); ++la) {
            out += strprintf("  frame[%zu]: %lld bytes\n", la,
                             static_cast<long long>(f.localArrays[la].bytes));
        }
        for (size_t bi = 0; bi < f.blocks.size(); ++bi) {
            out += strprintf(".b%zu:\n", bi);
            for (const Inst &inst : f.blocks[bi].insts) {
                out += "    ";
                if (inst.dst >= 0)
                    out += strprintf("v%d = ", inst.dst);
                out += opName(inst.op);
                if (inst.hasA)
                    out += " " + valueStr(inst.a);
                if (inst.hasB)
                    out += ", " + valueStr(inst.b);
                if (inst.op == IrOp::Load || inst.op == IrOp::Store ||
                    inst.op == IrOp::AddrGlobal ||
                    inst.op == IrOp::AddrLocal) {
                    out += strprintf(" imm=%lld size=%d",
                                     static_cast<long long>(inst.imm),
                                     inst.size);
                }
                if (inst.op == IrOp::AddrGlobal)
                    out += strprintf(" @%s",
                                     m.globals[inst.globalId].name.c_str());
                if (inst.op == IrOp::AddrLocal)
                    out += strprintf(" frame[%d]", inst.localId);
                if (inst.op == IrOp::Call) {
                    out += " " + m.funcs[inst.callee].name + "(";
                    for (size_t i = 0; i < inst.args.size(); ++i) {
                        if (i)
                            out += ", ";
                        out += valueStr(inst.args[i]);
                    }
                    out += ")";
                }
                if (inst.op == IrOp::Syscall) {
                    out += strprintf(" nr=%u (", inst.sysNr);
                    for (size_t i = 0; i < inst.args.size(); ++i) {
                        if (i)
                            out += ", ";
                        out += valueStr(inst.args[i]);
                    }
                    out += ")";
                }
                if (inst.op == IrOp::Br)
                    out += strprintf(" .b%d", inst.target0);
                if (inst.op == IrOp::CondBr)
                    out += strprintf(" .b%d, .b%d", inst.target0,
                                     inst.target1);
                out += "\n";
            }
        }
    }
    return out;
}

size_t
instCount(const Func &f)
{
    size_t n = 0;
    for (const Block &b : f.blocks)
        n += b.insts.size();
    return n;
}

} // namespace vstack::ir
