#include "irgen.h"

#include <cassert>
#include <map>
#include <stdexcept>

#include "support/logging.h"

namespace vstack::mcl
{

namespace
{

using ir::Inst;
using ir::IrOp;
using ir::Value;

struct CompileError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** A typed rvalue. */
struct TypedVal
{
    Value v;
    Type t;
};

/** Where a name lives. */
struct Binding
{
    enum class Kind { VregVar, LocalArray, Global, Func } kind;
    int index = -1; ///< vreg / localArray id / global id / func id
    Type type;
};

class FuncGen
{
  public:
    FuncGen(ir::Module &mod, const Module &ast, const FuncDecl &decl,
            const std::map<std::string, Binding> &moduleScope)
        : mod(mod), ast(ast), decl(decl), moduleScope(moduleScope)
    {}

    void run(ir::Func &out)
    {
        fn = &out;
        fn->name = decl.name;
        fn->numParams = static_cast<int>(decl.params.size());
        fn->hasResult = !decl.retType.isVoid();
        fn->blocks.emplace_back();
        curBlock = 0;

        pushScope();
        for (size_t i = 0; i < decl.params.size(); ++i) {
            const auto &[pname, ptype] = decl.params[i];
            if (ptype.isArray())
                fail(decl.line, "array parameters are not supported");
            Binding b{Binding::Kind::VregVar, static_cast<int>(i), ptype};
            declare(pname, b, decl.line);
        }
        fn->numVregs = fn->numParams;

        for (const StmtPtr &s : decl.body)
            genStmt(*s);
        popScope();

        // Implicit return at the end of the function.
        if (!blockTerminated()) {
            Inst ret;
            ret.op = IrOp::Ret;
            if (fn->hasResult) {
                ret.hasA = true;
                ret.a = Value::imm(0);
            }
            emit(std::move(ret));
        }
    }

  private:
    [[noreturn]] void fail(int line, const std::string &msg)
    {
        throw CompileError(strprintf("%s: line %d: %s", decl.name.c_str(),
                                     line, msg.c_str()));
    }

    // ---- scopes -------------------------------------------------------
    void pushScope() { scopes.emplace_back(); }
    void popScope() { scopes.pop_back(); }

    void declare(const std::string &name, const Binding &b, int line)
    {
        auto &scope = scopes.back();
        if (scope.count(name))
            fail(line, "redefinition of '" + name + "'");
        scope[name] = b;
    }

    const Binding *lookup(const std::string &name) const
    {
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
            auto f = it->find(name);
            if (f != it->end())
                return &f->second;
        }
        auto f = moduleScope.find(name);
        return f == moduleScope.end() ? nullptr : &f->second;
    }

    // ---- block/emit helpers -------------------------------------------
    int newBlock()
    {
        fn->blocks.emplace_back();
        return static_cast<int>(fn->blocks.size()) - 1;
    }

    bool blockTerminated() const
    {
        const auto &insts = fn->blocks[curBlock].insts;
        return !insts.empty() && insts.back().isTerminator();
    }

    void emit(Inst inst)
    {
        assert(!blockTerminated());
        fn->blocks[curBlock].insts.push_back(std::move(inst));
    }

    void switchTo(int block)
    {
        assert(blockTerminated());
        curBlock = block;
    }

    void br(int target)
    {
        Inst i;
        i.op = IrOp::Br;
        i.target0 = target;
        emit(std::move(i));
    }

    void condBr(Value cond, int thenB, int elseB)
    {
        Inst i;
        i.op = IrOp::CondBr;
        i.hasA = true;
        i.a = cond;
        i.target0 = thenB;
        i.target1 = elseB;
        emit(std::move(i));
    }

    int newVreg() { return fn->numVregs++; }

    Value emitBin(IrOp op, Value a, Value b)
    {
        Inst i;
        i.op = op;
        i.dst = newVreg();
        i.hasA = i.hasB = true;
        i.a = a;
        i.b = b;
        int dst = i.dst;
        emit(std::move(i));
        return Value::reg(dst);
    }

    Value emitMov(Value a)
    {
        Inst i;
        i.op = IrOp::Mov;
        i.dst = newVreg();
        i.hasA = true;
        i.a = a;
        int dst = i.dst;
        emit(std::move(i));
        return Value::reg(dst);
    }

    void emitMovTo(int dstVreg, Value a)
    {
        Inst i;
        i.op = IrOp::Mov;
        i.dst = dstVreg;
        i.hasA = true;
        i.a = a;
        emit(std::move(i));
    }

    Value emitLoad(Value addr, int64_t off, int size)
    {
        Inst i;
        i.op = IrOp::Load;
        i.dst = newVreg();
        i.hasA = true;
        i.a = addr;
        i.imm = off;
        i.size = size;
        int dst = i.dst;
        emit(std::move(i));
        return Value::reg(dst);
    }

    void emitStore(Value addr, int64_t off, Value val, int size)
    {
        Inst i;
        i.op = IrOp::Store;
        i.hasA = i.hasB = true;
        i.a = addr;
        i.b = val;
        i.imm = off;
        i.size = size;
        emit(std::move(i));
    }

    // ---- statements ---------------------------------------------------
    void genStmtList(const std::vector<StmtPtr> &stmts)
    {
        pushScope();
        for (const StmtPtr &s : stmts) {
            if (blockTerminated()) {
                // Unreachable code after break/return: drop it.
                break;
            }
            genStmt(*s);
        }
        popScope();
    }

    void genStmt(const Stmt &s)
    {
        switch (s.kind) {
          case StmtKind::VarDecl: {
            if (s.type.isArray()) {
                const int elem = s.type.elemBytes(mod.xlen);
                ir::LocalArray arr{s.type.arraySize * elem, elem};
                fn->localArrays.push_back(arr);
                Binding b{Binding::Kind::LocalArray,
                          static_cast<int>(fn->localArrays.size()) - 1,
                          s.type};
                declare(s.name, b, s.line);
                return;
            }
            int v = newVreg();
            if (s.expr) {
                TypedVal init = genExpr(*s.expr);
                coerceScalar(init, s.type, s.line);
                emitMovTo(v, init.v);
            } else {
                emitMovTo(v, Value::imm(0));
            }
            declare(s.name, Binding{Binding::Kind::VregVar, v, s.type},
                    s.line);
            return;
          }
          case StmtKind::Assign:
            genAssign(s);
            return;
          case StmtKind::If: {
            TypedVal cond = genExpr(*s.expr);
            int thenB = newBlock();
            int elseB = s.elseBody.empty() ? -1 : newBlock();
            int joinB = newBlock();
            condBr(cond.v, thenB, elseB >= 0 ? elseB : joinB);
            switchTo(thenB);
            genStmtList(s.body);
            if (!blockTerminated())
                br(joinB);
            if (elseB >= 0) {
                switchTo(elseB);
                genStmtList(s.elseBody);
                if (!blockTerminated())
                    br(joinB);
            }
            switchTo(joinB);
            return;
          }
          case StmtKind::While: {
            int condB = newBlock();
            int bodyB = newBlock();
            int exitB = newBlock();
            br(condB);
            switchTo(condB);
            TypedVal cond = genExpr(*s.expr);
            condBr(cond.v, bodyB, exitB);
            switchTo(bodyB);
            loopStack.push_back({condB, exitB});
            genStmtList(s.body);
            loopStack.pop_back();
            if (!blockTerminated())
                br(condB);
            switchTo(exitB);
            return;
          }
          case StmtKind::Break:
            if (loopStack.empty())
                fail(s.line, "'break' outside a loop");
            br(loopStack.back().second);
            switchTo(newBlock());
            return;
          case StmtKind::Continue:
            if (loopStack.empty())
                fail(s.line, "'continue' outside a loop");
            br(loopStack.back().first);
            switchTo(newBlock());
            return;
          case StmtKind::Return: {
            Inst i;
            i.op = IrOp::Ret;
            if (fn->hasResult) {
                if (!s.expr)
                    fail(s.line, "function must return a value");
                TypedVal v = genExpr(*s.expr);
                if (v.t.isVoid())
                    fail(s.line, "returning a void value");
                i.hasA = true;
                i.a = v.v;
            } else if (s.expr) {
                fail(s.line, "void function cannot return a value");
            }
            emit(std::move(i));
            switchTo(newBlock());
            return;
          }
          case StmtKind::ExprStmt:
            genExpr(*s.expr);
            return;
          case StmtKind::Block:
            genStmtList(s.body);
            return;
        }
    }

    void genAssign(const Stmt &s)
    {
        const Expr &target = *s.target;
        if (target.kind == ExprKind::Var) {
            const Binding *b = lookup(target.name);
            if (!b)
                fail(s.line, "undefined variable '" + target.name + "'");
            if (b->kind == Binding::Kind::VregVar) {
                TypedVal rhs = genExpr(*s.expr);
                coerceScalar(rhs, b->type, s.line);
                emitMovTo(b->index, rhs.v);
                return;
            }
            if (b->kind == Binding::Kind::Global && !b->type.isArray()) {
                TypedVal rhs = genExpr(*s.expr);
                coerceScalar(rhs, b->type, s.line);
                Value addr = emitAddrGlobal(b->index, 0);
                emitStore(addr, 0, rhs.v,
                          b->type.scalarByte() ? 1 : mod.wordBytes());
                return;
            }
            fail(s.line, "cannot assign to '" + target.name + "'");
        }
        if (target.kind == ExprKind::Index || target.kind == ExprKind::Deref) {
            auto [addr, elemType] = genAddressOf(target);
            TypedVal rhs = genExpr(*s.expr);
            coerceScalar(rhs, elemType, s.line);
            emitStore(addr, 0, rhs.v,
                      elemType.base == Base::Byte ? 1 : mod.wordBytes());
            return;
        }
        fail(s.line, "invalid assignment target");
    }

    // ---- expressions ---------------------------------------------------
    Value emitAddrGlobal(int globalId, int64_t off)
    {
        Inst i;
        i.op = IrOp::AddrGlobal;
        i.dst = newVreg();
        i.globalId = globalId;
        i.imm = off;
        int dst = i.dst;
        emit(std::move(i));
        return Value::reg(dst);
    }

    Value emitAddrLocal(int localId, int64_t off)
    {
        Inst i;
        i.op = IrOp::AddrLocal;
        i.dst = newVreg();
        i.localId = localId;
        i.imm = off;
        int dst = i.dst;
        emit(std::move(i));
        return Value::reg(dst);
    }

    /** Coerce an rvalue to a scalar variable type. */
    void coerceScalar(TypedVal &v, const Type &want, int line)
    {
        if (want.isArray())
            fail(line, "cannot assign to an array");
        if (want.isPtr()) {
            if (v.t.isPtr() || (v.v.isConst && v.v.konst == 0) ||
                v.t.scalarInt())
                return; // pointers interchange with int (flat memory)
            fail(line, "expected a pointer value");
        }
        if (want.scalarByte()) {
            // Truncate to 8 bits to keep byte vars canonical.
            if (!v.t.scalarByte())
                v.v = emitBin(IrOp::And, v.v, Value::imm(0xff));
            v.t = Type::byteTy();
            return;
        }
        // int accepts byte (already zero-extended) and int.
        if (v.t.isPtr())
            fail(line, "pointer used where int expected (use 'as int')");
    }

    /** Compute the address and element type of an Index/Deref expr. */
    std::pair<Value, Type> genAddressOf(const Expr &e)
    {
        if (e.kind == ExprKind::Deref) {
            TypedVal p = genExpr(*e.lhs);
            if (!p.t.isPtr())
                fail(e.line, "dereferencing a non-pointer");
            return {p.v, Type{p.t.base, false, -1}};
        }
        if (e.kind == ExprKind::Index) {
            TypedVal base = genExpr(*e.lhs);
            if (!base.t.isPtr())
                fail(e.line, "indexing a non-pointer/array");
            TypedVal idx = genExpr(*e.rhs);
            if (idx.t.isPtr())
                fail(e.line, "index must be an integer");
            const int elem = Type{base.t.base, false, -1}.elemBytes(mod.xlen);
            Value scaled = idx.v;
            if (elem > 1) {
                const int shift = elem == 8 ? 3 : 2;
                scaled = emitBin(IrOp::Shl, idx.v, Value::imm(shift));
            }
            Value addr = emitBin(IrOp::Add, base.v, scaled);
            return {addr, Type{base.t.base, false, -1}};
        }
        if (e.kind == ExprKind::Var) {
            const Binding *b = lookup(e.name);
            if (!b)
                fail(e.line, "undefined variable '" + e.name + "'");
            if (b->kind == Binding::Kind::LocalArray)
                fail(e.line, "array is not a scalar lvalue");
            if (b->kind == Binding::Kind::Global && !b->type.isArray())
                return {emitAddrGlobal(b->index, 0), b->type};
            fail(e.line, "cannot take the address of '" + e.name + "'");
        }
        fail(e.line, "expression is not addressable");
    }

    TypedVal genExpr(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::Num:
            return {Value::imm(maskConst(e.num)), Type::intTy()};
          case ExprKind::Str: {
            // Intern the literal as an anonymous const global.
            ir::Global g;
            g.name = strprintf("__str%zu", mod.globals.size());
            g.bytes = static_cast<int64_t>(e.str.size()) + 1;
            g.align = 1;
            g.init.assign(e.str.begin(), e.str.end());
            g.init.push_back(0);
            mod.globals.push_back(std::move(g));
            Value v = emitAddrGlobal(
                static_cast<int>(mod.globals.size()) - 1, 0);
            return {v, Type::ptrTo(Base::Byte)};
          }
          case ExprKind::Var: {
            const Binding *b = lookup(e.name);
            if (!b)
                fail(e.line, "undefined variable '" + e.name + "'");
            switch (b->kind) {
              case Binding::Kind::VregVar:
                return {Value::reg(b->index), b->type};
              case Binding::Kind::LocalArray:
                return {emitAddrLocal(b->index, 0),
                        Type::ptrTo(b->type.base)};
              case Binding::Kind::Global: {
                if (b->type.isArray()) {
                    return {emitAddrGlobal(b->index, 0),
                            Type::ptrTo(b->type.base)};
                }
                Value addr = emitAddrGlobal(b->index, 0);
                const int size = b->type.scalarByte() ? 1 : mod.wordBytes();
                return {emitLoad(addr, 0, size), b->type};
              }
              case Binding::Kind::Func:
                fail(e.line, "function name used as a value");
            }
            break;
          }
          case ExprKind::Unary: {
            TypedVal v = genExpr(*e.lhs);
            if (v.t.isPtr())
                fail(e.line, "unary operator on a pointer");
            switch (e.unOp) {
              case UnOp::Neg:
                return {emitBin(IrOp::Sub, Value::imm(0), v.v),
                        Type::intTy()};
              case UnOp::BitNot:
                return {emitBin(IrOp::Xor, v.v, Value::imm(-1)),
                        Type::intTy()};
              case UnOp::LogNot:
                return {emitBin(IrOp::CmpEq, v.v, Value::imm(0)),
                        Type::intTy()};
            }
            break;
          }
          case ExprKind::Binary:
            return genBinary(e);
          case ExprKind::Call:
            return genCall(e);
          case ExprKind::Index:
          case ExprKind::Deref: {
            auto [addr, elemType] = genAddressOf(e);
            const int size = elemType.base == Base::Byte ? 1
                                                         : mod.wordBytes();
            return {emitLoad(addr, 0, size), elemType};
          }
          case ExprKind::AddrOf: {
            auto [addr, elemType] = genAddressOf(*e.lhs);
            return {addr, Type::ptrTo(elemType.base)};
          }
          case ExprKind::Cast: {
            TypedVal v = genExpr(*e.lhs);
            const Type &to = e.castType;
            if (to.scalarByte()) {
                Value masked = emitBin(IrOp::And, v.v, Value::imm(0xff));
                return {masked, Type::byteTy()};
            }
            return {v.v, to};
          }
        }
        fail(e.line, "unsupported expression");
    }

    int64_t maskConst(int64_t v) const
    {
        return mod.xlen == 64
                   ? v
                   : static_cast<int64_t>(static_cast<int32_t>(v));
    }

    TypedVal genBinary(const Expr &e)
    {
        if (e.binOp == BinOp::LogAnd || e.binOp == BinOp::LogOr)
            return genShortCircuit(e);

        TypedVal a = genExpr(*e.lhs);
        TypedVal b = genExpr(*e.rhs);

        // Pointer arithmetic: ptr +/- int scales by the element size.
        if (a.t.isPtr() &&
            (e.binOp == BinOp::Add || e.binOp == BinOp::Sub)) {
            if (b.t.isPtr())
                fail(e.line, "pointer +/- pointer is not supported");
            const int elem = Type{a.t.base, false, -1}.elemBytes(mod.xlen);
            Value scaled = b.v;
            if (elem > 1)
                scaled = emitBin(IrOp::Shl, b.v, Value::imm(elem == 8 ? 3 : 2));
            IrOp op = e.binOp == BinOp::Add ? IrOp::Add : IrOp::Sub;
            return {emitBin(op, a.v, scaled), a.t};
        }
        if (a.t.isPtr() || b.t.isPtr()) {
            // Only (in)equality comparisons allowed without casts.
            if (e.binOp == BinOp::Eq || e.binOp == BinOp::Ne ||
                e.binOp == BinOp::ULt || e.binOp == BinOp::UGe) {
                IrOp op = e.binOp == BinOp::Eq    ? IrOp::CmpEq
                          : e.binOp == BinOp::Ne  ? IrOp::CmpNe
                          : e.binOp == BinOp::ULt ? IrOp::CmpULt
                                                  : IrOp::CmpUGe;
                return {emitBin(op, a.v, b.v), Type::intTy()};
            }
            fail(e.line, "pointer arithmetic requires 'as int'");
        }

        IrOp op;
        switch (e.binOp) {
          case BinOp::Add: op = IrOp::Add; break;
          case BinOp::Sub: op = IrOp::Sub; break;
          case BinOp::Mul: op = IrOp::Mul; break;
          case BinOp::SDiv: op = IrOp::SDiv; break;
          case BinOp::SRem: op = IrOp::SRem; break;
          case BinOp::UDiv: op = IrOp::UDiv; break;
          case BinOp::URem: op = IrOp::URem; break;
          case BinOp::And: op = IrOp::And; break;
          case BinOp::Or: op = IrOp::Or; break;
          case BinOp::Xor: op = IrOp::Xor; break;
          case BinOp::Shl: op = IrOp::Shl; break;
          case BinOp::AShr: op = IrOp::AShr; break;
          case BinOp::LShr: op = IrOp::LShr; break;
          case BinOp::Eq: op = IrOp::CmpEq; break;
          case BinOp::Ne: op = IrOp::CmpNe; break;
          case BinOp::SLt: op = IrOp::CmpSLt; break;
          case BinOp::SLe: op = IrOp::CmpSLe; break;
          case BinOp::SGt: op = IrOp::CmpSGt; break;
          case BinOp::SGe: op = IrOp::CmpSGe; break;
          case BinOp::ULt: op = IrOp::CmpULt; break;
          case BinOp::UGe: op = IrOp::CmpUGe; break;
          default:
            fail(e.line, "unsupported binary operator");
        }
        return {emitBin(op, a.v, b.v), Type::intTy()};
    }

    TypedVal genShortCircuit(const Expr &e)
    {
        const bool isAnd = e.binOp == BinOp::LogAnd;
        int result = newVreg();
        TypedVal a = genExpr(*e.lhs);
        Value aBool = emitBin(IrOp::CmpNe, a.v, Value::imm(0));
        int rhsB = newBlock();
        int shortB = newBlock();
        int joinB = newBlock();
        if (isAnd)
            condBr(aBool, rhsB, shortB);
        else
            condBr(aBool, shortB, rhsB);
        switchTo(shortB);
        emitMovTo(result, Value::imm(isAnd ? 0 : 1));
        br(joinB);
        switchTo(rhsB);
        TypedVal b = genExpr(*e.rhs);
        Value bBool = emitBin(IrOp::CmpNe, b.v, Value::imm(0));
        emitMovTo(result, bBool);
        br(joinB);
        switchTo(joinB);
        return {Value::reg(result), Type::intTy()};
    }

    TypedVal genCall(const Expr &e)
    {
        // Intrinsics.
        if (e.name == "__syscall") {
            if (e.args.size() != 3)
                fail(e.line, "__syscall takes (nr, a, b)");
            TypedVal nr = genExpr(*e.args[0]);
            if (!nr.v.isConst)
                fail(e.line, "__syscall number must be a constant");
            Inst i;
            i.op = IrOp::Syscall;
            i.dst = newVreg();
            i.sysNr = static_cast<uint32_t>(nr.v.konst);
            for (size_t k = 1; k < 3; ++k)
                i.args.push_back(genExpr(*e.args[k]).v);
            int dst = i.dst;
            emit(std::move(i));
            return {Value::reg(dst), Type::intTy()};
        }
        if (e.name == "__dcclean") {
            if (e.args.size() != 1)
                fail(e.line, "__dcclean takes 1 argument");
            TypedVal addr = genExpr(*e.args[0]);
            Inst i;
            i.op = IrOp::CacheClean;
            i.hasA = true;
            i.a = addr.v;
            emit(std::move(i));
            return {Value::imm(0), Type::voidTy()};
        }
        static const std::map<std::string, IrOp> binIntrinsics = {
            {"__udiv", IrOp::UDiv},
            {"__urem", IrOp::URem},
            {"__ultu", IrOp::CmpULt},
            {"__lshr", IrOp::LShr},
        };
        auto bi = binIntrinsics.find(e.name);
        if (bi != binIntrinsics.end()) {
            if (e.args.size() != 2)
                fail(e.line, e.name + " takes 2 arguments");
            TypedVal a = genExpr(*e.args[0]);
            TypedVal b = genExpr(*e.args[1]);
            return {emitBin(bi->second, a.v, b.v), Type::intTy()};
        }

        const Binding *b = lookup(e.name);
        if (!b || b->kind != Binding::Kind::Func)
            fail(e.line, "call to undefined function '" + e.name + "'");
        const FuncDecl &callee = ast.funcs[b->index];
        if (callee.params.size() != e.args.size()) {
            fail(e.line,
                 strprintf("'%s' expects %zu arguments, got %zu",
                           e.name.c_str(), callee.params.size(),
                           e.args.size()));
        }
        if (e.args.size() > 4)
            fail(e.line, "at most 4 call arguments are supported");

        Inst i;
        i.op = IrOp::Call;
        i.callee = b->index;
        for (size_t k = 0; k < e.args.size(); ++k) {
            TypedVal arg = genExpr(*e.args[k]);
            const Type &want = callee.params[k].second;
            if (want.isPtr() && !arg.t.isPtr() && !arg.t.scalarInt() &&
                !(arg.v.isConst && arg.v.konst == 0)) {
                fail(e.line, strprintf("argument %zu: expected pointer",
                                       k + 1));
            }
            if (!want.isPtr() && arg.t.isPtr())
                fail(e.line, strprintf("argument %zu: unexpected pointer "
                                       "(use 'as int')",
                                       k + 1));
            i.args.push_back(arg.v);
        }
        Type ret = callee.retType;
        if (!ret.isVoid())
            i.dst = newVreg();
        int dst = i.dst;
        emit(std::move(i));
        if (ret.isVoid())
            return {Value::imm(0), Type::voidTy()};
        return {Value::reg(dst), ret};
    }

    ir::Module &mod;
    const Module &ast;
    const FuncDecl &decl;
    const std::map<std::string, Binding> &moduleScope;
    ir::Func *fn = nullptr;
    int curBlock = 0;
    std::vector<std::map<std::string, Binding>> scopes;
    std::vector<std::pair<int, int>> loopStack; ///< (continue, break)
};

} // namespace

IrGenResult
generateIr(const Module &ast, int xlen)
{
    IrGenResult res;
    if (xlen != 32 && xlen != 64) {
        res.error = "xlen must be 32 or 64";
        return res;
    }
    ir::Module &m = res.module;
    m.xlen = xlen;

    try {
        std::map<std::string, Binding> moduleScope;

        // Globals first so functions can reference them.
        for (const GlobalDecl &g : ast.globals) {
            if (moduleScope.count(g.name))
                throw CompileError("duplicate global '" + g.name + "'");
            ir::Global ig;
            ig.name = g.name;
            const int elem = g.type.elemBytes(xlen);
            const int64_t count = g.type.isArray() ? g.type.arraySize : 1;
            ig.bytes = elem * count;
            ig.align = g.type.isPtr() ? xlen / 8 : elem;
            if (!g.strInit.empty() || (g.type.isArray() &&
                                       g.type.base == Base::Byte &&
                                       !g.init.empty())) {
                if (!g.strInit.empty()) {
                    ig.init.assign(g.strInit.begin(), g.strInit.end());
                    ig.init.push_back(0);
                } else {
                    for (int64_t v : g.init)
                        ig.init.push_back(static_cast<uint8_t>(v));
                }
            } else {
                for (int64_t v : g.init) {
                    for (int b = 0; b < elem; ++b)
                        ig.init.push_back(
                            static_cast<uint8_t>(v >> (8 * b)));
                }
            }
            if (static_cast<int64_t>(ig.init.size()) > ig.bytes) {
                throw CompileError(
                    strprintf("initializer for '%s' exceeds its size",
                              g.name.c_str()));
            }
            moduleScope[g.name] = Binding{
                Binding::Kind::Global,
                static_cast<int>(m.globals.size()), g.type};
            m.globals.push_back(std::move(ig));
        }

        // Function signatures.
        for (size_t fi = 0; fi < ast.funcs.size(); ++fi) {
            const FuncDecl &f = ast.funcs[fi];
            if (moduleScope.count(f.name))
                throw CompileError("duplicate definition of '" + f.name +
                                   "'");
            moduleScope[f.name] = Binding{Binding::Kind::Func,
                                          static_cast<int>(fi),
                                          f.retType};
            m.funcIndex[f.name] = static_cast<int>(fi);
        }

        // Bodies.
        m.funcs.resize(ast.funcs.size());
        for (size_t fi = 0; fi < ast.funcs.size(); ++fi) {
            FuncGen gen(m, ast, ast.funcs[fi], moduleScope);
            gen.run(m.funcs[fi]);
        }
    } catch (const CompileError &e) {
        res.error = e.what();
        return res;
    }

    std::string verr = ir::verify(m);
    if (!verr.empty()) {
        res.error = "internal: IR verification failed: " + verr;
        return res;
    }
    res.ok = true;
    return res;
}

} // namespace vstack::mcl
