/**
 * @file
 * Three-address intermediate representation.
 *
 * The IR is the repo's analog of LLVM IR in the paper's toolchain: the
 * software-level fault injector (the LLFI analog) injects bit flips
 * into the destination values of dynamic IR instructions, and the
 * fault-tolerance pass (AN-encoding + duplicated instructions)
 * rewrites IR.  The same IR feeds both guest back-ends.
 *
 * Values are virtual registers holding XLEN-bit integers (the module
 * carries the target register width).  Scalar locals and parameters
 * live in virtual registers; local arrays live in frame slots accessed
 * through AddrLocal.
 */
#ifndef VSTACK_COMPILER_IR_H
#define VSTACK_COMPILER_IR_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vstack::ir
{

enum class IrOp : uint8_t {
    // dst = a OP b
    Add, Sub, Mul, SDiv, UDiv, SRem, URem,
    And, Or, Xor, Shl, LShr, AShr,
    CmpEq, CmpNe, CmpSLt, CmpSLe, CmpSGt, CmpSGe, CmpULt, CmpUGe,
    Mov,        ///< dst = a
    Load,       ///< dst = mem[a + imm] (size bytes)
    Store,      ///< mem[a + imm] = b (size bytes)
    AddrGlobal, ///< dst = &globals[globalId] + imm
    AddrLocal,  ///< dst = &frame_array[localId] + imm
    Call,       ///< dst? = funcs[callee](args...)
    Syscall,    ///< dst = syscall(sysNr; args...)
    Br,         ///< goto target0
    CondBr,     ///< if (a != 0) goto target0 else target1
    Ret,        ///< return a (if hasA)
    CacheClean, ///< data-cache clean of the line containing address a
};

/** An operand: a virtual register or an immediate constant. */
struct Value
{
    bool isConst = true;
    int vreg = -1;
    int64_t konst = 0;

    static Value reg(int v) { return {false, v, 0}; }
    static Value imm(int64_t k) { return {true, -1, k}; }
};

/** One IR instruction. */
struct Inst
{
    IrOp op;
    int dst = -1;      ///< destination vreg, or -1
    bool hasA = false;
    bool hasB = false;
    Value a, b;
    int64_t imm = 0;   ///< Load/Store/Addr* displacement
    int size = 0;      ///< Load/Store access size in bytes
    int target0 = -1;  ///< Br/CondBr
    int target1 = -1;  ///< CondBr
    int callee = -1;   ///< Call: function index
    uint32_t sysNr = 0;
    int globalId = -1; ///< AddrGlobal
    int localId = -1;  ///< AddrLocal
    std::vector<Value> args; ///< Call/Syscall arguments

    /** True for Br/CondBr/Ret. */
    bool isTerminator() const
    {
        return op == IrOp::Br || op == IrOp::CondBr || op == IrOp::Ret;
    }
};

/** A basic block: straight-line instructions ending in a terminator. */
struct Block
{
    std::vector<Inst> insts;
};

/** A fixed-size stack array in a function frame. */
struct LocalArray
{
    int64_t bytes;
    int align;
};

struct Func
{
    std::string name;
    int numParams = 0; ///< params are vregs [0, numParams)
    int numVregs = 0;
    bool hasResult = false;
    std::vector<Block> blocks; ///< block 0 is the entry
    std::vector<LocalArray> localArrays;
};

/** A module-level variable (data bytes are the initial image). */
struct Global
{
    std::string name;
    int64_t bytes;
    int align;
    std::vector<uint8_t> init; ///< zero-padded to `bytes` at load
};

struct Module
{
    int xlen = 64; ///< target register width (32 or 64)
    std::vector<Global> globals;
    std::vector<Func> funcs;
    std::map<std::string, int> funcIndex;

    int wordBytes() const { return xlen / 8; }

    /** Find a function index by name; -1 if absent. */
    int findFunc(const std::string &name) const
    {
        auto it = funcIndex.find(name);
        return it == funcIndex.end() ? -1 : it->second;
    }
};

/**
 * Check structural invariants (terminators, operand indices, targets).
 * Returns an empty string on success or a description of the first
 * violation.
 */
std::string verify(const Module &m);

/** Human-readable dump of a module (for tests and debugging). */
std::string print(const Module &m);

/** Count instructions in a function (static size). */
size_t instCount(const Func &f);

} // namespace vstack::ir

#endif // VSTACK_COMPILER_IR_H
