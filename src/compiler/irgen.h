/**
 * @file
 * AST -> IR lowering with type checking.
 */
#ifndef VSTACK_COMPILER_IRGEN_H
#define VSTACK_COMPILER_IRGEN_H

#include <string>

#include "compiler/ast.h"
#include "compiler/ir.h"

namespace vstack::mcl
{

/** Result of lowering a module. */
struct IrGenResult
{
    bool ok = false;
    std::string error;
    ir::Module module;
};

/**
 * Lower a parsed module to IR for a target register width.
 *
 * @param ast   parsed translation unit
 * @param xlen  target register width in bits (32 or 64); determines
 *              pointer scaling and the word access size
 */
IrGenResult generateIr(const Module &ast, int xlen);

} // namespace vstack::mcl

#endif // VSTACK_COMPILER_IRGEN_H
