/**
 * @file
 * Compiler driver: MCL source -> IR -> guest program image.
 */
#ifndef VSTACK_COMPILER_COMPILE_H
#define VSTACK_COMPILER_COMPILE_H

#include <string>
#include <vector>

#include "compiler/backend.h"
#include "compiler/ir.h"
#include "isa/program.h"

namespace vstack::mcl
{

/** Result of a full build. */
struct BuildResult
{
    bool ok = false;
    std::string error;
    ir::Module ir;
    std::string asmText;
    Program program;
};

/**
 * The MCL runtime library prepended to user programs: syscall
 * wrappers (write/exit_prog/detect), printing helpers, and memory
 * utilities.  The paper's software fault-tolerance technique protects
 * only application code, so the FT pass skips these functions (see
 * runtimeFuncNames()).
 */
const std::string &runtimeSource();

/** Names of runtime-library functions (excluded from FT hardening). */
const std::vector<std::string> &runtimeFuncNames();

/** Parse + lower user source (runtime prepended) to IR. */
struct FrontendResult
{
    bool ok = false;
    std::string error;
    ir::Module module;
};
FrontendResult compileToIr(const std::string &source, int xlen,
                           bool withRuntime = true);

/** Full pipeline for a user program image (text/data in user space). */
BuildResult buildUserProgram(const std::string &source, IsaId isa,
                             bool withRuntime = true);

/** Code-generate a user image from already-transformed IR. */
BuildResult buildUserFromIr(const ir::Module &m, IsaId isa);

/** Code-generate a kernel-space image (no _start; kernel layout). */
BuildResult buildKernelFromIr(const ir::Module &m, IsaId isa,
                              uint32_t textBase, uint32_t dataBase);

} // namespace vstack::mcl

#endif // VSTACK_COMPILER_COMPILE_H
