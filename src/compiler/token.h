/**
 * @file
 * Token definitions for the MCL language.
 *
 * MCL ("mini C-like language") is the workload source language of the
 * repo: the 10 MiBench-analog workloads and the guest kernel are
 * written in it, compiled to both guest ISAs by the backend, and
 * executed at the IR level by the software-level fault injector.
 */
#ifndef VSTACK_COMPILER_TOKEN_H
#define VSTACK_COMPILER_TOKEN_H

#include <cstdint>
#include <string>

namespace vstack::mcl
{

enum class Tok : uint8_t {
    End,
    Ident,
    Number,
    String,
    CharLit,

    // keywords
    KwFn,
    KwVar,
    KwConst,
    KwIf,
    KwElse,
    KwWhile,
    KwBreak,
    KwContinue,
    KwReturn,
    KwInt,
    KwByte,
    KwAs,

    // punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Not,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    NotEq,
    AndAnd,
    OrOr,
};

struct Token
{
    Tok kind = Tok::End;
    std::string text;   ///< identifier / string payload
    int64_t value = 0;  ///< number / char payload
    int line = 0;
};

} // namespace vstack::mcl

#endif // VSTACK_COMPILER_TOKEN_H
