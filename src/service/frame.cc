#include "frame.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "support/crc32c.h"
#include "support/failpoint.h"
#include "support/logging.h"

namespace vstack::service
{

namespace
{

/** Read exactly n bytes.  1 = ok, 0 = clean EOF before any byte,
 *  -1 = torn (EOF mid-buffer), -2 = socket error. */
int
readFull(int fd, void *buf, size_t n)
{
    char *p = static_cast<char *>(buf);
    size_t got = 0;
    while (got < n) {
        if (failpoint("service.read.eintr"))
            continue; // a signal interrupted the syscall; retry
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r > 0) {
            got += static_cast<size_t>(r);
        } else if (r == 0) {
            return got == 0 ? 0 : -1;
        } else if (errno != EINTR) {
            return -2;
        }
    }
    return 1;
}

bool
writeFull(int fd, const void *buf, size_t n)
{
    const char *p = static_cast<const char *>(buf);
    size_t put = 0;
    while (put < n) {
        const ssize_t r = ::write(fd, p + put, n - put);
        if (r > 0)
            put += static_cast<size_t>(r);
        else if (r < 0 && errno != EINTR)
            return false;
    }
    return true;
}

void
putU32le(char *p, uint32_t v)
{
    p[0] = static_cast<char>(v & 0xff);
    p[1] = static_cast<char>((v >> 8) & 0xff);
    p[2] = static_cast<char>((v >> 16) & 0xff);
    p[3] = static_cast<char>((v >> 24) & 0xff);
}

uint32_t
getU32le(const char *p)
{
    const auto b = [&](int i) {
        return static_cast<uint32_t>(static_cast<unsigned char>(p[i]));
    };
    return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

} // namespace

FrameResult
readFrame(int fd, Json &out, std::string &err)
{
    char hdr[8];
    switch (readFull(fd, hdr, sizeof(hdr))) {
      case 0: return FrameResult::Eof;
      case -1:
        err = "torn frame: EOF inside the header";
        return FrameResult::Corrupt;
      case -2:
        err = std::string("read: ") + std::strerror(errno);
        return FrameResult::Error;
    }
    const uint32_t len = getU32le(hdr);
    const uint32_t crc = getU32le(hdr + 4);
    if (len > kMaxFramePayload) {
        err = strprintf("frame length %u exceeds the %zu-byte cap",
                        len, kMaxFramePayload);
        return FrameResult::Corrupt;
    }
    std::string payload(len, '\0');
    switch (readFull(fd, payload.data(), len)) {
      case 0:
      case -1:
        err = "torn frame: EOF inside the payload";
        return FrameResult::Corrupt;
      case -2:
        err = std::string("read: ") + std::strerror(errno);
        return FrameResult::Error;
    }
    const uint32_t got = crc32c(payload);
    if (got != crc) {
        err = strprintf("frame CRC mismatch (stamped %s, computed %s)",
                        crc32cHex(crc).c_str(), crc32cHex(got).c_str());
        return FrameResult::Corrupt;
    }
    std::string perr;
    out = Json::parse(payload, &perr);
    if (!perr.empty()) {
        err = "frame payload is not JSON: " + perr;
        return FrameResult::Corrupt;
    }
    return FrameResult::Ok;
}

bool
writeFrame(int fd, const Json &payload, std::string &err)
{
    const std::string body = payload.dump();
    if (body.size() > kMaxFramePayload) {
        err = "frame payload too large";
        return false;
    }
    std::string wire(8 + body.size(), '\0');
    putU32le(wire.data(), static_cast<uint32_t>(body.size()));
    putU32le(wire.data() + 4, crc32c(body));
    std::memcpy(wire.data() + 8, body.data(), body.size());

    size_t n = wire.size();
    if (failpoint("service.write.short_write")) {
        // Die mid-send from the peer's point of view: half the frame
        // reaches the wire, then the connection is abandoned.
        n = n / 2;
        if (!writeFull(fd, wire.data(), n))
            err = std::string("write: ") + std::strerror(errno);
        else
            err = "service.write.short_write failpoint tore the frame";
        return false;
    }
    if (!writeFull(fd, wire.data(), n)) {
        err = std::string("write: ") + std::strerror(errno);
        return false;
    }
    return true;
}

} // namespace vstack::service
