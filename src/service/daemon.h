/**
 * @file
 * vstackd: the persistent campaign service.
 *
 * One daemon owns one warm VulnerabilityStack (golden LRU, trace
 * cache, result store) and serves campaign manifests submitted over a
 * local UNIX socket by any number of clients.  The design goal is
 * *robustness* around the byte-identical campaign machinery of
 * core/suite: nothing a client, the kernel, or the daemon's own death
 * can do may corrupt results — only delay them.
 *
 * Request lifecycle:
 *
 *   submit -> ADMIT (queue, manifest persisted with a CRC stamp)
 *          -> RUN   (round-robin across clients, in-flight cap)
 *          -> DONE  (result frame streamed back, manifest unlinked)
 *
 * with three exits that still leave the store consistent:
 *
 *   - shed:   the queue is full -> `rejected overloaded` frame; the
 *             client backs off and retries (idempotently: a retried
 *             manifest dedups against the result store / journals).
 *   - cancel: a client cancel or the per-request deadline fires the
 *             job's CancelToken; the suite drains at safe points and a
 *             partial report (complete=false) is returned.
 *   - crash:  SIGKILL at any instruction.  Admitted manifests are on
 *             disk, sample journals are CRC-framed, and the next
 *             start() re-queues every orphaned job, whose campaigns
 *             resume exactly like `vstack suite --resume`.
 *
 * A watchdog fails any running job whose progress counters stop
 * moving for longer than the stall budget — the daemon never hangs
 * because one campaign did.  SIGTERM drains gracefully: stop
 * admitting, let in-flight work drain to its journals, keep queued
 * manifests for the next start, exit 0.
 */
#ifndef VSTACK_SERVICE_DAEMON_H
#define VSTACK_SERVICE_DAEMON_H

#include <functional>
#include <memory>
#include <string>

#include "core/suite.h"

namespace vstack::service
{

struct DaemonOptions
{
    /** UNIX socket path to listen on (created; unlinked on stop). */
    std::string socketPath;
    /** Total queued (admitted, not yet running) jobs across all
     *  clients before submissions shed with `rejected overloaded`. */
    size_t maxQueued = 16;
    /** Jobs running concurrently on the shared stack.  Jobs whose
     *  campaign keys overlap an in-flight job are held back so no two
     *  suites ever race on one journal/store entry. */
    size_t maxInflight = 1;
    /** Watchdog: fail a running job when its progress counters have
     *  not moved for this long (a stuck pool kills the job, not the
     *  daemon).  <= 0 disables. */
    double stallTimeoutSec = 300.0;
    /** Run each job's suite through a supervised worker fleet of this
     *  many processes (service/fleet.h) instead of the in-process
     *  scheduler; 0 keeps the in-process path.  Results are
     *  byte-identical either way. */
    unsigned fleetWorkers = 0;
    /** Worker binary for the fleet ("" resolves like
     *  fleet.h:defaultWorkerPath). */
    std::string fleetWorkerPath;
    /** Test hook: called (unlocked) right before a job's suite runs;
     *  may block to hold the executor busy deterministically. */
    std::function<void(const std::string &jobId)> testBeforeJob;
};

/** Serialize a SuiteReport as the daemon's result-frame payload
 *  (labels, per-entry completeness/errors, and the layer data via the
 *  store codecs). */
Json reportToJson(const SuiteReport &report);

class Daemon
{
  public:
    /** The stack's config should have `resume = true`, or recovered
     *  jobs will restart their campaigns from scratch (correct but
     *  wasteful).  The stack must outlive the daemon. */
    Daemon(VulnerabilityStack &stack, DaemonOptions opts);
    ~Daemon();

    /**
     * Bind the socket, recover persisted jobs from an earlier
     * incarnation, and start the executor + watchdog threads.
     * False with `err` on failure (socket in use, bad paths).
     */
    bool start(std::string &err);

    /**
     * Accept-and-serve until a shutdown is requested
     * (exec::installShutdownHandler's SIGTERM/SIGINT flag) or stop()
     * is called from another thread.  Returns after the graceful
     * drain completed.
     */
    void serve();

    /** Initiate the drain from any thread (idempotent). */
    void stop();

    /** Jobs re-queued from disk by start() (crash recovery). */
    size_t recoveredJobs() const;

    /** Jobs currently admitted but not finished (tests). */
    size_t pendingJobs() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace vstack::service

#endif // VSTACK_SERVICE_DAEMON_H
