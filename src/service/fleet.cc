#include "fleet.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/campaign_io.h"
#include "exec/driver.h"
#include "exec/error.h"
#include "exec/journal.h"
#include "exec/sandbox.h"
#include "service/frame.h"
#include "support/env.h"
#include "support/failpoint.h"
#include "support/logging.h"

namespace vstack::service
{

namespace
{

using steady = std::chrono::steady_clock;

double
secondsSince(steady::time_point t)
{
    return std::chrono::duration<double>(steady::now() - t).count();
}

/** The EnvConfig slice that shapes simulation results, shipped to
 *  workers in the init frame so exec'd workers reproduce the
 *  supervisor's resolved configuration (CLI flags included), not just
 *  the inherited environment. */
Json
cfgToJson(const EnvConfig &c)
{
    Json j = Json::object();
    j.set("seed", c.seed);
    j.set("uarch", static_cast<int64_t>(c.uarchFaults));
    j.set("arch", static_cast<int64_t>(c.archFaults));
    j.set("sw", static_cast<int64_t>(c.swFaults));
    j.set("watchdog", c.watchdogFactor);
    j.set("checkpoint", c.checkpoint);
    j.set("checkpoints", static_cast<int64_t>(c.checkpoints));
    j.set("goldenBudget", static_cast<int64_t>(c.goldenBudget));
    j.set("goldenCache", static_cast<int64_t>(c.goldenCache));
    if (!c.faultModel.empty())
        j.set("faultModel", c.faultModel);
    return j;
}

void
cfgApply(const Json &j, EnvConfig &c)
{
    if (!j.isObject())
        return;
    if (j.has("seed"))
        c.seed = static_cast<uint64_t>(j.at("seed").asInt());
    if (j.has("uarch"))
        c.uarchFaults = static_cast<size_t>(j.at("uarch").asInt());
    if (j.has("arch"))
        c.archFaults = static_cast<size_t>(j.at("arch").asInt());
    if (j.has("sw"))
        c.swFaults = static_cast<size_t>(j.at("sw").asInt());
    if (j.has("watchdog"))
        c.watchdogFactor = j.at("watchdog").asDouble();
    if (j.has("checkpoint"))
        c.checkpoint = j.at("checkpoint").asBool();
    if (j.has("checkpoints"))
        c.checkpoints = static_cast<unsigned>(j.at("checkpoints").asInt());
    if (j.has("goldenBudget"))
        c.goldenBudget =
            static_cast<uint64_t>(j.at("goldenBudget").asInt());
    if (j.has("goldenCache"))
        c.goldenCache = static_cast<unsigned>(j.at("goldenCache").asInt());
    // The supervisor ships the canonical tag (its stack resolved the
    // raw spec at construction), so workers apply it verbatim.
    if (j.has("faultModel"))
        c.faultModel = j.at("faultModel").asString();
}

// ---------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------

/** One unique campaign of the fleet run (duplicate specs share it). */
struct FRun
{
    enum class St {
        Pending, ///< not yet set up (journal replay pending)
        Running, ///< shards leasable / samples settling
        Done,
        Failed, ///< contained failure (golden run); nothing stored
    };

    CampaignSpec spec;
    size_t planIndex = 0;
    std::string key;
    size_t n = 0;
    St st = St::Pending;
    bool cacheHit = false;
    std::string error;

    std::unique_ptr<exec::Journal> journal;
    exec::ExecConfig ec;
    std::vector<std::optional<Json>> results; ///< index order
    std::vector<bool> settled;
    size_t settledCount = 0;
    /** Worker deaths attributed to a sample; beyond ec.retries the
     *  sample is quarantined (the sandbox path's contract). */
    std::map<size_t, unsigned> hostFailures;
    /** Shards awaiting a lease (vectors of unsettled indices). */
    std::deque<std::vector<size_t>> shards;

    /** Local driver, built lazily: verify-replay / verify-checkpoint
     *  audits and the degraded in-process fallback. */
    CampaignExec local;
    bool localPrepared = false;

    Json resultJson; ///< final store payload (set when Done)
};

struct Lease
{
    uint64_t id = 0;
    FRun *run = nullptr;
    std::vector<size_t> idx;   ///< granted sample indices
    std::vector<size_t> order; ///< worker-announced run order
    bool started = false;      ///< "start" frame received
    bool speculative = false;  ///< duplicate of a straggling lease
    bool duplicated = false;   ///< a speculative copy exists
    steady::time_point granted;
};

struct Slot
{
    pid_t pid = -1;
    int fd = -1;
    bool alive = false;
    bool retired = false;
    unsigned strikes = 0; ///< consecutive failures, reset per ack
    std::unique_ptr<Lease> lease;
    steady::time_point lastFrame;
};

struct Fleet
{
    VulnerabilityStack &stack;
    const SuiteOptions &opts;
    const FleetOptions &fopts;
    EnvConfig cfg;
    std::string workerPath;
    FleetStats stats;

    std::vector<std::unique_ptr<FRun>> runs;
    std::vector<FRun *> bySpec; ///< plan index -> run
    std::vector<Slot> slots;
    uint64_t nextLease = 1;

    size_t campaignsDone = 0;
    size_t samplesDone = 0;  ///< settled incl. journal replays
    size_t samplesTotal = 0; ///< across all non-cached campaigns
    size_t liveSamples = 0;  ///< settled by live simulation
    steady::time_point t0 = steady::now();

    Fleet(VulnerabilityStack &stack, const SuiteOptions &opts,
          const FleetOptions &fopts)
        : stack(stack), opts(opts), fopts(fopts), cfg(stack.config())
    {
    }

    bool drained() const
    {
        return exec::shutdownRequested() ||
               exec::cancelRequested(opts.cancel);
    }

    void reportProgress()
    {
        if (!opts.progress)
            return;
        SuiteProgress p;
        p.campaignsDone = campaignsDone;
        p.campaignsTotal = runs.size();
        p.samplesDone = samplesDone;
        p.samplesTotal = samplesTotal;
        const double sec = secondsSince(t0);
        p.samplesPerSec =
            sec > 0 ? static_cast<double>(liveSamples) / sec : 0.0;
        p.storageFaults = stack.storageFaults();
        p.goldenEvictions = stack.goldenEvictions();
        opts.progress(p);
    }
};

/** Build + prepare the supervisor-local driver (audits, degraded
 *  fallback).  May throw GoldenRunError. */
void
ensureLocal(Fleet &F, FRun &r)
{
    if (r.localPrepared)
        return;
    r.local = makeCampaignExec(F.stack, r.spec, r.n);
    exec::prepareDriver(*r.local.driver);
    r.localPrepared = true;
}

/** Settle one sample: journal it and record the payload.  Duplicate
 *  arrivals (speculative leases, replays) are dropped — whichever
 *  result folds first wins, and fold order is index order either way. */
void
settleSample(Fleet &F, FRun &r, size_t i, const Json *payload,
             const std::string &errMsg, const Json *triage)
{
    if (r.st != FRun::St::Running || i >= r.n || r.settled[i])
        return;
    if (r.ec.journal) {
        if (payload)
            r.ec.journal->append(i, *payload);
        else if (triage)
            r.ec.journal->appendHostFault(i, errMsg, *triage);
        else
            r.ec.journal->appendError(i, errMsg);
    }
    if (payload)
        r.results[i] = *payload;
    r.settled[i] = true;
    ++r.settledCount;
    ++F.samplesDone;
    ++F.liveSamples;
    F.reportProgress();
}

/** Contained campaign failure (golden run): the plan's other entries
 *  keep running, nothing is stored for this one. */
void
failRun(Fleet &F, FRun &r, const std::string &msg)
{
    warn("suite: campaign %s failed: %s (continuing with the rest of "
         "the plan)",
         r.spec.label().c_str(), msg.c_str());
    r.st = FRun::St::Failed;
    r.error = msg;
    r.shards.clear();
    F.samplesTotal -= std::min(F.samplesTotal, r.n);
    ++F.campaignsDone;
    F.reportProgress();
}

/** Open + replay the campaign's journal (the same policy and replay
 *  semantics as the pooled scheduler, including the verify-replay
 *  audit) and cut the remainder into shards.
 *  @throws ReplayDivergence, GoldenRunError (audit driver) */
void
setupRun(Fleet &F, FRun &r)
{
    r.journal = std::make_unique<exec::Journal>();
    r.ec = campaign_io::execPolicy(F.cfg, *r.journal, r.key, r.n,
                                   r.spec.faultModel);
    r.ec.cancel = F.opts.cancel;
    if (const uint64_t faults = r.journal->storageFaults())
        F.stack.noteStorageFaults(faults);

    r.results.assign(r.n, std::nullopt);
    r.settled.assign(r.n, false);
    std::vector<size_t> todo, verify;
    for (size_t i = 0; i < r.n; ++i) {
        const Json *rec = r.ec.journal ? r.ec.journal->find(i) : nullptr;
        if (rec) {
            if (rec->has("r")) {
                r.results[i] = rec->at("r");
                if (exec::verifyReplaySelected(i, r.ec.verifyReplay))
                    verify.push_back(i);
            }
            r.settled[i] = true; // an "err" record replays as quarantine
            ++r.settledCount;
            ++F.samplesDone;
        } else {
            todo.push_back(i);
        }
    }

    if (!verify.empty()) {
        ensureLocal(F, r);
        auto ctx = r.local.driver->makeCtx();
        for (size_t i : verify) {
            const std::string want = r.ec.journal->find(i)->at("r").dump();
            std::string got;
            try {
                got = exec::runDriverSample(*r.local.driver, *ctx, i)
                          .dump();
            } catch (const SimError &e) {
                throw ReplayDivergence(
                    "verify-replay: sample " + std::to_string(i) +
                    " replayed from the journal but failed to "
                    "re-simulate: " + e.what());
            }
            if (got != want) {
                throw ReplayDivergence(
                    "verify-replay: sample " + std::to_string(i) +
                    " diverged from its journaled record (journal " +
                    want + ", re-run " + got +
                    "); the journal does not describe this campaign");
            }
        }
    }

    size_t shard = F.fopts.shardSamples;
    if (shard == 0) {
        // Aim for a few leases per worker so kills forfeit little work
        // and stragglers can be speculated, without collapsing into
        // one-sample leases that spend more frames than simulation.
        const size_t target = std::max<size_t>(1, F.fopts.workers) * 4;
        shard = std::max<size_t>(
            1, std::min<size_t>(64, (todo.size() + target - 1) / target));
    }
    for (size_t p = 0; p < todo.size(); p += shard)
        r.shards.emplace_back(
            todo.begin() + p,
            todo.begin() + std::min(todo.size(), p + shard));
    r.st = FRun::St::Running;
    F.reportProgress();
}

/** Fold + audit + store one fully settled campaign.
 *  @throws CheckpointDivergence, GoldenRunError (audit driver) */
void
finalizeRun(Fleet &F, FRun &r)
{
    if (F.cfg.verifyCheckpoint > 0.0) {
        ensureLocal(F, r);
        exec::verifyDriverSamples(*r.local.driver, r.results);
    }
    Json out = foldCampaignSamples(r.spec, r.results);
    if (!F.drained()) {
        // Interrupted or cancelled: keep the journal, never cache a
        // partial (the serial entry points make the same call).
        F.stack.resultStore().put(r.key, out);
        if (r.journal)
            r.journal->removeFile();
    }
    r.resultJson = std::move(out);
    r.local.reset();
    r.localPrepared = false;
    r.journal.reset();
    r.ec.journal = nullptr;
    r.results = {};
    r.settled = {};
    r.st = FRun::St::Done;
    ++F.campaignsDone;
    F.reportProgress();
}

void
strike(Fleet &F, Slot &s)
{
    ++s.strikes;
    if (s.strikes > F.fopts.respawnBudget && !s.retired) {
        s.retired = true;
        ++F.stats.retired;
        warn("fleet: worker slot retired after %u consecutive failures",
             s.strikes);
    }
}

/**
 * Reap a dead worker and recover its lease.  The culprit — the first
 * sample of the worker's announced run order that never acked — is
 * charged one host-failure strike and quarantined into injectorErrors
 * once the retry budget is exhausted, exactly like a sandbox child
 * death; the rest of the shard is re-leased.  Speculative leases are
 * recovered by their primary, so their deaths only strike the slot.
 */
void
handleDeath(Fleet &F, Slot &s, exec::HostFault hf)
{
    int status = 0;
    if (s.pid > 0)
        waitpid(s.pid, &status, 0);
    if (WIFSIGNALED(status))
        hf.signal = WTERMSIG(status);
    else if (WIFEXITED(status))
        hf.exitCode = WEXITSTATUS(status);
    if (s.fd >= 0)
        close(s.fd);
    s.fd = -1;
    s.pid = -1;
    s.alive = false;
    ++F.stats.deaths;

    if (s.lease) {
        Lease &L = *s.lease;
        FRun &r = *L.run;
        hf.phase = L.started ? "run" : "setup";
        if (r.st == FRun::St::Running && !L.speculative) {
            std::vector<size_t> leftover;
            for (size_t i : L.idx)
                if (!r.settled[i])
                    leftover.push_back(i);
            if (L.started && !leftover.empty()) {
                size_t culprit = leftover.front();
                for (size_t i : L.order) {
                    if (i < r.n && !r.settled[i]) {
                        culprit = i;
                        break;
                    }
                }
                if (++r.hostFailures[culprit] > r.ec.retries) {
                    warn("fleet: quarantining sample %zu of %s after "
                         "repeated worker deaths: %s",
                         culprit, r.spec.label().c_str(),
                         hf.describe().c_str());
                    const Json triage = hf.toJson();
                    settleSample(F, r, culprit, nullptr, hf.describe(),
                                 &triage);
                    ++F.stats.hostFaultQuarantines;
                    leftover.erase(std::remove(leftover.begin(),
                                               leftover.end(), culprit),
                                   leftover.end());
                }
            }
            if (!leftover.empty())
                r.shards.push_back(std::move(leftover));
        }
        s.lease.reset();
    }
    strike(F, s);
}

void
killWorker(Slot &s)
{
    if (s.alive && s.pid > 0)
        kill(s.pid, SIGKILL);
}

bool
spawnWorker(Fleet &F, Slot &s)
{
    if (failpoint("fleet.worker.spawn")) {
        // Chaos: the spawn attempt itself fails (fork/exec denied).
        strike(F, s);
        return false;
    }
    int sv[2];
    // CLOEXEC on both ends: a worker exec'd later must not inherit the
    // supervisor side of an *earlier* worker's socketpair, or that
    // worker would never see EOF when the supervisor is SIGKILLed and
    // would orphan-hang (the kill+resume acceptance case).
    if (socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0) {
        strike(F, s);
        return false;
    }
    const pid_t pid = fork();
    if (pid < 0) {
        close(sv[0]);
        close(sv[1]);
        strike(F, s);
        return false;
    }
    if (pid == 0) {
        // Child: the worker's socket is fd 3 by convention (dup2
        // clears CLOEXEC on the duplicate, so exactly this one
        // descriptor survives the exec).
        close(sv[0]);
        if (sv[1] != 3) {
            dup2(sv[1], 3);
            close(sv[1]);
        } else {
            fcntl(3, F_SETFD, 0);
        }
        execl(F.workerPath.c_str(), "vstack-worker", "--fd", "3",
              static_cast<char *>(nullptr));
        _exit(127); // exec failed; the supervisor triages the death
    }
    close(sv[1]);
    s.pid = pid;
    s.fd = sv[0];
    s.alive = true;
    s.lastFrame = steady::now();
    ++F.stats.spawns;

    Json init = Json::object();
    init.set("op", "init");
    init.set("cfg", cfgToJson(F.cfg));
    init.set("hb", F.fopts.heartbeatSec);
    std::string err;
    if (!writeFrame(s.fd, init, err)) {
        killWorker(s);
        handleDeath(F, s, exec::HostFault{});
        return false;
    }
    return true;
}

void
grantLease(Fleet &F, Slot &s, FRun &r, std::vector<size_t> idx,
           bool speculative)
{
    auto L = std::make_unique<Lease>();
    L->id = F.nextLease++;
    L->run = &r;
    L->idx = std::move(idx);
    L->speculative = speculative;
    L->granted = steady::now();
    ++F.stats.leases;
    if (speculative)
        ++F.stats.speculativeLeases;

    Json msg = Json::object();
    msg.set("op", "lease");
    msg.set("id", L->id);
    msg.set("spec", specToJson(r.spec));
    msg.set("n", static_cast<int64_t>(r.n));
    Json arr = Json::array();
    for (size_t i : L->idx)
        arr.push(static_cast<int64_t>(i));
    msg.set("idx", std::move(arr));

    s.lease = std::move(L);
    if (failpoint("fleet.lease.grant")) {
        // Chaos: tear the lease frame on the wire.  The length prefix
        // exceeds kMaxFramePayload, so the worker's next readFrame
        // reports Corrupt immediately and the worker exits; the death
        // triage below re-leases the shard.
        static const char junk[] = "\xff\xff\xff\x7f torn lease";
        (void)!write(s.fd, junk, sizeof junk - 1);
        return;
    }
    std::string err;
    if (!writeFrame(s.fd, msg, err)) {
        killWorker(s);
        handleDeath(F, s, exec::HostFault{});
    }
}

void
assignLeases(Fleet &F)
{
    for (Slot &s : F.slots) {
        if (!s.alive || s.lease)
            continue;
        FRun *pick = nullptr;
        for (auto &up : F.runs) {
            if (up->st == FRun::St::Running && !up->shards.empty()) {
                pick = up.get();
                break;
            }
        }
        if (pick) {
            std::vector<size_t> idx = std::move(pick->shards.front());
            pick->shards.pop_front();
            grantLease(F, s, *pick, std::move(idx), false);
            continue;
        }
        // Straggler handling: the plan is nearly drained (no pending
        // shards), so duplicate the oldest outstanding primary lease
        // to this idle worker; whichever copy of a sample settles
        // first wins (settled[] dedups).
        Slot *worst = nullptr;
        for (Slot &o : F.slots) {
            if (&o == &s || !o.alive || !o.lease)
                continue;
            Lease &oL = *o.lease;
            if (oL.speculative || oL.duplicated ||
                oL.run->st != FRun::St::Running)
                continue;
            bool anyUnsettled = false;
            for (size_t i : oL.idx)
                anyUnsettled = anyUnsettled || !oL.run->settled[i];
            if (!anyUnsettled)
                continue;
            if (!worst || oL.granted < worst->lease->granted)
                worst = &o;
        }
        if (worst) {
            std::vector<size_t> idx;
            for (size_t i : worst->lease->idx)
                if (!worst->lease->run->settled[i])
                    idx.push_back(i);
            worst->lease->duplicated = true;
            grantLease(F, s, *worst->lease->run, std::move(idx), true);
        }
    }
}

void
ensureWorkers(Fleet &F)
{
    bool work = false;
    for (auto &up : F.runs)
        work = work ||
               (up->st == FRun::St::Running && !up->shards.empty());
    bool outstanding = false;
    for (Slot &s : F.slots)
        outstanding = outstanding || (s.alive && s.lease != nullptr);
    if (!work && !outstanding)
        return;
    for (Slot &s : F.slots) {
        if (s.alive || s.retired)
            continue;
        spawnWorker(F, s); // one attempt per slot per iteration
    }
}

void
dispatchFrame(Fleet &F, Slot &s, const Json &msg)
{
    if (!msg.isObject() || !msg.has("ev"))
        return;
    const std::string ev = msg.at("ev").asString();
    if (ev == "hello" || ev == "hb")
        return;
    Lease *L = s.lease.get();
    if (!L || !msg.has("lease") ||
        static_cast<uint64_t>(msg.at("lease").asInt()) != L->id)
        return; // stale frame for a lease this slot no longer holds
    FRun &r = *L->run;

    if (ev == "start") {
        L->started = true;
        L->order.clear();
        if (msg.has("order") && msg.at("order").isArray()) {
            for (const Json &v : msg.at("order").items()) {
                const int64_t i = v.asInt();
                if (i >= 0 && static_cast<size_t>(i) < r.n)
                    L->order.push_back(static_cast<size_t>(i));
            }
        }
    } else if (ev == "sample") {
        s.strikes = 0; // progress: the slot is healthy again
        if (!msg.has("i"))
            return;
        const int64_t i = msg.at("i").asInt();
        if (i < 0 || static_cast<size_t>(i) >= r.n)
            return;
        if (msg.has("r")) {
            const Json payload = msg.at("r");
            settleSample(F, r, static_cast<size_t>(i), &payload, "",
                         nullptr);
        } else {
            settleSample(F, r, static_cast<size_t>(i), nullptr,
                         msg.has("err") ? msg.at("err").asString()
                                        : "worker error",
                         nullptr);
        }
    } else if (ev == "done") {
        if (r.st == FRun::St::Running && !L->speculative) {
            // Anything unsettled at "done" is a lost ack (e.g. the
            // fleet.frame.write chaos site): re-lease it.
            std::vector<size_t> leftover;
            for (size_t i : L->idx)
                if (!r.settled[i])
                    leftover.push_back(i);
            if (!leftover.empty())
                r.shards.push_back(std::move(leftover));
        }
        s.lease.reset();
    } else if (ev == "fail") {
        if (r.st == FRun::St::Running)
            failRun(F, r,
                    msg.has("err") ? msg.at("err").asString()
                                   : "worker prepare failed");
        s.lease.reset();
    }
}

void
handleReadable(Fleet &F, Slot &s)
{
    Json msg;
    std::string err;
    const FrameResult fr = readFrame(s.fd, msg, err);
    if (fr == FrameResult::Ok) {
        s.lastFrame = steady::now();
        dispatchFrame(F, s, msg);
        return;
    }
    exec::HostFault hf;
    if (fr == FrameResult::Corrupt) {
        // A torn frame is never trusted: kill the sender and triage
        // its lease like any other death.
        hf.tornFrame = true;
        ++F.stats.tornFrames;
        killWorker(s);
    }
    handleDeath(F, s, hf);
}

void
pollWorkers(Fleet &F)
{
    std::vector<pollfd> fds;
    std::vector<Slot *> who;
    for (Slot &s : F.slots) {
        if (!s.alive)
            continue;
        fds.push_back({s.fd, POLLIN, 0});
        who.push_back(&s);
    }
    if (fds.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return;
    }
    const int rc = poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
    if (rc <= 0)
        return;
    for (size_t k = 0; k < fds.size(); ++k) {
        if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
            continue;
        if (who[k]->alive)
            handleReadable(F, *who[k]);
    }
}

void
checkTimeouts(Fleet &F)
{
    for (Slot &s : F.slots) {
        if (!s.alive)
            continue;
        const bool hung = secondsSince(s.lastFrame) > F.fopts.heartbeatSec;
        const bool expired =
            s.lease && secondsSince(s.lease->granted) > F.fopts.leaseSec;
        if (!hung && !expired)
            continue;
        warn("fleet: killing worker pid %d (%s)",
             static_cast<int>(s.pid),
             hung ? "missed heartbeats" : "lease deadline expired");
        ++F.stats.hangKills;
        exec::HostFault hf;
        hf.timedOut = true;
        killWorker(s);
        handleDeath(F, s, hf);
    }
}

/** The floor of the degradation policy: every slot retired, so finish
 *  the remaining samples with one in-process executor rather than
 *  failing the suite. */
void
runDegraded(Fleet &F)
{
    if (!F.stats.degraded)
        warn("fleet: all %zu worker slots retired; degrading to one "
             "in-process executor",
             F.slots.size());
    F.stats.degraded = true;
    for (auto &up : F.runs) {
        FRun &r = *up;
        if (r.st != FRun::St::Running)
            continue;
        if (F.drained())
            return;
        try {
            ensureLocal(F, r);
        } catch (const GoldenRunError &e) {
            failRun(F, r, e.what());
            continue;
        }
        r.shards.clear(); // everything unsettled runs locally now
        std::vector<size_t> todo;
        for (size_t i = 0; i < r.n; ++i)
            if (!r.settled[i])
                todo.push_back(i);
        const exec::LayerDriver &d = *r.local.driver;
        if (d.scheduled()) {
            std::stable_sort(todo.begin(), todo.end(),
                             [&d](size_t a, size_t b) {
                                 return d.scheduleKey(a) <
                                        d.scheduleKey(b);
                             });
        }
        auto ctx = d.makeCtx();
        for (size_t i : todo) {
            if (F.drained())
                return;
            std::optional<Json> payload;
            std::string quarantine;
            for (unsigned attempt = 0;; ++attempt) {
                try {
                    payload = exec::runDriverSample(d, *ctx, i);
                    break;
                } catch (const SimError &e) {
                    if (attempt >= r.ec.retries) {
                        quarantine = e.what();
                        break;
                    }
                }
            }
            if (payload)
                settleSample(F, r, i, &*payload, "", nullptr);
            else
                settleSample(F, r, i, nullptr, quarantine, nullptr);
        }
    }
}

void
teardown(Fleet &F)
{
    // Deliberate shutdown of whatever is still running (stragglers
    // whose results already settled via speculation, a drain, or a
    // fatal divergence): no triage, no strikes.
    for (Slot &s : F.slots) {
        if (s.alive && s.pid > 0) {
            kill(s.pid, SIGKILL);
            int status = 0;
            waitpid(s.pid, &status, 0);
        }
        if (s.fd >= 0)
            close(s.fd);
        s.fd = -1;
        s.pid = -1;
        s.alive = false;
        s.lease.reset();
    }
}

} // namespace

std::string
defaultWorkerPath()
{
    if (const char *env = std::getenv("VSTACK_WORKER"); env && *env)
        return env;
    char buf[4096];
    const ssize_t len = readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (len > 0) {
        buf[len] = '\0';
        const std::string p(buf);
        const auto slash = p.rfind('/');
        if (slash != std::string::npos)
            return p.substr(0, slash + 1) + "vstack-worker";
    }
    return "vstack-worker";
}

SuiteReport
runFleetSuite(VulnerabilityStack &stack, const CampaignPlan &plan,
              const SuiteOptions &opts, const FleetOptions &fopts,
              FleetStats *statsOut)
{
    signal(SIGPIPE, SIG_IGN); // dead workers surface as write errors
    Fleet F(stack, opts, fopts);
    F.workerPath =
        fopts.workerPath.empty() ? defaultWorkerPath() : fopts.workerPath;

    // Deduplicate the plan by store key and short-circuit cache hits,
    // exactly like runSuite().
    std::map<std::string, FRun *> byKey;
    for (size_t idx = 0; idx < plan.size(); ++idx) {
        const CampaignSpec &spec = plan.specs()[idx];
        const std::string key = campaignKey(F.cfg, spec);
        auto it = byKey.find(key);
        if (it != byKey.end()) {
            F.bySpec.push_back(it->second);
            continue;
        }
        auto run = std::make_unique<FRun>();
        run->spec = spec;
        run->planIndex = idx;
        run->key = key;
        run->n = campaignSamples(F.cfg, spec);
        if (auto cached = stack.resultStore().get(key)) {
            run->cacheHit = true;
            run->st = FRun::St::Done;
            run->resultJson = std::move(*cached);
            ++F.campaignsDone;
        } else {
            F.samplesTotal += run->n;
        }
        byKey.emplace(key, run.get());
        F.bySpec.push_back(run.get());
        F.runs.push_back(std::move(run));
    }

    try {
        for (auto &up : F.runs) {
            FRun &r = *up;
            if (r.st != FRun::St::Pending)
                continue;
            try {
                setupRun(F, r);
            } catch (const ReplayDivergence &) {
                throw; // suite-fatal, like the pooled scheduler
            } catch (const GoldenRunError &e) {
                failRun(F, r, e.what()); // contained (audit driver)
            }
        }

        F.slots.resize(std::max(1u, fopts.workers));
        for (;;) {
            if (F.drained())
                break;
            for (auto &up : F.runs) {
                FRun &r = *up;
                if (r.st == FRun::St::Running && r.settledCount == r.n)
                    finalizeRun(F, r);
            }
            bool anyActive = false;
            for (auto &up : F.runs)
                anyActive = anyActive || up->st == FRun::St::Running;
            if (!anyActive)
                break;
            bool allRetired = true;
            for (Slot &s : F.slots)
                allRetired = allRetired && s.retired;
            if (allRetired) {
                runDegraded(F);
                continue; // re-run the finalize/exit checks above
            }
            ensureWorkers(F);
            assignLeases(F);
            pollWorkers(F);
            checkTimeouts(F);
        }
    } catch (...) {
        teardown(F);
        if (statsOut)
            *statsOut = F.stats;
        throw;
    }
    teardown(F);

    SuiteReport report;
    report.outcomes.reserve(plan.size());
    for (size_t idx = 0; idx < plan.size(); ++idx) {
        FRun *r = F.bySpec[idx];
        CampaignOutcome o;
        o.spec = plan.specs()[idx];
        o.cacheHit = r->cacheHit;
        if (r->st == FRun::St::Done) {
            o.complete = true;
            decodeCampaignOutcome(o, r->resultJson);
            if (o.cacheHit)
                ++report.cacheHits;
        } else if (r->st == FRun::St::Failed) {
            o.error = r->error;
            ++report.failures;
        } else {
            report.interrupted = true;
        }
        report.outcomes.push_back(std::move(o));
    }
    if (F.drained())
        report.interrupted = true;
    report.storageFaults = stack.storageFaults();
    report.goldenEvictions = stack.goldenEvictions();
    if (statsOut)
        *statsOut = F.stats;
    return report;
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

namespace
{

/** Frame writer shared by the worker's main loop and its heartbeat
 *  thread; the mutex keeps frames whole on the wire. */
struct WireWriter
{
    int fd = -1;
    std::mutex mu;
    bool ok = true;

    bool send(const Json &msg)
    {
        std::lock_guard<std::mutex> g(mu);
        if (!ok)
            return false;
        std::string err;
        if (!writeFrame(fd, msg, err))
            ok = false;
        return ok;
    }
};

/** Deterministic worker-death hook for the fleet tests: crash or hang
 *  when sample <i> is reached.  "<i>" acts every time (persistent
 *  failure -> quarantine); "<i>:<path>" acts only while <path> exists
 *  and consumes it (fail once, succeed on the re-lease). */
struct TestHook
{
    bool armed = false;
    size_t sample = 0;
    std::string onceFile;

    static TestHook parse(const char *env)
    {
        TestHook h;
        const char *v = std::getenv(env);
        if (!v || !*v)
            return h;
        const std::string s(v);
        const auto colon = s.find(':');
        try {
            h.sample = std::stoull(
                colon == std::string::npos ? s : s.substr(0, colon));
        } catch (const std::exception &) {
            return h;
        }
        if (colon != std::string::npos)
            h.onceFile = s.substr(colon + 1);
        h.armed = true;
        return h;
    }

    bool fires(size_t i)
    {
        if (!armed || i != sample)
            return false;
        if (!onceFile.empty())
            return unlink(onceFile.c_str()) == 0;
        return true;
    }
};

struct PreparedCampaign
{
    std::string tag;
    size_t n = 0;
    CampaignExec ce;
};

} // namespace

int
runFleetWorker(int fd)
{
    signal(SIGPIPE, SIG_IGN); // a dead supervisor is a write error
    std::string err;
    Json init;
    if (readFrame(fd, init, err) != FrameResult::Ok || !init.isObject() ||
        !init.has("op") || init.at("op").asString() != "init")
        return 2;
    EnvConfig cfg = EnvConfig::fromEnvironment();
    if (init.has("cfg"))
        cfgApply(init.at("cfg"), cfg);
    // Workers own no persistent state: no store, no journal, no
    // sandbox, no audits — the supervisor does all of that once.
    cfg.resultsDir.clear();
    cfg.jobs = 1;
    cfg.resume = false;
    cfg.isolate = false;
    cfg.verifyReplay = 0.0;
    cfg.verifyCheckpoint = 0.0;
    const double hb = init.has("hb") ? init.at("hb").asDouble() : 10.0;

    TestHook crashAt = TestHook::parse("VSTACK_FLEET_TEST_CRASH");
    TestHook hangAt = TestHook::parse("VSTACK_FLEET_TEST_HANG");

    VulnerabilityStack stack(cfg);
    WireWriter w;
    w.fd = fd;
    {
        Json hello = Json::object();
        hello.set("ev", "hello");
        hello.set("pid", static_cast<int64_t>(getpid()));
        if (!w.send(hello))
            return 0;
    }

    // Heartbeat thread: keeps the supervisor's liveness clock moving
    // through long prepares (golden runs) and long samples.
    std::atomic<bool> stop{false};
    std::thread hbThread([&] {
        const double period = std::max(0.05, hb / 4.0);
        double slept = 0.0;
        while (!stop.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            slept += 0.05;
            if (slept < period)
                continue;
            slept = 0.0;
            Json m = Json::object();
            m.set("ev", "hb");
            if (!w.send(m))
                break;
        }
    });

    int rc = 0;
    const unsigned retries = exec::ExecConfig{}.retries;
    std::deque<PreparedCampaign> cache; // tiny LRU of prepared drivers
    for (;;) {
        Json msg;
        const FrameResult fr = readFrame(fd, msg, err);
        if (fr == FrameResult::Eof)
            break; // supervisor gone (or done with us)
        if (fr != FrameResult::Ok) {
            rc = 2; // corrupt stream: never act on an untrusted frame
            break;
        }
        if (!msg.isObject() || !msg.has("op")) {
            rc = 2;
            break;
        }
        const std::string op = msg.at("op").asString();
        if (op == "exit")
            break;
        if (op != "lease")
            continue;

        const uint64_t leaseId =
            msg.has("id") ? static_cast<uint64_t>(msg.at("id").asInt())
                          : 0;
        auto sendFail = [&](const std::string &what) {
            Json f = Json::object();
            f.set("ev", "fail");
            f.set("lease", leaseId);
            f.set("err", what);
            w.send(f);
        };

        CampaignSpec spec;
        std::string perr;
        if (!msg.has("spec") || !msg.has("n") || !msg.has("idx") ||
            !msg.at("idx").isArray() ||
            !specFromJson(msg.at("spec"), spec, perr)) {
            sendFail(perr.empty() ? "malformed lease frame" : perr);
            continue;
        }
        const size_t n = static_cast<size_t>(msg.at("n").asInt());
        std::vector<size_t> idx;
        for (const Json &v : msg.at("idx").items()) {
            const int64_t i = v.asInt();
            if (i >= 0 && static_cast<size_t>(i) < n)
                idx.push_back(static_cast<size_t>(i));
        }

        const std::string tag = specToJson(spec).dump();
        CampaignExec *ce = nullptr;
        for (auto &p : cache)
            if (p.tag == tag && p.n == n)
                ce = &p.ce;
        if (!ce) {
            PreparedCampaign p;
            p.tag = tag;
            p.n = n;
            try {
                p.ce = makeCampaignExec(stack, spec, n);
                exec::prepareDriver(*p.ce.driver);
            } catch (const GoldenRunError &e) {
                sendFail(e.what());
                continue;
            }
            if (cache.size() >= 2)
                cache.pop_front();
            cache.push_back(std::move(p));
            ce = &cache.back().ce;
        }
        const exec::LayerDriver &d = *ce->driver;

        // Announce the run order (scheduleKey dispatch, like the
        // pooled scheduler) so the supervisor can attribute a death
        // to the exact first unacked sample.
        std::vector<size_t> order = idx;
        if (d.scheduled()) {
            std::stable_sort(order.begin(), order.end(),
                             [&d](size_t a, size_t b) {
                                 return d.scheduleKey(a) <
                                        d.scheduleKey(b);
                             });
        }
        {
            Json st = Json::object();
            st.set("ev", "start");
            st.set("lease", leaseId);
            Json arr = Json::array();
            for (size_t i : order)
                arr.push(static_cast<int64_t>(i));
            st.set("order", std::move(arr));
            if (!w.send(st))
                break;
        }

        bool lostSupervisor = false;
        auto ctx = d.makeCtx();
        for (size_t i : order) {
            if (crashAt.fires(i))
                raise(SIGKILL);
            if (hangAt.fires(i)) {
                // A genuinely wedged process sends nothing at all, so
                // silence the heartbeat thread too; the supervisor
                // must detect this via missed heartbeats (or, with a
                // huge heartbeat budget, route around it by
                // speculating the lease to another worker).
                stop.store(true, std::memory_order_relaxed);
                for (;;)
                    sleep(1000);
            }
            std::optional<Json> payload;
            std::string quarantine;
            for (unsigned attempt = 0;; ++attempt) {
                try {
                    payload = exec::runDriverSample(d, *ctx, i);
                    break;
                } catch (const SimError &e) {
                    if (attempt >= retries) {
                        quarantine = e.what();
                        break;
                    }
                }
            }
            if (failpoint("fleet.frame.write"))
                continue; // chaos: swallow this ack (lost on the wire)
            Json sm = Json::object();
            sm.set("ev", "sample");
            sm.set("lease", leaseId);
            sm.set("i", static_cast<int64_t>(i));
            if (payload)
                sm.set("r", std::move(*payload));
            else
                sm.set("err", quarantine);
            if (!w.send(sm)) {
                lostSupervisor = true;
                break;
            }
        }
        if (lostSupervisor)
            break;
        Json dn = Json::object();
        dn.set("ev", "done");
        dn.set("lease", leaseId);
        if (!w.send(dn))
            break;
    }
    stop.store(true, std::memory_order_relaxed);
    hbThread.join();
    return rc;
}

} // namespace vstack::service
