/**
 * @file
 * CRC-framed JSON messages over a stream socket.
 *
 * The vstackd wire format mirrors the journal's corruption stance: a
 * frame is `u32le payloadLen | u32le crc32c(payload) | payload`, where
 * the payload is one serialized JSON value.  A torn frame (short read
 * at EOF) or a CRC/parse mismatch is *detected*, never trusted — the
 * daemon rejects the connection that sent it and keeps serving
 * everyone else, exactly as a corrupt journal line quarantines one
 * record instead of poisoning a campaign.
 *
 * Reads and writes retry EINTR and loop over short transfers.  The
 * chaos failpoints `service.read.eintr` and `service.write.short_write`
 * (support/failpoint.h) deterministically exercise both paths: the
 * first injects spurious interruptions the loop must absorb, the
 * second truncates a send mid-frame, leaving the torn bytes for the
 * peer's CRC check to catch.
 */
#ifndef VSTACK_SERVICE_FRAME_H
#define VSTACK_SERVICE_FRAME_H

#include <string>

#include "support/json.h"

namespace vstack::service
{

/** Frames above this are rejected as corrupt (a real manifest or
 *  report is kilobytes; a 100 MB length prefix is garbage or abuse). */
constexpr size_t kMaxFramePayload = 16u << 20;

enum class FrameResult {
    Ok,      ///< a well-formed frame was read
    Eof,     ///< clean EOF on a frame boundary (peer closed)
    Corrupt, ///< torn frame, CRC mismatch, oversize, or bad JSON
    Error,   ///< socket error (errno-level failure)
};

/**
 * Read one frame.  Blocks until a full frame, EOF, or error.
 * On Corrupt/Error, `err` carries a one-line diagnosis.
 */
FrameResult readFrame(int fd, Json &out, std::string &err);

/**
 * Write one frame (all-or-error; EINTR and short writes are retried).
 * Returns false with `err` set on failure — including a fired
 * `service.write.short_write` failpoint, which truncates the frame on
 * the wire and then reports failure so the caller drops the
 * connection like a real mid-send crash.
 */
bool writeFrame(int fd, const Json &payload, std::string &err);

} // namespace vstack::service

#endif // VSTACK_SERVICE_FRAME_H
