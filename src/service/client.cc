#include "client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/frame.h"
#include "support/logging.h"

namespace vstack::service
{

namespace
{

int
connectOnce(const std::string &path, std::string &err)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        err = "socket path too long: " + path;
        return -1;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        err = "connect " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

uint64_t
clientJitterSeed(uint64_t salt, uint64_t fallback)
{
    uint64_t seed = fallback;
    if (const char *env = std::getenv("VSTACK_SEED"); env && *env) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (end && *end == '\0')
            seed = static_cast<uint64_t>(v);
    }
    // splitmix64: decorrelate clients sharing one VSTACK_SEED.
    uint64_t h = seed + 0x9E3779B97F4A7C15ull * (salt + 1);
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    return h ^ (h >> 31);
}

Client::Client(ClientOptions o) : opts(std::move(o)), rngState(opts.seed)
{
    if (rngState == 0)
        rngState = 1;
}

double
Client::backoffDelay(unsigned attempt)
{
    // xorshift64 jitter: deterministic per seed, +/- 50% around an
    // exponentially growing base so colliding clients spread out.
    rngState ^= rngState << 13;
    rngState ^= rngState >> 7;
    rngState ^= rngState << 17;
    const double unit =
        static_cast<double>(rngState % 1000) / 1000.0; // [0,1)
    const double base =
        opts.backoffBaseSec * static_cast<double>(1u << std::min(attempt, 10u));
    return base * (0.5 + unit);
}

int
Client::connectWithBackoff(std::string &err)
{
    for (unsigned attempt = 0;; ++attempt) {
        const int fd = connectOnce(opts.socketPath, err);
        if (fd >= 0)
            return fd;
        if (attempt + 1 >= opts.maxAttempts)
            return -1;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(backoffDelay(attempt)));
    }
}

Json
Client::submit(const Json &manifest, bool harden, double deadlineSec,
               const std::function<void(const Json &)> &progress,
               std::string &err)
{
    Json req = Json::object();
    req.set("op", "submit");
    req.set("client", opts.name);
    req.set("manifest", manifest);
    if (harden)
        req.set("harden", true);
    if (deadlineSec > 0)
        req.set("deadline", deadlineSec);

    std::string lastErr;
    for (unsigned attempt = 0; attempt < opts.maxAttempts; ++attempt) {
        if (attempt > 0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                backoffDelay(attempt - 1)));
        }
        const int fd = connectOnce(opts.socketPath, lastErr);
        if (fd < 0)
            continue;
        if (!writeFrame(fd, req, lastErr)) {
            ::close(fd);
            continue;
        }
        // Read frames until the final one.  Any disconnect or corrupt
        // frame mid-stream falls back to the retry loop: the
        // resubmission dedups against the store/journals, so nothing
        // runs twice.
        for (;;) {
            Json ev;
            const FrameResult fr = readFrame(fd, ev, lastErr);
            if (fr != FrameResult::Ok) {
                if (lastErr.empty())
                    lastErr = "connection closed mid-stream";
                break;
            }
            const std::string kind =
                ev.isObject() && ev.has("ev") ? ev.at("ev").asString()
                                              : "";
            if (kind == "accepted") {
                continue;
            } else if (kind == "progress") {
                if (progress)
                    progress(ev);
                continue;
            } else if (kind == "rejected") {
                // Shed (overloaded/draining): back off and retry.
                lastErr = "rejected: " + ev.at("reason").asString();
                // A rejected manifest (parse error) will never
                // succeed; surface it instead of retrying.
                const std::string &r = ev.at("reason").asString();
                if (r != "overloaded" && r != "draining") {
                    ::close(fd);
                    return ev;
                }
                break;
            } else if (kind == "error" && ev.has("deferred")) {
                // Daemon drained under us; its restart resumes the
                // job, so a retry is the right response.
                lastErr = "daemon draining";
                break;
            } else {
                ::close(fd);
                return ev; // result (or terminal error) frame
            }
        }
        ::close(fd);
    }
    err = "submit failed after " + std::to_string(opts.maxAttempts) +
          " attempts: " + lastErr;
    return Json();
}

Json
Client::status(std::string &err)
{
    const int fd = connectWithBackoff(err);
    if (fd < 0)
        return Json();
    Json req = Json::object();
    req.set("op", "status");
    Json out;
    if (writeFrame(fd, req, err)) {
        if (readFrame(fd, out, err) != FrameResult::Ok && err.empty())
            err = "connection closed before the status reply";
    }
    ::close(fd);
    return out;
}

Json
Client::cancel(const std::string &jobId, std::string &err)
{
    const int fd = connectWithBackoff(err);
    if (fd < 0)
        return Json();
    Json req = Json::object();
    req.set("op", "cancel");
    req.set("job", jobId);
    Json out;
    if (writeFrame(fd, req, err)) {
        if (readFrame(fd, out, err) != FrameResult::Ok && err.empty())
            err = "connection closed before the cancel reply";
    }
    ::close(fd);
    return out;
}

} // namespace vstack::service
