#include "daemon.h"

#include "fleet.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/campaign_io.h"
#include "exec/sandbox.h"
#include "service/frame.h"
#include "support/crc32c.h"
#include "support/failpoint.h"
#include "support/logging.h"

namespace vstack::service
{

namespace fs = std::filesystem;
using namespace campaign_io;

Json
reportToJson(const SuiteReport &report)
{
    Json out = Json::object();
    out.set("interrupted", report.interrupted);
    out.set("cacheHits", static_cast<uint64_t>(report.cacheHits));
    out.set("failures", static_cast<uint64_t>(report.failures));
    out.set("storageFaults", report.storageFaults);
    out.set("goldenEvictions", report.goldenEvictions);
    Json outcomes = Json::array();
    for (const CampaignOutcome &o : report.outcomes) {
        Json e = Json::object();
        e.set("label", o.spec.label());
        e.set("cacheHit", o.cacheHit);
        e.set("complete", o.complete);
        if (!o.error.empty())
            e.set("error", o.error);
        if (o.complete) {
            e.set("data", o.spec.layer == CampaignLayer::Uarch
                              ? uarchToJson(o.uarch)
                              : countsToJson(o.counts));
        }
        outcomes.push(std::move(e));
    }
    out.set("outcomes", std::move(outcomes));
    return out;
}

namespace
{

Json
progressToJson(const SuiteProgress &p)
{
    Json out = Json::object();
    out.set("ev", "progress");
    out.set("campaignsDone", static_cast<uint64_t>(p.campaignsDone));
    out.set("campaignsTotal", static_cast<uint64_t>(p.campaignsTotal));
    out.set("samplesDone", static_cast<uint64_t>(p.samplesDone));
    out.set("samplesTotal", static_cast<uint64_t>(p.samplesTotal));
    return out;
}

Json
errorFrame(const std::string &reason)
{
    Json out = Json::object();
    out.set("ev", "error");
    out.set("reason", reason);
    return out;
}

Json
rejectedFrame(const std::string &reason)
{
    Json out = Json::object();
    out.set("ev", "rejected");
    out.set("reason", reason);
    return out;
}

/** Structured rejection for an inadmissible manifest (parse error,
 *  unknown axis value, unknown fault model): the machine-matchable
 *  reason is the fixed string "bad-manifest", the human-readable
 *  cause rides in "detail".  Never fatal, never enqueued. */
Json
badManifestFrame(const std::string &detail)
{
    Json out = rejectedFrame("bad-manifest");
    out.set("detail", detail);
    return out;
}

} // namespace

struct Daemon::Impl
{
    struct Job
    {
        enum class St { Queued, Running, Done };

        std::string id;
        std::string client;
        Json manifest;
        bool harden = false;
        double deadlineSec = 0.0;
        std::string file; ///< persisted manifest ("" = not persisted)
        CampaignPlan plan;
        std::vector<std::string> keys; ///< store keys (overlap check)

        exec::CancelToken token;
        St st = St::Queued;
        SuiteProgress progress;
        uint64_t progressTick = 0; ///< bumps on every callback
        bool deferred = false;     ///< drain began before it could run
        std::string error;         ///< non-empty: job failed
        Json result;               ///< report payload when it ran
    };

    VulnerabilityStack &stack;
    DaemonOptions opts;
    std::string jobsDir; ///< "" = persistence unavailable

    std::mutex mu;
    std::condition_variable cv; ///< executor + streamer wakeups
    std::map<std::string, std::deque<std::shared_ptr<Job>>> queues;
    std::vector<std::string> rrClients; ///< arrival order
    size_t rrNext = 0;
    size_t queuedCount = 0;
    std::vector<std::shared_ptr<Job>> running;
    std::set<std::string> inflightKeys;
    size_t doneCount = 0;
    size_t recovered = 0;
    uint64_t seq = 0;
    bool draining = false;

    int listenFd = -1;
    std::vector<std::thread> executors;
    std::thread watchdog;
    std::vector<std::thread> conns;

    Impl(VulnerabilityStack &stack, DaemonOptions o)
        : stack(stack), opts(std::move(o))
    {
    }

    // ---- persistence ------------------------------------------------

    /** Persist a job's manifest with a CRC stamp so a SIGKILL between
     *  admission and completion can never lose or corrupt it. */
    bool persistJob(Job &j)
    {
        if (jobsDir.empty())
            return false;
        Json body = Json::object();
        body.set("id", j.id);
        body.set("client", j.client);
        body.set("harden", j.harden);
        body.set("deadline", j.deadlineSec);
        body.set("manifest", j.manifest);
        const std::string text = body.dump();
        Json env = Json::object();
        env.set("crc", static_cast<uint64_t>(crc32c(text)));
        env.set("job", std::move(body));
        const std::string path = jobsDir + "/" + j.id + ".json";
        // Durable content + directory entry: a power loss right after
        // admission must not vanish (or tear) an acked job.
        if (!writeFileDurable(path, env.dump())) {
            warn("vstackd: cannot persist %s (recovery for this job "
                 "disabled)",
                 path.c_str());
            return false;
        }
        fsyncDir(jobsDir);
        j.file = path;
        return true;
    }

    void retireJobFile(Job &j)
    {
        if (j.file.empty())
            return;
        std::error_code ec;
        fs::remove(j.file, ec);
        // Make the unlink durable too, or a crash could resurrect a
        // completed job (correct but wasted work on recovery).
        fsyncDir(jobsDir);
        j.file.clear();
    }

    /** Re-queue every manifest an earlier incarnation left behind.
     *  Corrupt files are quarantined to `.corrupt`, never trusted. */
    void recoverJobs()
    {
        if (jobsDir.empty())
            return;
        std::vector<std::string> files;
        std::error_code ec;
        for (const auto &de : fs::directory_iterator(jobsDir, ec)) {
            if (de.path().extension() == ".json")
                files.push_back(de.path().string());
        }
        std::sort(files.begin(), files.end());
        for (const std::string &path : files) {
            std::string text, reason;
            Json env;
            if (!readFile(path, text)) {
                reason = "unreadable";
            } else {
                env = Json::parse(text, &reason);
            }
            std::string err;
            std::shared_ptr<Job> job;
            if (reason.empty()) {
                if (!env.isObject() || !env.has("crc") ||
                    !env.has("job")) {
                    reason = "missing crc/job fields";
                } else if (crc32c(env.at("job").dump()) !=
                           static_cast<uint32_t>(
                               env.at("crc").asInt())) {
                    reason = "CRC mismatch";
                } else {
                    const Json &body = env.at("job");
                    job = std::make_shared<Job>();
                    job->id = body.at("id").asString();
                    job->client = body.at("client").asString();
                    job->harden = body.at("harden").asBool();
                    job->deadlineSec = body.at("deadline").asDouble();
                    job->manifest = body.at("manifest");
                    job->file = path;
                    if (!planFromManifest(job->manifest, job->harden,
                                          job->plan, err)) {
                        reason = err;
                        job.reset();
                    }
                }
            }
            if (!job) {
                warn("vstackd: quarantining corrupt job file %s (%s)",
                     path.c_str(), reason.c_str());
                std::error_code mec;
                fs::rename(path, path + ".corrupt", mec);
                continue;
            }
            for (const CampaignSpec &spec : job->plan.specs())
                job->keys.push_back(campaignKey(stack.config(), spec));
            // Track the recovered id so fresh ids never collide.
            if (job->id.size() > 4 && job->id.compare(0, 4, "job-") == 0)
                seq = std::max<uint64_t>(
                    seq, std::strtoull(job->id.c_str() + 4, nullptr, 10));
            enqueueLocked(job);
            ++recovered;
        }
        if (recovered)
            warn("vstackd: recovered %zu interrupted job(s); resuming",
                 recovered);
    }

    // ---- admission --------------------------------------------------

    /** Call under mu. */
    void enqueueLocked(const std::shared_ptr<Job> &job)
    {
        auto it = queues.find(job->client);
        if (it == queues.end()) {
            queues.emplace(job->client, std::deque<std::shared_ptr<Job>>{});
            rrClients.push_back(job->client);
        }
        queues[job->client].push_back(job);
        ++queuedCount;
        cv.notify_all();
    }

    /** Round-robin claim of the next runnable job: one whose campaign
     *  keys do not overlap any in-flight job's.  Call under mu. */
    std::shared_ptr<Job> claimLocked()
    {
        if (rrClients.empty())
            return nullptr;
        for (size_t probe = 0; probe < rrClients.size(); ++probe) {
            const size_t c = (rrNext + probe) % rrClients.size();
            auto &q = queues[rrClients[c]];
            for (auto it = q.begin(); it != q.end(); ++it) {
                const auto &job = *it;
                const bool overlap = std::any_of(
                    job->keys.begin(), job->keys.end(),
                    [this](const std::string &k) {
                        return inflightKeys.count(k) != 0;
                    });
                if (overlap)
                    continue; // held back; try this client's next job
                std::shared_ptr<Job> claimed = job;
                q.erase(it);
                --queuedCount;
                rrNext = (c + 1) % rrClients.size();
                claimed->st = Job::St::Running;
                for (const std::string &k : claimed->keys)
                    inflightKeys.insert(k);
                running.push_back(claimed);
                return claimed;
            }
        }
        return nullptr;
    }

    // ---- execution --------------------------------------------------

    void executorLoop()
    {
        std::unique_lock<std::mutex> lock(mu);
        for (;;) {
            std::shared_ptr<Job> job;
            cv.wait(lock, [&] {
                return draining || (job = claimLocked()) != nullptr;
            });
            if (!job) {
                // Draining: queued jobs stay persisted for the next
                // incarnation; mark them deferred so streamers let
                // their clients go.
                for (auto &kv : queues) {
                    for (auto &j : kv.second) {
                        j->deferred = true;
                        j->st = Job::St::Done;
                    }
                }
                cv.notify_all();
                return;
            }
            lock.unlock();
            runJob(*job);
            lock.lock();
            finishLocked(job);
        }
    }

    void runJob(Job &job)
    {
        if (opts.testBeforeJob)
            opts.testBeforeJob(job.id);
        if (job.deadlineSec > 0)
            job.token.setDeadlineAfter(job.deadlineSec);
        SuiteOptions so;
        so.cancel = &job.token;
        so.progress = [this, &job](const SuiteProgress &p) {
            std::lock_guard<std::mutex> g(mu);
            job.progress = p;
            ++job.progressTick;
            cv.notify_all();
        };
        try {
            SuiteReport report;
            FleetStats fstats;
            if (opts.fleetWorkers > 0) {
                FleetOptions fo;
                fo.workers = opts.fleetWorkers;
                fo.workerPath = opts.fleetWorkerPath;
                report =
                    runFleetSuite(stack, job.plan, so, fo, &fstats);
                if (fstats.degraded)
                    warn("vstackd: %s ran degraded (fleet fell back "
                         "to one in-process executor)",
                         job.id.c_str());
            } else {
                report = runSuite(stack, job.plan, so);
            }
            Json out = reportToJson(report);
            out.set("ev", "result");
            out.set("job", job.id);
            if (opts.fleetWorkers > 0 && fstats.degraded)
                out.set("fleetDegraded", true);
            if (report.interrupted && job.token.cancelled())
                out.set("cancelReason", job.token.reason());
            std::lock_guard<std::mutex> g(mu);
            job.result = std::move(out);
        } catch (const std::exception &e) {
            // Suite-fatal (divergence audits): the job failed; the
            // daemon and every other job keep going.
            warn("vstackd: %s failed: %s", job.id.c_str(), e.what());
            std::lock_guard<std::mutex> g(mu);
            job.error = e.what();
        }
    }

    /** Call under mu. */
    void finishLocked(const std::shared_ptr<Job> &job)
    {
        running.erase(std::find(running.begin(), running.end(), job));
        for (const std::string &k : job->keys)
            inflightKeys.erase(k);
        job->st = Job::St::Done;
        ++doneCount;
        // Keep the manifest only when the *process* is draining (the
        // next incarnation resumes it).  A deadline/cancel/watchdog
        // drain is a delivered (partial) result, not pending work.
        if (!exec::shutdownRequested())
            retireJobFile(*job);
        cv.notify_all();
    }

    void watchdogLoop()
    {
        using clock = std::chrono::steady_clock;
        std::map<std::string, std::pair<uint64_t, clock::time_point>> seen;
        std::unique_lock<std::mutex> lock(mu);
        for (;;) {
            if (cv.wait_for(lock, std::chrono::milliseconds(100),
                            [&] { return draining; }))
                return;
            if (opts.stallTimeoutSec <= 0)
                continue;
            const auto now = clock::now();
            for (const auto &job : running) {
                auto &s = seen[job->id];
                if (s.second == clock::time_point{} ||
                    s.first != job->progressTick) {
                    s = {job->progressTick, now};
                    continue;
                }
                const double idle =
                    std::chrono::duration<double>(now - s.second)
                        .count();
                if (idle > opts.stallTimeoutSec &&
                    !job->token.cancelled()) {
                    warn("vstackd: %s stalled (%.1fs without progress); "
                         "failing the job",
                         job->id.c_str(), idle);
                    job->token.cancel("stalled");
                }
            }
        }
    }

    // ---- connections ------------------------------------------------

    void handleConn(int fd)
    {
        Json req;
        std::string err;
        switch (readFrame(fd, req, err)) {
          case FrameResult::Ok:
            break;
          case FrameResult::Eof:
            ::close(fd);
            return;
          case FrameResult::Corrupt:
            // A torn or corrupt frame burns its connection, nothing
            // else: report why (best effort) and keep serving.
            warn("vstackd: rejecting corrupt frame: %s", err.c_str());
            writeFrame(fd, errorFrame("corrupt frame: " + err), err);
            ::close(fd);
            return;
          case FrameResult::Error:
            warn("vstackd: connection read failed: %s", err.c_str());
            ::close(fd);
            return;
        }
        const std::string op =
            req.isObject() && req.has("op") ? req.at("op").asString() : "";
        if (op == "submit")
            handleSubmit(fd, req);
        else if (op == "status")
            handleStatus(fd);
        else if (op == "cancel")
            handleCancel(fd, req);
        else
            writeFrame(fd, errorFrame("unknown op '" + op + "'"), err);
        ::close(fd);
    }

    void handleSubmit(int fd, const Json &req)
    {
        std::string err;
        if (!req.has("manifest") || !req.has("client")) {
            writeFrame(fd, errorFrame("submit needs client + manifest"),
                       err);
            return;
        }
        auto job = std::make_shared<Job>();
        job->client = req.at("client").asString();
        job->manifest = req.at("manifest");
        job->harden = req.has("harden") && req.at("harden").asBool();
        if (req.has("deadline"))
            job->deadlineSec = req.at("deadline").asDouble();
        std::string perr;
        if (!planFromManifest(job->manifest, job->harden, job->plan,
                              perr)) {
            writeFrame(fd, badManifestFrame(perr), err);
            return;
        }
        for (const CampaignSpec &spec : job->plan.specs())
            job->keys.push_back(campaignKey(stack.config(), spec));

        {
            std::lock_guard<std::mutex> g(mu);
            if (draining) {
                writeFrame(fd, rejectedFrame("draining"), err);
                return;
            }
            if (queuedCount >= opts.maxQueued) {
                // The shed path: explicit, immediate, and cheap — the
                // client backs off and retries; dedup makes the retry
                // free for any campaign that finished meanwhile.
                writeFrame(fd, rejectedFrame("overloaded"), err);
                return;
            }
            job->id = strprintf("job-%06llu",
                                static_cast<unsigned long long>(++seq));
            persistJob(*job);
            enqueueLocked(job);
        }

        Json accepted = Json::object();
        accepted.set("ev", "accepted");
        accepted.set("job", job->id);
        if (!writeFrame(fd, accepted, err))
            return; // client gone; the job still runs (results cached)

        streamJob(fd, job);
    }

    /** Stream progress frames until the job finishes, then its result.
     *  A vanished client stops the stream, never the job. */
    void streamJob(int fd, const std::shared_ptr<Job> &job)
    {
        std::string err;
        uint64_t lastTick = 0;
        std::unique_lock<std::mutex> lock(mu);
        for (;;) {
            cv.wait_for(lock, std::chrono::milliseconds(100), [&] {
                return job->st == Job::St::Done ||
                       job->progressTick != lastTick;
            });
            if (job->st == Job::St::Done)
                break;
            if (job->progressTick != lastTick) {
                lastTick = job->progressTick;
                const Json p = progressToJson(job->progress);
                lock.unlock();
                const bool ok = writeFrame(fd, p, err);
                lock.lock();
                if (!ok)
                    return;
            }
        }
        Json final;
        if (job->deferred) {
            final = errorFrame(
                "daemon draining; job persisted and will resume on the "
                "next start");
            final.set("deferred", true);
        } else if (!job->error.empty()) {
            final = errorFrame(job->error);
        } else {
            final = job->result;
        }
        lock.unlock();
        writeFrame(fd, final, err);
    }

    void handleStatus(int fd)
    {
        Json out = Json::object();
        out.set("ev", "status");
        {
            std::lock_guard<std::mutex> g(mu);
            out.set("draining", draining);
            out.set("queued", static_cast<uint64_t>(queuedCount));
            Json run = Json::array();
            for (const auto &job : running)
                run.push(job->id);
            out.set("running", std::move(run));
            out.set("done", static_cast<uint64_t>(doneCount));
            out.set("recovered", static_cast<uint64_t>(recovered));
        }
        std::string err;
        writeFrame(fd, out, err);
    }

    void handleCancel(int fd, const Json &req)
    {
        std::string err;
        if (!req.has("job")) {
            writeFrame(fd, errorFrame("cancel needs a job id"), err);
            return;
        }
        const std::string id = req.at("job").asString();
        bool found = false;
        {
            std::lock_guard<std::mutex> g(mu);
            for (const auto &job : running) {
                if (job->id == id) {
                    job->token.cancel("cancelled by client");
                    found = true;
                }
            }
            if (!found) {
                for (auto &kv : queues) {
                    auto &q = kv.second;
                    for (auto it = q.begin(); it != q.end(); ++it) {
                        if ((*it)->id != id)
                            continue;
                        (*it)->token.cancel("cancelled by client");
                        (*it)->error = "cancelled before it ran";
                        (*it)->st = Job::St::Done;
                        retireJobFile(**it);
                        q.erase(it);
                        --queuedCount;
                        found = true;
                        break;
                    }
                    if (found)
                        break;
                }
            }
            cv.notify_all();
        }
        Json out = Json::object();
        out.set("ev", "cancelled");
        out.set("job", id);
        out.set("found", found);
        writeFrame(fd, out, err);
    }
};

Daemon::Daemon(VulnerabilityStack &stack, DaemonOptions opts)
    : impl(std::make_unique<Impl>(stack, std::move(opts)))
{
}

Daemon::~Daemon()
{
    stop();
    for (auto &t : impl->conns)
        if (t.joinable())
            t.join();
    for (auto &t : impl->executors)
        if (t.joinable())
            t.join();
    if (impl->watchdog.joinable())
        impl->watchdog.join();
    if (impl->listenFd >= 0)
        ::close(impl->listenFd);
    if (!impl->opts.socketPath.empty()) {
        std::error_code ec;
        fs::remove(impl->opts.socketPath, ec);
    }
}

bool
Daemon::start(std::string &err)
{
    Impl &I = *impl;
    // A client dying mid-stream must cost one EPIPE, not the process.
    ::signal(SIGPIPE, SIG_IGN);

    const std::string &resultsDir = I.stack.config().resultsDir;
    if (resultsDir.empty()) {
        warn("vstackd: VSTACK_RESULTS is unset; admitted jobs will not "
             "survive a crash");
    } else {
        I.jobsDir = resultsDir + "/vstackd/jobs";
        std::error_code ec;
        fs::create_directories(I.jobsDir, ec);
        if (ec) {
            err = "cannot create " + I.jobsDir + ": " + ec.message();
            return false;
        }
    }

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (I.opts.socketPath.size() >= sizeof(addr.sun_path)) {
        err = "socket path too long: " + I.opts.socketPath;
        return false;
    }
    std::strncpy(addr.sun_path, I.opts.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    I.listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (I.listenFd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    // A dead daemon leaves a socket inode behind; rebinding over it is
    // the restart path, so clear it first.
    ::unlink(I.opts.socketPath.c_str());
    if (::bind(I.listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(I.listenFd, 64) < 0) {
        err = "bind/listen " + I.opts.socketPath + ": " +
              std::strerror(errno);
        ::close(I.listenFd);
        I.listenFd = -1;
        return false;
    }

    {
        std::lock_guard<std::mutex> g(I.mu);
        I.recoverJobs();
    }
    const size_t nExec = std::max<size_t>(1, I.opts.maxInflight);
    for (size_t i = 0; i < nExec; ++i)
        I.executors.emplace_back([this] { impl->executorLoop(); });
    I.watchdog = std::thread([this] { impl->watchdogLoop(); });
    return true;
}

void
Daemon::serve()
{
    Impl &I = *impl;
    for (;;) {
        if (exec::shutdownRequested()) {
            stop();
            break;
        }
        {
            std::lock_guard<std::mutex> g(I.mu);
            if (I.draining)
                break;
        }
        pollfd pfd{I.listenFd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 200);
        if (pr <= 0)
            continue; // timeout or EINTR: re-check the drain flags
        if (failpoint("service.accept.eintr"))
            continue; // a signal landed between poll and accept
        const int fd = ::accept(I.listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        I.conns.emplace_back([this, fd] { impl->handleConn(fd); });
    }
    // Drain: wait for the executors to park (in-flight work drains to
    // its journals via the shutdown flag / its cancel tokens).
    for (auto &t : I.executors)
        if (t.joinable())
            t.join();
}

void
Daemon::stop()
{
    std::lock_guard<std::mutex> g(impl->mu);
    impl->draining = true;
    impl->cv.notify_all();
}

size_t
Daemon::recoveredJobs() const
{
    std::lock_guard<std::mutex> g(impl->mu);
    return impl->recovered;
}

size_t
Daemon::pendingJobs() const
{
    std::lock_guard<std::mutex> g(impl->mu);
    return impl->queuedCount + impl->running.size();
}

} // namespace vstack::service
