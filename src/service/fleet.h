/**
 * @file
 * Fault-tolerant worker fleet: shard a suite across supervised worker
 * processes with leases, heartbeats, and crash recovery.
 *
 * ZOFI gets its throughput by treating every injection as a disposable
 * process; the fleet applies the same stance to whole sample shards.
 * A supervisor (embedded in `vstack suite --fleet=N` and in vstackd)
 * spawns N worker processes, each a thin loop speaking the existing
 * CRC-framed protocol (service/frame.h) over a socketpair and running
 * sample batches through the exec::LayerDriver machinery.  The
 * supervisor hands out shard *leases* (campaign spec + explicit sample
 * indices + a lease deadline), treats every frame a worker sends as a
 * heartbeat, and owns all persistent state itself: journals, the
 * result store, and the fold all stay supervisor-side, so a worker can
 * die at any instruction without touching a byte of campaign state.
 *
 * Failure handling, in one place:
 *
 *   - death (SIGSEGV/SIGKILL/OOM), a missed heartbeat, or a torn
 *     frame: the worker is killed/reaped and triaged into a HostFault
 *     record; the first sample of its announced run order that never
 *     acked is the culprit and charges one host-failure strike, and
 *     beyond the per-sample retry budget it is quarantined into
 *     `injectorErrors` via the journal — exactly the sandbox path's
 *     contract.  The rest of the shard is re-leased.
 *   - stragglers: when no shards are pending, the oldest outstanding
 *     lease is speculatively duplicated to an idle worker; whichever
 *     copy of a sample arrives first settles it (fold order stays
 *     index-ordered, so the ResultStore is byte-identical to the
 *     serial path at any fleet size, across worker kills, and across
 *     a supervisor SIGKILL + --resume).
 *   - persistent failure: a worker slot that keeps dying without
 *     making progress retires after `respawnBudget` consecutive
 *     strikes; when every slot is retired the fleet degrades to one
 *     in-process executor instead of failing the suite, and the stats
 *     record the degradation.
 *
 * Chaos vocabulary (support/failpoint.h): `fleet.worker.spawn` makes
 * a spawn attempt fail (degradation path), `fleet.lease.grant` tears
 * the lease frame on the wire (the worker exits on the corrupt frame
 * and the shard is recovered), `fleet.frame.write` makes a worker
 * swallow one sample ack (lost-ack recovery at lease completion).
 */
#ifndef VSTACK_SERVICE_FLEET_H
#define VSTACK_SERVICE_FLEET_H

#include <string>

#include "core/suite.h"

namespace vstack::service
{

struct FleetOptions
{
    /** Worker processes to supervise (>= 1). */
    unsigned workers = 2;
    /** Worker binary; empty resolves $VSTACK_WORKER, then
     *  `vstack-worker` next to the running executable. */
    std::string workerPath;
    /** A worker whose last frame is older than this is declared hung
     *  and killed (workers heartbeat at a quarter of this period). */
    double heartbeatSec = 10.0;
    /** A lease outstanding longer than this is revoked (the worker is
     *  killed and the shard re-leased). */
    double leaseSec = 300.0;
    /** Consecutive failures (no sample acked between them) before a
     *  worker slot retires instead of respawning. */
    unsigned respawnBudget = 3;
    /** Samples per shard lease; 0 sizes shards automatically from the
     *  campaign size and fleet width. */
    size_t shardSamples = 0;
};

/** Supervision counters of one fleet run (reported on stderr so the
 *  campaign report itself stays byte-comparable). */
struct FleetStats
{
    unsigned spawns = 0;         ///< worker processes started
    unsigned deaths = 0;         ///< workers that died or were killed
    unsigned hangKills = 0;      ///< killed for missed heartbeats or
                                 ///< an expired lease deadline
    unsigned tornFrames = 0;     ///< corrupt frames triaged
    unsigned retired = 0;        ///< slots retired (respawn budget)
    unsigned leases = 0;         ///< leases granted (speculative incl.)
    unsigned speculativeLeases = 0;
    size_t hostFaultQuarantines = 0; ///< samples quarantined by triage
    bool degraded = false;       ///< fleet fell back to in-process
};

/**
 * Run `plan` through a supervised worker fleet.  Semantics mirror
 * runSuite(): the same dedup, cache short-circuit, journal resume,
 * contained GoldenRunError, fatal Replay/CheckpointDivergence, and
 * drain behavior (SuiteOptions::cancel / shutdown signal), with a
 * ResultStore byte-identical to the serial path.  `opts.serial` is
 * ignored.  Stats land in `*statsOut` when non-null.
 */
SuiteReport runFleetSuite(VulnerabilityStack &stack,
                          const CampaignPlan &plan,
                          const SuiteOptions &opts,
                          const FleetOptions &fopts,
                          FleetStats *statsOut = nullptr);

/**
 * The worker side: a blocking loop on `fd` (init frame, then lease
 * frames; every sample result is acked as its own frame).  Returns
 * the process exit code (0 on a clean EOF/exit frame, 2 on a corrupt
 * stream).  Used by tools/vstack_worker_main.cc.
 */
int runFleetWorker(int fd);

/** `vstack-worker` next to the running executable ($VSTACK_WORKER
 *  overrides; tests point it at the build tree). */
std::string defaultWorkerPath();

} // namespace vstack::service

#endif // VSTACK_SERVICE_FLEET_H
