/**
 * @file
 * The vstackd client: submit / status / cancel over the UNIX socket.
 *
 * The client owns the *retry* half of the service's robustness story.
 * Every failure mode the daemon can hand it — connection refused while
 * the daemon restarts, `rejected overloaded` shed responses, a
 * connection dying mid-stream — is answered the same way: exponential
 * backoff with jitter, then resubmit.  Resubmission is idempotent by
 * construction: campaign identity is the ResultStore content key, so
 * work that finished before the retry is a cache hit and work that was
 * interrupted resumes from its journal.  The client never has to know
 * which of the two happened.
 */
#ifndef VSTACK_SERVICE_CLIENT_H
#define VSTACK_SERVICE_CLIENT_H

#include <functional>
#include <string>

#include "support/json.h"

namespace vstack::service
{

struct ClientOptions
{
    std::string socketPath;
    /** Client name for the daemon's per-client fairness queues. */
    std::string name = "client";
    /** Attempts before giving up (connect failures, sheds, and
     *  mid-stream disconnects all count). */
    unsigned maxAttempts = 8;
    /** First backoff delay; doubles per attempt, +/- 50% jitter. */
    double backoffBaseSec = 0.05;
    /** Jitter seed (deterministic tests). */
    uint64_t seed = 1;
};

/**
 * The jitter seed a client should use: derived from VSTACK_SEED when
 * set (mixed with `salt`, e.g. a client index, via splitmix64 so
 * concurrent clients do not march in lockstep), else from `fallback`
 * (typically the pid).  Makes reconnect-storm tests deterministic
 * while keeping production jitter de-correlated.
 */
uint64_t clientJitterSeed(uint64_t salt, uint64_t fallback);

class Client
{
  public:
    explicit Client(ClientOptions opts);

    /**
     * Submit a manifest and wait for its result frame, retrying with
     * backoff through sheds and disconnects.  `deadlineSec` > 0 asks
     * the daemon to cancel the job and return a partial report after
     * that long.  Progress frames are handed to `progress` when set.
     * Returns the final frame ({"ev":"result",...} on success,
     * {"ev":"error"/"rejected",...} once attempts are exhausted);
     * `err` is set when no final frame could be obtained at all.
     */
    Json submit(const Json &manifest, bool harden, double deadlineSec,
                const std::function<void(const Json &)> &progress,
                std::string &err);

    /** One status round-trip (no retries beyond reconnect backoff). */
    Json status(std::string &err);

    /** Cancel a job by id. */
    Json cancel(const std::string &jobId, std::string &err);

    /** Next backoff delay in seconds (advances the jitter stream);
     *  public so tests can pin the whole reconnect schedule. */
    double backoffDelay(unsigned attempt);

  private:
    int connectWithBackoff(std::string &err);

    ClientOptions opts;
    uint64_t rngState;
};

} // namespace vstack::service

#endif // VSTACK_SERVICE_CLIENT_H
