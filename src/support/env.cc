#include "env.h"

#include <cstdlib>

#include "support/logging.h"

namespace vstack
{

int64_t
envInt(const char *name, int64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    long long parsed = std::strtoll(v, &end, 0);
    if (end == v || *end != '\0')
        return fallback;
    return parsed;
}

std::string
envString(const char *name, const std::string &fallback)
{
    const char *v = std::getenv(name);
    return v ? std::string(v) : fallback;
}

double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0')
        return fallback;
    return parsed;
}

int64_t
envIntStrict(const char *name, int64_t fallback, int64_t min)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    long long parsed = std::strtoll(v, &end, 0);
    if (end == v || *end != '\0' || parsed < min)
        fatal("%s must be an integer >= %lld, got '%s'", name,
              static_cast<long long>(min), v);
    return parsed;
}

double
envDoubleStrict(const char *name, double fallback, double min)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0' || !(parsed >= min))
        fatal("%s must be a number >= %g, got '%s'", name, min, v);
    return parsed;
}

bool
envFlagStrict(const char *name, bool fallback)
{
    return envIntStrict(name, fallback ? 1 : 0, 0) != 0;
}

EnvConfig
EnvConfig::fromEnvironment()
{
    EnvConfig cfg;
    // VSTACK_FAULTS scales the microarchitectural campaigns; the
    // (cheap) architecture- and software-level campaigns default to
    // more samples since they are orders of magnitude faster.
    const int64_t faults = envInt("VSTACK_FAULTS", 120);
    cfg.uarchFaults = static_cast<size_t>(faults > 0 ? faults : 120);
    cfg.archFaults =
        static_cast<size_t>(envInt("VSTACK_ARCH_FAULTS", faults * 3));
    cfg.swFaults = static_cast<size_t>(envInt("VSTACK_SW_FAULTS", faults * 3));
    cfg.seed = static_cast<uint64_t>(envInt("VSTACK_SEED", 42));
    cfg.resultsDir = envString("VSTACK_RESULTS", "results");
    // Execution-shaping knobs are validated strictly: a negative or
    // garbage VSTACK_JOBS/VSTACK_ISOLATE silently misconfiguring a
    // multi-hour campaign is worse than failing at startup.
    cfg.jobs = static_cast<unsigned>(envIntStrict("VSTACK_JOBS", 1, 0));
    cfg.resume = envInt("VSTACK_RESUME", 1) != 0;
    // A watchdog factor below 1.0 would classify even the golden
    // runtime as a hang; reject it at parse time.
    cfg.watchdogFactor = envDoubleStrict("VSTACK_WATCHDOG", 4.0, 1.0);
    cfg.isolate = envFlagStrict("VSTACK_ISOLATE");
    cfg.journalFsync = envFlagStrict("VSTACK_JOURNAL_FSYNC");
    cfg.verifyReplay = envDoubleStrict("VSTACK_VERIFY_REPLAY", 0.0, 0.0);
    if (cfg.verifyReplay > 100.0)
        fatal("VSTACK_VERIFY_REPLAY must be a percentage in [0, 100], "
              "got %g",
              cfg.verifyReplay);
    cfg.checkpoint = envFlagStrict("VSTACK_CHECKPOINT", true);
    cfg.fastpath = envFlagStrict("VSTACK_FASTPATH", true);
    cfg.checkpoints =
        static_cast<unsigned>(envIntStrict("VSTACK_CHECKPOINTS", 16, 1));
    cfg.verifyCheckpoint =
        envDoubleStrict("VSTACK_VERIFY_CHECKPOINT", 0.0, 0.0);
    if (cfg.verifyCheckpoint > 100.0)
        fatal("VSTACK_VERIFY_CHECKPOINT must be a percentage in [0, 100], "
              "got %g",
              cfg.verifyCheckpoint);
    cfg.goldenBudget = static_cast<uint64_t>(
        envIntStrict("VSTACK_GOLDEN_BUDGET", 100'000'000, 1));
    cfg.goldenCache =
        static_cast<unsigned>(envIntStrict("VSTACK_GOLDEN_CACHE", 2, 1));
    // Raw spec string; canonicalized (and strictly validated) by the
    // first consumer that can link the fault library.
    cfg.faultModel = envString("VSTACK_FAULT_MODEL", "");
    return cfg;
}

} // namespace vstack
