#include "env.h"

#include <cstdlib>

namespace vstack
{

int64_t
envInt(const char *name, int64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    long long parsed = std::strtoll(v, &end, 0);
    if (end == v || *end != '\0')
        return fallback;
    return parsed;
}

std::string
envString(const char *name, const std::string &fallback)
{
    const char *v = std::getenv(name);
    return v ? std::string(v) : fallback;
}

double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0')
        return fallback;
    return parsed;
}

EnvConfig
EnvConfig::fromEnvironment()
{
    EnvConfig cfg;
    // VSTACK_FAULTS scales the microarchitectural campaigns; the
    // (cheap) architecture- and software-level campaigns default to
    // more samples since they are orders of magnitude faster.
    const int64_t faults = envInt("VSTACK_FAULTS", 120);
    cfg.uarchFaults = static_cast<size_t>(faults > 0 ? faults : 120);
    cfg.archFaults =
        static_cast<size_t>(envInt("VSTACK_ARCH_FAULTS", faults * 3));
    cfg.swFaults = static_cast<size_t>(envInt("VSTACK_SW_FAULTS", faults * 3));
    cfg.seed = static_cast<uint64_t>(envInt("VSTACK_SEED", 42));
    cfg.resultsDir = envString("VSTACK_RESULTS", "results");
    const int64_t jobs = envInt("VSTACK_JOBS", 1);
    cfg.jobs = jobs >= 0 ? static_cast<unsigned>(jobs) : 1;
    cfg.resume = envInt("VSTACK_RESUME", 1) != 0;
    const double wd = envDouble("VSTACK_WATCHDOG", 4.0);
    cfg.watchdogFactor = wd > 0 ? wd : 4.0;
    return cfg;
}

} // namespace vstack
