/**
 * @file
 * Deterministic pseudo-random number generation for fault sampling.
 *
 * Fault-injection campaigns must be reproducible: the same seed must
 * produce the same fault list on every platform.  We therefore avoid
 * std::mt19937 distribution helpers (which are implementation-defined)
 * and implement xoshiro256** with explicit, portable derivations.
 */
#ifndef VSTACK_SUPPORT_RNG_H
#define VSTACK_SUPPORT_RNG_H

#include <cstdint>

namespace vstack
{

/** SplitMix64 stream, used to expand a single seed into RNG state. */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state(seed) {}

    /** Next 64-bit value of the stream. */
    uint64_t next();

  private:
    uint64_t state;
};

/**
 * xoshiro256** generator.  Fast, high-quality, and fully portable: the
 * sequence for a given seed is identical on every host.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next64();

    /**
     * Uniform integer in [0, bound) using rejection sampling (no modulo
     * bias).  @pre bound > 0.
     */
    uint64_t uniform(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive.  @pre lo <= hi. */
    uint64_t uniformRange(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformDouble();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /**
     * Fork a statistically independent child generator.  Used to give
     * every injection experiment its own stream so campaigns can be
     * re-ordered or parallelised without changing sampled faults.
     */
    Rng fork();

  private:
    uint64_t s[4];
};

} // namespace vstack

#endif // VSTACK_SUPPORT_RNG_H
