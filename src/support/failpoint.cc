#include "failpoint.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <map>
#include <mutex>

#include <unistd.h>

#include "support/logging.h"

namespace vstack
{

namespace
{

/** One armed rule plus its deterministic hit/fire counters. */
struct Rule
{
    uint64_t firstN = 0; ///< fire on the first N hits (N form)
    uint64_t m = 0;      ///< fire on M of every K hits (M/K form)
    uint64_t k = 0;
    uint64_t at = 0;     ///< fire exactly on hit #at, 1-based (@N form)
    uint64_t hits = 0;
    uint64_t fires = 0;

    bool firesOn(uint64_t hitIndex) const // 0-based
    {
        if (at)
            return hitIndex + 1 == at;
        if (k)
            return hitIndex % k < m;
        return hitIndex < firstN;
    }
};

struct State
{
    std::mutex mu;
    std::map<std::string, Rule> rules;
};

State &
state()
{
    static State s;
    return s;
}

// Fast path for the (overwhelmingly common) unarmed case: one relaxed
// load, no lock, no map walk.
std::atomic<bool> g_armed{false};

std::once_flag g_envOnce;

uint64_t
parseCount(const char *what, const std::string &spec,
           const std::string &text)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || end != text.c_str() + text.size() || v == 0)
        fatal("VSTACK_FAILPOINTS: %s in '%s' must be a positive integer",
              what, spec.c_str());
    return v;
}

void
installRules(const std::string &spec)
{
    std::map<std::string, Rule> rules;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal("VSTACK_FAILPOINTS: expected 'site=rule', got '%s'",
                  item.c_str());
        const std::string name = item.substr(0, eq);
        for (char c : name) {
            if (!std::islower(static_cast<unsigned char>(c)) &&
                !std::isdigit(static_cast<unsigned char>(c)) &&
                c != '.' && c != '_')
                fatal("VSTACK_FAILPOINTS: bad site name '%s'", name.c_str());
        }
        const std::string rule = item.substr(eq + 1);
        Rule r;
        if (!rule.empty() && rule[0] == '@') {
            r.at = parseCount("@N hit number", item, rule.substr(1));
        } else if (rule.find('/') != std::string::npos) {
            const size_t slash = rule.find('/');
            r.m = parseCount("M in M/K", item, rule.substr(0, slash));
            r.k = parseCount("K in M/K", item, rule.substr(slash + 1));
            if (r.m > r.k)
                fatal("VSTACK_FAILPOINTS: M/K rule '%s' needs M <= K",
                      item.c_str());
        } else {
            r.firstN = parseCount("hit count", item, rule);
        }
        if (!rules.emplace(name, r).second)
            fatal("VSTACK_FAILPOINTS: site '%s' armed twice", name.c_str());
    }

    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.rules = std::move(rules);
    g_armed.store(!s.rules.empty(), std::memory_order_relaxed);
}

/** Consume VSTACK_FAILPOINTS exactly once, lazily, at first use. */
void
ensureEnvLoaded()
{
    std::call_once(g_envOnce, [] {
        const char *v = std::getenv("VSTACK_FAILPOINTS");
        if (v && *v)
            installRules(v);
    });
}

} // namespace

bool
failpoint(const char *site)
{
    ensureEnvLoaded();
    if (!g_armed.load(std::memory_order_relaxed))
        return false;
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.rules.find(site);
    if (it == s.rules.end())
        return false;
    Rule &r = it->second;
    const bool fire = r.firesOn(r.hits++);
    if (fire)
        ++r.fires;
    return fire;
}

void
failpointKill(const char *site)
{
    if (failpoint(site))
        _exit(137); // as if SIGKILL landed exactly at this operation
}

uint64_t
failpointHits(const char *site)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.rules.find(site);
    return it == s.rules.end() ? 0 : it->second.hits;
}

uint64_t
failpointFires(const char *site)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.rules.find(site);
    return it == s.rules.end() ? 0 : it->second.fires;
}

void
armFailpoints(const std::string &spec)
{
    // Tests arm programmatically; make sure a later lazy env load can
    // never overwrite their rule set.
    std::call_once(g_envOnce, [] {});
    installRules(spec);
}

void
clearFailpoints()
{
    armFailpoints("");
}

bool
failpointsArmed()
{
    ensureEnvLoaded();
    return g_armed.load(std::memory_order_relaxed);
}

std::string
failpointSummary()
{
    ensureEnvLoaded();
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    std::string out;
    for (const auto &[name, r] : s.rules) {
        if (!out.empty())
            out += ", ";
        out += name;
        if (r.at)
            out += strprintf("=@%llu",
                             static_cast<unsigned long long>(r.at));
        else if (r.k)
            out += strprintf("=%llu/%llu",
                             static_cast<unsigned long long>(r.m),
                             static_cast<unsigned long long>(r.k));
        else
            out += strprintf("=%llu",
                             static_cast<unsigned long long>(r.firstN));
    }
    return out;
}

} // namespace vstack
