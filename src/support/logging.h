/**
 * @file
 * Lightweight logging and error-exit helpers.
 *
 * Mirrors the gem5 convention: fatal() for user-caused conditions
 * (exit(1)), panic() for internal invariant violations (abort()),
 * warn()/inform() for status.
 */
#ifndef VSTACK_SUPPORT_LOGGING_H
#define VSTACK_SUPPORT_LOGGING_H

#include <cstdarg>
#include <string>

namespace vstack
{

/** Print an informational message to stderr ("info: ..."). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr ("warn: ..."). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an error and exit(1); for user-caused conditions. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an error and abort(); for internal invariant violations. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace vstack

#endif // VSTACK_SUPPORT_LOGGING_H
