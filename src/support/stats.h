/**
 * @file
 * Statistical helpers for fault-injection campaigns.
 *
 * Implements the statistical fault sampling model of Leveugle et al.
 * ("Statistical fault injection: Quantified error and confidence",
 * DATE 2009), which the paper adopts for its 2,000-sample campaigns
 * (2.88% error margin at 99% confidence).
 */
#ifndef VSTACK_SUPPORT_STATS_H
#define VSTACK_SUPPORT_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vstack
{

/** Two-sided z-value for a given confidence level. */
double zValue(double confidence);

/**
 * Margin of error for an estimated proportion p from n samples drawn
 * without replacement from a population of `population` faults.
 *
 * e = z * sqrt( (N - n) / (n * (N - 1)) * p * (1 - p) )
 *
 * With p unknown the worst case p = 0.5 is used (pass p = 0.5).
 * For effectively infinite populations pass population = 0.
 */
double samplingMargin(size_t n, double p, double confidence,
                      uint64_t population = 0);

/**
 * Number of samples needed for a target margin at a confidence level
 * (worst-case p = 0.5), for population N (0 = infinite).
 */
size_t samplesForMargin(double margin, double confidence,
                        uint64_t population = 0);

/** Arithmetic mean of a vector (0 for empty input). */
double mean(const std::vector<double> &xs);

/**
 * Weighted mean: sum(w_i * x_i) / sum(w_i).  Used for the paper's
 * structure-size (FIT-rate) weighting of per-structure AVFs.
 * @pre weights are non-negative and not all zero.
 */
double weightedMean(const std::vector<double> &xs,
                    const std::vector<double> &ws);

/**
 * Wilson score interval for a binomial proportion; more robust than
 * the normal approximation for small counts.  Returns {lo, hi}.
 */
struct Interval
{
    double lo;
    double hi;
};
Interval wilsonInterval(size_t successes, size_t n, double confidence);

} // namespace vstack

#endif // VSTACK_SUPPORT_STATS_H
