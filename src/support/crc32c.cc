#include "crc32c.h"

#include <array>

namespace vstack
{

namespace
{

/** Byte-at-a-time table for the reflected Castagnoli polynomial. */
std::array<uint32_t, 256>
makeTable()
{
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

const std::array<uint32_t, 256> table = makeTable();

} // namespace

uint32_t
crc32c(const void *data, size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    uint32_t crc = 0xffffffffu;
    for (size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

std::string
crc32cHex(uint32_t crc)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(8, '0');
    for (int i = 7; i >= 0; --i) {
        out[i] = digits[crc & 0xf];
        crc >>= 4;
    }
    return out;
}

} // namespace vstack
