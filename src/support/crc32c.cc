#include "crc32c.h"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fastpath.h"

namespace vstack
{

namespace
{

/** Byte-at-a-time table for the reflected Castagnoli polynomial. */
std::array<uint32_t, 256>
makeTable()
{
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

const std::array<uint32_t, 256> table = makeTable();

/**
 * Slicing-by-8 tables: slice[j][b] is the CRC contribution of byte b
 * positioned j bytes before the end of an 8-byte group, so one
 * iteration folds a whole 64-bit load with eight independent lookups
 * (no loop-carried byte chain).
 */
std::array<std::array<uint32_t, 256>, 8>
makeSliceTables()
{
    std::array<std::array<uint32_t, 256>, 8> t{};
    t[0] = table;
    for (uint32_t b = 0; b < 256; ++b)
        for (int j = 1; j < 8; ++j)
            t[j][b] = (t[j - 1][b] >> 8) ^ table[t[j - 1][b] & 0xff];
    return t;
}

const std::array<std::array<uint32_t, 256>, 8> slice = makeSliceTables();

uint32_t
sliced(uint32_t crc, const unsigned char *p, size_t len)
{
    // Byte head up to 8-byte alignment: the unaligned 64-bit loads
    // below would be legal on x86 but this keeps the engine portable
    // and the loads fast everywhere.
    while (len && (reinterpret_cast<uintptr_t>(p) & 7)) {
        crc = table[(crc ^ *p++) & 0xff] ^ (crc >> 8);
        --len;
    }
    while (len >= 8) {
        uint64_t w;
        std::memcpy(&w, p, 8);
        w ^= crc;
        crc = slice[7][w & 0xff] ^ slice[6][(w >> 8) & 0xff] ^
              slice[5][(w >> 16) & 0xff] ^ slice[4][(w >> 24) & 0xff] ^
              slice[3][(w >> 32) & 0xff] ^ slice[2][(w >> 40) & 0xff] ^
              slice[1][(w >> 48) & 0xff] ^ slice[0][(w >> 56) & 0xff];
        p += 8;
        len -= 8;
    }
    while (len--)
        crc = table[(crc ^ *p++) & 0xff] ^ (crc >> 8);
    return crc;
}

#if defined(__x86_64__) && defined(__GNUC__)
#define VSTACK_CRC32C_HW 1

__attribute__((target("sse4.2"))) uint32_t
hardware(uint32_t crc, const unsigned char *p, size_t len)
{
    uint64_t c = crc;
    while (len && (reinterpret_cast<uintptr_t>(p) & 7)) {
        c = __builtin_ia32_crc32qi(static_cast<uint32_t>(c), *p++);
        --len;
    }
    while (len >= 8) {
        uint64_t w;
        std::memcpy(&w, p, 8);
        c = __builtin_ia32_crc32di(c, w);
        p += 8;
        len -= 8;
    }
    while (len--)
        c = __builtin_ia32_crc32qi(static_cast<uint32_t>(c), *p++);
    return static_cast<uint32_t>(c);
}
#endif

using EngineFn = uint32_t (*)(uint32_t crc, const unsigned char *p,
                              size_t len);

uint32_t
reference(uint32_t crc, const unsigned char *p, size_t len)
{
    while (len--)
        crc = table[(crc ^ *p++) & 0xff] ^ (crc >> 8);
    return crc;
}

/**
 * The fastest engine this build + CPU + VSTACK_FASTPATH setting
 * allows, ignoring the self-check (which runs once before the first
 * dispatch through it).
 */
EngineFn
pickEngine()
{
    if (!fastPathEnabled())
        return &reference;
#ifdef VSTACK_CRC32C_HW
    if (__builtin_cpu_supports("sse4.2"))
        return &hardware;
#endif
    return &sliced;
}

std::atomic<EngineFn> engine{nullptr};

/**
 * One-time selection: self-check every available engine against the
 * reference, abort on a mismatch (a disagreeing engine would make
 * this process's digests and storage stamps incompatible with every
 * other process's), then publish the pick.
 */
EngineFn
selectEngine()
{
    if (const char *bad = crc32cSelfCheck()) {
        std::fprintf(stderr,
                     "vstack: fatal: crc32c %s engine disagrees with the "
                     "reference implementation on a fixed vector\n",
                     bad);
        std::abort();
    }
    EngineFn e = pickEngine();
    engine.store(e, std::memory_order_release);
    return e;
}

} // namespace

uint32_t
crc32c(const void *data, size_t len)
{
    EngineFn e = engine.load(std::memory_order_acquire);
    if (!e)
        e = selectEngine();
    return e(0xffffffffu, static_cast<const unsigned char *>(data), len) ^
           0xffffffffu;
}

uint32_t
crc32cReference(const void *data, size_t len)
{
    return reference(0xffffffffu, static_cast<const unsigned char *>(data),
                     len) ^
           0xffffffffu;
}

uint32_t
crc32cSliced(const void *data, size_t len)
{
    return sliced(0xffffffffu, static_cast<const unsigned char *>(data),
                  len) ^
           0xffffffffu;
}

uint32_t
crc32cHardware(const void *data, size_t len)
{
#ifdef VSTACK_CRC32C_HW
    return hardware(0xffffffffu, static_cast<const unsigned char *>(data),
                    len) ^
           0xffffffffu;
#else
    (void)data;
    (void)len;
    std::abort();
#endif
}

bool
crc32cHardwareAvailable()
{
#ifdef VSTACK_CRC32C_HW
    return __builtin_cpu_supports("sse4.2");
#else
    return false;
#endif
}

const char *
crc32cSelfCheck()
{
    // Vectors sized to exercise the alignment head, the unrolled
    // 8-byte body, and the byte tail, plus the standard check string
    // ("123456789" -> 0xe3069283) so the *reference* itself is pinned
    // to the published CRC-32C and not just self-consistent.
    unsigned char buf[259];
    for (size_t i = 0; i < sizeof(buf); ++i)
        buf[i] = static_cast<unsigned char>(i * 131 + 17);
    static const size_t offs[] = {0, 1, 3, 7};
    static const size_t lens[] = {0, 1, 7, 8, 9, 63, 64, 200, 255};
    if (crc32cReference("123456789", 9) != 0xe3069283u)
        return "reference";
    for (size_t off : offs) {
        for (size_t len : lens) {
            uint32_t ref = crc32cReference(buf + off, len);
            if (crc32cSliced(buf + off, len) != ref)
                return "sliced";
#ifdef VSTACK_CRC32C_HW
            if (crc32cHardwareAvailable() &&
                crc32cHardware(buf + off, len) != ref)
                return "hardware";
#endif
        }
    }
    return nullptr;
}

std::string
crc32cHex(uint32_t crc)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(8, '0');
    for (int i = 7; i >= 0; --i) {
        out[i] = digits[crc & 0xf];
        crc >>= 4;
    }
    return out;
}

namespace detail
{

void
crc32cReselectEngine()
{
    // Only swap if a pick was already published; otherwise first use
    // will select with the new fastpath setting anyway.  The stores
    // race benignly with concurrent crc32c() calls: every engine
    // computes the same function, so a reader using the old pick for
    // one more call is correct.
    if (engine.load(std::memory_order_acquire))
        engine.store(pickEngine(), std::memory_order_release);
}

} // namespace detail

} // namespace vstack
