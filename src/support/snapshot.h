/**
 * @file
 * Snapshot/restore building blocks shared by the three simulators.
 *
 * The campaign accelerator captures full simulator state at K evenly
 * spaced points of the golden run so each injection can restore the
 * nearest checkpoint instead of replaying from boot, and records
 * periodic state digests so a post-injection run can stop as soon as
 * its state provably reconverges with the golden trajectory.  This
 * header provides the layer-agnostic pieces:
 *
 *  - ByteSink / ByteSource: explicit-width, padding-free serialization
 *    of simulator state.  Struct memcpy is deliberately avoided —
 *    padding bytes are indeterminate and would make digests
 *    nondeterministic;
 *  - DirtyMap: page-granular dirty bitmap over a flat guest memory;
 *  - MemImage: page-granular copy-on-write snapshot of guest RAM.
 *    Pages untouched since the previous checkpoint share the previous
 *    checkpoint's buffers, so K checkpoints of a 16 MiB guest cost
 *    O(working set), not O(K * 16 MiB).  Each image carries the
 *    per-page CRC-32C table so a restored simulator can resume
 *    incremental digesting without re-hashing all of RAM.
 */
#ifndef VSTACK_SUPPORT_SNAPSHOT_H
#define VSTACK_SUPPORT_SNAPSHOT_H

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace vstack::snap
{

/** Snapshot page size: 4 KiB, the sweet spot between COW sharing
 *  granularity and per-page bookkeeping overhead. */
constexpr size_t PAGE_SHIFT = 12;
constexpr size_t PAGE_SIZE = size_t{1} << PAGE_SHIFT;

/** Append-only little-endian byte buffer for state serialization. */
class ByteSink
{
  public:
    void u8(uint8_t v) { buf.push_back(v); }
    void b(bool v) { buf.push_back(v ? 1 : 0); }
    void u16(uint16_t v) { putLe(&v, 2); }
    void u32(uint32_t v) { putLe(&v, 4); }
    void u64(uint64_t v) { putLe(&v, 8); }
    void i16(int16_t v) { u16(static_cast<uint16_t>(v)); }
    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

    void bytes(const void *p, size_t n)
    {
        const uint8_t *src = static_cast<const uint8_t *>(p);
        buf.insert(buf.end(), src, src + n);
    }

    void str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    const std::vector<uint8_t> &data() const { return buf; }
    size_t size() const { return buf.size(); }
    void clear() { buf.clear(); }

    /** Move the accumulated bytes out (ends this sink's use). */
    std::vector<uint8_t> take() { return std::move(buf); }

  private:
    void putLe(const void *p, size_t n)
    {
        // Serialize integers low byte first, so the encoding (and
        // hence every digest) is host-endian-independent.  One resize
        // + direct stores instead of per-byte push_back: digesting
        // runs this for every register of every grid point, so the
        // amortized-growth branch per byte was a measurable cost.
        uint64_t v = 0;
        std::memcpy(&v, p, n);
        const size_t at = buf.size();
        buf.resize(at + n);
        for (size_t i = 0; i < n; ++i)
            buf[at + i] = static_cast<uint8_t>(v >> (8 * i));
    }

    std::vector<uint8_t> buf;
};

/** Cursor over a serialized state buffer.  An overrun is an internal
 *  invariant violation (snapshots never leave process memory) and
 *  aborts via fatal(). */
class ByteSource
{
  public:
    ByteSource(const uint8_t *p, size_t n) : p(p), n(n) {}
    explicit ByteSource(const std::vector<uint8_t> &v)
        : p(v.data()), n(v.size())
    {}

    uint8_t u8() { return take(1) & 0xff; }
    bool b() { return u8() != 0; }
    uint16_t u16() { return static_cast<uint16_t>(take(2)); }
    uint32_t u32() { return static_cast<uint32_t>(take(4)); }
    uint64_t u64() { return take(8); }
    int16_t i16() { return static_cast<int16_t>(u16()); }
    int32_t i32() { return static_cast<int32_t>(u32()); }
    int64_t i64() { return static_cast<int64_t>(u64()); }

    void bytes(void *dst, size_t count);
    std::string str();

    bool atEnd() const { return off == n; }
    size_t offset() const { return off; }

  private:
    uint64_t take(size_t count);

    const uint8_t *p;
    size_t n;
    size_t off = 0;
};

/** Page-granular dirty bitmap.  Newly constructed maps are fully
 *  dirty: until a consumer harvests, everything must be assumed
 *  modified. */
class DirtyMap
{
  public:
    explicit DirtyMap(size_t pages)
        : words((pages + 63) / 64, ~uint64_t{0}), pages_(pages)
    {}

    size_t pages() const { return pages_; }

    void mark(size_t page) { words[page >> 6] |= uint64_t{1} << (page & 63); }

    bool test(size_t page) const
    {
        return (words[page >> 6] >> (page & 63)) & 1;
    }

    void markAll()
    {
        std::fill(words.begin(), words.end(), ~uint64_t{0});
    }

    void clearAll() { std::fill(words.begin(), words.end(), 0); }

    /** Invoke fn(page) for every dirty page, in ascending order. */
    template <typename Fn>
    void forEachDirty(Fn fn) const
    {
        for (size_t w = 0; w < words.size(); ++w) {
            uint64_t bits = words[w];
            while (bits) {
                const unsigned tz =
                    static_cast<unsigned>(__builtin_ctzll(bits));
                const size_t page = w * 64 + tz;
                if (page >= pages_)
                    return;
                fn(page);
                bits &= bits - 1;
            }
        }
    }

  private:
    std::vector<uint64_t> words;
    size_t pages_;
};

/**
 * Copy-on-write snapshot of a flat memory.  capture() shares every
 * page that was not dirtied since the previous image; restore() is
 * incremental when the caller can prove which pages still hold the
 * previously restored image's bytes.
 */
struct MemImage
{
    std::vector<std::shared_ptr<const std::vector<uint8_t>>> pages;
    /** Per-page CRC-32C at capture time, adopted by restored
     *  simulators so digesting stays incremental. */
    std::vector<uint32_t> pageCrc;
    /** Pages copied fresh (not shared with prev); bench telemetry. */
    size_t freshPages = 0;

    /**
     * Capture `size` bytes at `mem`.
     *
     * @param changed  pages modified since `prev` was captured; only
     *                 these are copied, the rest share prev's buffers
     * @param crcTable current per-page CRC table (kept by the owner's
     *                 digest harvesting); copied into the image
     * @param prev     previous checkpoint in the same run, or nullptr
     *                 (full copy)
     */
    static MemImage capture(const uint8_t *mem, size_t size,
                            const DirtyMap &changed,
                            const std::vector<uint32_t> &crcTable,
                            const MemImage *prev);

    /**
     * Write the image back into `mem`.
     *
     * @param last            image this memory was last restored from
     *                        (nullptr = unknown: full copy)
     * @param dirtySinceLast  pages modified since that restore; a page
     *                        is skipped only when it is clean AND both
     *                        images share the same buffer for it
     * @return bytes actually copied (restore-latency telemetry)
     */
    size_t restore(uint8_t *mem, size_t size, const MemImage *last,
                   const DirtyMap *dirtySinceLast) const;

    /** Total bytes held by pages not shared with the previous image
     *  (the checkpoint's marginal memory cost). */
    size_t freshBytes() const { return freshPages * PAGE_SIZE; }
};

} // namespace vstack::snap

#endif // VSTACK_SUPPORT_SNAPSHOT_H
