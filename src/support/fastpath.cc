#include "fastpath.h"

#include <atomic>

#include "crc32c.h"
#include "env.h"

namespace vstack
{

namespace
{

// -1 = not yet initialised, 0 = off, 1 = on.
std::atomic<int> state{-1};

} // namespace

bool
fastPathEnabled()
{
    int s = state.load(std::memory_order_relaxed);
    if (s < 0) {
        s = envFlagStrict("VSTACK_FASTPATH", true) ? 1 : 0;
        // First-writer-wins so a concurrent setFastPathEnabled() (or
        // another lazy init — same value) is not clobbered.
        int expected = -1;
        if (!state.compare_exchange_strong(expected, s,
                                           std::memory_order_relaxed))
            s = expected;
    }
    return s != 0;
}

void
setFastPathEnabled(bool on)
{
    state.store(on ? 1 : 0, std::memory_order_relaxed);
    detail::crc32cReselectEngine();
}

} // namespace vstack
