/**
 * @file
 * The process-wide fast-path gate.
 *
 * The fast execution path — predecoded threaded-code dispatch in
 * ArchSim/IrInterp, the staged digest buffers, the sliced/hardware
 * CRC-32C engines, and the clean-page digest seeding — is bit-exact
 * by construction and verified by lockstep tests, but debugging a
 * suspected discrepancy needs a way to hold everything on the
 * original interpreters.  `VSTACK_FASTPATH=0` (or `--no-fastpath`,
 * which mirrors `--no-checkpoint`) is that escape hatch: it pins the
 * reference CRC engine and makes every predecode/staging site fall
 * back to the pre-fastpath code, so a run under the hatch reproduces
 * the old engine byte for byte *and* cost for cost.
 *
 * Results are byte-identical either way; only wall-clock changes.
 * The env var is parsed strictly (support/env.h contract): garbage
 * values are fatal, never a silent fallback.
 */
#ifndef VSTACK_SUPPORT_FASTPATH_H
#define VSTACK_SUPPORT_FASTPATH_H

namespace vstack
{

/**
 * Whether the fast path is enabled.  Lazily initialised from
 * VSTACK_FASTPATH (default on) on first call; cheap afterwards
 * (one relaxed atomic load).
 */
bool fastPathEnabled();

/**
 * Override the gate (CLI --no-fastpath, tests).  Takes effect for
 * every *subsequent* predecode/digest decision and atomically swaps
 * the CRC-32C engine; simulators that already latched a predecoded
 * program keep it (it is bit-exact, so this only matters for
 * benchmarking, where engines are constructed after the override).
 */
void setFastPathEnabled(bool on);

} // namespace vstack

#endif // VSTACK_SUPPORT_FASTPATH_H
