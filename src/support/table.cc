#include "table.h"

#include <algorithm>
#include <cstdio>

namespace vstack
{

void
Table::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

void
Table::separator()
{
    rows.push_back({"\x01"});
}

std::string
Table::num(double v, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double fraction, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
Table::render() const
{
    // Column widths.
    size_t ncols = head.size();
    for (const auto &r : rows) {
        if (!(r.size() == 1 && r[0] == "\x01"))
            ncols = std::max(ncols, r.size());
    }
    std::vector<size_t> width(ncols, 0);
    auto account = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    if (!head.empty())
        account(head);
    for (const auto &r : rows) {
        if (!(r.size() == 1 && r[0] == "\x01"))
            account(r);
    }

    std::string out;
    auto rule = [&](char c) {
        out += '+';
        for (size_t i = 0; i < ncols; ++i) {
            out.append(width[i] + 2, c);
            out += '+';
        }
        out += '\n';
    };
    auto line = [&](const std::vector<std::string> &cells) {
        out += '|';
        for (size_t i = 0; i < ncols; ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            out += ' ';
            out += cell;
            out.append(width[i] - cell.size() + 1, ' ');
            out += '|';
        }
        out += '\n';
    };

    if (!title_.empty())
        out += "== " + title_ + " ==\n";
    rule('-');
    if (!head.empty()) {
        line(head);
        rule('=');
    }
    for (const auto &r : rows) {
        if (r.size() == 1 && r[0] == "\x01")
            rule('-');
        else
            line(r);
    }
    rule('-');
    return out;
}

} // namespace vstack
