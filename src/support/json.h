/**
 * @file
 * Minimal JSON value model, parser, and serializer.
 *
 * Used by the campaign result store so figure/table benches can share
 * expensive campaign results across processes.  Supports the full JSON
 * grammar except \u escapes beyond the BMP; numbers are stored as
 * double plus an exact int64 sidecar when representable.
 */
#ifndef VSTACK_SUPPORT_JSON_H
#define VSTACK_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vstack
{

/** A JSON value (null, bool, number, string, array, or object). */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Json() : type_(Type::Null) {}
    Json(std::nullptr_t) : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), boolVal(b) {}
    Json(int v) : Json(static_cast<int64_t>(v)) {}
    Json(unsigned v) : Json(static_cast<int64_t>(v)) {}
    Json(int64_t v)
        : type_(Type::Number), numVal(static_cast<double>(v)), intVal(v),
          isInt(true)
    {}
    Json(uint64_t v) : Json(static_cast<int64_t>(v)) {}
    Json(double v) : type_(Type::Number), numVal(v) {}
    Json(const char *s) : type_(Type::String), strVal(s) {}
    Json(std::string s) : type_(Type::String), strVal(std::move(s)) {}

    /** Make an empty array value. */
    static Json array();
    /** Make an empty object value. */
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isObject() const { return type_ == Type::Object; }
    bool isArray() const { return type_ == Type::Array; }

    /** @name Typed accessors (assert on type mismatch). @{ */
    bool asBool() const;
    double asDouble() const;
    int64_t asInt() const;
    const std::string &asString() const;
    /** @} */

    /** Array element access. @pre isArray() and i < size(). */
    const Json &at(size_t i) const;
    /** Object member access. @pre isObject() and member exists. */
    const Json &at(const std::string &key) const;
    /** True if an object has a member of the given name. */
    bool has(const std::string &key) const;
    /** Number of array elements or object members. */
    size_t size() const;

    /** Append to an array (value becomes an array if null). */
    void push(Json v);
    /** Set an object member (value becomes an object if null). */
    void set(const std::string &key, Json v);

    /** Object members in insertion order (pre: isObject()). */
    const std::vector<std::pair<std::string, Json>> &members() const;
    /** Array items (pre: isArray()). */
    const std::vector<Json> &items() const;

    /** Serialize; indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /**
     * Parse JSON text.
     * @param text   input document
     * @param error  receives a message on failure (may be null)
     * @return parsed value, or a Null value with *error set on failure
     */
    static Json parse(const std::string &text, std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool boolVal = false;
    double numVal = 0.0;
    int64_t intVal = 0;
    bool isInt = false;
    std::string strVal;
    std::vector<Json> arr;
    std::vector<std::pair<std::string, Json>> obj;
};

/** Read an entire file into a string; returns false if unreadable. */
bool readFile(const std::string &path, std::string &out);

/** Write a string to a file atomically (tmp + rename); false on error. */
bool writeFile(const std::string &path, const std::string &content);

/**
 * writeFile plus an fsync of the temp file before the rename, so the
 * *content* is durable once the new name is visible.  Callers that
 * need the name itself to survive power loss must still fsyncDir()
 * the containing directory afterwards.
 */
bool writeFileDurable(const std::string &path, const std::string &content);

/**
 * fsync a directory so a just-created/renamed entry inside it survives
 * power loss (the rename itself is atomic either way; without the
 * directory sync the *existence* of the new name is not durable).
 * Returns false if the directory cannot be opened or synced.
 */
bool fsyncDir(const std::string &dir);

} // namespace vstack

#endif // VSTACK_SUPPORT_JSON_H
