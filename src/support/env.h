/**
 * @file
 * Environment-variable configuration shared by benches and examples.
 *
 * Campaign sizes default to values a single-core host can run in
 * minutes; the paper-scale configuration (2,000 faults per cell) is a
 * single environment variable away:
 *
 *   VSTACK_FAULTS=2000  faults per (structure x workload x core) cell
 *   VSTACK_SEED=42      campaign master seed
 *   VSTACK_RESULTS=dir  campaign result cache directory ("" disables)
 *   VSTACK_JOBS=4       campaign worker threads (0 = all hw threads;
 *                       results are bit-identical at any value)
 *   VSTACK_RESUME=0     disable journal replay of interrupted campaigns
 *   VSTACK_WATCHDOG=4.0 per-injection watchdog budget as a multiple of
 *                       the golden run (must be >= 1.0)
 *   VSTACK_ISOLATE=1    fork each sample batch into a supervised,
 *                       resource-limited child; host-level failures
 *                       (SIGSEGV, runaway allocation, hangs) are
 *                       quarantined instead of killing the campaign
 *   VSTACK_JOURNAL_FSYNC=1  fsync the resume journal per appended
 *                       sample (survives power loss, not just kills)
 *   VSTACK_VERIFY_REPLAY=P  re-simulate a deterministic P% (0..100) of
 *                       journal-replayed samples and abort the
 *                       campaign on any divergence
 *   VSTACK_FAILPOINTS=...   arm deterministic fault-injection sites in
 *                       the storage/sandbox paths (chaos testing; see
 *                       support/failpoint.h for the spec grammar)
 *   VSTACK_CHECKPOINT=1 checkpoint/restore fast-forward + golden-trace
 *                       early termination for injection campaigns
 *                       (default on; 0 replays every sample from boot)
 *   VSTACK_CHECKPOINTS=16   checkpoints captured across the golden run
 *                       (>= 1; more = less replayed prefix per sample,
 *                       more memory per campaign)
 *   VSTACK_VERIFY_CHECKPOINT=P  re-run a deterministic P% (0..100) of
 *                       checkpointed samples cold (from boot, no early
 *                       termination) and abort on any divergence
 *   VSTACK_GOLDEN_BUDGET=N  golden-run reference budget in cycles/
 *                       instructions/steps (>= 1); the actual cap is
 *                       the campaign watchdog applied to N
 *   VSTACK_FAULT_MODEL=...  fault model for every campaign (default
 *                       "single-bit"; see src/fault/model.h for the
 *                       spec grammar, e.g.
 *                       "spatial-multibit:cluster=4,stride=1").
 *                       Validated where it is first consumed (the
 *                       fault library sits above this one): a garbage
 *                       value is a one-line fatal error at
 *                       VulnerabilityStack construction
 *   VSTACK_GOLDEN_CACHE=N   cycle-level campaigns (golden run +
 *                       recorded checkpoint trace) kept in memory at
 *                       once (>= 1, default 2); evicting one means the
 *                       next structure campaign on that (core,
 *                       workload) redoes the golden work, so suites
 *                       trade memory for repeated golden runs here
 *
 * Values that shape execution (VSTACK_JOBS, VSTACK_ISOLATE,
 * VSTACK_WATCHDOG, VSTACK_JOURNAL_FSYNC, VSTACK_VERIFY_REPLAY,
 * VSTACK_FAILPOINTS, VSTACK_CHECKPOINT*, VSTACK_GOLDEN_BUDGET) are
 * validated strictly: a set-but-garbage value is a one-line fatal
 * error, never a silent fallback to a misconfigured campaign.
 */
#ifndef VSTACK_SUPPORT_ENV_H
#define VSTACK_SUPPORT_ENV_H

#include <cstdint>
#include <string>

namespace vstack
{

/** Read an integer env var, returning fallback if unset/invalid. */
int64_t envInt(const char *name, int64_t fallback);

/** Read a string env var, returning fallback if unset. */
std::string envString(const char *name, const std::string &fallback);

/** Read a floating-point env var, returning fallback if unset/invalid. */
double envDouble(const char *name, double fallback);

/** @name Strict variants: a set-but-invalid (unparseable or < min)
 *  value is a one-line fatal error instead of a silent fallback. @{ */
int64_t envIntStrict(const char *name, int64_t fallback, int64_t min);
double envDoubleStrict(const char *name, double fallback, double min);
/** Boolean flag: unset -> fallback, integer -> nonzero, else fatal. */
bool envFlagStrict(const char *name, bool fallback = false);
/** @} */

/** Campaign configuration resolved from the environment. */
struct EnvConfig
{
    /** Microarchitecture-level faults per campaign cell. */
    size_t uarchFaults;
    /** Architecture-level (PVF) faults per campaign cell. */
    size_t archFaults;
    /** Software-level (SVF) faults per campaign cell. */
    size_t swFaults;
    /** Master seed for fault sampling. */
    uint64_t seed;
    /** Result-cache directory; empty string disables caching. */
    std::string resultsDir;
    /** Campaign worker threads (0 = hardware concurrency). */
    unsigned jobs = 1;
    /** Replay journaled samples of interrupted campaigns. */
    bool resume = true;
    /** Per-injection watchdog budget factor (x golden run). */
    double watchdogFactor = 4.0;
    /** Run sample batches in forked, resource-limited children. */
    bool isolate = false;
    /** fsync the resume journal after every appended sample. */
    bool journalFsync = false;
    /** Percentage (0..100) of journal-replayed samples to re-simulate
     *  and compare against their records before trusting a resume. */
    double verifyReplay = 0.0;
    /** Checkpoint/restore fast-forward + early termination (default
     *  on; results are bit-identical either way). */
    bool checkpoint = true;
    /** Predecoded fast execution path + fast digest pipeline (default
     *  on; results are bit-identical either way — VSTACK_FASTPATH=0
     *  is the debugging escape hatch, see support/fastpath.h). */
    bool fastpath = true;
    /** Checkpoints captured across each golden run. */
    unsigned checkpoints = 16;
    /** Percentage (0..100) of checkpointed samples to re-run cold and
     *  compare byte-for-byte against the fast path. */
    double verifyCheckpoint = 0.0;
    /** Golden-run reference budget (cycles/insts/steps) the campaign
     *  watchdog is applied to; caps the fault-free reference run. */
    uint64_t goldenBudget = 100'000'000;
    /** Cycle-level campaigns (golden run + recorded trace) kept in
     *  memory at once; the oldest is evicted beyond this. */
    unsigned goldenCache = 2;
    /** Fault-model spec applied to every campaign ("" = the single-bit
     *  default).  Holds the raw VSTACK_FAULT_MODEL string until the
     *  first consumer (VulnerabilityStack, the CLI) parses it into a
     *  fault::FaultModel and rewrites it to the canonical tag; store
     *  keys and journal headers only ever see canonical tags. */
    std::string faultModel;

    /** Resolve from the process environment. */
    static EnvConfig fromEnvironment();
};

} // namespace vstack

#endif // VSTACK_SUPPORT_ENV_H
