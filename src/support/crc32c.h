/**
 * @file
 * CRC-32C (Castagnoli) checksum.
 *
 * Used to stamp every campaign storage record — journal lines and
 * result-cache entries — so that silent on-disk corruption is
 * *detected and classified* instead of skewing AVF/SVF aggregates the
 * way the SDCs under study would.  CRC-32C is the iSCSI/ext4/Btrfs
 * polynomial (0x1EDC6F41); the implementation is a portable
 * table-driven one (no ISA extensions), fast enough that a checksum
 * per journal line is noise next to the simulation it records.
 */
#ifndef VSTACK_SUPPORT_CRC32C_H
#define VSTACK_SUPPORT_CRC32C_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace vstack
{

/** CRC-32C of a byte range (init/xorout per the standard). */
uint32_t crc32c(const void *data, size_t len);

/** CRC-32C of a string's bytes. */
inline uint32_t
crc32c(const std::string &s)
{
    return crc32c(s.data(), s.size());
}

/** Fixed-width lowercase hex rendering, e.g. "e3069283". */
std::string crc32cHex(uint32_t crc);

} // namespace vstack

#endif // VSTACK_SUPPORT_CRC32C_H
