/**
 * @file
 * CRC-32C (Castagnoli) checksum.
 *
 * Used to stamp every campaign storage record — journal lines and
 * result-cache entries — so that silent on-disk corruption is
 * *detected and classified* instead of skewing AVF/SVF aggregates the
 * way the SDCs under study would — and, since the checkpoint
 * accelerator landed, to digest simulator state at every grid point,
 * which makes it a hot-loop cost rather than I/O noise.
 *
 * Three engines compute the same function (iSCSI/ext4/Btrfs
 * polynomial 0x1EDC6F41, reflected 0x82f63b78):
 *
 *  - crc32cReference(): the original byte-at-a-time table walk.  The
 *    semantic ground truth; every other engine is checked against it.
 *  - crc32cSliced(): slicing-by-8 (eight 256-entry tables, one 8-byte
 *    load per iteration) — portable, ~5-8x the reference.
 *  - crc32cHardware(): the SSE4.2 `crc32` instruction on x86-64,
 *    compiled behind a target attribute and only dispatched to after a
 *    runtime CPUID check — ~10x the sliced engine.
 *
 * crc32c() dispatches to the fastest engine available.  The choice is
 * made once, on first use, and the chosen fast engine is self-checked
 * against the reference on fixed vectors at selection time: a mismatch
 * is a broken build (or broken silicon) and aborts rather than letting
 * every digest, journal stamp, and result-cache checksum silently
 * disagree with other processes.  When the fast path is disabled
 * (VSTACK_FASTPATH=0, --no-fastpath; see support/fastpath.h) the
 * dispatcher pins the reference engine so the escape hatch reproduces
 * pre-fastpath behavior exactly, cost included.
 */
#ifndef VSTACK_SUPPORT_CRC32C_H
#define VSTACK_SUPPORT_CRC32C_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace vstack
{

/** CRC-32C of a byte range (init/xorout per the standard); dispatches
 *  to the fastest self-checked engine, see file comment. */
uint32_t crc32c(const void *data, size_t len);

/** CRC-32C of a string's bytes. */
inline uint32_t
crc32c(const std::string &s)
{
    return crc32c(s.data(), s.size());
}

/** @name Individual engines (benchmarks and equivalence tests) @{ */
/** Byte-at-a-time table walk — the reference implementation. */
uint32_t crc32cReference(const void *data, size_t len);
/** Slicing-by-8 software engine. */
uint32_t crc32cSliced(const void *data, size_t len);
/**
 * SSE4.2 hardware engine.  Only callable when
 * crc32cHardwareAvailable(); calling it elsewhere is undefined
 * (SIGILL on a CPU without SSE4.2, abort on non-x86 builds).
 */
uint32_t crc32cHardware(const void *data, size_t len);
/** Whether this build + CPU can run crc32cHardware(). */
bool crc32cHardwareAvailable();
/** @} */

/**
 * The startup self-check, exposed for tests: runs every available
 * engine over fixed vectors (lengths chosen to cover the alignment
 * head, the unrolled body, and the tail) and compares against the
 * reference.  Returns the name of the first disagreeing engine, or
 * nullptr when all agree.  crc32c() runs this implicitly before the
 * first fast dispatch and aborts on a mismatch.
 */
const char *crc32cSelfCheck();

/** Fixed-width lowercase hex rendering, e.g. "e3069283". */
std::string crc32cHex(uint32_t crc);

namespace detail
{
/** Re-evaluate the engine choice (called by setFastPathEnabled()). */
void crc32cReselectEngine();
} // namespace detail

} // namespace vstack

#endif // VSTACK_SUPPORT_CRC32C_H
