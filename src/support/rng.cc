#include "rng.h"

namespace vstack
{

uint64_t
SplitMix64::next()
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

namespace
{

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &word : s)
        word = sm.next();
}

uint64_t
Rng::next64()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Rng::uniform(uint64_t bound)
{
    // Lemire-style rejection: draw until the value falls inside the
    // largest multiple of `bound` representable in 64 bits.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

uint64_t
Rng::uniformRange(uint64_t lo, uint64_t hi)
{
    return lo + uniform(hi - lo + 1);
}

double
Rng::uniformDouble()
{
    return (next64() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return uniformDouble() < p;
}

Rng
Rng::fork()
{
    return Rng(next64());
}

} // namespace vstack
