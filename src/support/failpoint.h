/**
 * @file
 * Deterministic failpoint framework (ARMORY-style systematic fault
 * placement in the tool itself).
 *
 * The injection harness is as much a fault target as the simulators
 * it drives: a short write in the journal, an ENOSPC at the result
 * store's rename, or a torn pipe frame from a dying sandbox child
 * corrupts campaign aggregates exactly like the SDCs being measured.
 * Failpoints let the chaos harness (tests/test_chaos.cc,
 * tools/chaos_campaign.sh) *place* those faults deterministically and
 * assert that recovery restores byte-identical reports.
 *
 * Failpoints are compiled in always and disarmed by default; an
 * unarmed site costs one relaxed atomic load.  Arm via the
 * environment:
 *
 *   VSTACK_FAILPOINTS="journal.append.short_write=1/7,store.rename.enospc=1"
 *
 * or programmatically with armFailpoints() (tests).  Rules, evaluated
 * against a deterministic per-site hit counter:
 *
 *   N      fire on the first N hits (N >= 1); "=1" means "fire once"
 *   M/K    fire on M of every K hits (hit indices h with h mod K < M)
 *   @N     fire exactly on the Nth hit (1-based), once
 *
 * The *effect* of a fired site is encoded in the site's name and
 * implemented at the call site — `.short_write` truncates the I/O,
 * `.enospc` fails it, `.eintr` simulates an interrupted syscall,
 * `.kill` calls `_exit(137)` mid-operation (a SIGKILL landing exactly
 * there).  The full site list lives in DESIGN.md §7.
 *
 * A malformed VSTACK_FAILPOINTS value is a fatal error at first use,
 * never a silently unarmed chaos run (same strictness contract as
 * VSTACK_JOBS and friends).
 */
#ifndef VSTACK_SUPPORT_FAILPOINT_H
#define VSTACK_SUPPORT_FAILPOINT_H

#include <cstdint>
#include <string>

namespace vstack
{

/**
 * Count a hit on `site` and report whether an armed rule fires on it.
 * Unarmed (the common case): no registration, no locking, false.
 * Thread-safe; forked children inherit the armed rules and the
 * counter values at fork time, and count independently from there.
 */
bool failpoint(const char *site);

/** If `site` fires on this hit, die via `_exit(137)` — a SIGKILL
 *  landing exactly at the instrumented operation. */
void failpointKill(const char *site);

/** Hits / fires recorded for a site (0 if never armed; tests). */
uint64_t failpointHits(const char *site);
uint64_t failpointFires(const char *site);

/**
 * Replace the armed rule set with `spec` (same grammar as
 * VSTACK_FAILPOINTS; empty string disarms everything).  Resets all
 * hit/fire counters.  Malformed specs are fatal.
 */
void armFailpoints(const std::string &spec);

/** Disarm everything and reset counters. */
void clearFailpoints();

/** True if any failpoint rule is currently armed. */
bool failpointsArmed();

/** One-line summary of armed sites ("" when unarmed; diagnostics). */
std::string failpointSummary();

} // namespace vstack

#endif // VSTACK_SUPPORT_FAILPOINT_H
