#include "json.h"

#include <atomic>
#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

namespace vstack
{

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

bool
Json::asBool() const
{
    assert(type_ == Type::Bool);
    return boolVal;
}

double
Json::asDouble() const
{
    assert(type_ == Type::Number);
    return numVal;
}

int64_t
Json::asInt() const
{
    assert(type_ == Type::Number);
    return isInt ? intVal : static_cast<int64_t>(std::llround(numVal));
}

const std::string &
Json::asString() const
{
    assert(type_ == Type::String);
    return strVal;
}

const Json &
Json::at(size_t i) const
{
    assert(type_ == Type::Array && i < arr.size());
    return arr[i];
}

const Json &
Json::at(const std::string &key) const
{
    assert(type_ == Type::Object);
    for (const auto &[k, v] : obj) {
        if (k == key)
            return v;
    }
    assert(false && "missing JSON member");
    static Json nullJson;
    return nullJson;
}

bool
Json::has(const std::string &key) const
{
    if (type_ != Type::Object)
        return false;
    for (const auto &[k, v] : obj) {
        (void)v;
        if (k == key)
            return true;
    }
    return false;
}

size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr.size();
    if (type_ == Type::Object)
        return obj.size();
    return 0;
}

void
Json::push(Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    assert(type_ == Type::Array);
    arr.push_back(std::move(v));
}

void
Json::set(const std::string &key, Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    assert(type_ == Type::Object);
    for (auto &[k, existing] : obj) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    obj.emplace_back(key, std::move(v));
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    assert(type_ == Type::Object);
    return obj;
}

const std::vector<Json> &
Json::items() const
{
    assert(type_ == Type::Array);
    return arr;
}

namespace
{

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent > 0) {
            out += '\n';
            out.append(static_cast<size_t>(indent) * d, ' ');
        }
    };
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += boolVal ? "true" : "false";
        break;
      case Type::Number:
        if (isInt) {
            out += std::to_string(intVal);
        } else {
            char buf[40];
            std::snprintf(buf, sizeof(buf), "%.17g", numVal);
            out += buf;
        }
        break;
      case Type::String:
        escapeString(out, strVal);
        break;
      case Type::Array:
        out += '[';
        for (size_t i = 0; i < arr.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            arr[i].dumpTo(out, indent, depth + 1);
        }
        if (!arr.empty())
            newline(depth);
        out += ']';
        break;
      case Type::Object:
        out += '{';
        for (size_t i = 0; i < obj.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            escapeString(out, obj[i].first);
            out += indent > 0 ? ": " : ":";
            obj[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!obj.empty())
            newline(depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace
{

/** Recursive-descent JSON parser over a string. */
class Parser
{
  public:
    Parser(const std::string &text) : text(text) {}

    Json parse(std::string *error)
    {
        Json v = parseValue();
        skipWs();
        if (!failed && pos != text.size())
            fail("trailing characters");
        if (failed) {
            if (error)
                *error = message + " at offset " + std::to_string(pos);
            return Json();
        }
        return v;
    }

  private:
    void fail(const std::string &msg)
    {
        if (!failed) {
            failed = true;
            message = msg;
        }
    }

    void skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
                text[pos] == '\r'))
            ++pos;
    }

    bool consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    Json parseValue()
    {
        skipWs();
        if (failed || pos >= text.size()) {
            fail("unexpected end of input");
            return Json();
        }
        char c = text[pos];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return Json(parseString());
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n') {
            expectWord("null");
            return Json();
        }
        return parseNumber();
    }

    void expectWord(const char *w)
    {
        for (const char *p = w; *p; ++p, ++pos) {
            if (pos >= text.size() || text[pos] != *p) {
                fail(std::string("expected '") + w + "'");
                return;
            }
        }
    }

    Json parseBool()
    {
        if (text[pos] == 't') {
            expectWord("true");
            return Json(true);
        }
        expectWord("false");
        return Json(false);
    }

    std::string parseString()
    {
        std::string out;
        if (!consume('"')) {
            fail("expected string");
            return out;
        }
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                break;
            char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos + 4 > text.size()) {
                    fail("bad \\u escape");
                    return out;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code |= h - 'A' + 10;
                    else {
                        fail("bad \\u escape");
                        return out;
                    }
                }
                // UTF-8 encode (BMP only).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape");
                return out;
            }
        }
        if (!consume('"'))
            fail("unterminated string");
        return out;
    }

    Json parseNumber()
    {
        size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        bool isInt = true;
        while (pos < text.size()) {
            char c = text[pos];
            if (c >= '0' && c <= '9') {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '-' ||
                       c == '+') {
                if (c == '.' || c == 'e' || c == 'E')
                    isInt = false;
                ++pos;
            } else {
                break;
            }
        }
        if (pos == start) {
            fail("expected number");
            return Json();
        }
        std::string tok = text.substr(start, pos - start);
        if (isInt) {
            errno = 0;
            long long v = std::strtoll(tok.c_str(), nullptr, 10);
            if (errno == 0)
                return Json(static_cast<int64_t>(v));
        }
        return Json(std::strtod(tok.c_str(), nullptr));
    }

    Json parseArray()
    {
        Json out = Json::array();
        consume('[');
        skipWs();
        if (consume(']'))
            return out;
        for (;;) {
            out.push(parseValue());
            if (failed)
                return out;
            if (consume(']'))
                return out;
            if (!consume(',')) {
                fail("expected ',' or ']'");
                return out;
            }
        }
    }

    Json parseObject()
    {
        Json out = Json::object();
        consume('{');
        skipWs();
        if (consume('}'))
            return out;
        for (;;) {
            skipWs();
            std::string key = parseString();
            if (failed)
                return out;
            if (!consume(':')) {
                fail("expected ':'");
                return out;
            }
            out.set(key, parseValue());
            if (failed)
                return out;
            if (consume('}'))
                return out;
            if (!consume(',')) {
                fail("expected ',' or '}'");
                return out;
            }
        }
    }

    const std::string &text;
    size_t pos = 0;
    bool failed = false;
    std::string message;
};

} // namespace

Json
Json::parse(const std::string &text, std::string *error)
{
    Parser p(text);
    return p.parse(error);
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    // Write-to-temp + rename keeps readers from ever seeing a
    // truncated file; a per-call unique suffix keeps concurrent
    // writers of the same path from tearing each other's temp file.
    static std::atomic<unsigned> counter{0};
    const std::string tmp =
        path + ".tmp." +
        std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out << content;
        if (!out)
            return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
writeFileDurable(const std::string &path, const std::string &content)
{
    static std::atomic<unsigned> counter{0};
    const std::string tmp =
        path + ".tmp." +
        std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
    int fd;
    do {
        fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0)
        return false;
    size_t off = 0;
    while (off < content.size()) {
        const ssize_t n =
            ::write(fd, content.data() + off, content.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            std::remove(tmp.c_str());
            return false;
        }
        off += static_cast<size_t>(n);
    }
    // fsync the *content* before the rename publishes the name: a
    // rename alone can survive a crash while the bytes behind it do
    // not, which is exactly the torn state the CRC stamp would then
    // have to quarantine.
    int rc;
    do {
        rc = ::fsync(fd);
    } while (rc != 0 && errno == EINTR);
    ::close(fd);
    if (rc != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
fsyncDir(const std::string &dir)
{
    int fd;
    do {
        fd = ::open(dir.empty() ? "." : dir.c_str(),
                    O_RDONLY | O_DIRECTORY);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0)
        return false;
    int rc;
    do {
        rc = ::fsync(fd);
    } while (rc != 0 && errno == EINTR);
    ::close(fd);
    return rc == 0;
}

} // namespace vstack
