/**
 * @file
 * ASCII table renderer used by the benchmark harnesses to print the
 * paper's tables and figure series in a readable, diffable form.
 */
#ifndef VSTACK_SUPPORT_TABLE_H
#define VSTACK_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace vstack
{

/** A simple column-aligned text table with an optional title. */
class Table
{
  public:
    explicit Table(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row (cells may be fewer than header columns). */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void separator();

    /** Render to a string with box-drawing characters. */
    std::string render() const;

    /** Format a double with fixed precision (helper for cells). */
    static std::string num(double v, int precision = 2);

    /** Format a percentage, e.g. pct(0.0312) -> "3.12%". */
    static std::string pct(double fraction, int precision = 2);

  private:
    std::string title_;
    std::vector<std::string> head;
    // Each row; an empty optional-like marker row (single "\x01") is a
    // separator.
    std::vector<std::vector<std::string>> rows;
};

} // namespace vstack

#endif // VSTACK_SUPPORT_TABLE_H
