#include "stats.h"

#include <cassert>
#include <cmath>

namespace vstack
{

double
zValue(double confidence)
{
    // Inverse normal CDF via Acklam's rational approximation, accurate
    // to ~1e-9 which is far below campaign noise.
    double p = 0.5 + confidence / 2.0;
    assert(p > 0.0 && p < 1.0);

    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    const double plow = 0.02425;
    const double phigh = 1 - plow;
    double q, r;
    if (p < plow) {
        q = std::sqrt(-2 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    if (p <= phigh) {
        q = p - 0.5;
        r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
                a[5]) *
               q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
                1);
    }
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

double
samplingMargin(size_t n, double p, double confidence, uint64_t population)
{
    assert(n > 0);
    const double z = zValue(confidence);
    double fpc = 1.0; // finite population correction
    if (population > n && population > 1) {
        fpc = static_cast<double>(population - n) /
              static_cast<double>(population - 1);
    }
    return z * std::sqrt(fpc * p * (1.0 - p) / static_cast<double>(n));
}

size_t
samplesForMargin(double margin, double confidence, uint64_t population)
{
    assert(margin > 0.0);
    const double z = zValue(confidence);
    const double n0 = z * z * 0.25 / (margin * margin);
    if (population == 0)
        return static_cast<size_t>(std::ceil(n0));
    // Solve n = N / (1 + (n0 - 1) / N) style correction.
    const double N = static_cast<double>(population);
    const double n = (N * n0) / (n0 + N - 1.0);
    return static_cast<size_t>(std::ceil(n));
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
weightedMean(const std::vector<double> &xs, const std::vector<double> &ws)
{
    assert(xs.size() == ws.size());
    double num = 0.0, den = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        num += xs[i] * ws[i];
        den += ws[i];
    }
    assert(den > 0.0);
    return num / den;
}

Interval
wilsonInterval(size_t successes, size_t n, double confidence)
{
    assert(n > 0);
    const double z = zValue(confidence);
    const double phat = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = phat + z2 / (2.0 * n);
    const double spread =
        z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
    return {(center - spread) / denom, (center + spread) / denom};
}

} // namespace vstack
