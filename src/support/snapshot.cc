#include "support/snapshot.h"

#include "support/logging.h"

namespace vstack::snap
{

uint64_t
ByteSource::take(size_t count)
{
    if (off + count > n)
        panic("snapshot underrun: read %zu bytes at offset %zu of %zu",
              count, off, n);
    uint64_t v = 0;
    for (size_t i = 0; i < count; ++i)
        v |= uint64_t{p[off + i]} << (8 * i);
    off += count;
    return v;
}

void
ByteSource::bytes(void *dst, size_t count)
{
    if (off + count > n)
        panic("snapshot underrun: read %zu bytes at offset %zu of %zu",
              count, off, n);
    std::memcpy(dst, p + off, count);
    off += count;
}

std::string
ByteSource::str()
{
    const uint64_t len = u64();
    if (off + len > n)
        panic("snapshot underrun: string of %llu bytes at offset %zu of %zu",
              static_cast<unsigned long long>(len), off, n);
    std::string s(reinterpret_cast<const char *>(p + off),
                  static_cast<size_t>(len));
    off += static_cast<size_t>(len);
    return s;
}

MemImage
MemImage::capture(const uint8_t *mem, size_t size, const DirtyMap &changed,
                  const std::vector<uint32_t> &crcTable, const MemImage *prev)
{
    const size_t nPages = (size + PAGE_SIZE - 1) / PAGE_SIZE;
    if (prev && prev->pages.size() != nPages)
        panic("MemImage::capture: previous image has %zu pages, need %zu",
              prev->pages.size(), nPages);
    if (crcTable.size() != nPages)
        panic("MemImage::capture: CRC table has %zu entries, need %zu pages",
              crcTable.size(), nPages);

    MemImage img;
    img.pages.resize(nPages);
    img.pageCrc = crcTable;
    for (size_t i = 0; i < nPages; ++i) {
        if (prev && !changed.test(i)) {
            img.pages[i] = prev->pages[i];
            continue;
        }
        const size_t base = i * PAGE_SIZE;
        const size_t len = std::min(PAGE_SIZE, size - base);
        auto page = std::make_shared<std::vector<uint8_t>>(
            mem + base, mem + base + len);
        img.pages[i] = std::move(page);
        ++img.freshPages;
    }
    return img;
}

size_t
MemImage::restore(uint8_t *mem, size_t size, const MemImage *last,
                  const DirtyMap *dirtySinceLast) const
{
    const size_t nPages = pages.size();
    if ((size + PAGE_SIZE - 1) / PAGE_SIZE != nPages)
        panic("MemImage::restore: image has %zu pages, memory needs %zu",
              nPages, (size + PAGE_SIZE - 1) / PAGE_SIZE);

    size_t copied = 0;
    const bool incremental =
        last && dirtySinceLast && last->pages.size() == nPages;
    for (size_t i = 0; i < nPages; ++i) {
        if (incremental && !dirtySinceLast->test(i) &&
            last->pages[i].get() == pages[i].get())
            continue; // memory still holds exactly these bytes
        const size_t base = i * PAGE_SIZE;
        const size_t len = std::min(PAGE_SIZE, size - base);
        std::memcpy(mem + base, pages[i]->data(), len);
        copied += len;
    }
    return copied;
}

} // namespace vstack::snap
