/**
 * @file
 * One-time predecode of an IR module into threaded-code superblocks.
 *
 * IrInterp's hot loop walks func -> block -> inst vectors on every
 * step and re-branches on block/ip bookkeeping that never changes
 * between the thousands of samples of a campaign.  IrPredecode lowers
 * each function once into a flat array of IrFastOp records — the
 * blocks of a function laid end to end (each block a "superblock" run
 * ending at its terminator), branch targets pre-resolved to flat
 * indices, and every operand/field of the source instruction copied
 * into one cache-friendly record.  The interpreter's fast chunk
 * (IrInterp::execFast) then dispatches on a single indexed load per
 * step.
 *
 * The predecode is pure derived data: it references the source
 * Module (IrFastOp::src points into it for call/syscall argument
 * lists) and must not outlive it.  Built once per workload and shared
 * read-only by every interpreter in the process; the
 * VSTACK_GOLDEN_CACHE LRU keeps it alongside the golden trace.
 */
#ifndef VSTACK_SWFI_PREDECODE_H
#define VSTACK_SWFI_PREDECODE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "compiler/ir.h"

namespace vstack
{

/** One predecoded IR instruction (see file comment). */
struct IrFastOp
{
    ir::IrOp op;
    int dst = -1;
    bool hasA = false;
    bool hasB = false;
    ir::Value a{};
    ir::Value b{};
    int64_t imm = 0;
    int size = 0;
    uint32_t target0 = 0; ///< flat index of branch target 0
    uint32_t target1 = 0; ///< flat index of branch target 1
    int callee = -1;
    uint32_t sysNr = 0;
    int globalId = 0;
    int localId = 0;
    /** Source instruction (argument lists for Call/Syscall). */
    const ir::Inst *src = nullptr;
    /** Source coordinates, for writing a paused position back into
     *  the interpreter's Frame (block, ip). */
    int block = 0;
    uint32_t ip = 0;
};

/** One function's flattened code. */
struct IrFastFunc
{
    std::vector<IrFastOp> code;
    /** blockStart[b] = flat index of block b's first instruction. */
    std::vector<uint32_t> blockStart;
};

/** Immutable once built; safe to share across threads. */
class IrPredecode
{
  public:
    explicit IrPredecode(const ir::Module &m);

    const IrFastFunc &func(int idx) const
    {
        return funcs_[static_cast<size_t>(idx)];
    }

    /** Total predecoded ops (diagnostics/benchmarks). */
    size_t totalOps() const;

    /** Approximate retained bytes (LRU cost accounting). */
    size_t retainedBytes() const;

  private:
    std::vector<IrFastFunc> funcs_;
};

/** Build a shared predecode (the form every consumer passes around).
 *  @pre `m` outlives the returned predecode. */
std::shared_ptr<const IrPredecode> predecodeIr(const ir::Module &m);

} // namespace vstack

#endif // VSTACK_SWFI_PREDECODE_H
