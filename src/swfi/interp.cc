#include "interp.h"

#include <cstring>

#include "machine/memmap.h"
#include "support/logging.h"

namespace vstack
{

using ir::Inst;
using ir::IrOp;
using ir::Value;

IrInterp::IrInterp(const ir::Module &mod) : m(mod)
{
    // Lay out globals exactly where the back-end would put them.
    uint32_t addr = memmap::USER_DATA;
    for (const ir::Global &g : m.globals) {
        const uint32_t align =
            static_cast<uint32_t>(std::max(g.align, 4));
        addr = (addr + align - 1) / align * align;
        globalAddr.push_back(addr);
        addr += static_cast<uint32_t>(g.bytes);
    }
    globalsEnd = addr;
}

namespace
{

struct Frame
{
    int funcIdx;
    int block = 0;
    size_t ip = 0;
    int retDst = -1; ///< caller vreg receiving the result
    uint32_t savedSp;
    std::vector<uint64_t> vregs;
    std::vector<uint32_t> arrayAddr;
};

} // namespace

InterpResult
IrInterp::run(uint64_t maxSteps)
{
    return exec(nullptr, maxSteps);
}

InterpResult
IrInterp::runWithFault(const SwFault &fault, uint64_t maxSteps)
{
    return exec(&fault, maxSteps);
}

InterpResult
IrInterp::exec(const SwFault *fault, uint64_t maxSteps)
{
    InterpResult res;
    const uint64_t mask =
        m.xlen == 64 ? ~0ull : 0xffffffffull;

    if (mem.empty())
        mem.resize(memmap::RAM_SIZE);
    std::memset(mem.data(), 0, mem.size());
    // Initialise globals.
    for (size_t g = 0; g < m.globals.size(); ++g) {
        const auto &init = m.globals[g].init;
        if (!init.empty())
            std::memcpy(mem.data() + globalAddr[g], init.data(),
                        init.size());
    }

    uint32_t sp = memmap::USER_STACK_TOP;

    auto fail = [&](const std::string &msg) {
        res.stop = StopReason::Exception;
        res.error = msg;
    };

    const int mainIdx = m.findFunc("main");
    if (mainIdx < 0) {
        fail("no main");
        return res;
    }

    std::vector<Frame> stack;
    auto pushFrame = [&](int funcIdx, int retDst,
                         const std::vector<uint64_t> &args) -> bool {
        const ir::Func &f = m.funcs[funcIdx];
        Frame fr;
        fr.funcIdx = funcIdx;
        fr.retDst = retDst;
        fr.savedSp = sp;
        fr.vregs.assign(static_cast<size_t>(f.numVregs), 0);
        for (size_t i = 0; i < args.size() && i < fr.vregs.size(); ++i)
            fr.vregs[i] = args[i];
        for (const ir::LocalArray &arr : f.localArrays) {
            sp -= static_cast<uint32_t>(arr.bytes);
            sp &= ~7u;
            fr.arrayAddr.push_back(sp);
        }
        if (sp < memmap::USER_DATA) {
            fail("stack overflow");
            return false;
        }
        if (stack.size() > 2000) {
            fail("call depth exceeded");
            return false;
        }
        stack.push_back(std::move(fr));
        return true;
    };

    if (!pushFrame(mainIdx, -1, {}))
        return res;

    auto memOk = [&](uint64_t addr, unsigned bytes) {
        return addr >= memmap::USER_BASE &&
               addr + bytes <= memmap::RAM_SIZE && addr % bytes == 0;
    };

    while (res.stop == StopReason::Running) {
        if (res.steps >= maxSteps) {
            res.stop = StopReason::Watchdog;
            break;
        }
        Frame &fr = stack.back();
        const ir::Func &f = m.funcs[fr.funcIdx];
        const Inst &inst = f.blocks[fr.block].insts[fr.ip];
        ++res.steps;

        auto val = [&](const Value &v) -> uint64_t {
            return v.isConst ? (static_cast<uint64_t>(v.konst) & mask)
                             : fr.vregs[v.vreg];
        };
        auto setDst = [&](uint64_t v) {
            v &= mask;
            // LLFI-style injection: corrupt the destination of the
            // Nth dynamic value-producing instruction.
            ++res.valueSteps;
            if (fault && res.valueSteps == fault->targetValueStep + 1)
                v ^= 1ull << fault->bit;
            fr.vregs[inst.dst] = v & mask;
        };
        auto sv = [&](uint64_t v) -> int64_t {
            return m.xlen == 64 ? static_cast<int64_t>(v)
                                : static_cast<int64_t>(
                                      static_cast<int32_t>(v));
        };

        bool advance = true;
        const uint64_t a = inst.hasA ? val(inst.a) : 0;
        const uint64_t b = inst.hasB ? val(inst.b) : 0;

        switch (inst.op) {
          case IrOp::Add: setDst(a + b); break;
          case IrOp::Sub: setDst(a - b); break;
          case IrOp::Mul: setDst(a * b); break;
          case IrOp::UDiv: setDst(b == 0 ? 0 : a / b); break;
          case IrOp::SDiv: {
            int64_t x = sv(a), y = sv(b);
            setDst(y == 0 ? 0
                          : (x == INT64_MIN && y == -1
                                 ? static_cast<uint64_t>(x)
                                 : static_cast<uint64_t>(x / y)));
            break;
          }
          case IrOp::URem: setDst(b == 0 ? a : a % b); break;
          case IrOp::SRem: {
            int64_t x = sv(a), y = sv(b);
            setDst(y == 0 ? static_cast<uint64_t>(x)
                          : (x == INT64_MIN && y == -1
                                 ? 0
                                 : static_cast<uint64_t>(x % y)));
            break;
          }
          case IrOp::And: setDst(a & b); break;
          case IrOp::Or: setDst(a | b); break;
          case IrOp::Xor: setDst(a ^ b); break;
          case IrOp::Shl: setDst(a << (b & (m.xlen - 1))); break;
          case IrOp::LShr: setDst(a >> (b & (m.xlen - 1))); break;
          case IrOp::AShr:
            setDst(static_cast<uint64_t>(sv(a) >> (b & (m.xlen - 1))));
            break;
          case IrOp::CmpEq: setDst(a == b); break;
          case IrOp::CmpNe: setDst(a != b); break;
          case IrOp::CmpSLt: setDst(sv(a) < sv(b)); break;
          case IrOp::CmpSLe: setDst(sv(a) <= sv(b)); break;
          case IrOp::CmpSGt: setDst(sv(a) > sv(b)); break;
          case IrOp::CmpSGe: setDst(sv(a) >= sv(b)); break;
          case IrOp::CmpULt: setDst(a < b); break;
          case IrOp::CmpUGe: setDst(a >= b); break;
          case IrOp::Mov: setDst(a); break;
          case IrOp::Load: {
            const uint64_t addr =
                (a + static_cast<uint64_t>(inst.imm)) & mask;
            if (!memOk(addr, static_cast<unsigned>(inst.size))) {
                fail(strprintf("bad load at 0x%llx",
                               static_cast<unsigned long long>(addr)));
                break;
            }
            uint64_t v = 0;
            std::memcpy(&v, mem.data() + addr,
                        static_cast<size_t>(inst.size));
            setDst(v);
            break;
          }
          case IrOp::Store: {
            const uint64_t addr =
                (a + static_cast<uint64_t>(inst.imm)) & mask;
            if (!memOk(addr, static_cast<unsigned>(inst.size))) {
                fail(strprintf("bad store at 0x%llx",
                               static_cast<unsigned long long>(addr)));
                break;
            }
            uint64_t v = b;
            std::memcpy(mem.data() + addr, &v,
                        static_cast<size_t>(inst.size));
            break;
          }
          case IrOp::AddrGlobal:
            setDst(globalAddr[inst.globalId] +
                   static_cast<uint64_t>(inst.imm));
            break;
          case IrOp::AddrLocal:
            setDst(fr.arrayAddr[inst.localId] +
                   static_cast<uint64_t>(inst.imm));
            break;
          case IrOp::Call: {
            std::vector<uint64_t> args;
            for (const Value &arg : inst.args)
                args.push_back(val(arg));
            // Advance the caller past the call first.
            ++fr.ip;
            if (!pushFrame(inst.callee, inst.dst, args))
                break;
            advance = false;
            break;
          }
          case IrOp::Syscall: {
            const uint64_t s0 = !inst.args.empty() ? val(inst.args[0]) : 0;
            const uint64_t s1 = inst.args.size() > 1 ? val(inst.args[1])
                                                     : 0;
            uint64_t ret = 0;
            switch (static_cast<Syscall>(inst.sysNr)) {
              case Syscall::Write: {
                if (s0 < memmap::USER_BASE ||
                    s0 + s1 > memmap::RAM_SIZE || s1 > 65536) {
                    ret = static_cast<uint64_t>(-1);
                    break;
                }
                res.output.insert(res.output.end(), mem.data() + s0,
                                  mem.data() + s0 + s1);
                ret = s1;
                break;
              }
              case Syscall::Exit:
                res.exitCode = static_cast<uint32_t>(s0);
                res.stop = StopReason::Exited;
                break;
              case Syscall::Detect:
                res.detectCode = static_cast<uint32_t>(s0);
                res.stop = StopReason::DetectHit;
                break;
              default:
                ret = static_cast<uint64_t>(-38);
                break;
            }
            if (inst.dst >= 0)
                setDst(ret);
            break;
          }
          case IrOp::CacheClean:
            break; // no cache model at the software layer
          case IrOp::Br:
            fr.block = inst.target0;
            fr.ip = 0;
            advance = false;
            break;
          case IrOp::CondBr:
            fr.block = a != 0 ? inst.target0 : inst.target1;
            fr.ip = 0;
            advance = false;
            break;
          case IrOp::Ret: {
            const uint64_t rv = inst.hasA ? a : 0;
            const int retDst = fr.retDst;
            sp = fr.savedSp;
            stack.pop_back();
            if (stack.empty()) {
                res.exitCode = static_cast<uint32_t>(rv);
                res.stop = StopReason::Exited;
            } else if (retDst >= 0) {
                stack.back().vregs[retDst] = rv & mask;
            }
            advance = false;
            break;
          }
        }

        if (res.stop != StopReason::Running)
            break;
        if (advance)
            ++stack.back().ip;
    }
    return res;
}

} // namespace vstack
