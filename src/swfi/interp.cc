#include "interp.h"

#include <cstring>

#include "support/crc32c.h"
#include "support/logging.h"

namespace vstack
{

using ir::Inst;
using ir::IrOp;
using ir::Value;

namespace
{

/** Stop probing for reconvergence after this many failed digest
 *  compares (mirrors the cycle-level interpreter's policy). */
constexpr unsigned DIGEST_GIVE_UP = 12;

} // namespace

/**
 * Complete captured state of one IrInterp: serialized run state (sp,
 * call stack, in-progress result) plus a COW image of interpreter
 * memory with its per-page CRC table.
 */
struct InterpSnapshot
{
    std::vector<uint8_t> state;
    snap::MemImage mem;
};

const SwfiTrace::Checkpoint &
SwfiTrace::bestFor(uint64_t targetValueStep) const
{
    if (checkpoints.empty() || checkpoints.front().valueSteps > targetValueStep)
        panic("SwfiTrace::bestFor: no checkpoint at or below value step "
              "%llu",
              static_cast<unsigned long long>(targetValueStep));
    const Checkpoint *best = &checkpoints.front();
    for (const Checkpoint &cp : checkpoints) {
        if (cp.valueSteps > targetValueStep)
            break;
        best = &cp;
    }
    return *best;
}

IrInterp::IrInterp(const ir::Module &mod) : m(mod)
{
    // Lay out globals exactly where the back-end would put them.
    uint32_t addr = memmap::USER_DATA;
    for (const ir::Global &g : m.globals) {
        const uint32_t align =
            static_cast<uint32_t>(std::max(g.align, 4));
        addr = (addr + align - 1) / align * align;
        globalAddr.push_back(addr);
        addr += static_cast<uint32_t>(g.bytes);
    }
    globalsEnd = addr;
}

IrInterp::~IrInterp() = default;

InterpResult
IrInterp::run(uint64_t maxSteps)
{
    return exec(nullptr, maxSteps, nullptr, 0, 0, nullptr, false, false);
}

InterpResult
IrInterp::runWithFault(const SwFault &fault, uint64_t maxSteps)
{
    return exec(&fault, maxSteps, nullptr, 0, 0, nullptr, false, false);
}

InterpResult
IrInterp::runRecording(uint64_t maxSteps, SwfiTrace &trace,
                       uint64_t interval, unsigned ckptEvery)
{
    if (interval == 0 || ckptEvery == 0)
        panic("runRecording: cadence must be nonzero");
    trace.interval = interval;
    trace.digests.clear();
    trace.outLens.clear();
    trace.checkpoints.clear();
    return exec(nullptr, maxSteps, &trace, interval, ckptEvery, nullptr,
                false, false);
}

InterpResult
IrInterp::runWithTrace(const SwFault &fault, uint64_t maxSteps,
                       const SwfiTrace &trace, bool earlyStop)
{
    restore(trace.bestFor(fault.targetValueStep).state);
    return exec(&fault, maxSteps, nullptr, 0, 0, &trace, earlyStop, true);
}

void
IrInterp::beginRun()
{
    if (mem.empty())
        mem.resize(memmap::RAM_SIZE);
    std::memset(mem.data(), 0, mem.size());
    for (size_t g = 0; g < m.globals.size(); ++g) {
        const auto &init = m.globals[g].init;
        if (!init.empty())
            std::memcpy(mem.data() + globalAddr[g], init.data(),
                        init.size());
    }
    pageCrcValid = false;
    digestDirty.markAll();
    ckptDirty.markAll();
    restoreDirty.markAll();
    lastRestored.reset();

    sp = memmap::USER_STACK_TOP;
    stack.clear();
    res = InterpResult{};
}

void
IrInterp::harvestPageCrc()
{
    const size_t nPages = mem.size() >> snap::PAGE_SHIFT;
    if (!pageCrcValid) {
        pageCrc.resize(nPages);
        for (size_t p = 0; p < nPages; ++p) {
            pageCrc[p] = crc32c(mem.data() + p * snap::PAGE_SIZE,
                                snap::PAGE_SIZE);
            ckptDirty.mark(p);
        }
        digestDirty.clearAll();
        pageCrcValid = true;
        return;
    }
    digestDirty.forEachDirty([&](size_t p) {
        pageCrc[p] = crc32c(mem.data() + p * snap::PAGE_SIZE,
                            snap::PAGE_SIZE);
        ckptDirty.mark(p);
    });
    digestDirty.clearAll();
}

/**
 * Serialize run state.  Digest mode covers exactly the state that
 * determines future behavior: sp, the call stack, and (appended by
 * stateDigest) the memory page CRCs — plus the step/valueStep
 * counters, so a digest match at a grid point implies the remaining
 * execution AND the final counters are identical.  The output stream
 * is excluded (compared against the golden prefix separately).  Full
 * mode adds the in-progress result so a restored run resumes exactly.
 */
void
IrInterp::serializeState(snap::ByteSink &s, bool digest) const
{
    s.u32(sp);
    s.u64(res.steps);
    s.u64(res.valueSteps);
    s.u64(stack.size());
    for (const Frame &fr : stack) {
        s.i32(fr.funcIdx);
        s.i32(fr.block);
        s.u64(fr.ip);
        s.i32(fr.retDst);
        s.u32(fr.savedSp);
        s.u64(fr.vregs.size());
        for (uint64_t v : fr.vregs)
            s.u64(v);
        s.u64(fr.arrayAddr.size());
        for (uint32_t a : fr.arrayAddr)
            s.u32(a);
    }
    if (digest)
        return;
    s.u8(static_cast<uint8_t>(res.stop));
    s.str(res.error);
    s.u64(res.output.size());
    s.bytes(res.output.data(), res.output.size());
    s.u32(res.exitCode);
    s.u32(res.detectCode);
}

uint32_t
IrInterp::stateDigest()
{
    harvestPageCrc();
    snap::ByteSink s;
    serializeState(s, /*digest=*/true);
    s.bytes(pageCrc.data(), pageCrc.size() * sizeof(uint32_t));
    return crc32c(s.data().data(), s.size());
}

std::shared_ptr<const InterpSnapshot>
IrInterp::snapshot(const InterpSnapshot *prev)
{
    harvestPageCrc();
    auto snapPtr = std::make_shared<InterpSnapshot>();
    snap::ByteSink s;
    serializeState(s, /*digest=*/false);
    snapPtr->state = s.take();
    snapPtr->mem = snap::MemImage::capture(mem.data(), mem.size(),
                                           ckptDirty, pageCrc,
                                           prev ? &prev->mem : nullptr);
    ckptDirty.clearAll();
    return snapPtr;
}

void
IrInterp::restore(std::shared_ptr<const InterpSnapshot> snapPtr)
{
    if (mem.empty())
        mem.resize(memmap::RAM_SIZE);
    snapPtr->mem.restore(mem.data(), mem.size(),
                         lastRestored ? &lastRestored->mem : nullptr,
                         &restoreDirty);
    restoreDirty.clearAll();
    digestDirty.clearAll();
    pageCrc = snapPtr->mem.pageCrc;
    pageCrcValid = true;
    // Future checkpoints taken from here have unknown deltas.
    ckptDirty.markAll();

    snap::ByteSource s(snapPtr->state);
    sp = s.u32();
    res = InterpResult{};
    res.steps = s.u64();
    res.valueSteps = s.u64();
    stack.resize(s.u64());
    for (Frame &fr : stack) {
        fr.funcIdx = s.i32();
        fr.block = s.i32();
        fr.ip = s.u64();
        fr.retDst = s.i32();
        fr.savedSp = s.u32();
        fr.vregs.resize(s.u64());
        for (uint64_t &v : fr.vregs)
            v = s.u64();
        fr.arrayAddr.resize(s.u64());
        for (uint32_t &a : fr.arrayAddr)
            a = s.u32();
    }
    res.stop = static_cast<StopReason>(s.u8());
    res.error = s.str();
    res.output.resize(s.u64());
    s.bytes(res.output.data(), res.output.size());
    res.exitCode = s.u32();
    res.detectCode = s.u32();
    if (!s.atEnd())
        panic("IrInterp snapshot has trailing bytes");
    lastRestored = std::move(snapPtr);
}

InterpResult
IrInterp::exec(const SwFault *fault, uint64_t maxSteps, SwfiTrace *record,
               uint64_t interval, unsigned ckptEvery,
               const SwfiTrace *check, bool earlyStop, bool resume)
{
    const uint64_t mask =
        m.xlen == 64 ? ~0ull : 0xffffffffull;

    auto fail = [&](const std::string &msg) {
        res.stop = StopReason::Exception;
        res.error = msg;
    };

    auto pushFrame = [&](int funcIdx, int retDst,
                         const std::vector<uint64_t> &args) -> bool {
        const ir::Func &f = m.funcs[funcIdx];
        Frame fr;
        fr.funcIdx = funcIdx;
        fr.retDst = retDst;
        fr.savedSp = sp;
        fr.vregs.assign(static_cast<size_t>(f.numVregs), 0);
        for (size_t i = 0; i < args.size() && i < fr.vregs.size(); ++i)
            fr.vregs[i] = args[i];
        for (const ir::LocalArray &arr : f.localArrays) {
            sp -= static_cast<uint32_t>(arr.bytes);
            sp &= ~7u;
            fr.arrayAddr.push_back(sp);
        }
        if (sp < memmap::USER_DATA) {
            fail("stack overflow");
            return false;
        }
        if (stack.size() > 2000) {
            fail("call depth exceeded");
            return false;
        }
        stack.push_back(std::move(fr));
        return true;
    };

    if (!resume) {
        beginRun();
        const int mainIdx = m.findFunc("main");
        if (mainIdx < 0) {
            fail("no main");
            return res;
        }
        if (!pushFrame(mainIdx, -1, {}))
            return res;
    }

    if (record)
        record->checkpoints.push_back(
            {res.steps, res.valueSteps, snapshot(nullptr)});

    // Early termination is sound only when the injected run cannot be
    // stopped by the watchdog before reaching the golden step count.
    const bool stopEligible =
        earlyStop && check && check->recorded() &&
        check->final.stop == StopReason::Exited &&
        maxSteps >= check->final.steps;
    unsigned digestFails = 0;

    auto memOk = [&](uint64_t addr, unsigned bytes) {
        return addr >= memmap::USER_BASE &&
               addr + bytes <= memmap::RAM_SIZE && addr % bytes == 0;
    };

    while (res.stop == StopReason::Running) {
        if (res.steps >= maxSteps) {
            res.stop = StopReason::Watchdog;
            break;
        }
        Frame &fr = stack.back();
        const ir::Func &f = m.funcs[fr.funcIdx];
        const Inst &inst = f.blocks[fr.block].insts[fr.ip];
        ++res.steps;

        auto val = [&](const Value &v) -> uint64_t {
            return v.isConst ? (static_cast<uint64_t>(v.konst) & mask)
                             : fr.vregs[v.vreg];
        };
        auto setDst = [&](uint64_t v) {
            v &= mask;
            // LLFI-style injection: corrupt the destination of the
            // Nth dynamic value-producing instruction.
            ++res.valueSteps;
            if (fault && res.valueSteps == fault->targetValueStep + 1)
                v ^= 1ull << fault->bit;
            fr.vregs[inst.dst] = v & mask;
        };
        auto sv = [&](uint64_t v) -> int64_t {
            return m.xlen == 64 ? static_cast<int64_t>(v)
                                : static_cast<int64_t>(
                                      static_cast<int32_t>(v));
        };

        bool advance = true;
        const uint64_t a = inst.hasA ? val(inst.a) : 0;
        const uint64_t b = inst.hasB ? val(inst.b) : 0;

        switch (inst.op) {
          case IrOp::Add: setDst(a + b); break;
          case IrOp::Sub: setDst(a - b); break;
          case IrOp::Mul: setDst(a * b); break;
          case IrOp::UDiv: setDst(b == 0 ? 0 : a / b); break;
          case IrOp::SDiv: {
            int64_t x = sv(a), y = sv(b);
            setDst(y == 0 ? 0
                          : (x == INT64_MIN && y == -1
                                 ? static_cast<uint64_t>(x)
                                 : static_cast<uint64_t>(x / y)));
            break;
          }
          case IrOp::URem: setDst(b == 0 ? a : a % b); break;
          case IrOp::SRem: {
            int64_t x = sv(a), y = sv(b);
            setDst(y == 0 ? static_cast<uint64_t>(x)
                          : (x == INT64_MIN && y == -1
                                 ? 0
                                 : static_cast<uint64_t>(x % y)));
            break;
          }
          case IrOp::And: setDst(a & b); break;
          case IrOp::Or: setDst(a | b); break;
          case IrOp::Xor: setDst(a ^ b); break;
          case IrOp::Shl: setDst(a << (b & (m.xlen - 1))); break;
          case IrOp::LShr: setDst(a >> (b & (m.xlen - 1))); break;
          case IrOp::AShr:
            setDst(static_cast<uint64_t>(sv(a) >> (b & (m.xlen - 1))));
            break;
          case IrOp::CmpEq: setDst(a == b); break;
          case IrOp::CmpNe: setDst(a != b); break;
          case IrOp::CmpSLt: setDst(sv(a) < sv(b)); break;
          case IrOp::CmpSLe: setDst(sv(a) <= sv(b)); break;
          case IrOp::CmpSGt: setDst(sv(a) > sv(b)); break;
          case IrOp::CmpSGe: setDst(sv(a) >= sv(b)); break;
          case IrOp::CmpULt: setDst(a < b); break;
          case IrOp::CmpUGe: setDst(a >= b); break;
          case IrOp::Mov: setDst(a); break;
          case IrOp::Load: {
            const uint64_t addr =
                (a + static_cast<uint64_t>(inst.imm)) & mask;
            if (!memOk(addr, static_cast<unsigned>(inst.size))) {
                fail(strprintf("bad load at 0x%llx",
                               static_cast<unsigned long long>(addr)));
                break;
            }
            uint64_t v = 0;
            std::memcpy(&v, mem.data() + addr,
                        static_cast<size_t>(inst.size));
            setDst(v);
            break;
          }
          case IrOp::Store: {
            const uint64_t addr =
                (a + static_cast<uint64_t>(inst.imm)) & mask;
            if (!memOk(addr, static_cast<unsigned>(inst.size))) {
                fail(strprintf("bad store at 0x%llx",
                               static_cast<unsigned long long>(addr)));
                break;
            }
            uint64_t v = b;
            std::memcpy(mem.data() + addr, &v,
                        static_cast<size_t>(inst.size));
            // memOk guarantees alignment, so the access cannot
            // straddle a page boundary.
            const size_t page = addr >> snap::PAGE_SHIFT;
            digestDirty.mark(page);
            ckptDirty.mark(page);
            restoreDirty.mark(page);
            break;
          }
          case IrOp::AddrGlobal:
            setDst(globalAddr[inst.globalId] +
                   static_cast<uint64_t>(inst.imm));
            break;
          case IrOp::AddrLocal:
            setDst(fr.arrayAddr[inst.localId] +
                   static_cast<uint64_t>(inst.imm));
            break;
          case IrOp::Call: {
            std::vector<uint64_t> args;
            for (const Value &arg : inst.args)
                args.push_back(val(arg));
            // Advance the caller past the call first.
            ++fr.ip;
            if (!pushFrame(inst.callee, inst.dst, args))
                break;
            advance = false;
            break;
          }
          case IrOp::Syscall: {
            const uint64_t s0 = !inst.args.empty() ? val(inst.args[0]) : 0;
            const uint64_t s1 = inst.args.size() > 1 ? val(inst.args[1])
                                                     : 0;
            uint64_t ret = 0;
            switch (static_cast<Syscall>(inst.sysNr)) {
              case Syscall::Write: {
                if (s0 < memmap::USER_BASE ||
                    s0 + s1 > memmap::RAM_SIZE || s1 > 65536) {
                    ret = static_cast<uint64_t>(-1);
                    break;
                }
                res.output.insert(res.output.end(), mem.data() + s0,
                                  mem.data() + s0 + s1);
                ret = s1;
                break;
              }
              case Syscall::Exit:
                res.exitCode = static_cast<uint32_t>(s0);
                res.stop = StopReason::Exited;
                break;
              case Syscall::Detect:
                res.detectCode = static_cast<uint32_t>(s0);
                res.stop = StopReason::DetectHit;
                break;
              default:
                ret = static_cast<uint64_t>(-38);
                break;
            }
            if (inst.dst >= 0)
                setDst(ret);
            break;
          }
          case IrOp::CacheClean:
            break; // no cache model at the software layer
          case IrOp::Br:
            fr.block = inst.target0;
            fr.ip = 0;
            advance = false;
            break;
          case IrOp::CondBr:
            fr.block = a != 0 ? inst.target0 : inst.target1;
            fr.ip = 0;
            advance = false;
            break;
          case IrOp::Ret: {
            const uint64_t rv = inst.hasA ? a : 0;
            const int retDst = fr.retDst;
            sp = fr.savedSp;
            stack.pop_back();
            if (stack.empty()) {
                res.exitCode = static_cast<uint32_t>(rv);
                res.stop = StopReason::Exited;
            } else if (retDst >= 0) {
                stack.back().vregs[retDst] = rv & mask;
            }
            advance = false;
            break;
          }
        }

        if (res.stop != StopReason::Running)
            break;
        if (advance)
            ++stack.back().ip;

        if (record && res.steps % interval == 0) {
            record->digests.push_back(stateDigest());
            record->outLens.push_back(res.output.size());
            if (record->digests.size() % ckptEvery == 0)
                record->checkpoints.push_back(
                    {res.steps, res.valueSteps,
                     snapshot(record->checkpoints.back().state.get())});
        }

        if (stopEligible && res.steps % check->interval == 0 &&
            res.valueSteps > fault->targetValueStep &&
            digestFails < DIGEST_GIVE_UP) {
            const uint64_t k = res.steps / check->interval - 1;
            if (k < check->digests.size()) {
                if (stateDigest() != check->digests[k]) {
                    ++digestFails;
                } else {
                    // State reconverged with the golden run at the
                    // same step count: splice the golden suffix onto
                    // the emitted output and return the exact result
                    // of the full run without executing the tail.
                    InterpResult r;
                    r.stop = check->final.stop;
                    r.steps = check->final.steps;
                    r.valueSteps = check->final.valueSteps;
                    r.exitCode = check->final.exitCode;
                    r.detectCode = check->final.detectCode;
                    r.output = res.output;
                    r.output.insert(
                        r.output.end(),
                        check->final.output.begin() +
                            static_cast<ptrdiff_t>(check->outLens[k]),
                        check->final.output.end());
                    return r;
                }
            }
        }
    }

    if (record)
        record->final = res;
    return res;
}

} // namespace vstack
