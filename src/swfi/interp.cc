#include "interp.h"

#include <cstring>

#include "fault/condition.h"
#include "support/crc32c.h"
#include "support/failpoint.h"
#include "support/fastpath.h"
#include "support/logging.h"

namespace vstack
{

using ir::Inst;
using ir::IrOp;
using ir::Value;

namespace
{

/** Stop probing for reconvergence after this many failed digest
 *  compares (mirrors the cycle-level interpreter's policy). */
constexpr unsigned DIGEST_GIVE_UP = 12;

/**
 * Apply one fault event's flips to a destination value: `burst` flips
 * `stride` bits apart, wrapping at the value width, each optionally
 * value-conditioned.  With the default single-bit shape this is the
 * legacy `v ^= 1 << bit`, bit for bit.
 */
uint64_t
applySwFlips(const SwFault &f, uint64_t eventIdx, int baseBit, int xlen,
             uint64_t v)
{
    for (uint32_t k = 0; k < f.burst; ++k) {
        const int b = static_cast<int>(
            (static_cast<uint64_t>(baseBit) + k * f.stride) %
            static_cast<uint64_t>(xlen));
        if (f.conditioned &&
            !fault::flipSelected(f.condSalt, eventIdx * f.burst + k,
                                 static_cast<int>((v >> b) & 1),
                                 f.pFlip1, f.pFlip0))
            continue;
        v ^= 1ull << b;
    }
    return v;
}

} // namespace

/**
 * Complete captured state of one IrInterp: serialized run state (sp,
 * call stack, in-progress result) plus a COW image of interpreter
 * memory with its per-page CRC table.
 */
struct InterpSnapshot
{
    std::vector<uint8_t> state;
    snap::MemImage mem;
};

const SwfiTrace::Checkpoint &
SwfiTrace::bestFor(uint64_t targetValueStep) const
{
    if (checkpoints.empty() || checkpoints.front().valueSteps > targetValueStep)
        panic("SwfiTrace::bestFor: no checkpoint at or below value step "
              "%llu",
              static_cast<unsigned long long>(targetValueStep));
    const Checkpoint *best = &checkpoints.front();
    for (const Checkpoint &cp : checkpoints) {
        if (cp.valueSteps > targetValueStep)
            break;
        best = &cp;
    }
    return *best;
}

IrInterp::IrInterp(const ir::Module &mod) : m(mod)
{
    // Lay out globals exactly where the back-end would put them.
    uint32_t addr = memmap::USER_DATA;
    for (const ir::Global &g : m.globals) {
        const uint32_t align =
            static_cast<uint32_t>(std::max(g.align, 4));
        addr = (addr + align - 1) / align * align;
        globalAddr.push_back(addr);
        addr += static_cast<uint32_t>(g.bytes);
    }
    globalsEnd = addr;
}

IrInterp::~IrInterp() = default;

InterpResult
IrInterp::run(uint64_t maxSteps)
{
    return exec(nullptr, maxSteps, nullptr, 0, 0, nullptr, false, false);
}

InterpResult
IrInterp::runWithFault(const SwFault &fault, uint64_t maxSteps)
{
    return exec(&fault, maxSteps, nullptr, 0, 0, nullptr, false, false);
}

InterpResult
IrInterp::runRecording(uint64_t maxSteps, SwfiTrace &trace,
                       uint64_t interval, unsigned ckptEvery)
{
    if (interval == 0 || ckptEvery == 0)
        panic("runRecording: cadence must be nonzero");
    trace.interval = interval;
    trace.digests.clear();
    trace.outLens.clear();
    trace.checkpoints.clear();
    return exec(nullptr, maxSteps, &trace, interval, ckptEvery, nullptr,
                false, false);
}

InterpResult
IrInterp::runWithTrace(const SwFault &fault, uint64_t maxSteps,
                       const SwfiTrace &trace, bool earlyStop)
{
    restore(trace.bestFor(fault.targetValueStep).state);
    return exec(&fault, maxSteps, nullptr, 0, 0, &trace, earlyStop, true);
}

void
IrInterp::beginRun()
{
    if (mem.empty())
        mem.resize(memmap::RAM_SIZE);
    std::memset(mem.data(), 0, mem.size());
    for (size_t g = 0; g < m.globals.size(); ++g) {
        const auto &init = m.globals[g].init;
        if (!init.empty())
            std::memcpy(mem.data() + globalAddr[g], init.data(),
                        init.size());
    }
    pageCrcValid = false;
    digestDirty.markAll();
    ckptDirty.markAll();
    restoreDirty.markAll();
    lastRestored.reset();
    if (fastPathEnabled())
        seedPageCrc();

    sp = memmap::USER_STACK_TOP;
    stack.clear();
    res = InterpResult{};
}

/**
 * Seed the per-page CRC table right after beginRun()'s memset instead
 * of letting the first stateDigest() walk all of memory: cleared
 * pages all share one precomputed zero-page CRC, so only the pages
 * holding global initializers need hashing.  Values are identical to
 * a full walk — this only moves the work off the first digest and
 * shrinks it to the initialised footprint.
 */
void
IrInterp::seedPageCrc()
{
    static const uint32_t zeroCrc = [] {
        const std::vector<uint8_t> z(snap::PAGE_SIZE, 0);
        return crc32c(z.data(), z.size());
    }();
    const size_t nPages = mem.size() >> snap::PAGE_SHIFT;
    pageCrc.assign(nPages, zeroCrc);
    for (size_t g = 0; g < m.globals.size(); ++g) {
        if (m.globals[g].init.empty())
            continue;
        const size_t p0 = globalAddr[g] >> snap::PAGE_SHIFT;
        const size_t p1 = (globalAddr[g] + m.globals[g].init.size() +
                           snap::PAGE_SIZE - 1) >>
                          snap::PAGE_SHIFT;
        for (size_t p = p0; p < p1 && p < nPages; ++p)
            pageCrc[p] = crc32c(mem.data() + p * snap::PAGE_SIZE,
                                snap::PAGE_SIZE);
    }
    digestDirty.clearAll();
    pageCrcValid = true;
}

void
IrInterp::harvestPageCrc()
{
    const size_t nPages = mem.size() >> snap::PAGE_SHIFT;
    if (!pageCrcValid) {
        pageCrc.resize(nPages);
        for (size_t p = 0; p < nPages; ++p) {
            pageCrc[p] = crc32c(mem.data() + p * snap::PAGE_SIZE,
                                snap::PAGE_SIZE);
            ckptDirty.mark(p);
        }
        digestDirty.clearAll();
        pageCrcValid = true;
        return;
    }
    digestDirty.forEachDirty([&](size_t p) {
        pageCrc[p] = crc32c(mem.data() + p * snap::PAGE_SIZE,
                            snap::PAGE_SIZE);
        ckptDirty.mark(p);
    });
    digestDirty.clearAll();
}

/**
 * Serialize run state.  Digest mode covers exactly the state that
 * determines future behavior: sp, the call stack, and (appended by
 * stateDigest) the memory page CRCs — plus the step/valueStep
 * counters, so a digest match at a grid point implies the remaining
 * execution AND the final counters are identical.  The output stream
 * is excluded (compared against the golden prefix separately).  Full
 * mode adds the in-progress result so a restored run resumes exactly.
 */
void
IrInterp::serializeState(snap::ByteSink &s, bool digest) const
{
    s.u32(sp);
    s.u64(res.steps);
    s.u64(res.valueSteps);
    s.u64(stack.size());
    for (const Frame &fr : stack) {
        s.i32(fr.funcIdx);
        s.i32(fr.block);
        s.u64(fr.ip);
        s.i32(fr.retDst);
        s.u32(fr.savedSp);
        s.u64(fr.vregs.size());
        for (uint64_t v : fr.vregs)
            s.u64(v);
        s.u64(fr.arrayAddr.size());
        for (uint32_t a : fr.arrayAddr)
            s.u32(a);
    }
    if (digest)
        return;
    s.u8(static_cast<uint8_t>(res.stop));
    s.str(res.error);
    s.u64(res.output.size());
    s.bytes(res.output.data(), res.output.size());
    s.u32(res.exitCode);
    s.u32(res.detectCode);
}

uint32_t
IrInterp::stateDigest()
{
    harvestPageCrc();
    if (!fastPathEnabled()) {
        // Escape hatch: a fresh sink per digest, like the original
        // pipeline (same value, original allocation cost).
        snap::ByteSink s;
        serializeState(s, /*digest=*/true);
        s.bytes(pageCrc.data(), pageCrc.size() * sizeof(uint32_t));
        return crc32c(s.data().data(), s.size());
    }
    // Fast path: harvest into the persistent staging buffer (capacity
    // survives clear(), so steady-state digests allocate nothing) and
    // CRC it in one pass.
    digestSink.clear();
    serializeState(digestSink, /*digest=*/true);
    digestSink.bytes(pageCrc.data(), pageCrc.size() * sizeof(uint32_t));
    return crc32c(digestSink.data().data(), digestSink.size());
}

std::shared_ptr<const InterpSnapshot>
IrInterp::snapshot(const InterpSnapshot *prev)
{
    harvestPageCrc();
    auto snapPtr = std::make_shared<InterpSnapshot>();
    snap::ByteSink s;
    serializeState(s, /*digest=*/false);
    snapPtr->state = s.take();
    snapPtr->mem = snap::MemImage::capture(mem.data(), mem.size(),
                                           ckptDirty, pageCrc,
                                           prev ? &prev->mem : nullptr);
    ckptDirty.clearAll();
    return snapPtr;
}

void
IrInterp::restore(std::shared_ptr<const InterpSnapshot> snapPtr)
{
    if (mem.empty())
        mem.resize(memmap::RAM_SIZE);
    snapPtr->mem.restore(mem.data(), mem.size(),
                         lastRestored ? &lastRestored->mem : nullptr,
                         &restoreDirty);
    restoreDirty.clearAll();
    digestDirty.clearAll();
    pageCrc = snapPtr->mem.pageCrc;
    pageCrcValid = true;
    // Future checkpoints taken from here have unknown deltas.
    ckptDirty.markAll();

    snap::ByteSource s(snapPtr->state);
    sp = s.u32();
    res = InterpResult{};
    res.steps = s.u64();
    res.valueSteps = s.u64();
    stack.resize(s.u64());
    for (Frame &fr : stack) {
        fr.funcIdx = s.i32();
        fr.block = s.i32();
        fr.ip = s.u64();
        fr.retDst = s.i32();
        fr.savedSp = s.u32();
        fr.vregs.resize(s.u64());
        for (uint64_t &v : fr.vregs)
            v = s.u64();
        fr.arrayAddr.resize(s.u64());
        for (uint32_t &a : fr.arrayAddr)
            a = s.u32();
    }
    res.stop = static_cast<StopReason>(s.u8());
    res.error = s.str();
    res.output.resize(s.u64());
    s.bytes(res.output.data(), res.output.size());
    res.exitCode = s.u32();
    res.detectCode = s.u32();
    if (!s.atEnd())
        panic("IrInterp snapshot has trailing bytes");
    lastRestored = std::move(snapPtr);
}

bool
IrInterp::pushFrame(int funcIdx, int retDst,
                    const std::vector<uint64_t> &args)
{
    auto fail = [&](const std::string &msg) {
        res.stop = StopReason::Exception;
        res.error = msg;
    };
    const ir::Func &f = m.funcs[funcIdx];
    Frame fr;
    fr.funcIdx = funcIdx;
    fr.retDst = retDst;
    fr.savedSp = sp;
    fr.vregs.assign(static_cast<size_t>(f.numVregs), 0);
    for (size_t i = 0; i < args.size() && i < fr.vregs.size(); ++i)
        fr.vregs[i] = args[i];
    for (const ir::LocalArray &arr : f.localArrays) {
        sp -= static_cast<uint32_t>(arr.bytes);
        sp &= ~7u;
        fr.arrayAddr.push_back(sp);
    }
    if (sp < memmap::USER_DATA) {
        fail("stack overflow");
        return false;
    }
    if (stack.size() > 2000) {
        fail("call depth exceeded");
        return false;
    }
    stack.push_back(std::move(fr));
    return true;
}

InterpResult
IrInterp::exec(const SwFault *fault, uint64_t maxSteps, SwfiTrace *record,
               uint64_t interval, unsigned ckptEvery,
               const SwfiTrace *check, bool earlyStop, bool resume)
{
    const uint64_t mask =
        m.xlen == 64 ? ~0ull : 0xffffffffull;

    auto fail = [&](const std::string &msg) {
        res.stop = StopReason::Exception;
        res.error = msg;
    };

    if (!resume) {
        beginRun();
        const int mainIdx = m.findFunc("main");
        if (mainIdx < 0) {
            fail("no main");
            return res;
        }
        if (!pushFrame(mainIdx, -1, {}))
            return res;
    }

    if (record)
        record->checkpoints.push_back(
            {res.steps, res.valueSteps, snapshot(nullptr)});

    // Early termination is sound only when the injected run cannot be
    // stopped by the watchdog before reaching the golden step count.
    const bool stopEligible =
        earlyStop && check && check->recorded() &&
        check->final.stop == StopReason::Exited &&
        maxSteps >= check->final.steps;
    unsigned digestFails = 0;

    auto memOk = [&](uint64_t addr, unsigned bytes) {
        return addr >= memmap::USER_BASE &&
               addr + bytes <= memmap::RAM_SIZE && addr % bytes == 0;
    };

    auto recordHook = [&]() {
        record->digests.push_back(stateDigest());
        record->outLens.push_back(res.output.size());
        if (record->digests.size() % ckptEvery == 0)
            record->checkpoints.push_back(
                {res.steps, res.valueSteps,
                 snapshot(record->checkpoints.back().state.get())});
    };

    // Threaded-code chunks cover the fault-free window: everything
    // when there is no fault, the pre-injection prefix otherwise.
    // Execution at or past the injection point stays on the exact
    // interpreter loop below (DESIGN.md §12).  The chunk pauses at
    // record-grid boundaries so the recording hooks fire exactly as
    // they would step-by-step, and a `fastpath.dispatch` failpoint
    // inhibits chunks for the rest of this run.
    const uint64_t fence = fault ? fault->targetValueStep : UINT64_MAX;
    bool fastInhibit = false;

    while (res.stop == StopReason::Running) {
        if (res.steps >= maxSteps) {
            res.stop = StopReason::Watchdog;
            break;
        }
        if (fastPd && !fastInhibit && res.valueSteps < fence) {
            if (failpoint("fastpath.dispatch")) {
                fastInhibit = true;
            } else {
                uint64_t stopAt = maxSteps;
                if (record)
                    stopAt = std::min(
                        stopAt,
                        res.steps + interval - res.steps % interval);
                execFast(stopAt, fence);
                if (res.stop != StopReason::Running)
                    break;
                if (record && res.steps % interval == 0)
                    recordHook();
                // A chunk always makes progress (the entry guards
                // hold), so looping back cannot spin.
                continue;
            }
        }
        Frame &fr = stack.back();
        const ir::Func &f = m.funcs[fr.funcIdx];
        const Inst &inst = f.blocks[fr.block].insts[fr.ip];
        ++res.steps;

        auto val = [&](const Value &v) -> uint64_t {
            return v.isConst ? (static_cast<uint64_t>(v.konst) & mask)
                             : fr.vregs[v.vreg];
        };
        auto setDst = [&](uint64_t v) {
            v &= mask;
            // LLFI-style injection: corrupt the destination of the
            // Nth dynamic value-producing instruction (plus any later
            // events of a multi-event fault — em-burst and friends).
            ++res.valueSteps;
            if (fault) {
                if (res.valueSteps == fault->targetValueStep + 1)
                    v = applySwFlips(*fault, 0, fault->bit, m.xlen, v);
                for (size_t e = 0; e < fault->extra.size(); ++e)
                    if (res.valueSteps ==
                        fault->extra[e].targetValueStep + 1)
                        v = applySwFlips(*fault, e + 1,
                                         fault->extra[e].bit, m.xlen, v);
            }
            fr.vregs[inst.dst] = v & mask;
        };
        auto sv = [&](uint64_t v) -> int64_t {
            return m.xlen == 64 ? static_cast<int64_t>(v)
                                : static_cast<int64_t>(
                                      static_cast<int32_t>(v));
        };

        bool advance = true;
        const uint64_t a = inst.hasA ? val(inst.a) : 0;
        const uint64_t b = inst.hasB ? val(inst.b) : 0;

        switch (inst.op) {
          case IrOp::Add: setDst(a + b); break;
          case IrOp::Sub: setDst(a - b); break;
          case IrOp::Mul: setDst(a * b); break;
          case IrOp::UDiv: setDst(b == 0 ? 0 : a / b); break;
          case IrOp::SDiv: {
            int64_t x = sv(a), y = sv(b);
            setDst(y == 0 ? 0
                          : (x == INT64_MIN && y == -1
                                 ? static_cast<uint64_t>(x)
                                 : static_cast<uint64_t>(x / y)));
            break;
          }
          case IrOp::URem: setDst(b == 0 ? a : a % b); break;
          case IrOp::SRem: {
            int64_t x = sv(a), y = sv(b);
            setDst(y == 0 ? static_cast<uint64_t>(x)
                          : (x == INT64_MIN && y == -1
                                 ? 0
                                 : static_cast<uint64_t>(x % y)));
            break;
          }
          case IrOp::And: setDst(a & b); break;
          case IrOp::Or: setDst(a | b); break;
          case IrOp::Xor: setDst(a ^ b); break;
          case IrOp::Shl: setDst(a << (b & (m.xlen - 1))); break;
          case IrOp::LShr: setDst(a >> (b & (m.xlen - 1))); break;
          case IrOp::AShr:
            setDst(static_cast<uint64_t>(sv(a) >> (b & (m.xlen - 1))));
            break;
          case IrOp::CmpEq: setDst(a == b); break;
          case IrOp::CmpNe: setDst(a != b); break;
          case IrOp::CmpSLt: setDst(sv(a) < sv(b)); break;
          case IrOp::CmpSLe: setDst(sv(a) <= sv(b)); break;
          case IrOp::CmpSGt: setDst(sv(a) > sv(b)); break;
          case IrOp::CmpSGe: setDst(sv(a) >= sv(b)); break;
          case IrOp::CmpULt: setDst(a < b); break;
          case IrOp::CmpUGe: setDst(a >= b); break;
          case IrOp::Mov: setDst(a); break;
          case IrOp::Load: {
            const uint64_t addr =
                (a + static_cast<uint64_t>(inst.imm)) & mask;
            if (!memOk(addr, static_cast<unsigned>(inst.size))) {
                fail(strprintf("bad load at 0x%llx",
                               static_cast<unsigned long long>(addr)));
                break;
            }
            uint64_t v = 0;
            std::memcpy(&v, mem.data() + addr,
                        static_cast<size_t>(inst.size));
            setDst(v);
            break;
          }
          case IrOp::Store: {
            const uint64_t addr =
                (a + static_cast<uint64_t>(inst.imm)) & mask;
            if (!memOk(addr, static_cast<unsigned>(inst.size))) {
                fail(strprintf("bad store at 0x%llx",
                               static_cast<unsigned long long>(addr)));
                break;
            }
            uint64_t v = b;
            std::memcpy(mem.data() + addr, &v,
                        static_cast<size_t>(inst.size));
            // memOk guarantees alignment, so the access cannot
            // straddle a page boundary.
            const size_t page = addr >> snap::PAGE_SHIFT;
            digestDirty.mark(page);
            ckptDirty.mark(page);
            restoreDirty.mark(page);
            break;
          }
          case IrOp::AddrGlobal:
            setDst(globalAddr[inst.globalId] +
                   static_cast<uint64_t>(inst.imm));
            break;
          case IrOp::AddrLocal:
            setDst(fr.arrayAddr[inst.localId] +
                   static_cast<uint64_t>(inst.imm));
            break;
          case IrOp::Call: {
            std::vector<uint64_t> args;
            for (const Value &arg : inst.args)
                args.push_back(val(arg));
            // Advance the caller past the call first.
            ++fr.ip;
            if (!pushFrame(inst.callee, inst.dst, args))
                break;
            advance = false;
            break;
          }
          case IrOp::Syscall: {
            const uint64_t s0 = !inst.args.empty() ? val(inst.args[0]) : 0;
            const uint64_t s1 = inst.args.size() > 1 ? val(inst.args[1])
                                                     : 0;
            uint64_t ret = 0;
            switch (static_cast<Syscall>(inst.sysNr)) {
              case Syscall::Write: {
                if (s0 < memmap::USER_BASE ||
                    s0 + s1 > memmap::RAM_SIZE || s1 > 65536) {
                    ret = static_cast<uint64_t>(-1);
                    break;
                }
                res.output.insert(res.output.end(), mem.data() + s0,
                                  mem.data() + s0 + s1);
                ret = s1;
                break;
              }
              case Syscall::Exit:
                res.exitCode = static_cast<uint32_t>(s0);
                res.stop = StopReason::Exited;
                break;
              case Syscall::Detect:
                res.detectCode = static_cast<uint32_t>(s0);
                res.stop = StopReason::DetectHit;
                break;
              default:
                ret = static_cast<uint64_t>(-38);
                break;
            }
            if (inst.dst >= 0)
                setDst(ret);
            break;
          }
          case IrOp::CacheClean:
            break; // no cache model at the software layer
          case IrOp::Br:
            fr.block = inst.target0;
            fr.ip = 0;
            advance = false;
            break;
          case IrOp::CondBr:
            fr.block = a != 0 ? inst.target0 : inst.target1;
            fr.ip = 0;
            advance = false;
            break;
          case IrOp::Ret: {
            const uint64_t rv = inst.hasA ? a : 0;
            const int retDst = fr.retDst;
            sp = fr.savedSp;
            stack.pop_back();
            if (stack.empty()) {
                res.exitCode = static_cast<uint32_t>(rv);
                res.stop = StopReason::Exited;
            } else if (retDst >= 0) {
                stack.back().vregs[retDst] = rv & mask;
            }
            advance = false;
            break;
          }
        }

        if (res.stop != StopReason::Running)
            break;
        if (advance)
            ++stack.back().ip;

        if (record && res.steps % interval == 0)
            recordHook();

        if (stopEligible && res.steps % check->interval == 0 &&
            res.valueSteps > fault->lastStep() &&
            digestFails < DIGEST_GIVE_UP) {
            const uint64_t k = res.steps / check->interval - 1;
            if (k < check->digests.size()) {
                if (stateDigest() != check->digests[k]) {
                    ++digestFails;
                } else {
                    // State reconverged with the golden run at the
                    // same step count: splice the golden suffix onto
                    // the emitted output and return the exact result
                    // of the full run without executing the tail.
                    InterpResult r;
                    r.stop = check->final.stop;
                    r.steps = check->final.steps;
                    r.valueSteps = check->final.valueSteps;
                    r.exitCode = check->final.exitCode;
                    r.detectCode = check->final.detectCode;
                    r.output = res.output;
                    r.output.insert(
                        r.output.end(),
                        check->final.output.begin() +
                            static_cast<ptrdiff_t>(check->outLens[k]),
                        check->final.output.end());
                    return r;
                }
            }
        }
    }

    if (record)
        record->final = res;
    return res;
}

/**
 * The threaded-code chunk.  Dispatches over the flat predecoded
 * arrays (swfi/predecode.h): one indexed load per step instead of the
 * func -> block -> inst chain, branch targets as flat indices, and no
 * advance/terminator bookkeeping.  Semantics are replicated from the
 * exec() loop op for op — identical masking, identical error strings,
 * identical dirty-page marking, identical step/valueStep counting —
 * and the lockstep fuzz in test_interp_unit.cc holds the two loops
 * equal on random programs.
 *
 * The chunk never executes an op once res.valueSteps reaches `fence`
 * (the injection target), so a fault can never fire inside it; exec()
 * re-checks the guards and runs the slow loop from the paused
 * position.
 */
void
IrInterp::execFast(uint64_t stopAtSteps, uint64_t fence)
{
    const uint64_t mask = m.xlen == 64 ? ~0ull : 0xffffffffull;
    const IrPredecode &pd = *fastPd;

    Frame *fr = &stack.back();
    const IrFastFunc *fc = &pd.func(fr->funcIdx);
    size_t fi = fc->blockStart[static_cast<size_t>(fr->block)] + fr->ip;

    auto fail = [&](const std::string &msg) {
        res.stop = StopReason::Exception;
        res.error = msg;
    };
    auto sv = [&](uint64_t v) -> int64_t {
        return m.xlen == 64
                   ? static_cast<int64_t>(v)
                   : static_cast<int64_t>(static_cast<int32_t>(v));
    };
    auto memOk = [&](uint64_t addr, unsigned bytes) {
        return addr >= memmap::USER_BASE &&
               addr + bytes <= memmap::RAM_SIZE && addr % bytes == 0;
    };

    while (res.steps < stopAtSteps && res.valueSteps < fence) {
        const IrFastOp &op = fc->code[fi];
        ++res.steps;

        auto val = [&](const Value &v) -> uint64_t {
            return v.isConst ? (static_cast<uint64_t>(v.konst) & mask)
                             : fr->vregs[static_cast<size_t>(v.vreg)];
        };
        auto setDst = [&](uint64_t v) {
            // No fault check: the fence guarantees the injection
            // target is never reached inside a chunk.
            ++res.valueSteps;
            fr->vregs[static_cast<size_t>(op.dst)] = v & mask;
        };

        const uint64_t a = op.hasA ? val(op.a) : 0;
        const uint64_t b = op.hasB ? val(op.b) : 0;

        switch (op.op) {
          case IrOp::Add: setDst(a + b); ++fi; break;
          case IrOp::Sub: setDst(a - b); ++fi; break;
          case IrOp::Mul: setDst(a * b); ++fi; break;
          case IrOp::UDiv: setDst(b == 0 ? 0 : a / b); ++fi; break;
          case IrOp::SDiv: {
            int64_t x = sv(a), y = sv(b);
            setDst(y == 0 ? 0
                          : (x == INT64_MIN && y == -1
                                 ? static_cast<uint64_t>(x)
                                 : static_cast<uint64_t>(x / y)));
            ++fi;
            break;
          }
          case IrOp::URem: setDst(b == 0 ? a : a % b); ++fi; break;
          case IrOp::SRem: {
            int64_t x = sv(a), y = sv(b);
            setDst(y == 0 ? static_cast<uint64_t>(x)
                          : (x == INT64_MIN && y == -1
                                 ? 0
                                 : static_cast<uint64_t>(x % y)));
            ++fi;
            break;
          }
          case IrOp::And: setDst(a & b); ++fi; break;
          case IrOp::Or: setDst(a | b); ++fi; break;
          case IrOp::Xor: setDst(a ^ b); ++fi; break;
          case IrOp::Shl: setDst(a << (b & (m.xlen - 1))); ++fi; break;
          case IrOp::LShr: setDst(a >> (b & (m.xlen - 1))); ++fi; break;
          case IrOp::AShr:
            setDst(static_cast<uint64_t>(sv(a) >> (b & (m.xlen - 1))));
            ++fi;
            break;
          case IrOp::CmpEq: setDst(a == b); ++fi; break;
          case IrOp::CmpNe: setDst(a != b); ++fi; break;
          case IrOp::CmpSLt: setDst(sv(a) < sv(b)); ++fi; break;
          case IrOp::CmpSLe: setDst(sv(a) <= sv(b)); ++fi; break;
          case IrOp::CmpSGt: setDst(sv(a) > sv(b)); ++fi; break;
          case IrOp::CmpSGe: setDst(sv(a) >= sv(b)); ++fi; break;
          case IrOp::CmpULt: setDst(a < b); ++fi; break;
          case IrOp::CmpUGe: setDst(a >= b); ++fi; break;
          case IrOp::Mov: setDst(a); ++fi; break;
          case IrOp::Load: {
            const uint64_t addr =
                (a + static_cast<uint64_t>(op.imm)) & mask;
            if (!memOk(addr, static_cast<unsigned>(op.size))) {
                fail(strprintf("bad load at 0x%llx",
                               static_cast<unsigned long long>(addr)));
                break;
            }
            uint64_t v = 0;
            std::memcpy(&v, mem.data() + addr,
                        static_cast<size_t>(op.size));
            setDst(v);
            ++fi;
            break;
          }
          case IrOp::Store: {
            const uint64_t addr =
                (a + static_cast<uint64_t>(op.imm)) & mask;
            if (!memOk(addr, static_cast<unsigned>(op.size))) {
                fail(strprintf("bad store at 0x%llx",
                               static_cast<unsigned long long>(addr)));
                break;
            }
            uint64_t v = b;
            std::memcpy(mem.data() + addr, &v,
                        static_cast<size_t>(op.size));
            const size_t page = addr >> snap::PAGE_SHIFT;
            digestDirty.mark(page);
            ckptDirty.mark(page);
            restoreDirty.mark(page);
            ++fi;
            break;
          }
          case IrOp::AddrGlobal:
            setDst(globalAddr[static_cast<size_t>(op.globalId)] +
                   static_cast<uint64_t>(op.imm));
            ++fi;
            break;
          case IrOp::AddrLocal:
            setDst(fr->arrayAddr[static_cast<size_t>(op.localId)] +
                   static_cast<uint64_t>(op.imm));
            ++fi;
            break;
          case IrOp::Call: {
            std::vector<uint64_t> args;
            for (const Value &arg : op.src->args)
                args.push_back(val(arg));
            // Suspend the caller past the call (what ++fr.ip does in
            // the slow loop) before the stack may reallocate.
            fr->block = op.block;
            fr->ip = op.ip + 1;
            if (!pushFrame(op.callee, op.dst, args))
                break;
            fr = &stack.back();
            fc = &pd.func(fr->funcIdx);
            fi = 0; // entry block 0, ip 0
            break;
          }
          case IrOp::Syscall: {
            const uint64_t s0 =
                !op.src->args.empty() ? val(op.src->args[0]) : 0;
            const uint64_t s1 =
                op.src->args.size() > 1 ? val(op.src->args[1]) : 0;
            uint64_t ret = 0;
            switch (static_cast<Syscall>(op.sysNr)) {
              case Syscall::Write: {
                if (s0 < memmap::USER_BASE ||
                    s0 + s1 > memmap::RAM_SIZE || s1 > 65536) {
                    ret = static_cast<uint64_t>(-1);
                    break;
                }
                res.output.insert(res.output.end(), mem.data() + s0,
                                  mem.data() + s0 + s1);
                ret = s1;
                break;
              }
              case Syscall::Exit:
                res.exitCode = static_cast<uint32_t>(s0);
                res.stop = StopReason::Exited;
                break;
              case Syscall::Detect:
                res.detectCode = static_cast<uint32_t>(s0);
                res.stop = StopReason::DetectHit;
                break;
              default:
                ret = static_cast<uint64_t>(-38);
                break;
            }
            if (op.dst >= 0)
                setDst(ret);
            if (res.stop == StopReason::Running)
                ++fi;
            break;
          }
          case IrOp::CacheClean:
            ++fi;
            break;
          case IrOp::Br:
            fi = op.target0;
            break;
          case IrOp::CondBr:
            fi = a != 0 ? op.target0 : op.target1;
            break;
          case IrOp::Ret: {
            const uint64_t rv = op.hasA ? a : 0;
            const int retDst = fr->retDst;
            sp = fr->savedSp;
            stack.pop_back();
            if (stack.empty()) {
                res.exitCode = static_cast<uint32_t>(rv);
                res.stop = StopReason::Exited;
                break;
            }
            if (retDst >= 0)
                stack.back().vregs[static_cast<size_t>(retDst)] =
                    rv & mask;
            fr = &stack.back();
            fc = &pd.func(fr->funcIdx);
            fi = fc->blockStart[static_cast<size_t>(fr->block)] + fr->ip;
            break;
          }
        }

        if (res.stop != StopReason::Running)
            return; // stopped mid-chunk; frame positions unobservable
    }

    // Paused (grid boundary / fence) while still running: make the
    // live frame's resume position visible to the slow loop and the
    // state serializers.
    const IrFastOp &cur = fc->code[fi];
    fr->block = cur.block;
    fr->ip = cur.ip;
}

} // namespace vstack
