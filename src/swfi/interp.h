/**
 * @file
 * IR interpreter: the execution engine for software-level (SVF)
 * fault injection.
 *
 * Runs MCL IR directly — the analog of LLFI executing instrumented
 * LLVM IR natively.  Critically, and by design, it models none of the
 * lower layers: no kernel activity, no devices, no microarchitecture.
 * This is exactly the abstraction SVF-based studies operate at, and
 * whose blind spots the paper quantifies.
 *
 * Like the other two injection vehicles, the interpreter supports
 * checkpoint/restore fast-forward and golden-trace early termination
 * (see DESIGN.md §8): a recording run captures full-state snapshots
 * plus periodic state digests, and each injection restores the latest
 * checkpoint not past its fault point, then stops as soon as its state
 * provably reconverges with the golden trajectory.
 */
#ifndef VSTACK_SWFI_INTERP_H
#define VSTACK_SWFI_INTERP_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compiler/ir.h"
#include "machine/memmap.h"
#include "machine/outcome.h"
#include "support/snapshot.h"
#include "swfi/predecode.h"

namespace vstack
{

/** Result of one interpreted execution. */
struct InterpResult
{
    StopReason stop = StopReason::Running;
    std::string error;
    uint64_t steps = 0;       ///< executed IR instructions
    uint64_t valueSteps = 0;  ///< executed value-producing instructions
    std::vector<uint8_t> output;
    uint32_t exitCode = 0;
    uint32_t detectCode = 0;
};

/** A later flip event of a multi-event software-level fault. */
struct SwFaultEvent
{
    uint64_t targetValueStep = 0;
    int bit = 0;
};

/** A software-level fault: flip `bit` of the destination value of the
 *  Nth dynamic value-producing IR instruction (LLFI's default model).
 *  Fault models widen the default single-bit shape along three axes:
 *  a spatial burst (`burst` flips `stride` bits apart, wrapping at the
 *  value width), value-conditioned flips (fault::flipSelected over
 *  (condSalt, flip index, stored bit)), and extra temporally
 *  clustered events (`extra`, ascending by step).  The defaults are
 *  byte-identical to the legacy single-bit behaviour. */
struct SwFault
{
    uint64_t targetValueStep = 0;
    int bit = 0;
    uint32_t burst = 1;  ///< bits flipped per event
    uint32_t stride = 1; ///< bit distance between burst flips
    bool conditioned = false;
    uint64_t condSalt = 0;
    uint32_t pFlip1 = 0; ///< flip probability, stored bit = 1 (fixed pt)
    uint32_t pFlip0 = 0; ///< flip probability, stored bit = 0
    std::vector<SwFaultEvent> extra; ///< later events, ascending

    /** Target step of the last event (early-stop ceiling). */
    uint64_t lastStep() const
    {
        return extra.empty() ? targetValueStep
                             : extra.back().targetValueStep;
    }
};

/** Opaque full-state snapshot of an IrInterp (defined in interp.cc). */
struct InterpSnapshot;

/**
 * Golden-run trace of the interpreter on an IR-step grid: evenly
 * spaced checkpoints for fast-forward plus denser state digests and
 * output-length marks for early termination.
 */
struct SwfiTrace
{
    struct Checkpoint
    {
        uint64_t steps = 0;
        uint64_t valueSteps = 0;
        std::shared_ptr<const InterpSnapshot> state;
    };

    /** Digest cadence in IR steps (0 = not recorded). */
    uint64_t interval = 0;
    /** Result of the recording run (used to synthesize early-stop
     *  results exactly). */
    InterpResult final;

    /** Grid entry k describes the state after step (k+1)*interval. */
    std::vector<uint32_t> digests;
    std::vector<uint64_t> outLens;

    /** Ascending; [0] is always step 0. */
    std::vector<Checkpoint> checkpoints;

    bool recorded() const { return interval != 0; }

    /** Latest checkpoint whose valueSteps does not exceed the fault's
     *  target: the fault fires at valueSteps == target+1, so any state
     *  at or before the target is an exact prefix. */
    const Checkpoint &bestFor(uint64_t targetValueStep) const;
};

/**
 * The interpreter.  Memory uses the same layout constants as the
 * guest (globals at USER_DATA, stack below USER_STACK_TOP) so pointer
 * arithmetic in workloads behaves identically.
 */
class IrInterp
{
  public:
    explicit IrInterp(const ir::Module &m);
    ~IrInterp();

    /** Fault-free run. */
    InterpResult run(uint64_t maxSteps = 80'000'000);

    /** Run with one injected fault (cold: from the entry point). */
    InterpResult runWithFault(const SwFault &fault, uint64_t maxSteps);

    /**
     * Fault-free run that also records `trace`: a state digest every
     * `interval` steps and a full checkpoint every `ckptEvery`
     * digests (plus one at step 0).
     */
    InterpResult runRecording(uint64_t maxSteps, SwfiTrace &trace,
                              uint64_t interval, unsigned ckptEvery);

    /**
     * Run with one injected fault, fast-forwarded from the best
     * checkpoint of `trace`.  With `earlyStop`, the run terminates as
     * soon as a post-injection state digest matches the golden digest
     * at the same step count, returning a result bit-identical to the
     * full run's.
     */
    InterpResult runWithTrace(const SwFault &fault, uint64_t maxSteps,
                              const SwfiTrace &trace, bool earlyStop);

    /** @name Predecoded fast path @{ */
    /**
     * Attach a predecode of this interpreter's module (shared,
     * immutable; nullptr detaches).  Purely a speed hint: execution is
     * bit-identical with or without it.  The fault-free window of
     * every run — all of run()/runRecording(), and the pre-fault
     * prefix of runWithFault()/runWithTrace() — then executes in
     * flat threaded-code chunks (execFast); everything at or past the
     * injection point stays on the exact interpreter loop (DESIGN.md
     * §12).  The `fastpath.dispatch` failpoint forces the slow loop
     * for the rest of the current run.
     */
    void setFastPath(std::shared_ptr<const IrPredecode> pd)
    {
        fastPd = std::move(pd);
    }
    const std::shared_ptr<const IrPredecode> &fastPath() const
    {
        return fastPd;
    }
    /** @} */

  private:
    struct Frame
    {
        int funcIdx;
        int block = 0;
        size_t ip = 0;
        int retDst = -1; ///< caller vreg receiving the result
        uint32_t savedSp;
        std::vector<uint64_t> vregs;
        std::vector<uint32_t> arrayAddr;
    };

    void beginRun();
    std::shared_ptr<const InterpSnapshot> snapshot(
        const InterpSnapshot *prev);
    void restore(std::shared_ptr<const InterpSnapshot> snap);
    uint32_t stateDigest();
    void harvestPageCrc();
    void seedPageCrc();
    void serializeState(snap::ByteSink &s, bool digest) const;
    bool pushFrame(int funcIdx, int retDst,
                   const std::vector<uint64_t> &args);
    InterpResult exec(const SwFault *fault, uint64_t maxSteps,
                      SwfiTrace *record, uint64_t interval,
                      unsigned ckptEvery, const SwfiTrace *check,
                      bool earlyStop, bool resume);
    /** Threaded-code chunk: execute until res.steps reaches
     *  stopAtSteps, res.valueSteps reaches fence, or the run stops.
     *  @pre fastPd attached, stack nonempty, res running. */
    void execFast(uint64_t stopAtSteps, uint64_t fence);

    const ir::Module &m;
    std::vector<uint32_t> globalAddr; ///< assigned global addresses
    uint32_t globalsEnd = 0;
    std::vector<uint8_t> mem; ///< reused across runs

    // Run state (hoisted out of the exec loop so it can be
    // checkpointed and restored mid-run).
    uint32_t sp = 0;
    std::vector<Frame> stack;
    InterpResult res;

    // Checkpoint machinery: incremental per-page memory CRCs and the
    // COW dirty maps (see CycleSim for the cycle-level counterpart).
    std::vector<uint32_t> pageCrc;
    bool pageCrcValid = false;
    snap::DirtyMap digestDirty{memmap::RAM_SIZE >> snap::PAGE_SHIFT};
    snap::DirtyMap ckptDirty{memmap::RAM_SIZE >> snap::PAGE_SHIFT};
    snap::DirtyMap restoreDirty{memmap::RAM_SIZE >> snap::PAGE_SHIFT};
    std::shared_ptr<const InterpSnapshot> lastRestored;

    std::shared_ptr<const IrPredecode> fastPd;
    /** Staging buffer reused across stateDigest() calls (fast path). */
    snap::ByteSink digestSink;
};

} // namespace vstack

#endif // VSTACK_SWFI_INTERP_H
