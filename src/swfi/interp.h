/**
 * @file
 * IR interpreter: the execution engine for software-level (SVF)
 * fault injection.
 *
 * Runs MCL IR directly — the analog of LLFI executing instrumented
 * LLVM IR natively.  Critically, and by design, it models none of the
 * lower layers: no kernel activity, no devices, no microarchitecture.
 * This is exactly the abstraction SVF-based studies operate at, and
 * whose blind spots the paper quantifies.
 */
#ifndef VSTACK_SWFI_INTERP_H
#define VSTACK_SWFI_INTERP_H

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/ir.h"
#include "machine/outcome.h"

namespace vstack
{

/** Result of one interpreted execution. */
struct InterpResult
{
    StopReason stop = StopReason::Running;
    std::string error;
    uint64_t steps = 0;       ///< executed IR instructions
    uint64_t valueSteps = 0;  ///< executed value-producing instructions
    std::vector<uint8_t> output;
    uint32_t exitCode = 0;
    uint32_t detectCode = 0;
};

/** A software-level fault: flip `bit` of the destination value of the
 *  Nth dynamic value-producing IR instruction (LLFI's default model). */
struct SwFault
{
    uint64_t targetValueStep = 0;
    int bit = 0;
};

/**
 * The interpreter.  Memory uses the same layout constants as the
 * guest (globals at USER_DATA, stack below USER_STACK_TOP) so pointer
 * arithmetic in workloads behaves identically.
 */
class IrInterp
{
  public:
    explicit IrInterp(const ir::Module &m);

    /** Fault-free run. */
    InterpResult run(uint64_t maxSteps = 80'000'000);

    /** Run with one injected fault. */
    InterpResult runWithFault(const SwFault &fault, uint64_t maxSteps);

  private:
    InterpResult exec(const SwFault *fault, uint64_t maxSteps);

    const ir::Module &m;
    std::vector<uint32_t> globalAddr; ///< assigned global addresses
    uint32_t globalsEnd = 0;
    std::vector<uint8_t> mem; ///< reused across runs
};

} // namespace vstack

#endif // VSTACK_SWFI_INTERP_H
