#include "predecode.h"

namespace vstack
{

IrPredecode::IrPredecode(const ir::Module &m)
{
    funcs_.resize(m.funcs.size());
    for (size_t fn = 0; fn < m.funcs.size(); ++fn) {
        const ir::Func &f = m.funcs[fn];
        IrFastFunc &out = funcs_[fn];
        out.blockStart.resize(f.blocks.size());
        uint32_t at = 0;
        for (size_t b = 0; b < f.blocks.size(); ++b) {
            out.blockStart[b] = at;
            at += static_cast<uint32_t>(f.blocks[b].insts.size());
        }
        out.code.reserve(at);
        for (size_t b = 0; b < f.blocks.size(); ++b) {
            const auto &insts = f.blocks[b].insts;
            for (size_t i = 0; i < insts.size(); ++i) {
                const ir::Inst &inst = insts[i];
                IrFastOp op;
                op.op = inst.op;
                op.dst = inst.dst;
                op.hasA = inst.hasA;
                op.hasB = inst.hasB;
                op.a = inst.a;
                op.b = inst.b;
                op.imm = inst.imm;
                op.size = inst.size;
                if (inst.op == ir::IrOp::Br ||
                    inst.op == ir::IrOp::CondBr) {
                    op.target0 = out.blockStart[static_cast<size_t>(
                        inst.target0)];
                    if (inst.op == ir::IrOp::CondBr)
                        op.target1 = out.blockStart[static_cast<size_t>(
                            inst.target1)];
                }
                op.callee = inst.callee;
                op.sysNr = inst.sysNr;
                op.globalId = inst.globalId;
                op.localId = inst.localId;
                op.src = &inst;
                op.block = static_cast<int>(b);
                op.ip = static_cast<uint32_t>(i);
                out.code.push_back(op);
            }
        }
    }
}

size_t
IrPredecode::totalOps() const
{
    size_t n = 0;
    for (const IrFastFunc &f : funcs_)
        n += f.code.size();
    return n;
}

size_t
IrPredecode::retainedBytes() const
{
    size_t n = sizeof(*this);
    for (const IrFastFunc &f : funcs_)
        n += f.code.size() * sizeof(IrFastOp) +
             f.blockStart.size() * sizeof(uint32_t);
    return n;
}

std::shared_ptr<const IrPredecode>
predecodeIr(const ir::Module &m)
{
    return std::make_shared<const IrPredecode>(m);
}

} // namespace vstack
