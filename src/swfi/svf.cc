#include "svf.h"

#include <algorithm>
#include <memory>

#include "support/fastpath.h"
#include "support/logging.h"
#include "support/rng.h"

namespace vstack
{

SvfCampaign::SvfCampaign(const ir::Module &mod,
                         std::shared_ptr<const IrPredecode> fast)
    : m(mod), fastPd_(std::move(fast)), interp(mod)
{
    if (!fastPd_ && fastPathEnabled())
        fastPd_ = predecodeIr(m);
    interp.setFastPath(fastPd_);
    golden_ = interp.run();
    if (golden_.stop != StopReason::Exited)
        throw GoldenRunError(
            strprintf("SVF golden run failed: %s", golden_.error.c_str()));
}

void
SvfCampaign::ensureTrace()
{
    // Double-checked under the lock: suite prepare tasks may race a
    // serial runOne(), and the recording pass mutates the campaign's
    // own interpreter.
    std::lock_guard<std::mutex> lock(traceMu);
    if (!policy_.enabled || trace_.recorded())
        return;
    // The recording budget must cover the known golden length even if
    // the per-injection watchdog is tight.
    InterpResult r = interp.runRecording(
        std::max<uint64_t>(80'000'000, golden_.steps + 1), trace_,
        policy_.digestInterval(golden_.steps),
        std::max(1u, policy_.digestsPerCheckpoint));
    // The recording pass must retrace the construction-time golden run
    // exactly — anything else means the interpreter is
    // nondeterministic and no checkpoint can be trusted.
    if (r.stop != StopReason::Exited || r.steps != golden_.steps ||
        r.output != golden_.output || r.exitCode != golden_.exitCode) {
        throw GoldenRunError(
            "SVF golden recording pass diverged from the golden run");
    }
}

Outcome
SvfCampaign::classify(const InterpResult &r) const
{
    return classifyRun(r.stop, r.output == golden_.output &&
                                   r.exitCode == golden_.exitCode);
}

Outcome
SvfCampaign::runOne(uint64_t targetValueStep, int bit)
{
    ensureTrace();
    return runOneOn(interp, targetValueStep, bit);
}

Outcome
SvfCampaign::runOneOn(IrInterp &worker, uint64_t targetValueStep,
                      int bit) const
{
    SwFault fault;
    fault.targetValueStep = targetValueStep;
    fault.bit = bit;
    return runOneOn(worker, fault);
}

Outcome
SvfCampaign::runOneOn(IrInterp &worker, const SwFault &fault) const
{
    if (!policy_.enabled || !trace_.recorded())
        return runOneColdOn(worker, fault);

    InterpResult r = worker.runWithTrace(
        fault, watchdog.limitFor(golden_.steps), trace_,
        policy_.earlyStop);
    return classify(r);
}

Outcome
SvfCampaign::runOneColdOn(IrInterp &worker, uint64_t targetValueStep,
                          int bit) const
{
    SwFault fault;
    fault.targetValueStep = targetValueStep;
    fault.bit = bit;
    return runOneColdOn(worker, fault);
}

Outcome
SvfCampaign::runOneColdOn(IrInterp &worker, const SwFault &fault) const
{
    InterpResult r =
        worker.runWithFault(fault, watchdog.limitFor(golden_.steps));
    return classify(r);
}

namespace
{

/** A worker's private IR interpreter. */
struct SvfCtx final : exec::LayerDriver::Ctx
{
    explicit SvfCtx(const ir::Module &m) : interp(m) {}
    IrInterp interp;
};

} // namespace

SvfDriver::SvfDriver(SvfCampaign &campaign, size_t n, uint64_t seed,
                     std::shared_ptr<const fault::FaultModel> model)
    : campaign(campaign), n(n)
{
    // Pre-sample every fault from the i-th fork of the master stream
    // (a pure function of (seed, i)) — see src/exec/executor.h.  The
    // golden reference is immutable after campaign construction, so
    // the fault list lives in the constructor.  The master keeps the
    // legacy seeding; the single-bit default reproduces the
    // historical draw sequence bit for bit.
    Rng master(seed ^ 0x5f0d1e2c3b4a5968ull);
    fault::SvfSpace space;
    space.valueSteps = campaign.golden().valueSteps;
    space.xlen = campaign.m.xlen;
    faults = (model ? model.get() : fault::singleBitModel().get())
                 ->sampleSvf(master, space, n);
}

void
SvfDriver::prepare()
{
    campaign.ensureTrace();
}

std::unique_ptr<exec::LayerDriver::Ctx>
SvfDriver::makeCtx() const
{
    auto ctx = std::make_unique<SvfCtx>(campaign.m);
    ctx->interp.setFastPath(campaign.fastPath());
    return ctx;
}

Json
SvfDriver::runSample(Ctx &ctx, size_t i) const
{
    return Json(static_cast<int>(campaign.runOneOn(
        static_cast<SvfCtx &>(ctx).interp, faults[i])));
}

Json
SvfDriver::runSampleCold(Ctx &ctx, size_t i) const
{
    return Json(static_cast<int>(campaign.runOneColdOn(
        static_cast<SvfCtx &>(ctx).interp, faults[i])));
}

bool
SvfDriver::scheduled() const
{
    return campaign.checkpointPolicy().enabled &&
           campaign.trace().recorded();
}

uint64_t
SvfDriver::scheduleKey(size_t i) const
{
    return faults[i].targetValueStep;
}

double
SvfDriver::verifyPercent() const
{
    return scheduled() ? campaign.checkpointPolicy().verifyPercent : 0.0;
}

std::string
SvfDriver::describeSample(size_t i) const
{
    return strprintf(
        "SVF sample %zu (value step %llu, bit %d)", i,
        static_cast<unsigned long long>(faults[i].targetValueStep),
        faults[i].bit);
}

std::string
SvfDriver::payloadName(const Json &payload) const
{
    return outcomeName(static_cast<Outcome>(payload.asInt()));
}

OutcomeCounts
SvfCampaign::run(size_t n, uint64_t seed, const exec::ExecConfig &ec,
                 const fault::FaultModel *model)
{
    // Non-owning alias: the caller's model outlives this synchronous
    // run.
    SvfDriver driver(*this, n, seed,
                     std::shared_ptr<const fault::FaultModel>(
                         std::shared_ptr<const void>(), model));
    return foldOutcomeSamples(exec::runDriver(driver, ec));
}

} // namespace vstack
