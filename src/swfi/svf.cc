#include "svf.h"

#include "support/logging.h"
#include "support/rng.h"

namespace vstack
{

SvfCampaign::SvfCampaign(const ir::Module &mod) : m(mod), interp(mod)
{
    golden_ = interp.run();
    if (golden_.stop != StopReason::Exited)
        fatal("SVF golden run failed: %s", golden_.error.c_str());
}

Outcome
SvfCampaign::runOne(uint64_t targetValueStep, int bit)
{
    SwFault fault{targetValueStep, bit};
    InterpResult r =
        interp.runWithFault(fault, golden_.steps * 4 + 100'000);

    switch (r.stop) {
      case StopReason::DetectHit:
        return Outcome::Detected;
      case StopReason::Exception:
      case StopReason::Watchdog:
      case StopReason::Running:
        return Outcome::Crash;
      case StopReason::Exited:
        break;
    }
    if (r.output != golden_.output || r.exitCode != golden_.exitCode)
        return Outcome::Sdc;
    return Outcome::Masked;
}

OutcomeCounts
SvfCampaign::run(size_t n, uint64_t seed)
{
    Rng master(seed ^ 0x5f0d1e2c3b4a5968ull);
    OutcomeCounts counts;
    for (size_t i = 0; i < n; ++i) {
        Rng rng = master.fork();
        const uint64_t step = rng.uniform(golden_.valueSteps);
        const int bit = static_cast<int>(rng.uniform(m.xlen));
        counts.add(runOne(step, bit));
    }
    return counts;
}

} // namespace vstack
