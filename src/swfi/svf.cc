#include "svf.h"

#include <algorithm>
#include <memory>

#include "support/logging.h"
#include "support/rng.h"

namespace vstack
{

SvfCampaign::SvfCampaign(const ir::Module &mod) : m(mod), interp(mod)
{
    golden_ = interp.run();
    if (golden_.stop != StopReason::Exited)
        throw GoldenRunError(
            strprintf("SVF golden run failed: %s", golden_.error.c_str()));
}

void
SvfCampaign::ensureTrace()
{
    if (!policy_.enabled || trace_.recorded())
        return;
    // The recording budget must cover the known golden length even if
    // the per-injection watchdog is tight.
    InterpResult r = interp.runRecording(
        std::max<uint64_t>(80'000'000, golden_.steps + 1), trace_,
        policy_.digestInterval(golden_.steps),
        std::max(1u, policy_.digestsPerCheckpoint));
    // The recording pass must retrace the construction-time golden run
    // exactly — anything else means the interpreter is
    // nondeterministic and no checkpoint can be trusted.
    if (r.stop != StopReason::Exited || r.steps != golden_.steps ||
        r.output != golden_.output || r.exitCode != golden_.exitCode) {
        throw GoldenRunError(
            "SVF golden recording pass diverged from the golden run");
    }
}

Outcome
SvfCampaign::classify(const InterpResult &r) const
{
    switch (r.stop) {
      case StopReason::DetectHit:
        return Outcome::Detected;
      case StopReason::Exception:
      case StopReason::Watchdog:
      case StopReason::Running:
        return Outcome::Crash;
      case StopReason::Exited:
        break;
    }
    if (r.output != golden_.output || r.exitCode != golden_.exitCode)
        return Outcome::Sdc;
    return Outcome::Masked;
}

Outcome
SvfCampaign::runOne(uint64_t targetValueStep, int bit)
{
    ensureTrace();
    return runOneOn(interp, targetValueStep, bit);
}

Outcome
SvfCampaign::runOneOn(IrInterp &worker, uint64_t targetValueStep,
                      int bit) const
{
    if (!policy_.enabled || !trace_.recorded())
        return runOneColdOn(worker, targetValueStep, bit);

    SwFault fault{targetValueStep, bit};
    InterpResult r = worker.runWithTrace(
        fault, watchdog.limitFor(golden_.steps), trace_,
        policy_.earlyStop);
    return classify(r);
}

Outcome
SvfCampaign::runOneColdOn(IrInterp &worker, uint64_t targetValueStep,
                          int bit) const
{
    SwFault fault{targetValueStep, bit};
    InterpResult r =
        worker.runWithFault(fault, watchdog.limitFor(golden_.steps));
    return classify(r);
}

OutcomeCounts
SvfCampaign::run(size_t n, uint64_t seed, const exec::ExecConfig &ec)
{
    Rng master(seed ^ 0x5f0d1e2c3b4a5968ull);

    // Pre-sample every fault from the i-th fork of the master stream
    // (a pure function of (seed, i)) — see src/exec/executor.h.
    struct SvfFault
    {
        uint64_t step;
        int bit;
    };
    std::vector<SvfFault> faults(n);
    for (SvfFault &f : faults) {
        Rng rng = master.fork();
        f.step = rng.uniform(golden_.valueSteps);
        f.bit = static_cast<int>(rng.uniform(m.xlen));
    }

    ensureTrace();

    exec::ExecConfig cfg = ec;
    if (policy_.enabled && trace_.recorded() && !cfg.scheduleKey) {
        // Dispatch in fault-step order so consecutive samples on a
        // worker restore the same checkpoint (results still fold in
        // index order — see ExecConfig::scheduleKey).
        cfg.scheduleKey = [&faults](size_t i) { return faults[i].step; };
    }

    auto samples = exec::runSamples<Outcome>(
        n, cfg,
        [this] { return std::make_unique<IrInterp>(m); },
        [this, &faults](IrInterp &worker, size_t i) {
            return runOneOn(worker, faults[i].step, faults[i].bit);
        },
        [](Outcome o) { return Json(static_cast<int>(o)); },
        [](const Json &j) { return static_cast<Outcome>(j.asInt()); });

    // VSTACK_VERIFY_CHECKPOINT audit: re-run a deterministic subset
    // cold and require identical outcomes (see UarchCampaign::run).
    if (policy_.enabled && trace_.recorded() &&
        policy_.verifyPercent > 0.0 && !exec::shutdownRequested()) {
        std::unique_ptr<IrInterp> cold;
        for (size_t i = 0; i < n; ++i) {
            if (!samples[i] ||
                !exec::verifyReplaySelected(i, policy_.verifyPercent))
                continue;
            if (!cold)
                cold = std::make_unique<IrInterp>(m);
            const Outcome ref =
                runOneColdOn(*cold, faults[i].step, faults[i].bit);
            if (ref != *samples[i]) {
                throw CheckpointDivergence(strprintf(
                    "verify-checkpoint: SVF sample %zu (value step "
                    "%llu, bit %d) diverged from its cold re-run "
                    "(cold %s, accelerated %s); the checkpoint path "
                    "is unsound",
                    i, static_cast<unsigned long long>(faults[i].step),
                    faults[i].bit, outcomeName(ref),
                    outcomeName(*samples[i])));
            }
        }
    }

    OutcomeCounts counts;
    for (const auto &s : samples) {
        if (s)
            counts.add(*s);
        else
            ++counts.injectorErrors;
    }
    return counts;
}

} // namespace vstack
