#include "svf.h"

#include <memory>

#include "support/logging.h"
#include "support/rng.h"

namespace vstack
{

SvfCampaign::SvfCampaign(const ir::Module &mod) : m(mod), interp(mod)
{
    golden_ = interp.run();
    if (golden_.stop != StopReason::Exited)
        throw GoldenRunError(
            strprintf("SVF golden run failed: %s", golden_.error.c_str()));
}

Outcome
SvfCampaign::runOne(uint64_t targetValueStep, int bit)
{
    return runOneOn(interp, targetValueStep, bit);
}

Outcome
SvfCampaign::runOneOn(IrInterp &worker, uint64_t targetValueStep,
                      int bit) const
{
    SwFault fault{targetValueStep, bit};
    InterpResult r =
        worker.runWithFault(fault, watchdog.limitFor(golden_.steps));

    switch (r.stop) {
      case StopReason::DetectHit:
        return Outcome::Detected;
      case StopReason::Exception:
      case StopReason::Watchdog:
      case StopReason::Running:
        return Outcome::Crash;
      case StopReason::Exited:
        break;
    }
    if (r.output != golden_.output || r.exitCode != golden_.exitCode)
        return Outcome::Sdc;
    return Outcome::Masked;
}

OutcomeCounts
SvfCampaign::run(size_t n, uint64_t seed, const exec::ExecConfig &ec)
{
    Rng master(seed ^ 0x5f0d1e2c3b4a5968ull);

    // Pre-sample every fault from the i-th fork of the master stream
    // (a pure function of (seed, i)) — see src/exec/executor.h.
    struct SvfFault
    {
        uint64_t step;
        int bit;
    };
    std::vector<SvfFault> faults(n);
    for (SvfFault &f : faults) {
        Rng rng = master.fork();
        f.step = rng.uniform(golden_.valueSteps);
        f.bit = static_cast<int>(rng.uniform(m.xlen));
    }

    auto samples = exec::runSamples<Outcome>(
        n, ec,
        [this] { return std::make_unique<IrInterp>(m); },
        [this, &faults](IrInterp &worker, size_t i) {
            return runOneOn(worker, faults[i].step, faults[i].bit);
        },
        [](Outcome o) { return Json(static_cast<int>(o)); },
        [](const Json &j) { return static_cast<Outcome>(j.asInt()); });

    OutcomeCounts counts;
    for (const auto &s : samples) {
        if (s)
            counts.add(*s);
        else
            ++counts.injectorErrors;
    }
    return counts;
}

} // namespace vstack
