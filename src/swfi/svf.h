/**
 * @file
 * Software-level (SVF) fault-injection campaigns — the LLFI analog.
 *
 * Faults are instantaneous single-bit flips in the destination value
 * of a uniformly sampled dynamic IR instruction, in user code only.
 * Per the paper's Section II.B this is a strict subset of the PVF
 * model: no kernel activity, no WI/WOI manifestations, no ESC class,
 * and no microarchitecture.  Like LLFI, it only supports the 64-bit
 * ISA's IR (the paper ran LLFI natively on a 64-bit Arm host).
 *
 * Campaigns execute through the shared engine in src/exec (parallel
 * workers, per-sample fault containment, journaling).
 */
#ifndef VSTACK_SWFI_SVF_H
#define VSTACK_SWFI_SVF_H

#include "compiler/ir.h"
#include "exec/executor.h"
#include "machine/outcome.h"
#include "swfi/interp.h"

namespace vstack
{

/** One SVF campaign over a fixed IR module. */
class SvfCampaign
{
  public:
    /** Runs the golden execution on construction.
     *  @throws GoldenRunError if it does not exit cleanly */
    explicit SvfCampaign(const ir::Module &m);

    const InterpResult &golden() const { return golden_; }

    /** Per-injection watchdog budget, in IR steps relative to the
     *  golden run (default: 4x golden + 100k). */
    void setWatchdog(const exec::WatchdogBudget &wd) { watchdog = wd; }

    /** Run one injection on the campaign's own interpreter. */
    Outcome runOne(uint64_t targetValueStep, int bit);

    /** Run one injection on a caller-provided interpreter (workers). */
    Outcome runOneOn(IrInterp &worker, uint64_t targetValueStep,
                     int bit) const;

    /** Run a campaign of n injections with uniform sampling.
     *  Deterministic for a given seed at any job count. */
    OutcomeCounts run(size_t n, uint64_t seed,
                      const exec::ExecConfig &ec = {});

  private:
    const ir::Module &m;
    IrInterp interp; ///< reused across serial injections
    InterpResult golden_;
    exec::WatchdogBudget watchdog{4.0, 100'000};
};

} // namespace vstack

#endif // VSTACK_SWFI_SVF_H
