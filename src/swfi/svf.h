/**
 * @file
 * Software-level (SVF) fault-injection campaigns — the LLFI analog.
 *
 * Faults are instantaneous single-bit flips in the destination value
 * of a uniformly sampled dynamic IR instruction, in user code only.
 * Per the paper's Section II.B this is a strict subset of the PVF
 * model: no kernel activity, no WI/WOI manifestations, no ESC class,
 * and no microarchitecture.  Like LLFI, it only supports the 64-bit
 * ISA's IR (the paper ran LLFI natively on a 64-bit Arm host).
 */
#ifndef VSTACK_SWFI_SVF_H
#define VSTACK_SWFI_SVF_H

#include "compiler/ir.h"
#include "machine/outcome.h"
#include "swfi/interp.h"

namespace vstack
{

/** One SVF campaign over a fixed IR module. */
class SvfCampaign
{
  public:
    /** Runs the golden execution on construction (fatal on failure). */
    explicit SvfCampaign(const ir::Module &m);

    const InterpResult &golden() const { return golden_; }

    /** Run one injection. */
    Outcome runOne(uint64_t targetValueStep, int bit);

    /** Run a campaign of n injections with uniform sampling. */
    OutcomeCounts run(size_t n, uint64_t seed);

  private:
    const ir::Module &m;
    IrInterp interp; ///< reused across injections
    InterpResult golden_;
};

} // namespace vstack

#endif // VSTACK_SWFI_SVF_H
