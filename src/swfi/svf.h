/**
 * @file
 * Software-level (SVF) fault-injection campaigns — the LLFI analog.
 *
 * Faults are instantaneous single-bit flips in the destination value
 * of a uniformly sampled dynamic IR instruction, in user code only.
 * Per the paper's Section II.B this is a strict subset of the PVF
 * model: no kernel activity, no WI/WOI manifestations, no ESC class,
 * and no microarchitecture.  Like LLFI, it only supports the 64-bit
 * ISA's IR (the paper ran LLFI natively on a 64-bit Arm host).
 *
 * Campaigns execute through the shared engine in src/exec (parallel
 * workers, per-sample fault containment, journaling), and by default
 * through the checkpoint accelerator (fast-forward restore plus
 * golden-trace early termination — see DESIGN.md §8).
 */
#ifndef VSTACK_SWFI_SVF_H
#define VSTACK_SWFI_SVF_H

#include <mutex>

#include "compiler/ir.h"
#include "exec/driver.h"
#include "exec/executor.h"
#include "fault/model.h"
#include "machine/outcome.h"
#include "swfi/interp.h"

namespace vstack
{

/** One SVF campaign over a fixed IR module. */
class SvfCampaign
{
  public:
    /**
     * Runs the golden execution on construction — on the predecoded
     * fast path when enabled (results are bit-identical either way).
     * @param fast  shared predecode of `m` (the golden cache hands
     *              this in so repeat campaigns predecode once); when
     *              null and the fast path is enabled, the campaign
     *              builds its own
     * @throws GoldenRunError if it does not exit cleanly
     */
    explicit SvfCampaign(const ir::Module &m,
                         std::shared_ptr<const IrPredecode> fast = nullptr);

    /** The predecode every interpreter of this campaign dispatches
     *  through (null when the fast path is disabled). */
    const std::shared_ptr<const IrPredecode> &fastPath() const
    {
        return fastPd_;
    }

    const InterpResult &golden() const { return golden_; }

    /** Per-injection watchdog budget, in IR steps relative to the
     *  golden run (default: 4x golden + 100k). */
    void setWatchdog(const exec::WatchdogBudget &wd) { watchdog = wd; }

    /** Checkpoint accelerator policy (enabled by default). */
    void setCheckpointPolicy(const exec::CheckpointPolicy &p)
    {
        policy_ = p;
    }
    const exec::CheckpointPolicy &checkpointPolicy() const
    {
        return policy_;
    }

    /** Record the golden trace if the policy wants one and it is not
     *  recorded yet.  Campaigns call this lazily; tests may call it
     *  eagerly. */
    void ensureTrace();
    const SwfiTrace &trace() const { return trace_; }

    /** Run one injection on the campaign's own interpreter. */
    Outcome runOne(uint64_t targetValueStep, int bit);

    /** Run one injection on a caller-provided interpreter (workers),
     *  checkpoint-accelerated when a trace is recorded. */
    Outcome runOneOn(IrInterp &worker, uint64_t targetValueStep,
                     int bit) const;

    /** Same, for a fully described (possibly multi-event) fault. */
    Outcome runOneOn(IrInterp &worker, const SwFault &fault) const;

    /** Run one injection cold (from the entry point, no early
     *  termination) — the reference path for checkpoint audits. */
    Outcome runOneColdOn(IrInterp &worker, uint64_t targetValueStep,
                         int bit) const;

    /** Cold counterpart of the SwFault overload. */
    Outcome runOneColdOn(IrInterp &worker, const SwFault &fault) const;

    /** Run a campaign of n injections sampled by `model` (null = the
     *  uniform single-bit default).  Deterministic for a given seed
     *  at any job count, with or without the accelerator. */
    OutcomeCounts run(size_t n, uint64_t seed,
                      const exec::ExecConfig &ec = {},
                      const fault::FaultModel *model = nullptr);

  private:
    friend class SvfDriver;

    Outcome classify(const InterpResult &r) const;

    const ir::Module &m;
    std::shared_ptr<const IrPredecode> fastPd_;
    IrInterp interp; ///< reused across serial injections
    InterpResult golden_;
    exec::WatchdogBudget watchdog{4.0, 100'000};
    exec::CheckpointPolicy policy_;
    SwfiTrace trace_;
    std::mutex traceMu; ///< serializes the recording pass
};

/**
 * LayerDriver adapter: one (sample count, seed) SVF campaign.  The
 * journal payload is the bare Outcome integer the layer has always
 * used, so journals and stores stay byte-compatible.
 */
class SvfDriver final : public exec::LayerDriver
{
  public:
    /** @param model  fault model sampling the list (null = single-bit
     *                default, byte-identical to the legacy driver) */
    SvfDriver(SvfCampaign &campaign, size_t n, uint64_t seed,
              std::shared_ptr<const fault::FaultModel> model = nullptr);

    const char *layerName() const override { return "svf"; }
    size_t samples() const override { return n; }
    void prepare() override;
    std::unique_ptr<Ctx> makeCtx() const override;
    Json runSample(Ctx &ctx, size_t i) const override;
    Json runSampleCold(Ctx &ctx, size_t i) const override;
    bool scheduled() const override;
    uint64_t scheduleKey(size_t i) const override;
    double verifyPercent() const override;
    std::string describeSample(size_t i) const override;
    std::string payloadName(const Json &payload) const override;

  private:
    SvfCampaign &campaign;
    size_t n;
    std::vector<SwFault> faults; ///< pre-sampled fault list
};

} // namespace vstack

#endif // VSTACK_SWFI_SVF_H
