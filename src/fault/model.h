/**
 * @file
 * Pluggable fault models: the one place that decides *what* a
 * transient fault looks like, for every layer of the stack.
 *
 * The paper's baseline model — one bit, sampled uniformly over
 * (time, bit-space) — used to be welded into each layer's sampling
 * code.  A FaultModel lifts that decision out: the layer drivers hand
 * the model their campaign's sampling space (golden run length plus
 * bit-space geometry) and a master RNG seeded exactly as the legacy
 * code seeded it, and the model returns the pre-sampled fault list.
 * Execution stays in the layers; only sampling and the per-flip
 * conditioning parameters move here.
 *
 * Contract highlights (DESIGN.md §13):
 *  - the `single-bit` model is the default and reproduces the legacy
 *    per-sample RNG draw sequence bit for bit, so its ResultStores,
 *    journals, and caches are byte-identical to pre-plugin builds;
 *  - every sample consumes exactly one fork of the master stream, so
 *    fault lists are pure functions of (seed, sample index) and
 *    campaigns stay deterministic at any --jobs / fleet width;
 *  - tag() is the canonical serialization of the model and its knobs;
 *    it feeds ResultStore keys (suffix `/fm:<tag>`) and journal
 *    headers for every non-default model.  Two specs that parse to
 *    the same knob values share one tag, hence one store entry.
 */
#ifndef VSTACK_FAULT_MODEL_H
#define VSTACK_FAULT_MODEL_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/rng.h"
#include "swfi/interp.h"
#include "uarch/faultsite.h"

namespace vstack::fault
{

/** Sampling space of one microarchitectural structure campaign. */
struct UarchSpace
{
    Structure structure = Structure::RF;
    uint64_t cycles = 0; ///< golden run length (live cycles)
    uint64_t bits = 0;   ///< bit count of the target structure
    /** Bit counts of all five structures, indexed like allStructures
     *  (cross-structure models only; zeros when unknown). */
    std::array<uint64_t, 5> allBits{};
};

/** One sampled microarchitectural fault: one or more sites applied to
 *  the same run.  Sites are ascending by cycle; the checkpoint
 *  restore point is chosen below the first site's cycle. */
struct UarchFault
{
    std::vector<FaultSite> sites;
};

/** Sampling space of one SVF campaign. */
struct SvfSpace
{
    uint64_t valueSteps = 0; ///< golden value-producing IR steps
    int xlen = 64;           ///< destination value width
};

/** Sampling space of one PVF campaign. */
struct PvfSpace
{
    uint64_t insts = 0; ///< golden dynamic instruction count
    int xlen = 64;
};

/**
 * Shape of a PVF injection.  PVF draws its randomness during the run
 * (the fault location depends on the dynamic instruction reached), so
 * the model contributes campaign-constant shape parameters instead of
 * a fault list; the default-constructed shape is the legacy
 * single-bit injection, bit for bit.
 */
struct PvfShape
{
    uint32_t burst = 1;       ///< bits flipped per event
    uint32_t stride = 1;      ///< bit distance between burst flips
    bool conditioned = false; ///< evaluate flipSelected() per flip
    uint32_t pFlip1 = 0;      ///< flip probability, stored bit = 1
    uint32_t pFlip0 = 0;      ///< flip probability, stored bit = 0
    uint32_t events = 1;      ///< temporally clustered flip events
    uint64_t window = 0;      ///< max instruction gap between events

    bool isDefault() const
    {
        return burst == 1 && !conditioned && events <= 1;
    }
};

/** Interface every fault model implements. */
class FaultModel
{
  public:
    virtual ~FaultModel() = default;

    /** Bare model name ("single-bit", "em-burst", ...). */
    virtual const char *name() const = 0;

    /** Canonical serialization: name plus every knob in fixed order.
     *  Feeds ResultStore keys and journal headers. */
    virtual std::string tag() const = 0;

    /** One-line human description for logs and --help. */
    virtual std::string describe() const = 0;

    /** True only for the single-bit default (keys stay untagged). */
    virtual bool isDefault() const { return false; }

    /** Sample n microarchitectural faults.  `master` is seeded by the
     *  caller exactly as the legacy sampler seeded it. */
    virtual std::vector<UarchFault> sampleUarch(Rng &master,
                                                const UarchSpace &space,
                                                size_t n) const = 0;

    /** Sample n software-level faults. */
    virtual std::vector<SwFault> sampleSvf(Rng &master,
                                           const SvfSpace &space,
                                           size_t n) const = 0;

    /** Campaign-constant injection shape for the PVF layer. */
    virtual PvfShape pvfShape(const PvfSpace &space) const = 0;
};

/** The default model (shared singleton, never null). */
std::shared_ptr<const FaultModel> singleBitModel();

/**
 * Parse a model spec — `name` or `name:knob=value,knob=value` — into
 * a model instance.  Unknown names, unknown knobs, malformed or
 * out-of-range values yield null plus a one-line reason in `err`;
 * parsing never exits.  The empty spec is the single-bit default.
 */
std::shared_ptr<const FaultModel> parseFaultModel(const std::string &spec,
                                                  std::string &err);

/** Every parseable model name, for error messages and --help. */
const std::vector<std::string> &faultModelNames();

} // namespace vstack::fault

#endif // VSTACK_FAULT_MODEL_H
