/**
 * @file
 * Per-flip conditioning: the deterministic keep/suppress decision for
 * fault models whose flip probability depends on the stored bit value
 * (e.g. the sram-undervolt model, where a low-margin cell holding a 1
 * is far more likely to flip than one holding a 0).
 *
 * The decision must be evaluable at the injection site — only there is
 * the stored value known — yet reproducible across cold and
 * checkpoint-accelerated runs, at any thread or fleet width.  It is
 * therefore a pure function of a per-sample salt (drawn from the
 * sample's own RNG stream when the fault list is sampled), the flip
 * index within the sample, and the stored bit: no generator state is
 * carried into the simulators.
 *
 * Header-only on purpose: uarch/core.cc, arch/pvf.cc, and
 * swfi/interp.cc all evaluate it inline without linking src/fault.
 */
#ifndef VSTACK_FAULT_CONDITION_H
#define VSTACK_FAULT_CONDITION_H

#include <cstdint>

namespace vstack::fault
{

/** Flip probabilities in 2^32-1 fixed point (UINT32_MAX = certain). */
constexpr uint32_t
probFixed(double p)
{
    return p <= 0.0 ? 0u
           : p >= 1.0
               ? 0xffffffffu
               : static_cast<uint32_t>(p * 4294967295.0);
}

/**
 * Decide whether flip `k` of a conditioned sample happens, given the
 * bit value currently stored at the target cell.  SplitMix64 finalizer
 * over (salt, k): portable, stateless, identical on every host.
 */
inline bool
flipSelected(uint64_t salt, uint64_t k, int storedBit, uint32_t pFlip1,
             uint32_t pFlip0)
{
    uint64_t z = salt + (k + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const uint32_t p = storedBit ? pFlip1 : pFlip0;
    return p != 0 && static_cast<uint32_t>(z >> 32) <= p;
}

} // namespace vstack::fault

#endif // VSTACK_FAULT_CONDITION_H
