#include "model.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "fault/condition.h"
#include "support/logging.h"

namespace vstack::fault
{

namespace
{

/** Legacy injection-cycle draw: 1 + uniform(cycles) spans [1, cycles];
 *  clamp into the live range without changing the draw count (see
 *  UarchCampaign::sampleSites, whose sequence this must reproduce). */
uint64_t
drawCycle(Rng &rng, uint64_t cycles)
{
    return std::min<uint64_t>(1 + rng.uniform(cycles),
                              cycles > 1 ? cycles - 1 : 1);
}

uint64_t
liveCeiling(uint64_t cycles)
{
    return cycles > 1 ? cycles - 1 : 1;
}

/* ------------------------------------------------------------------ */
/* single-bit                                                          */
/* ------------------------------------------------------------------ */

class SingleBitModel final : public FaultModel
{
  public:
    const char *name() const override { return "single-bit"; }
    std::string tag() const override { return "single-bit"; }
    std::string describe() const override
    {
        return "one bit, uniform over (time, bit space) — the paper's "
               "baseline transient model";
    }
    bool isDefault() const override { return true; }

    std::vector<UarchFault> sampleUarch(Rng &master,
                                        const UarchSpace &space,
                                        size_t n) const override
    {
        // Byte-compatibility contract: this loop consumes the master
        // stream exactly as the pre-plugin UarchCampaign::sampleSites
        // did — one fork per sample, cycle draw then bit draw.
        std::vector<UarchFault> faults(n);
        for (UarchFault &f : faults) {
            Rng rng = master.fork();
            FaultSite site;
            site.structure = space.structure;
            site.cycle = drawCycle(rng, space.cycles);
            site.bit = rng.uniform(space.bits);
            f.sites.push_back(site);
        }
        return faults;
    }

    std::vector<SwFault> sampleSvf(Rng &master, const SvfSpace &space,
                                   size_t n) const override
    {
        // Same contract vs the pre-plugin SvfDriver constructor: one
        // fork per sample, step draw then bit draw.
        std::vector<SwFault> faults(n);
        for (SwFault &f : faults) {
            Rng rng = master.fork();
            f.targetValueStep = rng.uniform(space.valueSteps);
            f.bit = static_cast<int>(
                rng.uniform(static_cast<uint64_t>(space.xlen)));
        }
        return faults;
    }

    PvfShape pvfShape(const PvfSpace &) const override
    {
        return PvfShape{};
    }
};

/* ------------------------------------------------------------------ */
/* spatial-multibit                                                    */
/* ------------------------------------------------------------------ */

class SpatialMultibitModel final : public FaultModel
{
  public:
    SpatialMultibitModel(uint32_t cluster, uint32_t stride)
        : cluster(cluster), stride(stride)
    {
    }

    const char *name() const override { return "spatial-multibit"; }
    std::string tag() const override
    {
        return strprintf("spatial-multibit:cluster=%u,stride=%u", cluster,
                         stride);
    }
    std::string describe() const override
    {
        return strprintf("%u-bit spatial upset, stride %u, wrapping at "
                         "the bit-space edge",
                         cluster, stride);
    }

    std::vector<UarchFault> sampleUarch(Rng &master,
                                        const UarchSpace &space,
                                        size_t n) const override
    {
        std::vector<UarchFault> faults(n);
        for (UarchFault &f : faults) {
            Rng rng = master.fork();
            FaultSite site;
            site.structure = space.structure;
            site.cycle = drawCycle(rng, space.cycles);
            site.bit = rng.uniform(space.bits);
            if (stride == 1) {
                // Adjacent clusters ride the structures' native burst
                // path (one site, burst flips at the injection cycle).
                site.burst = cluster;
                f.sites.push_back(site);
            } else {
                // Strided geometry: one single-bit site per cell,
                // wrapped into the bit space, all at the same cycle.
                for (uint32_t j = 0; j < cluster; ++j) {
                    FaultSite s = site;
                    s.bit = (site.bit +
                             static_cast<uint64_t>(j) * stride) %
                            space.bits;
                    f.sites.push_back(s);
                }
            }
        }
        return faults;
    }

    std::vector<SwFault> sampleSvf(Rng &master, const SvfSpace &space,
                                   size_t n) const override
    {
        std::vector<SwFault> faults(n);
        for (SwFault &f : faults) {
            Rng rng = master.fork();
            f.targetValueStep = rng.uniform(space.valueSteps);
            f.bit = static_cast<int>(
                rng.uniform(static_cast<uint64_t>(space.xlen)));
            f.burst = cluster;
            f.stride = stride;
        }
        return faults;
    }

    PvfShape pvfShape(const PvfSpace &) const override
    {
        PvfShape shape;
        shape.burst = cluster;
        shape.stride = stride;
        return shape;
    }

  private:
    uint32_t cluster;
    uint32_t stride;
};

/* ------------------------------------------------------------------ */
/* sram-undervolt                                                      */
/* ------------------------------------------------------------------ */

class SramUndervoltModel final : public FaultModel
{
  public:
    SramUndervoltModel(double vdd, uint32_t banks, double droop,
                       double asym)
        : vdd(vdd), banks(banks), droop(droop), asym(asym)
    {
    }

    const char *name() const override { return "sram-undervolt"; }
    std::string tag() const override
    {
        return strprintf("sram-undervolt:vdd=%g,banks=%u,droop=%g,asym=%g",
                         vdd, banks, droop, asym);
    }
    std::string describe() const override
    {
        return strprintf("value-conditioned flips at %.2f V across %u "
                         "banks (droop %g V/bank, 0-cell asymmetry %g)",
                         vdd, banks, droop, asym);
    }

    std::vector<UarchFault> sampleUarch(Rng &master,
                                        const UarchSpace &space,
                                        size_t n) const override
    {
        std::vector<UarchFault> faults(n);
        for (UarchFault &f : faults) {
            Rng rng = master.fork();
            FaultSite site;
            site.structure = space.structure;
            site.cycle = drawCycle(rng, space.cycles);
            site.bit = rng.uniform(space.bits);
            site.condSalt = rng.next64();
            site.conditioned = true;
            const uint32_t bank = static_cast<uint32_t>(
                space.bits ? site.bit * banks / space.bits : 0);
            site.pFlip1 = probFixed(pFlip1(bank));
            site.pFlip0 = probFixed(asym * pFlip1(bank));
            f.sites.push_back(site);
        }
        return faults;
    }

    std::vector<SwFault> sampleSvf(Rng &master, const SvfSpace &space,
                                   size_t n) const override
    {
        std::vector<SwFault> faults(n);
        for (SwFault &f : faults) {
            Rng rng = master.fork();
            f.targetValueStep = rng.uniform(space.valueSteps);
            f.bit = static_cast<int>(
                rng.uniform(static_cast<uint64_t>(space.xlen)));
            f.condSalt = rng.next64();
            f.conditioned = true;
            const uint32_t bank = static_cast<uint32_t>(
                static_cast<uint64_t>(f.bit) * banks / space.xlen);
            f.pFlip1 = probFixed(pFlip1(bank));
            f.pFlip0 = probFixed(asym * pFlip1(bank));
        }
        return faults;
    }

    PvfShape pvfShape(const PvfSpace &) const override
    {
        // Architectural locations have no bank geometry: they see the
        // nominal rail (bank 0, no droop).
        PvfShape shape;
        shape.conditioned = true;
        shape.pFlip1 = probFixed(pFlip1(0));
        shape.pFlip0 = probFixed(asym * pFlip1(0));
        return shape;
    }

  private:
    /** Flip probability of a 1-cell in `bank`: linear loss of noise
     *  margin below the ~1.0 V full-margin rail, floor at 0.7 V. */
    double pFlip1(uint32_t bank) const
    {
        const double rail = vdd - bank * droop;
        const double margin =
            std::min(1.0, std::max(0.0, (rail - 0.7) / 0.3));
        return 1.0 - margin;
    }

    double vdd;
    uint32_t banks;
    double droop;
    double asym;
};

/* ------------------------------------------------------------------ */
/* em-burst                                                            */
/* ------------------------------------------------------------------ */

class EmBurstModel final : public FaultModel
{
  public:
    EmBurstModel(uint64_t window, uint32_t flips, uint32_t cross)
        : window(window), flips(flips), cross(cross)
    {
    }

    const char *name() const override { return "em-burst"; }
    std::string tag() const override
    {
        return strprintf("em-burst:window=%llu,flips=%u,cross=%u",
                         static_cast<unsigned long long>(window), flips,
                         cross);
    }
    std::string describe() const override
    {
        return strprintf("%u temporally clustered flips within a "
                         "%llu-cycle window%s",
                         flips,
                         static_cast<unsigned long long>(window),
                         cross ? ", across structures" : "");
    }

    std::vector<UarchFault> sampleUarch(Rng &master,
                                        const UarchSpace &space,
                                        size_t n) const override
    {
        std::vector<UarchFault> faults(n);
        for (UarchFault &f : faults) {
            Rng rng = master.fork();
            FaultSite site;
            site.structure = space.structure;
            site.cycle = drawCycle(rng, space.cycles);
            site.bit = rng.uniform(space.bits);
            f.sites.push_back(site);
            uint64_t prev = site.cycle;
            for (uint32_t j = 1; j < flips; ++j) {
                FaultSite s;
                s.cycle = std::min(prev + 1 + rng.uniform(window),
                                   liveCeiling(space.cycles));
                prev = s.cycle;
                s.structure = space.structure;
                uint64_t bits = space.bits;
                if (cross) {
                    const size_t idx =
                        static_cast<size_t>(rng.uniform(5));
                    if (space.allBits[idx]) {
                        s.structure = allStructures[idx];
                        bits = space.allBits[idx];
                    }
                }
                s.bit = rng.uniform(bits);
                f.sites.push_back(s);
            }
            // Cumulative deltas keep the sites ascending by
            // construction; the sort documents the invariant the
            // executors rely on (restore below sites.front()).
            std::stable_sort(f.sites.begin(), f.sites.end(),
                             [](const FaultSite &a, const FaultSite &b) {
                                 return a.cycle < b.cycle;
                             });
        }
        return faults;
    }

    std::vector<SwFault> sampleSvf(Rng &master, const SvfSpace &space,
                                   size_t n) const override
    {
        const uint64_t top =
            space.valueSteps ? space.valueSteps - 1 : 0;
        std::vector<SwFault> faults(n);
        for (SwFault &f : faults) {
            Rng rng = master.fork();
            f.targetValueStep = rng.uniform(space.valueSteps);
            f.bit = static_cast<int>(
                rng.uniform(static_cast<uint64_t>(space.xlen)));
            uint64_t prev = f.targetValueStep;
            for (uint32_t j = 1; j < flips; ++j) {
                SwFaultEvent e;
                e.targetValueStep =
                    std::min(prev + 1 + rng.uniform(window), top);
                prev = e.targetValueStep;
                e.bit = static_cast<int>(
                    rng.uniform(static_cast<uint64_t>(space.xlen)));
                f.extra.push_back(e);
            }
        }
        return faults;
    }

    PvfShape pvfShape(const PvfSpace &) const override
    {
        PvfShape shape;
        shape.events = flips;
        shape.window = window;
        return shape;
    }

  private:
    uint64_t window;
    uint32_t flips;
    uint32_t cross;
};

/* ------------------------------------------------------------------ */
/* spec parsing                                                        */
/* ------------------------------------------------------------------ */

/** Parsed `k=v` knob list with consumption tracking. */
class Knobs
{
  public:
    bool parse(const std::string &modelName, const std::string &list,
               std::string &err)
    {
        size_t pos = 0;
        while (pos < list.size()) {
            size_t comma = list.find(',', pos);
            if (comma == std::string::npos)
                comma = list.size();
            const std::string item = list.substr(pos, comma - pos);
            const size_t eq = item.find('=');
            if (item.empty() || eq == std::string::npos || eq == 0 ||
                eq + 1 >= item.size()) {
                err = strprintf("fault model %s: malformed knob '%s' "
                                "(expected name=value)",
                                modelName.c_str(), item.c_str());
                return false;
            }
            vals[item.substr(0, eq)] = item.substr(eq + 1);
            pos = comma + 1;
        }
        return true;
    }

    bool getU(const std::string &modelName, const char *knob,
              uint64_t lo, uint64_t hi, uint64_t &out, std::string &err)
    {
        auto it = vals.find(knob);
        if (it == vals.end())
            return true;
        char *end = nullptr;
        const unsigned long long v = strtoull(it->second.c_str(), &end, 10);
        if (end == it->second.c_str() || *end != '\0' || v < lo ||
            v > hi) {
            err = strprintf("fault model %s: knob %s='%s' out of range "
                            "[%llu, %llu]",
                            modelName.c_str(), knob, it->second.c_str(),
                            static_cast<unsigned long long>(lo),
                            static_cast<unsigned long long>(hi));
            return false;
        }
        out = v;
        vals.erase(it);
        return true;
    }

    bool getF(const std::string &modelName, const char *knob, double lo,
              double hi, double &out, std::string &err)
    {
        auto it = vals.find(knob);
        if (it == vals.end())
            return true;
        char *end = nullptr;
        const double v = strtod(it->second.c_str(), &end);
        if (end == it->second.c_str() || *end != '\0' || v < lo ||
            v > hi) {
            err = strprintf("fault model %s: knob %s='%s' out of range "
                            "[%g, %g]",
                            modelName.c_str(), knob, it->second.c_str(),
                            lo, hi);
            return false;
        }
        out = v;
        vals.erase(it);
        return true;
    }

    bool finish(const std::string &modelName, std::string &err) const
    {
        if (vals.empty())
            return true;
        err = strprintf("fault model %s: unknown knob '%s'",
                        modelName.c_str(), vals.begin()->first.c_str());
        return false;
    }

  private:
    std::map<std::string, std::string> vals;
};

} // namespace

std::shared_ptr<const FaultModel>
singleBitModel()
{
    static const std::shared_ptr<const FaultModel> model =
        std::make_shared<SingleBitModel>();
    return model;
}

const std::vector<std::string> &
faultModelNames()
{
    static const std::vector<std::string> names = {
        "single-bit", "spatial-multibit", "sram-undervolt", "em-burst"};
    return names;
}

std::shared_ptr<const FaultModel>
parseFaultModel(const std::string &spec, std::string &err)
{
    if (spec.empty())
        return singleBitModel();

    const size_t colon = spec.find(':');
    const std::string name = spec.substr(0, colon);
    Knobs knobs;
    if (colon != std::string::npos &&
        !knobs.parse(name, spec.substr(colon + 1), err))
        return nullptr;

    if (name == "single-bit") {
        if (!knobs.finish(name, err))
            return nullptr;
        return singleBitModel();
    }
    if (name == "spatial-multibit") {
        uint64_t cluster = 2, stride = 1;
        if (!knobs.getU(name, "cluster", 1, 64, cluster, err) ||
            !knobs.getU(name, "stride", 1, 1u << 20, stride, err) ||
            !knobs.finish(name, err))
            return nullptr;
        return std::make_shared<SpatialMultibitModel>(
            static_cast<uint32_t>(cluster),
            static_cast<uint32_t>(stride));
    }
    if (name == "sram-undervolt") {
        double vdd = 0.85, droop = 0.01, asym = 0.25;
        uint64_t banks = 4;
        if (!knobs.getF(name, "vdd", 0.5, 1.5, vdd, err) ||
            !knobs.getU(name, "banks", 1, 64, banks, err) ||
            !knobs.getF(name, "droop", 0.0, 0.5, droop, err) ||
            !knobs.getF(name, "asym", 0.0, 1.0, asym, err) ||
            !knobs.finish(name, err))
            return nullptr;
        return std::make_shared<SramUndervoltModel>(
            vdd, static_cast<uint32_t>(banks), droop, asym);
    }
    if (name == "em-burst") {
        uint64_t window = 8, flips = 3, cross = 0;
        if (!knobs.getU(name, "window", 1, 1u << 30, window, err) ||
            !knobs.getU(name, "flips", 1, 64, flips, err) ||
            !knobs.getU(name, "cross", 0, 1, cross, err) ||
            !knobs.finish(name, err))
            return nullptr;
        return std::make_shared<EmBurstModel>(
            window, static_cast<uint32_t>(flips),
            static_cast<uint32_t>(cross));
    }

    std::string known;
    for (const std::string &m : faultModelNames())
        known += (known.empty() ? "" : ", ") + m;
    err = strprintf("unknown fault model '%s' (known: %s)", name.c_str(),
                    known.c_str());
    return nullptr;
}

} // namespace vstack::fault
