/**
 * @file
 * Instruction-set definitions for the two guest ISAs.
 *
 * The repo models the paper's Armv7/Armv8 axis with two variants of a
 * fixed-width 32-bit-encoded RISC ISA:
 *
 *  - av32: 32-bit registers, 16 GPRs, split-constant materialisation
 *    (LUI + ORRI), the Armv7 analog;
 *  - av64: 64-bit registers, 31 GPRs plus a zero register, MOVZ/MOVK
 *    constant building, the Armv8 analog.
 *
 * Both use the same opcode numbering; field widths differ with the
 * register-specifier width (4 vs 5 bits), so the same bit flip in an
 * instruction word lands in different fields on the two ISAs — one of
 * the cross-ISA effects the paper studies.
 */
#ifndef VSTACK_ISA_ISA_H
#define VSTACK_ISA_ISA_H

#include <cstdint>
#include <string>
#include <vector>

namespace vstack
{

/** Guest instruction-set architecture identifier. */
enum class IsaId : uint8_t {
    Av32, ///< 32-bit registers, 16 GPRs (Armv7 analog)
    Av64, ///< 64-bit registers, 31 GPRs + zero reg (Armv8 analog)
};

/** Human-readable ISA name ("av32"/"av64"). */
const char *isaName(IsaId isa);

/** Parse an ISA name; fatal() on unknown names. */
IsaId isaFromName(const std::string &name);

/** Operation codes, shared across both ISAs. */
enum class Op : uint8_t {
    // System
    NOP = 0,
    HALT,    ///< privileged: stop the machine
    SYSCALL, ///< trap to kernel
    ERET,    ///< privileged: return to user mode at EPC
    MTEPC,   ///< privileged: EPC <- reg (rd slot)
    MFEPC,   ///< privileged: reg <- EPC

    // Register-register ALU
    ADD,
    SUB,
    AND,
    ORR,
    EOR,
    MUL,
    UDIV, ///< unsigned divide; x/0 == 0 (Arm semantics)
    SDIV, ///< signed divide; x/0 == 0
    UREM, ///< unsigned remainder; x%0 == x
    SREM, ///< signed remainder; x%0 == x
    LSLV, ///< shift left by register (mod XLEN)
    LSRV,
    ASRV,
    SLT,  ///< rd = (rs1 <s rs2)
    SLTU, ///< rd = (rs1 <u rs2)

    // Register-immediate ALU
    ADDI,
    ANDI,
    ORRI,
    EORI,
    LSLI,
    LSRI,
    ASRI,
    SLTI,

    // Constant materialisation
    LUI,  ///< av32 only: rd = imm22 << 10
    MOVZ, ///< av64 only: rd = imm16 << (16*hw)
    MOVK, ///< av64 only: insert imm16 at halfword hw

    // Memory (byte-addressed; X = register width)
    LDX, ///< load XLEN bits
    STX,
    LDW, ///< load 32 bits zero-extended (av64); alias of LDX on av32
    STW, ///< store low 32 bits; alias of STX on av32
    LDBU, ///< load byte zero-extended
    LDB,  ///< load byte sign-extended
    STB,

    // Control flow
    BEQ,
    BNE,
    BLT,
    BGE,
    BLTU,
    BGEU,
    B,
    BL,  ///< branch and link (lr = pc + 4)
    BR,  ///< branch to register
    BLR, ///< branch to register and link

    /** Privileged: data-cache clean by address (rd slot holds the
     *  address).  Used by the kernel to make write() payloads visible
     *  to the non-coherent DMA engine. */
    DCCB,

    NumOps
};

/** Encoding format of an operation. */
enum class Format : uint8_t {
    Sys,  ///< no operand fields
    R,    ///< rd, rs1, rs2
    R2,   ///< rd, rs1 (or single reg in rd slot)
    I,    ///< rd, rs1, imm (sign-extended)
    MemL, ///< rd, [base, #imm]
    MemS, ///< rs (rd slot), [base (rs1 slot), #imm]
    Br,   ///< rs1 (rd slot), rs2 (rs1 slot), word offset
    J,    ///< 26-bit word offset
    Jr,   ///< target register in rd slot
    Lui,  ///< rd, imm22 (av32)
    Mov,  ///< rd, imm16, hw (av64)
};

/** Static properties of an operation. */
struct OpInfo
{
    const char *name;  ///< mnemonic
    Format format;     ///< encoding format
    bool writesRd;     ///< produces a register result in rd
    bool readsRs1;     ///< reads a register in the rs1 slot
    bool readsRs2;     ///< reads a register in the rs2 slot
    bool readsRdSlot;  ///< the rd slot is a *source* (stores, Br, Jr)
    bool isLoad;
    bool isStore;
    bool isBranch;     ///< any control transfer
    bool isCondBranch;
    bool privileged;   ///< only legal in kernel mode
    uint8_t memBytes;  ///< access size for memory ops (0 otherwise)
};

/** Properties of op; @pre op < Op::NumOps. */
const OpInfo &opInfo(Op op);

/** Whether `op` exists in `isa` (LUI vs MOVZ/MOVK differ). */
bool opValidFor(Op op, IsaId isa);

/** Architecture description used by the assembler/compiler/simulators. */
struct IsaSpec
{
    IsaId id;
    int xlen;          ///< register width in bits (32 or 64)
    int numRegs;       ///< architectural GPR count (incl. zero reg slot)
    int regBits;       ///< register specifier width in the encoding
    int zeroReg;       ///< index of the hard-wired zero reg, or -1
    int sp;            ///< stack pointer register
    int lr;            ///< link register
    int kreg;          ///< reserved kernel scratch register
    int syscallNr;     ///< register carrying the syscall number
    std::vector<int> argRegs;      ///< argument/return registers (a0 first)
    std::vector<int> tempRegs;     ///< caller-saved scratch registers
    std::vector<int> calleeSaved;  ///< callee-saved registers

    /** Mask a value to the register width. */
    uint64_t maskVal(uint64_t v) const
    {
        return xlen == 64 ? v : (v & 0xffffffffull);
    }

    /** Sign-extend a register value from XLEN to 64 bits. */
    int64_t signedVal(uint64_t v) const
    {
        return xlen == 64 ? static_cast<int64_t>(v)
                          : static_cast<int64_t>(static_cast<int32_t>(v));
    }

    /** Register name, e.g. "x7" / "r7" / "sp" / "xzr". */
    std::string regName(int reg) const;

    /** Parse a register name; returns -1 if unknown. */
    int parseReg(const std::string &name) const;

    /** Immediate field width (bits) for I/MemL/MemS formats. */
    int immBits() const;
    /** Branch offset field width (bits) for the Br format. */
    int brBits() const;

    /** Spec for an ISA (static lifetime). */
    static const IsaSpec &get(IsaId isa);
};

/** A decoded instruction. */
struct DecodedInst
{
    Op op = Op::NOP;
    bool valid = false; ///< false for undefined encodings
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int64_t imm = 0;  ///< sign-extended immediate / byte offset
    uint8_t hw = 0;   ///< halfword selector for MOVZ/MOVK

    const OpInfo &info() const { return opInfo(op); }

    /** True if the two decodes have identical architectural semantics. */
    bool sameAs(const DecodedInst &other) const;
};

/**
 * Which FPM class a bit flip in an instruction word falls into.
 * Used by the HVF analysis: flips in the opcode or a control-flow
 * offset manifest as Wrong Instruction (WI); flips in register
 * specifiers or data immediates manifest as Wrong Operand/Immediate
 * (WOI).
 */
enum class InstFieldKind : uint8_t {
    Opcode,        ///< opcode field: WI
    ControlOffset, ///< branch/jump offset: WI (control-flow error)
    RegSpecifier,  ///< register field: WOI
    Immediate,     ///< data immediate: WOI
    Unused,        ///< bit ignored by decode
};

/** Classify bit position `bit` (0 = LSB) of instruction word `word`. */
InstFieldKind classifyInstBit(IsaId isa, uint32_t word, int bit);

/** Encode a decoded instruction into a 32-bit word. */
uint32_t encode(IsaId isa, const DecodedInst &inst);

/** Decode a 32-bit word (sets valid=false on undefined encodings). */
DecodedInst decode(IsaId isa, uint32_t word);

/** Disassemble a word, e.g. "add x1, x2, x3". */
std::string disassemble(IsaId isa, uint32_t word);

} // namespace vstack

#endif // VSTACK_ISA_ISA_H
