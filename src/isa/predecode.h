/**
 * @file
 * One-time predecode of a guest program image.
 *
 * ArchSim's hot loop pays a full fetch + field-extract + table decode
 * per instruction even though the text of a workload never changes
 * between the millions of samples of a campaign.  ArchPredecode hoists
 * that work out of the loop: one pass over the image's initialised
 * words produces a dense table of (encoded word, decoded instruction)
 * covering the image span, built once per (workload, isa) and shared
 * read-only by every simulator in the process (the VSTACK_GOLDEN_CACHE
 * LRU keeps it alongside the golden trace).
 *
 * Correctness against self-modifying or fault-corrupted text does not
 * need invalidation bookkeeping: the consumer compares the *live* RAM
 * word at the PC against the predecoded word and falls back to the
 * interpreter's decoder on any mismatch (see ArchSim::stepFastTo).
 * An entry therefore is a pure hint — using it requires proving, with
 * one 32-bit compare, that it still describes the bytes about to
 * execute.
 */
#ifndef VSTACK_ISA_PREDECODE_H
#define VSTACK_ISA_PREDECODE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/isa.h"
#include "isa/program.h"

namespace vstack
{

/** Predecoded image text for one (program, isa). Immutable once built;
 *  safe to share across threads. */
class ArchPredecode
{
  public:
    /** One predecoded word.  `d.valid` is false both for undefined
     *  encodings and for addresses the image never initialised (the
     *  consumer treats either as "no hint"). */
    struct Entry
    {
        uint32_t word = 0;
        DecodedInst d;
    };

    /** Predecode every aligned word of the image's segments. */
    ArchPredecode(const Program &image, IsaId isa);

    IsaId isa() const { return isa_; }

    /**
     * Hint for the instruction at `pc`, or nullptr when out of span /
     * unaligned / not predecoded.  The caller must still verify
     * entry->word against live memory before trusting entry->d.
     */
    const Entry *at(uint64_t pc) const
    {
        uint64_t off = pc - base_;
        if (off >= spanBytes_ || (pc & 3))
            return nullptr;
        const Entry &e = entries_[off >> 2];
        return e.d.valid ? &e : nullptr;
    }

    /** Predecoded instruction-slot count (diagnostics/benchmarks). */
    size_t slots() const { return entries_.size(); }

    /** Approximate retained bytes (LRU cost accounting). */
    size_t retainedBytes() const
    {
        return entries_.size() * sizeof(Entry) + sizeof(*this);
    }

  private:
    IsaId isa_;
    uint64_t base_ = 0;      ///< lowest predecoded address (aligned)
    uint64_t spanBytes_ = 0; ///< bytes covered from base_
    std::vector<Entry> entries_;
};

/** Build a shared predecode (the form every consumer passes around). */
std::shared_ptr<const ArchPredecode> predecodeImage(const Program &image,
                                                    IsaId isa);

} // namespace vstack

#endif // VSTACK_ISA_PREDECODE_H
