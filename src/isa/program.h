/**
 * @file
 * Loadable guest program images.
 *
 * A Program is a set of (address, bytes) segments plus an entry point
 * and a symbol table — the minimal equivalent of a linked ELF for the
 * guest machine.  Both the functional emulator and the cycle-level
 * simulator load Programs through the same interface.
 */
#ifndef VSTACK_ISA_PROGRAM_H
#define VSTACK_ISA_PROGRAM_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace vstack
{

/** A contiguous chunk of initialised guest memory. */
struct Segment
{
    uint32_t addr;
    std::vector<uint8_t> bytes;
};

/** A linked guest program (or kernel) image. */
struct Program
{
    IsaId isa = IsaId::Av64;
    uint32_t entry = 0;
    std::vector<Segment> segments;
    std::map<std::string, uint32_t> symbols;

    /** Look up a symbol; fatal() if missing. */
    uint32_t symbol(const std::string &name) const;

    /** True if a symbol of the given name exists. */
    bool hasSymbol(const std::string &name) const;

    /** Total initialised bytes across all segments. */
    size_t totalBytes() const;

    /**
     * Merge another image into this one (used to combine the kernel
     * and user images into a single bootable system image).  Symbol
     * collisions are fatal; overlapping segments are fatal.
     */
    void merge(const Program &other);

    /** Highest initialised address + 1 (0 if empty). */
    uint32_t highWatermark() const;
};

} // namespace vstack

#endif // VSTACK_ISA_PROGRAM_H
