#include "isa.h"

#include <array>
#include <cassert>

#include "support/logging.h"

namespace vstack
{

const char *
isaName(IsaId isa)
{
    return isa == IsaId::Av32 ? "av32" : "av64";
}

IsaId
isaFromName(const std::string &name)
{
    if (name == "av32")
        return IsaId::Av32;
    if (name == "av64")
        return IsaId::Av64;
    fatal("unknown ISA '%s'", name.c_str());
}

namespace
{

// Table order must match the Op enum exactly; verified in opInfo().
// Columns: name, format, writesRd, readsRs1, readsRs2, readsRdSlot,
//          isLoad, isStore, isBranch, isCondBranch, privileged, memBytes
constexpr std::array<OpInfo, static_cast<size_t>(Op::NumOps)> opTable = {{
    {"nop", Format::Sys, false, false, false, false, false, false, false,
     false, false, 0},
    {"halt", Format::Sys, false, false, false, false, false, false, false,
     false, true, 0},
    {"syscall", Format::Sys, false, false, false, false, false, false, false,
     false, false, 0},
    {"eret", Format::Sys, false, false, false, false, false, false, true,
     false, true, 0},
    {"mtepc", Format::R2, false, false, false, true, false, false, false,
     false, true, 0},
    {"mfepc", Format::R2, true, false, false, false, false, false, false,
     false, true, 0},

    {"add", Format::R, true, true, true, false, false, false, false, false,
     false, 0},
    {"sub", Format::R, true, true, true, false, false, false, false, false,
     false, 0},
    {"and", Format::R, true, true, true, false, false, false, false, false,
     false, 0},
    {"orr", Format::R, true, true, true, false, false, false, false, false,
     false, 0},
    {"eor", Format::R, true, true, true, false, false, false, false, false,
     false, 0},
    {"mul", Format::R, true, true, true, false, false, false, false, false,
     false, 0},
    {"udiv", Format::R, true, true, true, false, false, false, false, false,
     false, 0},
    {"sdiv", Format::R, true, true, true, false, false, false, false, false,
     false, 0},
    {"urem", Format::R, true, true, true, false, false, false, false, false,
     false, 0},
    {"srem", Format::R, true, true, true, false, false, false, false, false,
     false, 0},
    {"lslv", Format::R, true, true, true, false, false, false, false, false,
     false, 0},
    {"lsrv", Format::R, true, true, true, false, false, false, false, false,
     false, 0},
    {"asrv", Format::R, true, true, true, false, false, false, false, false,
     false, 0},
    {"slt", Format::R, true, true, true, false, false, false, false, false,
     false, 0},
    {"sltu", Format::R, true, true, true, false, false, false, false, false,
     false, 0},

    {"addi", Format::I, true, true, false, false, false, false, false, false,
     false, 0},
    {"andi", Format::I, true, true, false, false, false, false, false, false,
     false, 0},
    {"orri", Format::I, true, true, false, false, false, false, false, false,
     false, 0},
    {"eori", Format::I, true, true, false, false, false, false, false, false,
     false, 0},
    {"lsli", Format::I, true, true, false, false, false, false, false, false,
     false, 0},
    {"lsri", Format::I, true, true, false, false, false, false, false, false,
     false, 0},
    {"asri", Format::I, true, true, false, false, false, false, false, false,
     false, 0},
    {"slti", Format::I, true, true, false, false, false, false, false, false,
     false, 0},

    {"lui", Format::Lui, true, false, false, false, false, false, false,
     false, false, 0},
    {"movz", Format::Mov, true, false, false, false, false, false, false,
     false, false, 0},
    {"movk", Format::Mov, true, false, false, true, false, false, false,
     false, false, 0},

    {"ldx", Format::MemL, true, true, false, false, true, false, false,
     false, false, 255}, // memBytes resolved per-ISA (4 or 8)
    {"stx", Format::MemS, false, true, false, true, false, true, false,
     false, false, 255},
    {"ldw", Format::MemL, true, true, false, false, true, false, false,
     false, false, 4},
    {"stw", Format::MemS, false, true, false, true, false, true, false,
     false, false, 4},
    {"ldbu", Format::MemL, true, true, false, false, true, false, false,
     false, false, 1},
    {"ldb", Format::MemL, true, true, false, false, true, false, false,
     false, false, 1},
    {"stb", Format::MemS, false, true, false, true, false, true, false,
     false, false, 1},

    {"beq", Format::Br, false, true, true, true, false, false, true, true,
     false, 0},
    {"bne", Format::Br, false, true, true, true, false, false, true, true,
     false, 0},
    {"blt", Format::Br, false, true, true, true, false, false, true, true,
     false, 0},
    {"bge", Format::Br, false, true, true, true, false, false, true, true,
     false, 0},
    {"bltu", Format::Br, false, true, true, true, false, false, true, true,
     false, 0},
    {"bgeu", Format::Br, false, true, true, true, false, false, true, true,
     false, 0},
    {"b", Format::J, false, false, false, false, false, false, true, false,
     false, 0},
    {"bl", Format::J, true, false, false, false, false, false, true, false,
     false, 0},
    {"br", Format::Jr, false, false, false, true, false, false, true, false,
     false, 0},
    {"blr", Format::Jr, true, false, false, true, false, false, true, false,
     false, 0},

    {"dccb", Format::R2, false, false, false, true, false, false, false,
     false, true, 0},
}};

// Note on Br format register slots: rs1 lives in the rd encoding slot
// and rs2 in the rs1 slot.  The readsRs1/readsRs2 flags above refer to
// the *logical* sources; readsRdSlot marks that the rd slot is a
// source.  Simulators should use DecodedInst.rs1/rs2 which the decoder
// fills with the logical sources.

} // namespace

const OpInfo &
opInfo(Op op)
{
    assert(op < Op::NumOps);
    return opTable[static_cast<size_t>(op)];
}

bool
opValidFor(Op op, IsaId isa)
{
    switch (op) {
      case Op::LUI:
        return isa == IsaId::Av32;
      case Op::MOVZ:
      case Op::MOVK:
        return isa == IsaId::Av64;
      default:
        return op < Op::NumOps;
    }
}

std::string
IsaSpec::regName(int reg) const
{
    if (reg == sp)
        return "sp";
    if (reg == lr)
        return "lr";
    if (zeroReg >= 0 && reg == zeroReg)
        return "xzr";
    return strprintf("%c%d", id == IsaId::Av32 ? 'r' : 'x', reg);
}

int
IsaSpec::parseReg(const std::string &name) const
{
    if (name == "sp")
        return sp;
    if (name == "lr")
        return lr;
    if (name == "xzr" && zeroReg >= 0)
        return zeroReg;
    const char prefix = id == IsaId::Av32 ? 'r' : 'x';
    if (name.size() >= 2 && name[0] == prefix) {
        char *end = nullptr;
        long v = std::strtol(name.c_str() + 1, &end, 10);
        if (end && *end == '\0' && v >= 0 && v < numRegs)
            return static_cast<int>(v);
    }
    return -1;
}

int
IsaSpec::immBits() const
{
    // Bits below the rs1 slot: opcode(6) + rd(R) + rs1(R) occupy the
    // top, leaving 32 - 6 - 2R bits of immediate.
    return 32 - 6 - 2 * regBits;
}

int
IsaSpec::brBits() const
{
    return immBits();
}

const IsaSpec &
IsaSpec::get(IsaId isa)
{
    static const IsaSpec av32 = [] {
        IsaSpec s;
        s.id = IsaId::Av32;
        s.xlen = 32;
        s.numRegs = 16;
        s.regBits = 4;
        s.zeroReg = -1;
        s.sp = 13;
        s.lr = 14;
        s.kreg = 12;
        s.syscallNr = 7;
        s.argRegs = {0, 1, 2, 3};
        s.tempRegs = {4, 5, 6, 8};
        s.calleeSaved = {9, 10, 11, 15};
        return s;
    }();
    static const IsaSpec av64 = [] {
        IsaSpec s;
        s.id = IsaId::Av64;
        s.xlen = 64;
        s.numRegs = 32;
        s.regBits = 5;
        s.zeroReg = 31;
        s.sp = 28;
        s.lr = 30;
        s.kreg = 27;
        s.syscallNr = 8;
        s.argRegs = {0, 1, 2, 3};
        s.tempRegs = {4, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15};
        s.calleeSaved = {16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 29};
        return s;
    }();
    return isa == IsaId::Av32 ? av32 : av64;
}

bool
DecodedInst::sameAs(const DecodedInst &other) const
{
    if (valid != other.valid)
        return false;
    if (!valid)
        return true; // both undefined: same (faulting) behaviour
    return op == other.op && rd == other.rd && rs1 == other.rs1 &&
           rs2 == other.rs2 && imm == other.imm && hw == other.hw;
}

namespace
{

struct Layout
{
    int regBits;
    int rdShift;  // 26 - regBits
    int rs1Shift; // rdShift - regBits
    int rs2Shift; // rs1Shift - regBits
    uint32_t regMask;
};

Layout
layoutFor(IsaId isa)
{
    const int rb = IsaSpec::get(isa).regBits;
    Layout l;
    l.regBits = rb;
    l.rdShift = 26 - rb;
    l.rs1Shift = l.rdShift - rb;
    l.rs2Shift = l.rs1Shift - rb;
    l.regMask = (1u << rb) - 1;
    return l;
}

int64_t
signExtend(uint64_t v, int bits)
{
    const uint64_t sign = 1ull << (bits - 1);
    return static_cast<int64_t>((v ^ sign) - sign);
}

} // namespace

uint32_t
encode(IsaId isa, const DecodedInst &inst)
{
    const Layout l = layoutFor(isa);
    const OpInfo &info = opInfo(inst.op);
    assert(opValidFor(inst.op, isa));
    uint32_t w = static_cast<uint32_t>(inst.op) << 26;

    auto putReg = [&](int shift, uint8_t reg) {
        assert((reg & ~l.regMask) == 0);
        w |= static_cast<uint32_t>(reg) << shift;
    };
    auto putImm = [&](int bits, int64_t imm) {
        assert(imm >= -(1ll << (bits - 1)) && imm < (1ll << (bits - 1)));
        w |= static_cast<uint32_t>(imm) & ((1u << bits) - 1);
    };

    const int ib = IsaSpec::get(isa).immBits();
    switch (info.format) {
      case Format::Sys:
        break;
      case Format::R:
        putReg(l.rdShift, inst.rd);
        putReg(l.rs1Shift, inst.rs1);
        putReg(l.rs2Shift, inst.rs2);
        break;
      case Format::R2:
        putReg(l.rdShift, inst.rd);
        break;
      case Format::I:
      case Format::MemL:
        putReg(l.rdShift, inst.rd);
        putReg(l.rs1Shift, inst.rs1);
        putImm(ib, inst.imm);
        break;
      case Format::MemS:
        // Value register travels in the rd slot.
        putReg(l.rdShift, inst.rd);
        putReg(l.rs1Shift, inst.rs1);
        putImm(ib, inst.imm);
        break;
      case Format::Br:
        // rs1 in the rd slot, rs2 in the rs1 slot, word offset below.
        putReg(l.rdShift, inst.rs1);
        putReg(l.rs1Shift, inst.rs2);
        assert((inst.imm & 3) == 0);
        putImm(ib, inst.imm >> 2);
        break;
      case Format::J:
        assert((inst.imm & 3) == 0);
        putImm(26, inst.imm >> 2);
        break;
      case Format::Jr:
        putReg(l.rdShift, inst.rd);
        break;
      case Format::Lui:
        putReg(l.rdShift, inst.rd);
        assert(inst.imm >= 0 && inst.imm < (1 << 22));
        w |= static_cast<uint32_t>(inst.imm);
        break;
      case Format::Mov:
        putReg(l.rdShift, inst.rd);
        assert(inst.imm >= 0 && inst.imm < (1 << 16));
        assert(inst.hw < (IsaSpec::get(isa).xlen / 16));
        w |= static_cast<uint32_t>(inst.hw) << 16;
        w |= static_cast<uint32_t>(inst.imm);
        break;
    }
    return w;
}

DecodedInst
decode(IsaId isa, uint32_t word)
{
    DecodedInst d;
    const uint32_t opc = word >> 26;
    if (opc >= static_cast<uint32_t>(Op::NumOps))
        return d;
    d.op = static_cast<Op>(opc);
    if (!opValidFor(d.op, isa))
        return d;

    const Layout l = layoutFor(isa);
    const IsaSpec &spec = IsaSpec::get(isa);
    const OpInfo &info = opInfo(d.op);
    const int ib = spec.immBits();

    auto reg = [&](int shift) {
        return static_cast<uint8_t>((word >> shift) & l.regMask);
    };

    switch (info.format) {
      case Format::Sys:
        break;
      case Format::R:
        d.rd = reg(l.rdShift);
        d.rs1 = reg(l.rs1Shift);
        d.rs2 = reg(l.rs2Shift);
        break;
      case Format::R2:
        d.rd = reg(l.rdShift);
        break;
      case Format::I:
      case Format::MemL:
      case Format::MemS:
        d.rd = reg(l.rdShift);
        d.rs1 = reg(l.rs1Shift);
        d.imm = signExtend(word & ((1u << ib) - 1), ib);
        break;
      case Format::Br:
        d.rs1 = reg(l.rdShift);
        d.rs2 = reg(l.rs1Shift);
        d.imm = signExtend(word & ((1u << ib) - 1), ib) * 4;
        break;
      case Format::J:
        d.imm = signExtend(word & ((1u << 26) - 1), 26) * 4;
        break;
      case Format::Jr:
        d.rd = reg(l.rdShift);
        break;
      case Format::Lui:
        d.rd = reg(l.rdShift);
        d.imm = static_cast<int64_t>(word & ((1u << 22) - 1));
        break;
      case Format::Mov:
        d.rd = reg(l.rdShift);
        d.hw = static_cast<uint8_t>((word >> 16) & 3);
        if (d.hw >= spec.xlen / 16)
            return d; // invalid halfword selector
        d.imm = static_cast<int64_t>(word & 0xffff);
        break;
    }

    // av32 has no zero register but all 4-bit specifiers are valid;
    // av64 specifiers 0..31 are all valid (31 = xzr).
    d.valid = true;
    return d;
}

InstFieldKind
classifyInstBit(IsaId isa, uint32_t word, int bit)
{
    assert(bit >= 0 && bit < 32);
    if (bit >= 26)
        return InstFieldKind::Opcode;

    const DecodedInst d = decode(isa, word);
    if (!d.valid)
        return InstFieldKind::Unused;

    const Layout l = layoutFor(isa);
    const IsaSpec &spec = IsaSpec::get(isa);
    const int ib = spec.immBits();
    auto inReg = [&](int shift) { return bit >= shift && bit < shift + l.regBits; };

    switch (d.info().format) {
      case Format::Sys:
        return InstFieldKind::Unused;
      case Format::R:
        if (inReg(l.rdShift) || inReg(l.rs1Shift) || inReg(l.rs2Shift))
            return InstFieldKind::RegSpecifier;
        return InstFieldKind::Unused;
      case Format::R2:
      case Format::Jr:
        if (inReg(l.rdShift))
            return InstFieldKind::RegSpecifier;
        return InstFieldKind::Unused;
      case Format::I:
      case Format::MemL:
      case Format::MemS:
        if (inReg(l.rdShift) || inReg(l.rs1Shift))
            return InstFieldKind::RegSpecifier;
        if (bit < ib)
            return InstFieldKind::Immediate;
        return InstFieldKind::Unused;
      case Format::Br:
        if (inReg(l.rdShift) || inReg(l.rs1Shift))
            return InstFieldKind::RegSpecifier;
        if (bit < ib)
            return InstFieldKind::ControlOffset;
        return InstFieldKind::Unused;
      case Format::J:
        return InstFieldKind::ControlOffset;
      case Format::Lui:
        if (inReg(l.rdShift))
            return InstFieldKind::RegSpecifier;
        return InstFieldKind::Immediate;
      case Format::Mov:
        if (inReg(l.rdShift))
            return InstFieldKind::RegSpecifier;
        if (bit < 18)
            return InstFieldKind::Immediate;
        return InstFieldKind::Unused;
    }
    return InstFieldKind::Unused;
}

std::string
disassemble(IsaId isa, uint32_t word)
{
    const DecodedInst d = decode(isa, word);
    if (!d.valid)
        return strprintf(".word 0x%08x  ; <undefined>", word);

    const IsaSpec &spec = IsaSpec::get(isa);
    const OpInfo &info = d.info();
    auto r = [&](uint8_t reg) { return spec.regName(reg); };

    switch (info.format) {
      case Format::Sys:
        return info.name;
      case Format::R:
        return strprintf("%s %s, %s, %s", info.name, r(d.rd).c_str(),
                         r(d.rs1).c_str(), r(d.rs2).c_str());
      case Format::R2:
      case Format::Jr:
        return strprintf("%s %s", info.name, r(d.rd).c_str());
      case Format::I:
        return strprintf("%s %s, %s, #%lld", info.name, r(d.rd).c_str(),
                         r(d.rs1).c_str(), static_cast<long long>(d.imm));
      case Format::MemL:
        return strprintf("%s %s, [%s, #%lld]", info.name, r(d.rd).c_str(),
                         r(d.rs1).c_str(), static_cast<long long>(d.imm));
      case Format::MemS:
        return strprintf("%s %s, [%s, #%lld]", info.name, r(d.rd).c_str(),
                         r(d.rs1).c_str(), static_cast<long long>(d.imm));
      case Format::Br:
        return strprintf("%s %s, %s, %+lld", info.name, r(d.rs1).c_str(),
                         r(d.rs2).c_str(), static_cast<long long>(d.imm));
      case Format::J:
        return strprintf("%s %+lld", info.name,
                         static_cast<long long>(d.imm));
      case Format::Lui:
        return strprintf("%s %s, #0x%llx", info.name, r(d.rd).c_str(),
                         static_cast<unsigned long long>(d.imm));
      case Format::Mov:
        return strprintf("%s %s, #0x%llx, lsl %d", info.name,
                         r(d.rd).c_str(),
                         static_cast<unsigned long long>(d.imm), d.hw * 16);
    }
    return "?";
}

} // namespace vstack
