/**
 * @file
 * Shared architectural instruction semantics.
 *
 * Both the functional emulator and the cycle-level core call these
 * helpers so ALU/branch semantics cannot diverge between layers (the
 * co-simulation tests additionally verify end-to-end agreement).
 */
#ifndef VSTACK_ISA_SEMANTICS_H
#define VSTACK_ISA_SEMANTICS_H

#include <cstdint>

#include "isa/isa.h"

namespace vstack
{

/**
 * Result of a pure ALU/constant instruction.
 *
 * @param spec    target ISA spec (for masking/sign semantics)
 * @param d       decoded instruction (ALU/shift/const group)
 * @param rs1     value of the rs1 source
 * @param rs2     value of the rs2 source
 * @param rdOld   previous value of rd (for MOVK)
 */
uint64_t aluResult(const IsaSpec &spec, const DecodedInst &d, uint64_t rs1,
                   uint64_t rs2, uint64_t rdOld);

/** Whether a conditional branch is taken given its source values. */
bool branchTaken(const IsaSpec &spec, Op op, uint64_t rs1, uint64_t rs2);

/** Access size in bytes for a memory op on this ISA. */
unsigned memAccessBytes(const IsaSpec &spec, Op op);

/** True for ops the pipeline must serialize (system instructions). */
bool isSerializing(Op op);

} // namespace vstack

#endif // VSTACK_ISA_SEMANTICS_H
