/**
 * @file
 * Two-pass textual assembler for the guest ISAs.
 *
 * Used by the compiler back-ends (which emit assembly text) and by
 * hand-written kernel stubs and tests.  Syntax:
 *
 *   .isa av64            ; select ISA (or pass to assemble())
 *   .org 0x100           ; set location counter
 *   .global name         ; export a symbol (all labels are exported)
 *   loop:                ; label
 *       add  x1, x2, x3
 *       addi x1, x1, #-8
 *       ldx  x1, [x2, #8]
 *       beq  x1, x2, loop
 *       la   x1, buffer  ; pseudo: load address of label (2 insts)
 *       li   x1, #0x12345678 ; pseudo: load 32-bit constant (2 insts)
 *       mov  x1, x2      ; pseudo: register move
 *       ret              ; pseudo: br lr
 *   buffer:
 *       .word 1, 2, 3
 *       .byte 0xff
 *       .ascii "text"
 *       .asciz "text"
 *       .space 64
 *
 * Comments start with ';' or '//'.
 */
#ifndef VSTACK_ISA_ASSEMBLER_H
#define VSTACK_ISA_ASSEMBLER_H

#include <string>

#include "isa/program.h"

namespace vstack
{

/** Result of an assembly run. */
struct AsmResult
{
    bool ok = false;
    std::string error; ///< "line N: message" on failure
    Program program;
};

/**
 * Assemble source text into a program image.
 *
 * @param source  assembly text
 * @param isa     default ISA (a .isa directive overrides it)
 * @param origin  initial location counter
 */
AsmResult assemble(const std::string &source, IsaId isa,
                   uint32_t origin = 0);

} // namespace vstack

#endif // VSTACK_ISA_ASSEMBLER_H
