#include "program.h"

#include <algorithm>

#include "support/logging.h"

namespace vstack
{

uint32_t
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("undefined symbol '%s'", name.c_str());
    return it->second;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols.count(name) != 0;
}

size_t
Program::totalBytes() const
{
    size_t n = 0;
    for (const auto &seg : segments)
        n += seg.bytes.size();
    return n;
}

void
Program::merge(const Program &other)
{
    if (isa != other.isa)
        fatal("cannot merge images with different ISAs");
    for (const auto &seg : other.segments) {
        for (const auto &mine : segments) {
            const uint64_t aLo = mine.addr, aHi = aLo + mine.bytes.size();
            const uint64_t bLo = seg.addr, bHi = bLo + seg.bytes.size();
            if (aLo < bHi && bLo < aHi) {
                fatal("overlapping segments at 0x%08x and 0x%08x",
                      mine.addr, seg.addr);
            }
        }
        segments.push_back(seg);
    }
    for (const auto &[name, addr] : other.symbols) {
        if (symbols.count(name))
            fatal("duplicate symbol '%s' while merging images",
                  name.c_str());
        symbols[name] = addr;
    }
}

uint32_t
Program::highWatermark() const
{
    uint32_t hi = 0;
    for (const auto &seg : segments) {
        hi = std::max<uint32_t>(
            hi, seg.addr + static_cast<uint32_t>(seg.bytes.size()));
    }
    return hi;
}

} // namespace vstack
