#include "semantics.h"

#include "support/logging.h"

namespace vstack
{

uint64_t
aluResult(const IsaSpec &spec, const DecodedInst &d, uint64_t rs1,
          uint64_t rs2, uint64_t rdOld)
{
    const int xlen = spec.xlen;
    auto sv = [&](uint64_t v) { return spec.signedVal(v); };
    const uint64_t uimm = static_cast<uint64_t>(d.imm);

    switch (d.op) {
      case Op::ADD: return rs1 + rs2;
      case Op::SUB: return rs1 - rs2;
      case Op::AND: return rs1 & rs2;
      case Op::ORR: return rs1 | rs2;
      case Op::EOR: return rs1 ^ rs2;
      case Op::MUL: return rs1 * rs2;
      case Op::UDIV:
        return rs2 == 0 ? 0 : spec.maskVal(rs1) / spec.maskVal(rs2);
      case Op::SDIV: {
        int64_t a = sv(rs1), b = sv(rs2);
        if (b == 0)
            return 0;
        if (a == INT64_MIN && b == -1)
            return static_cast<uint64_t>(a);
        return static_cast<uint64_t>(a / b);
      }
      case Op::UREM:
        return rs2 == 0 ? rs1 : spec.maskVal(rs1) % spec.maskVal(rs2);
      case Op::SREM: {
        int64_t a = sv(rs1), b = sv(rs2);
        if (b == 0)
            return static_cast<uint64_t>(a);
        if (a == INT64_MIN && b == -1)
            return 0;
        return static_cast<uint64_t>(a % b);
      }
      case Op::LSLV: return rs1 << (rs2 & (xlen - 1));
      case Op::LSRV: return spec.maskVal(rs1) >> (rs2 & (xlen - 1));
      case Op::ASRV:
        return static_cast<uint64_t>(sv(rs1) >> (rs2 & (xlen - 1)));
      case Op::SLT: return sv(rs1) < sv(rs2) ? 1 : 0;
      case Op::SLTU:
        return spec.maskVal(rs1) < spec.maskVal(rs2) ? 1 : 0;

      case Op::ADDI: return rs1 + uimm;
      case Op::ANDI: return rs1 & uimm;
      case Op::ORRI: return rs1 | uimm;
      case Op::EORI: return rs1 ^ uimm;
      case Op::LSLI: return rs1 << (d.imm & (xlen - 1));
      case Op::LSRI: return spec.maskVal(rs1) >> (d.imm & (xlen - 1));
      case Op::ASRI:
        return static_cast<uint64_t>(sv(rs1) >> (d.imm & (xlen - 1)));
      case Op::SLTI: return sv(rs1) < d.imm ? 1 : 0;

      case Op::LUI: return uimm << 10;
      case Op::MOVZ: return uimm << (16 * d.hw);
      case Op::MOVK: {
        const uint64_t mask = 0xffffull << (16 * d.hw);
        return (rdOld & ~mask) | (uimm << (16 * d.hw));
      }
      default:
        panic("aluResult on non-ALU op '%s'", d.info().name);
    }
}

bool
branchTaken(const IsaSpec &spec, Op op, uint64_t rs1, uint64_t rs2)
{
    auto sv = [&](uint64_t v) { return spec.signedVal(v); };
    switch (op) {
      case Op::BEQ: return rs1 == rs2;
      case Op::BNE: return rs1 != rs2;
      case Op::BLT: return sv(rs1) < sv(rs2);
      case Op::BGE: return sv(rs1) >= sv(rs2);
      case Op::BLTU: return spec.maskVal(rs1) < spec.maskVal(rs2);
      case Op::BGEU: return spec.maskVal(rs1) >= spec.maskVal(rs2);
      case Op::B:
      case Op::BL:
      case Op::BR:
      case Op::BLR:
        return true;
      default:
        panic("branchTaken on non-branch op");
    }
}

unsigned
memAccessBytes(const IsaSpec &spec, Op op)
{
    switch (op) {
      case Op::LDX:
      case Op::STX:
        return static_cast<unsigned>(spec.xlen / 8);
      case Op::LDW:
      case Op::STW:
        return 4;
      case Op::LDBU:
      case Op::LDB:
      case Op::STB:
        return 1;
      default:
        panic("memAccessBytes on non-memory op");
    }
}

bool
isSerializing(Op op)
{
    switch (op) {
      case Op::SYSCALL:
      case Op::ERET:
      case Op::HALT:
      case Op::MTEPC:
      case Op::MFEPC:
        return true;
      default:
        return false;
    }
}

} // namespace vstack
