#include "predecode.h"

#include <algorithm>
#include <cstring>

namespace vstack
{

ArchPredecode::ArchPredecode(const Program &image, IsaId isa) : isa_(isa)
{
    if (image.segments.empty())
        return;
    uint64_t lo = UINT64_MAX, hi = 0;
    for (const Segment &s : image.segments) {
        lo = std::min<uint64_t>(lo, s.addr);
        hi = std::max<uint64_t>(hi, s.addr + s.bytes.size());
    }
    base_ = lo & ~3ull;
    spanBytes_ = ((hi + 3) & ~3ull) - base_;
    entries_.assign(spanBytes_ / 4, Entry{});

    // Reconstruct each aligned word from segment bytes (segments need
    // not be word-aligned or contiguous), then decode it.  Words the
    // image only partially initialises still get predecoded with the
    // uninitialised bytes as zero — exactly the value a freshly loaded
    // RAM holds there, so the consumer's live-word compare works out.
    for (const Segment &s : image.segments) {
        for (size_t i = 0; i < s.bytes.size(); ++i) {
            uint64_t addr = s.addr + i;
            Entry &e = entries_[(addr - base_) >> 2];
            e.word |= static_cast<uint32_t>(s.bytes[i]) << (8 * (addr & 3));
        }
    }
    for (Entry &e : entries_)
        e.d = decode(isa, e.word);
}

std::shared_ptr<const ArchPredecode>
predecodeImage(const Program &image, IsaId isa)
{
    return std::make_shared<const ArchPredecode>(image, isa);
}

} // namespace vstack
