#include "assembler.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>

#include "support/logging.h"

namespace vstack
{

namespace
{

/** Internal assembler state shared by both passes. */
class Assembler
{
  public:
    Assembler(const std::string &source, IsaId isa, uint32_t origin)
        : source(source), isa(isa), origin(origin)
    {}

    AsmResult run()
    {
        AsmResult res;
        // Pass 1: compute label addresses.
        pass = 1;
        if (!runPass()) {
            res.error = error;
            return res;
        }
        // Pass 2: encode.
        pass = 2;
        if (!runPass()) {
            res.error = error;
            return res;
        }
        flushSegment();
        res.ok = true;
        res.program.isa = isa;
        res.program.segments = std::move(segments);
        res.program.symbols = labels;
        if (labels.count("_start"))
            res.program.entry = labels["_start"];
        else if (!res.program.segments.empty())
            res.program.entry = res.program.segments.front().addr;
        return res;
    }

  private:
    bool fail(const std::string &msg)
    {
        if (error.empty())
            error = strprintf("line %d: %s", lineNo, msg.c_str());
        return false;
    }

    bool runPass()
    {
        pc = origin;
        lineNo = 0;
        segments.clear();
        curSeg.reset();
        std::istringstream in(source);
        std::string line;
        while (std::getline(in, line)) {
            ++lineNo;
            if (!processLine(line))
                return false;
        }
        return error.empty();
    }

    static std::string stripComment(const std::string &line)
    {
        std::string out;
        bool inStr = false;
        for (size_t i = 0; i < line.size(); ++i) {
            char c = line[i];
            if (c == '"' && (i == 0 || line[i - 1] != '\\'))
                inStr = !inStr;
            if (!inStr) {
                if (c == ';')
                    break;
                if (c == '/' && i + 1 < line.size() && line[i + 1] == '/')
                    break;
            }
            out += c;
        }
        return out;
    }

    static std::string trim(const std::string &s)
    {
        size_t b = s.find_first_not_of(" \t\r\n");
        if (b == std::string::npos)
            return "";
        size_t e = s.find_last_not_of(" \t\r\n");
        return s.substr(b, e - b + 1);
    }

    bool processLine(const std::string &raw)
    {
        std::string line = trim(stripComment(raw));
        // Peel leading labels ("name:").
        for (;;) {
            size_t colon = line.find(':');
            if (colon == std::string::npos)
                break;
            std::string head = trim(line.substr(0, colon));
            if (head.empty() || !isIdent(head))
                break;
            if (pass == 1) {
                if (labels.count(head))
                    return fail("duplicate label '" + head + "'");
                labels[head] = pc;
            }
            line = trim(line.substr(colon + 1));
        }
        if (line.empty())
            return true;
        if (line[0] == '.')
            return directive(line);
        return instruction(line);
    }

    static bool isIdent(const std::string &s)
    {
        if (s.empty() || (!std::isalpha(s[0]) && s[0] != '_'))
            return false;
        for (char c : s) {
            if (!std::isalnum(c) && c != '_')
                return false;
        }
        return true;
    }

    bool parseValue(const std::string &tok, int64_t &out)
    {
        std::string t = trim(tok);
        if (!t.empty() && t[0] == '#')
            t = t.substr(1);
        if (t.empty())
            return fail("empty value");
        if (t.size() >= 3 && t[0] == '\'' && t.back() == '\'') {
            if (t.size() == 3) {
                out = t[1];
                return true;
            }
            if (t.size() == 4 && t[1] == '\\') {
                switch (t[2]) {
                  case 'n': out = '\n'; return true;
                  case 't': out = '\t'; return true;
                  case '0': out = 0; return true;
                  case '\\': out = '\\'; return true;
                  default: return fail("bad char escape");
                }
            }
            return fail("bad char literal");
        }
        if (isIdent(t)) {
            if (pass == 1) {
                out = 0; // label addresses unknown in pass 1
                return true;
            }
            auto it = labels.find(t);
            if (it == labels.end())
                return fail("undefined symbol '" + t + "'");
            out = it->second;
            return true;
        }
        char *end = nullptr;
        errno = 0;
        long long v = std::strtoll(t.c_str(), &end, 0);
        if (end == t.c_str() || *end != '\0' || errno != 0)
            return fail("bad value '" + t + "'");
        out = v;
        return true;
    }

    void emitBytes(const uint8_t *data, size_t n)
    {
        if (pass == 2) {
            if (!curSeg) {
                curSeg = Segment{pc, {}};
            }
            curSeg->bytes.insert(curSeg->bytes.end(), data, data + n);
        }
        pc += static_cast<uint32_t>(n);
    }

    void emitWord(uint32_t w)
    {
        uint8_t b[4] = {static_cast<uint8_t>(w), static_cast<uint8_t>(w >> 8),
                        static_cast<uint8_t>(w >> 16),
                        static_cast<uint8_t>(w >> 24)};
        emitBytes(b, 4);
    }

    void flushSegment()
    {
        if (curSeg && !curSeg->bytes.empty())
            segments.push_back(std::move(*curSeg));
        curSeg.reset();
    }

    bool directive(const std::string &line)
    {
        std::istringstream ss(line);
        std::string name;
        ss >> name;
        std::string rest = trim(line.substr(name.size()));
        if (name == ".isa") {
            isa = isaFromName(rest);
            return true;
        }
        if (name == ".org") {
            int64_t v;
            if (!parseValue(rest, v))
                return false;
            flushSegment();
            pc = static_cast<uint32_t>(v);
            return true;
        }
        if (name == ".global")
            return true; // all labels are global already
        if (name == ".align") {
            int64_t v;
            if (!parseValue(rest, v))
                return false;
            while (pc % static_cast<uint32_t>(v)) {
                uint8_t zero = 0;
                emitBytes(&zero, 1);
            }
            return true;
        }
        if (name == ".word" || name == ".byte") {
            for (const std::string &tok : splitOperands(rest)) {
                int64_t v;
                if (!parseValue(tok, v))
                    return false;
                if (name == ".word") {
                    emitWord(static_cast<uint32_t>(v));
                } else {
                    uint8_t b = static_cast<uint8_t>(v);
                    emitBytes(&b, 1);
                }
            }
            return true;
        }
        if (name == ".space") {
            int64_t v;
            if (!parseValue(rest, v))
                return false;
            std::vector<uint8_t> zeros(static_cast<size_t>(v), 0);
            emitBytes(zeros.data(), zeros.size());
            return true;
        }
        if (name == ".ascii" || name == ".asciz") {
            std::string text;
            if (!parseString(rest, text))
                return false;
            emitBytes(reinterpret_cast<const uint8_t *>(text.data()),
                      text.size());
            if (name == ".asciz") {
                uint8_t zero = 0;
                emitBytes(&zero, 1);
            }
            return true;
        }
        return fail("unknown directive '" + name + "'");
    }

    bool parseString(const std::string &tok, std::string &out)
    {
        std::string t = trim(tok);
        if (t.size() < 2 || t.front() != '"' || t.back() != '"')
            return fail("expected string literal");
        for (size_t i = 1; i + 1 < t.size(); ++i) {
            char c = t[i];
            if (c == '\\' && i + 2 < t.size()) {
                char e = t[++i];
                switch (e) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case '0': out += '\0'; break;
                  case '\\': out += '\\'; break;
                  case '"': out += '"'; break;
                  default: return fail("bad string escape");
                }
            } else {
                out += c;
            }
        }
        return true;
    }

    /** Split "x1, [x2, #8]" into {"x1", "[x2, #8]"}. */
    static std::vector<std::string> splitOperands(const std::string &s)
    {
        std::vector<std::string> out;
        std::string cur;
        int depth = 0;
        for (char c : s) {
            if (c == '[')
                ++depth;
            if (c == ']')
                --depth;
            if (c == ',' && depth == 0) {
                out.push_back(trim(cur));
                cur.clear();
            } else {
                cur += c;
            }
        }
        if (!trim(cur).empty())
            out.push_back(trim(cur));
        return out;
    }

    bool parseRegOp(const std::string &tok, uint8_t &out)
    {
        int r = IsaSpec::get(isa).parseReg(trim(tok));
        if (r < 0)
            return fail("bad register '" + tok + "'");
        out = static_cast<uint8_t>(r);
        return true;
    }

    /** Parse "[reg]" or "[reg, #imm]". */
    bool parseMemOp(const std::string &tok, uint8_t &base, int64_t &off)
    {
        std::string t = trim(tok);
        if (t.size() < 3 || t.front() != '[' || t.back() != ']')
            return fail("expected memory operand, got '" + tok + "'");
        auto parts = splitOperands(t.substr(1, t.size() - 2));
        if (parts.empty() || parts.size() > 2)
            return fail("bad memory operand '" + tok + "'");
        if (!parseRegOp(parts[0], base))
            return false;
        off = 0;
        if (parts.size() == 2 && !parseValue(parts[1], off))
            return false;
        return true;
    }

    bool emitInst(Op op, uint8_t rd = 0, uint8_t rs1 = 0, uint8_t rs2 = 0,
                  int64_t imm = 0, uint8_t hw = 0)
    {
        DecodedInst d;
        d.op = op;
        d.rd = rd;
        d.rs1 = rs1;
        d.rs2 = rs2;
        d.imm = imm;
        d.hw = hw;
        d.valid = true;
        // Range-check immediates so the assembler reports errors rather
        // than tripping asserts inside encode().
        const IsaSpec &spec = IsaSpec::get(isa);
        const Format fmt = opInfo(op).format;
        if (fmt == Format::I || fmt == Format::MemL || fmt == Format::MemS) {
            const int ib = spec.immBits();
            if (imm < -(1ll << (ib - 1)) || imm >= (1ll << (ib - 1)))
                return fail("immediate out of range");
        } else if (fmt == Format::Br) {
            const int ib = spec.brBits();
            const int64_t words = imm >> 2;
            if ((imm & 3) ||
                words < -(1ll << (ib - 1)) || words >= (1ll << (ib - 1)))
                return fail("branch target out of range or misaligned");
        } else if (fmt == Format::J) {
            const int64_t words = imm >> 2;
            if ((imm & 3) || words < -(1ll << 25) || words >= (1ll << 25))
                return fail("jump target out of range or misaligned");
        }
        if (pass == 2)
            emitWord(encode(isa, d));
        else
            pc += 4;
        if (pass == 1)
            return true;
        return true;
    }

    bool instruction(const std::string &line)
    {
        std::istringstream ss(line);
        std::string mnem;
        ss >> mnem;
        std::string rest = trim(line.substr(mnem.size()));
        auto ops = splitOperands(rest);

        // Pseudo-instructions first.
        if (mnem == "li" || mnem == "la") {
            if (ops.size() != 2)
                return fail(mnem + " needs 2 operands");
            uint8_t rd;
            int64_t v;
            if (!parseRegOp(ops[0], rd) || !parseValue(ops[1], v))
                return false;
            uint64_t uv = static_cast<uint64_t>(v) & 0xffffffffull;
            if (pass == 2 && (v < 0 ? v < INT32_MIN : uv != static_cast<uint64_t>(v)))
                return fail(mnem + " value does not fit in 32 bits");
            if (isa == IsaId::Av32) {
                if (!emitInst(Op::LUI, rd, 0, 0,
                              static_cast<int64_t>((uv >> 10) & 0x3fffff)))
                    return false;
                return emitInst(Op::ORRI, rd, rd, 0,
                                static_cast<int64_t>(uv & 0x3ff));
            }
            if (!emitInst(Op::MOVZ, rd, 0, 0,
                          static_cast<int64_t>((uv >> 16) & 0xffff), 1))
                return false;
            return emitInst(Op::MOVK, rd, 0, 0,
                            static_cast<int64_t>(uv & 0xffff), 0);
        }
        if (mnem == "mov") {
            if (ops.size() != 2)
                return fail("mov needs 2 operands");
            uint8_t rd, rs;
            if (!parseRegOp(ops[0], rd) || !parseRegOp(ops[1], rs))
                return false;
            return emitInst(Op::ADDI, rd, rs, 0, 0);
        }
        if (mnem == "ret") {
            return emitInst(Op::BR, static_cast<uint8_t>(
                                        IsaSpec::get(isa).lr));
        }

        // Find the real opcode.
        Op op = Op::NumOps;
        for (size_t i = 0; i < static_cast<size_t>(Op::NumOps); ++i) {
            if (mnem == opTableName(static_cast<Op>(i))) {
                op = static_cast<Op>(i);
                break;
            }
        }
        if (op == Op::NumOps)
            return fail("unknown mnemonic '" + mnem + "'");
        if (!opValidFor(op, isa))
            return fail("'" + mnem + "' is not valid for " + isaName(isa));

        const OpInfo &info = opInfo(op);
        switch (info.format) {
          case Format::Sys:
            if (!ops.empty())
                return fail(mnem + " takes no operands");
            return emitInst(op);
          case Format::R: {
            if (ops.size() != 3)
                return fail(mnem + " needs 3 operands");
            uint8_t rd, rs1, rs2;
            if (!parseRegOp(ops[0], rd) || !parseRegOp(ops[1], rs1) ||
                !parseRegOp(ops[2], rs2))
                return false;
            return emitInst(op, rd, rs1, rs2);
          }
          case Format::R2:
          case Format::Jr: {
            if (ops.size() != 1)
                return fail(mnem + " needs 1 operand");
            uint8_t rd;
            if (!parseRegOp(ops[0], rd))
                return false;
            return emitInst(op, rd);
          }
          case Format::I: {
            if (ops.size() != 3)
                return fail(mnem + " needs 3 operands");
            uint8_t rd, rs1;
            int64_t imm;
            if (!parseRegOp(ops[0], rd) || !parseRegOp(ops[1], rs1) ||
                !parseValue(ops[2], imm))
                return false;
            return emitInst(op, rd, rs1, 0, imm);
          }
          case Format::MemL:
          case Format::MemS: {
            if (ops.size() != 2)
                return fail(mnem + " needs 2 operands");
            uint8_t rd, base;
            int64_t off;
            if (!parseRegOp(ops[0], rd) || !parseMemOp(ops[1], base, off))
                return false;
            return emitInst(op, rd, base, 0, off);
          }
          case Format::Br: {
            if (ops.size() != 3)
                return fail(mnem + " needs 3 operands");
            uint8_t rs1, rs2;
            int64_t target;
            if (!parseRegOp(ops[0], rs1) || !parseRegOp(ops[1], rs2) ||
                !parseValue(ops[2], target))
                return false;
            DecodedInst d;
            d.op = op;
            d.rs1 = rs1;
            d.rs2 = rs2;
            d.imm = pass == 2 ? target - static_cast<int64_t>(pc) : 0;
            d.valid = true;
            // emitInst takes logical fields; Br encodes rs1/rs2 slots.
            if (pass == 1) {
                pc += 4;
                return true;
            }
            const int ib = IsaSpec::get(isa).brBits();
            const int64_t words = d.imm >> 2;
            if ((d.imm & 3) ||
                words < -(1ll << (ib - 1)) || words >= (1ll << (ib - 1)))
                return fail("branch target out of range");
            emitWord(encode(isa, d));
            return true;
          }
          case Format::J: {
            if (ops.size() != 1)
                return fail(mnem + " needs 1 operand");
            int64_t target;
            if (!parseValue(ops[0], target))
                return false;
            return emitInst(op, 0, 0, 0,
                            pass == 2 ? target - static_cast<int64_t>(pc)
                                      : 0);
          }
          case Format::Lui: {
            if (ops.size() != 2)
                return fail("lui needs 2 operands");
            uint8_t rd;
            int64_t imm;
            if (!parseRegOp(ops[0], rd) || !parseValue(ops[1], imm))
                return false;
            return emitInst(op, rd, 0, 0, imm);
          }
          case Format::Mov: {
            // movz rd, #imm [, lsl N]
            if (ops.size() != 2 && ops.size() != 3)
                return fail(mnem + " needs 2 or 3 operands");
            uint8_t rd;
            int64_t imm;
            if (!parseRegOp(ops[0], rd) || !parseValue(ops[1], imm))
                return false;
            uint8_t hw = 0;
            if (ops.size() == 3) {
                std::string shift = trim(ops[2]);
                if (shift.rfind("lsl", 0) != 0)
                    return fail("expected 'lsl N'");
                int64_t amount;
                if (!parseValue(shift.substr(3), amount))
                    return false;
                if (amount % 16 || amount < 0 || amount >= 64)
                    return fail("shift must be a multiple of 16");
                hw = static_cast<uint8_t>(amount / 16);
            }
            return emitInst(op, rd, 0, 0, imm, hw);
          }
        }
        return fail("unhandled format");
    }

    static const char *opTableName(Op op) { return opInfo(op).name; }

    const std::string &source;
    IsaId isa;
    uint32_t origin;
    int pass = 1;
    int lineNo = 0;
    uint32_t pc = 0;
    std::string error;
    std::map<std::string, uint32_t> labels;
    std::vector<Segment> segments;
    std::optional<Segment> curSeg;
};

} // namespace

AsmResult
assemble(const std::string &source, IsaId isa, uint32_t origin)
{
    Assembler as(source, isa, origin);
    return as.run();
}

} // namespace vstack
