/**
 * @file
 * The guest kernel.
 *
 * A miniature operating system for the guest machine, written in MCL
 * and compiled with the repo's own compiler, plus a hand-written
 * assembly boot/trap stub.  It provides the three syscalls the
 * workloads use (write / exit / detect) and models the two kernel
 * effects the paper's analysis depends on:
 *
 *  - kernel instructions execute in the same pipeline as the user
 *    program (visible to PVF and AVF, invisible to SVF);
 *  - write() payloads are staged in a kernel I/O buffer and handed to
 *    the DMA engine, creating the "Escaped" fault window.
 */
#ifndef VSTACK_KERNEL_KERNEL_H
#define VSTACK_KERNEL_KERNEL_H

#include "isa/program.h"

namespace vstack
{

/** MCL source of the kernel body (for inspection/tests). */
const std::string &kernelSource();

/**
 * Build the kernel image for an ISA: boot stub at BOOT_VECTOR, trap
 * stub at TRAP_VECTOR, compiled kernel functions at KERNEL_FUNCS,
 * kernel data after KSAVE.  The image entry is the boot vector.
 */
Program buildKernel(IsaId isa);

/**
 * Merge a kernel and a user image into a bootable system image
 * (entry = boot vector).
 */
Program buildSystemImage(const Program &kernel, const Program &user);

} // namespace vstack

#endif // VSTACK_KERNEL_KERNEL_H
