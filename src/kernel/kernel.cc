#include "kernel.h"

#include "compiler/compile.h"
#include "compiler/irgen.h"
#include "compiler/parser.h"
#include "isa/assembler.h"
#include "machine/memmap.h"
#include "support/logging.h"

namespace vstack
{

const std::string &
kernelSource()
{
    // Addresses are spelled as literals because MCL has no constant
    // imports; they must match machine/memmap.h (checked by tests).
    static const std::string src = R"MCL(
// ---- vstack guest kernel --------------------------------------------
// Syscall dispatch.  Called from the trap stub with the user's a0-a2
// in args a/b/c-slots and the syscall number in nr.

var io_off: int;

fn k_copy_to_iobuf(src: int, len: int): int {
    if (io_off + len > 65536) { io_off = 0; }
    var dst: int = 393216 + io_off;      // 0x60000 KERNEL_IOBUF
    var d: byte* = dst as byte*;
    var s: byte* = src as byte*;
    var i: int = 0;
    // word-at-a-time fast path when source and staging cursor agree
    // on alignment (the staging cursor is always 16-aligned)
    var elem: int = ((0 as int*) + 1) as int;   // register width in bytes
    if ((src & (elem - 1)) == 0) {
        var sw: int* = src as int*;
        var dw: int* = dst as int*;
        var k: int = 0;
        while (i + elem <= len) {
            dw[k] = sw[k];
            k = k + 1;
            i = i + elem;
        }
    }
    while (i < len) {
        d[i] = s[i];
        i = i + 1;
    }
    io_off = io_off + len;
    // keep the staging cursor word-aligned for the next payload
    io_off = (io_off + 15) & (0 - 16);
    // the DMA engine is not coherent with the L1: clean the staged
    // lines out to the L2 before handing them over
    var p: int = dst & (0 - 64);
    while (p < dst + len) {
        __dcclean(p);
        p = p + 64;
    }
    return dst;
}

fn k_sys_write(buf: int, len: int): int {
    if (len < 0) { return 0 - 1; }
    if (len == 0) { return 0; }
    if (len > 65536) { return 0 - 1; }
    // user window check: [0x100000, 0x1000000)
    if (__ultu(buf, 1048576)) { return 0 - 1; }
    if (__ultu(16777216, buf + len)) { return 0 - 1; }
    var staged: int = k_copy_to_iobuf(buf, len);
    // program the DMA output engine
    var r: int* = 4293918720 as int*;    // 0xfff00000 DMA_SRC
    *r = staged;
    r = 4293918736 as int*;              // 0xfff00010 DMA_LEN
    *r = len;
    r = 4293918752 as int*;              // 0xfff00020 DMA_DOORBELL
    *r = 1;
    return len;
}

fn k_sys_exit(code: int): int {
    var r: int* = 4293918768 as int*;    // 0xfff00030 EXIT_CODE
    *r = code;
    return 0;
}

fn k_sys_detect(site: int): int {
    var r: int* = 4293918784 as int*;    // 0xfff00040 DETECT_CODE
    *r = site;
    return 0;
}

fn k_syscall(a: int, b: int, c: int, nr: int): int {
    if (nr == 1) { return k_sys_write(a, b); }
    if (nr == 2) { return k_sys_exit(a); }
    if (nr == 3) { return k_sys_detect(a); }
    // unknown syscall: fail loudly but without crashing the machine
    return 0 - 38;
}
)MCL";
    return src;
}

namespace
{

std::string
stubSource(IsaId isa)
{
    const IsaSpec &spec = IsaSpec::get(isa);
    const int W = spec.xlen / 8;
    const std::string kreg = spec.regName(spec.kreg);
    const std::string nr = spec.regName(spec.syscallNr);
    const std::string a3 = spec.regName(spec.argRegs[3]);
    const std::string t0 = spec.regName(spec.tempRegs[0]);

    std::string s;
    s += strprintf(".isa %s\n", isaName(isa));
    // Boot: set a kernel stack, point EPC at the user entry, drop to
    // user mode.
    s += strprintf(".org 0x%x\n", memmap::BOOT_VECTOR);
    s += "_kboot:\n";
    s += strprintf("    li sp, #0x%x\n", memmap::KERNEL_STACK_TOP);
    s += strprintf("    li %s, #0x%x\n", t0.c_str(), memmap::USER_TEXT);
    s += strprintf("    mtepc %s\n", t0.c_str());
    s += "    eret\n";
    // Trap: bank user sp/lr, switch stacks, dispatch, restore, return.
    s += strprintf(".org 0x%x\n", memmap::TRAP_VECTOR);
    s += "_ktrap:\n";
    s += strprintf("    li %s, #0x%x\n", kreg.c_str(), memmap::KSAVE);
    s += strprintf("    stx sp, [%s, #0]\n", kreg.c_str());
    s += strprintf("    stx lr, [%s, #%d]\n", kreg.c_str(), W);
    s += strprintf("    li sp, #0x%x\n", memmap::KERNEL_STACK_TOP);
    s += strprintf("    mov %s, %s\n", a3.c_str(), nr.c_str());
    s += "    bl k_syscall\n";
    s += strprintf("    li %s, #0x%x\n", kreg.c_str(), memmap::KSAVE);
    s += strprintf("    ldx sp, [%s, #0]\n", kreg.c_str());
    s += strprintf("    ldx lr, [%s, #%d]\n", kreg.c_str(), W);
    s += "    eret\n";
    return s;
}

} // namespace

Program
buildKernel(IsaId isa)
{
    const IsaSpec &spec = IsaSpec::get(isa);

    mcl::ParseResult pr = mcl::parse(kernelSource());
    if (!pr.ok)
        fatal("kernel parse failed: %s", pr.error.c_str());
    mcl::IrGenResult ir = mcl::generateIr(pr.module, spec.xlen);
    if (!ir.ok)
        fatal("kernel irgen failed: %s", ir.error.c_str());
    // Kernel globals live after the KSAVE scratch slots.
    mcl::BuildResult body = mcl::buildKernelFromIr(
        ir.module, isa, memmap::KERNEL_FUNCS, memmap::KSAVE + 32);
    if (!body.ok)
        fatal("kernel build failed: %s", body.error.c_str());

    // Assemble stub + compiled body as one unit so the stub's
    // `bl k_syscall` resolves against the compiled functions.
    const std::string full = stubSource(isa) + body.asmText;
    AsmResult asmRes = assemble(full, isa, memmap::BOOT_VECTOR);
    if (!asmRes.ok)
        fatal("kernel assembly failed: %s", asmRes.error.c_str());

    Program kernel = std::move(asmRes.program);
    kernel.entry = memmap::BOOT_VECTOR;

    // The trap stub must fit in [TRAP_VECTOR, KERNEL_FUNCS).
    for (const auto &seg : kernel.segments) {
        if (seg.addr >= memmap::TRAP_VECTOR &&
            seg.addr < memmap::KERNEL_FUNCS &&
            seg.addr + seg.bytes.size() > memmap::KERNEL_FUNCS) {
            fatal("kernel trap stub overflows into KERNEL_FUNCS");
        }
    }
    return kernel;
}

Program
buildSystemImage(const Program &kernel, const Program &user)
{
    Program sys = kernel;
    sys.merge(user);
    sys.entry = memmap::BOOT_VECTOR;
    return sys;
}

} // namespace vstack
