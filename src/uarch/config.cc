#include "config.h"

#include <cmath>

#include "support/logging.h"

namespace vstack
{

int
CacheGeom::tagBits() const
{
    // 32-bit physical address minus set index and line offset bits.
    int setBits = 0;
    uint32_t sets = numSets();
    while (sets > 1) {
        sets >>= 1;
        ++setBits;
    }
    return 32 - setBits - 6; // 6 = log2(64-byte line)
}

const std::vector<CoreConfig> &
allCores()
{
    static const std::vector<CoreConfig> cores = [] {
        std::vector<CoreConfig> v;

        // ax9 — Cortex-A9 analog: narrow av32 core, small window.
        CoreConfig a9;
        a9.name = "ax9";
        a9.isa = IsaId::Av32;
        a9.fetchWidth = a9.renameWidth = a9.issueWidth = a9.commitWidth = 2;
        a9.robSize = 40;
        a9.iqSize = 20;
        a9.lqSize = 8;
        a9.sqSize = 8;
        a9.numPhysRegs = 56;
        a9.mulLatency = 4;
        a9.divLatency = 19;
        a9.bimodalEntries = 1024;
        a9.btbEntries = 256;
        a9.rasEntries = 8;
        a9.mispredictPenalty = 8;
        a9.l1i = {4, 2, 1};
        a9.l1d = {2, 2, 1};
        a9.l2 = {16, 4, 8};
        a9.memLatency = 80;
        v.push_back(a9);

        // ax15 — Cortex-A15 analog: wide av32 core.
        CoreConfig a15;
        a15.name = "ax15";
        a15.isa = IsaId::Av32;
        a15.fetchWidth = a15.renameWidth = a15.issueWidth =
            a15.commitWidth = 3;
        a15.robSize = 60;
        a15.iqSize = 40;
        a15.lqSize = 16;
        a15.sqSize = 16;
        a15.numPhysRegs = 90;
        a15.mulLatency = 4;
        a15.divLatency = 19;
        a15.bimodalEntries = 4096;
        a15.btbEntries = 512;
        a15.rasEntries = 16;
        a15.mispredictPenalty = 12;
        a15.l1i = {4, 4, 2};
        a15.l1d = {2, 4, 2};
        a15.l2 = {32, 8, 10};
        a15.memLatency = 90;
        v.push_back(a15);

        // ax57 — Cortex-A57 analog: av64, big window.
        CoreConfig a57;
        a57.name = "ax57";
        a57.isa = IsaId::Av64;
        a57.fetchWidth = a57.renameWidth = a57.issueWidth =
            a57.commitWidth = 3;
        a57.robSize = 128;
        a57.iqSize = 48;
        a57.lqSize = 16;
        a57.sqSize = 16;
        a57.numPhysRegs = 128;
        a57.mulLatency = 3;
        a57.divLatency = 12;
        a57.bimodalEntries = 4096;
        a57.btbEntries = 1024;
        a57.rasEntries = 16;
        a57.mispredictPenalty = 12;
        a57.l1i = {6, 3, 2};
        a57.l1d = {2, 2, 2};
        a57.l2 = {32, 16, 12};
        a57.memLatency = 100;
        v.push_back(a57);

        // ax72 — Cortex-A72 analog: av64, biggest core of the set.
        CoreConfig a72;
        a72.name = "ax72";
        a72.isa = IsaId::Av64;
        a72.fetchWidth = a72.renameWidth = a72.issueWidth =
            a72.commitWidth = 3;
        a72.robSize = 128;
        a72.iqSize = 64;
        a72.lqSize = 24;
        a72.sqSize = 24;
        a72.numPhysRegs = 160;
        a72.mulLatency = 3;
        a72.divLatency = 12;
        a72.bimodalEntries = 8192;
        a72.btbEntries = 2048;
        a72.rasEntries = 16;
        a72.mispredictPenalty = 10;
        a72.l1i = {6, 3, 2};
        a72.l1d = {2, 2, 2};
        a72.l2 = {64, 16, 14};
        a72.memLatency = 100;
        v.push_back(a72);

        return v;
    }();
    return cores;
}

const CoreConfig &
coreByName(const std::string &name)
{
    for (const CoreConfig &c : allCores()) {
        if (c.name == name)
            return c;
    }
    fatal("unknown core '%s'", name.c_str());
}

} // namespace vstack
