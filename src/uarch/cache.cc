#include "cache.h"

#include <cassert>
#include <cstring>

namespace vstack
{

Cache::Cache(const CacheGeom &geom, MemLevel level)
    : sets(geom.numSets()), ways(geom.assoc), lat(geom.latency),
      tagBitCount(geom.tagBits()), lvl(level), bits(geom.totalBits())
{
    setBits = 0;
    uint32_t s = sets;
    while (s > 1) {
        s >>= 1;
        ++setBits;
    }
    assert(sets == (1u << setBits) && "set count must be a power of two");
    lines.resize(static_cast<size_t>(sets) * ways);
}

void
Cache::reset()
{
    for (Line &l : lines) {
        l.valid = false;
        l.dirty = false;
        l.tag = 0;
        l.lastUse = 0;
        // Also zero the data bits: they are injection-reachable (a
        // valid-bit flip conjures whatever the array holds), so a cold
        // run's stale contents must not depend on what the previous
        // sample in this worker left behind.
        std::memset(l.data, 0, lineSize);
    }
    clock = 0;
}

int
Cache::findWay(uint32_t addr) const
{
    const uint32_t set = setOf(addr);
    const uint32_t tag = tagOf(addr);
    for (int w = 0; w < ways; ++w) {
        const Line &l = line(set, w);
        if (l.valid && l.tag == tag)
            return w;
    }
    return -1;
}

int
Cache::victimWay(uint32_t addr) const
{
    const uint32_t set = setOf(addr);
    int victim = 0;
    uint64_t oldest = UINT64_MAX;
    for (int w = 0; w < ways; ++w) {
        const Line &l = line(set, w);
        if (!l.valid)
            return w;
        if (l.lastUse < oldest) {
            oldest = l.lastUse;
            victim = w;
        }
    }
    return victim;
}

void
Cache::flipBit(uint64_t bit, TaintTracker &tracker)
{
    const uint64_t bitsPerLine = lineSize * 8 + tagBitCount + 2;
    const uint64_t lineIdx = bit / bitsPerLine;
    const uint64_t offset = bit % bitsPerLine;
    assert(lineIdx < lines.size());
    Line &l = lines[lineIdx];
    const uint32_t set = static_cast<uint32_t>(lineIdx) /
                         static_cast<uint32_t>(ways);
    const uint32_t addr = lineAddr(set, l.tag);

    if (offset < lineSize * 8) {
        // Data bit.
        const uint32_t byte = static_cast<uint32_t>(offset / 8);
        const int bitInByte = static_cast<int>(offset % 8);
        l.data[byte] ^= static_cast<uint8_t>(1u << bitInByte);
        if (l.valid)
            tracker.addData(lvl, addr + byte, bitInByte);
        return;
    }
    const uint64_t meta = offset - lineSize * 8;
    if (meta < static_cast<uint64_t>(tagBitCount)) {
        // Tag bit: the line now answers for an aliased address; if it
        // was dirty, the original address's latest data is lost.
        const bool wasValid = l.valid;
        const bool wasDirty = l.dirty;
        l.tag ^= 1u << meta;
        if (wasValid) {
            const uint32_t aliasAddr = lineAddr(set, l.tag);
            tracker.addMeta(lvl, aliasAddr, lineSize);
            if (wasDirty && lvl != MemLevel::Mem) {
                tracker.addMeta(lvl == MemLevel::L2 ? MemLevel::Mem
                                                    : MemLevel::L2,
                                addr, lineSize);
            }
        }
        return;
    }
    if (meta == static_cast<uint64_t>(tagBitCount)) {
        // Valid bit.
        if (l.valid) {
            l.valid = false;
            if (l.dirty) {
                // Lost dirty line: lower level serves stale data.
                tracker.addMeta(lvl == MemLevel::L2 ? MemLevel::Mem
                                                    : MemLevel::L2,
                                addr, lineSize);
            }
        } else {
            // A garbage line appears.
            l.valid = true;
            tracker.addMeta(lvl, lineAddr(set, l.tag), lineSize);
        }
        return;
    }
    // Dirty bit.
    if (!l.valid)
        return;
    if (l.dirty) {
        // dirty->clean: the eventual eviction silently drops the
        // modified data, exposing the stale copy below.
        l.dirty = false;
        tracker.addMeta(lvl == MemLevel::L2 ? MemLevel::Mem : MemLevel::L2,
                        addr, lineSize);
    } else {
        // clean->dirty: eviction writes back identical bytes.
        l.dirty = true;
    }
}

int
Cache::bitValue(uint64_t bit) const
{
    const uint64_t bitsPerLine = lineSize * 8 + tagBitCount + 2;
    const uint64_t lineIdx = bit / bitsPerLine;
    const uint64_t offset = bit % bitsPerLine;
    assert(lineIdx < lines.size());
    const Line &l = lines[lineIdx];
    if (offset < lineSize * 8)
        return (l.data[offset / 8] >> (offset % 8)) & 1;
    const uint64_t meta = offset - lineSize * 8;
    if (meta < static_cast<uint64_t>(tagBitCount))
        return (l.tag >> meta) & 1;
    if (meta == static_cast<uint64_t>(tagBitCount))
        return l.valid ? 1 : 0;
    return l.dirty ? 1 : 0;
}

// ---- MemHierarchy ------------------------------------------------------

MemHierarchy::MemHierarchy(const CoreConfig &cfg, PhysMem &mem,
                           TaintTracker &tracker)
    : cfg(cfg), mem(mem), tracker(tracker), l1i(cfg.l1i, MemLevel::L1I),
      l1d(cfg.l1d, MemLevel::L1D), l2(cfg.l2, MemLevel::L2)
{
}

void
MemHierarchy::reset()
{
    l1i.reset();
    l1d.reset();
    l2.reset();
}

int
MemHierarchy::readLineBelow(Cache &c, uint32_t addr, uint8_t *out)
{
    const uint32_t lineA = addr & ~(Cache::lineSize - 1);
    if (c.level() == MemLevel::L2) {
        if (memmap::inRam(lineA, Cache::lineSize))
            mem.readBlock(lineA, out, Cache::lineSize);
        else
            std::memset(out, 0, Cache::lineSize);
        tracker.onCopyUp(MemLevel::Mem, MemLevel::L2, lineA,
                         Cache::lineSize);
        return cfg.memLatency;
    }
    // L1 fills from L2.
    auto [lat, way] = ensureLine(l2, lineA);
    Cache::Line &l = l2.line(l2.setOf(lineA), way);
    std::memcpy(out, l.data, Cache::lineSize);
    tracker.onCopyUp(MemLevel::L2, c.level(), lineA, Cache::lineSize);
    return lat;
}

void
MemHierarchy::installBelow(Cache &c, uint32_t addr, const uint8_t *data,
                           bool moveTaint)
{
    const uint32_t lineA = addr & ~(Cache::lineSize - 1);
    if (c.level() == MemLevel::L2) {
        if (memmap::inRam(lineA, Cache::lineSize))
            mem.writeBlock(lineA, data, Cache::lineSize);
        // Misdirected write-backs outside RAM are dropped.
        tracker.onWriteback(MemLevel::L2, MemLevel::Mem, lineA, lineA,
                            Cache::lineSize, moveTaint);
        return;
    }
    // L1 victim goes into L2 (allocate-on-writeback).
    auto [lat, way] = ensureLine(l2, lineA);
    (void)lat;
    Cache::Line &l = l2.line(l2.setOf(lineA), way);
    std::memcpy(l.data, data, Cache::lineSize);
    l.dirty = true;
    tracker.onWriteback(c.level(), MemLevel::L2, lineA, lineA,
                        Cache::lineSize, moveTaint);
}

void
MemHierarchy::evict(Cache &c, uint32_t set, int way)
{
    Cache::Line &l = c.line(set, way);
    if (!l.valid)
        return;
    const uint32_t addr = c.lineAddr(set, l.tag);
    if (l.dirty) {
        installBelow(c, addr, l.data);
    } else {
        tracker.onDiscard(c.level(), addr, Cache::lineSize);
    }
    l.valid = false;
    l.dirty = false;
}

std::pair<int, int>
MemHierarchy::ensureLine(Cache &c, uint32_t addr)
{
    int way = c.findWay(addr);
    const uint32_t set = c.setOf(addr);
    if (way >= 0) {
        c.touch(set, way);
        return {c.latency(), way};
    }
    way = c.victimWay(addr);
    evict(c, set, way);

    Cache::Line &l = c.line(set, way);
    int lat = c.latency() + readLineBelow(c, addr & ~(Cache::lineSize - 1),
                                          l.data);
    l.tag = c.tagOf(addr);
    l.valid = true;
    l.dirty = false;
    c.touch(set, way);
    return {lat, way};
}

int
MemHierarchy::read(uint32_t addr, unsigned bytes, uint64_t &val,
                   uint64_t cycle, std::optional<Fpm> *fpm)
{
    auto [lat, way] = ensureLine(l1d, addr);
    Cache::Line &l = l1d.line(l1d.setOf(addr), way);
    const uint32_t off = addr & (Cache::lineSize - 1);
    assert(off + bytes <= Cache::lineSize);
    uint64_t v = 0;
    std::memcpy(&v, l.data + off, bytes);
    val = v;
    auto hit = tracker.onConsume(MemLevel::L1D, addr, bytes,
                                 ConsumeKind::Load, 0, cycle);
    if (fpm && hit)
        *fpm = hit;
    return lat;
}

int
MemHierarchy::write(uint32_t addr, unsigned bytes, uint64_t val,
                    uint64_t cycle)
{
    (void)cycle;
    auto [lat, way] = ensureLine(l1d, addr);
    Cache::Line &l = l1d.line(l1d.setOf(addr), way);
    const uint32_t off = addr & (Cache::lineSize - 1);
    assert(off + bytes <= Cache::lineSize);
    std::memcpy(l.data + off, &val, bytes);
    l.dirty = true;
    tracker.onOverwrite(MemLevel::L1D, addr, bytes);
    return lat;
}

int
MemHierarchy::fetch(uint32_t addr, uint32_t &word, uint64_t cycle,
                    std::optional<Fpm> *fpm)
{
    auto [lat, way] = ensureLine(l1i, addr);
    Cache::Line &l = l1i.line(l1i.setOf(addr), way);
    const uint32_t off = addr & (Cache::lineSize - 1);
    assert(off + 4 <= Cache::lineSize);
    uint32_t w = 0;
    std::memcpy(&w, l.data + off, 4);
    word = w;
    auto hit = tracker.onConsume(MemLevel::L1I, addr, 4, ConsumeKind::Fetch,
                                 w, cycle);
    if (fpm && hit)
        *fpm = hit;
    return lat;
}

void
MemHierarchy::cleanLine(uint32_t addr)
{
    const int way = l1d.findWay(addr);
    if (way < 0)
        return;
    Cache::Line &l = l1d.line(l1d.setOf(addr), way);
    if (!l.dirty)
        return;
    const uint32_t lineA = l1d.lineAddr(l1d.setOf(addr), l.tag);
    // The line stays valid (and clean) in the L1: copy, don't move.
    installBelow(l1d, lineA, l.data, /*moveTaint=*/false);
    l.dirty = false;
}

void
MemHierarchy::snoop(uint32_t addr, uint8_t *dst, size_t n, uint64_t cycle)
{
    for (size_t i = 0; i < n;) {
        const uint32_t a = addr + static_cast<uint32_t>(i);
        const uint32_t off = a & (Cache::lineSize - 1);
        const size_t chunk =
            std::min<size_t>(n - i, Cache::lineSize - off);

        int way;
        if ((way = l2.findWay(a)) >= 0) {
            Cache::Line &l = l2.line(l2.setOf(a), way);
            std::memcpy(dst + i, l.data + off, chunk);
            tracker.onConsume(MemLevel::L2, a,
                              static_cast<uint32_t>(chunk),
                              ConsumeKind::Dma, 0, cycle);
        } else if (memmap::inRam(a, static_cast<unsigned>(chunk))) {
            mem.readBlock(a, dst + i, chunk);
            tracker.onConsume(MemLevel::Mem, a,
                              static_cast<uint32_t>(chunk),
                              ConsumeKind::Dma, 0, cycle);
        } else {
            std::memset(dst + i, 0, chunk);
        }
        i += chunk;
    }
}

void
Cache::saveState(snap::ByteSink &s, bool liveOnly) const
{
    s.u64(clock);
    if (liveOnly) {
        // Valid lines only, keyed by array index so position matters.
        for (uint32_t i = 0; i < lines.size(); ++i) {
            const Line &l = lines[i];
            if (!l.valid)
                continue;
            s.u32(i);
            s.u32(l.tag);
            s.b(l.dirty);
            s.u64(l.lastUse);
            s.bytes(l.data, lineSize);
        }
        s.u32(UINT32_MAX); // terminator
        return;
    }
    for (const Line &l : lines) {
        s.u32(l.tag);
        s.b(l.valid);
        s.b(l.dirty);
        s.u64(l.lastUse);
        s.bytes(l.data, lineSize);
    }
}

void
Cache::loadState(snap::ByteSource &s)
{
    clock = s.u64();
    for (Line &l : lines) {
        l.tag = s.u32();
        l.valid = s.b();
        l.dirty = s.b();
        l.lastUse = s.u64();
        s.bytes(l.data, lineSize);
    }
}

} // namespace vstack
