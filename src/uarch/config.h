/**
 * @file
 * Core configurations: the four simulated microarchitectures.
 *
 * Cache capacities are scaled down ~8x from the silicon parts to
 * match the scaled-down workload footprints (DESIGN.md, Section 2);
 * the cross-core size ordering of every structure is preserved.
 *
 * The presets mirror the paper's Table II axis — two av32 cores
 * (ax9/ax15, the Cortex-A9/A15 analogs) and two av64 cores
 * (ax57/ax72, the Cortex-A57/A72 analogs) — differing in pipeline
 * widths, window sizes, physical register count, LSQ depth, and cache
 * geometry.  The same workload therefore exercises each core with
 * different occupancy and utilisation patterns, which is what makes
 * the cross-layer AVF microarchitecture-dependent.
 */
#ifndef VSTACK_UARCH_CONFIG_H
#define VSTACK_UARCH_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace vstack
{

/** Geometry and latency of one cache. */
struct CacheGeom
{
    uint32_t sizeKB;
    int assoc;
    int latency; ///< hit latency in cycles
    static constexpr uint32_t lineSize = 64;

    uint32_t numLines() const { return sizeKB * 1024 / lineSize; }
    uint32_t numSets() const
    {
        return numLines() / static_cast<uint32_t>(assoc);
    }
    /** Tag width for a 32-bit physical address space. */
    int tagBits() const;
    /** Total SRAM bits (data + tag + valid + dirty per line). */
    uint64_t totalBits() const
    {
        return static_cast<uint64_t>(numLines()) *
               (lineSize * 8 + tagBits() + 2);
    }
};

/** Full configuration of a simulated core. */
struct CoreConfig
{
    std::string name;
    IsaId isa = IsaId::Av64;

    int fetchWidth = 3;
    int renameWidth = 3;
    int issueWidth = 3;
    int commitWidth = 3;

    int robSize = 128;
    int iqSize = 48;
    int lqSize = 16;
    int sqSize = 16;
    int numPhysRegs = 128;

    int mulLatency = 3;
    int divLatency = 12;

    int bimodalEntries = 4096;
    int btbEntries = 1024;
    int rasEntries = 16;
    int mispredictPenalty = 8; ///< front-end refill bubble

    CacheGeom l1i{32, 4, 2};
    CacheGeom l1d{32, 4, 2};
    CacheGeom l2{1024, 16, 12};
    int memLatency = 100;

    uint64_t dmaDelay = 30000; ///< cycles from doorbell to DMA pull

    /** Bits in the physical integer register file. */
    uint64_t rfBits() const
    {
        return static_cast<uint64_t>(numPhysRegs) *
               IsaSpec::get(isa).xlen;
    }
    /** Bits in the LSQ (address + data per entry). */
    uint64_t lsqBits() const
    {
        return static_cast<uint64_t>(lqSize + sqSize) *
               (32 + IsaSpec::get(isa).xlen);
    }
};

/** The four paper-analog cores: ax9, ax15 (av32); ax57, ax72 (av64). */
const std::vector<CoreConfig> &allCores();

/** Preset lookup by name; fatal() if unknown. */
const CoreConfig &coreByName(const std::string &name);

} // namespace vstack

#endif // VSTACK_UARCH_CONFIG_H
