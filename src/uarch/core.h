/**
 * @file
 * Cycle-level out-of-order core: the GeFIN-analog injection vehicle.
 *
 * The pipeline models the structures whose bits the paper injects
 * into — physical register file, load/store queues, and the cache
 * hierarchy — with real stored state, plus the machinery that shapes
 * their occupancy and lifetimes: fetch with branch prediction
 * (bimodal + BTB + RAS), walk-based rename with a free list, an
 * age-ordered issue queue, store-to-load forwarding with conservative
 * memory disambiguation, a reorder buffer with in-order commit,
 * serializing system instructions, and squash-based misprediction
 * recovery.  Speculative faults that get squashed are therefore
 * masked naturally, stores expose their queue residency from execute
 * to commit, and renamed registers are vulnerable exactly from write
 * to last-read-or-free.
 */
#ifndef VSTACK_UARCH_CORE_H
#define VSTACK_UARCH_CORE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "isa/program.h"
#include "isa/semantics.h"
#include "machine/devices.h"
#include "machine/outcome.h"
#include "machine/physmem.h"
#include "uarch/cache.h"
#include "uarch/config.h"
#include "uarch/faultsite.h"
#include "uarch/taint.h"

namespace vstack
{

/** Summary of one cycle-level run. */
struct UarchRunResult
{
    /** How a traced run ended relative to the golden trajectory. */
    enum class Reconverge : uint8_t {
        NotTaken, ///< ran to its natural end (no early termination)
        Clean,    ///< digest reconverged, output prefix matched golden
        Diverged, ///< digest reconverged after the output diverged
    };

    StopReason stop = StopReason::Running;
    std::string excMsg;
    uint64_t cycles = 0;
    uint64_t insts = 0;       ///< committed instructions
    uint64_t kernelInsts = 0; ///< committed in kernel mode
    uint64_t kernelCycles = 0;
    DeviceOutput output;
    Visibility visibility; ///< HVF record (valid for injection runs)
    /** Early-termination diagnostics; never part of campaign records
     *  (sample payloads stay byte-identical to cold runs). */
    Reconverge reconverge = Reconverge::NotTaken;

    double ipc() const
    {
        return cycles ? static_cast<double>(insts) / cycles : 0.0;
    }
};

/**
 * Opaque full-state snapshot of a CycleSim (defined in core.cc).
 * Holds the serialized pipeline/cache/device state plus a
 * copy-on-write image of guest RAM; snapshots taken back-to-back in
 * one run share unmodified memory pages.
 */
struct UarchSnapshot;

/**
 * Golden-run trace for one (core, workload): evenly spaced full
 * checkpoints for fast-forward plus a denser grid of CRC-32C state
 * digests and output-length marks for early termination.
 */
struct UarchTrace
{
    struct Checkpoint
    {
        uint64_t cycle = 0;
        std::shared_ptr<const UarchSnapshot> state;
    };

    /** Digest cadence in cycles (0 = trace not recorded). */
    uint64_t interval = 0;

    /** Complete golden-run result; the synthesized tail of an
     *  early-stopped run is spliced out of it. */
    UarchRunResult final;

    /** Grid entry k describes end-of-cycle (k+1)*interval. */
    std::vector<uint32_t> digests;
    std::vector<uint64_t> dmaLens;
    std::vector<uint64_t> consoleLens;

    /** Ascending by cycle; [0] is always cycle 0 (right after load),
     *  so every injection has a checkpoint strictly below it. */
    std::vector<Checkpoint> checkpoints;

    bool recorded() const { return interval != 0; }

    /** Latest checkpoint strictly below `cycle` (restoring at the
     *  injection cycle itself would apply the flip one cycle late). */
    const Checkpoint &nearestBelow(uint64_t cycle) const;
};

/** Marginal in-memory size of a snapshot: serialized state plus the
 *  pages it does not share with its predecessor (bench telemetry). */
size_t uarchSnapshotBytes(const UarchSnapshot &s);

/** Perf/side statistics exposed for tests and the config bench. */
struct UarchStats
{
    uint64_t branches = 0;
    uint64_t mispredicts = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t squashedUops = 0;
    /** ACE-lite accounting: bit-cycles during which a physical
     *  register held a value that was still going to be read
     *  (write -> last architectural read).  AVF_ACE(RF) =
     *  rfAceBitCycles / (rfBits * cycles); analytically derived, and
     *  — as the literature says — pessimistic vs injection. */
    uint64_t rfAceBitCycles = 0;
};

/** The cycle-level simulator for one core configuration. */
class CycleSim
{
  public:
    explicit CycleSim(const CoreConfig &cfg);
    ~CycleSim();

    /** Load a bootable system image and reset all state. */
    void load(const Program &image);

    /**
     * Schedule a single-bit flip; applied at the start of the given
     * cycle.  Call after load(), before run().
     */
    void scheduleInjection(const FaultSite &site);

    /** Run to completion (exit/crash/watchdog at maxCycles). */
    UarchRunResult run(uint64_t maxCycles);

    /**
     * Run while recording a golden trace: a state digest every
     * `digestInterval` cycles, a full checkpoint every
     * `digestsPerCheckpoint` digests (plus one at cycle 0), and the
     * final output streams.  Call on a freshly load()ed simulator.
     */
    UarchRunResult runRecording(uint64_t maxCycles, UarchTrace &trace,
                                uint64_t digestInterval,
                                unsigned digestsPerCheckpoint);

    /**
     * Run an injection against a recorded golden trace.  When
     * `earlyStop`, the run terminates as soon as its state digest
     * matches the golden digest for the same cycle, no fault bits
     * remain latent in any injectable structure, and the synthesized
     * tail is provably exact; the returned result is bit-identical
     * (in every campaign-relevant field) to running to completion.
     * Early termination is skipped when maxCycles could cut the run
     * short of the golden end (tight watchdogs keep cold semantics).
     */
    UarchRunResult runWithTrace(uint64_t maxCycles, const UarchTrace &trace,
                                bool earlyStop);

    /**
     * Capture the complete simulator state (pipeline, caches, devices,
     * guest RAM).  `prev` (a snapshot taken earlier in the SAME run)
     * enables page sharing for unmodified memory.
     */
    std::shared_ptr<const UarchSnapshot> snapshot(
        const UarchSnapshot *prev = nullptr);

    /**
     * Restore a snapshot taken on an identically configured core;
     * replaces load() for fast-forwarded runs.  Restoring repeatedly
     * on one simulator only copies pages that actually changed.
     */
    void restore(std::shared_ptr<const UarchSnapshot> snap);

    /** Bit-space size of an injectable structure on this core. */
    uint64_t structureBits(Structure s) const;

    const CoreConfig &config() const { return cfg; }
    const UarchStats &stats() const { return stats_; }

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
    const CoreConfig cfg;
    UarchStats stats_;
};

} // namespace vstack

#endif // VSTACK_UARCH_CORE_H
