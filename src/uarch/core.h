/**
 * @file
 * Cycle-level out-of-order core: the GeFIN-analog injection vehicle.
 *
 * The pipeline models the structures whose bits the paper injects
 * into — physical register file, load/store queues, and the cache
 * hierarchy — with real stored state, plus the machinery that shapes
 * their occupancy and lifetimes: fetch with branch prediction
 * (bimodal + BTB + RAS), walk-based rename with a free list, an
 * age-ordered issue queue, store-to-load forwarding with conservative
 * memory disambiguation, a reorder buffer with in-order commit,
 * serializing system instructions, and squash-based misprediction
 * recovery.  Speculative faults that get squashed are therefore
 * masked naturally, stores expose their queue residency from execute
 * to commit, and renamed registers are vulnerable exactly from write
 * to last-read-or-free.
 */
#ifndef VSTACK_UARCH_CORE_H
#define VSTACK_UARCH_CORE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "isa/program.h"
#include "isa/semantics.h"
#include "machine/devices.h"
#include "machine/outcome.h"
#include "machine/physmem.h"
#include "uarch/cache.h"
#include "uarch/config.h"
#include "uarch/faultsite.h"
#include "uarch/taint.h"

namespace vstack
{

/** Summary of one cycle-level run. */
struct UarchRunResult
{
    StopReason stop = StopReason::Running;
    std::string excMsg;
    uint64_t cycles = 0;
    uint64_t insts = 0;       ///< committed instructions
    uint64_t kernelInsts = 0; ///< committed in kernel mode
    uint64_t kernelCycles = 0;
    DeviceOutput output;
    Visibility visibility; ///< HVF record (valid for injection runs)

    double ipc() const
    {
        return cycles ? static_cast<double>(insts) / cycles : 0.0;
    }
};

/** Perf/side statistics exposed for tests and the config bench. */
struct UarchStats
{
    uint64_t branches = 0;
    uint64_t mispredicts = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t squashedUops = 0;
    /** ACE-lite accounting: bit-cycles during which a physical
     *  register held a value that was still going to be read
     *  (write -> last architectural read).  AVF_ACE(RF) =
     *  rfAceBitCycles / (rfBits * cycles); analytically derived, and
     *  — as the literature says — pessimistic vs injection. */
    uint64_t rfAceBitCycles = 0;
};

/** The cycle-level simulator for one core configuration. */
class CycleSim
{
  public:
    explicit CycleSim(const CoreConfig &cfg);
    ~CycleSim();

    /** Load a bootable system image and reset all state. */
    void load(const Program &image);

    /**
     * Schedule a single-bit flip; applied at the start of the given
     * cycle.  Call after load(), before run().
     */
    void scheduleInjection(const FaultSite &site);

    /** Run to completion (exit/crash/watchdog at maxCycles). */
    UarchRunResult run(uint64_t maxCycles);

    /** Bit-space size of an injectable structure on this core. */
    uint64_t structureBits(Structure s) const;

    const CoreConfig &config() const { return cfg; }
    const UarchStats &stats() const { return stats_; }

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
    const CoreConfig cfg;
    UarchStats stats_;
};

} // namespace vstack

#endif // VSTACK_UARCH_CORE_H
