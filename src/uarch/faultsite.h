/**
 * @file
 * Microarchitectural fault sites and first-visibility records.
 */
#ifndef VSTACK_UARCH_FAULTSITE_H
#define VSTACK_UARCH_FAULTSITE_H

#include <cstdint>
#include <string>

#include "machine/fpm.h"

namespace vstack
{

/** The five injectable SRAM structures (paper Section III.C). */
enum class Structure : uint8_t { RF, LSQ, L1I, L1D, L2 };

constexpr const char *
structureName(Structure s)
{
    switch (s) {
      case Structure::RF: return "RF";
      case Structure::LSQ: return "LSQ";
      case Structure::L1I: return "L1i";
      case Structure::L1D: return "L1d";
      case Structure::L2: return "L2";
    }
    return "?";
}

constexpr Structure allStructures[] = {Structure::RF, Structure::LSQ,
                                       Structure::L1I, Structure::L1D,
                                       Structure::L2};

/** Inverse of structureName(); false when the name matches nothing. */
inline bool
structureFromName(const std::string &name, Structure &out)
{
    for (Structure s : allStructures) {
        if (name == structureName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

/** One sampled microarchitectural fault. */
struct FaultSite
{
    Structure structure = Structure::RF;
    uint64_t cycle = 0; ///< injection cycle
    uint64_t bit = 0;   ///< bit index within the structure's bit space
    /** Burst length: number of adjacent bits flipped (1 = the paper's
     *  single-bit transient model; >1 models multi-bit upsets).
     *  Burst flips wrap at the structure's bit-space edge. */
    uint32_t burst = 1;

    /** @name Value-conditioned flips (fault::flipSelected)
     *  When `conditioned`, each burst flip k happens only if the
     *  stored bit selects it under (condSalt, k, pFlip1/pFlip0);
     *  sampled by conditioned fault models (e.g. sram-undervolt). @{ */
    bool conditioned = false;
    uint64_t condSalt = 0;
    uint32_t pFlip1 = 0; ///< flip probability, stored bit = 1 (fixed pt)
    uint32_t pFlip0 = 0; ///< flip probability, stored bit = 0
    /** @} */
};

/**
 * HVF bookkeeping for a single injection: whether and how the flipped
 * bit became architecturally visible (first event only).
 */
struct Visibility
{
    bool visible = false;
    Fpm fpm = Fpm::WD;
    uint64_t cycle = 0;

    void mark(Fpm f, uint64_t when)
    {
        if (!visible) {
            visible = true;
            fpm = f;
            cycle = when;
        }
    }
};

} // namespace vstack

#endif // VSTACK_UARCH_FAULTSITE_H
