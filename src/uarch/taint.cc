#include "taint.h"

#include <algorithm>

namespace vstack
{

namespace
{

bool
overlaps(const TaintRange &r, MemLevel level, uint32_t addr, uint32_t len)
{
    return r.level == level && r.addr < addr + len && addr < r.addr + r.len;
}

} // namespace

void
TaintTracker::addData(MemLevel level, uint32_t addr, int bitInByte)
{
    ranges.push_back({level, addr, 1, bitInByte});
}

void
TaintTracker::addMeta(MemLevel level, uint32_t addr, uint32_t len)
{
    ranges.push_back({level, addr, len, -1});
}

void
TaintTracker::clearOverlap(MemLevel level, uint32_t addr, uint32_t len)
{
    std::vector<TaintRange> next;
    next.reserve(ranges.size());
    for (const TaintRange &r : ranges) {
        if (!overlaps(r, level, addr, len)) {
            next.push_back(r);
            continue;
        }
        // Keep the non-overlapping head/tail pieces.
        if (r.addr < addr)
            next.push_back({r.level, r.addr, addr - r.addr, r.bitInByte});
        const uint32_t rEnd = r.addr + r.len;
        const uint32_t end = addr + len;
        if (rEnd > end)
            next.push_back({r.level, end, rEnd - end, r.bitInByte});
    }
    ranges = std::move(next);
}

void
TaintTracker::onCopyUp(MemLevel from, MemLevel to, uint32_t lineAddr,
                       uint32_t len)
{
    if (ranges.empty())
        return;
    // The destination line's previous identity was already handled by
    // the eviction path; the fill overwrites its bytes.
    std::vector<TaintRange> copies;
    for (const TaintRange &r : ranges) {
        if (overlaps(r, from, lineAddr, len)) {
            const uint32_t lo = std::max(r.addr, lineAddr);
            const uint32_t hi = std::min(r.addr + r.len, lineAddr + len);
            copies.push_back({to, lo, hi - lo, r.bitInByte});
        }
    }
    for (const TaintRange &c : copies)
        ranges.push_back(c);
}

void
TaintTracker::onWriteback(MemLevel from, MemLevel to, uint32_t srcLineAddr,
                          uint32_t dstLineAddr, uint32_t len, bool moveSrc)
{
    if (ranges.empty())
        return;
    // Destination bytes are replaced wholesale.
    clearOverlap(to, dstLineAddr, len);
    // Tainted source bytes land at the destination (usually the same
    // address; different when the tag itself was corrupted).
    std::vector<TaintRange> copies;
    for (const TaintRange &r : ranges) {
        if (overlaps(r, from, srcLineAddr, len)) {
            const uint32_t lo = std::max(r.addr, srcLineAddr);
            const uint32_t hi = std::min(r.addr + r.len, srcLineAddr + len);
            copies.push_back({to, dstLineAddr + (lo - srcLineAddr), hi - lo,
                              r.bitInByte});
        }
    }
    // A write-back *moves* the line out of the source level; leaving
    // the source ranges in place would duplicate taint on every
    // evict/refill round trip.
    if (moveSrc)
        clearOverlap(from, srcLineAddr, len);
    for (const TaintRange &c : copies)
        ranges.push_back(c);
}

void
TaintTracker::onOverwrite(MemLevel level, uint32_t addr, uint32_t len)
{
    if (ranges.empty())
        return;
    clearOverlap(level, addr, len);
}

void
TaintTracker::onDiscard(MemLevel level, uint32_t addr, uint32_t len)
{
    if (ranges.empty())
        return;
    clearOverlap(level, addr, len);
}

std::optional<Fpm>
TaintTracker::onConsume(MemLevel level, uint32_t addr, uint32_t len,
                        ConsumeKind kind, uint32_t word, uint64_t cycle)
{
    if (ranges.empty() || vis.visible)
        return std::nullopt;
    for (const TaintRange &r : ranges) {
        if (!overlaps(r, level, addr, len))
            continue;
        Fpm fpm;
        switch (kind) {
          case ConsumeKind::Dma:
            fpm = Fpm::ESC;
            break;
          case ConsumeKind::Load:
            fpm = Fpm::WD;
            break;
          case ConsumeKind::Fetch: {
            if (r.bitInByte < 0) {
                fpm = Fpm::WI; // meta corruption: wrong line fetched
                break;
            }
            // Locate the flipped bit inside the 4-byte word.
            const uint32_t lo = std::max(r.addr, addr);
            const int byteInWord = static_cast<int>(lo - addr);
            const int bit = byteInWord * 8 + r.bitInByte;
            const InstFieldKind k = classifyInstBit(isa, word, bit);
            switch (k) {
              case InstFieldKind::Opcode:
              case InstFieldKind::ControlOffset:
                fpm = Fpm::WI;
                break;
              case InstFieldKind::RegSpecifier:
              case InstFieldKind::Immediate:
                fpm = Fpm::WOI;
                break;
              case InstFieldKind::Unused:
                // Decode-identical: the flip is architecturally
                // invisible in this word; not a visibility event.
                continue;
            }
            break;
          }
          default:
            continue;
        }
        // DMA consumption is architecturally final (the bytes left the
        // system) and is recorded immediately; load/fetch consumption
        // is only visible if the consuming instruction commits — the
        // core records it at commit time via markVisible().
        if (kind == ConsumeKind::Dma)
            vis.mark(fpm, cycle);
        return fpm;
    }
    return std::nullopt;
}

} // namespace vstack
