/**
 * @file
 * Write-back cache model and two-level hierarchy.
 *
 * Caches store real tag/state/data bits, so injected flips have honest
 * consequences: data flips corrupt values served to the core or
 * written back; tag flips cause misses, aliased hits, and misdirected
 * write-backs; dirty-bit flips lose updates; valid-bit flips drop or
 * conjure lines.  The hierarchy reports per-access latency to the
 * core and feeds the taint tracker for HVF classification.
 */
#ifndef VSTACK_UARCH_CACHE_H
#define VSTACK_UARCH_CACHE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "machine/physmem.h"
#include "support/snapshot.h"
#include "uarch/config.h"
#include "uarch/taint.h"

namespace vstack
{

/** One set-associative write-back cache. */
class Cache
{
  public:
    static constexpr uint32_t lineSize = CacheGeom::lineSize;

    struct Line
    {
        uint32_t tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lastUse = 0;
        uint8_t data[lineSize];
    };

    Cache(const CacheGeom &geom, MemLevel level);

    /** Invalidate everything (between runs). */
    void reset();

    uint32_t numSets() const { return sets; }
    int numWays() const { return ways; }
    int latency() const { return lat; }
    MemLevel level() const { return lvl; }

    uint32_t setOf(uint32_t addr) const { return (addr >> 6) & (sets - 1); }
    uint32_t tagOf(uint32_t addr) const { return addr >> (6 + setBits); }
    uint32_t lineAddr(uint32_t set, uint32_t tag) const
    {
        return (tag << (6 + setBits)) | (set << 6);
    }

    Line &line(uint32_t set, int way) { return lines[set * ways + way]; }
    const Line &line(uint32_t set, int way) const
    {
        return lines[set * ways + way];
    }

    /** Way holding addr, or -1. */
    int findWay(uint32_t addr) const;

    /** LRU victim way in addr's set. */
    int victimWay(uint32_t addr) const;

    void touch(uint32_t set, int way) { line(set, way).lastUse = ++clock; }

    /** Total injectable SRAM bits. */
    uint64_t totalBits() const { return bits; }

    /**
     * Flip one bit of the structure's bit space and register taint.
     * Layout per line: 512 data bits, then tag bits, then valid, then
     * dirty.
     */
    void flipBit(uint64_t bit, TaintTracker &tracker);

    /** Current value (0/1) of one bit of the structure's bit space,
     *  same layout as flipBit().  Value-conditioned fault models read
     *  this before deciding whether the flip happens. */
    int bitValue(uint64_t bit) const;

    /**
     * Serialize array state.  liveOnly (digest mode) covers valid
     * lines only — invalid lines' stale tag/data bits are unreachable
     * by normal operation and would otherwise keep two behaviorally
     * identical states from ever digest-matching.  Full mode includes
     * every line verbatim: stale bits ARE injection-reachable (a
     * valid-bit flip conjures whatever the array holds), so restored
     * state must be bit-exact for later injections.
     */
    void saveState(snap::ByteSink &s, bool liveOnly) const;

    /** Restore state saved by saveState(s, false). */
    void loadState(snap::ByteSource &s);

  private:
    uint32_t sets;
    int ways;
    int lat;
    int setBits;
    int tagBitCount;
    MemLevel lvl;
    uint64_t bits;
    uint64_t clock = 0;
    std::vector<Line> lines;
};

/**
 * The L1i/L1d/L2/DRAM hierarchy with DMA snooping.  All addresses
 * passed in must be RAM addresses; MMIO bypasses the hierarchy.
 */
class MemHierarchy
{
  public:
    MemHierarchy(const CoreConfig &cfg, PhysMem &mem,
                 TaintTracker &tracker);

    void reset();

    /** Data read. Returns latency; fills `val`.  If the read bytes
     *  were tainted, `fpm` (when non-null) receives the pending FPM
     *  classification for the core to record at commit. */
    int read(uint32_t addr, unsigned bytes, uint64_t &val, uint64_t cycle,
             std::optional<Fpm> *fpm = nullptr);

    /** Data write (write-allocate). Returns latency. */
    int write(uint32_t addr, unsigned bytes, uint64_t val,
              uint64_t cycle);

    /** Instruction fetch of one word. Returns latency; `fpm` as in
     *  read(). */
    int fetch(uint32_t addr, uint32_t &word, uint64_t cycle,
              std::optional<Fpm> *fpm = nullptr);

    /**
     * DMA read.  The DMA engine is NOT coherent with the L1 (as on
     * the embedded Arm parts the paper models): it reads L2, then
     * memory.  The kernel cleans the staged lines (see cleanLine)
     * before ringing the doorbell.  Consumes taint as ESC.
     */
    void snoop(uint32_t addr, uint8_t *dst, size_t n, uint64_t cycle);

    /** Cache-maintenance: clean (write back, keep) the L1d line
     *  containing addr, making it visible to the DMA engine. */
    void cleanLine(uint32_t addr);

    Cache &l1iCache() { return l1i; }
    Cache &l1dCache() { return l1d; }
    Cache &l2Cache() { return l2; }

  private:
    /**
     * Ensure addr's line is present in `c`; returns (latency, way).
     * Fills from the next level down, evicting (with write-back) as
     * needed.
     */
    std::pair<int, int> ensureLine(Cache &c, uint32_t addr);

    /** Evict a specific line (write-back if dirty). */
    void evict(Cache &c, uint32_t set, int way);

    /** Write 64 bytes into the level below `c` (L2 or memory). */
    void installBelow(Cache &c, uint32_t addr, const uint8_t *data,
                      bool moveTaint = true);

    /** Read 64 bytes from the level below `c` without allocation
     *  decisions (L2 lookup/fill or memory). Returns latency. */
    int readLineBelow(Cache &c, uint32_t addr, uint8_t *out);

    const CoreConfig &cfg;
    PhysMem &mem;
    TaintTracker &tracker;
    Cache l1i;
    Cache l1d;
    Cache l2;
};

} // namespace vstack

#endif // VSTACK_UARCH_CACHE_H
