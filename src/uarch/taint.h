/**
 * @file
 * First-visibility taint tracking for HVF/FPM classification.
 *
 * A single injected bit flip is watched at its home location until it
 * is either consumed (load, instruction fetch, DMA pull, LSQ use,
 * physical register read) — at which point it becomes architecturally
 * visible and is classified into an FPM — or destroyed (overwritten,
 * evicted clean, reallocated), i.e. masked by the hardware.  Taint
 * moves with the data: cache fills copy it upward, write-backs carry
 * it downward, stores erase it.
 *
 * Only the FIRST visibility event matters (the HVF definition); the
 * run always continues to completion for the AVF outcome.
 */
#ifndef VSTACK_UARCH_TAINT_H
#define VSTACK_UARCH_TAINT_H

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/isa.h"
#include "support/snapshot.h"
#include "uarch/faultsite.h"

namespace vstack
{

/** Memory-hierarchy levels for taint bookkeeping. */
enum class MemLevel : uint8_t { L1I, L1D, L2, Mem };

/** How tainted bytes were consumed. */
enum class ConsumeKind : uint8_t { Load, Fetch, Dma };

/** A tainted byte range at one hierarchy level. */
struct TaintRange
{
    MemLevel level;
    uint32_t addr;
    uint32_t len;
    int bitInByte; ///< exact flipped bit (-1 for meta/whole-line taint)
};

class TaintTracker
{
  public:
    explicit TaintTracker(IsaId isa) : isa(isa) {}

    void reset()
    {
        ranges.clear();
        vis = Visibility{};
    }

    bool empty() const { return ranges.empty(); }
    const Visibility &visibility() const { return vis; }

    /** Record a visibility event directly (PRF/LSQ consumption). */
    void markVisible(Fpm fpm, uint64_t cycle) { vis.mark(fpm, cycle); }

    /** @name Registration @{ */
    void addData(MemLevel level, uint32_t addr, int bitInByte);
    void addMeta(MemLevel level, uint32_t addr, uint32_t len);
    /** @} */

    /** @name Data-movement hooks @{ */
    /** A line was copied from `from` into `to` (cache fill). */
    void onCopyUp(MemLevel from, MemLevel to, uint32_t lineAddr,
                  uint32_t len);
    /** A line was written back from `from` into `to`; the destination
     *  bytes are overwritten by the source bytes.  When `moveSrc` the
     *  source copy is gone afterwards (eviction); a cache-clean keeps
     *  the source line valid and passes false. */
    void onWriteback(MemLevel from, MemLevel to, uint32_t srcLineAddr,
                     uint32_t dstLineAddr, uint32_t len,
                     bool moveSrc = true);
    /** Bytes at a level were overwritten with fresh data (CPU store,
     *  or a fill replacing a line's previous contents). */
    void onOverwrite(MemLevel level, uint32_t addr, uint32_t len);
    /** A clean line was dropped from a level. */
    void onDiscard(MemLevel level, uint32_t addr, uint32_t len);
    /** @} */

    /**
     * The core/DMA read [addr, addr+len) served from `level`.  If the
     * range is tainted, classify and record the visibility event.
     * For Fetch consumption the FPM comes from the flipped bit's
     * position inside the corrupted instruction word (`word` = the
     * fetched, i.e. corrupted, encoding).
     *
     * Returns the FPM recorded, if any (first event only).
     */
    std::optional<Fpm> onConsume(MemLevel level, uint32_t addr,
                                 uint32_t len, ConsumeKind kind,
                                 uint32_t word, uint64_t cycle);

    /** Current tainted ranges (tests). */
    const std::vector<TaintRange> &taintRanges() const { return ranges; }

    /** Serialize tracker state for checkpointing (never digested:
     *  taint is bookkeeping about the fault, not simulated state). */
    void saveState(snap::ByteSink &s) const
    {
        s.u64(ranges.size());
        for (const TaintRange &r : ranges) {
            s.u8(static_cast<uint8_t>(r.level));
            s.u32(r.addr);
            s.u32(r.len);
            s.i32(r.bitInByte);
        }
        s.b(vis.visible);
        s.u8(static_cast<uint8_t>(vis.fpm));
        s.u64(vis.cycle);
    }

    /** Restore state saved by saveState(). */
    void loadState(snap::ByteSource &s)
    {
        ranges.clear();
        const uint64_t n = s.u64();
        for (uint64_t i = 0; i < n; ++i) {
            TaintRange r;
            r.level = static_cast<MemLevel>(s.u8());
            r.addr = s.u32();
            r.len = s.u32();
            r.bitInByte = s.i32();
            ranges.push_back(r);
        }
        vis.visible = s.b();
        vis.fpm = static_cast<Fpm>(s.u8());
        vis.cycle = s.u64();
    }

  private:
    void clearOverlap(MemLevel level, uint32_t addr, uint32_t len);

    IsaId isa;
    std::vector<TaintRange> ranges;
    Visibility vis;
};

} // namespace vstack

#endif // VSTACK_UARCH_TAINT_H
