#include "core.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <deque>

#include "exec/error.h"
#include "fault/condition.h"
#include "support/crc32c.h"
#include "support/fastpath.h"
#include "support/logging.h"
#include "support/snapshot.h"

namespace vstack
{

namespace
{

/** Guest exception causes, delivered at commit. */
enum class Exc : uint8_t {
    None,
    BadFetch,
    UndefInst,
    BadAddr,
    Misaligned,
    Priv,
    BadMmio,
};

const char *
excName(Exc e)
{
    switch (e) {
      case Exc::None: return "none";
      case Exc::BadFetch: return "bad instruction fetch";
      case Exc::UndefInst: return "undefined instruction";
      case Exc::BadAddr: return "bad data address";
      case Exc::Misaligned: return "misaligned access";
      case Exc::Priv: return "privilege violation";
      case Exc::BadMmio: return "unmapped MMIO access";
    }
    return "?";
}

constexpr uint8_t NO_FPM = 0xff;
constexpr int WHEEL_SIZE = 512; // > max access latency

/** Stop probing for reconvergence after this many failed digest
 *  compares: runs that will never reconverge (e.g. a flip parked in a
 *  never-reallocated free register) shouldn't pay hashing forever. */
constexpr unsigned DIGEST_GIVE_UP = 12;

} // namespace

/**
 * Complete captured state of one CycleSim.  `state` is the serialized
 * pipeline/predictor/cache/device/bookkeeping state (full mode, stale
 * bits included — they are injection-reachable); `mem` is the COW
 * guest-RAM image with its per-page CRC table.
 */
struct UarchSnapshot
{
    std::string coreName;
    uint64_t cycle = 0;
    std::vector<uint8_t> state;
    snap::MemImage mem;
};

size_t
uarchSnapshotBytes(const UarchSnapshot &s)
{
    return s.state.size() + s.mem.freshBytes() +
           s.mem.pageCrc.size() * sizeof(uint32_t);
}

const UarchTrace::Checkpoint &
UarchTrace::nearestBelow(uint64_t cycle) const
{
    if (checkpoints.empty() || checkpoints.front().cycle >= cycle)
        panic("UarchTrace::nearestBelow: no checkpoint below cycle %llu",
              static_cast<unsigned long long>(cycle));
    const Checkpoint *best = &checkpoints.front();
    for (const Checkpoint &cp : checkpoints) {
        if (cp.cycle >= cycle)
            break;
        best = &cp;
    }
    return *best;
}

struct CycleSim::Impl
{
    struct Uop
    {
        DecodedInst d;
        uint32_t pc = 0;
        uint32_t word = 0;
        uint64_t seq = 0;
        int16_t pdst = -1, psrc1 = -1, psrc2 = -1, psrc3 = -1;
        int16_t poldDst = -1;
        uint8_t state = 0; // 0 waiting, 1 issued, 2 done
        Exc exc = Exc::None;
        bool squashed = false;
        bool isLoad = false, isStore = false, serial = false;
        bool kernel = false; ///< privilege mode at fetch
        int16_t lqIdx = -1, sqIdx = -1;
        uint64_t result = 0;
        uint32_t predNext = 0;
        bool predTaken = false;
        bool isCondBr = false;
        uint8_t taintFpm = NO_FPM;
    };

    struct LsqEntry
    {
        uint32_t addr = 0;
        uint64_t data = 0;
        uint64_t seq = 0;
        bool valid = false;
        bool addrValid = false;
        bool mmio = false;
        uint8_t bytes = 0;
        bool taintAddr = false, taintData = false;
    };

    struct Ref
    {
        int slot;
        uint64_t seq;
    };

    Impl(const CoreConfig &cfg, UarchStats &stats)
        : cfg(cfg), spec(IsaSpec::get(cfg.isa)), stats(stats),
          tracker(cfg.isa), hier(cfg, mem, tracker),
          rob(static_cast<size_t>(cfg.robSize)),
          lq(static_cast<size_t>(cfg.lqSize)),
          sq(static_cast<size_t>(cfg.sqSize)),
          prf(static_cast<size_t>(cfg.numPhysRegs), 0),
          pregReady(static_cast<size_t>(cfg.numPhysRegs), 1),
          renameMap(static_cast<size_t>(spec.numRegs), 0),
          pregWriteCycle(static_cast<size_t>(cfg.numPhysRegs), 0),
          pregLastRead(static_cast<size_t>(cfg.numPhysRegs), 0),
          wheel(WHEEL_SIZE),
          bimodal(static_cast<size_t>(cfg.bimodalEntries), 1),
          btb(static_cast<size_t>(cfg.btbEntries), {0, 0})
    {
        hub = std::make_unique<DeviceHub>(
            [this](uint32_t addr, uint8_t *dst, size_t n) {
                hier.snoop(addr, dst, n, cycle);
            },
            cfg.dmaDelay);
        iq.reserve(static_cast<size_t>(cfg.iqSize));
    }

    // ---- configuration / global state ----------------------------------
    const CoreConfig &cfg;
    const IsaSpec &spec;
    UarchStats &stats;
    PhysMem mem;
    TaintTracker tracker;
    MemHierarchy hier;
    std::unique_ptr<DeviceHub> hub;

    // ROB (circular)
    std::vector<Uop> rob;
    int robHead = 0, robTail = 0, robCount = 0;
    uint64_t nextSeq = 1;

    // LSQ (circular)
    std::vector<LsqEntry> lq, sq;
    int lqHead = 0, lqTail = 0, lqCount = 0;
    int sqHead = 0, sqTail = 0, sqCount = 0;

    // PRF + rename
    std::vector<uint64_t> prf;
    std::vector<uint8_t> pregReady;
    std::vector<int> renameMap;
    std::vector<int> freeList;
    int taintedPreg = -1;
    // ACE-lite accounting: per-preg write and last-read cycles.
    std::vector<uint64_t> pregWriteCycle;
    std::vector<uint64_t> pregLastRead;

    // Issue queue + writeback wheel
    std::vector<Ref> iq;
    std::vector<std::vector<Ref>> wheel;

    // Front end
    std::deque<Uop> fetchBuf;
    uint32_t fetchPC = 0;
    uint64_t fetchStallUntil = 0;
    bool fetchBlocked = false; ///< serializing/faulting inst in flight
    std::vector<uint8_t> bimodal;
    std::vector<std::pair<uint32_t, uint32_t>> btb; // pc -> target
    std::vector<uint32_t> ras;

    // Privileged state
    bool kernelMode = true;
    uint64_t epc = 0;

    // Run state
    uint64_t cycle = 0;
    uint64_t committed = 0;
    uint64_t kernelInsts = 0;
    uint64_t kernelCycles = 0;
    uint64_t lastCommitCycle = 0;
    StopReason stop = StopReason::Running;
    std::string excMsg;
    std::vector<FaultSite> pendingInjections;

    // ---- helpers --------------------------------------------------------
    int archDst(const Uop &u) const
    {
        return (u.d.op == Op::BL || u.d.op == Op::BLR) ? spec.lr : u.d.rd;
    }

    void reset(const Program &image)
    {
        mem.clear();
        mem.load(image);
        hier.reset();
        tracker.reset();
        hub->reset();

        robHead = robTail = robCount = 0;
        nextSeq = 1;
        lqHead = lqTail = lqCount = 0;
        sqHead = sqTail = sqCount = 0;
        for (auto &e : lq)
            e = LsqEntry{};
        for (auto &e : sq)
            e = LsqEntry{};

        std::fill(prf.begin(), prf.end(), 0);
        std::fill(pregReady.begin(), pregReady.end(), 1);
        pregWriteCycle.assign(static_cast<size_t>(cfg.numPhysRegs), 0);
        pregLastRead.assign(static_cast<size_t>(cfg.numPhysRegs), 0);
        freeList.clear();
        for (int p = spec.numRegs; p < cfg.numPhysRegs; ++p)
            freeList.push_back(p);
        for (int a = 0; a < spec.numRegs; ++a)
            renameMap[a] = a;
        taintedPreg = -1;

        iq.clear();
        for (auto &w : wheel)
            w.clear();

        fetchBuf.clear();
        fetchPC = image.entry;
        fetchStallUntil = 0;
        fetchBlocked = false;
        std::fill(bimodal.begin(), bimodal.end(), 1);
        std::fill(btb.begin(), btb.end(), std::make_pair(0u, 0u));
        ras.clear();

        kernelMode = true;
        epc = 0;
        cycle = 0;
        committed = 0;
        kernelInsts = 0;
        kernelCycles = 0;
        lastCommitCycle = 0;
        stop = StopReason::Running;
        excMsg.clear();
        pendingInjections.clear();
        stats = UarchStats{};

        pageCrcValid = false;
        ckptDirty.markAll();
        lastRestored.reset();
        if (fastPathEnabled())
            seedPageCrc(image);
    }

    void fail(Exc e, const Uop &u)
    {
        stop = StopReason::Exception;
        excMsg = strprintf("%s (pc=0x%08x, %s mode, inst %llu, cycle %llu)",
                           excName(e), u.pc, u.kernel ? "kernel" : "user",
                           static_cast<unsigned long long>(committed),
                           static_cast<unsigned long long>(cycle));
    }

    // ---- snapshot / digest machinery ------------------------------------
    /** Running per-page CRC-32C of guest RAM, kept incremental via
     *  PhysMem's digest dirty map. */
    std::vector<uint32_t> pageCrc;
    bool pageCrcValid = false;
    /** Persistent staging buffer for stateDigest(): reused across
     *  digests so the K×4 grid never reallocates.  Only used on the
     *  fast path — the escape hatch keeps the historical fresh-sink
     *  cost model. */
    snap::ByteSink digestSink;
    /** Pages modified since the last takeSnapshot (checkpoint COW). */
    snap::DirtyMap ckptDirty{memmap::RAM_SIZE >> snap::PAGE_SHIFT};
    /** Snapshot most recently restored into this simulator; lets the
     *  next restore copy only pages that actually changed. */
    std::shared_ptr<const UarchSnapshot> lastRestored;

    /** Seed the per-page CRC table right after mem.load() instead of
     *  letting the first stateDigest() walk all of RAM: freshly
     *  cleared pages all share one precomputed zero-page CRC, so only
     *  pages the image actually initialises need hashing.  Values are
     *  identical to a full walk.  reset() has already marked ckptDirty
     *  wholesale, so checkpoint capture is unaffected. */
    void seedPageCrc(const Program &image)
    {
        static const uint32_t zeroCrc = [] {
            const std::vector<uint8_t> z(snap::PAGE_SIZE, 0);
            return crc32c(z.data(), z.size());
        }();
        const size_t nPages = mem.numPages();
        pageCrc.assign(nPages, zeroCrc);
        std::vector<bool> touched(nPages, false);
        for (const Segment &s : image.segments) {
            const size_t p0 = s.addr >> snap::PAGE_SHIFT;
            const size_t p1 =
                (s.addr + s.bytes.size() + snap::PAGE_SIZE - 1) >>
                snap::PAGE_SHIFT;
            for (size_t p = p0; p < p1 && p < nPages; ++p)
                touched[p] = true;
        }
        for (size_t p = 0; p < nPages; ++p)
            if (touched[p])
                pageCrc[p] = crc32c(mem.data() + p * snap::PAGE_SIZE,
                                    snap::PAGE_SIZE);
        mem.digestDirty().clearAll();
        pageCrcValid = true;
    }

    void harvestPageCrc()
    {
        const size_t nPages = mem.numPages();
        if (!pageCrcValid) {
            pageCrc.resize(nPages);
            for (size_t p = 0; p < nPages; ++p) {
                pageCrc[p] = crc32c(mem.data() + p * snap::PAGE_SIZE,
                                    snap::PAGE_SIZE);
                ckptDirty.mark(p);
            }
            mem.digestDirty().clearAll();
            pageCrcValid = true;
            return;
        }
        mem.digestDirty().forEachDirty([&](size_t p) {
            pageCrc[p] = crc32c(mem.data() + p * snap::PAGE_SIZE,
                                snap::PAGE_SIZE);
            ckptDirty.mark(p);
        });
        mem.digestDirty().clearAll();
    }

    static void putUop(snap::ByteSink &s, const Uop &u)
    {
        s.u16(static_cast<uint16_t>(u.d.op));
        s.b(u.d.valid);
        s.u8(u.d.rd);
        s.u8(u.d.rs1);
        s.u8(u.d.rs2);
        s.i64(u.d.imm);
        s.u8(u.d.hw);
        s.u32(u.pc);
        s.u32(u.word);
        s.u64(u.seq);
        s.i16(u.pdst);
        s.i16(u.psrc1);
        s.i16(u.psrc2);
        s.i16(u.psrc3);
        s.i16(u.poldDst);
        s.u8(u.state);
        s.u8(static_cast<uint8_t>(u.exc));
        s.b(u.squashed);
        s.b(u.isLoad);
        s.b(u.isStore);
        s.b(u.serial);
        s.b(u.kernel);
        s.i16(u.lqIdx);
        s.i16(u.sqIdx);
        s.u64(u.result);
        s.u32(u.predNext);
        s.b(u.predTaken);
        s.b(u.isCondBr);
        s.u8(u.taintFpm);
    }

    static Uop getUop(snap::ByteSource &s)
    {
        Uop u;
        u.d.op = static_cast<Op>(s.u16());
        u.d.valid = s.b();
        u.d.rd = s.u8();
        u.d.rs1 = s.u8();
        u.d.rs2 = s.u8();
        u.d.imm = s.i64();
        u.d.hw = s.u8();
        u.pc = s.u32();
        u.word = s.u32();
        u.seq = s.u64();
        u.pdst = s.i16();
        u.psrc1 = s.i16();
        u.psrc2 = s.i16();
        u.psrc3 = s.i16();
        u.poldDst = s.i16();
        u.state = s.u8();
        u.exc = static_cast<Exc>(s.u8());
        u.squashed = s.b();
        u.isLoad = s.b();
        u.isStore = s.b();
        u.serial = s.b();
        u.kernel = s.b();
        u.lqIdx = s.i16();
        u.sqIdx = s.i16();
        u.result = s.u64();
        u.predNext = s.u32();
        u.predTaken = s.b();
        u.isCondBr = s.b();
        u.taintFpm = s.u8();
        return u;
    }

    static void putLsq(snap::ByteSink &s, const LsqEntry &e)
    {
        s.u32(e.addr);
        s.u64(e.data);
        s.u64(e.seq);
        s.b(e.valid);
        s.b(e.addrValid);
        s.b(e.mmio);
        s.u8(e.bytes);
        s.b(e.taintAddr);
        s.b(e.taintData);
    }

    static LsqEntry getLsq(snap::ByteSource &s)
    {
        LsqEntry e;
        e.addr = s.u32();
        e.data = s.u64();
        e.seq = s.u64();
        e.valid = s.b();
        e.addrValid = s.b();
        e.mmio = s.b();
        e.bytes = s.u8();
        e.taintAddr = s.b();
        e.taintData = s.b();
        return e;
    }

    /** A ref still drives future behavior iff the writeback/issue
     *  validation would accept it. */
    bool refLive(const Ref &ref) const
    {
        const Uop &u = rob[ref.slot];
        return !u.squashed && u.seq == ref.seq;
    }

    /**
     * Serialize simulator state (guest RAM is handled separately via
     * MemImage / pageCrc).
     *
     * Digest mode covers exactly the state that determines future
     * behavior and the remaining result fields: live ROB/LSQ/IQ/wheel
     * entries, the full PRF/rename/free-list, predictor state, valid
     * cache lines, device-forwarding state and counters.  Stale
     * entries (committed/squashed slots, dead refs, invalid lines) are
     * excluded: they are provably inert — ref validation drops them —
     * but permanently remember the divergence window, so including
     * them would prevent any post-injection state from ever matching
     * the golden digest.  Also excluded: stats and the ACE read/write
     * cycle maps (reporting only), taint-tracker state (the early-stop
     * precondition handles it), and output streams (compared against
     * the golden prefix separately).
     *
     * Full mode (checkpoints) serializes everything verbatim — stale
     * bits included, since injections can reach them — so a restored
     * run is bit-identical to a cold replay.
     */
    void serializeState(snap::ByteSink &s, bool digest)
    {
        s.u64(cycle);
        s.u64(committed);
        s.u64(kernelInsts);
        s.u64(kernelCycles);
        s.u64(lastCommitCycle);
        s.u64(nextSeq);
        s.u64(epc);
        s.u32(fetchPC);
        s.u64(fetchStallUntil);
        s.b(fetchBlocked);
        s.b(kernelMode);

        // ROB
        s.u32(static_cast<uint32_t>(robHead));
        s.u32(static_cast<uint32_t>(robTail));
        s.u32(static_cast<uint32_t>(robCount));
        if (digest) {
            for (int n = 0; n < robCount; ++n) {
                const int slot = (robHead + n) % cfg.robSize;
                s.u32(static_cast<uint32_t>(slot));
                putUop(s, rob[slot]);
            }
        } else {
            for (const Uop &u : rob)
                putUop(s, u);
        }

        // LSQ
        s.u32(static_cast<uint32_t>(lqHead));
        s.u32(static_cast<uint32_t>(lqTail));
        s.u32(static_cast<uint32_t>(lqCount));
        s.u32(static_cast<uint32_t>(sqHead));
        s.u32(static_cast<uint32_t>(sqTail));
        s.u32(static_cast<uint32_t>(sqCount));
        if (digest) {
            for (int n = 0; n < lqCount; ++n) {
                const int idx = (lqHead + n) % cfg.lqSize;
                s.u32(static_cast<uint32_t>(idx));
                putLsq(s, lq[idx]);
            }
            for (int n = 0; n < sqCount; ++n) {
                const int idx = (sqHead + n) % cfg.sqSize;
                s.u32(static_cast<uint32_t>(idx));
                putLsq(s, sq[idx]);
            }
        } else {
            for (const LsqEntry &e : lq)
                putLsq(s, e);
            for (const LsqEntry &e : sq)
                putLsq(s, e);
        }

        // PRF + rename.  The digest masks the CONTENT of registers on
        // the free list: a freed register has no outstanding readers
        // (in-order commit retires every consumer of its previous
        // mapping first) and its next use writes it before the first
        // read, so its value cannot influence future architectural
        // state.  Masking it lets the large fraction of RF flips that
        // land in free registers reconverge at the next grid point
        // instead of blocking early stop forever.  Free-list
        // membership and order stay digested, as does the content of
        // every mapped or still-reclaimable register.
        if (digest) {
            std::vector<uint8_t> isFree(prf.size(), 0);
            for (int f : freeList)
                isFree[static_cast<size_t>(f)] = 1;
            for (size_t p = 0; p < prf.size(); ++p)
                s.u64(isFree[p] ? 0 : prf[p]);
            s.bytes(pregReady.data(), pregReady.size());
            for (int m : renameMap)
                s.i32(m);
            s.u64(freeList.size());
            for (int f : freeList)
                s.i32(f);
            // Same deadness argument: a taint marker on a free
            // register can never propagate (the register is written —
            // clearing the marker — before its first read).
            s.i32(taintedPreg >= 0 &&
                          isFree[static_cast<size_t>(taintedPreg)]
                      ? -1
                      : taintedPreg);
        } else {
            for (uint64_t v : prf)
                s.u64(v);
            s.bytes(pregReady.data(), pregReady.size());
            for (int m : renameMap)
                s.i32(m);
            s.u64(freeList.size());
            for (int f : freeList)
                s.i32(f);
            s.i32(taintedPreg);
        }
        if (!digest) {
            for (uint64_t v : pregWriteCycle)
                s.u64(v);
            for (uint64_t v : pregLastRead)
                s.u64(v);
        }

        // IQ
        if (digest) {
            for (const Ref &r : iq) {
                if (!refLive(r) || rob[r.slot].state != 0)
                    continue;
                s.u32(static_cast<uint32_t>(r.slot));
                s.u64(r.seq);
            }
            s.u32(UINT32_MAX);
        } else {
            s.u64(iq.size());
            for (const Ref &r : iq) {
                s.u32(static_cast<uint32_t>(r.slot));
                s.u64(r.seq);
            }
        }

        // Writeback wheel (bucket index is part of the encoding: it
        // fixes when the writeback fires)
        for (int w = 0; w < WHEEL_SIZE; ++w) {
            if (digest) {
                for (const Ref &r : wheel[w]) {
                    if (!refLive(r))
                        continue;
                    s.u32(static_cast<uint32_t>(w));
                    s.u32(static_cast<uint32_t>(r.slot));
                    s.u64(r.seq);
                }
            } else {
                s.u64(wheel[w].size());
                for (const Ref &r : wheel[w]) {
                    s.u32(static_cast<uint32_t>(r.slot));
                    s.u64(r.seq);
                }
            }
        }
        if (digest)
            s.u32(UINT32_MAX);

        // Front end
        s.u64(fetchBuf.size());
        for (const Uop &u : fetchBuf)
            putUop(s, u);
        s.bytes(bimodal.data(), bimodal.size());
        for (const auto &e : btb) {
            s.u32(e.first);
            s.u32(e.second);
        }
        s.u64(ras.size());
        for (uint32_t r : ras)
            s.u32(r);

        // Memory hierarchy + devices
        hier.l1iCache().saveState(s, digest);
        hier.l1dCache().saveState(s, digest);
        hier.l2Cache().saveState(s, digest);
        hub->saveState(s, digest);

        if (!digest) {
            tracker.saveState(s);
            s.u8(static_cast<uint8_t>(stop));
            s.str(excMsg);
            s.u64(pendingInjections.size());
            for (const FaultSite &f : pendingInjections) {
                s.u8(static_cast<uint8_t>(f.structure));
                s.u64(f.cycle);
                s.u64(f.bit);
                s.u32(f.burst);
                s.u8(f.conditioned ? 1 : 0);
                s.u64(f.condSalt);
                s.u32(f.pFlip1);
                s.u32(f.pFlip0);
            }
            s.u64(stats.branches);
            s.u64(stats.mispredicts);
            s.u64(stats.loads);
            s.u64(stats.stores);
            s.u64(stats.squashedUops);
            s.u64(stats.rfAceBitCycles);
        }
    }

    /** Restore state serialized by serializeState(s, false). */
    void deserializeState(snap::ByteSource &s)
    {
        cycle = s.u64();
        committed = s.u64();
        kernelInsts = s.u64();
        kernelCycles = s.u64();
        lastCommitCycle = s.u64();
        nextSeq = s.u64();
        epc = s.u64();
        fetchPC = s.u32();
        fetchStallUntil = s.u64();
        fetchBlocked = s.b();
        kernelMode = s.b();

        robHead = static_cast<int>(s.u32());
        robTail = static_cast<int>(s.u32());
        robCount = static_cast<int>(s.u32());
        for (Uop &u : rob)
            u = getUop(s);

        lqHead = static_cast<int>(s.u32());
        lqTail = static_cast<int>(s.u32());
        lqCount = static_cast<int>(s.u32());
        sqHead = static_cast<int>(s.u32());
        sqTail = static_cast<int>(s.u32());
        sqCount = static_cast<int>(s.u32());
        for (LsqEntry &e : lq)
            e = getLsq(s);
        for (LsqEntry &e : sq)
            e = getLsq(s);

        for (uint64_t &v : prf)
            v = s.u64();
        s.bytes(pregReady.data(), pregReady.size());
        for (int &m : renameMap)
            m = s.i32();
        freeList.resize(s.u64());
        for (int &f : freeList)
            f = s.i32();
        taintedPreg = s.i32();
        for (uint64_t &v : pregWriteCycle)
            v = s.u64();
        for (uint64_t &v : pregLastRead)
            v = s.u64();

        iq.resize(s.u64());
        for (Ref &r : iq) {
            r.slot = static_cast<int>(s.u32());
            r.seq = s.u64();
        }
        for (int w = 0; w < WHEEL_SIZE; ++w) {
            wheel[w].resize(s.u64());
            for (Ref &r : wheel[w]) {
                r.slot = static_cast<int>(s.u32());
                r.seq = s.u64();
            }
        }

        fetchBuf.resize(s.u64());
        for (Uop &u : fetchBuf)
            u = getUop(s);
        s.bytes(bimodal.data(), bimodal.size());
        for (auto &e : btb) {
            e.first = s.u32();
            e.second = s.u32();
        }
        ras.resize(s.u64());
        for (uint32_t &r : ras)
            r = s.u32();

        hier.l1iCache().loadState(s);
        hier.l1dCache().loadState(s);
        hier.l2Cache().loadState(s);
        hub->loadState(s);

        tracker.loadState(s);
        stop = static_cast<StopReason>(s.u8());
        excMsg = s.str();
        pendingInjections.resize(s.u64());
        for (FaultSite &f : pendingInjections) {
            f.structure = static_cast<Structure>(s.u8());
            f.cycle = s.u64();
            f.bit = s.u64();
            f.burst = s.u32();
            f.conditioned = s.u8() != 0;
            f.condSalt = s.u64();
            f.pFlip1 = s.u32();
            f.pFlip0 = s.u32();
        }
        stats.branches = s.u64();
        stats.mispredicts = s.u64();
        stats.loads = s.u64();
        stats.stores = s.u64();
        stats.squashedUops = s.u64();
        stats.rfAceBitCycles = s.u64();
        if (!s.atEnd())
            panic("CycleSim snapshot has trailing bytes");
    }

    /** CRC-32C over the digest-mode state + the page-CRC table. */
    uint32_t stateDigest()
    {
        harvestPageCrc();
        if (!fastPathEnabled()) {
            // Escape hatch: the historical cost model — a fresh sink
            // per digest.  Bytes (and therefore digests) are identical
            // to the staged path.
            snap::ByteSink s;
            serializeState(s, /*digest=*/true);
            s.bytes(pageCrc.data(), pageCrc.size() * sizeof(uint32_t));
            return crc32c(s.data().data(), s.size());
        }
        digestSink.clear();
        serializeState(digestSink, /*digest=*/true);
        digestSink.bytes(pageCrc.data(),
                         pageCrc.size() * sizeof(uint32_t));
        return crc32c(digestSink.data().data(), digestSink.size());
    }

    std::shared_ptr<const UarchSnapshot> takeSnapshot(
        const UarchSnapshot *prev)
    {
        harvestPageCrc();
        auto snapPtr = std::make_shared<UarchSnapshot>();
        snapPtr->coreName = cfg.name;
        snapPtr->cycle = cycle;
        snap::ByteSink s;
        serializeState(s, /*digest=*/false);
        snapPtr->state = s.take();
        snapPtr->mem = snap::MemImage::capture(
            mem.data(), mem.size(), ckptDirty, pageCrc,
            prev ? &prev->mem : nullptr);
        ckptDirty.clearAll();
        return snapPtr;
    }

    void restoreState(std::shared_ptr<const UarchSnapshot> snapPtr)
    {
        if (snapPtr->coreName != cfg.name)
            panic("restoring a '%s' snapshot onto core '%s'",
                  snapPtr->coreName.c_str(), cfg.name.c_str());
        snapPtr->mem.restore(mem.data(), mem.size(),
                             lastRestored ? &lastRestored->mem : nullptr,
                             &mem.restoreDirty());
        mem.restoreDirty().clearAll();
        mem.digestDirty().clearAll();
        pageCrc = snapPtr->mem.pageCrc;
        pageCrcValid = true;
        // Future checkpoints taken from here have unknown deltas.
        ckptDirty.markAll();
        snap::ByteSource src(snapPtr->state);
        deserializeState(src);
        lastRestored = std::move(snapPtr);
    }

    // ---- fault injection -------------------------------------------------
    /** Apply one site: `burst` flips starting at site.bit, each wrapped
     *  into the structure's bit space (`% total`) so a burst sampled at
     *  the edge folds back to bit 0 instead of indexing past the last
     *  valid bit.  Conditioned sites (value-dependent fault models)
     *  read the stored bit first and let fault::flipSelected decide
     *  whether each flip happens — a pure function of the site, so
     *  cold and checkpoint-accelerated runs agree. */
    void applyInjection(const FaultSite &site)
    {
        const auto selected = [&site](uint64_t k, int storedBit) {
            return !site.conditioned ||
                   fault::flipSelected(site.condSalt, k, storedBit,
                                       site.pFlip1, site.pFlip0);
        };
        switch (site.structure) {
          case Structure::RF: {
            const int xlen = spec.xlen;
            for (uint64_t k = 0; k < site.burst; ++k) {
                const uint64_t bit =
                    (site.bit + k) % (static_cast<uint64_t>(xlen) *
                                      cfg.numPhysRegs);
                const int preg = static_cast<int>(bit / xlen);
                const int off = static_cast<int>(bit % xlen);
                if (!selected(k, (prf[preg] >> off) & 1))
                    continue;
                prf[preg] ^= 1ull << off;
                taintedPreg = preg; // last flipped (bursts stay local)
            }
            return;
          }
          case Structure::LSQ: {
            const uint64_t entryBits = 32 + spec.xlen;
            const uint64_t total =
                entryBits * static_cast<uint64_t>(cfg.lqSize + cfg.sqSize);
            for (uint64_t k = 0; k < site.burst; ++k) {
                const uint64_t bit = (site.bit + k) % total;
                const int idx = static_cast<int>(bit / entryBits);
                const uint64_t off = bit % entryBits;
                LsqEntry &e = idx < cfg.lqSize
                                  ? lq[idx]
                                  : sq[idx - cfg.lqSize];
                if (off < 32) {
                    if (!selected(k, (e.addr >> off) & 1))
                        continue;
                    e.addr ^= 1u << off;
                    e.taintAddr = true;
                } else {
                    if (!selected(k, (e.data >> (off - 32)) & 1))
                        continue;
                    e.data ^= 1ull << (off - 32);
                    e.taintData = true;
                }
            }
            return;
          }
          case Structure::L1I:
          case Structure::L1D:
          case Structure::L2: {
            Cache &c = site.structure == Structure::L1I
                           ? hier.l1iCache()
                           : site.structure == Structure::L1D
                                 ? hier.l1dCache()
                                 : hier.l2Cache();
            for (uint64_t k = 0; k < site.burst; ++k) {
                const uint64_t bit = (site.bit + k) % c.totalBits();
                if (!selected(k, c.bitValue(bit)))
                    continue;
                c.flipBit(bit, tracker);
            }
            return;
          }
        }
    }

    // ---- squash ----------------------------------------------------------
    /** Squash every uop younger than `seq` (exclusive). */
    void squashAfter(uint64_t seq)
    {
        while (robCount > 0) {
            int tailSlot = (robTail + cfg.robSize - 1) % cfg.robSize;
            Uop &u = rob[tailSlot];
            if (u.seq <= seq)
                break;
            // Undo rename.
            if (u.pdst >= 0) {
                renameMap[archDst(u)] = u.poldDst;
                freeList.push_back(u.pdst);
            }
            // Release LSQ tail entries.
            if (u.lqIdx >= 0) {
                lq[u.lqIdx].valid = false;
                lqTail = u.lqIdx;
                --lqCount;
            }
            if (u.sqIdx >= 0) {
                sq[u.sqIdx].valid = false;
                sqTail = u.sqIdx;
                --sqCount;
            }
            u.squashed = true;
            ++stats.squashedUops;
            robTail = tailSlot;
            --robCount;
        }
        fetchBuf.clear();
        fetchBlocked = false;
        // IQ/wheel entries are lazily dropped via seq validation.
    }

    // ---- fetch -----------------------------------------------------------
    void fetchStage()
    {
        if (fetchBlocked || stop != StopReason::Running)
            return;
        if (cycle < fetchStallUntil)
            return;
        if (fetchBuf.size() >= static_cast<size_t>(2 * cfg.fetchWidth))
            return;

        for (int i = 0; i < cfg.fetchWidth; ++i) {
            const uint32_t pc = fetchPC;
            Uop u;
            u.pc = pc;
            u.kernel = kernelMode;
            u.predNext = pc + 4;

            // Fetch permission checks.
            if (pc % 4 != 0 || !memmap::inRam(pc, 4) ||
                (!kernelMode && !memmap::userAccessible(pc, 4))) {
                u.exc = Exc::BadFetch;
                fetchBuf.push_back(u);
                fetchBlocked = true;
                return;
            }

            uint32_t word = 0;
            std::optional<Fpm> fpm;
            const int lat = hier.fetch(pc, word, cycle, &fpm);
            if (lat > hier.l1iCache().latency()) {
                // Miss: stall and retry (line now filled).
                fetchStallUntil = cycle + static_cast<uint64_t>(lat);
                return;
            }
            u.word = word;
            u.d = decode(cfg.isa, word);
            if (fpm)
                u.taintFpm = static_cast<uint8_t>(*fpm);

            if (!u.d.valid) {
                u.exc = Exc::UndefInst;
                fetchBuf.push_back(u);
                fetchBlocked = true;
                return;
            }

            const OpInfo &info = u.d.info();
            u.isLoad = info.isLoad;
            u.isStore = info.isStore;
            u.serial = isSerializing(u.d.op);
            u.isCondBr = info.isCondBranch;

            if (u.serial) {
                fetchBuf.push_back(u);
                fetchBlocked = true;
                return;
            }

            // Branch prediction.
            if (info.isBranch) {
                const uint32_t fallthrough = pc + 4;
                uint32_t target = fallthrough;
                switch (u.d.op) {
                  case Op::B:
                    target = pc + static_cast<uint32_t>(u.d.imm);
                    break;
                  case Op::BL:
                    target = pc + static_cast<uint32_t>(u.d.imm);
                    pushRas(fallthrough);
                    break;
                  case Op::BR:
                    if (u.d.rd == spec.lr && !ras.empty()) {
                        target = ras.back();
                        ras.pop_back();
                    } else {
                        target = btbLookup(pc, fallthrough);
                    }
                    break;
                  case Op::BLR:
                    target = btbLookup(pc, fallthrough);
                    pushRas(fallthrough);
                    break;
                  default: { // conditional
                    const uint8_t ctr =
                        bimodal[(pc >> 2) & (cfg.bimodalEntries - 1)];
                    u.predTaken = ctr >= 2;
                    target = u.predTaken
                                 ? pc + static_cast<uint32_t>(u.d.imm)
                                 : fallthrough;
                    break;
                  }
                }
                u.predNext = target;
            }

            fetchPC = u.predNext;
            fetchBuf.push_back(u);
            if (u.predNext != pc + 4)
                return; // taken branch ends the fetch group
        }
    }

    void pushRas(uint32_t retAddr)
    {
        if (static_cast<int>(ras.size()) >= cfg.rasEntries)
            ras.erase(ras.begin());
        ras.push_back(retAddr);
    }

    uint32_t btbLookup(uint32_t pc, uint32_t fallback) const
    {
        const auto &[tag, target] = btb[(pc >> 2) & (cfg.btbEntries - 1)];
        return tag == pc ? target : fallback;
    }

    // ---- rename/dispatch ---------------------------------------------------
    void renameStage()
    {
        for (int i = 0; i < cfg.renameWidth && !fetchBuf.empty(); ++i) {
            Uop &front = fetchBuf.front();
            if (robCount >= cfg.robSize)
                return;
            if (static_cast<int>(iq.size()) >= cfg.iqSize)
                return;
            if (front.serial && robCount != 0)
                return; // serialize: drain first
            if (front.isLoad && lqCount >= cfg.lqSize)
                return;
            if (front.isStore && sqCount >= cfg.sqSize)
                return;
            const OpInfo &info = front.d.info();
            const bool writes =
                info.writesRd && archDst(front) != spec.zeroReg;
            if (writes && freeList.empty())
                return;

            Uop u = front;
            fetchBuf.pop_front();
            u.seq = nextSeq++;

            if (u.exc == Exc::None) {
                auto src = [&](int arch) {
                    return arch == spec.zeroReg
                               ? static_cast<int16_t>(-1)
                               : static_cast<int16_t>(renameMap[arch]);
                };
                if (info.readsRs1)
                    u.psrc1 = src(u.d.rs1);
                if (info.readsRs2)
                    u.psrc2 = src(u.d.rs2);
                if (info.readsRdSlot)
                    u.psrc3 = src(u.d.rd);
                if (writes) {
                    const int adst = archDst(u);
                    u.poldDst = static_cast<int16_t>(renameMap[adst]);
                    u.pdst = static_cast<int16_t>(freeList.back());
                    freeList.pop_back();
                    renameMap[adst] = u.pdst;
                    pregReady[u.pdst] = 0;
                }
                if (u.isLoad) {
                    u.lqIdx = static_cast<int16_t>(lqTail);
                    LsqEntry &e = lq[lqTail];
                    e = LsqEntry{};
                    e.valid = true;
                    e.seq = u.seq;
                    e.bytes = static_cast<uint8_t>(
                        memAccessBytes(spec, u.d.op));
                    lqTail = (lqTail + 1) % cfg.lqSize;
                    ++lqCount;
                }
                if (u.isStore) {
                    u.sqIdx = static_cast<int16_t>(sqTail);
                    LsqEntry &e = sq[sqTail];
                    e = LsqEntry{};
                    e.valid = true;
                    e.seq = u.seq;
                    e.bytes = static_cast<uint8_t>(
                        memAccessBytes(spec, u.d.op));
                    sqTail = (sqTail + 1) % cfg.sqSize;
                    ++sqCount;
                }
            }

            const int slot = robTail;
            rob[slot] = u;
            robTail = (robTail + 1) % cfg.robSize;
            ++robCount;
            iq.push_back({slot, u.seq});
        }
    }

    // ---- issue / execute ----------------------------------------------------
    bool srcsReady(const Uop &u) const
    {
        if (u.psrc1 >= 0 && !pregReady[u.psrc1])
            return false;
        if (u.psrc2 >= 0 && !pregReady[u.psrc2])
            return false;
        if (u.psrc3 >= 0 && !pregReady[u.psrc3])
            return false;
        return true;
    }

    uint64_t readSrc(Uop &u, int16_t preg)
    {
        if (preg < 0)
            return 0;
        if (preg == taintedPreg && u.taintFpm == NO_FPM)
            u.taintFpm = static_cast<uint8_t>(Fpm::WD);
        pregLastRead[preg] = cycle;
        return prf[preg];
    }

    void scheduleWb(int slot, uint64_t seq, int latency)
    {
        assert(latency >= 1 && latency < WHEEL_SIZE);
        wheel[(cycle + static_cast<uint64_t>(latency)) % WHEEL_SIZE]
            .push_back({slot, seq});
    }

    void issueStage()
    {
        int issued = 0;
        size_t keep = 0;
        for (size_t i = 0; i < iq.size(); ++i) {
            const Ref ref = iq[i];
            Uop &u = rob[ref.slot];
            const bool live = !u.squashed && u.seq == ref.seq;
            if (!live)
                continue; // drop squashed entries
            if (u.state != 0) {
                continue; // already issued (shouldn't stay in IQ)
            }
            if (issued >= cfg.issueWidth || !trylIssue(u, issued)) {
                iq[keep++] = ref;
                continue;
            }
        }
        iq.resize(keep);
    }

    /** Try to issue one uop; true if it left the IQ. */
    bool trylIssue(Uop &u, int &issued)
    {
        // Faulting fetches complete immediately; the exception fires
        // at commit.
        if (u.exc != Exc::None) {
            u.state = 1;
            scheduleWb(static_cast<int>(&u - rob.data()), u.seq, 1);
            return true;
        }
        if (!srcsReady(u))
            return false;

        const OpInfo &info = u.d.info();

        // Privileged instructions in user mode fault.
        if (info.privileged && !u.kernel) {
            u.exc = Exc::Priv;
            u.state = 1;
            scheduleWb(static_cast<int>(&u - rob.data()), u.seq, 1);
            return true;
        }

        if (u.isLoad)
            return issueLoad(u, issued);

        const int slot = static_cast<int>(&u - rob.data());
        const uint64_t v1 = readSrc(u, u.psrc1);
        const uint64_t v2 = readSrc(u, u.psrc2);
        const uint64_t v3 = readSrc(u, u.psrc3);
        int lat = 1;

        if (u.isStore) {
            const uint32_t addr = static_cast<uint32_t>(
                spec.maskVal(v1 + static_cast<uint64_t>(u.d.imm)));
            LsqEntry &e = sq[u.sqIdx];
            const unsigned bytes = e.bytes;
            Exc exc = validateData(addr, bytes, u.kernel, true);
            if (exc != Exc::None) {
                u.exc = exc;
            } else {
                e.addr = addr;
                e.data = v3;
                e.addrValid = true;
                e.mmio = memmap::inMmio(addr);
                e.taintAddr = e.taintData = false;
            }
        } else if (u.serial) {
            // Effects at commit; MFEPC/MTEPC move values now.
            if (u.d.op == Op::MFEPC)
                u.result = epc;
            if (u.d.op == Op::MTEPC)
                u.result = v3;
        } else if (u.d.op == Op::DCCB) {
            u.result = v3; // address; the clean happens at commit
        } else if (info.isBranch) {
            executeBranch(u, v1, v2, v3);
        } else if (info.writesRd) {
            const uint64_t old = u.psrc3 >= 0 ? v3 : 0;
            u.result = spec.maskVal(aluResult(spec, u.d, v1, v2, old));
            if (u.d.op == Op::MUL)
                lat = cfg.mulLatency;
            else if (u.d.op == Op::UDIV || u.d.op == Op::SDIV ||
                     u.d.op == Op::UREM || u.d.op == Op::SREM)
                lat = cfg.divLatency;
        }

        u.state = 1;
        scheduleWb(slot, u.seq, lat);
        ++issued;
        return true;
    }

    Exc validateData(uint32_t addr, unsigned bytes, bool kernel,
                     bool isStore) const
    {
        (void)isStore;
        if (addr % bytes != 0)
            return Exc::Misaligned;
        if (memmap::inMmio(addr))
            return kernel ? Exc::None : Exc::Priv;
        if (!memmap::inRam(addr, bytes))
            return Exc::BadAddr;
        if (!kernel && !memmap::userAccessible(addr, bytes))
            return Exc::Priv;
        return Exc::None;
    }

    bool issueLoad(Uop &u, int &issued)
    {
        const int slot = static_cast<int>(&u - rob.data());
        const uint64_t v1 = readSrc(u, u.psrc1);
        const uint32_t addr = static_cast<uint32_t>(
            spec.maskVal(v1 + static_cast<uint64_t>(u.d.imm)));
        LsqEntry &e = lq[u.lqIdx];
        const unsigned bytes = e.bytes;

        const Exc exc = validateData(addr, bytes, u.kernel, false);
        if (exc != Exc::None) {
            u.exc = exc;
            u.state = 1;
            scheduleWb(slot, u.seq, 1);
            ++issued;
            return true;
        }

        int lat;
        uint64_t val = 0;
        if (memmap::inMmio(addr)) {
            if (!hub->load(addr, cycle, val)) {
                u.exc = Exc::BadMmio;
                u.state = 1;
                scheduleWb(slot, u.seq, 1);
                ++issued;
                return true;
            }
            lat = 20;
        } else {
            // Memory disambiguation against older stores.
            const LsqEntry *fwd = nullptr;
            for (int n = 0, idx = sqHead; n < sqCount;
                 ++n, idx = (idx + 1) % cfg.sqSize) {
                const LsqEntry &s = sq[idx];
                if (!s.valid || s.seq >= u.seq)
                    continue;
                if (!s.addrValid)
                    return false; // unknown older store: wait
                const uint32_t sLo = s.addr, sHi = s.addr + s.bytes;
                const uint32_t lLo = addr, lHi = addr + bytes;
                if (sLo < lHi && lLo < sHi) {
                    if (sLo == lLo && s.bytes >= bytes) {
                        fwd = &s; // youngest covering store wins
                    } else {
                        return false; // partial overlap: wait
                    }
                }
            }
            if (fwd) {
                val = fwd->data;
                if (bytes < 8)
                    val &= (1ull << (bytes * 8)) - 1;
                if (fwd->taintData && u.taintFpm == NO_FPM)
                    u.taintFpm = static_cast<uint8_t>(Fpm::WD);
                lat = 1;
            } else {
                std::optional<Fpm> fpm;
                lat = hier.read(addr, bytes, val, cycle, &fpm);
                if (fpm && u.taintFpm == NO_FPM)
                    u.taintFpm = static_cast<uint8_t>(*fpm);
            }
        }

        if (u.d.op == Op::LDB) {
            val = static_cast<uint64_t>(
                static_cast<int64_t>(static_cast<int8_t>(val)));
        }
        e.addr = addr;
        e.addrValid = true;
        e.data = spec.maskVal(val);
        e.taintAddr = e.taintData = false;

        ++stats.loads;
        u.state = 1;
        scheduleWb(slot, u.seq, lat);
        ++issued;
        return true;
    }

    void executeBranch(Uop &u, uint64_t v1, uint64_t v2, uint64_t v3)
    {
        ++stats.branches;
        const uint32_t fallthrough = u.pc + 4;
        uint32_t actual;
        bool taken = true;
        switch (u.d.op) {
          case Op::B:
            actual = u.pc + static_cast<uint32_t>(u.d.imm);
            break;
          case Op::BL:
            actual = u.pc + static_cast<uint32_t>(u.d.imm);
            u.result = fallthrough;
            break;
          case Op::BR:
            actual = static_cast<uint32_t>(spec.maskVal(v3));
            break;
          case Op::BLR:
            actual = static_cast<uint32_t>(spec.maskVal(v3));
            u.result = fallthrough;
            break;
          default:
            taken = branchTaken(spec, u.d.op, v1, v2);
            actual = taken ? u.pc + static_cast<uint32_t>(u.d.imm)
                           : fallthrough;
            // Bimodal update.
            uint8_t &ctr =
                bimodal[(u.pc >> 2) & (cfg.bimodalEntries - 1)];
            if (taken && ctr < 3)
                ++ctr;
            if (!taken && ctr > 0)
                --ctr;
            break;
        }
        if (u.d.op == Op::BR || u.d.op == Op::BLR)
            btb[(u.pc >> 2) & (cfg.btbEntries - 1)] = {u.pc, actual};

        if (actual != u.predNext) {
            ++stats.mispredicts;
            squashAfter(u.seq);
            fetchPC = actual;
            fetchStallUntil =
                cycle + static_cast<uint64_t>(cfg.mispredictPenalty);
        }
    }

    // ---- writeback ------------------------------------------------------
    void writebackStage()
    {
        auto &bucket = wheel[cycle % WHEEL_SIZE];
        for (const Ref &ref : bucket) {
            Uop &u = rob[ref.slot];
            if (u.squashed || u.seq != ref.seq)
                continue;
            if (u.isLoad && u.lqIdx >= 0 && u.exc == Exc::None) {
                LsqEntry &e = lq[u.lqIdx];
                u.result = spec.maskVal(e.data);
                if (e.taintData && u.taintFpm == NO_FPM)
                    u.taintFpm = static_cast<uint8_t>(Fpm::WD);
            }
            if (u.pdst >= 0) {
                prf[u.pdst] = spec.maskVal(u.result);
                pregReady[u.pdst] = 1;
                pregWriteCycle[u.pdst] = cycle;
                pregLastRead[u.pdst] = cycle;
                if (u.pdst == taintedPreg)
                    taintedPreg = -1; // overwritten: hardware-masked
            }
            u.state = 2;
        }
        bucket.clear();
    }

    // ---- commit ---------------------------------------------------------
    void commitStage()
    {
        for (int n = 0; n < cfg.commitWidth && robCount > 0; ++n) {
            Uop &u = rob[robHead];
            if (u.state != 2)
                return;

            if (u.exc != Exc::None) {
                fail(u.exc, u);
                return;
            }
            if (u.taintFpm != NO_FPM)
                tracker.markVisible(static_cast<Fpm>(u.taintFpm), cycle);

            if (u.isStore) {
                if (!commitStore(u))
                    return;
            }
            if (u.isLoad) {
                lq[u.lqIdx].valid = false;
                lqHead = (lqHead + 1) % cfg.lqSize;
                --lqCount;
            }
            if (u.pdst >= 0 && u.poldDst >= 0) {
                // ACE-lite: the superseded register was architecturally
                // required from its write until its last read.
                const int old = u.poldDst;
                if (pregLastRead[old] > pregWriteCycle[old]) {
                    stats.rfAceBitCycles +=
                        (pregLastRead[old] - pregWriteCycle[old]) *
                        static_cast<uint64_t>(spec.xlen);
                }
                freeList.push_back(old);
            }

            if (u.d.op == Op::DCCB) {
                hier.cleanLine(static_cast<uint32_t>(
                    spec.maskVal(u.result)));
            }
            if (u.serial)
                commitSerial(u);

            ++committed;
            if (u.kernel)
                ++kernelInsts;
            lastCommitCycle = cycle;
            robHead = (robHead + 1) % cfg.robSize;
            --robCount;

            // exit()/detect() take effect at the committing store.
            if (hub->exited()) {
                stop = StopReason::Exited;
                hub->flush();
            } else if (hub->detected()) {
                stop = StopReason::DetectHit;
                hub->flush();
            }
            if (stop != StopReason::Running)
                return;
        }
    }

    bool commitStore(Uop &u)
    {
        LsqEntry &e = sq[u.sqIdx];
        // Re-validate: the queued address may have been corrupted.
        const Exc exc = validateData(e.addr, e.bytes, u.kernel, true);
        if (exc != Exc::None) {
            fail(exc, u);
            return false;
        }
        if (e.taintData)
            tracker.markVisible(Fpm::WD, cycle);
        if (e.taintAddr)
            tracker.markVisible(Fpm::WOI, cycle);

        if (memmap::inMmio(e.addr)) {
            if (!hub->store(e.addr, e.data, cycle)) {
                fail(Exc::BadMmio, u);
                return false;
            }
        } else {
            hier.write(e.addr, e.bytes, e.data, cycle);
        }
        ++stats.stores;
        e.valid = false;
        sqHead = (sqHead + 1) % cfg.sqSize;
        --sqCount;
        return true;
    }

    void commitSerial(Uop &u)
    {
        uint32_t next = u.pc + 4;
        switch (u.d.op) {
          case Op::SYSCALL:
            epc = u.pc + 4;
            kernelMode = true;
            next = memmap::TRAP_VECTOR;
            break;
          case Op::ERET:
            kernelMode = false;
            next = static_cast<uint32_t>(epc);
            break;
          case Op::HALT:
            stop = StopReason::Exited;
            hub->flush();
            return;
          case Op::MTEPC:
            epc = u.result;
            break;
          case Op::MFEPC:
            break;
          default:
            panic("unexpected serial op");
        }
        fetchBuf.clear();
        fetchBlocked = false;
        fetchPC = next;
        fetchStallUntil = cycle + 1;
    }

    // ---- main loop ------------------------------------------------------
    /**
     * Synthesize the exact end-of-run result for a run whose state
     * digest matched the golden digest at grid point k: from there the
     * two trajectories are bit-identical, so the remaining output is
     * the golden streams past the grid marks and the totals are the
     * golden totals (instruction/cycle counters are digested, hence
     * already equal).
     */
    UarchRunResult earlyResult(const UarchTrace &t, size_t k) const
    {
        const DeviceOutput &o = hub->output();
        UarchRunResult r = t.final;
        r.output.dma = o.dma;
        r.output.dma.insert(r.output.dma.end(),
                            t.final.output.dma.begin() +
                                static_cast<long>(t.dmaLens[k]),
                            t.final.output.dma.end());
        r.output.console = o.console;
        r.output.console.append(t.final.output.console, t.consoleLens[k],
                                std::string::npos);
        r.visibility = tracker.visibility();
        const bool prefixClean =
            o.dma.size() == t.dmaLens[k] &&
            std::equal(o.dma.begin(), o.dma.end(),
                       t.final.output.dma.begin());
        r.reconverge = prefixClean ? UarchRunResult::Reconverge::Clean
                                   : UarchRunResult::Reconverge::Diverged;
        return r;
    }

    /**
     * The one run loop behind run()/runRecording()/runWithTrace().
     *
     * With `record`, this is a golden recording run: a state digest
     * every `recInterval` cycles, a full checkpoint every
     * `recCkptEvery` digests (plus one before the first cycle), and
     * the final result captured into the trace.
     *
     * With `check` + `earlyStop`, the run probes for reconvergence
     * with the golden trajectory at every grid cycle and terminates
     * with a synthesized result once that is provably exact:
     *  - the golden run exited cleanly within this run's own cycle
     *    budget (a tighter watchdog keeps run-to-the-end semantics);
     *  - no injection is still pending and no fault bit is latent in
     *    any tracked structure (register/LSQ taint is digested, so a
     *    digest match already excludes it; memory-hierarchy taint is
     *    checked explicitly) — the HVF verdict is final;
     *  - the state digest (live pipeline + caches + devices + RAM
     *    page CRCs) equals the golden digest for the same cycle;
     *  - neither run's output can cross the capture cap, so the
     *    spliced output streams are exact.
     */
    UarchRunResult runLoop(uint64_t maxCycles, const UarchTrace *check,
                           bool earlyStop, UarchTrace *record,
                           uint64_t recInterval, unsigned recCkptEvery)
    {
        if (record) {
            if (recInterval == 0 || recCkptEvery == 0)
                panic("runRecording: cadence must be nonzero");
            record->interval = recInterval;
            record->digests.clear();
            record->dmaLens.clear();
            record->consoleLens.clear();
            record->checkpoints.clear();
            record->checkpoints.push_back({cycle, takeSnapshot(nullptr)});
        }

        const bool stopEligible =
            earlyStop && check && check->recorded() &&
            check->final.stop == StopReason::Exited &&
            !check->final.output.truncated &&
            maxCycles >= check->final.cycles;
        unsigned digestFails = 0;

        while (stop == StopReason::Running) {
            ++cycle;
            if (kernelMode)
                ++kernelCycles;

            if (!pendingInjections.empty()) {
                for (size_t i = 0; i < pendingInjections.size();) {
                    if (pendingInjections[i].cycle <= cycle) {
                        applyInjection(pendingInjections[i]);
                        pendingInjections.erase(
                            pendingInjections.begin() +
                            static_cast<long>(i));
                    } else {
                        ++i;
                    }
                }
            }

            commitStage();
            if (stop != StopReason::Running)
                break;
            writebackStage();
            issueStage();
            renameStage();
            fetchStage();

            hub->tick(cycle);
            if (hub->exited()) {
                stop = StopReason::Exited;
                hub->flush();
                break;
            }
            if (hub->detected()) {
                stop = StopReason::DetectHit;
                hub->flush();
                break;
            }

            if (record && cycle % recInterval == 0) {
                record->digests.push_back(stateDigest());
                record->dmaLens.push_back(hub->output().dma.size());
                record->consoleLens.push_back(
                    hub->output().console.size());
                if (record->digests.size() % recCkptEvery == 0)
                    record->checkpoints.push_back(
                        {cycle,
                         takeSnapshot(
                             record->checkpoints.back().state.get())});
            }

            if (stopEligible && digestFails < DIGEST_GIVE_UP &&
                cycle % check->interval == 0) {
                const size_t k = cycle / check->interval - 1;
                if (k < check->digests.size() &&
                    pendingInjections.empty() &&
                    (tracker.empty() ||
                     tracker.visibility().visible)) {
                    if (stateDigest() != check->digests[k]) {
                        ++digestFails;
                    } else {
                        const DeviceOutput &o = hub->output();
                        if (!o.truncated &&
                            o.dma.size() +
                                    (check->final.output.dma.size() -
                                     check->dmaLens[k]) <=
                                DeviceHub::captureCap)
                            return earlyResult(*check, k);
                    }
                }
            }

            if (cycle >= maxCycles ||
                cycle - lastCommitCycle > 200'000) {
                stop = StopReason::Watchdog;
                excMsg = "watchdog";
                break;
            }
        }

        UarchRunResult r;
        r.stop = stop;
        r.excMsg = excMsg;
        r.cycles = cycle;
        r.insts = committed;
        r.kernelInsts = kernelInsts;
        r.kernelCycles = kernelCycles;
        r.output = hub->output();
        r.visibility = tracker.visibility();
        if (record)
            record->final = r;
        return r;
    }
};

CycleSim::CycleSim(const CoreConfig &cfg)
    : impl(std::make_unique<Impl>(cfg, stats_)), cfg(cfg)
{
}

CycleSim::~CycleSim() = default;

void
CycleSim::load(const Program &image)
{
    if (image.isa != cfg.isa)
        throw ImageLoadError(strprintf(
            "image ISA does not match core '%s'", cfg.name.c_str()));
    impl->reset(image);
}

void
CycleSim::scheduleInjection(const FaultSite &site)
{
    impl->pendingInjections.push_back(site);
}

UarchRunResult
CycleSim::run(uint64_t maxCycles)
{
    return impl->runLoop(maxCycles, nullptr, false, nullptr, 0, 0);
}

UarchRunResult
CycleSim::runRecording(uint64_t maxCycles, UarchTrace &trace,
                       uint64_t digestInterval,
                       unsigned digestsPerCheckpoint)
{
    return impl->runLoop(maxCycles, nullptr, false, &trace, digestInterval,
                         digestsPerCheckpoint);
}

UarchRunResult
CycleSim::runWithTrace(uint64_t maxCycles, const UarchTrace &trace,
                       bool earlyStop)
{
    return impl->runLoop(maxCycles, &trace, earlyStop, nullptr, 0, 0);
}

std::shared_ptr<const UarchSnapshot>
CycleSim::snapshot(const UarchSnapshot *prev)
{
    return impl->takeSnapshot(prev);
}

void
CycleSim::restore(std::shared_ptr<const UarchSnapshot> snap)
{
    impl->restoreState(std::move(snap));
}

uint64_t
CycleSim::structureBits(Structure s) const
{
    switch (s) {
      case Structure::RF: return cfg.rfBits();
      case Structure::LSQ: return cfg.lsqBits();
      case Structure::L1I: return cfg.l1i.totalBits();
      case Structure::L1D: return cfg.l1d.totalBits();
      case Structure::L2: return cfg.l2.totalBits();
    }
    return 0;
}

} // namespace vstack
