#include "archsim.h"

#include <cassert>

#include "support/crc32c.h"
#include "support/failpoint.h"
#include "support/fastpath.h"
#include "support/logging.h"

namespace vstack
{

/** Complete captured state of one ArchSim. */
struct ArchSnapshot
{
    IsaId isa;
    uint64_t icount = 0;
    std::vector<uint8_t> state;
    snap::MemImage mem;
};

ArchSim::ArchSim(const ArchConfig &cfg)
    : cfg(cfg), spec_(IsaSpec::get(cfg.isa))
{
    hub = std::make_unique<DeviceHub>(
        [this](uint32_t addr, uint8_t *dst, size_t n) {
            // Functional DMA: straight out of RAM.
            if (memmap::inRam(addr, static_cast<unsigned>(n)))
                mem_.readBlock(addr, dst, n);
            else
                std::memset(dst, 0, n);
        },
        cfg.dmaDelay);
}

void
ArchSim::load(const Program &image)
{
    mem_.clear();
    mem_.load(image);
    hub->reset();
    regs.fill(0);
    pc_ = image.entry;
    epc = 0;
    kernel = true;
    icount = 0;
    kcount = 0;
    stop = StopReason::Running;
    excMsg.clear();

    pageCrcValid = false;
    ckptDirty.markAll();
    lastRestored.reset();
    if (fastPathEnabled())
        seedPageCrc(image);
}

/**
 * Seed the per-page CRC table right after load() instead of letting
 * the first stateDigest() walk all of RAM: freshly cleared pages all
 * share one precomputed zero-page CRC, so only pages the image
 * actually initialises need hashing.  Values are identical to a full
 * walk (the CRC of an untouched page IS the zero-page CRC) — this
 * only moves the work off the first digest and shrinks it to the
 * image's footprint.
 */
void
ArchSim::seedPageCrc(const Program &image)
{
    static const uint32_t zeroCrc = [] {
        const std::vector<uint8_t> z(snap::PAGE_SIZE, 0);
        return crc32c(z.data(), z.size());
    }();
    const size_t nPages = mem_.numPages();
    pageCrc.assign(nPages, zeroCrc);
    std::vector<bool> touched(nPages, false);
    for (const Segment &s : image.segments) {
        const size_t p0 = s.addr >> snap::PAGE_SHIFT;
        const size_t p1 = (s.addr + s.bytes.size() + snap::PAGE_SIZE - 1) >>
                          snap::PAGE_SHIFT;
        for (size_t p = p0; p < p1 && p < nPages; ++p)
            touched[p] = true;
    }
    for (size_t p = 0; p < nPages; ++p)
        if (touched[p])
            pageCrc[p] = crc32c(mem_.data() + p * snap::PAGE_SIZE,
                                snap::PAGE_SIZE);
    mem_.digestDirty().clearAll();
    pageCrcValid = true;
}

void
ArchSim::harvestPageCrc()
{
    const size_t nPages = mem_.numPages();
    if (!pageCrcValid) {
        pageCrc.resize(nPages);
        for (size_t p = 0; p < nPages; ++p) {
            pageCrc[p] = crc32c(mem_.data() + p * snap::PAGE_SIZE,
                                snap::PAGE_SIZE);
            ckptDirty.mark(p);
        }
        mem_.digestDirty().clearAll();
        pageCrcValid = true;
        return;
    }
    mem_.digestDirty().forEachDirty([&](size_t p) {
        pageCrc[p] = crc32c(mem_.data() + p * snap::PAGE_SIZE,
                            snap::PAGE_SIZE);
        ckptDirty.mark(p);
    });
    mem_.digestDirty().clearAll();
}

void
ArchSim::serializeState(snap::ByteSink &s, bool digest) const
{
    for (uint64_t r : regs)
        s.u64(r);
    s.u64(pc_);
    s.u64(epc);
    s.b(kernel);
    s.u64(icount);
    s.u64(kcount);
    hub->saveState(s, digest);
    if (!digest) {
        s.u8(static_cast<uint8_t>(stop));
        s.str(excMsg);
    }
}

uint32_t
ArchSim::stateDigest()
{
    harvestPageCrc();
    if (!fastPathEnabled()) {
        // Escape hatch: a fresh sink per digest, like the original
        // pipeline (same value, original allocation cost).
        snap::ByteSink s;
        serializeState(s, /*digest=*/true);
        s.bytes(pageCrc.data(), pageCrc.size() * sizeof(uint32_t));
        return crc32c(s.data().data(), s.size());
    }
    // Fast path: harvest into the persistent staging buffer (capacity
    // survives clear(), so steady-state digests allocate nothing) and
    // CRC it in one pass.
    digestSink.clear();
    serializeState(digestSink, /*digest=*/true);
    digestSink.bytes(pageCrc.data(), pageCrc.size() * sizeof(uint32_t));
    return crc32c(digestSink.data().data(), digestSink.size());
}

std::shared_ptr<const ArchSnapshot>
ArchSim::snapshot(const ArchSnapshot *prev)
{
    harvestPageCrc();
    auto snapPtr = std::make_shared<ArchSnapshot>();
    snapPtr->isa = cfg.isa;
    snapPtr->icount = icount;
    snap::ByteSink s;
    serializeState(s, /*digest=*/false);
    snapPtr->state = s.take();
    snapPtr->mem = snap::MemImage::capture(mem_.data(), mem_.size(),
                                           ckptDirty, pageCrc,
                                           prev ? &prev->mem : nullptr);
    ckptDirty.clearAll();
    return snapPtr;
}

void
ArchSim::restore(std::shared_ptr<const ArchSnapshot> snapPtr)
{
    if (snapPtr->isa != cfg.isa)
        panic("restoring a snapshot across ISA variants");
    snapPtr->mem.restore(mem_.data(), mem_.size(),
                         lastRestored ? &lastRestored->mem : nullptr,
                         &mem_.restoreDirty());
    mem_.restoreDirty().clearAll();
    mem_.digestDirty().clearAll();
    pageCrc = snapPtr->mem.pageCrc;
    pageCrcValid = true;
    ckptDirty.markAll();

    snap::ByteSource src(snapPtr->state);
    for (uint64_t &r : regs)
        r = src.u64();
    pc_ = src.u64();
    epc = src.u64();
    kernel = src.b();
    icount = src.u64();
    kcount = src.u64();
    hub->loadState(src);
    stop = static_cast<StopReason>(src.u8());
    excMsg = src.str();
    if (!src.atEnd())
        panic("ArchSim snapshot has trailing bytes");
    lastRestored = std::move(snapPtr);
}

void
ArchSim::writeReg(int reg, uint64_t v)
{
    if (reg == spec_.zeroReg)
        return;
    regs[reg] = spec_.maskVal(v);
}

void
ArchSim::raise(const std::string &msg)
{
    stop = StopReason::Exception;
    excMsg = strprintf("%s (pc=0x%08llx, %s mode, inst %llu)", msg.c_str(),
                       static_cast<unsigned long long>(pc_),
                       kernel ? "kernel" : "user",
                       static_cast<unsigned long long>(icount));
}

bool
ArchSim::memAccess(uint64_t addr, unsigned bytes, bool isStore,
                   uint64_t &val)
{
    if (addr % bytes != 0) {
        raise(strprintf("misaligned %u-byte access at 0x%llx", bytes,
                        static_cast<unsigned long long>(addr)));
        return false;
    }
    if (memmap::inMmio(addr)) {
        if (!kernel) {
            raise("user access to MMIO");
            return false;
        }
        bool ok = isStore
                      ? hub->store(static_cast<uint32_t>(addr), val, icount)
                      : hub->load(static_cast<uint32_t>(addr), icount, val);
        if (!ok) {
            raise(strprintf("unmapped MMIO 0x%llx",
                            static_cast<unsigned long long>(addr)));
            return false;
        }
        return true;
    }
    if (!memmap::inRam(addr, bytes)) {
        raise(strprintf("bad address 0x%llx",
                        static_cast<unsigned long long>(addr)));
        return false;
    }
    if (!kernel && !memmap::userAccessible(addr, bytes)) {
        raise(strprintf("user access to kernel memory 0x%llx",
                        static_cast<unsigned long long>(addr)));
        return false;
    }
    if (isStore)
        mem_.write(static_cast<uint32_t>(addr), val, bytes);
    else
        val = mem_.read(static_cast<uint32_t>(addr), bytes);
    return true;
}

bool
ArchSim::peek(DecodedInst &out) const
{
    if (stop != StopReason::Running)
        return false;
    if (pc_ % 4 != 0 || !memmap::inRam(pc_, 4))
        return false;
    out = decode(cfg.isa, static_cast<uint32_t>(mem_.read(
                              static_cast<uint32_t>(pc_), 4)));
    return true;
}

bool
ArchSim::step()
{
    return stepWith(nullptr);
}

bool
ArchSim::stepWith(const DecodedInst *pre)
{
    if (stop != StopReason::Running)
        return false;
    if (icount >= cfg.maxInsts) {
        stop = StopReason::Watchdog;
        return false;
    }

    // Fetch.  A predecode hint (`pre`) skips only the RAM read and
    // the field decode — the caller has already proven the live word
    // matches the predecoded one — never the permission ladder.
    if (pc_ % 4 != 0) {
        raise("misaligned pc");
        return false;
    }
    if (!memmap::inRam(pc_, 4)) {
        raise("fetch from unmapped address");
        return false;
    }
    if (!kernel && !memmap::userAccessible(pc_, 4)) {
        raise("user fetch from kernel memory");
        return false;
    }
    DecodedInst slow;
    if (!pre) {
        const uint32_t word =
            static_cast<uint32_t>(mem_.read(static_cast<uint32_t>(pc_), 4));
        slow = decode(cfg.isa, word);
        if (!slow.valid) {
            raise(strprintf("undefined instruction 0x%08x", word));
            return false;
        }
        pre = &slow;
    }
    const DecodedInst &d = *pre;
    const OpInfo &info = d.info();
    if (info.privileged && !kernel) {
        raise(strprintf("privileged instruction '%s' in user mode",
                        info.name));
        return false;
    }

    ++icount;
    if (kernel)
        ++kcount;

    uint64_t next = pc_ + 4;
    const int xlen = spec_.xlen;
    auto rs1 = [&] { return regs[d.rs1]; };
    auto rs2 = [&] { return regs[d.rs2]; };
    auto sv = [&](uint64_t v) { return spec_.signedVal(v); };

    switch (d.op) {
      case Op::NOP:
        break;
      case Op::HALT:
        stop = StopReason::Exited;
        hub->flush();
        pc_ = next;
        return false;
      case Op::SYSCALL:
        epc = next;
        kernel = true;
        next = memmap::TRAP_VECTOR;
        break;
      case Op::ERET:
        kernel = false;
        next = epc;
        break;
      case Op::MTEPC:
        epc = regs[d.rd];
        break;
      case Op::MFEPC:
        writeReg(d.rd, epc);
        break;
      case Op::DCCB:
        // Functional model: memory is always coherent.
        break;

      case Op::ADD: writeReg(d.rd, rs1() + rs2()); break;
      case Op::SUB: writeReg(d.rd, rs1() - rs2()); break;
      case Op::AND: writeReg(d.rd, rs1() & rs2()); break;
      case Op::ORR: writeReg(d.rd, rs1() | rs2()); break;
      case Op::EOR: writeReg(d.rd, rs1() ^ rs2()); break;
      case Op::MUL: writeReg(d.rd, rs1() * rs2()); break;
      case Op::UDIV:
        writeReg(d.rd, rs2() == 0 ? 0 : rs1() / rs2());
        break;
      case Op::SDIV: {
        int64_t a = sv(rs1()), b = sv(rs2());
        int64_t q;
        if (b == 0)
            q = 0;
        else if (a == INT64_MIN && b == -1)
            q = a;
        else
            q = a / b;
        writeReg(d.rd, static_cast<uint64_t>(q));
        break;
      }
      case Op::UREM:
        writeReg(d.rd, rs2() == 0 ? rs1() : rs1() % rs2());
        break;
      case Op::SREM: {
        int64_t a = sv(rs1()), b = sv(rs2());
        int64_t r;
        if (b == 0)
            r = a;
        else if (a == INT64_MIN && b == -1)
            r = 0;
        else
            r = a % b;
        writeReg(d.rd, static_cast<uint64_t>(r));
        break;
      }
      case Op::LSLV:
        writeReg(d.rd, rs1() << (rs2() & (xlen - 1)));
        break;
      case Op::LSRV:
        writeReg(d.rd, spec_.maskVal(rs1()) >> (rs2() & (xlen - 1)));
        break;
      case Op::ASRV:
        writeReg(d.rd,
                 static_cast<uint64_t>(sv(rs1()) >> (rs2() & (xlen - 1))));
        break;
      case Op::SLT:
        writeReg(d.rd, sv(rs1()) < sv(rs2()) ? 1 : 0);
        break;
      case Op::SLTU:
        writeReg(d.rd,
                 spec_.maskVal(rs1()) < spec_.maskVal(rs2()) ? 1 : 0);
        break;

      case Op::ADDI:
        writeReg(d.rd, rs1() + static_cast<uint64_t>(d.imm));
        break;
      case Op::ANDI:
        writeReg(d.rd, rs1() & static_cast<uint64_t>(d.imm));
        break;
      case Op::ORRI:
        writeReg(d.rd, rs1() | static_cast<uint64_t>(d.imm));
        break;
      case Op::EORI:
        writeReg(d.rd, rs1() ^ static_cast<uint64_t>(d.imm));
        break;
      case Op::LSLI:
        writeReg(d.rd, rs1() << (d.imm & (xlen - 1)));
        break;
      case Op::LSRI:
        writeReg(d.rd, spec_.maskVal(rs1()) >> (d.imm & (xlen - 1)));
        break;
      case Op::ASRI:
        writeReg(d.rd,
                 static_cast<uint64_t>(sv(rs1()) >> (d.imm & (xlen - 1))));
        break;
      case Op::SLTI:
        writeReg(d.rd, sv(rs1()) < d.imm ? 1 : 0);
        break;

      case Op::LUI:
        writeReg(d.rd, static_cast<uint64_t>(d.imm) << 10);
        break;
      case Op::MOVZ:
        writeReg(d.rd, static_cast<uint64_t>(d.imm) << (16 * d.hw));
        break;
      case Op::MOVK: {
        uint64_t mask = 0xffffull << (16 * d.hw);
        writeReg(d.rd, (regs[d.rd] & ~mask) |
                           (static_cast<uint64_t>(d.imm) << (16 * d.hw)));
        break;
      }

      case Op::LDX:
      case Op::LDW:
      case Op::LDBU:
      case Op::LDB: {
        unsigned bytes = d.op == Op::LDX   ? xlen / 8
                         : d.op == Op::LDW ? 4
                                           : 1;
        uint64_t addr = rs1() + static_cast<uint64_t>(d.imm);
        addr = spec_.maskVal(addr);
        uint64_t val = 0;
        if (!memAccess(addr, bytes, false, val))
            return false;
        if (d.op == Op::LDB)
            val = static_cast<uint64_t>(
                static_cast<int64_t>(static_cast<int8_t>(val)));
        writeReg(d.rd, val);
        break;
      }
      case Op::STX:
      case Op::STW:
      case Op::STB: {
        unsigned bytes = d.op == Op::STX   ? xlen / 8
                         : d.op == Op::STW ? 4
                                           : 1;
        uint64_t addr = rs1() + static_cast<uint64_t>(d.imm);
        addr = spec_.maskVal(addr);
        uint64_t val = regs[d.rd];
        if (!memAccess(addr, bytes, true, val))
            return false;
        break;
      }

      case Op::BEQ:
        if (rs1() == rs2())
            next = pc_ + static_cast<uint64_t>(d.imm);
        break;
      case Op::BNE:
        if (rs1() != rs2())
            next = pc_ + static_cast<uint64_t>(d.imm);
        break;
      case Op::BLT:
        if (sv(rs1()) < sv(rs2()))
            next = pc_ + static_cast<uint64_t>(d.imm);
        break;
      case Op::BGE:
        if (sv(rs1()) >= sv(rs2()))
            next = pc_ + static_cast<uint64_t>(d.imm);
        break;
      case Op::BLTU:
        if (spec_.maskVal(rs1()) < spec_.maskVal(rs2()))
            next = pc_ + static_cast<uint64_t>(d.imm);
        break;
      case Op::BGEU:
        if (spec_.maskVal(rs1()) >= spec_.maskVal(rs2()))
            next = pc_ + static_cast<uint64_t>(d.imm);
        break;
      case Op::B:
        next = pc_ + static_cast<uint64_t>(d.imm);
        break;
      case Op::BL:
        writeReg(spec_.lr, next);
        next = pc_ + static_cast<uint64_t>(d.imm);
        break;
      case Op::BR:
        next = regs[d.rd];
        break;
      case Op::BLR: {
        uint64_t target = regs[d.rd];
        writeReg(spec_.lr, next);
        next = target;
        break;
      }

      case Op::NumOps:
        raise("corrupt decode");
        return false;
    }

    pc_ = spec_.maskVal(next) & 0xffffffffull;
    hub->tick(icount);

    // exit()/detect() stop the machine at the next boundary.
    if (hub->exited()) {
        stop = StopReason::Exited;
        hub->flush();
        return false;
    }
    if (hub->detected()) {
        stop = StopReason::DetectHit;
        hub->flush();
        return false;
    }
    return true;
}

bool
ArchSim::stepFastTo(uint64_t stopAt)
{
    const ArchPredecode *pd = fastPd.get();
    if (pd && failpoint("fastpath.dispatch"))
        pd = nullptr; // forced fallback: decode-per-step for this call
    while (stop == StopReason::Running && icount < stopAt) {
        const DecodedInst *hint = nullptr;
        if (pd) {
            if (const ArchPredecode::Entry *e = pd->at(pc_)) {
                // The hint is only a hint: trust it when the live
                // word still matches (a mismatch means WI/WOI-flipped
                // or self-modified text — decode the real word).
                const uint32_t live = static_cast<uint32_t>(
                    mem_.read(static_cast<uint32_t>(pc_), 4));
                if (e->word == live)
                    hint = &e->d;
            }
        }
        if (!stepWith(hint))
            return false;
    }
    return stop == StopReason::Running;
}

ArchRunResult
ArchSim::run()
{
    stepFastTo(UINT64_MAX);
    return result();
}

ArchRunResult
ArchSim::result() const
{
    ArchRunResult r;
    r.stop = stop;
    r.exceptionMsg = excMsg;
    r.instCount = icount;
    r.kernelInsts = kcount;
    r.output = hub->output();
    return r;
}

} // namespace vstack
