/**
 * @file
 * Functional (architecture-level) full-system emulator.
 *
 * Executes a merged kernel+user image instruction-by-instruction with
 * the MMIO devices attached.  This is the architecture layer of the
 * vulnerability stack: it sees architectural registers, memory, the
 * dynamic instruction flow (user and kernel), and nothing
 * microarchitectural.  It serves three roles:
 *
 *  1. golden-reference generator (outputs, exit code, dynamic
 *     instruction counts) for all injection campaigns;
 *  2. the PVF injection vehicle (see pvf.h);
 *  3. a co-simulation oracle for the cycle-level core.
 */
#ifndef VSTACK_ARCH_ARCHSIM_H
#define VSTACK_ARCH_ARCHSIM_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "isa/isa.h"
#include "isa/predecode.h"
#include "isa/program.h"
#include "machine/devices.h"
#include "machine/memmap.h"
#include "machine/outcome.h"
#include "machine/physmem.h"
#include "support/snapshot.h"

namespace vstack
{

/**
 * Opaque full-state snapshot of an ArchSim (defined in archsim.cc):
 * serialized architectural + device state plus a copy-on-write image
 * of guest RAM.  The watchdog budget (cfg.maxInsts) is deliberately
 * not captured — setMaxInsts() stays in effect across restore().
 */
struct ArchSnapshot;

/** Result of a completed run. */
struct ArchRunResult
{
    StopReason stop = StopReason::Running;
    std::string exceptionMsg;
    uint64_t instCount = 0;
    uint64_t kernelInsts = 0;
    DeviceOutput output;
};

/** Configuration of the functional emulator. */
struct ArchConfig
{
    IsaId isa = IsaId::Av64;
    uint64_t maxInsts = 200'000'000; ///< watchdog budget
    uint64_t dmaDelay = 1024;        ///< DMA latency in instructions
};

/**
 * The functional emulator.  Construct, load(), then run() — or drive
 * step() manually for fault injection.
 */
class ArchSim
{
  public:
    explicit ArchSim(const ArchConfig &cfg);

    /** Load a merged system image and reset all state. */
    void load(const Program &image);

    /** Adjust the watchdog budget (before or between runs). */
    void setMaxInsts(uint64_t n) { cfg.maxInsts = n; }

    /** Run until a stop condition; returns the result summary. */
    ArchRunResult run();

    /**
     * Execute one instruction.  Returns false once stopped (check
     * stopReason()).
     */
    bool step();

    /** @name Predecoded fast path @{ */
    /**
     * Attach a predecoded image (isa/predecode.h) built from the same
     * program this simulator runs.  Shared and immutable — one
     * predecode serves every worker of a campaign.  nullptr detaches.
     * Purely a speed hint: execution is bit-identical with or without
     * it (every predecoded entry is verified against live memory
     * before use).
     */
    void setFastPath(std::shared_ptr<const ArchPredecode> pd)
    {
        fastPd = std::move(pd);
    }
    const std::shared_ptr<const ArchPredecode> &fastPath() const
    {
        return fastPd;
    }

    /**
     * Run until instCount() reaches `stopAt` exactly, or the machine
     * stops, whichever is first; returns true while still running.
     * Uses predecoded dispatch for every instruction whose live text
     * word matches the attached predecode (decode hoisted out of the
     * loop) and falls back to the one-word decoder otherwise, so it is
     * safe on self-modified or fault-corrupted text — but campaign
     * code only calls it on fault-free windows (golden runs, the
     * pre-injection fast-forward, the post-reconvergence tail, cold
     * audits) per the fastpath doctrine (DESIGN.md §12).  The
     * `fastpath.dispatch` failpoint forces the fallback decoder for
     * the whole call.  Without an attached predecode this is exactly
     * `while (icount < stopAt && step())`.
     */
    bool stepFastTo(uint64_t stopAt);
    /** @} */

    /** @name Architectural state access (for fault injection) @{ */
    uint64_t readReg(int reg) const { return regs[reg]; }
    void writeReg(int reg, uint64_t v);
    uint64_t pc() const { return pc_; }
    void setPc(uint64_t v) { pc_ = v; }
    bool kernelMode() const { return kernel; }
    PhysMem &mem() { return mem_; }
    const PhysMem &mem() const { return mem_; }
    DeviceHub &devices() { return *hub; }
    /** @} */

    uint64_t instCount() const { return icount; }
    uint64_t kernelInsts() const { return kcount; }
    StopReason stopReason() const { return stop; }
    const std::string &exceptionMsg() const { return excMsg; }

    /** Result summary after the run stopped. */
    ArchRunResult result() const;

    const IsaSpec &spec() const { return spec_; }

    /**
     * Decode the instruction the next step() will execute (without
     * side effects).  Valid while running and pc is fetchable.
     */
    bool peek(DecodedInst &out) const;

    /** @name Checkpoint/restore fast-forward @{ */
    /**
     * Capture complete emulator state.  `prev` (a snapshot taken
     * earlier in the SAME run) enables page sharing for unmodified
     * memory.
     */
    std::shared_ptr<const ArchSnapshot> snapshot(
        const ArchSnapshot *prev = nullptr);

    /** Restore a snapshot taken on a same-ISA emulator; replaces
     *  load() for fast-forwarded runs. */
    void restore(std::shared_ptr<const ArchSnapshot> snap);

    /** CRC-32C of the complete architectural + device-forwarding
     *  state (registers, pc/epc/mode, counters, DMA engine, RAM page
     *  CRCs).  Equal digests at equal instruction counts mean the two
     *  runs' futures are identical. */
    uint32_t stateDigest();
    /** @} */

  private:
    void raise(const std::string &msg);
    bool memAccess(uint64_t addr, unsigned bytes, bool isStore,
                   uint64_t &val);
    /** step() with an optional verified predecode hint (skips fetch
     *  read + decode; all other checks and semantics identical). */
    bool stepWith(const DecodedInst *pre);
    void harvestPageCrc();
    void seedPageCrc(const Program &image);
    void serializeState(snap::ByteSink &s, bool digest) const;

    ArchConfig cfg;
    const IsaSpec &spec_;
    PhysMem mem_;
    std::unique_ptr<DeviceHub> hub;
    std::array<uint64_t, 32> regs{};
    uint64_t pc_ = 0;
    uint64_t epc = 0;
    bool kernel = true;
    uint64_t icount = 0;
    uint64_t kcount = 0;
    StopReason stop = StopReason::Running;
    std::string excMsg;

    // Checkpoint machinery: incremental per-page RAM CRCs and the COW
    // dirty map (see CycleSim for the cycle-level counterpart).
    std::vector<uint32_t> pageCrc;
    bool pageCrcValid = false;
    snap::DirtyMap ckptDirty{memmap::RAM_SIZE >> snap::PAGE_SHIFT};
    std::shared_ptr<const ArchSnapshot> lastRestored;

    std::shared_ptr<const ArchPredecode> fastPd;
    /** Staging buffer reused across stateDigest() calls (fast path). */
    snap::ByteSink digestSink;
};

} // namespace vstack

#endif // VSTACK_ARCH_ARCHSIM_H
