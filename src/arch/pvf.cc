#include "pvf.h"

#include <cassert>

#include "support/logging.h"

namespace vstack
{

Outcome
classifyRun(StopReason stop, const DeviceOutput &out, const GoldenRef &golden)
{
    assert(golden.valid);
    switch (stop) {
      case StopReason::DetectHit:
        return Outcome::Detected;
      case StopReason::Exception:
      case StopReason::Watchdog:
      case StopReason::Running:
        return Outcome::Crash;
      case StopReason::Exited:
        break;
    }
    if (out.dma != golden.dma || out.exitCode != golden.exitCode)
        return Outcome::Sdc;
    return Outcome::Masked;
}

PvfCampaign::PvfCampaign(Program image, ArchConfig cfg)
    : image(std::move(image)), cfg(cfg), sim(cfg)
{
    sim.load(this->image);
    ArchRunResult r = sim.run();
    if (r.stop != StopReason::Exited) {
        fatal("PVF golden run did not exit cleanly (%s): %s",
              r.stop == StopReason::Exception ? "exception" : "other",
              r.exceptionMsg.c_str());
    }
    golden_.dma = r.output.dma;
    golden_.exitCode = r.output.exitCode;
    golden_.insts = r.instCount;
    golden_.kernelInsts = r.kernelInsts;
    golden_.valid = true;
}

namespace
{

/** Collect bit positions of an instruction word matching an FPM. */
std::vector<int>
bitsForFpm(IsaId isa, uint32_t word, Fpm fpm)
{
    std::vector<int> bits;
    for (int b = 0; b < 32; ++b) {
        const InstFieldKind k = classifyInstBit(isa, word, b);
        const bool wi = k == InstFieldKind::Opcode ||
                        k == InstFieldKind::ControlOffset;
        const bool woi = k == InstFieldKind::RegSpecifier ||
                         k == InstFieldKind::Immediate;
        if ((fpm == Fpm::WI && wi) || (fpm == Fpm::WOI && woi))
            bits.push_back(b);
    }
    return bits;
}

} // namespace

Outcome
PvfCampaign::runOne(Fpm fpm, Rng &rng)
{
    assert(fpm != Fpm::ESC && "ESC is unobservable at the PVF layer");

    sim.setMaxInsts(golden_.insts * 4 + 10'000);
    sim.load(image);
    const IsaSpec &spec = sim.spec();

    const uint64_t targetInst = rng.uniform(golden_.insts);
    // PC corruption uses the machine's 32-bit address space; other
    // flips pick a bit position lazily at the injection site.
    const bool wiUsesPc = fpm == Fpm::WI && rng.chance(0.5);

    // Advance to the injection point.
    while (sim.instCount() < targetInst) {
        if (!sim.step())
            return classifyRun(sim.stopReason(), sim.devices().output(),
                               golden_);
    }

    bool injected = false;
    if (fpm == Fpm::WD) {
        // Walk forward to the next instruction that produces a value,
        // execute it, then flip a bit in the produced value.
        while (!injected) {
            DecodedInst d;
            if (!sim.peek(d) || !d.valid) {
                // The run will fault on its own; just continue.
                break;
            }
            const OpInfo &info = d.info();
            if (info.writesRd && static_cast<int>(d.rd) != spec.zeroReg) {
                if (!sim.step())
                    break;
                const int bit =
                    static_cast<int>(rng.uniform(spec.xlen));
                sim.writeReg(d.rd, sim.readReg(d.rd) ^ (1ull << bit));
                injected = true;
            } else if (info.isStore) {
                const uint64_t addr = spec.maskVal(
                    sim.readReg(d.rs1) + static_cast<uint64_t>(d.imm));
                unsigned bytes = info.memBytes == 255
                                     ? static_cast<unsigned>(spec.xlen / 8)
                                     : info.memBytes;
                if (!sim.step())
                    break;
                if (memmap::inRam(addr, bytes) && addr % bytes == 0) {
                    const int bit =
                        static_cast<int>(rng.uniform(bytes * 8));
                    uint64_t v = sim.mem().read(
                        static_cast<uint32_t>(addr), bytes);
                    v ^= 1ull << bit;
                    sim.mem().write(static_cast<uint32_t>(addr), v, bytes);
                    injected = true;
                }
            } else {
                if (!sim.step())
                    break;
            }
        }
    } else if (fpm == Fpm::WI && wiUsesPc) {
        // Transient PC corruption: flip one of the 24 address bits of
        // the 16 MiB physical space plus the two alignment bits.
        const int bit = static_cast<int>(rng.uniform(24));
        sim.setPc(sim.pc() ^ (1ull << bit));
        injected = true;
    } else {
        // Encoding corruption (WI: opcode/control; WOI: operands):
        // flip a bit in the instruction word in memory; it persists.
        uint64_t walked = 0;
        while (!injected && walked < golden_.insts) {
            const uint64_t pc = sim.pc();
            if (pc % 4 != 0 || !memmap::inRam(pc, 4))
                break;
            const uint32_t word = static_cast<uint32_t>(
                sim.mem().read(static_cast<uint32_t>(pc), 4));
            std::vector<int> bits =
                bitsForFpm(spec.id, word, fpm);
            if (!bits.empty()) {
                const int bit =
                    bits[rng.uniform(bits.size())];
                sim.mem().write(static_cast<uint32_t>(pc),
                                word ^ (1u << bit), 4);
                injected = true;
            } else {
                if (!sim.step())
                    break;
                ++walked;
            }
        }
    }

    // Run to completion and classify.
    while (sim.step()) {
    }
    return classifyRun(sim.stopReason(), sim.devices().output(), golden_);
}

OutcomeCounts
PvfCampaign::run(Fpm fpm, size_t n, uint64_t seed)
{
    Rng master(seed);
    OutcomeCounts counts;
    for (size_t i = 0; i < n; ++i) {
        Rng r = master.fork();
        counts.add(runOne(fpm, r));
    }
    return counts;
}

} // namespace vstack
