#include "pvf.h"

#include <cassert>
#include <memory>

#include "support/logging.h"

namespace vstack
{

Outcome
classifyRun(StopReason stop, const DeviceOutput &out, const GoldenRef &golden)
{
    assert(golden.valid);
    switch (stop) {
      case StopReason::DetectHit:
        return Outcome::Detected;
      case StopReason::Exception:
      case StopReason::Watchdog:
      case StopReason::Running:
        return Outcome::Crash;
      case StopReason::Exited:
        break;
    }
    if (out.dma != golden.dma || out.exitCode != golden.exitCode)
        return Outcome::Sdc;
    return Outcome::Masked;
}

PvfCampaign::PvfCampaign(Program image, ArchConfig cfg)
    : image(std::move(image)), cfg(cfg), sim(cfg)
{
    sim.load(this->image);
    ArchRunResult r = sim.run();
    if (r.stop != StopReason::Exited) {
        throw GoldenRunError(strprintf(
            "PVF golden run did not exit cleanly (%s): %s",
            r.stop == StopReason::Exception ? "exception" : "other",
            r.exceptionMsg.c_str()));
    }
    golden_.dma = r.output.dma;
    golden_.exitCode = r.output.exitCode;
    golden_.insts = r.instCount;
    golden_.kernelInsts = r.kernelInsts;
    golden_.valid = true;
}

namespace
{

/** Collect bit positions of an instruction word matching an FPM. */
std::vector<int>
bitsForFpm(IsaId isa, uint32_t word, Fpm fpm)
{
    std::vector<int> bits;
    for (int b = 0; b < 32; ++b) {
        const InstFieldKind k = classifyInstBit(isa, word, b);
        const bool wi = k == InstFieldKind::Opcode ||
                        k == InstFieldKind::ControlOffset;
        const bool woi = k == InstFieldKind::RegSpecifier ||
                         k == InstFieldKind::Immediate;
        if ((fpm == Fpm::WI && wi) || (fpm == Fpm::WOI && woi))
            bits.push_back(b);
    }
    return bits;
}

} // namespace

Outcome
PvfCampaign::runOne(Fpm fpm, Rng &rng)
{
    return runOneOn(sim, fpm, rng);
}

Outcome
PvfCampaign::runOneOn(ArchSim &sim, Fpm fpm, Rng &rng) const
{
    assert(fpm != Fpm::ESC && "ESC is unobservable at the PVF layer");

    sim.setMaxInsts(watchdog.limitFor(golden_.insts));
    sim.load(image);
    const IsaSpec &spec = sim.spec();

    const uint64_t targetInst = rng.uniform(golden_.insts);
    // PC corruption uses the machine's 32-bit address space; other
    // flips pick a bit position lazily at the injection site.
    const bool wiUsesPc = fpm == Fpm::WI && rng.chance(0.5);

    // Advance to the injection point.
    while (sim.instCount() < targetInst) {
        if (!sim.step())
            return classifyRun(sim.stopReason(), sim.devices().output(),
                               golden_);
    }

    bool injected = false;
    if (fpm == Fpm::WD) {
        // Walk forward to the next instruction that produces a value,
        // execute it, then flip a bit in the produced value.
        while (!injected) {
            DecodedInst d;
            if (!sim.peek(d) || !d.valid) {
                // The run will fault on its own; just continue.
                break;
            }
            const OpInfo &info = d.info();
            if (info.writesRd && static_cast<int>(d.rd) != spec.zeroReg) {
                if (!sim.step())
                    break;
                const int bit =
                    static_cast<int>(rng.uniform(spec.xlen));
                sim.writeReg(d.rd, sim.readReg(d.rd) ^ (1ull << bit));
                injected = true;
            } else if (info.isStore) {
                const uint64_t addr = spec.maskVal(
                    sim.readReg(d.rs1) + static_cast<uint64_t>(d.imm));
                unsigned bytes = info.memBytes == 255
                                     ? static_cast<unsigned>(spec.xlen / 8)
                                     : info.memBytes;
                if (!sim.step())
                    break;
                if (memmap::inRam(addr, bytes) && addr % bytes == 0) {
                    const int bit =
                        static_cast<int>(rng.uniform(bytes * 8));
                    uint64_t v = sim.mem().read(
                        static_cast<uint32_t>(addr), bytes);
                    v ^= 1ull << bit;
                    sim.mem().write(static_cast<uint32_t>(addr), v, bytes);
                    injected = true;
                }
            } else {
                if (!sim.step())
                    break;
            }
        }
    } else if (fpm == Fpm::WI && wiUsesPc) {
        // Transient PC corruption: flip one of the 24 address bits of
        // the 16 MiB physical space plus the two alignment bits.
        const int bit = static_cast<int>(rng.uniform(24));
        sim.setPc(sim.pc() ^ (1ull << bit));
        injected = true;
    } else {
        // Encoding corruption (WI: opcode/control; WOI: operands):
        // flip a bit in the instruction word in memory; it persists.
        uint64_t walked = 0;
        while (!injected && walked < golden_.insts) {
            const uint64_t pc = sim.pc();
            if (pc % 4 != 0 || !memmap::inRam(pc, 4))
                break;
            const uint32_t word = static_cast<uint32_t>(
                sim.mem().read(static_cast<uint32_t>(pc), 4));
            std::vector<int> bits =
                bitsForFpm(spec.id, word, fpm);
            if (!bits.empty()) {
                const int bit =
                    bits[rng.uniform(bits.size())];
                sim.mem().write(static_cast<uint32_t>(pc),
                                word ^ (1u << bit), 4);
                injected = true;
            } else {
                if (!sim.step())
                    break;
                ++walked;
            }
        }
    }

    // Run to completion and classify.
    while (sim.step()) {
    }
    return classifyRun(sim.stopReason(), sim.devices().output(), golden_);
}

OutcomeCounts
PvfCampaign::run(Fpm fpm, size_t n, uint64_t seed,
                 const exec::ExecConfig &ec)
{
    // PVF injections draw from their RNG during the run, so instead
    // of a fault list we pre-derive each sample's fork seed (the i-th
    // master draw, a pure function of (seed, i)) — identical streams
    // at any thread count.
    Rng master(seed);
    std::vector<uint64_t> forkSeeds(n);
    for (uint64_t &s : forkSeeds)
        s = master.next64();

    auto samples = exec::runSamples<Outcome>(
        n, ec,
        [this] { return std::make_unique<ArchSim>(cfg); },
        [this, fpm, &forkSeeds](ArchSim &worker, size_t i) {
            Rng r(forkSeeds[i]);
            return runOneOn(worker, fpm, r);
        },
        [](Outcome o) { return Json(static_cast<int>(o)); },
        [](const Json &j) { return static_cast<Outcome>(j.asInt()); });

    OutcomeCounts counts;
    for (const auto &s : samples) {
        if (s)
            counts.add(*s);
        else
            ++counts.injectorErrors;
    }
    return counts;
}

} // namespace vstack
