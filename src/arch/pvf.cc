#include "pvf.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "fault/condition.h"
#include "support/fastpath.h"
#include "support/logging.h"

namespace vstack
{

const ArchTrace::Checkpoint &
ArchTrace::nearestAtOrBelow(uint64_t icount) const
{
    if (checkpoints.empty() || checkpoints.front().icount > icount)
        panic("ArchTrace::nearestAtOrBelow: no checkpoint at or below "
              "instruction %llu",
              static_cast<unsigned long long>(icount));
    const Checkpoint *best = &checkpoints.front();
    for (const Checkpoint &cp : checkpoints) {
        if (cp.icount > icount)
            break;
        best = &cp;
    }
    return *best;
}

Outcome
classifyRun(StopReason stop, const DeviceOutput &out, const GoldenRef &golden)
{
    assert(golden.valid);
    return classifyDeviceRun(stop, out, golden.dma, golden.exitCode);
}

PvfCampaign::PvfCampaign(Program image, ArchConfig cfg,
                         std::shared_ptr<const ArchPredecode> fast)
    : image(std::move(image)), cfg(cfg), fastPd_(std::move(fast)), sim(cfg)
{
    if (!fastPd_ && fastPathEnabled())
        fastPd_ = predecodeImage(this->image, cfg.isa);
    sim.setFastPath(fastPd_);
    sim.load(this->image);
    ArchRunResult r = sim.run();
    if (r.stop != StopReason::Exited) {
        throw GoldenRunError(strprintf(
            "PVF golden run did not exit cleanly (%s): %s",
            r.stop == StopReason::Exception ? "exception" : "other",
            r.exceptionMsg.c_str()));
    }
    golden_.dma = r.output.dma;
    golden_.exitCode = r.output.exitCode;
    golden_.insts = r.instCount;
    golden_.kernelInsts = r.kernelInsts;
    golden_.valid = true;
}

namespace
{

/** Collect bit positions of an instruction word matching an FPM. */
std::vector<int>
bitsForFpm(IsaId isa, uint32_t word, Fpm fpm)
{
    std::vector<int> bits;
    for (int b = 0; b < 32; ++b) {
        const InstFieldKind k = classifyInstBit(isa, word, b);
        const bool wi = k == InstFieldKind::Opcode ||
                        k == InstFieldKind::ControlOffset;
        const bool woi = k == InstFieldKind::RegSpecifier ||
                         k == InstFieldKind::Immediate;
        if ((fpm == Fpm::WI && wi) || (fpm == Fpm::WOI && woi))
            bits.push_back(b);
    }
    return bits;
}

} // namespace

void
PvfCampaign::ensureTrace()
{
    // Double-checked under the lock: suite prepare tasks may race a
    // serial runOne(), and the recording pass mutates the campaign's
    // own emulator.
    std::lock_guard<std::mutex> lock(traceMu);
    if (!policy_.enabled || trace_.recorded())
        return;
    trace_.interval = policy_.digestInterval(golden_.insts);
    const unsigned ckptEvery = std::max(1u, policy_.digestsPerCheckpoint);
    // Serial runOne() calls retune the shared emulator's watchdog;
    // record under the construction-time golden budget.
    sim.setMaxInsts(cfg.maxInsts);
    sim.load(image);
    trace_.checkpoints.push_back({0, sim.snapshot()});
    // The recording run is fault-free, so it executes in predecoded
    // chunks from grid point to grid point (identical to stepping —
    // stepFastTo stops at exactly the requested instruction count).
    for (;;) {
        const uint64_t nextGrid =
            (sim.instCount() / trace_.interval + 1) * trace_.interval;
        if (!sim.stepFastTo(nextGrid))
            break;
        const uint64_t ic = sim.instCount();
        trace_.digests.push_back(sim.stateDigest());
        trace_.dmaLens.push_back(sim.devices().output().dma.size());
        if (trace_.digests.size() % ckptEvery == 0)
            trace_.checkpoints.push_back(
                {ic,
                 sim.snapshot(trace_.checkpoints.back().state.get())});
    }
    // The recording pass must retrace the construction-time golden run
    // exactly — anything else means the emulator is nondeterministic
    // and no checkpoint can be trusted.
    const DeviceOutput &o = sim.devices().output();
    if (sim.stopReason() != StopReason::Exited ||
        sim.instCount() != golden_.insts || o.dma != golden_.dma ||
        o.exitCode != golden_.exitCode) {
        throw GoldenRunError(
            "PVF golden recording pass diverged from the golden run");
    }
    trace_.truncated = o.truncated;
}

Outcome
PvfCampaign::runOne(Fpm fpm, Rng &rng)
{
    ensureTrace();
    return runOneOn(sim, fpm, rng);
}

Outcome
PvfCampaign::runOneOn(ArchSim &worker, Fpm fpm, Rng &rng,
                      const fault::PvfShape *shape) const
{
    return runInjection(worker, fpm, rng, true,
                        shape ? *shape : fault::PvfShape{});
}

Outcome
PvfCampaign::runOneColdOn(ArchSim &worker, Fpm fpm, Rng &rng,
                          const fault::PvfShape *shape) const
{
    return runInjection(worker, fpm, rng, false,
                        shape ? *shape : fault::PvfShape{});
}

Outcome
PvfCampaign::finish(ArchSim &sim, bool accel) const
{
    // Early termination is sound only when the injected run cannot be
    // stopped by the watchdog before reaching the golden instruction
    // count, and the golden output never hit the capture cap.
    const bool earlyStop =
        accel && policy_.enabled && policy_.earlyStop &&
        trace_.recorded() && !trace_.truncated &&
        watchdog.limitFor(golden_.insts) >= golden_.insts;
    if (!earlyStop) {
        while (sim.step()) {
        }
        return classifyRun(sim.stopReason(), sim.devices().output(),
                           golden_);
    }

    constexpr unsigned DIGEST_GIVE_UP = 12;
    unsigned digestFails = 0;
    while (sim.step()) {
        const uint64_t ic = sim.instCount();
        if (ic % trace_.interval != 0)
            continue;
        const uint64_t k = ic / trace_.interval - 1;
        if (digestFails >= DIGEST_GIVE_UP || k >= trace_.digests.size())
            continue;
        if (sim.stateDigest() != trace_.digests[k]) {
            ++digestFails;
            continue;
        }
        // State reconverged with the golden run at the same instruction
        // count: the remaining execution is identical, so the final DMA
        // stream is what was emitted so far plus the golden suffix, and
        // the exit code is the golden one.  Classify without executing
        // the tail.
        const DeviceOutput &o = sim.devices().output();
        const uint64_t suffix = golden_.dma.size() - trace_.dmaLens[k];
        if (o.truncated ||
            o.dma.size() + suffix > DeviceHub::captureCap) {
            // The spliced output would truncate, so the tail must
            // actually execute — but the digest match just proved the
            // state has rejoined the golden trajectory, so every
            // remaining instruction is fault-free by construction and
            // may run on the predecoded fast path.  (Once declined,
            // a splice stays declined: the emitted-plus-suffix total
            // is invariant from here on.)
            sim.stepFastTo(UINT64_MAX);
            break;
        }
        const bool clean =
            o.dma.size() == trace_.dmaLens[k] &&
            std::equal(o.dma.begin(), o.dma.end(), golden_.dma.begin());
        return clean ? Outcome::Masked : Outcome::Sdc;
    }
    return classifyRun(sim.stopReason(), sim.devices().output(), golden_);
}

Outcome
PvfCampaign::runInjection(ArchSim &sim, Fpm fpm, Rng &rng, bool accel,
                          const fault::PvfShape &shape) const
{
    assert(fpm != Fpm::ESC && "ESC is unobservable at the PVF layer");

    sim.setMaxInsts(watchdog.limitFor(golden_.insts));

    // Draw the per-sample randomness before touching emulator state so
    // cold and fast-forwarded runs consume the identical RNG stream.
    const uint64_t targetInst = rng.uniform(golden_.insts);
    // PC corruption uses the machine's 32-bit address space; other
    // flips pick a bit position lazily at the injection site.
    const bool wiUsesPc = fpm == Fpm::WI && rng.chance(0.5);
    // Conditioned shapes draw their per-sample salt here too; the
    // default shape draws nothing, keeping the legacy stream intact.
    const uint64_t condSalt = shape.conditioned ? rng.next64() : 0;
    uint64_t condIdx = 0; ///< running flip index across the sample

    // Apply the shape's flips to a value `width` bits wide, starting
    // at baseBit: `burst` flips `stride` bits apart, wrapped into the
    // width, each optionally conditioned on the stored bit.  The
    // default shape is the legacy single `v ^= 1 << baseBit`.
    auto flipValue = [&](uint64_t v, unsigned width, int baseBit) {
        for (uint32_t k = 0; k < shape.burst; ++k) {
            const int b = static_cast<int>(
                (static_cast<uint64_t>(baseBit) + k * shape.stride) %
                width);
            const uint64_t idx = condIdx++;
            if (shape.conditioned &&
                !fault::flipSelected(condSalt, idx,
                                     static_cast<int>((v >> b) & 1),
                                     shape.pFlip1, shape.pFlip0))
                continue;
            v ^= 1ull << b;
        }
        return v;
    };

    if (accel && policy_.enabled && trace_.recorded())
        sim.restore(trace_.nearestAtOrBelow(targetInst).state);
    else
        sim.load(image);
    const IsaSpec &spec = sim.spec();

    // Advance to the injection point — a fault-free golden prefix, so
    // it runs on the predecoded fast path (this is also what makes
    // cold audits cheap: they replay the whole prefix from zero).
    if (!sim.stepFastTo(targetInst))
        return classifyRun(sim.stopReason(), sim.devices().output(),
                           golden_);

    bool injected = false;
    if (fpm == Fpm::WD) {
        // Walk forward to the next instruction that produces a value,
        // execute it, then flip a bit in the produced value.
        while (!injected) {
            DecodedInst d;
            if (!sim.peek(d) || !d.valid) {
                // The run will fault on its own; just continue.
                break;
            }
            const OpInfo &info = d.info();
            if (info.writesRd && static_cast<int>(d.rd) != spec.zeroReg) {
                if (!sim.step())
                    break;
                const int bit =
                    static_cast<int>(rng.uniform(spec.xlen));
                sim.writeReg(d.rd,
                             flipValue(sim.readReg(d.rd),
                                       static_cast<unsigned>(spec.xlen),
                                       bit));
                injected = true;
            } else if (info.isStore) {
                const uint64_t addr = spec.maskVal(
                    sim.readReg(d.rs1) + static_cast<uint64_t>(d.imm));
                unsigned bytes = info.memBytes == 255
                                     ? static_cast<unsigned>(spec.xlen / 8)
                                     : info.memBytes;
                if (!sim.step())
                    break;
                if (memmap::inRam(addr, bytes) && addr % bytes == 0) {
                    const int bit =
                        static_cast<int>(rng.uniform(bytes * 8));
                    uint64_t v = sim.mem().read(
                        static_cast<uint32_t>(addr), bytes);
                    v = flipValue(v, bytes * 8, bit);
                    sim.mem().write(static_cast<uint32_t>(addr), v, bytes);
                    injected = true;
                }
            } else {
                if (!sim.step())
                    break;
            }
        }
    } else if (fpm == Fpm::WI && wiUsesPc) {
        // Transient PC corruption: flip one of the 24 address bits of
        // the 16 MiB physical space plus the two alignment bits.
        const int bit = static_cast<int>(rng.uniform(24));
        sim.setPc(flipValue(sim.pc(), 24, bit));
        injected = true;
    } else {
        // Encoding corruption (WI: opcode/control; WOI: operands):
        // flip a bit in the instruction word in memory; it persists.
        uint64_t walked = 0;
        while (!injected && walked < golden_.insts) {
            const uint64_t pc = sim.pc();
            if (pc % 4 != 0 || !memmap::inRam(pc, 4))
                break;
            const uint32_t word = static_cast<uint32_t>(
                sim.mem().read(static_cast<uint32_t>(pc), 4));
            std::vector<int> bits =
                bitsForFpm(spec.id, word, fpm);
            if (!bits.empty()) {
                // Burst flips walk the FPM-eligible bit list (not raw
                // adjacency) so every flipped bit keeps the requested
                // manifestation class.
                const size_t baseIdx =
                    static_cast<size_t>(rng.uniform(bits.size()));
                uint32_t w = word;
                for (uint32_t k = 0; k < shape.burst; ++k) {
                    const int b = bits[(baseIdx +
                                        static_cast<size_t>(k) *
                                            shape.stride) %
                                       bits.size()];
                    const uint64_t idx = condIdx++;
                    if (shape.conditioned &&
                        !fault::flipSelected(
                            condSalt, idx,
                            static_cast<int>((w >> b) & 1),
                            shape.pFlip1, shape.pFlip0))
                        continue;
                    w ^= 1u << b;
                }
                sim.mem().write(static_cast<uint32_t>(pc), w, 4);
                injected = true;
            } else {
                if (!sim.step())
                    break;
                ++walked;
            }
        }
    }

    // Temporally clustered follow-on events (em-burst): walk the
    // corrupted run forward a short random distance and flip a bit of
    // a random architectural register, once per extra event.  Slow
    // steps only — post-injection state must never ride the fast
    // path — and the same code runs cold and accelerated, so the
    // streams stay identical.
    if (injected && shape.events > 1) {
        const uint64_t window = shape.window ? shape.window : 1;
        for (uint32_t e = 1; e < shape.events; ++e) {
            const uint64_t delta = 1 + rng.uniform(window);
            bool alive = true;
            for (uint64_t s = 0; s < delta && alive; ++s)
                alive = sim.step();
            if (!alive)
                break;
            int reg = static_cast<int>(
                rng.uniform(static_cast<uint64_t>(spec.numRegs)));
            if (reg == spec.zeroReg)
                reg = (reg + 1) % spec.numRegs;
            const int bit = static_cast<int>(rng.uniform(spec.xlen));
            sim.writeReg(reg,
                         flipValue(sim.readReg(reg),
                                   static_cast<unsigned>(spec.xlen),
                                   bit));
        }
    }

    // Run to completion (or early-terminate on golden reconvergence)
    // and classify.
    return finish(sim, accel);
}

namespace
{

/** A worker's private functional emulator. */
struct PvfCtx final : exec::LayerDriver::Ctx
{
    explicit PvfCtx(const ArchConfig &cfg) : sim(cfg) {}
    ArchSim sim;
};

} // namespace

PvfDriver::PvfDriver(PvfCampaign &campaign, Fpm fpm, size_t n,
                     uint64_t seed,
                     std::shared_ptr<const fault::FaultModel> model)
    : campaign(campaign), fpm(fpm), n(n)
{
    // PVF injections draw from their RNG during the run, so instead
    // of a fault list we pre-derive each sample's fork seed (the i-th
    // master draw, a pure function of (seed, i)) — identical streams
    // at any thread count.  The fault model contributes a
    // campaign-constant shape rather than per-sample sites; the
    // default shape leaves every stream bit-identical to the legacy
    // driver.  The dispatch key is each fork's first draw (the target
    // instruction), precomputable without running anything; the
    // golden reference is immutable after campaign construction, so
    // both live in the constructor.
    fault::PvfSpace space;
    space.insts = campaign.golden().insts;
    space.xlen = IsaSpec::get(campaign.cfg.isa).xlen;
    shape = (model ? model.get() : fault::singleBitModel().get())
                ->pvfShape(space);
    Rng master(seed);
    forkSeeds.resize(n);
    for (uint64_t &s : forkSeeds)
        s = master.next64();
    keys.resize(n);
    for (size_t i = 0; i < n; ++i)
        keys[i] = Rng(forkSeeds[i]).uniform(campaign.golden().insts);
}

void
PvfDriver::prepare()
{
    campaign.ensureTrace();
}

std::unique_ptr<exec::LayerDriver::Ctx>
PvfDriver::makeCtx() const
{
    auto ctx = std::make_unique<PvfCtx>(campaign.cfg);
    ctx->sim.setFastPath(campaign.fastPath());
    return ctx;
}

Json
PvfDriver::runSample(Ctx &ctx, size_t i) const
{
    Rng r(forkSeeds[i]);
    return Json(static_cast<int>(campaign.runOneOn(
        static_cast<PvfCtx &>(ctx).sim, fpm, r, &shape)));
}

Json
PvfDriver::runSampleCold(Ctx &ctx, size_t i) const
{
    Rng r(forkSeeds[i]);
    return Json(static_cast<int>(campaign.runOneColdOn(
        static_cast<PvfCtx &>(ctx).sim, fpm, r, &shape)));
}

bool
PvfDriver::scheduled() const
{
    return campaign.checkpointPolicy().enabled &&
           campaign.trace().recorded();
}

uint64_t
PvfDriver::scheduleKey(size_t i) const
{
    return keys[i];
}

double
PvfDriver::verifyPercent() const
{
    return scheduled() ? campaign.checkpointPolicy().verifyPercent : 0.0;
}

std::string
PvfDriver::describeSample(size_t i) const
{
    return strprintf("PVF sample %zu (%s)", i, fpmName(fpm));
}

std::string
PvfDriver::payloadName(const Json &payload) const
{
    return outcomeName(static_cast<Outcome>(payload.asInt()));
}

OutcomeCounts
PvfCampaign::run(Fpm fpm, size_t n, uint64_t seed,
                 const exec::ExecConfig &ec,
                 const fault::FaultModel *model)
{
    // Non-owning alias: the caller's model outlives this synchronous
    // run.
    PvfDriver driver(*this, fpm, n, seed,
                     std::shared_ptr<const fault::FaultModel>(
                         std::shared_ptr<const void>(), model));
    return foldOutcomeSamples(exec::runDriver(driver, ec));
}

} // namespace vstack
