/**
 * @file
 * Architecture-level (PVF) fault-injection campaigns.
 *
 * PVF assumes the fault origin is an architecturally visible location
 * involved in the program flow (paper Section II.B): architectural
 * registers, memory words the program loads/stores, and instruction
 * encodings — including kernel activity, which distinguishes PVF from
 * SVF.  Three fault propagation models are supported (Section V.A):
 *
 *  - WD : flip a bit in the destination value produced by a dynamic
 *         instruction (register or stored memory word); the fault
 *         persists in the architectural location until overwritten;
 *  - WOI: flip a bit in an operand field (register specifier /
 *         immediate) of a dynamic instruction's encoding in memory;
 *  - WI : flip a bit in the opcode/control-offset field of the
 *         encoding, or a bit of the PC (50/50), modelling wrong
 *         instruction execution.
 *
 * ESC cannot be modelled at this layer by definition.
 */
#ifndef VSTACK_ARCH_PVF_H
#define VSTACK_ARCH_PVF_H

#include <mutex>
#include <vector>

#include "arch/archsim.h"
#include "exec/driver.h"
#include "exec/executor.h"
#include "fault/model.h"
#include "machine/fpm.h"
#include "machine/outcome.h"
#include "support/rng.h"

namespace vstack
{

/** Golden-run reference data for outcome classification. */
struct GoldenRef
{
    std::vector<uint8_t> dma;
    uint32_t exitCode = 0;
    uint64_t insts = 0;       ///< dynamic instruction count
    uint64_t kernelInsts = 0;
    bool valid = false;
};

/** Classify a finished run against the golden reference (a thin
 *  wrapper over the shared classifyDeviceRun in machine/outcome.h). */
Outcome classifyRun(StopReason stop, const DeviceOutput &out,
                    const GoldenRef &golden);

/**
 * Golden-run trace of the functional emulator, on an instruction-count
 * grid (the arch layer's unit of time): evenly spaced checkpoints for
 * fast-forward plus denser state digests and DMA-length marks for
 * early termination.
 */
struct ArchTrace
{
    struct Checkpoint
    {
        uint64_t icount = 0;
        std::shared_ptr<const ArchSnapshot> state;
    };

    /** Digest cadence in instructions (0 = not recorded). */
    uint64_t interval = 0;
    bool truncated = false; ///< golden output hit the capture cap

    /** Grid entry k describes the state after instruction (k+1)*interval. */
    std::vector<uint32_t> digests;
    std::vector<uint64_t> dmaLens;

    /** Ascending by icount; [0] is always instruction 0. */
    std::vector<Checkpoint> checkpoints;

    bool recorded() const { return interval != 0; }

    /** Latest checkpoint at or below `icount` (the arch layer injects
     *  after advancing to the target instruction, so restoring at the
     *  target itself is exact). */
    const Checkpoint &nearestAtOrBelow(uint64_t icount) const;
};

/** One PVF campaign over a fixed system image. */
class PvfCampaign
{
  public:
    /**
     * @param image  merged kernel+user image
     * @param cfg    emulator config (watchdog is derived per run)
     * @param fast   shared predecode of `image` (the golden cache
     *               hands this in so repeat campaigns predecode once);
     *               when null and the fast path is enabled, the
     *               campaign builds its own.  The golden run on
     *               construction then uses predecoded dispatch
     *               (results are bit-identical either way).
     * @throws GoldenRunError if the golden run does not exit cleanly
     */
    PvfCampaign(Program image, ArchConfig cfg,
                std::shared_ptr<const ArchPredecode> fast = nullptr);

    /** Golden reference (computed on construction). */
    const GoldenRef &golden() const { return golden_; }

    /** The predecode every emulator of this campaign dispatches
     *  through (null when the fast path is disabled). */
    const std::shared_ptr<const ArchPredecode> &fastPath() const
    {
        return fastPd_;
    }

    /** Per-injection watchdog budget, in instructions relative to the
     *  golden run (default: 4x golden + 10k). */
    void setWatchdog(const exec::WatchdogBudget &wd) { watchdog = wd; }

    /** Checkpoint acceleration policy (enabled by default). */
    void setCheckpointPolicy(const exec::CheckpointPolicy &p) { policy_ = p; }
    const exec::CheckpointPolicy &checkpointPolicy() const { return policy_; }

    /** Record the golden checkpoint trace if not done yet (runs the
     *  golden again with recording; verifies it reproduces). */
    void ensureTrace();
    const ArchTrace &trace() const { return trace_; }

    /** Run one injection with the given FPM. */
    Outcome runOne(Fpm fpm, Rng &rng);

    /** Run one injection on a caller-provided emulator (workers);
     *  uses checkpoint fast-forward + early stop when available.
     *  `shape` widens the injection per the campaign's fault model
     *  (null = the legacy single-bit shape, bit for bit). */
    Outcome runOneOn(ArchSim &worker, Fpm fpm, Rng &rng,
                     const fault::PvfShape *shape = nullptr) const;

    /** Same, but always cold (full golden-prefix re-execution, run to
     *  a stop condition).  Used by the checkpoint-verification audit. */
    Outcome runOneColdOn(ArchSim &worker, Fpm fpm, Rng &rng,
                         const fault::PvfShape *shape = nullptr) const;

    /** Run a campaign of n injections shaped by `model` (null = the
     *  single-bit default).  Deterministic for a given seed at any
     *  job count. */
    OutcomeCounts run(Fpm fpm, size_t n, uint64_t seed,
                      const exec::ExecConfig &ec = {},
                      const fault::FaultModel *model = nullptr);

  private:
    friend class PvfDriver;

    Outcome runInjection(ArchSim &sim, Fpm fpm, Rng &rng, bool accel,
                         const fault::PvfShape &shape) const;
    Outcome finish(ArchSim &sim, bool accel) const;

    Program image;
    ArchConfig cfg;
    std::shared_ptr<const ArchPredecode> fastPd_;
    ArchSim sim; ///< reused across serial injections (16 MiB arena)
    GoldenRef golden_;
    exec::WatchdogBudget watchdog{4.0, 10'000};
    exec::CheckpointPolicy policy_;
    ArchTrace trace_;
    std::mutex traceMu; ///< serializes the recording pass
};

/**
 * LayerDriver adapter: one (FPM, sample count, seed) PVF campaign.
 * The journal payload is the bare Outcome integer the layer has
 * always used, so journals and stores stay byte-compatible.
 */
class PvfDriver final : public exec::LayerDriver
{
  public:
    /** @param model  fault model shaping the injections (null =
     *                single-bit default, byte-identical to the legacy
     *                driver) */
    PvfDriver(PvfCampaign &campaign, Fpm fpm, size_t n, uint64_t seed,
              std::shared_ptr<const fault::FaultModel> model = nullptr);

    const char *layerName() const override { return "pvf"; }
    size_t samples() const override { return n; }
    void prepare() override;
    std::unique_ptr<Ctx> makeCtx() const override;
    Json runSample(Ctx &ctx, size_t i) const override;
    Json runSampleCold(Ctx &ctx, size_t i) const override;
    bool scheduled() const override;
    uint64_t scheduleKey(size_t i) const override;
    double verifyPercent() const override;
    std::string describeSample(size_t i) const override;
    std::string payloadName(const Json &payload) const override;

  private:
    PvfCampaign &campaign;
    Fpm fpm;
    size_t n;
    fault::PvfShape shape;           ///< campaign-constant model shape
    std::vector<uint64_t> forkSeeds; ///< the i-th master draw
    std::vector<uint64_t> keys;      ///< injection instruction per sample
};

} // namespace vstack

#endif // VSTACK_ARCH_PVF_H
