/**
 * @file
 * Architecture-level (PVF) fault-injection campaigns.
 *
 * PVF assumes the fault origin is an architecturally visible location
 * involved in the program flow (paper Section II.B): architectural
 * registers, memory words the program loads/stores, and instruction
 * encodings — including kernel activity, which distinguishes PVF from
 * SVF.  Three fault propagation models are supported (Section V.A):
 *
 *  - WD : flip a bit in the destination value produced by a dynamic
 *         instruction (register or stored memory word); the fault
 *         persists in the architectural location until overwritten;
 *  - WOI: flip a bit in an operand field (register specifier /
 *         immediate) of a dynamic instruction's encoding in memory;
 *  - WI : flip a bit in the opcode/control-offset field of the
 *         encoding, or a bit of the PC (50/50), modelling wrong
 *         instruction execution.
 *
 * ESC cannot be modelled at this layer by definition.
 */
#ifndef VSTACK_ARCH_PVF_H
#define VSTACK_ARCH_PVF_H

#include <vector>

#include "arch/archsim.h"
#include "exec/executor.h"
#include "machine/fpm.h"
#include "machine/outcome.h"
#include "support/rng.h"

namespace vstack
{

/** Golden-run reference data for outcome classification. */
struct GoldenRef
{
    std::vector<uint8_t> dma;
    uint32_t exitCode = 0;
    uint64_t insts = 0;       ///< dynamic instruction count
    uint64_t kernelInsts = 0;
    bool valid = false;
};

/** Classify a finished run against the golden reference. */
Outcome classifyRun(StopReason stop, const DeviceOutput &out,
                    const GoldenRef &golden);

/** One PVF campaign over a fixed system image. */
class PvfCampaign
{
  public:
    /**
     * @param image  merged kernel+user image
     * @param cfg    emulator config (watchdog is derived per run)
     * @throws GoldenRunError if the golden run does not exit cleanly
     */
    PvfCampaign(Program image, ArchConfig cfg);

    /** Golden reference (computed on construction). */
    const GoldenRef &golden() const { return golden_; }

    /** Per-injection watchdog budget, in instructions relative to the
     *  golden run (default: 4x golden + 10k). */
    void setWatchdog(const exec::WatchdogBudget &wd) { watchdog = wd; }

    /** Run one injection with the given FPM. */
    Outcome runOne(Fpm fpm, Rng &rng);

    /** Run one injection on a caller-provided emulator (workers). */
    Outcome runOneOn(ArchSim &worker, Fpm fpm, Rng &rng) const;

    /** Run a campaign of n injections.  Deterministic for a given
     *  seed at any job count. */
    OutcomeCounts run(Fpm fpm, size_t n, uint64_t seed,
                      const exec::ExecConfig &ec = {});

  private:
    Program image;
    ArchConfig cfg;
    ArchSim sim; ///< reused across serial injections (16 MiB arena)
    GoldenRef golden_;
    exec::WatchdogBudget watchdog{4.0, 10'000};
};

} // namespace vstack

#endif // VSTACK_ARCH_PVF_H
