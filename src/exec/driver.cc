#include "driver.h"

#include "support/failpoint.h"
#include "support/logging.h"

namespace vstack::exec
{

Json
runDriverSample(const LayerDriver &d, LayerDriver::Ctx &ctx, size_t i)
{
    if (failpoint("driver.sample.simerr")) {
        throw InjectionError(
            strprintf("driver.sample.simerr failpoint fired on %s "
                      "sample %zu",
                      d.layerName(), i));
    }
    return d.runSample(ctx, i);
}

void
prepareDriver(LayerDriver &d)
{
    if (failpoint("driver.prepare.goldenerr")) {
        throw GoldenRunError(
            strprintf("driver.prepare.goldenerr failpoint fired on the "
                      "%s golden run",
                      d.layerName()));
    }
    d.prepare();
}

std::vector<std::optional<Json>>
runDriverSamples(const LayerDriver &d, const ExecConfig &cfg)
{
    ExecConfig ec = cfg;
    if (d.scheduled() && !ec.scheduleKey) {
        // Dispatch in injection-point order so consecutive samples on
        // a worker restore the same checkpoint (results still fold in
        // index order — see ExecConfig::scheduleKey).
        ec.scheduleKey = [&d](size_t i) { return d.scheduleKey(i); };
    }
    return runSamples<Json>(
        d.samples(), ec, [&d] { return d.makeCtx(); },
        [&d](LayerDriver::Ctx &ctx, size_t i) {
            return runDriverSample(d, ctx, i);
        },
        [](const Json &j) { return j; },
        [](const Json &j) { return j; });
}

void
verifyDriverSamples(const LayerDriver &d,
                    const std::vector<std::optional<Json>> &samples)
{
    const double percent = d.verifyPercent();
    if (percent <= 0.0 || shutdownRequested())
        return;
    std::unique_ptr<LayerDriver::Ctx> cold;
    for (size_t i = 0; i < samples.size(); ++i) {
        if (!samples[i] || !verifyReplaySelected(i, percent))
            continue;
        if (!cold)
            cold = d.makeCtx();
        const Json ref = d.runSampleCold(*cold, i);
        const std::string want = ref.dump();
        const std::string got = samples[i]->dump();
        if (got != want) {
            throw CheckpointDivergence(strprintf(
                "verify-checkpoint: %s diverged from its cold re-run "
                "(cold %s, accelerated %s); the checkpoint path is "
                "unsound",
                d.describeSample(i).c_str(), d.payloadName(ref).c_str(),
                d.payloadName(*samples[i]).c_str()));
        }
    }
}

std::vector<std::optional<Json>>
runDriver(LayerDriver &d, const ExecConfig &cfg)
{
    prepareDriver(d);
    auto samples = runDriverSamples(d, cfg);
    verifyDriverSamples(d, samples);
    return samples;
}

} // namespace vstack::exec
