/**
 * @file
 * Append-only, CRC-framed JSONL campaign journal.
 *
 * Every completed injection sample is appended as one self-contained,
 * checksummed line, flushed immediately, so a campaign killed at any
 * point leaves recoverable records behind.  Re-invoking the campaign
 * with resume enabled replays the journaled samples and only
 * simulates the remainder; because every sample's RNG stream is
 * derived from (seed, sample index), the resumed aggregate is
 * bit-identical to an uninterrupted run.
 *
 * File format (format 2): one framed record per line,
 *
 *   c=<crc32c-hex> <json>
 *
 * where the checksum covers exactly the JSON bytes as written.  The
 * JSON objects are:
 *
 *   {"meta":{"campaign":"<key>","n":N,"seed":S,"fmt":2}}  <- header
 *
 * A campaign run under a non-default fault model adds "fm":"<tag>" to
 * the header (absent = single-bit); a header whose model disagrees
 * with the caller's identifies a different campaign.
 *   {"i":0,"k":"<tag>","r":{...}}                <- completed sample
 *   {"i":3,"k":"<tag>","err":"<message>"}        <- quarantined sample
 *   {"i":5,"k":"<tag>","err":"...","hf":{...}}   <- host-fault triage
 *                                                   (see exec/sandbox.h)
 *
 * "k" is the campaign-key tag: the CRC32C of the header's campaign
 * string, stamped into every record.  Under a suite many journals are
 * live in one directory; the tag makes each record self-identifying,
 * so a record that was spliced, hard-linked, or copied in from a
 * *different* campaign's journal is quarantined on replay even though
 * its frame checksum is intact.  Records without "k" (pre-suite
 * journals) are accepted as legacy.
 *
 * Recovery is per record, not all-or-nothing.  On open() with resume,
 * every line is classified:
 *
 *   - valid: frame intact, checksum matches, index in [0, n) and not
 *     a duplicate -> replayed;
 *   - torn tail: the final line is damaged *and* the file does not
 *     end in a newline — the expected artifact of a kill mid-append —
 *     -> skipped silently;
 *   - corrupt: a damaged line anywhere else (bit rot, a short write
 *     followed by later appends, trailing garbage), a duplicate
 *     index, or an index >= n -> quarantined verbatim into the
 *     `<path>.corrupt` sidecar and counted in storageFaults().
 *
 * When anything was quarantined the journal is rewritten in place
 * (tmp + rename + directory fsync) from the surviving records, so the
 * file is clean again before new appends land; the executor then
 * re-simulates exactly the lost indices.  A header that is corrupt,
 * has the wrong format version, or names a different (campaign, n,
 * seed) invalidates the whole file — identity can no longer be
 * trusted — and the journal restarts (a corrupt header is preserved
 * in the sidecar first).
 *
 * Chaos coverage: the append/fsync paths carry failpoints
 * (`journal.append.short_write`, `journal.append.kill`,
 * `journal.fsync.eintr` — see support/failpoint.h) so
 * tests/test_chaos.cc and tools/chaos_campaign.sh can prove the
 * recovery path byte-identical under systematic storage faults.
 */
#ifndef VSTACK_EXEC_JOURNAL_H
#define VSTACK_EXEC_JOURNAL_H

#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "support/json.h"

namespace vstack::exec
{

class Journal
{
  public:
    /** A disabled journal: find() misses, append() is a no-op. */
    Journal() = default;
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Open (creating parent directories as needed).
     *
     * @param path    journal file path
     * @param meta    campaign identity; a mismatched on-disk header
     *                discards the existing journal
     * @param n       campaign sample count (part of the identity)
     * @param seed    campaign seed (part of the identity)
     * @param resume  replay existing records when true; start fresh
     *                (truncate) when false
     * @param fm      canonical fault-model tag, part of the identity
     *                ("" = the single-bit default; absent in the
     *                on-disk header, so pre-fault-model journals stay
     *                valid for default campaigns and a model mismatch
     *                discards the file like any identity mismatch)
     * @return false if the file could not be opened (journal stays
     *         disabled; the campaign still runs, just unjournaled)
     */
    bool open(const std::string &path, const std::string &meta, uint64_t n,
              uint64_t seed, bool resume, const std::string &fm = {});

    bool enabled() const { return out != nullptr; }

    /** Number of samples replayed from disk at open(). */
    size_t replayed() const { return records.size(); }

    /**
     * Corrupt, duplicate, or out-of-range records quarantined into the
     * `.corrupt` sidecar by the last open().  A benign torn tail (kill
     * mid-append) is not counted.  Surfaced as the `storageFaults`
     * field of campaign reports.
     */
    size_t storageFaults() const { return storageFaults_; }

    /**
     * Journaled record for sample i, or nullptr if not journaled.
     * The record is the full line object: inspect "r" (completed
     * payload) or "err" (quarantined).  Only valid between open() and
     * the next open()/close().
     */
    const Json *find(size_t i) const;

    /** Append a completed sample (thread-safe, flushed per line). */
    void append(size_t i, const Json &payload);

    /** Append a quarantined sample (thread-safe, flushed per line). */
    void appendError(size_t i, const std::string &msg);

    /**
     * Append a host-fault quarantine: an "err" record carrying the
     * sandbox triage object under "hf" (signal, rusage, phase).
     * Replays as a quarantine like any other error record.
     */
    void appendHostFault(size_t i, const std::string &msg,
                         const Json &triage);

    /**
     * fsync the file after every append (default off).  fflush alone
     * survives a process kill; fsync also survives host power loss,
     * at a large per-sample latency cost (VSTACK_JOURNAL_FSYNC; cost
     * documented in DESIGN.md §7).
     */
    void setFsync(bool on) { fsyncOnAppend = on; }

    /** Close and delete the journal file (campaign completed). */
    void removeFile();

    /** Canonical journal path for a campaign key under a cache dir. */
    static std::string pathFor(const std::string &dir,
                               const std::string &key);

    /** Sidecar path holding quarantined corrupt records. */
    static std::string corruptPathFor(const std::string &path);

  private:
    void close();
    void writeLine(const Json &line);
    Json headerJson(const std::string &meta, uint64_t n, uint64_t seed,
                    const std::string &fm) const;

    std::string path_;
    std::string recTag_; ///< campaign-key tag stamped into records ("k")
    std::map<size_t, Json> records;
    std::FILE *out = nullptr;
    bool fsyncOnAppend = false;
    size_t storageFaults_ = 0;
    std::mutex mu;
};

} // namespace vstack::exec

#endif // VSTACK_EXEC_JOURNAL_H
