/**
 * @file
 * Append-only JSONL campaign journal.
 *
 * Every completed injection sample is appended as one self-contained
 * JSON line, flushed immediately, so a campaign killed at any point
 * leaves a prefix of valid lines behind.  Re-invoking the campaign
 * with resume enabled replays the journaled samples and only
 * simulates the remainder; because every sample's RNG stream is
 * derived from (seed, sample index), the resumed aggregate is
 * bit-identical to an uninterrupted run.
 *
 * File format (one JSON object per line):
 *
 *   {"meta":{"campaign":"<key>","n":N,"seed":S}}   <- header line
 *   {"i":0,"r":{...}}                              <- completed sample
 *   {"i":3,"err":"<message>"}                      <- quarantined sample
 *   {"i":5,"err":"<message>","hf":{...}}           <- host-fault triage
 *                                                     (sandboxed child
 *                                                     died; see
 *                                                     exec/sandbox.h)
 *
 * A truncated final line (torn write at kill time) parses as garbage
 * and is skipped; a header that does not match the requesting
 * campaign's parameters invalidates the whole file (it is restarted),
 * so a journal can never leak samples across campaigns.
 */
#ifndef VSTACK_EXEC_JOURNAL_H
#define VSTACK_EXEC_JOURNAL_H

#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "support/json.h"

namespace vstack::exec
{

class Journal
{
  public:
    /** A disabled journal: find() misses, append() is a no-op. */
    Journal() = default;
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Open (creating parent directories as needed).
     *
     * @param path    journal file path
     * @param meta    campaign identity; a mismatched on-disk header
     *                discards the existing journal
     * @param n       campaign sample count (part of the identity)
     * @param seed    campaign seed (part of the identity)
     * @param resume  replay existing records when true; start fresh
     *                (truncate) when false
     * @return false if the file could not be opened (journal stays
     *         disabled; the campaign still runs, just unjournaled)
     */
    bool open(const std::string &path, const std::string &meta, uint64_t n,
              uint64_t seed, bool resume);

    bool enabled() const { return out != nullptr; }

    /** Number of samples replayed from disk at open(). */
    size_t replayed() const { return records.size(); }

    /**
     * Journaled record for sample i, or nullptr if not journaled.
     * The record is the full line object: inspect "r" (completed
     * payload) or "err" (quarantined).  Only valid between open() and
     * the next open()/close().
     */
    const Json *find(size_t i) const;

    /** Append a completed sample (thread-safe, flushed per line). */
    void append(size_t i, const Json &payload);

    /** Append a quarantined sample (thread-safe, flushed per line). */
    void appendError(size_t i, const std::string &msg);

    /**
     * Append a host-fault quarantine: an "err" record carrying the
     * sandbox triage object under "hf" (signal, rusage, phase).
     * Replays as a quarantine like any other error record.
     */
    void appendHostFault(size_t i, const std::string &msg,
                         const Json &triage);

    /**
     * fsync the file after every append (default off).  fflush alone
     * survives a process kill; fsync also survives host power loss,
     * at a large per-sample latency cost (VSTACK_JOURNAL_FSYNC; cost
     * documented in DESIGN.md §7).
     */
    void setFsync(bool on) { fsyncOnAppend = on; }

    /** Close and delete the journal file (campaign completed). */
    void removeFile();

    /** Canonical journal path for a campaign key under a cache dir. */
    static std::string pathFor(const std::string &dir,
                               const std::string &key);

  private:
    void close();
    void writeLine(const Json &line);

    std::string path_;
    std::map<size_t, Json> records;
    std::FILE *out = nullptr;
    bool fsyncOnAppend = false;
    std::mutex mu;
};

} // namespace vstack::exec

#endif // VSTACK_EXEC_JOURNAL_H
